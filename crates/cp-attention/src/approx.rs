//! Approximate attention baselines: sliding-window and attention-sink
//! (StreamingLLM-style) masks.
//!
//! The paper positions exact context parallelism *against* approximation
//! (§2.2 surveys window/local attention; the conclusion argues exact CP
//! should eventually be combined with approximate retrieval beyond 1M
//! tokens). These kernels make that comparison concrete: both reuse the
//! exact blocked kernel with a restricted visibility predicate, so their
//! compute saving and their deviation from exact attention can be
//! measured side by side in the benches.

use crate::naive::check_positions;
use crate::{AttentionError, AttentionOutput, AttentionParams, PAD};
use cp_tensor::{softmax_row_in_place, Tensor};

/// Visibility policies for approximate causal attention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproxPolicy {
    /// Sliding window: query at position `p` sees kv in
    /// `[p - window + 1, p]`.
    Window {
        /// Window length in tokens (≥ 1 sees at least itself).
        window: usize,
    },
    /// Attention sinks: the first `sinks` positions of the sequence stay
    /// visible to everyone, plus a sliding window (Xiao et al. 2023).
    SinkWindow {
        /// Always-visible prefix length.
        sinks: usize,
        /// Sliding-window length.
        window: usize,
    },
}

impl ApproxPolicy {
    /// Whether a query at `q_pos` may attend a kv at `kv_pos` (both
    /// global positions; the causal rule is applied first).
    pub fn visible(&self, q_pos: usize, kv_pos: usize) -> bool {
        if kv_pos > q_pos {
            return false;
        }
        match *self {
            ApproxPolicy::Window { window } => q_pos - kv_pos < window.max(1),
            ApproxPolicy::SinkWindow { sinks, window } => {
                kv_pos < sinks || q_pos - kv_pos < window.max(1)
            }
        }
    }

    /// Number of kv entries a query at position `p` attends under this
    /// policy (vs `p + 1` for exact causal attention) — the compute
    /// saving.
    pub fn visible_count(&self, q_pos: usize) -> usize {
        match *self {
            ApproxPolicy::Window { window } => window.max(1).min(q_pos + 1),
            ApproxPolicy::SinkWindow { sinks, window } => {
                let w = window.max(1).min(q_pos + 1);
                let s = sinks.min(q_pos + 1);
                // Overlap when the window reaches back into the sinks.
                let overlap = (s + w).saturating_sub(q_pos + 1);
                s + w - overlap
            }
        }
    }
}

/// Approximate GQA attention under `policy` — same inputs and outputs as
/// [`crate::naive_gqa_attention`], restricted visibility.
///
/// The loop nest is the reference kernel's lockstep iteration: query rows
/// of `q`/`out`/`lse` move with `q_pos`, kv rows of `k`/`v` move with
/// `kv_pos` and the score buffer, all by chunked iterators — no computed
/// index reaches a slice, so the kernel body has no panic site.
///
/// # Errors
///
/// Same conditions as [`crate::naive_gqa_attention`].
pub fn approx_gqa_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    params: &AttentionParams,
    q_pos: &[usize],
    kv_pos: &[usize],
    policy: ApproxPolicy,
) -> Result<AttentionOutput, AttentionError> {
    let shape = &params.shape;
    let t_q = shape.check_q(q)?;
    let t_k = shape.check_kv(k, "k")?;
    let t_v = shape.check_kv(v, "v")?;
    if t_k != t_v {
        return Err(AttentionError::BadTensorShape {
            input: "v",
            expected: vec![t_k, shape.n_kv_heads(), shape.head_dim()],
            actual: v.shape().to_vec(),
        });
    }
    check_positions("q_pos", t_q, q_pos)?;
    check_positions("kv_pos", t_k, kv_pos)?;

    let (n_heads, dh) = (shape.n_heads(), shape.head_dim());
    let q_row = n_heads * dh;
    let kv_row = shape.n_kv_heads() * dh;
    let mut out = Tensor::zeros(&[t_q, n_heads, dh]);
    let mut lse = Tensor::full(&[t_q, n_heads], f32::NEG_INFINITY);
    let mut scores = vec![0.0f32; t_k];
    for (((qrow, orow), lse_row), &qpi) in q
        .as_slice()
        .chunks_exact(q_row)
        .zip(out.as_mut_slice().chunks_exact_mut(q_row))
        .zip(lse.as_mut_slice().chunks_exact_mut(n_heads))
        .zip(q_pos)
    {
        for (h, ((qvec, ohead), lse_slot)) in qrow
            .chunks_exact(dh)
            .zip(orow.chunks_exact_mut(dh))
            .zip(lse_row.iter_mut())
            .enumerate()
        {
            let koff = shape.kv_head_for(h) * dh;
            for ((score, &kvp), krow) in scores
                .iter_mut()
                .zip(kv_pos)
                .zip(k.as_slice().chunks_exact(kv_row))
            {
                *score = if kvp == PAD || !policy.visible(qpi, kvp) {
                    f32::NEG_INFINITY
                } else {
                    let kvec = krow.iter().skip(koff);
                    let dot: f32 = qvec.iter().zip(kvec).map(|(a, b)| a * b).sum();
                    dot * params.scale
                };
            }
            let row_lse = softmax_row_in_place(&mut scores);
            if row_lse == f32::NEG_INFINITY {
                continue;
            }
            *lse_slot = row_lse;
            for (&w, vrow) in scores.iter().zip(v.as_slice().chunks_exact(kv_row)) {
                if w == 0.0 {
                    continue;
                }
                for (o, &x) in ohead.iter_mut().zip(vrow.iter().skip(koff)) {
                    *o += w * x;
                }
            }
        }
    }
    AttentionOutput::new(out, lse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive_gqa_attention, GqaShape};
    use cp_tensor::DetRng;

    fn params() -> AttentionParams {
        AttentionParams::for_shape(GqaShape::new(2, 1, 8).unwrap())
    }

    fn inputs(t: usize, seed: u64) -> (Tensor, Tensor, Tensor, Vec<usize>) {
        let mut rng = DetRng::new(seed);
        (
            rng.tensor(&[t, 2, 8]),
            rng.tensor(&[t, 1, 8]),
            rng.tensor(&[t, 1, 8]),
            (0..t).collect(),
        )
    }

    #[test]
    fn huge_window_equals_exact() {
        let p = params();
        let (q, k, v, pos) = inputs(20, 1);
        let exact = naive_gqa_attention(&q, &k, &v, &p, &pos, &pos).unwrap();
        let approx = approx_gqa_attention(
            &q,
            &k,
            &v,
            &p,
            &pos,
            &pos,
            ApproxPolicy::Window { window: 1000 },
        )
        .unwrap();
        assert!(approx.out.approx_eq(&exact.out, 1e-5).unwrap());
        assert!(approx.lse.approx_eq(&exact.lse, 1e-5).unwrap());
    }

    #[test]
    fn window_one_attends_only_self() {
        let p = params();
        let (q, k, v, pos) = inputs(6, 2);
        let approx = approx_gqa_attention(
            &q,
            &k,
            &v,
            &p,
            &pos,
            &pos,
            ApproxPolicy::Window { window: 1 },
        )
        .unwrap();
        // Each token's output is exactly its own V (softmax over one).
        for t in 0..6 {
            for h in 0..2 {
                for d in 0..8 {
                    assert!(
                        (approx.out.at(&[t, h, d]).unwrap() - v.at(&[t, 0, d]).unwrap()).abs()
                            < 1e-5
                    );
                }
            }
        }
    }

    #[test]
    fn sink_window_keeps_prefix_visible() {
        let policy = ApproxPolicy::SinkWindow {
            sinks: 2,
            window: 3,
        };
        assert!(policy.visible(100, 0)); // sink
        assert!(policy.visible(100, 1)); // sink
        assert!(!policy.visible(100, 50)); // mid-context dropped
        assert!(policy.visible(100, 98)); // window
        assert!(policy.visible(100, 100)); // self
        assert!(!policy.visible(5, 6)); // causality still holds
    }

    #[test]
    fn visible_count_accounting() {
        let w = ApproxPolicy::Window { window: 4 };
        assert_eq!(w.visible_count(0), 1);
        assert_eq!(w.visible_count(2), 3);
        assert_eq!(w.visible_count(100), 4);
        let sw = ApproxPolicy::SinkWindow {
            sinks: 2,
            window: 4,
        };
        assert_eq!(sw.visible_count(100), 6);
        // Early positions: sinks and window overlap; never more than p+1.
        assert_eq!(sw.visible_count(0), 1);
        assert_eq!(sw.visible_count(3), 4);
        assert_eq!(sw.visible_count(5), 6);
    }

    #[test]
    fn approximation_error_grows_as_window_shrinks() {
        let p = params();
        let (q, k, v, pos) = inputs(64, 3);
        let exact = naive_gqa_attention(&q, &k, &v, &p, &pos, &pos).unwrap();
        let mut last_err = 0.0f32;
        for window in [64usize, 16, 4, 1] {
            let approx =
                approx_gqa_attention(&q, &k, &v, &p, &pos, &pos, ApproxPolicy::Window { window })
                    .unwrap();
            let err = exact.out.max_abs_diff(&approx.out).unwrap();
            assert!(
                err >= last_err - 1e-6,
                "window {window}: {err} < {last_err}"
            );
            last_err = err;
        }
        assert!(last_err > 0.01, "window=1 should deviate visibly");
    }

    #[test]
    fn sinks_reduce_error_vs_pure_window() {
        // StreamingLLM's observation, reproduced numerically: keeping the
        // first tokens visible lowers deviation from exact attention for
        // most inputs (softmax mass concentrates early).
        let p = params();
        let mut total_window = 0.0f64;
        let mut total_sink = 0.0f64;
        for seed in 0..8 {
            let (q, k, v, pos) = inputs(48, 100 + seed);
            let exact = naive_gqa_attention(&q, &k, &v, &p, &pos, &pos).unwrap();
            let w = approx_gqa_attention(
                &q,
                &k,
                &v,
                &p,
                &pos,
                &pos,
                ApproxPolicy::Window { window: 8 },
            )
            .unwrap();
            let sw = approx_gqa_attention(
                &q,
                &k,
                &v,
                &p,
                &pos,
                &pos,
                ApproxPolicy::SinkWindow {
                    sinks: 4,
                    window: 8,
                },
            )
            .unwrap();
            total_window += exact.out.max_abs_diff(&w.out).unwrap() as f64;
            total_sink += exact.out.max_abs_diff(&sw.out).unwrap() as f64;
        }
        assert!(total_sink < total_window, "{total_sink} vs {total_window}");
    }

    #[test]
    fn rejects_bad_shapes() {
        let p = params();
        let (q, k, v, pos) = inputs(4, 4);
        assert!(approx_gqa_attention(
            &q,
            &k,
            &v,
            &p,
            &pos[..3],
            &pos,
            ApproxPolicy::Window { window: 2 },
        )
        .is_err());
        let bad_v = Tensor::zeros(&[3, 1, 8]);
        assert!(approx_gqa_attention(
            &q,
            &k,
            &bad_v,
            &p,
            &pos,
            &pos,
            ApproxPolicy::Window { window: 2 },
        )
        .is_err());
    }
}
