//! Flash-style blocked attention with online softmax.

use crate::naive::check_positions;
use crate::{AttentionError, AttentionOutput, AttentionParams, KvSource, PAD};
use cp_pool::ComputePool;
use cp_tensor::Tensor;

/// Exact GQA attention computed in KV blocks with an online softmax, the
/// structure of FlashAttention (Dao et al.) / the paper's FA3 kernels.
///
/// Mathematically identical to [`crate::naive_gqa_attention`] — the running
/// `(max, sum, accumulator)` triple per (query, head) is the same rescaling
/// trick merge attention uses, applied block-by-block — but it never
/// materialises the full `t_q x t_kv` score matrix, so its working set is
/// `O(block_size)` per query. Property tests pin it to the naive kernel.
///
/// # Errors
///
/// Same conditions as [`crate::naive_gqa_attention`]; additionally
/// `block_size` must be positive.
///
/// # Example
///
/// ```
/// use cp_attention::{blocked_gqa_attention, naive_gqa_attention, AttentionParams, GqaShape};
/// use cp_tensor::DetRng;
///
/// # fn main() -> Result<(), cp_attention::AttentionError> {
/// let params = AttentionParams::for_shape(GqaShape::new(2, 2, 4)?);
/// let mut rng = DetRng::new(3);
/// let q = rng.tensor(&[5, 2, 4]);
/// let k = rng.tensor(&[5, 2, 4]);
/// let v = rng.tensor(&[5, 2, 4]);
/// let pos: Vec<usize> = (0..5).collect();
/// let fast = blocked_gqa_attention(&q, &k, &v, &params, &pos, &pos, 2)?;
/// let slow = naive_gqa_attention(&q, &k, &v, &params, &pos, &pos)?;
/// assert!(fast.out.approx_eq(&slow.out, 1e-4).unwrap());
/// # Ok(())
/// # }
/// ```
pub fn blocked_gqa_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    params: &AttentionParams,
    q_pos: &[usize],
    kv_pos: &[usize],
    block_size: usize,
) -> Result<AttentionOutput, AttentionError> {
    blocked_gqa_attention_with_threads(q, k, v, params, q_pos, kv_pos, block_size, 0)
}

/// [`blocked_gqa_attention`] on an explicit persistent worker pool.
///
/// The preferred entry point inside ring loops: the `Communicator` owns one
/// pool per rank, so a multi-layer forward reuses the same workers for
/// every layer and hop instead of spawning scoped threads per call. Tile
/// count is the pool's parallelism (capped at the query count); results are
/// bit-identical to the serial path.
///
/// # Errors
///
/// Same conditions as [`blocked_gqa_attention`].
#[allow(clippy::too_many_arguments)] // mirrors the kernel signature + pool
pub fn blocked_gqa_attention_on(
    pool: &ComputePool,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    params: &AttentionParams,
    q_pos: &[usize],
    kv_pos: &[usize],
    block_size: usize,
) -> Result<AttentionOutput, AttentionError> {
    blocked_impl(
        pool,
        q,
        &KvSource::contiguous(k, v),
        params,
        q_pos,
        kv_pos,
        block_size,
        0,
    )
}

/// [`blocked_gqa_attention_on`] over a [`KvSource`] — contiguous tensors or
/// a paged KV cache view — with zero materialization.
///
/// The kernel walks KV rows through the source's O(1) row lookup; for the
/// same `block_size` the paged and contiguous variants perform the same f32
/// operations in the same order, so results are **bit-identical** across
/// storage layouts (property-tested in cp-kvcache). Paged callers should
/// pick a `block_size` that is a multiple of the page size so online-softmax
/// blocks coincide with whole pages.
///
/// # Errors
///
/// Same conditions as [`blocked_gqa_attention`].
pub fn blocked_gqa_attention_source(
    pool: &ComputePool,
    q: &Tensor,
    kv: &KvSource<'_>,
    params: &AttentionParams,
    q_pos: &[usize],
    kv_pos: &[usize],
    block_size: usize,
) -> Result<AttentionOutput, AttentionError> {
    blocked_impl(pool, q, kv, params, q_pos, kv_pos, block_size, 0)
}

/// [`blocked_gqa_attention`] with an explicit tile count.
///
/// `threads == 0` sizes the tiling from the shared global pool's
/// parallelism (the default entry point's behaviour); `threads == 1` forces
/// the serial path; larger values pin the number of query-row tiles, which
/// lets tests exercise the tiled path on single-core hosts. Every
/// `(query, head)` pair walks its KV blocks in the same ascending order
/// with the same arithmetic regardless of `threads`, so results are
/// bit-identical across thread counts.
///
/// # Errors
///
/// Same conditions as [`blocked_gqa_attention`].
#[allow(clippy::too_many_arguments)] // mirrors the kernel signature + threads
pub fn blocked_gqa_attention_with_threads(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    params: &AttentionParams,
    q_pos: &[usize],
    kv_pos: &[usize],
    block_size: usize,
    threads: usize,
) -> Result<AttentionOutput, AttentionError> {
    blocked_impl(
        ComputePool::global(),
        q,
        &KvSource::contiguous(k, v),
        params,
        q_pos,
        kv_pos,
        block_size,
        threads,
    )
}

#[allow(clippy::too_many_arguments)]
fn blocked_impl(
    pool: &ComputePool,
    q: &Tensor,
    kv: &KvSource<'_>,
    params: &AttentionParams,
    q_pos: &[usize],
    kv_pos: &[usize],
    block_size: usize,
    threads: usize,
) -> Result<AttentionOutput, AttentionError> {
    if block_size == 0 {
        return Err(AttentionError::InvalidShape {
            reason: "block_size must be positive".to_string(),
        });
    }
    let shape = &params.shape;
    let t_q = shape.check_q(q)?;
    let t_k = kv.check(shape)?;
    check_positions("q_pos", t_q, q_pos)?;
    check_positions("kv_pos", t_k, kv_pos)?;

    let (n_heads, dh) = (shape.n_heads(), shape.head_dim());
    let mut out = Tensor::zeros(&[t_q, n_heads, dh]);
    let mut lse = Tensor::full(&[t_q, n_heads], f32::NEG_INFINITY);
    if t_q > 0 {
        let out_buf = out.as_mut_slice();
        let lse_buf = lse.as_mut_slice();
        let row_o = n_heads * dh;
        let workers = match threads {
            0 => pool.parallelism(),
            n => n,
        }
        .min(t_q);
        if workers <= 1 {
            // One scratch buffer for the whole call instead of one Vec per
            // (block, query, head); `head_buf` is the dequantization
            // scratch for quantized sources (unused by f32 storage).
            let mut scores = Vec::with_capacity(block_size.min(t_k.max(1)));
            let mut head_buf = vec![0.0f32; dh];
            for (qi, ((out_row, lse_row), &qp)) in out_buf
                .chunks_mut(row_o)
                .zip(lse_buf.chunks_mut(n_heads))
                .zip(q_pos)
                .enumerate()
            {
                attend_query_row(
                    q.row(qi),
                    kv,
                    params,
                    qp,
                    kv_pos,
                    block_size,
                    out_row,
                    lse_row,
                    &mut scores,
                    &mut head_buf,
                );
            }
        } else {
            // Tile the query rows over the persistent pool; each job owns a
            // disjoint slice of the output buffers and one scratch.
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers);
            let mut out_rest = out_buf;
            let mut lse_rest = lse_buf;
            let mut pos_rest = q_pos;
            let base = t_q / workers;
            let extra = t_q % workers;
            let mut start = 0;
            for w in 0..workers {
                let len = base + usize::from(w < extra);
                let (out_tile, out_tail) = out_rest.split_at_mut(len * row_o);
                out_rest = out_tail;
                let (lse_tile, lse_tail) = lse_rest.split_at_mut(len * n_heads);
                lse_rest = lse_tail;
                let (pos_tile, pos_tail) = pos_rest.split_at(len);
                pos_rest = pos_tail;
                jobs.push(Box::new(move || {
                    let mut scores = Vec::with_capacity(block_size.min(t_k.max(1)));
                    let mut head_buf = vec![0.0f32; dh];
                    for (off, ((out_row, lse_row), &qp)) in out_tile
                        .chunks_mut(row_o)
                        .zip(lse_tile.chunks_mut(n_heads))
                        .zip(pos_tile)
                        .enumerate()
                    {
                        attend_query_row(
                            q.row(start + off),
                            kv,
                            params,
                            qp,
                            kv_pos,
                            block_size,
                            out_row,
                            lse_row,
                            &mut scores,
                            &mut head_buf,
                        );
                    }
                }));
                start += len;
            }
            pool.run(jobs);
        }
    }
    AttentionOutput::new(out, lse)
}

/// Online-softmax attention for one query row: for every head, walk the KV
/// blocks in ascending order keeping `(m, l)` scalars and accumulating
/// weighted values directly into this row's slice of the output buffer.
/// This is the seed kernel's per-(query, head) arithmetic verbatim — only
/// the loop nest is transposed so rows are independent work items. KV head
/// vectors come through the [`KvSource::k_head`] / [`KvSource::v_head`]
/// lookup (a direct subslice for f32 storage, a per-head dequantize into
/// `head_buf` for INT8 pages), so contiguous, paged and quantized storage
/// execute the same f32 sequence over the values they expose; heads and KV
/// blocks advance by chunked iterators rather than computed indices, so
/// the loop body contains no panicking slice index; an out-of-range KV row
/// or head lookup (impossible after the shape checks) folds into the
/// masked branch.
#[allow(clippy::too_many_arguments)]
fn attend_query_row(
    qrow: &[f32],
    kv: &KvSource<'_>,
    params: &AttentionParams,
    q_pos_qi: usize,
    kv_pos: &[usize],
    block_size: usize,
    out_row: &mut [f32],
    lse_row: &mut [f32],
    scores: &mut Vec<f32>,
    head_buf: &mut [f32],
) {
    let shape = &params.shape;
    let dh = shape.head_dim();
    for (h, ((qvec, acc), lse_slot)) in qrow
        .chunks(dh)
        .zip(out_row.chunks_mut(dh))
        .zip(lse_row.iter_mut())
        .enumerate()
    {
        let kvh = shape.kv_head_for(h);
        // m: running max score; l: running sum of exp(score - m);
        // acc: running sum of exp(score - m) * v, built in place.
        let mut m = f32::NEG_INFINITY;
        let mut l = 0.0f32;
        for (block_idx, block_pos) in kv_pos.chunks(block_size).enumerate() {
            let block_start = block_idx * block_size;
            // Block max for the rescale.
            let mut block_m = f32::NEG_INFINITY;
            scores.clear();
            for (off, &kpos) in block_pos.iter().enumerate() {
                let s = match kv.k_head(block_start + off, kvh, dh, head_buf) {
                    Some(kvec) if kpos != PAD && kpos <= q_pos_qi => {
                        let dot: f32 = qvec.iter().zip(kvec).map(|(a, b)| a * b).sum();
                        dot * params.scale
                    }
                    _ => f32::NEG_INFINITY,
                };
                block_m = block_m.max(s);
                scores.push(s);
            }
            if block_m == f32::NEG_INFINITY {
                continue; // entire block masked for this query
            }
            let new_m = m.max(block_m);
            let rescale = if m == f32::NEG_INFINITY {
                0.0
            } else {
                (m - new_m).exp()
            };
            l *= rescale;
            for x in acc.iter_mut() {
                *x *= rescale;
            }
            for (off, &s) in scores.iter().enumerate() {
                if s == f32::NEG_INFINITY {
                    continue;
                }
                let w = (s - new_m).exp();
                l += w;
                if let Some(vvec) = kv.v_head(block_start + off, kvh, dh, head_buf) {
                    for (a, &x) in acc.iter_mut().zip(vvec) {
                        *a += w * x;
                    }
                }
            }
            m = new_m;
        }
        // Finalise: out = acc / l, lse = m + ln(l); a fully masked query
        // keeps zeros and -inf, the merge convention.
        if m != f32::NEG_INFINITY {
            *lse_slot = m + l.ln();
            for x in acc.iter_mut() {
                *x /= l;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive_gqa_attention, GqaShape};
    use cp_tensor::DetRng;

    fn params(nh: usize, nkv: usize, dh: usize) -> AttentionParams {
        AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap())
    }

    fn compare_with_naive(t_q: usize, t_kv: usize, p: &AttentionParams, block: usize, seed: u64) {
        let mut rng = DetRng::new(seed);
        let shape = p.shape;
        let q = rng.tensor(&[t_q, shape.n_heads(), shape.head_dim()]);
        let k = rng.tensor(&[t_kv, shape.n_kv_heads(), shape.head_dim()]);
        let v = rng.tensor(&[t_kv, shape.n_kv_heads(), shape.head_dim()]);
        // Use overlapping position spaces: queries at the tail.
        let kv_pos: Vec<usize> = (0..t_kv).collect();
        let q_pos: Vec<usize> = (t_kv.saturating_sub(t_q)..t_kv).collect();
        let fast = blocked_gqa_attention(&q, &k, &v, p, &q_pos, &kv_pos, block).unwrap();
        let slow = naive_gqa_attention(&q, &k, &v, p, &q_pos, &kv_pos).unwrap();
        assert!(
            fast.out.approx_eq(&slow.out, 1e-4).unwrap(),
            "out mismatch: {}",
            fast.out.max_abs_diff(&slow.out).unwrap()
        );
        assert!(fast.lse.approx_eq(&slow.lse, 1e-4).unwrap());
    }

    #[test]
    fn matches_naive_various_block_sizes() {
        let p = params(4, 2, 8);
        for block in [1, 2, 3, 7, 16, 64] {
            compare_with_naive(6, 13, &p, block, 42);
        }
    }

    #[test]
    fn matches_naive_block_larger_than_kv() {
        let p = params(2, 1, 4);
        compare_with_naive(3, 5, &p, 100, 7);
    }

    #[test]
    fn matches_naive_mqa() {
        let p = params(8, 1, 4);
        compare_with_naive(4, 9, &p, 3, 1);
    }

    #[test]
    fn handles_pad_slots() {
        let p = params(1, 1, 2);
        let mut rng = DetRng::new(2);
        let q = rng.tensor(&[2, 1, 2]);
        let k = rng.tensor(&[4, 1, 2]);
        let v = rng.tensor(&[4, 1, 2]);
        let kv_pos = [0, PAD, 1, PAD];
        let q_pos = [0, 1];
        let fast = blocked_gqa_attention(&q, &k, &v, &p, &q_pos, &kv_pos, 2).unwrap();
        let slow = naive_gqa_attention(&q, &k, &v, &p, &q_pos, &kv_pos).unwrap();
        assert!(fast.out.approx_eq(&slow.out, 1e-5).unwrap());
        assert!(fast.lse.approx_eq(&slow.lse, 1e-5).unwrap());
    }

    #[test]
    fn fully_masked_query_matches_naive_convention() {
        let p = params(1, 1, 2);
        let mut rng = DetRng::new(3);
        let q = rng.tensor(&[1, 1, 2]);
        let k = rng.tensor(&[2, 1, 2]);
        let v = rng.tensor(&[2, 1, 2]);
        let out = blocked_gqa_attention(&q, &k, &v, &p, &[0], &[5, 6], 1).unwrap();
        assert_eq!(out.lse.as_slice(), &[f32::NEG_INFINITY]);
        assert!(out.out.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn rejects_zero_block_size() {
        let p = params(1, 1, 2);
        let q = Tensor::zeros(&[1, 1, 2]);
        let k = Tensor::zeros(&[1, 1, 2]);
        let v = Tensor::zeros(&[1, 1, 2]);
        assert!(blocked_gqa_attention(&q, &k, &v, &p, &[0], &[0], 0).is_err());
    }

    #[test]
    fn threaded_path_is_bit_identical_to_serial() {
        // Pin an explicit thread count larger than one so the tiled path
        // runs even on single-core hosts; every (query, head) pair walks
        // its KV blocks in the same order, so outputs must be bitwise
        // equal, not just approximately.
        let p = params(4, 2, 8);
        let mut rng = DetRng::new(17);
        let (t_q, t_kv) = (23, 37);
        let q = rng.tensor(&[t_q, 4, 8]);
        let k = rng.tensor(&[t_kv, 2, 8]);
        let v = rng.tensor(&[t_kv, 2, 8]);
        let kv_pos: Vec<usize> = (0..t_kv).collect();
        let q_pos: Vec<usize> = (t_kv - t_q..t_kv).collect();
        let serial =
            blocked_gqa_attention_with_threads(&q, &k, &v, &p, &q_pos, &kv_pos, 5, 1).unwrap();
        for threads in [2, 3, 8, 64] {
            let tiled =
                blocked_gqa_attention_with_threads(&q, &k, &v, &p, &q_pos, &kv_pos, 5, threads)
                    .unwrap();
            assert_eq!(tiled.out.as_slice(), serial.out.as_slice(), "t={threads}");
            assert_eq!(tiled.lse.as_slice(), serial.lse.as_slice(), "t={threads}");
        }
    }

    #[test]
    fn threaded_path_handles_pad_and_masked_rows() {
        let p = params(2, 1, 4);
        let mut rng = DetRng::new(18);
        let q = rng.tensor(&[3, 2, 4]);
        let k = rng.tensor(&[4, 1, 4]);
        let v = rng.tensor(&[4, 1, 4]);
        // Row 0 sees nothing (future positions only), row 2 sees all.
        let kv_pos = [2, PAD, 3, 4];
        let q_pos = [0, 3, 9];
        let serial =
            blocked_gqa_attention_with_threads(&q, &k, &v, &p, &q_pos, &kv_pos, 2, 1).unwrap();
        let tiled =
            blocked_gqa_attention_with_threads(&q, &k, &v, &p, &q_pos, &kv_pos, 2, 3).unwrap();
        assert_eq!(tiled.out.as_slice(), serial.out.as_slice());
        assert_eq!(tiled.lse.as_slice(), serial.lse.as_slice());
        assert_eq!(serial.lse.as_slice()[0], f32::NEG_INFINITY);
    }

    #[test]
    fn empty_query_batch_is_ok() {
        let p = params(1, 1, 2);
        let q = Tensor::zeros(&[0, 1, 2]);
        let k = Tensor::zeros(&[2, 1, 2]);
        let v = Tensor::zeros(&[2, 1, 2]);
        let out = blocked_gqa_attention(&q, &k, &v, &p, &[], &[0, 1], 4).unwrap();
        assert_eq!(out.out.dim0(), 0);
    }

    #[test]
    fn quant_source_is_bitwise_equal_to_dequantized_tensors() {
        // The quantized kernel's contract: for the same block size, a
        // QuantPaged source runs the exact f32 sequence of a contiguous
        // source holding the dequantized values, so the outputs are
        // bitwise equal — the only error vs f32 storage is quantization.
        let (t_q, t_kv, nh, nkv, dh, ps) = (4usize, 11usize, 4usize, 2usize, 8usize, 3usize);
        let p = params(nh, nkv, dh);
        let mut rng = DetRng::new(23);
        let q = rng.tensor(&[t_q, nh, dh]);
        let k = rng.tensor(&[t_kv, nkv, dh]);
        let v = rng.tensor(&[t_kv, nkv, dh]);
        let kv_pos: Vec<usize> = (0..t_kv).collect();
        let q_pos: Vec<usize> = (t_kv - t_q..t_kv).collect();

        let quantize = |x: &Tensor| {
            let mut codes: Vec<i8> = Vec::new();
            let mut scales: Vec<f32> = Vec::new();
            for row in x.as_slice().chunks_exact(dh) {
                let max = row.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
                let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
                scales.push(scale);
                codes.extend(
                    row.iter()
                        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8),
                );
            }
            (codes, scales)
        };
        let (kc, ks) = quantize(&k);
        let (vc, vs) = quantize(&v);
        let page_up = |per_row: usize, flat_len: usize| -> Vec<(usize, usize)> {
            (0..t_kv.div_ceil(ps))
                .map(|pg| {
                    let rows = (t_kv - pg * ps).min(ps);
                    let start = pg * ps * per_row;
                    assert!(start + rows * per_row <= flat_len);
                    (start, start + rows * per_row)
                })
                .collect()
        };
        let rn = nkv * dh;
        let kcp: Vec<&[i8]> = page_up(rn, kc.len())
            .iter()
            .map(|&(a, b)| &kc[a..b])
            .collect();
        let vcp: Vec<&[i8]> = page_up(rn, vc.len())
            .iter()
            .map(|&(a, b)| &vc[a..b])
            .collect();
        let ksp: Vec<&[f32]> = page_up(nkv, ks.len())
            .iter()
            .map(|&(a, b)| &ks[a..b])
            .collect();
        let vsp: Vec<&[f32]> = page_up(nkv, vs.len())
            .iter()
            .map(|&(a, b)| &vs[a..b])
            .collect();
        let src = KvSource::quant_paged(&kcp, &ksp, &vcp, &vsp, ps, nkv, dh, t_kv).unwrap();

        // Dequantized contiguous reference (code * scale, same arithmetic).
        let dequant = |codes: &[i8], scales: &[f32]| {
            let data: Vec<f32> = codes
                .iter()
                .enumerate()
                .map(|(i, &c)| c as f32 * scales[i / dh])
                .collect();
            Tensor::from_vec(data, &[t_kv, nkv, dh]).unwrap()
        };
        let kd = dequant(&kc, &ks);
        let vd = dequant(&vc, &vs);

        let pool = cp_pool::ComputePool::global();
        for block in [ps, 2 * ps, 64] {
            let quant_out =
                blocked_gqa_attention_source(pool, &q, &src, &p, &q_pos, &kv_pos, block).unwrap();
            let deq_out =
                blocked_gqa_attention_on(pool, &q, &kd, &vd, &p, &q_pos, &kv_pos, block).unwrap();
            assert_eq!(
                quant_out.out.as_slice(),
                deq_out.out.as_slice(),
                "block={block}"
            );
            assert_eq!(
                quant_out.lse.as_slice(),
                deq_out.lse.as_slice(),
                "block={block}"
            );
            // And the quantization error vs true f32 stays small.
            let f32_out =
                blocked_gqa_attention_on(pool, &q, &k, &v, &p, &q_pos, &kv_pos, block).unwrap();
            let err = quant_out.out.max_abs_diff(&f32_out.out).unwrap();
            assert!(err > 0.0 && err < 0.02, "block={block}: err {err}");
        }
    }

    #[test]
    fn large_score_magnitudes_stay_stable() {
        // Scores around ±60 would overflow exp without the online max trick.
        let p = AttentionParams::with_scale(GqaShape::new(1, 1, 1).unwrap(), 60.0);
        let q = Tensor::from_vec(vec![1.0], &[1, 1, 1]).unwrap();
        let k = Tensor::from_vec(vec![1.0, -1.0, 0.9], &[3, 1, 1]).unwrap();
        let v = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1, 1]).unwrap();
        let pos = [0, 1, 2];
        let fast = blocked_gqa_attention(&q, &k, &v, &p, &[2], &pos, 1).unwrap();
        let slow = naive_gqa_attention(&q, &k, &v, &p, &[2], &pos).unwrap();
        assert!(fast.out.as_slice()[0].is_finite());
        assert!(fast.out.approx_eq(&slow.out, 1e-4).unwrap());
    }
}
