//! Flash-style blocked attention with online softmax.

use crate::naive::check_positions;
use crate::{AttentionError, AttentionOutput, AttentionParams, PAD};
use cp_tensor::Tensor;

/// Exact GQA attention computed in KV blocks with an online softmax, the
/// structure of FlashAttention (Dao et al.) / the paper's FA3 kernels.
///
/// Mathematically identical to [`crate::naive_gqa_attention`] — the running
/// `(max, sum, accumulator)` triple per (query, head) is the same rescaling
/// trick merge attention uses, applied block-by-block — but it never
/// materialises the full `t_q x t_kv` score matrix, so its working set is
/// `O(block_size)` per query. Property tests pin it to the naive kernel.
///
/// # Errors
///
/// Same conditions as [`crate::naive_gqa_attention`]; additionally
/// `block_size` must be positive.
///
/// # Example
///
/// ```
/// use cp_attention::{blocked_gqa_attention, naive_gqa_attention, AttentionParams, GqaShape};
/// use cp_tensor::DetRng;
///
/// # fn main() -> Result<(), cp_attention::AttentionError> {
/// let params = AttentionParams::for_shape(GqaShape::new(2, 2, 4)?);
/// let mut rng = DetRng::new(3);
/// let q = rng.tensor(&[5, 2, 4]);
/// let k = rng.tensor(&[5, 2, 4]);
/// let v = rng.tensor(&[5, 2, 4]);
/// let pos: Vec<usize> = (0..5).collect();
/// let fast = blocked_gqa_attention(&q, &k, &v, &params, &pos, &pos, 2)?;
/// let slow = naive_gqa_attention(&q, &k, &v, &params, &pos, &pos)?;
/// assert!(fast.out.approx_eq(&slow.out, 1e-4).unwrap());
/// # Ok(())
/// # }
/// ```
#[allow(clippy::needless_range_loop)] // parallel-indexing kernel: q_pos/kv_pos/rows move together
pub fn blocked_gqa_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    params: &AttentionParams,
    q_pos: &[usize],
    kv_pos: &[usize],
    block_size: usize,
) -> Result<AttentionOutput, AttentionError> {
    if block_size == 0 {
        return Err(AttentionError::InvalidShape {
            reason: "block_size must be positive".to_string(),
        });
    }
    let shape = &params.shape;
    let t_q = shape.check_q(q)?;
    let t_k = shape.check_kv(k, "k")?;
    let t_v = shape.check_kv(v, "v")?;
    if t_k != t_v {
        return Err(AttentionError::BadTensorShape {
            input: "v",
            expected: vec![t_k, shape.n_kv_heads(), shape.head_dim()],
            actual: v.shape().to_vec(),
        });
    }
    check_positions("q_pos", t_q, q_pos)?;
    check_positions("kv_pos", t_k, kv_pos)?;

    let (n_heads, dh) = (shape.n_heads(), shape.head_dim());
    let mut out = Tensor::zeros(&[t_q, n_heads, dh]);
    let mut lse = Tensor::full(&[t_q, n_heads], f32::NEG_INFINITY);

    // Per (query, head) online-softmax state across kv blocks.
    // m: running max score; l: running sum of exp(score - m);
    // acc: running sum of exp(score - m) * v.
    let mut m_state = vec![f32::NEG_INFINITY; t_q * n_heads];
    let mut l_state = vec![0.0f32; t_q * n_heads];
    let mut acc = vec![0.0f32; t_q * n_heads * dh];

    let mut block_start = 0;
    while block_start < t_k {
        let block_end = (block_start + block_size).min(t_k);
        for qi in 0..t_q {
            let qrow = q.row(qi);
            for h in 0..n_heads {
                let kvh = shape.kv_head_for(h);
                let qvec = &qrow[h * dh..(h + 1) * dh];
                let s_idx = qi * n_heads + h;

                // Block max for the rescale.
                let mut block_m = f32::NEG_INFINITY;
                let mut scores = Vec::with_capacity(block_end - block_start);
                for ki in block_start..block_end {
                    let s = if kv_pos[ki] == PAD || kv_pos[ki] > q_pos[qi] {
                        f32::NEG_INFINITY
                    } else {
                        let kvec = &k.row(ki)[kvh * dh..(kvh + 1) * dh];
                        let dot: f32 = qvec.iter().zip(kvec).map(|(a, b)| a * b).sum();
                        dot * params.scale
                    };
                    block_m = block_m.max(s);
                    scores.push(s);
                }
                if block_m == f32::NEG_INFINITY {
                    continue; // entire block masked for this query
                }
                let new_m = m_state[s_idx].max(block_m);
                let rescale = if m_state[s_idx] == f32::NEG_INFINITY {
                    0.0
                } else {
                    (m_state[s_idx] - new_m).exp()
                };
                l_state[s_idx] *= rescale;
                let a = &mut acc[s_idx * dh..(s_idx + 1) * dh];
                for x in a.iter_mut() {
                    *x *= rescale;
                }
                for (off, &s) in scores.iter().enumerate() {
                    if s == f32::NEG_INFINITY {
                        continue;
                    }
                    let w = (s - new_m).exp();
                    l_state[s_idx] += w;
                    let ki = block_start + off;
                    let vvec = &v.row(ki)[kvh * dh..(kvh + 1) * dh];
                    for (d, &x) in vvec.iter().enumerate() {
                        a[d] += w * x;
                    }
                }
                m_state[s_idx] = new_m;
            }
        }
        block_start = block_end;
    }

    // Finalise: out = acc / l, lse = m + ln(l).
    for qi in 0..t_q {
        for h in 0..n_heads {
            let s_idx = qi * n_heads + h;
            if m_state[s_idx] == f32::NEG_INFINITY {
                continue;
            }
            let l = l_state[s_idx];
            lse.set(&[qi, h], m_state[s_idx] + l.ln())
                .expect("in bounds");
            let orow = out.row_mut(qi);
            let a = &acc[s_idx * dh..(s_idx + 1) * dh];
            for (d, &x) in a.iter().enumerate() {
                orow[h * dh + d] = x / l;
            }
        }
    }
    AttentionOutput::new(out, lse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive_gqa_attention, GqaShape};
    use cp_tensor::DetRng;

    fn params(nh: usize, nkv: usize, dh: usize) -> AttentionParams {
        AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap())
    }

    fn compare_with_naive(t_q: usize, t_kv: usize, p: &AttentionParams, block: usize, seed: u64) {
        let mut rng = DetRng::new(seed);
        let shape = p.shape;
        let q = rng.tensor(&[t_q, shape.n_heads(), shape.head_dim()]);
        let k = rng.tensor(&[t_kv, shape.n_kv_heads(), shape.head_dim()]);
        let v = rng.tensor(&[t_kv, shape.n_kv_heads(), shape.head_dim()]);
        // Use overlapping position spaces: queries at the tail.
        let kv_pos: Vec<usize> = (0..t_kv).collect();
        let q_pos: Vec<usize> = (t_kv.saturating_sub(t_q)..t_kv).collect();
        let fast = blocked_gqa_attention(&q, &k, &v, p, &q_pos, &kv_pos, block).unwrap();
        let slow = naive_gqa_attention(&q, &k, &v, p, &q_pos, &kv_pos).unwrap();
        assert!(
            fast.out.approx_eq(&slow.out, 1e-4).unwrap(),
            "out mismatch: {}",
            fast.out.max_abs_diff(&slow.out).unwrap()
        );
        assert!(fast.lse.approx_eq(&slow.lse, 1e-4).unwrap());
    }

    #[test]
    fn matches_naive_various_block_sizes() {
        let p = params(4, 2, 8);
        for block in [1, 2, 3, 7, 16, 64] {
            compare_with_naive(6, 13, &p, block, 42);
        }
    }

    #[test]
    fn matches_naive_block_larger_than_kv() {
        let p = params(2, 1, 4);
        compare_with_naive(3, 5, &p, 100, 7);
    }

    #[test]
    fn matches_naive_mqa() {
        let p = params(8, 1, 4);
        compare_with_naive(4, 9, &p, 3, 1);
    }

    #[test]
    fn handles_pad_slots() {
        let p = params(1, 1, 2);
        let mut rng = DetRng::new(2);
        let q = rng.tensor(&[2, 1, 2]);
        let k = rng.tensor(&[4, 1, 2]);
        let v = rng.tensor(&[4, 1, 2]);
        let kv_pos = [0, PAD, 1, PAD];
        let q_pos = [0, 1];
        let fast = blocked_gqa_attention(&q, &k, &v, &p, &q_pos, &kv_pos, 2).unwrap();
        let slow = naive_gqa_attention(&q, &k, &v, &p, &q_pos, &kv_pos).unwrap();
        assert!(fast.out.approx_eq(&slow.out, 1e-5).unwrap());
        assert!(fast.lse.approx_eq(&slow.lse, 1e-5).unwrap());
    }

    #[test]
    fn fully_masked_query_matches_naive_convention() {
        let p = params(1, 1, 2);
        let mut rng = DetRng::new(3);
        let q = rng.tensor(&[1, 1, 2]);
        let k = rng.tensor(&[2, 1, 2]);
        let v = rng.tensor(&[2, 1, 2]);
        let out = blocked_gqa_attention(&q, &k, &v, &p, &[0], &[5, 6], 1).unwrap();
        assert_eq!(out.lse.as_slice(), &[f32::NEG_INFINITY]);
        assert!(out.out.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn rejects_zero_block_size() {
        let p = params(1, 1, 2);
        let q = Tensor::zeros(&[1, 1, 2]);
        let k = Tensor::zeros(&[1, 1, 2]);
        let v = Tensor::zeros(&[1, 1, 2]);
        assert!(blocked_gqa_attention(&q, &k, &v, &p, &[0], &[0], 0).is_err());
    }

    #[test]
    fn large_score_magnitudes_stay_stable() {
        // Scores around ±60 would overflow exp without the online max trick.
        let p = AttentionParams::with_scale(GqaShape::new(1, 1, 1).unwrap(), 60.0);
        let q = Tensor::from_vec(vec![1.0], &[1, 1, 1]).unwrap();
        let k = Tensor::from_vec(vec![1.0, -1.0, 0.9], &[3, 1, 1]).unwrap();
        let v = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1, 1]).unwrap();
        let pos = [0, 1, 2];
        let fast = blocked_gqa_attention(&q, &k, &v, &p, &[2], &pos, 1).unwrap();
        let slow = naive_gqa_attention(&q, &k, &v, &p, &[2], &pos).unwrap();
        assert!(fast.out.as_slice()[0].is_finite());
        assert!(fast.out.approx_eq(&slow.out, 1e-4).unwrap());
    }
}
