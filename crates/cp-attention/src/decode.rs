//! Split-KV decode attention (the Flash-Decoding pattern).

use crate::naive::{check_positions, naive_attend_range};
use crate::{merge_partials, AttentionError, AttentionOutput, AttentionParams, KvSource};
use cp_tensor::Tensor;

/// Decode-oriented attention that splits the KV sequence into `n_splits`
/// chunks, computes partial attention against each, and merges the partials
/// (the Flash-Decoding structure the paper uses with 256 K/V splits).
///
/// During decode there is one query per sequence but a very long KV history;
/// splitting the KV axis is what recovers parallelism. Because the partials
/// are merged with the exact LSE-weighted formula, the result is identical
/// to attending over the whole KV at once — which is also precisely the
/// mechanism ring pass-Q decode relies on across CP ranks, so this kernel
/// doubles as a single-rank model of it.
///
/// # Errors
///
/// Same input requirements as [`naive_gqa_attention`]; additionally
/// `n_splits` must be positive.
///
/// # Example
///
/// ```
/// use cp_attention::{flash_decode, naive_gqa_attention, AttentionParams, GqaShape};
/// use cp_tensor::DetRng;
///
/// # fn main() -> Result<(), cp_attention::AttentionError> {
/// let params = AttentionParams::for_shape(GqaShape::new(4, 1, 8)?);
/// let mut rng = DetRng::new(8);
/// let q = rng.tensor(&[1, 4, 8]);          // one decode token
/// let k = rng.tensor(&[100, 1, 8]);        // long KV history
/// let v = rng.tensor(&[100, 1, 8]);
/// let kv_pos: Vec<usize> = (0..100).collect();
/// let split = flash_decode(&q, &k, &v, &params, &[100], &kv_pos, 8)?;
/// let full = naive_gqa_attention(&q, &k, &v, &params, &[100], &kv_pos)?;
/// assert!(split.out.approx_eq(&full.out, 1e-4).unwrap());
/// # Ok(())
/// # }
/// ```
pub fn flash_decode(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    params: &AttentionParams,
    q_pos: &[usize],
    kv_pos: &[usize],
    n_splits: usize,
) -> Result<AttentionOutput, AttentionError> {
    flash_decode_source(
        q,
        &KvSource::contiguous(k, v),
        params,
        q_pos,
        kv_pos,
        n_splits,
    )
}

/// [`flash_decode`] over a [`KvSource`] — contiguous tensors or a paged KV
/// cache view — with zero materialization.
///
/// Split boundaries are computed from `(t_kv, n_splits)` exactly as in
/// [`flash_decode`], and each split runs the reference kernel's per-row
/// arithmetic through the source's O(1) row lookup, so paged and contiguous
/// storage produce **bit-identical** results for the same inputs.
///
/// # Errors
///
/// Same conditions as [`flash_decode`].
pub fn flash_decode_source(
    q: &Tensor,
    kv: &KvSource<'_>,
    params: &AttentionParams,
    q_pos: &[usize],
    kv_pos: &[usize],
    n_splits: usize,
) -> Result<AttentionOutput, AttentionError> {
    if n_splits == 0 {
        return Err(AttentionError::InvalidShape {
            reason: "n_splits must be positive".to_string(),
        });
    }
    let t_kv = kv.check(&params.shape)?;
    if t_kv == 0 {
        // No KV at all: every query is fully masked.
        let t_q = params.shape.check_q(q)?;
        return Ok(AttentionOutput::masked(
            t_q,
            params.shape.n_heads(),
            params.shape.head_dim(),
        ));
    }
    check_positions("kv_pos", t_kv, kv_pos)?;
    let n_splits = n_splits.min(t_kv);
    let chunk = t_kv.div_ceil(n_splits);
    let mut partials = Vec::with_capacity(n_splits);
    let mut start = 0;
    for pos_chunk in kv_pos.chunks(chunk) {
        partials.push(naive_attend_range(q, kv, params, q_pos, pos_chunk, start)?);
        start += pos_chunk.len();
    }
    merge_partials(partials.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive_gqa_attention, GqaShape};
    use cp_tensor::DetRng;

    fn params(nh: usize, nkv: usize, dh: usize) -> AttentionParams {
        AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap())
    }

    #[test]
    fn matches_unsplit_for_various_split_counts() {
        let p = params(4, 2, 8);
        let mut rng = DetRng::new(77);
        let q = rng.tensor(&[1, 4, 8]);
        let k = rng.tensor(&[37, 2, 8]);
        let v = rng.tensor(&[37, 2, 8]);
        let kv_pos: Vec<usize> = (0..37).collect();
        let full = naive_gqa_attention(&q, &k, &v, &p, &[37], &kv_pos).unwrap();
        for splits in [1, 2, 3, 5, 37, 256] {
            let s = flash_decode(&q, &k, &v, &p, &[37], &kv_pos, splits).unwrap();
            assert!(s.out.approx_eq(&full.out, 1e-4).unwrap(), "splits={splits}");
            assert!(s.lse.approx_eq(&full.lse, 1e-4).unwrap());
        }
    }

    #[test]
    fn batch_of_decode_tokens() {
        // Decode with batch 3: three queries, each at its own position.
        let p = params(2, 1, 4);
        let mut rng = DetRng::new(6);
        let q = rng.tensor(&[3, 2, 4]);
        let k = rng.tensor(&[20, 1, 4]);
        let v = rng.tensor(&[20, 1, 4]);
        let kv_pos: Vec<usize> = (0..20).collect();
        let q_pos = [19, 10, 5];
        let full = naive_gqa_attention(&q, &k, &v, &p, &q_pos, &kv_pos).unwrap();
        let split = flash_decode(&q, &k, &v, &p, &q_pos, &kv_pos, 4).unwrap();
        assert!(split.out.approx_eq(&full.out, 1e-4).unwrap());
    }

    #[test]
    fn empty_kv_returns_masked() {
        let p = params(2, 1, 4);
        let q = DetRng::new(1).tensor(&[2, 2, 4]);
        let k = Tensor::zeros(&[0, 1, 4]);
        let v = Tensor::zeros(&[0, 1, 4]);
        let out = flash_decode(&q, &k, &v, &p, &[0, 1], &[], 4).unwrap();
        assert_eq!(out.tokens(), 2);
        assert!(out.lse.as_slice().iter().all(|&l| l == f32::NEG_INFINITY));
    }

    #[test]
    fn rejects_zero_splits() {
        let p = params(1, 1, 2);
        let q = Tensor::zeros(&[1, 1, 2]);
        let k = Tensor::zeros(&[1, 1, 2]);
        let v = Tensor::zeros(&[1, 1, 2]);
        assert!(flash_decode(&q, &k, &v, &p, &[0], &[0], 0).is_err());
    }

    #[test]
    fn more_splits_than_kv_is_clamped() {
        let p = params(1, 1, 2);
        let mut rng = DetRng::new(4);
        let q = rng.tensor(&[1, 1, 2]);
        let k = rng.tensor(&[3, 1, 2]);
        let v = rng.tensor(&[3, 1, 2]);
        let pos = [0, 1, 2];
        let out = flash_decode(&q, &k, &v, &p, &[2], &pos, 1000).unwrap();
        let full = naive_gqa_attention(&q, &k, &v, &p, &[2], &pos).unwrap();
        assert!(out.out.approx_eq(&full.out, 1e-5).unwrap());
    }
}
