//! Error type for attention kernels.

use std::error::Error;
use std::fmt;

use cp_tensor::TensorError;

/// Error returned by attention kernels and merge attention.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AttentionError {
    /// The query/key/value head configuration is invalid (e.g. `n_heads` not
    /// a multiple of `n_kv_heads`, or a zero dimension).
    InvalidShape {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A tensor's shape does not match what the kernel expects.
    BadTensorShape {
        /// Which input is malformed (`"q"`, `"k"`, `"v"`, `"q_pos"`, ...).
        input: &'static str,
        /// Expected shape (elements of 0 mean "any").
        expected: Vec<usize>,
        /// Shape actually supplied.
        actual: Vec<usize>,
    },
    /// A position array length disagrees with its tensor's token dimension.
    PositionLengthMismatch {
        /// Which position array (`"q_pos"` or `"kv_pos"`).
        input: &'static str,
        /// Token count of the corresponding tensor.
        tokens: usize,
        /// Length of the supplied position array.
        positions: usize,
    },
    /// Merge attention was given no partial results, or partials with
    /// disagreeing shapes.
    BadPartials {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for AttentionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttentionError::InvalidShape { reason } => {
                write!(f, "invalid attention shape: {reason}")
            }
            AttentionError::BadTensorShape {
                input,
                expected,
                actual,
            } => write!(
                f,
                "input `{input}` has shape {actual:?}, expected {expected:?}"
            ),
            AttentionError::PositionLengthMismatch {
                input,
                tokens,
                positions,
            } => write!(f, "`{input}` has {positions} positions for {tokens} tokens"),
            AttentionError::BadPartials { reason } => {
                write!(f, "cannot merge partial outputs: {reason}")
            }
            AttentionError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
        }
    }
}

impl Error for AttentionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AttentionError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for AttentionError {
    fn from(e: TensorError) -> Self {
        AttentionError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AttentionError::BadTensorShape {
            input: "q",
            expected: vec![0, 4, 8],
            actual: vec![2, 3, 8],
        };
        let s = e.to_string();
        assert!(s.contains('q'));
        assert!(s.contains("[2, 3, 8]"));
    }

    #[test]
    fn tensor_error_propagates_source() {
        let e = AttentionError::from(TensorError::EmptyInput);
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttentionError>();
    }
}
