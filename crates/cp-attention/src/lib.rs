//! Exact grouped-query attention (GQA) kernels with log-sum-exp outputs and
//! merge attention, the numeric core of context-parallel inference.
//!
//! The paper's ring pass-KV / pass-Q algorithms are *lossless, exact*
//! variants of dense causal attention: each rank computes partial attention
//! between its queries and a shard of the keys/values, and the partials are
//! combined with **merge attention** (Appendix B, Eq. 4) using each partial's
//! per-query log-sum-exp (LSE). This crate provides everything needed to do —
//! and to verify — that:
//!
//! * [`naive_gqa_attention`] — the auditable reference kernel,
//! * [`blocked_gqa_attention`] — a flash-style single-pass online-softmax
//!   kernel (stands in for FlashAttention-3),
//! * [`flash_decode`] — a split-KV decode kernel (stands in for
//!   Flash-Decoding), built from partials + merge,
//! * [`merge_partials`] — merge attention itself.
//!
//! All kernels take **global position arrays** for queries and keys instead
//! of assuming contiguous layouts: `kv_pos[j] <= q_pos[i]` is the causal
//! rule. This is what lets the load-balanced 2N-chunk sharding of the paper
//! (§3.5.1) — where each rank holds *non-contiguous* slices of the sequence —
//! remain exact. Padded KV slots use the [`PAD`] sentinel and never attend.
//!
//! # Example: splitting KV and merging is exact
//!
//! ```
//! use cp_attention::{merge_partials, naive_gqa_attention, AttentionParams, GqaShape};
//! use cp_tensor::DetRng;
//!
//! # fn main() -> Result<(), cp_attention::AttentionError> {
//! let shape = GqaShape::new(4, 2, 8)?;
//! let params = AttentionParams::for_shape(shape);
//! let mut rng = DetRng::new(1);
//! let (t, dh) = (6, 8);
//! let q = rng.tensor(&[t, 4, dh]);
//! let k = rng.tensor(&[t, 2, dh]);
//! let v = rng.tensor(&[t, 2, dh]);
//! let pos: Vec<usize> = (0..t).collect();
//!
//! let full = naive_gqa_attention(&q, &k, &v, &params, &pos, &pos)?;
//!
//! // Split keys/values in two, attend to each half, then merge.
//! let (k1, k2) = (k.slice_dim0(0..3).unwrap(), k.slice_dim0(3..t).unwrap());
//! let (v1, v2) = (v.slice_dim0(0..3).unwrap(), v.slice_dim0(3..t).unwrap());
//! let p1 = naive_gqa_attention(&q, &k1, &v1, &params, &pos, &pos[..3])?;
//! let p2 = naive_gqa_attention(&q, &k2, &v2, &params, &pos, &pos[3..])?;
//! let merged = merge_partials([&p1, &p2])?;
//! assert!(merged.out.approx_eq(&full.out, 1e-4).unwrap());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
mod blocked;
mod decode;
mod error;
mod naive;
mod output;
mod shape;
mod source;

pub use approx::{approx_gqa_attention, ApproxPolicy};
pub use blocked::{
    blocked_gqa_attention, blocked_gqa_attention_on, blocked_gqa_attention_source,
    blocked_gqa_attention_with_threads,
};
pub use decode::{flash_decode, flash_decode_source};
pub use error::AttentionError;
pub use naive::naive_gqa_attention;
pub use output::{merge_partials, AttentionOutput};
pub use shape::{AttentionParams, GqaShape};
pub use source::KvSource;

/// Sentinel position marking a padded KV slot; padded slots are masked out of
/// every attention computation.
pub const PAD: usize = usize::MAX;
