//! The reference GQA attention kernel.

use crate::{AttentionError, AttentionOutput, AttentionParams, KvSource, PAD};
use cp_tensor::{softmax_row_in_place, Tensor};

/// Validates position arrays against their tensors' token counts.
pub(crate) fn check_positions(
    input: &'static str,
    tokens: usize,
    positions: &[usize],
) -> Result<(), AttentionError> {
    if positions.len() != tokens {
        return Err(AttentionError::PositionLengthMismatch {
            input,
            tokens,
            positions: positions.len(),
        });
    }
    Ok(())
}

/// Exact grouped-query scaled-dot-product attention with position-based
/// causal masking — the auditable reference every other kernel is tested
/// against.
///
/// * `q` has shape `[t_q, n_heads, head_dim]`, `k`/`v` have shape
///   `[t_kv, n_kv_heads, head_dim]`.
/// * `q_pos[i]` / `kv_pos[j]` are *global* sequence positions; query `i`
///   attends to kv `j` iff `kv_pos[j] <= q_pos[i]` and `kv_pos[j] != PAD`.
///
/// Returns the output embeddings and per-(query, head) LSE; queries whose
/// mask admits no kv at all produce a zero row with `-inf` LSE (so the
/// result can still participate in [`crate::merge_partials`]).
///
/// # Errors
///
/// Returns [`AttentionError::BadTensorShape`] /
/// [`AttentionError::PositionLengthMismatch`] if inputs are inconsistent
/// with `params.shape`, or if `k` and `v` token counts differ.
///
/// # Example
///
/// ```
/// use cp_attention::{naive_gqa_attention, AttentionParams, GqaShape};
/// use cp_tensor::DetRng;
///
/// # fn main() -> Result<(), cp_attention::AttentionError> {
/// let params = AttentionParams::for_shape(GqaShape::new(2, 1, 4)?);
/// let mut rng = DetRng::new(9);
/// let q = rng.tensor(&[3, 2, 4]);
/// let k = rng.tensor(&[3, 1, 4]);
/// let v = rng.tensor(&[3, 1, 4]);
/// let pos = [0, 1, 2];
/// let out = naive_gqa_attention(&q, &k, &v, &params, &pos, &pos)?;
/// assert_eq!(out.out.shape(), &[3, 2, 4]);
/// # Ok(())
/// # }
/// ```
pub fn naive_gqa_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    params: &AttentionParams,
    q_pos: &[usize],
    kv_pos: &[usize],
) -> Result<AttentionOutput, AttentionError> {
    let shape = &params.shape;
    let t_q = shape.check_q(q)?;
    let t_k = shape.check_kv(k, "k")?;
    let t_v = shape.check_kv(v, "v")?;
    if t_k != t_v {
        return Err(AttentionError::BadTensorShape {
            input: "v",
            expected: vec![t_k, shape.n_kv_heads(), shape.head_dim()],
            actual: v.shape().to_vec(),
        });
    }
    check_positions("q_pos", t_q, q_pos)?;
    check_positions("kv_pos", t_k, kv_pos)?;

    let (n_heads, dh) = (shape.n_heads(), shape.head_dim());
    let q_row = n_heads * dh;
    let kv_row = shape.n_kv_heads() * dh;
    let mut out = Tensor::zeros(&[t_q, n_heads, dh]);
    let mut lse = Tensor::full(&[t_q, n_heads], f32::NEG_INFINITY);
    let mut scores = vec![0.0f32; t_k];

    // Lockstep iteration: query rows of `q`/`out`/`lse` move with `q_pos`,
    // kv rows of `k`/`v` move with `kv_pos` and the score buffer.
    for (((qrow, orow), lse_row), &qpi) in q
        .as_slice()
        .chunks_exact(q_row)
        .zip(out.as_mut_slice().chunks_exact_mut(q_row))
        .zip(lse.as_mut_slice().chunks_exact_mut(n_heads))
        .zip(q_pos)
    {
        for (h, ((qvec, ohead), lse_slot)) in qrow
            .chunks_exact(dh)
            .zip(orow.chunks_exact_mut(dh))
            .zip(lse_row.iter_mut())
            .enumerate()
        {
            let koff = shape.kv_head_for(h) * dh;
            for ((score, &kvp), krow) in scores
                .iter_mut()
                .zip(kv_pos)
                .zip(k.as_slice().chunks_exact(kv_row))
            {
                *score = if kvp == PAD || kvp > qpi {
                    f32::NEG_INFINITY
                } else {
                    let kvec = krow.iter().skip(koff);
                    let dot: f32 = qvec.iter().zip(kvec).map(|(a, b)| a * b).sum();
                    dot * params.scale
                };
            }
            let row_lse = softmax_row_in_place(&mut scores);
            if row_lse == f32::NEG_INFINITY {
                continue; // fully masked query: zero output, -inf LSE
            }
            *lse_slot = row_lse;
            for (&w, vrow) in scores.iter().zip(v.as_slice().chunks_exact(kv_row)) {
                if w == 0.0 {
                    continue;
                }
                for (o, &x) in ohead.iter_mut().zip(vrow.iter().skip(koff)) {
                    *o += w * x;
                }
            }
        }
    }
    AttentionOutput::new(out, lse)
}

/// [`naive_gqa_attention`] restricted to KV rows
/// `[start, start + pos_chunk.len())` of a [`KvSource`].
///
/// This performs, per `(query, head)`, the exact f32 operation sequence of
/// the reference kernel applied to a contiguous slice of those rows — the
/// same full-score-buffer fill, the same `softmax_row_in_place`, the same
/// zero-weight skip — so `flash_decode` over a paged source is bit-identical
/// to `flash_decode` over `gather()`ed tensors. KV head vectors come
/// through [`KvSource::k_head`] / [`KvSource::v_head`], so an INT8 source
/// dequantizes per head into the reused scratch with no materialized f32
/// cache copy. Out-of-range row lookups (impossible after the caller's
/// shape checks) fold into the masked branch.
pub(crate) fn naive_attend_range(
    q: &Tensor,
    kv: &KvSource<'_>,
    params: &AttentionParams,
    q_pos: &[usize],
    pos_chunk: &[usize],
    start: usize,
) -> Result<AttentionOutput, AttentionError> {
    let shape = &params.shape;
    let t_q = shape.check_q(q)?;
    check_positions("q_pos", t_q, q_pos)?;

    let (n_heads, dh) = (shape.n_heads(), shape.head_dim());
    let q_row = n_heads * dh;
    let mut out = Tensor::zeros(&[t_q, n_heads, dh]);
    let mut lse = Tensor::full(&[t_q, n_heads], f32::NEG_INFINITY);
    let mut scores = vec![0.0f32; pos_chunk.len()];
    let mut head_buf = vec![0.0f32; dh];

    for (((qrow, orow), lse_row), &qpi) in q
        .as_slice()
        .chunks_exact(q_row)
        .zip(out.as_mut_slice().chunks_exact_mut(q_row))
        .zip(lse.as_mut_slice().chunks_exact_mut(n_heads))
        .zip(q_pos)
    {
        for (h, ((qvec, ohead), lse_slot)) in qrow
            .chunks_exact(dh)
            .zip(orow.chunks_exact_mut(dh))
            .zip(lse_row.iter_mut())
            .enumerate()
        {
            let kvh = shape.kv_head_for(h);
            for (j, (score, &kvp)) in scores.iter_mut().zip(pos_chunk).enumerate() {
                *score = match kv.k_head(start + j, kvh, dh, &mut head_buf) {
                    Some(kvec) if kvp != PAD && kvp <= qpi => {
                        let dot: f32 = qvec.iter().zip(kvec).map(|(a, b)| a * b).sum();
                        dot * params.scale
                    }
                    _ => f32::NEG_INFINITY,
                };
            }
            let row_lse = softmax_row_in_place(&mut scores);
            if row_lse == f32::NEG_INFINITY {
                continue; // fully masked query: zero output, -inf LSE
            }
            *lse_slot = row_lse;
            for (j, &w) in scores.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                if let Some(vvec) = kv.v_head(start + j, kvh, dh, &mut head_buf) {
                    for (o, &x) in ohead.iter_mut().zip(vvec) {
                        *o += w * x;
                    }
                }
            }
        }
    }
    AttentionOutput::new(out, lse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GqaShape;
    use cp_tensor::DetRng;

    fn params(nh: usize, nkv: usize, dh: usize) -> AttentionParams {
        AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap())
    }

    #[test]
    fn single_token_attends_to_itself() {
        let p = params(1, 1, 2);
        let q = Tensor::from_vec(vec![1.0, 0.0], &[1, 1, 2]).unwrap();
        let k = Tensor::from_vec(vec![1.0, 0.0], &[1, 1, 2]).unwrap();
        let v = Tensor::from_vec(vec![3.0, 7.0], &[1, 1, 2]).unwrap();
        let out = naive_gqa_attention(&q, &k, &v, &p, &[0], &[0]).unwrap();
        // Only one kv: softmax weight is 1, so output == v.
        assert!(out.out.approx_eq(&v, 1e-6).unwrap());
        // LSE = scaled dot = 1/sqrt(2).
        let expected = 1.0 / (2.0f32).sqrt();
        assert!((out.lse.as_slice()[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let p = params(1, 1, 1);
        // Two tokens; query 0 must not see kv 1.
        let q = Tensor::from_vec(vec![1.0, 1.0], &[2, 1, 1]).unwrap();
        let k = Tensor::from_vec(vec![0.0, 100.0], &[2, 1, 1]).unwrap();
        let v = Tensor::from_vec(vec![1.0, -1.0], &[2, 1, 1]).unwrap();
        let out = naive_gqa_attention(&q, &k, &v, &p, &[0, 1], &[0, 1]).unwrap();
        // Query 0 sees only v[0] = 1.
        assert!((out.out.at(&[0, 0, 0]).unwrap() - 1.0).abs() < 1e-6);
        // Query 1 sees both, dominated by the huge k[1] score -> v[1] = -1.
        assert!(out.out.at(&[1, 0, 0]).unwrap() < -0.99);
    }

    #[test]
    fn pad_positions_are_ignored() {
        let p = params(1, 1, 1);
        let q = Tensor::from_vec(vec![1.0], &[1, 1, 1]).unwrap();
        let k = Tensor::from_vec(vec![0.0, 1000.0], &[2, 1, 1]).unwrap();
        let v = Tensor::from_vec(vec![5.0, -100.0], &[2, 1, 1]).unwrap();
        let out = naive_gqa_attention(&q, &k, &v, &p, &[10], &[0, PAD]).unwrap();
        assert!((out.out.at(&[0, 0, 0]).unwrap() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn fully_masked_query_is_zero_with_neg_inf_lse() {
        let p = params(1, 1, 1);
        let q = Tensor::from_vec(vec![1.0], &[1, 1, 1]).unwrap();
        let k = Tensor::from_vec(vec![1.0], &[1, 1, 1]).unwrap();
        let v = Tensor::from_vec(vec![9.0], &[1, 1, 1]).unwrap();
        // kv at position 5, query at position 2: nothing visible.
        let out = naive_gqa_attention(&q, &k, &v, &p, &[2], &[5]).unwrap();
        assert_eq!(out.out.as_slice(), &[0.0]);
        assert_eq!(out.lse.as_slice(), &[f32::NEG_INFINITY]);
    }

    #[test]
    fn gqa_heads_share_kv_heads() {
        // 4 query heads over 2 kv heads; head pairs (0,1) and (2,3) must see
        // identical kv, so with identical q vectors the outputs per pair match.
        let p = params(4, 2, 3);
        let mut rng = DetRng::new(5);
        let mut q = Tensor::zeros(&[2, 4, 3]);
        for t in 0..2 {
            let base: Vec<f32> = (0..3).map(|_| rng.next_signed()).collect();
            for h in 0..4 {
                for (d, &b) in base.iter().enumerate() {
                    q.set(&[t, h, d], b).unwrap();
                }
            }
        }
        let k = rng.tensor(&[2, 2, 3]);
        let v = rng.tensor(&[2, 2, 3]);
        let pos = [0, 1];
        let out = naive_gqa_attention(&q, &k, &v, &p, &pos, &pos).unwrap();
        for t in 0..2 {
            for d in 0..3 {
                assert_eq!(
                    out.out.at(&[t, 0, d]).unwrap(),
                    out.out.at(&[t, 1, d]).unwrap()
                );
                assert_eq!(
                    out.out.at(&[t, 2, d]).unwrap(),
                    out.out.at(&[t, 3, d]).unwrap()
                );
            }
        }
    }

    #[test]
    fn partial_prefill_offset_positions() {
        // New tokens at positions 3,4 attending over cached kv 0..3 plus
        // themselves: equivalent to slicing the full computation.
        let p = params(2, 1, 4);
        let mut rng = DetRng::new(11);
        let q_full = rng.tensor(&[5, 2, 4]);
        let k = rng.tensor(&[5, 1, 4]);
        let v = rng.tensor(&[5, 1, 4]);
        let all_pos: Vec<usize> = (0..5).collect();
        let full = naive_gqa_attention(&q_full, &k, &v, &p, &all_pos, &all_pos).unwrap();

        let q_new = q_full.slice_dim0(3..5).unwrap();
        let partial = naive_gqa_attention(&q_new, &k, &v, &p, &all_pos[3..], &all_pos).unwrap();
        let expected = full.slice_tokens(3, 5).unwrap();
        assert!(partial.out.approx_eq(&expected.out, 1e-5).unwrap());
        assert!(partial.lse.approx_eq(&expected.lse, 1e-5).unwrap());
    }

    #[test]
    fn rejects_inconsistent_inputs() {
        let p = params(2, 1, 4);
        let q = Tensor::zeros(&[2, 2, 4]);
        let k = Tensor::zeros(&[3, 1, 4]);
        let v = Tensor::zeros(&[2, 1, 4]); // k/v length mismatch
        assert!(naive_gqa_attention(&q, &k, &v, &p, &[0, 1], &[0, 1, 2]).is_err());
        let v3 = Tensor::zeros(&[3, 1, 4]);
        // wrong q_pos length
        assert!(naive_gqa_attention(&q, &k, &v3, &p, &[0], &[0, 1, 2]).is_err());
        // wrong kv_pos length
        assert!(naive_gqa_attention(&q, &k, &v3, &p, &[0, 1], &[0]).is_err());
        // wrong head count
        let bad_q = Tensor::zeros(&[2, 3, 4]);
        assert!(naive_gqa_attention(&bad_q, &k, &v3, &p, &[0, 1], &[0, 1, 2]).is_err());
    }

    #[test]
    fn empty_query_batch_is_ok() {
        let p = params(2, 1, 4);
        let q = Tensor::zeros(&[0, 2, 4]);
        let k = Tensor::zeros(&[3, 1, 4]);
        let v = Tensor::zeros(&[3, 1, 4]);
        let out = naive_gqa_attention(&q, &k, &v, &p, &[], &[0, 1, 2]).unwrap();
        assert_eq!(out.tokens(), 0);
    }
}
