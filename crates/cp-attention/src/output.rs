//! Attention outputs with per-query LSE, and merge attention (Eq. 4).

use crate::AttentionError;
use cp_tensor::Tensor;

/// The result of an (possibly partial) attention computation: the output
/// embeddings and the per-(query, head) log-sum-exp of the attention scores.
///
/// The LSE is what makes partial results *mergeable*: given outputs of the
/// same queries against disjoint KV shards, [`merge_partials`] reconstructs
/// the exact attention over the concatenated KV (paper Appendix B, Eq. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionOutput {
    /// Output embeddings, shape `[tokens, n_heads, head_dim]`.
    pub out: Tensor,
    /// Log-sum-exp of scores, shape `[tokens, n_heads]`. Fully-masked rows
    /// hold `f32::NEG_INFINITY` and a zero output row.
    pub lse: Tensor,
}

impl AttentionOutput {
    /// Creates an output pair, validating that shapes are consistent.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::BadTensorShape`] if `out` is not rank 3, or
    /// `lse` does not have shape `[out.dim0(), out.shape()[1]]`.
    pub fn new(out: Tensor, lse: Tensor) -> Result<Self, AttentionError> {
        let &[tokens, heads, _] = out.shape() else {
            return Err(AttentionError::BadTensorShape {
                input: "out",
                expected: vec![0, 0, 0],
                actual: out.shape().to_vec(),
            });
        };
        let expected = vec![tokens, heads];
        if lse.shape() != expected.as_slice() {
            return Err(AttentionError::BadTensorShape {
                input: "lse",
                expected,
                actual: lse.shape().to_vec(),
            });
        }
        Ok(AttentionOutput { out, lse })
    }

    /// An all-masked output for `tokens` queries: zero embeddings and
    /// `NEG_INFINITY` LSEs. Merging this with anything is a no-op.
    pub fn masked(tokens: usize, n_heads: usize, head_dim: usize) -> Self {
        AttentionOutput {
            out: Tensor::zeros(&[tokens, n_heads, head_dim]),
            lse: Tensor::full(&[tokens, n_heads], f32::NEG_INFINITY),
        }
    }

    /// Number of query tokens.
    pub fn tokens(&self) -> usize {
        self.out.dim0()
    }

    /// Number of query heads.
    pub fn n_heads(&self) -> usize {
        self.out.shape().get(1).copied().unwrap_or(0)
    }

    /// Per-head embedding dimension.
    pub fn head_dim(&self) -> usize {
        self.out.shape().get(2).copied().unwrap_or(0)
    }

    /// Concatenates outputs along the token dimension.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::BadPartials`] for an empty list or
    /// mismatched head shapes.
    pub fn concat_tokens<'a, I>(parts: I) -> Result<Self, AttentionError>
    where
        I: IntoIterator<Item = &'a AttentionOutput>,
    {
        let parts: Vec<&AttentionOutput> = parts.into_iter().collect();
        if parts.is_empty() {
            return Err(AttentionError::BadPartials {
                reason: "no outputs to concatenate".to_string(),
            });
        }
        let out = Tensor::concat_dim0(parts.iter().map(|p| &p.out))?;
        let lse = Tensor::concat_dim0(parts.iter().map(|p| &p.lse))?;
        Ok(AttentionOutput { out, lse })
    }

    /// Copies the token range `[start, end)` into a new output.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds errors from the underlying tensors.
    pub fn slice_tokens(&self, start: usize, end: usize) -> Result<Self, AttentionError> {
        Ok(AttentionOutput {
            out: self.out.slice_dim0(start..end)?,
            lse: self.lse.slice_dim0(start..end)?,
        })
    }

    /// Folds `other` into `self` with the pairwise form of merge attention
    /// (Eq. 4): per `(query, head)`, reweight both partials by
    /// `exp(LSE - max)` and renormalise.
    ///
    /// Because Eq. 4 is associative, a ring loop can fold each hop's partial
    /// into one running accumulator instead of collecting every hop's
    /// [`AttentionOutput`] and batch-merging at the end — O(1) partial
    /// memory instead of O(hops). A pairwise fold rescales at different
    /// points than the batch [`merge_partials`], so chained results agree
    /// with it to rounding (not bitwise); a single `merge_in_place` of two
    /// partials is exactly `merge_partials([a, b])`.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::BadPartials`] if shapes disagree.
    pub fn merge_in_place(&mut self, other: &AttentionOutput) -> Result<(), AttentionError> {
        if self.out.shape() != other.out.shape() || self.lse.shape() != other.lse.shape() {
            return Err(AttentionError::BadPartials {
                reason: format!(
                    "partial shapes disagree: {:?}/{:?} vs {:?}/{:?}",
                    self.out.shape(),
                    self.lse.shape(),
                    other.out.shape(),
                    other.lse.shape()
                ),
            });
        }
        let head_dim = self.head_dim();
        let lse_buf = self.lse.as_mut_slice();
        if head_dim == 0 {
            // Degenerate embedding: only the LSEs carry information.
            for (lslot, &lb) in lse_buf.iter_mut().zip(other.lse.as_slice()) {
                let m = lslot.max(lb);
                if m != f32::NEG_INFINITY {
                    *lslot = m + (pair_weight(*lslot, m) + pair_weight(lb, m)).ln();
                }
            }
            return Ok(());
        }
        for ((ohead, lslot), (bhead, &lb)) in self
            .out
            .as_mut_slice()
            .chunks_exact_mut(head_dim)
            .zip(lse_buf.iter_mut())
            .zip(
                other
                    .out
                    .as_slice()
                    .chunks_exact(head_dim)
                    .zip(other.lse.as_slice()),
            )
        {
            let m = lslot.max(lb);
            if m == f32::NEG_INFINITY {
                continue; // both sides masked: keep zero row, -inf LSE
            }
            let wa = pair_weight(*lslot, m);
            let wb = pair_weight(lb, m);
            let denom = wa + wb;
            for (a, &b) in ohead.iter_mut().zip(bhead) {
                *a = (wa * *a + wb * b) / denom;
            }
            *lslot = m + denom.ln();
        }
        Ok(())
    }
}

/// Eq. 4 reweighting factor for one partial: `exp(lse - max)`, with a
/// masked partial (`-inf` LSE) contributing zero weight.
#[inline]
fn pair_weight(lse: f32, m: f32) -> f32 {
    if lse == f32::NEG_INFINITY {
        0.0
    } else {
        (lse - m).exp()
    }
}

/// Merge attention (paper Appendix B, Eq. 4): combines partial attention
/// outputs of the *same queries* against disjoint KV shards into the exact
/// attention over the union of the shards.
///
/// For each query/head, with partial outputs `O_s` and log-sum-exps `LSE_s`:
///
/// ```text
/// O = sum_s O_s * exp(LSE_s - LSE_max) / sum_s exp(LSE_s - LSE_max)
/// ```
///
/// and the merged LSE is `logsumexp_s(LSE_s)` — so merging is associative and
/// the result of a merge can itself be merged again (the engine relies on
/// this for hierarchical merges).
///
/// Fully-masked partials (`LSE = -inf`) contribute nothing; if *every*
/// partial is masked for a query, the merged row is zero with `-inf` LSE.
///
/// # Errors
///
/// Returns [`AttentionError::BadPartials`] if no partials are supplied or
/// their shapes disagree.
pub fn merge_partials<'a, I>(parts: I) -> Result<AttentionOutput, AttentionError>
where
    I: IntoIterator<Item = &'a AttentionOutput>,
{
    let parts: Vec<&AttentionOutput> = parts.into_iter().collect();
    let first = parts.first().ok_or_else(|| AttentionError::BadPartials {
        reason: "no partial outputs supplied".to_string(),
    })?;
    let shape = first.out.shape().to_vec();
    for p in &parts {
        if p.out.shape() != shape.as_slice() {
            return Err(AttentionError::BadPartials {
                reason: format!(
                    "partial shapes disagree: {:?} vs {:?}",
                    shape,
                    p.out.shape()
                ),
            });
        }
    }
    let &[tokens, n_heads, head_dim] = first.out.shape() else {
        return Err(AttentionError::BadPartials {
            reason: format!("partials must be rank 3, got {:?}", first.out.shape()),
        });
    };
    let mut out = Tensor::zeros(&[tokens, n_heads, head_dim]);
    let mut lse = Tensor::full(&[tokens, n_heads], f32::NEG_INFINITY);

    // Lockstep iteration: output heads move with LSE slots; per slot the
    // partials are folded in supply order, so the weighted sums accumulate
    // exactly as in the seed's index-based loop.
    let out_buf = out.as_mut_slice();
    let lse_buf = lse.as_mut_slice();
    for (t, (orow, lrow)) in out_buf
        .chunks_mut((n_heads * head_dim).max(1))
        .zip(lse_buf.chunks_mut(n_heads.max(1)))
        .enumerate()
    {
        for (h, (ohead, lslot)) in orow
            .chunks_mut(head_dim.max(1))
            .zip(lrow.iter_mut())
            .enumerate()
        {
            let lse_max = parts
                .iter()
                .filter_map(|p| p.lse.row(t).get(h).copied())
                .fold(f32::NEG_INFINITY, f32::max);
            if lse_max == f32::NEG_INFINITY {
                continue; // all partials masked: keep zero row, -inf LSE
            }
            let mut denom = 0.0f32;
            for p in &parts {
                let Some(&l) = p.lse.row(t).get(h) else {
                    continue;
                };
                if l == f32::NEG_INFINITY {
                    continue;
                }
                let w = (l - lse_max).exp();
                denom += w;
                if let Some(head) = p.out.row(t).get(h * head_dim..(h + 1) * head_dim) {
                    for (a, &x) in ohead.iter_mut().zip(head) {
                        *a += w * x;
                    }
                }
            }
            for a in ohead.iter_mut() {
                *a /= denom;
            }
            *lslot = lse_max + denom.ln();
        }
    }
    AttentionOutput::new(out, lse)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_output(
        tokens: usize,
        heads: usize,
        dim: usize,
        val: f32,
        lse: f32,
    ) -> AttentionOutput {
        AttentionOutput::new(
            Tensor::full(&[tokens, heads, dim], val),
            Tensor::full(&[tokens, heads], lse),
        )
        .unwrap()
    }

    #[test]
    fn new_validates_shapes() {
        let out = Tensor::zeros(&[2, 3, 4]);
        let lse = Tensor::zeros(&[2, 3]);
        assert!(AttentionOutput::new(out.clone(), lse).is_ok());
        let bad_lse = Tensor::zeros(&[3, 3]);
        assert!(AttentionOutput::new(out, bad_lse).is_err());
        let rank2 = Tensor::zeros(&[2, 3]);
        assert!(AttentionOutput::new(rank2, Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn merge_single_partial_is_identity() {
        let p = constant_output(2, 1, 3, 2.5, 0.7);
        let m = merge_partials([&p]).unwrap();
        assert!(m.out.approx_eq(&p.out, 1e-6).unwrap());
        assert!(m.lse.approx_eq(&p.lse, 1e-6).unwrap());
    }

    #[test]
    fn merge_equal_lse_averages() {
        let a = constant_output(1, 1, 2, 1.0, 0.0);
        let b = constant_output(1, 1, 2, 3.0, 0.0);
        let m = merge_partials([&a, &b]).unwrap();
        // Equal LSE: weights are equal, output is the mean.
        assert!((m.out.as_slice()[0] - 2.0).abs() < 1e-6);
        // Merged LSE = ln(e^0 + e^0) = ln 2.
        assert!((m.lse.as_slice()[0] - (2.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn merge_weights_by_lse() {
        // Partial a has LSE = ln(3), b has LSE = ln(1): a carries weight 3/4.
        let a = constant_output(1, 1, 1, 1.0, (3.0f32).ln());
        let b = constant_output(1, 1, 1, 5.0, 0.0);
        let m = merge_partials([&a, &b]).unwrap();
        let expected = (3.0 * 1.0 + 1.0 * 5.0) / 4.0;
        assert!((m.out.as_slice()[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn merge_ignores_masked_partials() {
        let a = constant_output(1, 1, 2, 4.0, 1.0);
        let masked = AttentionOutput::masked(1, 1, 2);
        let m = merge_partials([&a, &masked]).unwrap();
        assert!(m.out.approx_eq(&a.out, 1e-6).unwrap());
        assert!(m.lse.approx_eq(&a.lse, 1e-6).unwrap());
    }

    #[test]
    fn merge_all_masked_stays_masked() {
        let a = AttentionOutput::masked(2, 2, 3);
        let b = AttentionOutput::masked(2, 2, 3);
        let m = merge_partials([&a, &b]).unwrap();
        assert_eq!(m.lse.as_slice(), a.lse.as_slice());
        assert!(m.out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn merge_is_associative() {
        let a = constant_output(1, 1, 1, 1.0, 0.3);
        let b = constant_output(1, 1, 1, 2.0, -0.2);
        let c = constant_output(1, 1, 1, 3.0, 1.1);
        let flat = merge_partials([&a, &b, &c]).unwrap();
        let ab = merge_partials([&a, &b]).unwrap();
        let nested = merge_partials([&ab, &c]).unwrap();
        assert!(flat.out.approx_eq(&nested.out, 1e-5).unwrap());
        assert!(flat.lse.approx_eq(&nested.lse, 1e-5).unwrap());
    }

    #[test]
    fn merge_rejects_empty_and_mismatched() {
        assert!(merge_partials(std::iter::empty::<&AttentionOutput>()).is_err());
        let a = constant_output(1, 1, 2, 0.0, 0.0);
        let b = constant_output(2, 1, 2, 0.0, 0.0);
        assert!(merge_partials([&a, &b]).is_err());
    }

    #[test]
    fn concat_and_slice_tokens_roundtrip() {
        let a = constant_output(2, 1, 2, 1.0, 0.5);
        let b = constant_output(3, 1, 2, 2.0, -0.5);
        let joined = AttentionOutput::concat_tokens([&a, &b]).unwrap();
        assert_eq!(joined.tokens(), 5);
        let back = joined.slice_tokens(0, 2).unwrap();
        assert!(back.out.approx_eq(&a.out, 1e-6).unwrap());
        let tail = joined.slice_tokens(2, 5).unwrap();
        assert!(tail.out.approx_eq(&b.out, 1e-6).unwrap());
    }

    fn random_output(tokens: usize, heads: usize, dim: usize, seed: u64) -> AttentionOutput {
        let mut rng = cp_tensor::DetRng::new(seed);
        let out = rng.tensor(&[tokens, heads, dim]);
        // Small LSEs so exp() stays well-conditioned.
        let lse = rng.tensor(&[tokens, heads]).map(|x| x * 2.0);
        AttentionOutput::new(out, lse).unwrap()
    }

    #[test]
    fn merge_in_place_of_two_is_exactly_batch_merge() {
        // A single pairwise fold performs the same weighted sum in the same
        // order as merge_partials over two partials, so it is bitwise equal.
        let a = random_output(3, 2, 4, 21);
        let b = random_output(3, 2, 4, 22);
        let batch = merge_partials([&a, &b]).unwrap();
        let mut running = a.clone();
        running.merge_in_place(&b).unwrap();
        assert_eq!(running.out.as_slice(), batch.out.as_slice());
        assert_eq!(running.lse.as_slice(), batch.lse.as_slice());
    }

    #[test]
    fn running_merge_matches_batch_merge_partials() {
        // Chained pairwise folds rescale at different points than one batch
        // merge, so agreement is to rounding, not bitwise.
        let parts: Vec<AttentionOutput> = (0..5).map(|s| random_output(4, 3, 8, 30 + s)).collect();
        let batch = merge_partials(parts.iter()).unwrap();
        let mut running: Option<AttentionOutput> = None;
        for p in &parts {
            match running.as_mut() {
                None => running = Some(p.clone()),
                Some(acc) => acc.merge_in_place(p).unwrap(),
            }
        }
        let running = running.unwrap();
        assert!(running.out.approx_eq(&batch.out, 1e-5).unwrap());
        assert!(running.lse.approx_eq(&batch.lse, 1e-5).unwrap());
    }

    #[test]
    fn merge_in_place_masked_sides() {
        let a = constant_output(2, 1, 2, 4.0, 1.0);
        let masked = AttentionOutput::masked(2, 1, 2);

        // Folding a masked partial into a live one is a no-op on the values.
        let mut live = a.clone();
        live.merge_in_place(&masked).unwrap();
        assert!(live.out.approx_eq(&a.out, 1e-6).unwrap());
        assert!(live.lse.approx_eq(&a.lse, 1e-6).unwrap());

        // Folding a live partial into a masked accumulator adopts it.
        let mut acc = masked.clone();
        acc.merge_in_place(&a).unwrap();
        assert!(acc.out.approx_eq(&a.out, 1e-6).unwrap());
        assert!(acc.lse.approx_eq(&a.lse, 1e-6).unwrap());

        // Masked into masked stays masked.
        let mut both = AttentionOutput::masked(2, 1, 2);
        both.merge_in_place(&masked).unwrap();
        assert_eq!(both.lse.as_slice(), masked.lse.as_slice());
        assert!(both.out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn merge_in_place_rejects_mismatched_shapes() {
        let mut a = constant_output(1, 1, 2, 0.0, 0.0);
        let b = constant_output(2, 1, 2, 0.0, 0.0);
        assert!(a.merge_in_place(&b).is_err());
    }

    #[test]
    fn accessors_report_dims() {
        let a = constant_output(4, 3, 5, 0.0, 0.0);
        assert_eq!(a.tokens(), 4);
        assert_eq!(a.n_heads(), 3);
        assert_eq!(a.head_dim(), 5);
    }
}
