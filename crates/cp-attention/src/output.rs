//! Attention outputs with per-query LSE, and merge attention (Eq. 4).

use crate::AttentionError;
use cp_tensor::Tensor;

/// The result of an (possibly partial) attention computation: the output
/// embeddings and the per-(query, head) log-sum-exp of the attention scores.
///
/// The LSE is what makes partial results *mergeable*: given outputs of the
/// same queries against disjoint KV shards, [`merge_partials`] reconstructs
/// the exact attention over the concatenated KV (paper Appendix B, Eq. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionOutput {
    /// Output embeddings, shape `[tokens, n_heads, head_dim]`.
    pub out: Tensor,
    /// Log-sum-exp of scores, shape `[tokens, n_heads]`. Fully-masked rows
    /// hold `f32::NEG_INFINITY` and a zero output row.
    pub lse: Tensor,
}

impl AttentionOutput {
    /// Creates an output pair, validating that shapes are consistent.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::BadTensorShape`] if `out` is not rank 3, or
    /// `lse` does not have shape `[out.dim0(), out.shape()[1]]`.
    pub fn new(out: Tensor, lse: Tensor) -> Result<Self, AttentionError> {
        if out.rank() != 3 {
            return Err(AttentionError::BadTensorShape {
                input: "out",
                expected: vec![0, 0, 0],
                actual: out.shape().to_vec(),
            });
        }
        let expected = vec![out.shape()[0], out.shape()[1]];
        if lse.shape() != expected.as_slice() {
            return Err(AttentionError::BadTensorShape {
                input: "lse",
                expected,
                actual: lse.shape().to_vec(),
            });
        }
        Ok(AttentionOutput { out, lse })
    }

    /// An all-masked output for `tokens` queries: zero embeddings and
    /// `NEG_INFINITY` LSEs. Merging this with anything is a no-op.
    pub fn masked(tokens: usize, n_heads: usize, head_dim: usize) -> Self {
        AttentionOutput {
            out: Tensor::zeros(&[tokens, n_heads, head_dim]),
            lse: Tensor::full(&[tokens, n_heads], f32::NEG_INFINITY),
        }
    }

    /// Number of query tokens.
    pub fn tokens(&self) -> usize {
        self.out.dim0()
    }

    /// Number of query heads.
    pub fn n_heads(&self) -> usize {
        self.out.shape()[1]
    }

    /// Per-head embedding dimension.
    pub fn head_dim(&self) -> usize {
        self.out.shape()[2]
    }

    /// Concatenates outputs along the token dimension.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::BadPartials`] for an empty list or
    /// mismatched head shapes.
    pub fn concat_tokens<'a, I>(parts: I) -> Result<Self, AttentionError>
    where
        I: IntoIterator<Item = &'a AttentionOutput>,
    {
        let parts: Vec<&AttentionOutput> = parts.into_iter().collect();
        if parts.is_empty() {
            return Err(AttentionError::BadPartials {
                reason: "no outputs to concatenate".to_string(),
            });
        }
        let out = Tensor::concat_dim0(parts.iter().map(|p| &p.out))?;
        let lse = Tensor::concat_dim0(parts.iter().map(|p| &p.lse))?;
        Ok(AttentionOutput { out, lse })
    }

    /// Copies the token range `[start, end)` into a new output.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds errors from the underlying tensors.
    pub fn slice_tokens(&self, start: usize, end: usize) -> Result<Self, AttentionError> {
        Ok(AttentionOutput {
            out: self.out.slice_dim0(start..end)?,
            lse: self.lse.slice_dim0(start..end)?,
        })
    }
}

/// Merge attention (paper Appendix B, Eq. 4): combines partial attention
/// outputs of the *same queries* against disjoint KV shards into the exact
/// attention over the union of the shards.
///
/// For each query/head, with partial outputs `O_s` and log-sum-exps `LSE_s`:
///
/// ```text
/// O = sum_s O_s * exp(LSE_s - LSE_max) / sum_s exp(LSE_s - LSE_max)
/// ```
///
/// and the merged LSE is `logsumexp_s(LSE_s)` — so merging is associative and
/// the result of a merge can itself be merged again (the engine relies on
/// this for hierarchical merges).
///
/// Fully-masked partials (`LSE = -inf`) contribute nothing; if *every*
/// partial is masked for a query, the merged row is zero with `-inf` LSE.
///
/// # Errors
///
/// Returns [`AttentionError::BadPartials`] if no partials are supplied or
/// their shapes disagree.
pub fn merge_partials<'a, I>(parts: I) -> Result<AttentionOutput, AttentionError>
where
    I: IntoIterator<Item = &'a AttentionOutput>,
{
    let parts: Vec<&AttentionOutput> = parts.into_iter().collect();
    let first = parts.first().ok_or_else(|| AttentionError::BadPartials {
        reason: "no partial outputs supplied".to_string(),
    })?;
    let shape = first.out.shape().to_vec();
    for p in &parts {
        if p.out.shape() != shape.as_slice() {
            return Err(AttentionError::BadPartials {
                reason: format!(
                    "partial shapes disagree: {:?} vs {:?}",
                    shape,
                    p.out.shape()
                ),
            });
        }
    }
    let (tokens, n_heads, head_dim) = (shape[0], shape[1], shape[2]);
    let mut out = Tensor::zeros(&[tokens, n_heads, head_dim]);
    let mut lse = Tensor::full(&[tokens, n_heads], f32::NEG_INFINITY);

    for t in 0..tokens {
        for h in 0..n_heads {
            let lse_max = parts
                .iter()
                .map(|p| p.lse.at(&[t, h]).expect("validated shape"))
                .fold(f32::NEG_INFINITY, f32::max);
            if lse_max == f32::NEG_INFINITY {
                continue; // all partials masked: keep zero row, -inf LSE
            }
            let mut denom = 0.0f32;
            let mut acc = vec![0.0f32; head_dim];
            for p in &parts {
                let l = p.lse.at(&[t, h]).expect("validated shape");
                if l == f32::NEG_INFINITY {
                    continue;
                }
                let w = (l - lse_max).exp();
                denom += w;
                let row = p.out.row(t);
                let head = &row[h * head_dim..(h + 1) * head_dim];
                for (a, &x) in acc.iter_mut().zip(head) {
                    *a += w * x;
                }
            }
            let orow = out.row_mut(t);
            for (d, a) in acc.iter().enumerate() {
                orow[h * head_dim + d] = a / denom;
            }
            lse.set(&[t, h], lse_max + denom.ln()).expect("in bounds");
        }
    }
    AttentionOutput::new(out, lse)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_output(
        tokens: usize,
        heads: usize,
        dim: usize,
        val: f32,
        lse: f32,
    ) -> AttentionOutput {
        AttentionOutput::new(
            Tensor::full(&[tokens, heads, dim], val),
            Tensor::full(&[tokens, heads], lse),
        )
        .unwrap()
    }

    #[test]
    fn new_validates_shapes() {
        let out = Tensor::zeros(&[2, 3, 4]);
        let lse = Tensor::zeros(&[2, 3]);
        assert!(AttentionOutput::new(out.clone(), lse).is_ok());
        let bad_lse = Tensor::zeros(&[3, 3]);
        assert!(AttentionOutput::new(out, bad_lse).is_err());
        let rank2 = Tensor::zeros(&[2, 3]);
        assert!(AttentionOutput::new(rank2, Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn merge_single_partial_is_identity() {
        let p = constant_output(2, 1, 3, 2.5, 0.7);
        let m = merge_partials([&p]).unwrap();
        assert!(m.out.approx_eq(&p.out, 1e-6).unwrap());
        assert!(m.lse.approx_eq(&p.lse, 1e-6).unwrap());
    }

    #[test]
    fn merge_equal_lse_averages() {
        let a = constant_output(1, 1, 2, 1.0, 0.0);
        let b = constant_output(1, 1, 2, 3.0, 0.0);
        let m = merge_partials([&a, &b]).unwrap();
        // Equal LSE: weights are equal, output is the mean.
        assert!((m.out.as_slice()[0] - 2.0).abs() < 1e-6);
        // Merged LSE = ln(e^0 + e^0) = ln 2.
        assert!((m.lse.as_slice()[0] - (2.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn merge_weights_by_lse() {
        // Partial a has LSE = ln(3), b has LSE = ln(1): a carries weight 3/4.
        let a = constant_output(1, 1, 1, 1.0, (3.0f32).ln());
        let b = constant_output(1, 1, 1, 5.0, 0.0);
        let m = merge_partials([&a, &b]).unwrap();
        let expected = (3.0 * 1.0 + 1.0 * 5.0) / 4.0;
        assert!((m.out.as_slice()[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn merge_ignores_masked_partials() {
        let a = constant_output(1, 1, 2, 4.0, 1.0);
        let masked = AttentionOutput::masked(1, 1, 2);
        let m = merge_partials([&a, &masked]).unwrap();
        assert!(m.out.approx_eq(&a.out, 1e-6).unwrap());
        assert!(m.lse.approx_eq(&a.lse, 1e-6).unwrap());
    }

    #[test]
    fn merge_all_masked_stays_masked() {
        let a = AttentionOutput::masked(2, 2, 3);
        let b = AttentionOutput::masked(2, 2, 3);
        let m = merge_partials([&a, &b]).unwrap();
        assert_eq!(m.lse.as_slice(), a.lse.as_slice());
        assert!(m.out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn merge_is_associative() {
        let a = constant_output(1, 1, 1, 1.0, 0.3);
        let b = constant_output(1, 1, 1, 2.0, -0.2);
        let c = constant_output(1, 1, 1, 3.0, 1.1);
        let flat = merge_partials([&a, &b, &c]).unwrap();
        let ab = merge_partials([&a, &b]).unwrap();
        let nested = merge_partials([&ab, &c]).unwrap();
        assert!(flat.out.approx_eq(&nested.out, 1e-5).unwrap());
        assert!(flat.lse.approx_eq(&nested.lse, 1e-5).unwrap());
    }

    #[test]
    fn merge_rejects_empty_and_mismatched() {
        assert!(merge_partials(std::iter::empty::<&AttentionOutput>()).is_err());
        let a = constant_output(1, 1, 2, 0.0, 0.0);
        let b = constant_output(2, 1, 2, 0.0, 0.0);
        assert!(merge_partials([&a, &b]).is_err());
    }

    #[test]
    fn concat_and_slice_tokens_roundtrip() {
        let a = constant_output(2, 1, 2, 1.0, 0.5);
        let b = constant_output(3, 1, 2, 2.0, -0.5);
        let joined = AttentionOutput::concat_tokens([&a, &b]).unwrap();
        assert_eq!(joined.tokens(), 5);
        let back = joined.slice_tokens(0, 2).unwrap();
        assert!(back.out.approx_eq(&a.out, 1e-6).unwrap());
        let tail = joined.slice_tokens(2, 5).unwrap();
        assert!(tail.out.approx_eq(&b.out, 1e-6).unwrap());
    }

    #[test]
    fn accessors_report_dims() {
        let a = constant_output(4, 3, 5, 0.0, 0.0);
        assert_eq!(a.tokens(), 4);
        assert_eq!(a.n_heads(), 3);
        assert_eq!(a.head_dim(), 5);
    }
}
