//! GQA head configuration and kernel parameters.

use crate::AttentionError;
use cp_tensor::Tensor;

/// Grouped-query attention head configuration.
///
/// Mirrors the paper's notation: `n_heads` is `N_H`, `n_kv_heads` is `N_KV`,
/// `head_dim` is `D_H`. Llama3 405B uses `N_H = 128`, `N_KV = 8`,
/// `D_H = 128` (Table 9).
///
/// # Example
///
/// ```
/// use cp_attention::GqaShape;
///
/// # fn main() -> Result<(), cp_attention::AttentionError> {
/// let llama = GqaShape::new(128, 8, 128)?;
/// assert_eq!(llama.group_size(), 16);
/// assert_eq!(llama.model_dim(), 16384);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GqaShape {
    n_heads: usize,
    n_kv_heads: usize,
    head_dim: usize,
}

impl GqaShape {
    /// Creates a head configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::InvalidShape`] if any dimension is zero or
    /// `n_heads` is not a multiple of `n_kv_heads`.
    pub fn new(n_heads: usize, n_kv_heads: usize, head_dim: usize) -> Result<Self, AttentionError> {
        if n_heads == 0 || n_kv_heads == 0 || head_dim == 0 {
            return Err(AttentionError::InvalidShape {
                reason: format!(
                    "dimensions must be positive (n_heads={n_heads}, n_kv_heads={n_kv_heads}, head_dim={head_dim})"
                ),
            });
        }
        if !n_heads.is_multiple_of(n_kv_heads) {
            return Err(AttentionError::InvalidShape {
                reason: format!(
                    "n_heads ({n_heads}) must be a multiple of n_kv_heads ({n_kv_heads})"
                ),
            });
        }
        Ok(GqaShape {
            n_heads,
            n_kv_heads,
            head_dim,
        })
    }

    /// Number of query heads (`N_H`).
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Number of key/value heads (`N_KV`).
    pub fn n_kv_heads(&self) -> usize {
        self.n_kv_heads
    }

    /// Per-head embedding dimension (`D_H`).
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Queries per KV head (`N_H / N_KV`).
    pub fn group_size(&self) -> usize {
        self.n_heads / self.n_kv_heads
    }

    /// Model dimension `D = N_H * D_H`.
    pub fn model_dim(&self) -> usize {
        self.n_heads * self.head_dim
    }

    /// The KV head serving query head `h`.
    pub fn kv_head_for(&self, h: usize) -> usize {
        h / self.group_size()
    }

    /// Validates a query tensor shape `[t, n_heads, head_dim]`, returning `t`.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::BadTensorShape`] on mismatch.
    pub fn check_q(&self, q: &Tensor) -> Result<usize, AttentionError> {
        self.check_tokens_heads(q, "q", self.n_heads)
    }

    /// Validates a key or value tensor shape `[t, n_kv_heads, head_dim]`,
    /// returning `t`.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::BadTensorShape`] on mismatch.
    pub fn check_kv(&self, kv: &Tensor, input: &'static str) -> Result<usize, AttentionError> {
        self.check_tokens_heads(kv, input, self.n_kv_heads)
    }

    fn check_tokens_heads(
        &self,
        t: &Tensor,
        input: &'static str,
        heads: usize,
    ) -> Result<usize, AttentionError> {
        match t.shape() {
            &[tokens, h, d] if h == heads && d == self.head_dim => Ok(tokens),
            s => Err(AttentionError::BadTensorShape {
                input,
                expected: vec![0, heads, self.head_dim],
                actual: s.to_vec(),
            }),
        }
    }
}

/// Kernel parameters: the head configuration plus the softmax scale.
///
/// The scale defaults to `1/sqrt(head_dim)` via
/// [`AttentionParams::for_shape`], matching scaled dot-product attention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionParams {
    /// Head configuration.
    pub shape: GqaShape,
    /// Multiplier applied to Q·K scores before softmax.
    pub scale: f32,
}

impl AttentionParams {
    /// Standard parameters for a shape: scale `1/sqrt(head_dim)`.
    pub fn for_shape(shape: GqaShape) -> Self {
        AttentionParams {
            shape,
            scale: 1.0 / (shape.head_dim() as f32).sqrt(),
        }
    }

    /// Parameters with an explicit softmax scale.
    pub fn with_scale(shape: GqaShape, scale: f32) -> Self {
        AttentionParams { shape, scale }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama3_405b_shape() {
        let s = GqaShape::new(128, 8, 128).unwrap();
        assert_eq!(s.group_size(), 16);
        assert_eq!(s.model_dim(), 16384);
        assert_eq!(s.kv_head_for(0), 0);
        assert_eq!(s.kv_head_for(15), 0);
        assert_eq!(s.kv_head_for(16), 1);
        assert_eq!(s.kv_head_for(127), 7);
    }

    #[test]
    fn mha_is_gqa_with_equal_heads() {
        let s = GqaShape::new(4, 4, 16).unwrap();
        assert_eq!(s.group_size(), 1);
        for h in 0..4 {
            assert_eq!(s.kv_head_for(h), h);
        }
    }

    #[test]
    fn mqa_single_kv_head() {
        let s = GqaShape::new(8, 1, 32).unwrap();
        assert_eq!(s.group_size(), 8);
        assert!((0..8).all(|h| s.kv_head_for(h) == 0));
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(GqaShape::new(0, 1, 8).is_err());
        assert!(GqaShape::new(4, 0, 8).is_err());
        assert!(GqaShape::new(4, 2, 0).is_err());
        assert!(GqaShape::new(6, 4, 8).is_err());
    }

    #[test]
    fn check_q_and_kv_validate_shapes() {
        let s = GqaShape::new(4, 2, 8).unwrap();
        let q = Tensor::zeros(&[5, 4, 8]);
        assert_eq!(s.check_q(&q).unwrap(), 5);
        let k = Tensor::zeros(&[7, 2, 8]);
        assert_eq!(s.check_kv(&k, "k").unwrap(), 7);
        let bad = Tensor::zeros(&[5, 3, 8]);
        assert!(s.check_q(&bad).is_err());
        assert!(s.check_kv(&bad, "k").is_err());
        let rank2 = Tensor::zeros(&[5, 4]);
        assert!(s.check_q(&rank2).is_err());
    }

    #[test]
    fn default_scale_is_inv_sqrt_head_dim() {
        let s = GqaShape::new(2, 1, 16).unwrap();
        let p = AttentionParams::for_shape(s);
        assert!((p.scale - 0.25).abs() < 1e-7);
        let custom = AttentionParams::with_scale(s, 1.0);
        assert_eq!(custom.scale, 1.0);
    }
}
