//! Borrowed KV storage: contiguous tensors or paged fragments.
//!
//! The kernels' arithmetic depends only on the *row order* of K/V and the
//! online-softmax block boundaries, not on where the rows live. `KvSource`
//! abstracts row storage so a paged KV cache can be attended over in place —
//! no `gather()` materialization — while staying bit-identical to the
//! contiguous path: for the same `block_size`, every `(query, head)` pair
//! sees the same rows in the same order with the same f32 operations.

use cp_tensor::Tensor;

use crate::AttentionError;

/// Borrowed KV rows consumed by [`crate::blocked_gqa_attention_source`] and
/// [`crate::flash_decode_source`].
///
/// Rows are `[n_kv_heads * head_dim]` slices indexed by token. The
/// `Contiguous` variant wraps the classic `[t, n_kv_heads, head_dim]`
/// tensors; the `Paged` variant walks fixed-size page fragments (a
/// vLLM-style pool) where token `i` lives in page `i / page_size` at slot
/// `i % page_size`. Every page is full except possibly the last, which is
/// trimmed to the tokens it actually holds.
#[derive(Debug, Clone)]
pub struct KvSource<'a> {
    inner: Inner<'a>,
}

#[derive(Debug, Clone)]
enum Inner<'a> {
    Contiguous {
        k: &'a Tensor,
        v: &'a Tensor,
    },
    Paged {
        k_pages: &'a [&'a [f32]],
        v_pages: &'a [&'a [f32]],
        page_size: usize,
        row_numel: usize,
        tokens: usize,
    },
}

impl<'a> KvSource<'a> {
    /// Wraps contiguous `[t, n_kv_heads, head_dim]` K/V tensors.
    ///
    /// Shape validation happens in the consuming kernel (via
    /// [`KvSource::check`]), exactly as for the tensor entry points.
    pub fn contiguous(k: &'a Tensor, v: &'a Tensor) -> Self {
        KvSource {
            inner: Inner::Contiguous { k, v },
        }
    }

    /// Wraps paged K/V fragments.
    ///
    /// `k_pages[p]` / `v_pages[p]` hold rows `[p * page_size, ...)` as flat
    /// `row_numel`-strided slices; all pages must be full (`page_size`
    /// rows) except the last, which holds the remainder of `tokens`.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::InvalidShape`] if the page geometry is
    /// inconsistent (zero page size or row size, mismatched page counts,
    /// a page whose length disagrees with its expected row count).
    pub fn paged(
        k_pages: &'a [&'a [f32]],
        v_pages: &'a [&'a [f32]],
        page_size: usize,
        row_numel: usize,
        tokens: usize,
    ) -> Result<Self, AttentionError> {
        if page_size == 0 || row_numel == 0 {
            return Err(AttentionError::InvalidShape {
                reason: format!(
                    "paged KV needs positive geometry (page_size={page_size}, row_numel={row_numel})"
                ),
            });
        }
        if k_pages.len() != v_pages.len() {
            return Err(AttentionError::InvalidShape {
                reason: format!(
                    "paged KV has {} K pages but {} V pages",
                    k_pages.len(),
                    v_pages.len()
                ),
            });
        }
        if k_pages.len() != tokens.div_ceil(page_size) {
            return Err(AttentionError::InvalidShape {
                reason: format!(
                    "paged KV has {} pages for {} tokens at page_size {}",
                    k_pages.len(),
                    tokens,
                    page_size
                ),
            });
        }
        for (p, (kp, vp)) in k_pages.iter().zip(v_pages).enumerate() {
            let rows = (tokens - p * page_size).min(page_size);
            if kp.len() != rows * row_numel || vp.len() != rows * row_numel {
                return Err(AttentionError::InvalidShape {
                    reason: format!(
                        "page {p} holds {}/{} K/V elements, expected {} ({} rows of {})",
                        kp.len(),
                        vp.len(),
                        rows * row_numel,
                        rows,
                        row_numel
                    ),
                });
            }
        }
        Ok(KvSource {
            inner: Inner::Paged {
                k_pages,
                v_pages,
                page_size,
                row_numel,
                tokens,
            },
        })
    }

    /// Number of KV tokens (rows).
    pub fn tokens(&self) -> usize {
        match &self.inner {
            Inner::Contiguous { k, .. } => k.dim0(),
            Inner::Paged { tokens, .. } => *tokens,
        }
    }

    /// Elements per row (`n_kv_heads * head_dim` for a well-formed source).
    pub fn row_numel(&self) -> usize {
        match &self.inner {
            Inner::Contiguous { k, .. } => k.row_numel(),
            Inner::Paged { row_numel, .. } => *row_numel,
        }
    }

    /// For paged sources, the page size — the natural online-softmax block
    /// granularity. `None` for contiguous storage (any block size walks
    /// rows equally well).
    pub fn page_size(&self) -> Option<usize> {
        match &self.inner {
            Inner::Contiguous { .. } => None,
            Inner::Paged { page_size, .. } => Some(*page_size),
        }
    }

    /// Row `i` of K, or `None` out of bounds. O(1) for both variants.
    #[inline]
    pub fn k_row(&self, i: usize) -> Option<&'a [f32]> {
        match &self.inner {
            Inner::Contiguous { k, .. } => (i < k.dim0()).then(|| k.row(i)),
            Inner::Paged {
                k_pages,
                page_size,
                row_numel,
                ..
            } => page_row(k_pages, *page_size, *row_numel, i),
        }
    }

    /// Row `i` of V, or `None` out of bounds. O(1) for both variants.
    #[inline]
    pub fn v_row(&self, i: usize) -> Option<&'a [f32]> {
        match &self.inner {
            Inner::Contiguous { v, .. } => (i < v.dim0()).then(|| v.row(i)),
            Inner::Paged {
                v_pages,
                page_size,
                row_numel,
                ..
            } => page_row(v_pages, *page_size, *row_numel, i),
        }
    }

    /// Validates this source against a head configuration, mirroring the
    /// tensor kernels' `check_kv` calls: K and V must both be
    /// `[t, n_kv_heads, head_dim]` with equal token counts.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::BadTensorShape`] on mismatch.
    pub(crate) fn check(&self, shape: &crate::GqaShape) -> Result<usize, AttentionError> {
        match &self.inner {
            Inner::Contiguous { k, v } => {
                let t_k = shape.check_kv(k, "k")?;
                let t_v = shape.check_kv(v, "v")?;
                if t_k != t_v {
                    return Err(AttentionError::BadTensorShape {
                        input: "v",
                        expected: vec![t_k, shape.n_kv_heads(), shape.head_dim()],
                        actual: v.shape().to_vec(),
                    });
                }
                Ok(t_k)
            }
            Inner::Paged {
                row_numel, tokens, ..
            } => {
                let expected = shape.n_kv_heads() * shape.head_dim();
                if *row_numel != expected {
                    return Err(AttentionError::BadTensorShape {
                        input: "k",
                        expected: vec![*tokens, shape.n_kv_heads(), shape.head_dim()],
                        actual: vec![*tokens, *row_numel],
                    });
                }
                Ok(*tokens)
            }
        }
    }
}

/// Token row `i` inside a page list: page `i / page_size`, slot
/// `i % page_size`. Out-of-range lookups fold to `None` (the kernels treat
/// them as masked, same as an out-of-range head slice).
#[inline]
fn page_row<'a>(
    pages: &[&'a [f32]],
    page_size: usize,
    row_numel: usize,
    i: usize,
) -> Option<&'a [f32]> {
    let slot = i % page_size;
    pages
        .get(i / page_size)
        .and_then(|p| p.get(slot * row_numel..(slot + 1) * row_numel))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_rows_match_tensor_rows() {
        let k = Tensor::from_fn(&[4, 2, 3], |i| i as f32);
        let v = k.map(|x| -x);
        let src = KvSource::contiguous(&k, &v);
        assert_eq!(src.tokens(), 4);
        assert_eq!(src.row_numel(), 6);
        assert_eq!(src.page_size(), None);
        for i in 0..4 {
            assert_eq!(src.k_row(i).unwrap(), k.row(i));
            assert_eq!(src.v_row(i).unwrap(), v.row(i));
        }
        assert!(src.k_row(4).is_none());
        assert!(src.v_row(9).is_none());
    }

    #[test]
    fn paged_rows_cross_page_boundaries() {
        // 5 tokens of row_numel 2 in pages of 2: pages [2, 2, 1 rows].
        let all: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let k_pages: Vec<&[f32]> = vec![&all[0..4], &all[4..8], &all[8..10]];
        let v_pages = k_pages.clone();
        let src = KvSource::paged(&k_pages, &v_pages, 2, 2, 5).unwrap();
        assert_eq!(src.tokens(), 5);
        assert_eq!(src.page_size(), Some(2));
        for i in 0..5 {
            let expect = [(i * 2) as f32, (i * 2 + 1) as f32];
            assert_eq!(src.k_row(i).unwrap(), &expect);
            assert_eq!(src.v_row(i).unwrap(), &expect);
        }
        assert!(src.k_row(5).is_none());
    }

    #[test]
    fn paged_rejects_bad_geometry() {
        let page: &[f32] = &[0.0; 4];
        let pages: Vec<&[f32]> = vec![page];
        assert!(KvSource::paged(&pages, &pages, 0, 2, 2).is_err());
        assert!(KvSource::paged(&pages, &pages, 2, 0, 2).is_err());
        // Page count disagrees with token count.
        assert!(KvSource::paged(&pages, &pages, 2, 2, 4).is_err());
        // Short last page.
        let short: Vec<&[f32]> = vec![&page[0..2]];
        assert!(KvSource::paged(&short, &short, 2, 2, 2).is_err());
        // K/V page count mismatch.
        let two: Vec<&[f32]> = vec![&page[0..4], &page[0..4]];
        assert!(KvSource::paged(&pages, &two, 2, 2, 2).is_err());
    }

    #[test]
    fn empty_source_is_valid() {
        let pages: Vec<&[f32]> = Vec::new();
        let src = KvSource::paged(&pages, &pages, 4, 2, 0).unwrap();
        assert_eq!(src.tokens(), 0);
        assert!(src.k_row(0).is_none());
    }
}
