//! Borrowed KV storage: contiguous tensors, paged fragments, or
//! INT8-quantized pages.
//!
//! The kernels' arithmetic depends only on the *row order* of K/V and the
//! online-softmax block boundaries, not on where the rows live. `KvSource`
//! abstracts row storage so a paged KV cache can be attended over in place —
//! no `gather()` materialization — while staying bit-identical to the
//! contiguous path: for the same `block_size`, every `(query, head)` pair
//! sees the same rows in the same order with the same f32 operations.
//!
//! The `QuantPaged` variant extends this to INT8 pages: the kernel
//! dequantizes one `(token, head)` vector at a time into a caller-owned
//! scratch buffer (`code as f32 * scale`, exactly the storage layer's
//! `dequantize`), so attending a quantized source is **bit-identical** to
//! attending the dequantized tensors — the only error versus f32 storage is
//! the quantization error itself, bounded by `max(scale) / 2` per element.

use cp_tensor::Tensor;

use crate::AttentionError;

/// Borrowed KV rows consumed by [`crate::blocked_gqa_attention_source`] and
/// [`crate::flash_decode_source`].
///
/// Rows are `[n_kv_heads * head_dim]` slices indexed by token. The
/// `Contiguous` variant wraps the classic `[t, n_kv_heads, head_dim]`
/// tensors; the `Paged` variant walks fixed-size page fragments (a
/// vLLM-style pool) where token `i` lives in page `i / page_size` at slot
/// `i % page_size`. Every page is full except possibly the last, which is
/// trimmed to the tokens it actually holds. The `QuantPaged` variant holds
/// the same page layout as INT8 codes plus per-(token, head) scales; its
/// rows are materialized per head through [`KvSource::k_head`] /
/// [`KvSource::v_head`] into a reused scratch, never as a full f32 copy.
#[derive(Debug, Clone)]
pub struct KvSource<'a> {
    inner: Inner<'a>,
}

#[derive(Debug, Clone)]
enum Inner<'a> {
    Contiguous {
        k: &'a Tensor,
        v: &'a Tensor,
    },
    Paged {
        k_pages: &'a [&'a [f32]],
        v_pages: &'a [&'a [f32]],
        page_size: usize,
        row_numel: usize,
        tokens: usize,
    },
    QuantPaged {
        k_codes: &'a [&'a [i8]],
        k_scales: &'a [&'a [f32]],
        v_codes: &'a [&'a [i8]],
        v_scales: &'a [&'a [f32]],
        page_size: usize,
        n_heads: usize,
        head_dim: usize,
        tokens: usize,
    },
}

impl<'a> KvSource<'a> {
    /// Wraps contiguous `[t, n_kv_heads, head_dim]` K/V tensors.
    ///
    /// Shape validation happens in the consuming kernel (via
    /// [`KvSource::check`]), exactly as for the tensor entry points.
    pub fn contiguous(k: &'a Tensor, v: &'a Tensor) -> Self {
        KvSource {
            inner: Inner::Contiguous { k, v },
        }
    }

    /// Wraps paged K/V fragments.
    ///
    /// `k_pages[p]` / `v_pages[p]` hold rows `[p * page_size, ...)` as flat
    /// `row_numel`-strided slices; all pages must be full (`page_size`
    /// rows) except the last, which holds the remainder of `tokens`.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::InvalidShape`] if the page geometry is
    /// inconsistent (zero page size or row size, mismatched page counts,
    /// a page whose length disagrees with its expected row count).
    pub fn paged(
        k_pages: &'a [&'a [f32]],
        v_pages: &'a [&'a [f32]],
        page_size: usize,
        row_numel: usize,
        tokens: usize,
    ) -> Result<Self, AttentionError> {
        if page_size == 0 || row_numel == 0 {
            return Err(AttentionError::InvalidShape {
                reason: format!(
                    "paged KV needs positive geometry (page_size={page_size}, row_numel={row_numel})"
                ),
            });
        }
        if k_pages.len() != v_pages.len() {
            return Err(AttentionError::InvalidShape {
                reason: format!(
                    "paged KV has {} K pages but {} V pages",
                    k_pages.len(),
                    v_pages.len()
                ),
            });
        }
        if k_pages.len() != tokens.div_ceil(page_size) {
            return Err(AttentionError::InvalidShape {
                reason: format!(
                    "paged KV has {} pages for {} tokens at page_size {}",
                    k_pages.len(),
                    tokens,
                    page_size
                ),
            });
        }
        for (p, (kp, vp)) in k_pages.iter().zip(v_pages).enumerate() {
            let rows = (tokens - p * page_size).min(page_size);
            if kp.len() != rows * row_numel || vp.len() != rows * row_numel {
                return Err(AttentionError::InvalidShape {
                    reason: format!(
                        "page {p} holds {}/{} K/V elements, expected {} ({} rows of {})",
                        kp.len(),
                        vp.len(),
                        rows * row_numel,
                        rows,
                        row_numel
                    ),
                });
            }
        }
        Ok(KvSource {
            inner: Inner::Paged {
                k_pages,
                v_pages,
                page_size,
                row_numel,
                tokens,
            },
        })
    }

    /// Wraps INT8-quantized paged K/V fragments.
    ///
    /// `*_codes[p]` hold rows `[p * page_size, ...)` as flat
    /// `n_heads * head_dim`-strided INT8 slices; `*_scales[p]` hold the
    /// matching per-(token, head) scales, `n_heads`-strided. All pages must
    /// be full except the last, which holds the remainder of `tokens`.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::InvalidShape`] if the page geometry is
    /// inconsistent (zero dimensions, mismatched page counts, or a page
    /// whose code/scale length disagrees with its expected row count).
    #[allow(clippy::too_many_arguments)] // four page lists + full geometry
    pub fn quant_paged(
        k_codes: &'a [&'a [i8]],
        k_scales: &'a [&'a [f32]],
        v_codes: &'a [&'a [i8]],
        v_scales: &'a [&'a [f32]],
        page_size: usize,
        n_heads: usize,
        head_dim: usize,
        tokens: usize,
    ) -> Result<Self, AttentionError> {
        if page_size == 0 || n_heads == 0 || head_dim == 0 {
            return Err(AttentionError::InvalidShape {
                reason: format!(
                    "quantized paged KV needs positive geometry \
                     (page_size={page_size}, n_heads={n_heads}, head_dim={head_dim})"
                ),
            });
        }
        let n_pages = tokens.div_ceil(page_size);
        for (name, len) in [
            ("k_codes", k_codes.len()),
            ("k_scales", k_scales.len()),
            ("v_codes", v_codes.len()),
            ("v_scales", v_scales.len()),
        ] {
            if len != n_pages {
                return Err(AttentionError::InvalidShape {
                    reason: format!(
                        "quantized paged KV has {len} {name} pages for {tokens} tokens \
                         at page_size {page_size} (expected {n_pages})"
                    ),
                });
            }
        }
        let row_numel = n_heads * head_dim;
        let pages = k_codes.iter().zip(k_scales).zip(v_codes).zip(v_scales);
        for (p, (((kc, ks), vc), vs)) in pages.enumerate() {
            let rows = (tokens - p * page_size).min(page_size);
            for (name, len, expected) in [
                ("k_codes", kc.len(), rows * row_numel),
                ("k_scales", ks.len(), rows * n_heads),
                ("v_codes", vc.len(), rows * row_numel),
                ("v_scales", vs.len(), rows * n_heads),
            ] {
                if len != expected {
                    return Err(AttentionError::InvalidShape {
                        reason: format!(
                            "quantized page {p} holds {len} {name} elements, \
                             expected {expected} ({rows} rows)"
                        ),
                    });
                }
            }
        }
        Ok(KvSource {
            inner: Inner::QuantPaged {
                k_codes,
                k_scales,
                v_codes,
                v_scales,
                page_size,
                n_heads,
                head_dim,
                tokens,
            },
        })
    }

    /// Number of KV tokens (rows).
    pub fn tokens(&self) -> usize {
        match &self.inner {
            Inner::Contiguous { k, .. } => k.dim0(),
            Inner::Paged { tokens, .. } => *tokens,
            Inner::QuantPaged { tokens, .. } => *tokens,
        }
    }

    /// Elements per row (`n_kv_heads * head_dim` for a well-formed source).
    pub fn row_numel(&self) -> usize {
        match &self.inner {
            Inner::Contiguous { k, .. } => k.row_numel(),
            Inner::Paged { row_numel, .. } => *row_numel,
            Inner::QuantPaged {
                n_heads, head_dim, ..
            } => n_heads * head_dim,
        }
    }

    /// For paged sources, the page size — the natural online-softmax block
    /// granularity. `None` for contiguous storage (any block size walks
    /// rows equally well).
    pub fn page_size(&self) -> Option<usize> {
        match &self.inner {
            Inner::Contiguous { .. } => None,
            Inner::Paged { page_size, .. } | Inner::QuantPaged { page_size, .. } => {
                Some(*page_size)
            }
        }
    }

    /// Whether rows must be materialized through [`KvSource::k_head`] /
    /// [`KvSource::v_head`] (INT8 storage has no borrowed f32 rows).
    pub fn is_quantized(&self) -> bool {
        matches!(&self.inner, Inner::QuantPaged { .. })
    }

    /// Row `i` of K, or `None` out of bounds. O(1) for both f32 variants.
    /// Always `None` for quantized sources, which have no borrowed f32
    /// rows — use [`KvSource::k_head`].
    #[inline]
    pub fn k_row(&self, i: usize) -> Option<&'a [f32]> {
        match &self.inner {
            Inner::Contiguous { k, .. } => (i < k.dim0()).then(|| k.row(i)),
            Inner::Paged {
                k_pages,
                page_size,
                row_numel,
                ..
            } => page_row(k_pages, *page_size, *row_numel, i),
            Inner::QuantPaged { .. } => None,
        }
    }

    /// Row `i` of V, or `None` out of bounds. O(1) for both f32 variants.
    /// Always `None` for quantized sources — use [`KvSource::v_head`].
    #[inline]
    pub fn v_row(&self, i: usize) -> Option<&'a [f32]> {
        match &self.inner {
            Inner::Contiguous { v, .. } => (i < v.dim0()).then(|| v.row(i)),
            Inner::Paged {
                v_pages,
                page_size,
                row_numel,
                ..
            } => page_row(v_pages, *page_size, *row_numel, i),
            Inner::QuantPaged { .. } => None,
        }
    }

    /// KV head `kvh` of K row `i` as a `head_dim`-length slice, or `None`
    /// out of bounds.
    ///
    /// For f32 storage this is the direct subslice (zero-copy, identical to
    /// `k_row(i)` + head slicing — the kernels' historical lookup). For
    /// quantized storage the head vector is dequantized into `scratch`
    /// (`code as f32 * scale`) and returned from there; `scratch` must hold
    /// at least `head_dim` elements. This is the kernels' single row
    /// accessor, which is what keeps the quantized path free of any
    /// materialized f32 cache copy.
    #[inline]
    pub fn k_head<'s>(
        &'s self,
        i: usize,
        kvh: usize,
        dh: usize,
        scratch: &'s mut [f32],
    ) -> Option<&'s [f32]> {
        match &self.inner {
            Inner::QuantPaged {
                k_codes,
                k_scales,
                page_size,
                n_heads,
                head_dim,
                tokens,
                ..
            } => dequant_head(
                k_codes, k_scales, *page_size, *n_heads, *head_dim, *tokens, i, kvh, scratch,
            ),
            _ => self.k_row(i).and_then(|r| r.get(kvh * dh..(kvh + 1) * dh)),
        }
    }

    /// KV head `kvh` of V row `i`; the V-side analogue of
    /// [`KvSource::k_head`].
    #[inline]
    pub fn v_head<'s>(
        &'s self,
        i: usize,
        kvh: usize,
        dh: usize,
        scratch: &'s mut [f32],
    ) -> Option<&'s [f32]> {
        match &self.inner {
            Inner::QuantPaged {
                v_codes,
                v_scales,
                page_size,
                n_heads,
                head_dim,
                tokens,
                ..
            } => dequant_head(
                v_codes, v_scales, *page_size, *n_heads, *head_dim, *tokens, i, kvh, scratch,
            ),
            _ => self.v_row(i).and_then(|r| r.get(kvh * dh..(kvh + 1) * dh)),
        }
    }

    /// Validates this source against a head configuration, mirroring the
    /// tensor kernels' `check_kv` calls: K and V must both be
    /// `[t, n_kv_heads, head_dim]` with equal token counts.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::BadTensorShape`] on mismatch.
    pub(crate) fn check(&self, shape: &crate::GqaShape) -> Result<usize, AttentionError> {
        match &self.inner {
            Inner::Contiguous { k, v } => {
                let t_k = shape.check_kv(k, "k")?;
                let t_v = shape.check_kv(v, "v")?;
                if t_k != t_v {
                    return Err(AttentionError::BadTensorShape {
                        input: "v",
                        expected: vec![t_k, shape.n_kv_heads(), shape.head_dim()],
                        actual: v.shape().to_vec(),
                    });
                }
                Ok(t_k)
            }
            Inner::Paged {
                row_numel, tokens, ..
            } => {
                let expected = shape.n_kv_heads() * shape.head_dim();
                if *row_numel != expected {
                    return Err(AttentionError::BadTensorShape {
                        input: "k",
                        expected: vec![*tokens, shape.n_kv_heads(), shape.head_dim()],
                        actual: vec![*tokens, *row_numel],
                    });
                }
                Ok(*tokens)
            }
            Inner::QuantPaged {
                n_heads,
                head_dim,
                tokens,
                ..
            } => {
                if *n_heads != shape.n_kv_heads() || *head_dim != shape.head_dim() {
                    return Err(AttentionError::BadTensorShape {
                        input: "k",
                        expected: vec![*tokens, shape.n_kv_heads(), shape.head_dim()],
                        actual: vec![*tokens, *n_heads, *head_dim],
                    });
                }
                Ok(*tokens)
            }
        }
    }
}

/// Token row `i` inside a page list: page `i / page_size`, slot
/// `i % page_size`. Out-of-range lookups fold to `None` (the kernels treat
/// them as masked, same as an out-of-range head slice).
#[inline]
fn page_row<'a>(
    pages: &[&'a [f32]],
    page_size: usize,
    row_numel: usize,
    i: usize,
) -> Option<&'a [f32]> {
    let slot = i % page_size;
    pages
        .get(i / page_size)
        .and_then(|p| p.get(slot * row_numel..(slot + 1) * row_numel))
}

/// Dequantizes head `h` of token row `i` into `scratch[..head_dim]`:
/// `code as f32 * scale`, element for element the storage layer's
/// `dequantize`, so the kernels see exactly the values a materialized
/// dequantized tensor would hold. Out-of-range lookups fold to `None` (the
/// kernels treat them as masked).
#[inline]
#[allow(clippy::too_many_arguments)] // page geometry + lookup coordinates
fn dequant_head<'s>(
    codes: &[&[i8]],
    scales: &[&[f32]],
    page_size: usize,
    n_heads: usize,
    head_dim: usize,
    tokens: usize,
    i: usize,
    h: usize,
    scratch: &'s mut [f32],
) -> Option<&'s [f32]> {
    if i >= tokens || h >= n_heads {
        return None;
    }
    let slot = i % page_size;
    let row_numel = n_heads * head_dim;
    let code_page = codes.get(i / page_size)?;
    let head =
        code_page.get(slot * row_numel + h * head_dim..slot * row_numel + (h + 1) * head_dim)?;
    let &scale = scales.get(i / page_size)?.get(slot * n_heads + h)?;
    let out = scratch.get_mut(..head_dim)?;
    for (o, &c) in out.iter_mut().zip(head) {
        *o = c as f32 * scale;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_rows_match_tensor_rows() {
        let k = Tensor::from_fn(&[4, 2, 3], |i| i as f32);
        let v = k.map(|x| -x);
        let src = KvSource::contiguous(&k, &v);
        assert_eq!(src.tokens(), 4);
        assert_eq!(src.row_numel(), 6);
        assert_eq!(src.page_size(), None);
        for i in 0..4 {
            assert_eq!(src.k_row(i).unwrap(), k.row(i));
            assert_eq!(src.v_row(i).unwrap(), v.row(i));
        }
        assert!(src.k_row(4).is_none());
        assert!(src.v_row(9).is_none());
    }

    #[test]
    fn paged_rows_cross_page_boundaries() {
        // 5 tokens of row_numel 2 in pages of 2: pages [2, 2, 1 rows].
        let all: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let k_pages: Vec<&[f32]> = vec![&all[0..4], &all[4..8], &all[8..10]];
        let v_pages = k_pages.clone();
        let src = KvSource::paged(&k_pages, &v_pages, 2, 2, 5).unwrap();
        assert_eq!(src.tokens(), 5);
        assert_eq!(src.page_size(), Some(2));
        for i in 0..5 {
            let expect = [(i * 2) as f32, (i * 2 + 1) as f32];
            assert_eq!(src.k_row(i).unwrap(), &expect);
            assert_eq!(src.v_row(i).unwrap(), &expect);
        }
        assert!(src.k_row(5).is_none());
    }

    #[test]
    fn paged_rejects_bad_geometry() {
        let page: &[f32] = &[0.0; 4];
        let pages: Vec<&[f32]> = vec![page];
        assert!(KvSource::paged(&pages, &pages, 0, 2, 2).is_err());
        assert!(KvSource::paged(&pages, &pages, 2, 0, 2).is_err());
        // Page count disagrees with token count.
        assert!(KvSource::paged(&pages, &pages, 2, 2, 4).is_err());
        // Short last page.
        let short: Vec<&[f32]> = vec![&page[0..2]];
        assert!(KvSource::paged(&short, &short, 2, 2, 2).is_err());
        // K/V page count mismatch.
        let two: Vec<&[f32]> = vec![&page[0..4], &page[0..4]];
        assert!(KvSource::paged(&pages, &two, 2, 2, 2).is_err());
    }

    #[test]
    fn empty_source_is_valid() {
        let pages: Vec<&[f32]> = Vec::new();
        let src = KvSource::paged(&pages, &pages, 4, 2, 0).unwrap();
        assert_eq!(src.tokens(), 0);
        assert!(src.k_row(0).is_none());
    }

    /// Per-(token, head) symmetric INT8 quantization, the storage layer's
    /// scheme: `scale = max|x| / 127` (zero rows get scale 1.0).
    fn quantize(data: &[f32], tokens: usize, nh: usize, dh: usize) -> (Vec<i8>, Vec<f32>) {
        let mut codes = Vec::new();
        let mut scales = Vec::new();
        for t in 0..tokens {
            for h in 0..nh {
                let head = &data[(t * nh + h) * dh..(t * nh + h + 1) * dh];
                let max = head.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
                let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
                scales.push(scale);
                for &v in head {
                    codes.push((v / scale).round().clamp(-127.0, 127.0) as i8);
                }
            }
        }
        (codes, scales)
    }

    fn page_up<T>(flat: &[T], per_row: usize, ps: usize, tokens: usize) -> Vec<&[T]> {
        (0..tokens.div_ceil(ps))
            .map(|p| {
                let rows = (tokens - p * ps).min(ps);
                &flat[p * ps * per_row..p * ps * per_row + rows * per_row]
            })
            .collect()
    }

    #[test]
    fn quant_heads_match_dequantized_values_exactly() {
        // 5 tokens, 2 heads, dim 3, pages of 2 (ragged last page).
        let (tokens, nh, dh, ps) = (5usize, 2usize, 3usize, 2usize);
        let data: Vec<f32> = (0..tokens * nh * dh)
            .map(|i| (i as f32) * 0.17 - 2.0)
            .collect();
        let vdata: Vec<f32> = data.iter().map(|x| -x * 0.5).collect();
        let (kc, ks) = quantize(&data, tokens, nh, dh);
        let (vc, vs) = quantize(&vdata, tokens, nh, dh);
        let kcp = page_up(&kc, nh * dh, ps, tokens);
        let ksp = page_up(&ks, nh, ps, tokens);
        let vcp = page_up(&vc, nh * dh, ps, tokens);
        let vsp = page_up(&vs, nh, ps, tokens);
        let src = KvSource::quant_paged(&kcp, &ksp, &vcp, &vsp, ps, nh, dh, tokens).unwrap();
        assert_eq!(src.tokens(), tokens);
        assert_eq!(src.row_numel(), nh * dh);
        assert_eq!(src.page_size(), Some(ps));
        assert!(src.is_quantized());
        assert!(src.k_row(0).is_none(), "quant sources expose no f32 rows");
        assert!(src.v_row(0).is_none());
        let mut scratch = vec![0.0f32; dh];
        for i in 0..tokens {
            for h in 0..nh {
                let got: Vec<f32> = src.k_head(i, h, dh, &mut scratch).unwrap().to_vec();
                let expect: Vec<f32> = (0..dh)
                    .map(|d| kc[(i * nh + h) * dh + d] as f32 * ks[i * nh + h])
                    .collect();
                assert_eq!(got, expect, "k token {i} head {h}");
                let got: Vec<f32> = src.v_head(i, h, dh, &mut scratch).unwrap().to_vec();
                let expect: Vec<f32> = (0..dh)
                    .map(|d| vc[(i * nh + h) * dh + d] as f32 * vs[i * nh + h])
                    .collect();
                assert_eq!(got, expect, "v token {i} head {h}");
            }
        }
        assert!(src.k_head(tokens, 0, dh, &mut scratch).is_none());
        assert!(src.v_head(0, nh, dh, &mut scratch).is_none());
    }

    #[test]
    fn f32_sources_serve_heads_as_direct_subslices() {
        let k = Tensor::from_fn(&[3, 2, 4], |i| i as f32);
        let v = k.map(|x| x + 100.0);
        let src = KvSource::contiguous(&k, &v);
        assert!(!src.is_quantized());
        let mut scratch = vec![0.0f32; 4];
        for i in 0..3 {
            for h in 0..2 {
                assert_eq!(
                    src.k_head(i, h, 4, &mut scratch).unwrap(),
                    &k.row(i)[h * 4..(h + 1) * 4]
                );
                assert_eq!(
                    src.v_head(i, h, 4, &mut scratch).unwrap(),
                    &v.row(i)[h * 4..(h + 1) * 4]
                );
            }
        }
        // The scratch is untouched on the f32 path.
        assert!(scratch.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn quant_paged_rejects_bad_geometry() {
        let codes: Vec<i8> = vec![0; 8];
        let scales: Vec<f32> = vec![1.0; 4];
        let cp: Vec<&[i8]> = vec![&codes[..]];
        let sp: Vec<&[f32]> = vec![&scales[..]];
        // Valid: 2 tokens, 2 heads, dim 2, page_size 2.
        assert!(KvSource::quant_paged(&cp, &sp, &cp, &sp, 2, 2, 2, 2).is_ok());
        // Zero geometry.
        assert!(KvSource::quant_paged(&cp, &sp, &cp, &sp, 0, 2, 2, 2).is_err());
        assert!(KvSource::quant_paged(&cp, &sp, &cp, &sp, 2, 0, 2, 2).is_err());
        assert!(KvSource::quant_paged(&cp, &sp, &cp, &sp, 2, 2, 0, 2).is_err());
        // Page count disagrees with token count.
        assert!(KvSource::quant_paged(&cp, &sp, &cp, &sp, 2, 2, 2, 4).is_err());
        // Short scale page.
        let short_s: Vec<&[f32]> = vec![&scales[..3]];
        assert!(KvSource::quant_paged(&cp, &short_s, &cp, &sp, 2, 2, 2, 2).is_err());
        // Short code page.
        let short_c: Vec<&[i8]> = vec![&codes[..7]];
        assert!(KvSource::quant_paged(&cp, &sp, &short_c, &sp, 2, 2, 2, 2).is_err());
        // Empty is fine.
        let no_c: Vec<&[i8]> = Vec::new();
        let no_s: Vec<&[f32]> = Vec::new();
        let src = KvSource::quant_paged(&no_c, &no_s, &no_c, &no_s, 2, 2, 2, 0).unwrap();
        assert_eq!(src.tokens(), 0);
    }
}
