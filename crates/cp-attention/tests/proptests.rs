//! Property-based exactness tests: the invariants merge attention and the
//! ring algorithms rest on.

use cp_attention::{
    approx_gqa_attention, blocked_gqa_attention, blocked_gqa_attention_with_threads, flash_decode,
    merge_partials, naive_gqa_attention, ApproxPolicy, AttentionParams, GqaShape,
};
use cp_tensor::{DetRng, Tensor};
use proptest::prelude::*;

/// A random GQA configuration with small dimensions.
fn gqa_config() -> impl Strategy<Value = (usize, usize, usize)> {
    // (group_size, n_kv_heads, head_dim) -> n_heads = group * kv
    (1usize..4, 1usize..4, 1usize..9).prop_map(|(g, kv, dh)| (g * kv, kv, dh))
}

fn make_inputs(
    seed: u64,
    t_q: usize,
    t_kv: usize,
    nh: usize,
    nkv: usize,
    dh: usize,
) -> (Tensor, Tensor, Tensor) {
    let mut rng = DetRng::new(seed);
    (
        rng.tensor(&[t_q, nh, dh]),
        rng.tensor(&[t_kv, nkv, dh]),
        rng.tensor(&[t_kv, nkv, dh]),
    )
}

proptest! {
    /// Blocked (flash-style) attention equals the naive kernel for any
    /// shape, block size, and causal offset.
    #[test]
    fn blocked_equals_naive(
        (nh, nkv, dh) in gqa_config(),
        t_q in 1usize..8,
        extra_kv in 0usize..12,
        block in 1usize..10,
        seed in any::<u64>(),
    ) {
        let t_kv = t_q + extra_kv;
        let params = AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap());
        let (q, k, v) = make_inputs(seed, t_q, t_kv, nh, nkv, dh);
        let kv_pos: Vec<usize> = (0..t_kv).collect();
        let q_pos: Vec<usize> = (extra_kv..t_kv).collect();
        let fast = blocked_gqa_attention(&q, &k, &v, &params, &q_pos, &kv_pos, block).unwrap();
        let slow = naive_gqa_attention(&q, &k, &v, &params, &q_pos, &kv_pos).unwrap();
        prop_assert!(fast.out.approx_eq(&slow.out, 1e-3).unwrap());
        prop_assert!(fast.lse.approx_eq(&slow.lse, 1e-3).unwrap());
    }

    /// The parallel (query-tiled) blocked kernel equals the naive kernel
    /// for any shape and thread count, and is bit-identical to its own
    /// serial path — parallelism must not change the arithmetic.
    #[test]
    fn parallel_blocked_equals_naive_and_serial(
        (nh, nkv, dh) in gqa_config(),
        t_q in 1usize..8,
        extra_kv in 0usize..12,
        block in 1usize..10,
        threads in 2usize..7,
        seed in any::<u64>(),
    ) {
        let t_kv = t_q + extra_kv;
        let params = AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap());
        let (q, k, v) = make_inputs(seed, t_q, t_kv, nh, nkv, dh);
        let kv_pos: Vec<usize> = (0..t_kv).collect();
        let q_pos: Vec<usize> = (extra_kv..t_kv).collect();
        let tiled = blocked_gqa_attention_with_threads(
            &q, &k, &v, &params, &q_pos, &kv_pos, block, threads,
        ).unwrap();
        let serial = blocked_gqa_attention_with_threads(
            &q, &k, &v, &params, &q_pos, &kv_pos, block, 1,
        ).unwrap();
        prop_assert_eq!(tiled.out.as_slice(), serial.out.as_slice());
        prop_assert_eq!(tiled.lse.as_slice(), serial.lse.as_slice());
        let slow = naive_gqa_attention(&q, &k, &v, &params, &q_pos, &kv_pos).unwrap();
        prop_assert!(tiled.out.approx_eq(&slow.out, 1e-3).unwrap());
        prop_assert!(tiled.lse.approx_eq(&slow.lse, 1e-3).unwrap());
    }

    /// Splitting KV at any point and merging the partials reconstructs full
    /// attention exactly (the core ring pass-KV invariant).
    #[test]
    fn merge_of_kv_split_equals_full(
        (nh, nkv, dh) in gqa_config(),
        t_q in 1usize..6,
        t_kv in 1usize..16,
        split_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let params = AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap());
        let (q, k, v) = make_inputs(seed, t_q, t_kv, nh, nkv, dh);
        let kv_pos: Vec<usize> = (0..t_kv).collect();
        // Queries positioned at the end so most kv is visible.
        let q_pos: Vec<usize> = (0..t_q).map(|i| t_kv.saturating_sub(1) + i).collect();
        let full = naive_gqa_attention(&q, &k, &v, &params, &q_pos, &kv_pos).unwrap();

        let split = ((t_kv as f64) * split_frac) as usize;
        let (k1, k2) = (k.slice_dim0(0..split).unwrap(), k.slice_dim0(split..t_kv).unwrap());
        let (v1, v2) = (v.slice_dim0(0..split).unwrap(), v.slice_dim0(split..t_kv).unwrap());
        let p1 = naive_gqa_attention(&q, &k1, &v1, &params, &q_pos, &kv_pos[..split]).unwrap();
        let p2 = naive_gqa_attention(&q, &k2, &v2, &params, &q_pos, &kv_pos[split..]).unwrap();
        let merged = merge_partials([&p1, &p2]).unwrap();
        prop_assert!(merged.out.approx_eq(&full.out, 1e-3).unwrap());
        prop_assert!(merged.lse.approx_eq(&full.lse, 1e-3).unwrap());
    }

    /// Merging an arbitrary interleaved *permutation* of KV shards is still
    /// exact — the invariant behind load-balanced (non-contiguous) sharding.
    #[test]
    fn merge_of_permuted_shards_equals_full(
        (nh, nkv, dh) in gqa_config(),
        t_kv in 2usize..14,
        n_shards in 2usize..5,
        seed in any::<u64>(),
    ) {
        let t_q = 3.min(t_kv);
        let params = AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap());
        let (q, k, v) = make_inputs(seed, t_q, t_kv, nh, nkv, dh);
        let kv_pos: Vec<usize> = (0..t_kv).collect();
        let q_pos: Vec<usize> = (t_kv - t_q..t_kv).collect();
        let full = naive_gqa_attention(&q, &k, &v, &params, &q_pos, &kv_pos).unwrap();

        // Round-robin assignment of kv tokens to shards (non-contiguous!).
        let mut partials = Vec::new();
        for s in 0..n_shards {
            let idx: Vec<usize> = (0..t_kv).filter(|i| i % n_shards == s).collect();
            if idx.is_empty() {
                continue;
            }
            let ks = k.gather_dim0(&idx).unwrap();
            let vs = v.gather_dim0(&idx).unwrap();
            let pos: Vec<usize> = idx.clone();
            partials.push(
                naive_gqa_attention(&q, &ks, &vs, &params, &q_pos, &pos).unwrap(),
            );
        }
        let merged = merge_partials(partials.iter()).unwrap();
        prop_assert!(merged.out.approx_eq(&full.out, 1e-3).unwrap());
    }

    /// flash_decode equals unsplit attention for any number of splits.
    #[test]
    fn flash_decode_equals_full(
        (nh, nkv, dh) in gqa_config(),
        t_kv in 1usize..30,
        splits in 1usize..12,
        seed in any::<u64>(),
    ) {
        let params = AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap());
        let (q, k, v) = make_inputs(seed, 1, t_kv, nh, nkv, dh);
        let kv_pos: Vec<usize> = (0..t_kv).collect();
        let q_pos = [t_kv]; // decode token after the whole history
        let split = flash_decode(&q, &k, &v, &params, &q_pos, &kv_pos, splits).unwrap();
        let full = naive_gqa_attention(&q, &k, &v, &params, &q_pos, &kv_pos).unwrap();
        prop_assert!(split.out.approx_eq(&full.out, 1e-3).unwrap());
    }

    /// Merge attention is invariant to the order of partials.
    #[test]
    fn merge_is_order_invariant(
        (nh, nkv, dh) in gqa_config(),
        t_kv in 3usize..12,
        seed in any::<u64>(),
    ) {
        let params = AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap());
        let (q, k, v) = make_inputs(seed, 2, t_kv, nh, nkv, dh);
        let kv_pos: Vec<usize> = (0..t_kv).collect();
        let q_pos = [t_kv - 1, t_kv];
        let third = (t_kv / 3).max(1);
        let mut parts = Vec::new();
        let bounds = [0, third, (2 * third).min(t_kv), t_kv];
        for w in bounds.windows(2) {
            if w[0] == w[1] { continue; }
            let ks = k.slice_dim0(w[0]..w[1]).unwrap();
            let vs = v.slice_dim0(w[0]..w[1]).unwrap();
            parts.push(naive_gqa_attention(&q, &ks, &vs, &params, &q_pos, &kv_pos[w[0]..w[1]]).unwrap());
        }
        let fwd = merge_partials(parts.iter()).unwrap();
        let rev = merge_partials(parts.iter().rev()).unwrap();
        prop_assert!(fwd.out.approx_eq(&rev.out, 1e-4).unwrap());
        prop_assert!(fwd.lse.approx_eq(&rev.lse, 1e-4).unwrap());
    }

    /// Causality: perturbing a future KV token never changes present outputs.
    #[test]
    fn future_kv_does_not_leak(
        (nh, nkv, dh) in gqa_config(),
        t in 2usize..10,
        seed in any::<u64>(),
    ) {
        let params = AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap());
        let (q, k, v) = make_inputs(seed, t, t, nh, nkv, dh);
        let pos: Vec<usize> = (0..t).collect();
        let base = naive_gqa_attention(&q, &k, &v, &params, &pos, &pos).unwrap();
        // Clobber the last kv token entirely.
        let mut k2 = k.clone();
        let mut v2 = v.clone();
        k2.row_mut(t - 1).fill(123.0);
        v2.row_mut(t - 1).fill(-321.0);
        let perturbed = naive_gqa_attention(&q, &k2, &v2, &params, &pos, &pos).unwrap();
        // All queries before the last are unchanged.
        let a = base.slice_tokens(0, t - 1).unwrap();
        let b = perturbed.slice_tokens(0, t - 1).unwrap();
        prop_assert!(a.out.approx_eq(&b.out, 1e-6).unwrap());
        prop_assert!(a.lse.approx_eq(&b.lse, 1e-6).unwrap());
    }

    /// Softmax convexity: every output coordinate lies within the min/max of
    /// the visible V values for its kv head.
    #[test]
    fn output_is_convex_combination(
        (nh, nkv, dh) in gqa_config(),
        t in 1usize..8,
        seed in any::<u64>(),
    ) {
        let params = AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap());
        let (q, k, v) = make_inputs(seed, t, t, nh, nkv, dh);
        let pos: Vec<usize> = (0..t).collect();
        let out = naive_gqa_attention(&q, &k, &v, &params, &pos, &pos).unwrap();
        for qi in 0..t {
            for h in 0..nh {
                let kvh = h / (nh / nkv);
                for d in 0..dh {
                    let visible: Vec<f32> = (0..=qi)
                        .map(|ki| v.at(&[ki, kvh, d]).unwrap())
                        .collect();
                    let lo = visible.iter().copied().fold(f32::INFINITY, f32::min);
                    let hi = visible.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let val = out.out.at(&[qi, h, d]).unwrap();
                    prop_assert!(val >= lo - 1e-4 && val <= hi + 1e-4,
                        "qi={qi} h={h} d={d}: {val} not in [{lo}, {hi}]");
                }
            }
        }
    }

    /// A window covering the whole sequence makes approximate attention
    /// exact, for any shape.
    #[test]
    fn full_window_approx_is_exact(
        (nh, nkv, dh) in gqa_config(),
        t in 1usize..14,
        seed in any::<u64>(),
    ) {
        let params = AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap());
        let (q, k, v) = make_inputs(seed, t, t, nh, nkv, dh);
        let pos: Vec<usize> = (0..t).collect();
        let exact = naive_gqa_attention(&q, &k, &v, &params, &pos, &pos).unwrap();
        let approx = approx_gqa_attention(
            &q, &k, &v, &params, &pos, &pos,
            ApproxPolicy::Window { window: t },
        )
        .unwrap();
        prop_assert!(approx.out.approx_eq(&exact.out, 1e-4).unwrap());
        prop_assert!(approx.lse.approx_eq(&exact.lse, 1e-4).unwrap());
    }

    /// The sink-window policy's visible set contains the pure window's,
    /// so its LSE is pointwise >= the window policy's (more softmax mass).
    #[test]
    fn sink_lse_dominates_window_lse(
        t in 2usize..16,
        window in 1usize..6,
        sinks in 1usize..4,
        seed in any::<u64>(),
    ) {
        let params = AttentionParams::for_shape(GqaShape::new(2, 1, 4).unwrap());
        let (q, k, v) = make_inputs(seed, t, t, 2, 1, 4);
        let pos: Vec<usize> = (0..t).collect();
        let w = approx_gqa_attention(
            &q, &k, &v, &params, &pos, &pos,
            ApproxPolicy::Window { window },
        )
        .unwrap();
        let sw = approx_gqa_attention(
            &q, &k, &v, &params, &pos, &pos,
            ApproxPolicy::SinkWindow { sinks, window },
        )
        .unwrap();
        for (a, b) in sw.lse.as_slice().iter().zip(w.lse.as_slice()) {
            prop_assert!(a >= b || (a - b).abs() < 1e-5, "{a} < {b}");
        }
    }

    /// visible_count never exceeds the causal bound p + 1 and is monotone
    /// in the window size.
    #[test]
    fn visible_count_bounds(p in 0usize..200, w1 in 1usize..50, extra in 0usize..50, sinks in 0usize..10) {
        let small = ApproxPolicy::Window { window: w1 };
        let big = ApproxPolicy::Window { window: w1 + extra };
        prop_assert!(small.visible_count(p) <= big.visible_count(p));
        prop_assert!(big.visible_count(p) <= p + 1);
        let sw = ApproxPolicy::SinkWindow { sinks, window: w1 };
        prop_assert!(sw.visible_count(p) <= p + 1);
        prop_assert!(sw.visible_count(p) >= small.visible_count(p).min(p + 1));
    }
}
