//! Kernel-level benches: the naive reference vs the flash-style blocked
//! kernel vs split-KV flash-decode, and merge attention — the building
//! blocks behind Tables 3 and 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cp_attention::{
    blocked_gqa_attention, flash_decode, merge_partials, naive_gqa_attention, AttentionParams,
    GqaShape,
};
use cp_tensor::{DetRng, Tensor};

fn params() -> AttentionParams {
    AttentionParams::for_shape(GqaShape::new(8, 2, 32).unwrap())
}

fn inputs(t_q: usize, t_kv: usize, seed: u64) -> (Tensor, Tensor, Tensor, Vec<usize>, Vec<usize>) {
    let mut rng = DetRng::new(seed);
    let q = rng.tensor(&[t_q, 8, 32]);
    let k = rng.tensor(&[t_kv, 2, 32]);
    let v = rng.tensor(&[t_kv, 2, 32]);
    let kv_pos: Vec<usize> = (0..t_kv).collect();
    let q_pos: Vec<usize> = (t_kv - t_q..t_kv).collect();
    (q, k, v, q_pos, kv_pos)
}

fn bench_prefill_kernels(c: &mut Criterion) {
    let p = params();
    let (q, k, v, q_pos, kv_pos) = inputs(256, 256, 1);
    let mut group = c.benchmark_group("prefill_kernel_256x256");
    group.sample_size(10);
    group.bench_function("naive", |b| {
        b.iter(|| black_box(naive_gqa_attention(&q, &k, &v, &p, &q_pos, &kv_pos).unwrap()))
    });
    for block in [32usize, 128, 512] {
        group.bench_with_input(BenchmarkId::new("blocked", block), &block, |b, &block| {
            b.iter(|| {
                black_box(blocked_gqa_attention(&q, &k, &v, &p, &q_pos, &kv_pos, block).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_decode_kernels(c: &mut Criterion) {
    // One query against a long KV history (the decode regime): flash
    // decode's split count sweep (the paper uses 256 splits).
    let p = params();
    let (q, k, v, q_pos, kv_pos) = inputs(1, 4096, 2);
    let mut group = c.benchmark_group("decode_kernel_1x4096");
    group.sample_size(10);
    for splits in [1usize, 16, 256] {
        group.bench_with_input(
            BenchmarkId::new("flash_decode", splits),
            &splits,
            |b, &s| b.iter(|| black_box(flash_decode(&q, &k, &v, &p, &q_pos, &kv_pos, s).unwrap())),
        );
    }
    group.finish();
}

fn bench_merge_attention(c: &mut Criterion) {
    // Merge cost vs number of partials (= CP ranks): the epilogue of every
    // ring loop (Eq. 4).
    let p = params();
    let mut group = c.benchmark_group("merge_attention_256tok");
    group.sample_size(10);
    for n_parts in [2usize, 4, 8, 16] {
        let t_kv = 512;
        let chunk = t_kv / n_parts;
        let (q, k, v, q_pos, kv_pos) = inputs(256, t_kv, 3);
        let partials: Vec<_> = (0..n_parts)
            .map(|i| {
                let ks = k.slice_dim0(i * chunk..(i + 1) * chunk).unwrap();
                let vs = v.slice_dim0(i * chunk..(i + 1) * chunk).unwrap();
                naive_gqa_attention(
                    &q,
                    &ks,
                    &vs,
                    &p,
                    &q_pos,
                    &kv_pos[i * chunk..(i + 1) * chunk],
                )
                .unwrap()
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n_parts), &n_parts, |b, _| {
            b.iter(|| black_box(merge_partials(partials.iter()).unwrap()))
        });
    }
    group.finish();
}

fn bench_causal_vs_partial(c: &mut Criterion) {
    // Table 3's two columns as actual kernel work: a full causal prefill
    // vs a low-miss-rate partial prefill over the same total context.
    let p = params();
    let total = 512;
    let mut group = c.benchmark_group("full_vs_partial_kernel");
    group.sample_size(10);
    {
        let (q, k, v, q_pos, kv_pos) = inputs(total, total, 4);
        group.bench_function("full_prefill_512", |b| {
            b.iter(|| {
                black_box(blocked_gqa_attention(&q, &k, &v, &p, &q_pos, &kv_pos, 128).unwrap())
            })
        });
    }
    {
        let t = total / 16; // ~6% miss rate
        let (q, k, v, q_pos, kv_pos) = inputs(t, total, 5);
        group.bench_function("partial_prefill_32_of_512", |b| {
            b.iter(|| {
                black_box(blocked_gqa_attention(&q, &k, &v, &p, &q_pos, &kv_pos, 128).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_prefill_kernels,
    bench_decode_kernels,
    bench_merge_attention,
    bench_causal_vs_partial
);
criterion_main!(benches);
