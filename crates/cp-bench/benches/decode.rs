//! Table 8 analog on the exact layer: batched ring pass-Q decode wall
//! time vs rank count, batch size and context length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cp_attention::GqaShape;
use cp_core::{ContextParallelEngine, EngineConfig, PrefillRequest};
use cp_kvcache::SeqId;
use cp_perf::RingVariant;
use cp_tensor::{DetRng, Tensor};

fn inputs(shape: GqaShape, t: usize, seed: u64) -> (Tensor, Tensor, Tensor) {
    let mut rng = DetRng::new(seed);
    (
        rng.tensor(&[t, shape.n_heads(), shape.head_dim()]),
        rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
        rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
    )
}

fn engine_with_sequences(
    shape: GqaShape,
    n: usize,
    batch: usize,
    ctx: usize,
) -> ContextParallelEngine {
    let mut eng =
        ContextParallelEngine::new(EngineConfig::new(n, shape).with_page_size(64)).unwrap();
    for s in 0..batch {
        let (q, k, v) = inputs(shape, ctx, s as u64);
        eng.prefill_batch(
            &[PrefillRequest {
                seq: SeqId(s as u64),
                q: &q,
                k: &k,
                v: &v,
            }],
            Some(RingVariant::PassKv),
        )
        .unwrap();
    }
    eng
}

fn decode_batch(shape: GqaShape, batch: usize, seed: u64) -> Vec<(SeqId, Tensor, Tensor, Tensor)> {
    (0..batch)
        .map(|s| {
            let (q, k, v) = inputs(shape, 1, seed + s as u64);
            (SeqId(s as u64), q, k, v)
        })
        .collect()
}

fn bench_decode_vs_ranks(c: &mut Criterion) {
    // 512-token context, batch 1: the 128K/B=1 column of Table 8 scaled
    // down. Attention work per rank shrinks with N while comm grows.
    let shape = GqaShape::new(8, 2, 16).unwrap();
    let mut group = c.benchmark_group("decode_step_vs_ranks_ctx512_b1");
    group.sample_size(10);
    for n in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_with_setup(
                || engine_with_sequences(shape, n, 1, 512),
                |mut eng| {
                    black_box(eng.decode_step(&decode_batch(shape, 1, 50)).unwrap());
                },
            )
        });
    }
    group.finish();
}

fn bench_decode_vs_batch(c: &mut Criterion) {
    // 128-token context, batch sweep: the 32K/B=4 column's shape.
    let shape = GqaShape::new(8, 2, 16).unwrap();
    let mut group = c.benchmark_group("decode_step_vs_batch_ctx128_cp2");
    group.sample_size(10);
    for batch in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter_with_setup(
                || engine_with_sequences(shape, 2, batch, 128),
                |mut eng| {
                    black_box(eng.decode_step(&decode_batch(shape, batch, 60)).unwrap());
                },
            )
        });
    }
    group.finish();
}

fn bench_decode_vs_context(c: &mut Criterion) {
    // Table 6's context axis: decode cost grows with KV length.
    let shape = GqaShape::new(8, 2, 16).unwrap();
    let mut group = c.benchmark_group("decode_step_vs_context_cp2_b1");
    group.sample_size(10);
    for ctx in [128usize, 512, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(ctx), &ctx, |b, &ctx| {
            b.iter_with_setup(
                || engine_with_sequences(shape, 2, 1, ctx),
                |mut eng| {
                    black_box(eng.decode_step(&decode_batch(shape, 1, 70)).unwrap());
                },
            )
        });
    }
    group.finish();
}

fn bench_decode_slot_payloads_cp4_b32(c: &mut Criterion) {
    // The clone-bound component of batched ring decode: packaging 32 query
    // slots plus returning their partial outputs, per hop, at CP4. The
    // `deep_copy` series reproduces the seed tensor's per-hop copies via
    // `Tensor::deep_clone`.
    use cp_core::{DecodeSlot, SeqOut};
    let shape = GqaShape::new(8, 2, 16).unwrap();
    let n = 4;
    let batch = 32;
    let mut rng = DetRng::new(8);
    let qs: Vec<Tensor> = (0..batch)
        .map(|_| rng.tensor(&[1, shape.n_heads(), shape.head_dim()]))
        .collect();
    let outs: Vec<Tensor> = (0..batch)
        .map(|_| rng.tensor(&[1, shape.n_heads(), shape.head_dim()]))
        .collect();
    let lses: Vec<Tensor> = (0..batch)
        .map(|_| rng.tensor(&[1, shape.n_heads()]))
        .collect();

    let mut group = c.benchmark_group("decode_slot_payloads_cp4_b32");
    group.bench_function("zero_copy_view", |b| {
        b.iter(|| {
            for _hop in 0..n - 1 {
                let slots: Vec<Option<DecodeSlot>> = qs
                    .iter()
                    .map(|q| {
                        Some(DecodeSlot {
                            bid: 0,
                            q: q.clone(),
                            pos: 512,
                        })
                    })
                    .collect();
                let parts: Vec<Option<SeqOut>> = outs
                    .iter()
                    .zip(&lses)
                    .map(|(o, l)| {
                        Some(SeqOut {
                            out: o.clone(),
                            lse: l.clone(),
                        })
                    })
                    .collect();
                black_box((&slots, &parts));
            }
        })
    });
    group.bench_function("deep_copy_seed_behaviour", |b| {
        b.iter(|| {
            for _hop in 0..n - 1 {
                let slots: Vec<Option<DecodeSlot>> = qs
                    .iter()
                    .map(|q| {
                        Some(DecodeSlot {
                            bid: 0,
                            q: q.deep_clone(),
                            pos: 512,
                        })
                    })
                    .collect();
                let parts: Vec<Option<SeqOut>> = outs
                    .iter()
                    .zip(&lses)
                    .map(|(o, l)| {
                        Some(SeqOut {
                            out: o.deep_clone(),
                            lse: l.deep_clone(),
                        })
                    })
                    .collect();
                black_box((&slots, &parts));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_decode_vs_ranks,
    bench_decode_vs_batch,
    bench_decode_vs_context,
    bench_decode_slot_payloads_cp4_b32
);
criterion_main!(benches);
