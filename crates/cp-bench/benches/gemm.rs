//! Criterion A/B for the cache-blocked GEMM: naive triple loop vs the
//! packed register-tiled kernel, serial and row-banded on the compute
//! pool, plus the pack step itself (paid once per weight at `Linear`
//! construction, so it must stay cheap relative to one matmul).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cp_pool::ComputePool;
use cp_tensor::{matmul, matmul_packed, matmul_packed_on, DetRng, PackedGemmB};

fn bench_gemm_kernels(c: &mut Criterion) {
    let pool = ComputePool::global();
    for &(m, k, n) in &[(64usize, 256usize, 256usize), (128, 512, 512)] {
        let mut rng = DetRng::new((m + k + n) as u64);
        let a = rng.tensor(&[m, k]);
        let b = rng.tensor(&[k, n]);
        let packed = PackedGemmB::pack(&b).unwrap();
        let mut group = c.benchmark_group(format!("gemm_{m}x{k}x{n}"));
        group.sample_size(10);
        group.bench_function("naive", |bch| {
            bch.iter(|| black_box(matmul(&a, &b).unwrap()))
        });
        group.bench_function("tiled", |bch| {
            bch.iter(|| black_box(matmul_packed(&a, &packed).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("tiled_pool", pool.parallelism()),
            &(),
            |bch, ()| bch.iter(|| black_box(matmul_packed_on(pool, &a, &packed).unwrap())),
        );
        group.bench_function("pack", |bch| {
            bch.iter(|| black_box(PackedGemmB::pack(&b).unwrap()))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_gemm_kernels);
criterion_main!(benches);
