//! Table 4 / Figure 9 analog on the exact layer: pass-KV vs pass-Q wall
//! time for partial prefill at varying KV-cache miss rates, plus the
//! heuristic-selection overhead itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cp_attention::GqaShape;
use cp_core::heuristics::{choose_variant, HeuristicKind, SystemContext};
use cp_core::{ContextParallelEngine, EngineConfig, PrefillRequest};
use cp_kvcache::SeqId;
use cp_perf::RingVariant;
use cp_tensor::{DetRng, Tensor};

fn inputs(shape: GqaShape, t: usize, seed: u64) -> (Tensor, Tensor, Tensor) {
    let mut rng = DetRng::new(seed);
    (
        rng.tensor(&[t, shape.n_heads(), shape.head_dim()]),
        rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
        rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
    )
}

/// Builds an engine with `p` cached tokens on sequence 0.
fn engine_with_cache(shape: GqaShape, n: usize, p: usize) -> ContextParallelEngine {
    let mut eng =
        ContextParallelEngine::new(EngineConfig::new(n, shape).with_page_size(64)).unwrap();
    let (q, k, v) = inputs(shape, p, 99);
    eng.prefill_batch(
        &[PrefillRequest {
            seq: SeqId(0),
            q: &q,
            k: &k,
            v: &v,
        }],
        Some(RingVariant::PassKv),
    )
    .unwrap();
    eng
}

fn bench_partial_prefill_miss_rates(c: &mut Criterion) {
    let shape = GqaShape::new(8, 2, 16).unwrap();
    let n = 2;
    let total = 512;
    let mut group = c.benchmark_group("partial_prefill_by_miss_rate");
    group.sample_size(10);
    for miss_pct in [5usize, 25, 50, 100] {
        let t = total * miss_pct / 100;
        let p = total - t;
        let (q, k, v) = inputs(shape, t, 7);
        for variant in [RingVariant::PassKv, RingVariant::PassQ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{variant}"), miss_pct),
                &miss_pct,
                |b, _| {
                    b.iter_with_setup(
                        || engine_with_cache(shape, n, p),
                        |mut eng| {
                            black_box(
                                eng.prefill_batch(
                                    &[PrefillRequest {
                                        seq: SeqId(0),
                                        q: &q,
                                        k: &k,
                                        v: &v,
                                    }],
                                    Some(variant),
                                )
                                .unwrap(),
                            );
                        },
                    )
                },
            );
        }
    }
    group.finish();
}

fn bench_heuristic_selection(c: &mut Criterion) {
    // The runtime cost of the Algorithm 1 / 5 / empirical decision itself
    // (the paper runs it at the start of every round).
    let ctx = SystemContext::llama3_405b_gtt(4);
    let mut group = c.benchmark_group("heuristic_selection");
    for (name, kind) in [
        ("algorithm1", HeuristicKind::Threshold),
        ("algorithm5", HeuristicKind::All2AllAware),
        ("empirical", cp_core::heuristics::PAPER_EMPIRICAL),
        ("oracle_perf_model", HeuristicKind::Oracle),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for t in [1_000usize, 5_000, 20_000, 100_000] {
                    let v = choose_variant(kind, &ctx, black_box(t), black_box(128_000 - t));
                    acc += matches!(v, RingVariant::PassKv) as usize;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_partial_prefill_miss_rates,
    bench_heuristic_selection
);
criterion_main!(benches);
