//! Criterion A/B for the tentpole: blocking vs double-buffered CP4 ring
//! prefill under a modeled link, and persistent-pool vs scoped-spawn
//! fan-out. The `ring_overlap` bin is the calibrated, JSON-emitting
//! variant of the same comparison; this bench gives the criterion-style
//! repeated-sampling view.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cp_attention::{AttentionParams, GqaShape};
use cp_comm::{Fabric, LinkModel};
use cp_core::ring::{ring_pass_kv_prefill, ring_pass_kv_prefill_blocking};
use cp_core::{LocalSeq, RingMsg};
use cp_pool::ComputePool;
use cp_tensor::DetRng;

const CP: usize = 4;

fn params() -> AttentionParams {
    AttentionParams::for_shape(GqaShape::new(8, 2, 16).unwrap())
}

fn build_locals(t: usize, seed: u64) -> Vec<Vec<LocalSeq>> {
    let p = params();
    let shape = p.shape;
    let mut rng = DetRng::new(seed);
    (0..CP)
        .map(|r| {
            let pos: Vec<usize> = (r * t..(r + 1) * t).collect();
            vec![LocalSeq {
                q: rng.tensor(&[t, shape.n_heads(), shape.head_dim()]),
                q_pos: pos.clone(),
                k: rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
                v: rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
                kv_pos: pos,
            }]
        })
        .collect()
}

fn run_ring(locals: &[Vec<LocalSeq>], link: LinkModel, overlapped: bool) {
    let p = params();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (_, report) = Fabric::new(CP)
        .link(link)
        .compute_pool((cores / CP).max(1))
        .run::<RingMsg, _, _>(|comm| {
            let run = if overlapped {
                ring_pass_kv_prefill
            } else {
                ring_pass_kv_prefill_blocking
            };
            run(comm, &p, &locals[comm.rank()]).map_err(|e| cp_comm::CommError::RankFailed {
                rank: comm.rank(),
                kind: "bench",
                detail: e.to_string(),
            })
        })
        .unwrap();
    black_box(report);
}

fn bench_overlap_ab(c: &mut Criterion) {
    // A modeled 2 ms wire per hop; at 512 tokens/rank the per-hop attention
    // is in the same few-ms band, so comm is a large share of a blocking
    // hop — the operating point where overlap pays.
    let locals = build_locals(512, 9);
    let link = LinkModel::latency_only(Duration::from_millis(2));
    let mut group = c.benchmark_group("ring_overlap_cp4_512tok_2ms_link");
    group.sample_size(10);
    group.bench_function("blocking", |b| {
        b.iter(|| run_ring(&locals, link, false));
    });
    group.bench_function("overlapped", |b| {
        b.iter(|| run_ring(&locals, link, true));
    });
    group.finish();
}

fn bench_fanout_pool_vs_scoped(c: &mut Criterion) {
    let fanout = ComputePool::global().parallelism().max(2);
    let spin = || {
        let mut acc = 0.0f32;
        for i in 0..2_000 {
            acc += (i as f32).sqrt();
        }
        black_box(acc);
    };
    let mut group = c.benchmark_group(format!("fanout_x{fanout}"));
    group.bench_function("persistent_pool", |b| {
        b.iter(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..fanout)
                .map(|_| Box::new(spin) as Box<dyn FnOnce() + Send + '_>)
                .collect();
            ComputePool::global().run(jobs);
        });
    });
    group.bench_function("scoped_spawn", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for _ in 0..fanout {
                    scope.spawn(spin);
                }
            });
        });
    });
    group.finish();
}

criterion_group!(benches, bench_overlap_ab, bench_fanout_pool_vs_scoped);
criterion_main!(benches);
