//! Figure 6/7 analog on the *exact* numeric layer: full-prefill wall time
//! of ring pass-KV, ring pass-Q and the all-gather baseline across rank
//! counts, on the thread fabric.
//!
//! Absolute times are CPU-thread times, not H100 times — the point is the
//! relative behaviour (variants comparable, all-gather no faster, scaling
//! with ranks bounded by per-rank work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cp_attention::GqaShape;
use cp_core::{ContextParallelEngine, EngineConfig, PrefillRequest};
use cp_kvcache::SeqId;
use cp_perf::RingVariant;
use cp_tensor::{DetRng, Tensor};

fn inputs(shape: GqaShape, t: usize, seed: u64) -> (Tensor, Tensor, Tensor) {
    let mut rng = DetRng::new(seed);
    (
        rng.tensor(&[t, shape.n_heads(), shape.head_dim()]),
        rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
        rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
    )
}

fn bench_full_prefill(c: &mut Criterion) {
    let shape = GqaShape::new(8, 2, 16).unwrap();
    let t = 512;
    let (q, k, v) = inputs(shape, t, 1);

    let mut group = c.benchmark_group("full_prefill_512tok");
    group.sample_size(10);
    for n in [1usize, 2, 4] {
        for variant in [RingVariant::PassKv, RingVariant::PassQ] {
            group.bench_with_input(BenchmarkId::new(format!("{variant}"), n), &n, |b, &n| {
                b.iter(|| {
                    let mut eng =
                        ContextParallelEngine::new(EngineConfig::new(n, shape).with_page_size(64))
                            .unwrap();
                    let out = eng
                        .prefill_batch(
                            &[PrefillRequest {
                                seq: SeqId(0),
                                q: &q,
                                k: &k,
                                v: &v,
                            }],
                            Some(variant),
                        )
                        .unwrap();
                    black_box(out);
                })
            });
        }
    }
    group.finish();
}

fn bench_context_scaling(c: &mut Criterion) {
    // TTFT vs context length at fixed CP2 (Figure 6's x-axis).
    let shape = GqaShape::new(4, 2, 16).unwrap();
    let mut group = c.benchmark_group("prefill_context_scaling_cp2");
    group.sample_size(10);
    for t in [128usize, 256, 512, 1024] {
        let (q, k, v) = inputs(shape, t, 2);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| {
                let mut eng =
                    ContextParallelEngine::new(EngineConfig::new(2, shape).with_page_size(64))
                        .unwrap();
                black_box(
                    eng.prefill_batch(
                        &[PrefillRequest {
                            seq: SeqId(0),
                            q: &q,
                            k: &k,
                            v: &v,
                        }],
                        Some(RingVariant::PassKv),
                    )
                    .unwrap(),
                );
            })
        });
    }
    group.finish();
}

fn bench_ring_hop_payloads_cp4_32k(c: &mut Criterion) {
    // The clone-bound component of a CP4 ring at 32K fused tokens: building
    // the circulating KV payload for every hop. The seed tensor deep-copied
    // the K/V buffers each time a block was packaged or forwarded; the
    // Arc-backed view makes the same construction an O(1) handle copy. The
    // `deep_copy` series reproduces the seed's per-hop cost via
    // `Tensor::deep_clone` so the speedup is measurable without rebuilding
    // the seed.
    let shape = GqaShape::new(8, 2, 16).unwrap();
    let n = 4;
    let t = 32_768;
    let per_rank = t / n;
    let mut rng = DetRng::new(7);
    let k = rng.tensor(&[per_rank, shape.n_kv_heads(), shape.head_dim()]);
    let v = rng.tensor(&[per_rank, shape.n_kv_heads(), shape.head_dim()]);
    let pos: Vec<usize> = (0..per_rank).collect();

    let mut group = c.benchmark_group("ring_hop_payloads_cp4_32k");
    group.bench_function("zero_copy_view", |b| {
        b.iter(|| {
            for _hop in 0..n - 1 {
                let payload = cp_core::SeqKv {
                    k: k.clone(),
                    v: v.clone(),
                    pos: pos.clone(),
                };
                black_box(&payload);
            }
        })
    });
    group.bench_function("deep_copy_seed_behaviour", |b| {
        b.iter(|| {
            for _hop in 0..n - 1 {
                let payload = cp_core::SeqKv {
                    k: k.deep_clone(),
                    v: v.deep_clone(),
                    pos: pos.clone(),
                };
                black_box(&payload);
            }
        })
    });
    group.finish();
}

fn bench_full_prefill_cp4_4k(c: &mut Criterion) {
    // End-to-end CP4 ring prefill at the largest context that stays
    // bench-friendly on the thread fabric; exercises the zero-copy hop
    // payloads, the reused-scratch kernel and the measured timeline.
    let shape = GqaShape::new(8, 2, 16).unwrap();
    let t = 4096;
    let (q, k, v) = inputs(shape, t, 3);
    let mut group = c.benchmark_group("full_prefill_cp4_4096tok");
    group.sample_size(10);
    for variant in [RingVariant::PassKv, RingVariant::PassQ] {
        group.bench_function(format!("{variant}"), |b| {
            b.iter(|| {
                let mut eng =
                    ContextParallelEngine::new(EngineConfig::new(4, shape).with_page_size(64))
                        .unwrap();
                black_box(
                    eng.prefill_batch(
                        &[PrefillRequest {
                            seq: SeqId(0),
                            q: &q,
                            k: &k,
                            v: &v,
                        }],
                        Some(variant),
                    )
                    .unwrap(),
                );
            })
        });
    }
    group.finish();
}

fn bench_varseq_batch(c: &mut Criterion) {
    // Fused variable-length batches (Figure 1's workload).
    let shape = GqaShape::new(4, 2, 16).unwrap();
    let lens = cp_workload::varseq_lengths(3, 4, 64, 256);
    let tensors: Vec<(Tensor, Tensor, Tensor)> = lens
        .iter()
        .enumerate()
        .map(|(i, &t)| inputs(shape, t, 10 + i as u64))
        .collect();
    let mut group = c.benchmark_group("varseq_batch_prefill");
    group.sample_size(10);
    for n in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut eng =
                    ContextParallelEngine::new(EngineConfig::new(n, shape).with_page_size(64))
                        .unwrap();
                let requests: Vec<PrefillRequest<'_>> = tensors
                    .iter()
                    .enumerate()
                    .map(|(i, (q, k, v))| PrefillRequest {
                        seq: SeqId(i as u64),
                        q,
                        k,
                        v,
                    })
                    .collect();
                black_box(eng.prefill_batch(&requests, None).unwrap());
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_prefill,
    bench_context_scaling,
    bench_ring_hop_payloads_cp4_32k,
    bench_full_prefill_cp4_4k,
    bench_varseq_batch
);
criterion_main!(benches);
