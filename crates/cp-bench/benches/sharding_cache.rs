//! Substrate benches: load-balanced sharding (and its straggler ablation
//! through the event simulator), the paged KV cache, and the fabric's
//! collectives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cp_comm::run_ranks;
use cp_kvcache::{KvCacheConfig, PagedKvCache, SeqId};
use cp_perf::event::{attn_matrix_from_profile, simulate_ring};
use cp_sharding::{
    decode_round_robin, naive_contiguous_positions, shard_varseq, SequenceSpec, ShardPlan,
};
use cp_tensor::DetRng;

fn bench_shard_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_planning");
    group.bench_function("plan_1m_tokens_16_ranks", |b| {
        b.iter(|| {
            let plan = ShardPlan::new(black_box(1_000_000), 16).unwrap();
            let total: usize = (0..16).map(|r| plan.tokens_for(r)).sum();
            black_box(total)
        })
    });
    group.bench_function("positions_128k_8_ranks", |b| {
        let plan = ShardPlan::new(128_000, 8).unwrap();
        b.iter(|| {
            let mut acc = 0usize;
            for r in 0..8 {
                acc += plan.positions_for(r).len();
            }
            black_box(acc)
        })
    });
    group.bench_function("varseq_batch_64_seqs", |b| {
        let batch: Vec<SequenceSpec> = (0..64)
            .map(|i| SequenceSpec::partial(100 + i * 13, i * 57))
            .collect();
        b.iter(|| black_box(shard_varseq(&batch, 8).unwrap()))
    });
    group.bench_function("decode_round_robin_4096", |b| {
        b.iter(|| black_box(decode_round_robin(4096, 16, 7).unwrap()))
    });
    group.finish();
}

fn bench_sharding_ablation(c: &mut Criterion) {
    // The §3.5.1 ablation as an event-simulation bench: ring makespan under
    // balanced vs naive causal-work profiles, at several rank counts.
    let mut group = c.benchmark_group("ring_makespan_simulation");
    for n in [4usize, 8, 16] {
        let t = 128_000;
        let plan = ShardPlan::new(t, n).unwrap();
        let balanced: Vec<u128> = (0..n).map(|r| plan.causal_pairs_for(r)).collect();
        let naive: Vec<u128> = (0..n)
            .map(|r| {
                naive_contiguous_positions(t, n, r)
                    .iter()
                    .map(|&p| (p + 1) as u128)
                    .sum()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("balanced", n), &n, |b, _| {
            b.iter(|| {
                let m = attn_matrix_from_profile(&balanced, 100.0);
                black_box(simulate_ring(&m, 20.0).makespan_us)
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                let m = attn_matrix_from_profile(&naive, 100.0);
                black_box(simulate_ring(&m, 20.0).makespan_us)
            })
        });
    }
    group.finish();
}

fn bench_kv_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("paged_kv_cache");
    group.sample_size(20);
    let cfg = KvCacheConfig::new(16, 2, 64);
    group.bench_function("append_4096_tokens_in_64tok_chunks", |b| {
        let mut rng = DetRng::new(1);
        let k = rng.tensor(&[64, 2, 64]);
        let v = rng.tensor(&[64, 2, 64]);
        b.iter(|| {
            let mut cache = PagedKvCache::new(cfg);
            cache.create_sequence(SeqId(0)).unwrap();
            for i in 0..64 {
                let pos: Vec<usize> = (i * 64..(i + 1) * 64).collect();
                cache.append(SeqId(0), &k, &v, &pos).unwrap();
            }
            black_box(cache.stats())
        })
    });
    group.bench_function("gather_4096_tokens", |b| {
        let mut rng = DetRng::new(2);
        let mut cache = PagedKvCache::new(cfg);
        cache.create_sequence(SeqId(0)).unwrap();
        let k = rng.tensor(&[4096, 2, 64]);
        let v = rng.tensor(&[4096, 2, 64]);
        let pos: Vec<usize> = (0..4096).collect();
        cache.append(SeqId(0), &k, &v, &pos).unwrap();
        b.iter(|| black_box(cache.gather(SeqId(0)).unwrap()))
    });
    group.finish();
}

fn bench_fabric_collectives(c: &mut Criterion) {
    // Raw fabric cost of one ring rotation vs one all-gather of the same
    // payload (the §3.5.2 overlap argument's communication halves).
    let mut group = c.benchmark_group("fabric_collectives_4ranks_1mb");
    group.sample_size(10);
    let payload_len = 256 * 1024; // 1 MB of f32 per rank
    group.bench_function("ring_rotation_n_minus_1", |b| {
        b.iter(|| {
            let (res, _) = run_ranks::<Vec<f32>, _, _>(4, |comm| {
                let mut msg = vec![comm.rank() as f32; payload_len];
                for _ in 0..3 {
                    msg = comm.send_recv(comm.ring_next(), msg, comm.ring_prev())?;
                }
                Ok(msg[0])
            })
            .unwrap();
            black_box(res)
        })
    });
    group.bench_function("all_gather", |b| {
        b.iter(|| {
            let (res, _) = run_ranks::<Vec<f32>, _, _>(4, |comm| {
                let gathered = comm.all_gather(vec![comm.rank() as f32; payload_len])?;
                Ok(gathered.len())
            })
            .unwrap();
            black_box(res)
        })
    });
    group.bench_function("all_to_all", |b| {
        b.iter(|| {
            let (res, _) = run_ranks::<Vec<f32>, _, _>(4, |comm| {
                let payloads: Vec<Vec<f32>> =
                    (0..4).map(|d| vec![d as f32; payload_len / 4]).collect();
                let got = comm.all_to_all(payloads)?;
                Ok(got.len())
            })
            .unwrap();
            black_box(res)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shard_planning,
    bench_sharding_ablation,
    bench_kv_cache,
    bench_fabric_collectives
);
criterion_main!(benches);
