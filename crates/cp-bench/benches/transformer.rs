//! Full-stack benches: the context-parallel transformer forward (every
//! rank runs all layers; ring attention per layer) vs the single-device
//! forward, TP attention with KV replication, and the approximate
//! attention policies' compute/fidelity trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cp_attention::{approx_gqa_attention, ApproxPolicy, AttentionParams, GqaShape};
use cp_model::{cp_forward, tp, Transformer, TransformerConfig};
use cp_perf::RingVariant;
use cp_tensor::DetRng;

fn bench_cp_forward(c: &mut Criterion) {
    let model = Transformer::new(&TransformerConfig::small(), 1);
    let tokens: Vec<u32> = (0..128).map(|i| i % 997).collect();
    let mut group = c.benchmark_group("transformer_forward_128tok");
    group.sample_size(10);
    group.bench_function("single_device", |b| {
        b.iter(|| black_box(model.forward(&tokens).unwrap()))
    });
    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("cp_forward", n), &n, |b, &n| {
            b.iter(|| black_box(cp_forward(&model, &tokens, n).unwrap()))
        });
    }
    group.finish();
}

fn bench_cp_variants_full_stack(c: &mut Criterion) {
    use cp_model::cp_forward_sharded_with;
    use cp_sharding::ShardPlan;
    let model = Transformer::new(&TransformerConfig::tiny(), 2);
    let tokens: Vec<u32> = (0..96).collect();
    let n = 3;
    let plan = ShardPlan::new(tokens.len(), n).unwrap();
    let shards: Vec<(Vec<u32>, Vec<usize>)> = (0..n)
        .map(|r| {
            let positions = plan.positions_for(r);
            (positions.iter().map(|&p| tokens[p]).collect(), positions)
        })
        .collect();
    let mut group = c.benchmark_group("transformer_ring_variant");
    group.sample_size(10);
    for variant in [RingVariant::PassKv, RingVariant::PassQ] {
        group.bench_function(format!("{variant}"), |b| {
            b.iter(|| black_box(cp_forward_sharded_with(&model, &shards, variant).unwrap()))
        });
    }
    group.finish();
}

fn bench_tp_attention(c: &mut Criterion) {
    let shape = GqaShape::new(8, 2, 16).unwrap();
    let params = AttentionParams::for_shape(shape);
    let mut rng = DetRng::new(3);
    let t = 256;
    let q = rng.tensor(&[t, 8, 16]);
    let k = rng.tensor(&[t, 2, 16]);
    let v = rng.tensor(&[t, 2, 16]);
    let pos: Vec<usize> = (0..t).collect();
    let mut group = c.benchmark_group("tp_attention_kv_replication");
    group.sample_size(10);
    for n in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(tp::tp_attention(&q, &k, &v, &params, &pos, &pos, n).unwrap()))
        });
    }
    group.finish();
}

fn bench_approx_policies(c: &mut Criterion) {
    let shape = GqaShape::new(4, 2, 16).unwrap();
    let params = AttentionParams::for_shape(shape);
    let mut rng = DetRng::new(4);
    let t = 512;
    let q = rng.tensor(&[t, 4, 16]);
    let k = rng.tensor(&[t, 2, 16]);
    let v = rng.tensor(&[t, 2, 16]);
    let pos: Vec<usize> = (0..t).collect();
    let mut group = c.benchmark_group("approx_attention_512tok");
    group.sample_size(10);
    for (name, policy) in [
        ("window_512", ApproxPolicy::Window { window: 512 }),
        ("window_64", ApproxPolicy::Window { window: 64 }),
        (
            "sink4_window_64",
            ApproxPolicy::SinkWindow {
                sinks: 4,
                window: 64,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(approx_gqa_attention(&q, &k, &v, &params, &pos, &pos, policy).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cp_forward,
    bench_cp_variants_full_stack,
    bench_tp_attention,
    bench_approx_policies
);
criterion_main!(benches);
