//! `decode_steady` — steady-state decode throughput A/B, emitting
//! `BENCH_decode_steady.json`.
//!
//! ```bash
//! cargo run --release -p cp-bench --bin decode_steady            # full run
//! cargo run --release -p cp-bench --bin decode_steady -- --smoke # CI smoke
//! ```
//!
//! The decode hot path attends over every rank's *resident* KV cache once
//! per generated token. The seed engines materialized that cache with
//! `PagedKvCache::gather` — an O(context) copy per (step, rank) — before
//! every ring pass-Q decode. This harness pits that path against the
//! zero-copy [`KvView`] path on the same caches and the same ring
//! schedule, at contexts up to 256K tokens and CP in {1, 2, 4}:
//!
//! * caches are built directly with O(T) chunked appends (no O(T^2)
//!   prefill), so the 256K point is reachable on a small host;
//! * each timed step is a faithful decode step: the owner rank appends
//!   the new token's KV, then every rank attends over its own cache via
//!   `ring_pass_q_decode_kv` — with the cache either gathered (A) or
//!   borrowed zero-copy (B);
//! * the first step of each mode is checked bit-identical across modes;
//! * bytes-touched-per-token is reported analytically: the view reads
//!   each cached K/V byte once, the gather path reads it, writes the
//!   copy, and re-reads the copy (3x traffic).
//!
//! The full run asserts the ISSUE acceptance claim: >=2x decode
//! tokens/sec at T = 256K from dropping the gather.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use cp_attention::{AttentionParams, GqaShape};
use cp_core::ring::{ring_pass_q_decode_kv, run_ring, RankKv};
use cp_core::{DecodeSlot, SeqKv};
use cp_kvcache::{KvCacheConfig, PagedKvCache, SeqId};
use cp_tensor::{DetRng, Tensor};

/// The one sequence each bench cache holds.
const SEQ: SeqId = SeqId(0);
/// Tokens per cache page (the serving engine's geometry).
const PAGE_SIZE: usize = 16;
/// Tokens appended per build batch: bounds temp-tensor size while keeping
/// the build O(T).
const BUILD_CHUNK: usize = 4096;

/// Decode-shaped attention geometry: MQA-style single KV head with a wide
/// head dim keeps the kernel bandwidth-bound, which is where the
/// gather-vs-view distinction lives (and where long-context decode runs
/// on real accelerators).
fn bench_shape() -> GqaShape {
    GqaShape::new(1, 1, 128).expect("valid GQA shape")
}

/// One step's pre-generated new-token projections (identical across
/// modes, so the A/B outputs stay bit-comparable).
struct StepInput {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    pos: usize,
}

/// Builds one rank's cache holding `tokens` rows at the given global
/// positions, via chunked O(T) appends.
fn build_cache(shape: &GqaShape, first_pos: usize, tokens: usize, seed: u64) -> PagedKvCache {
    let mut cache = PagedKvCache::new(KvCacheConfig::new(
        PAGE_SIZE,
        shape.n_kv_heads(),
        shape.head_dim(),
    ));
    cache.create_sequence(SEQ).expect("fresh cache");
    let mut rng = DetRng::new(seed);
    let mut done = 0;
    while done < tokens {
        let t = BUILD_CHUNK.min(tokens - done);
        let k = rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]);
        let v = rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]);
        let pos: Vec<usize> = (first_pos + done..first_pos + done + t).collect();
        cache.append(SEQ, &k, &v, &pos).expect("append fits");
        done += t;
    }
    cache
}

/// Runs `steps` decode steps over the per-rank caches and returns the
/// wall time plus the owner outputs of the first step (for the A/B
/// bit-identity check). `gather` selects the materializing hot path.
fn run_steps(
    caches: &[Mutex<PagedKvCache>],
    params: &AttentionParams,
    inputs: &[StepInput],
    gather: bool,
) -> (Duration, Vec<f32>) {
    let cp = caches.len();
    let mut first_out = Vec::new();
    let start = Instant::now();
    for (step, input) in inputs.iter().enumerate() {
        let owner = step % cp;
        let body = |comm: &cp_comm::Communicator<cp_core::RingMsg>| {
            let r = comm.rank();
            let mut cache = caches[r].lock().expect("one thread per rank");
            let slot = if r == owner {
                cache.append(SEQ, &input.k, &input.v, &[input.pos])?;
                Some(DecodeSlot {
                    bid: 0,
                    q: input.q.clone(),
                    pos: input.pos,
                })
            } else {
                None
            };
            let kv = if gather {
                let (k, v, pos) = cache.gather(SEQ)?;
                [RankKv::tensors(SeqKv { k, v, pos })]
            } else {
                [RankKv::View(cache.view(SEQ)?)]
            };
            ring_pass_q_decode_kv(comm, params, &[slot], &kv)
        };
        let (outs, _) = run_ring(cp, body).expect("decode step");
        if step == 0 {
            let owner_out = outs
                .into_iter()
                .find_map(|mut v: Vec<_>| v.pop())
                .expect("owner produced one output");
            first_out = owner_out.out.as_slice().to_vec();
        }
    }
    (start.elapsed(), first_out)
}

/// Rewinds every rank cache to its pre-bench length so the next mode sees
/// the identical starting state.
fn rewind(caches: &[Mutex<PagedKvCache>], lens: &[usize]) {
    for (cache, &len) in caches.iter().zip(lens) {
        cache
            .lock()
            .expect("threads joined")
            .truncate(SEQ, len)
            .expect("rewind to build length");
    }
}

struct GridResult {
    t: usize,
    cp: usize,
    gather_wall: Duration,
    view_wall: Duration,
    steps: usize,
}

fn bench_point(
    shape: &GqaShape,
    params: &AttentionParams,
    t: usize,
    cp: usize,
    steps: usize,
) -> GridResult {
    // Contiguous shards: rank r owns positions [r*per, r*per+per). The
    // position metadata keeps ring decode exact for any layout.
    let per = t / cp;
    let caches: Vec<Mutex<PagedKvCache>> = (0..cp)
        .map(|r| {
            Mutex::new(build_cache(
                shape,
                r * per,
                per + usize::from(r < t % cp),
                0x5eed + (t * 31 + cp * 7 + r) as u64,
            ))
        })
        .collect();
    let lens: Vec<usize> = caches
        .iter()
        .map(|c| c.lock().expect("built").seq_len(SEQ).expect("one seq"))
        .collect();
    let mut rng = DetRng::new(0xdec0de ^ t as u64);
    let inputs: Vec<StepInput> = (0..steps)
        .map(|s| StepInput {
            q: rng.tensor(&[1, shape.n_heads(), shape.head_dim()]),
            k: rng.tensor(&[1, shape.n_kv_heads(), shape.head_dim()]),
            v: rng.tensor(&[1, shape.n_kv_heads(), shape.head_dim()]),
            pos: t + s,
        })
        .collect();

    // Warm both paths once (page-faults the freshly built caches), then
    // time each mode from the same rewound state; best of two rounds.
    let (_, warm_gather) = run_steps(&caches, params, &inputs[..1], true);
    rewind(&caches, &lens);
    let (_, warm_view) = run_steps(&caches, params, &inputs[..1], false);
    rewind(&caches, &lens);
    assert_eq!(
        warm_gather, warm_view,
        "gather and view decode paths must be bit-identical (T={t}, CP={cp})"
    );

    let mut gather_wall = Duration::MAX;
    let mut view_wall = Duration::MAX;
    for _ in 0..2 {
        let (wall, _) = run_steps(&caches, params, &inputs, true);
        gather_wall = gather_wall.min(wall);
        rewind(&caches, &lens);
        let (wall, _) = run_steps(&caches, params, &inputs, false);
        view_wall = view_wall.min(wall);
        rewind(&caches, &lens);
    }
    GridResult {
        t,
        cp,
        gather_wall,
        view_wall,
        steps,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_decode_steady.json".to_string());

    let shape = bench_shape();
    let params = AttentionParams::for_shape(shape);
    let token_kv_bytes = 2 * shape.n_kv_heads() * shape.head_dim() * std::mem::size_of::<f32>();

    let contexts: &[usize] = if smoke {
        &[2048]
    } else {
        &[8192, 65_536, 262_144]
    };
    let cps: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let steps = if smoke { 2 } else { 4 };

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &t in contexts {
        for &cp in cps {
            let r = bench_point(&shape, &params, t, cp, steps);
            let gather_tok_s = r.steps as f64 / r.gather_wall.as_secs_f64();
            let view_tok_s = r.steps as f64 / r.view_wall.as_secs_f64();
            let speedup = view_tok_s / gather_tok_s;
            // Per decoded token the ring visits every cached row once:
            // the view reads each K/V byte once; gather reads the pages,
            // writes the contiguous copy, and re-reads it in the kernel.
            let view_bytes = (t * token_kv_bytes) as u64;
            let gather_bytes = 3 * view_bytes;
            println!(
                "  T={:>6} CP={}: gather {:>8.2} ms/step, view {:>8.2} ms/step ({speedup:.2}x, \
                 {:.0} -> {:.0} MB touched/token)",
                r.t,
                r.cp,
                r.gather_wall.as_secs_f64() * 1e3 / r.steps as f64,
                r.view_wall.as_secs_f64() * 1e3 / r.steps as f64,
                gather_bytes as f64 / 1e6,
                view_bytes as f64 / 1e6,
            );
            rows.push(serde_json::json!({
                "t": r.t,
                "cp": r.cp,
                "steps": r.steps,
                "gather_ms_per_step": r.gather_wall.as_secs_f64() * 1e3 / r.steps as f64,
                "view_ms_per_step": r.view_wall.as_secs_f64() * 1e3 / r.steps as f64,
                "gather_tokens_per_s": gather_tok_s,
                "view_tokens_per_s": view_tok_s,
                "speedup": speedup,
                "gather_bytes_per_token": gather_bytes,
                "view_bytes_per_token": view_bytes,
            }));
            results.push(r);
        }
    }

    let headline: Vec<&GridResult> = results
        .iter()
        .filter(|r| r.t == *contexts.last().expect("non-empty grid"))
        .collect();
    let headline_speedup = headline
        .iter()
        .map(|r| r.gather_wall.as_secs_f64() / r.view_wall.as_secs_f64())
        .fold(f64::INFINITY, f64::min);

    let json = serde_json::json!({
        "config": {
            "smoke": smoke,
            "steps": steps,
            "page_size": PAGE_SIZE,
            "n_heads": shape.n_heads(),
            "n_kv_heads": shape.n_kv_heads(),
            "head_dim": shape.head_dim(),
            "token_kv_bytes": token_kv_bytes,
        },
        "grid": rows,
        "headline": {
            "t": contexts.last(),
            "min_speedup_across_cp": headline_speedup,
        },
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&json).expect("serialize report") + "\n",
    )
    .expect("write report");
    println!("  wrote {out_path}");

    // The ISSUE acceptance claim, skipped in --smoke where contexts are
    // too short for the copy cost to dominate timing noise.
    if !smoke {
        assert!(
            headline_speedup >= 2.0,
            "zero-copy decode must be >=2x gather at T=256K on every CP, got {headline_speedup:.2}x"
        );
    }
}
