//! `decode_steady` — steady-state decode throughput A/B, emitting
//! `BENCH_decode_steady.json`.
//!
//! ```bash
//! cargo run --release -p cp-bench --bin decode_steady            # full run
//! cargo run --release -p cp-bench --bin decode_steady -- --smoke # CI smoke
//! ```
//!
//! The decode hot path attends over every rank's *resident* KV cache once
//! per generated token. The seed engines materialized that cache with
//! `PagedKvCache::gather` — an O(context) copy per (step, rank) — before
//! every ring pass-Q decode. This harness pits that path against the
//! zero-copy [`KvView`] path on the same caches and the same ring
//! schedule, at contexts up to 256K tokens and CP in {1, 2, 4}:
//!
//! * caches are built directly with O(T) chunked appends (no O(T^2)
//!   prefill), so the 256K point is reachable on a small host;
//! * each timed step is a faithful decode step: the owner rank appends
//!   the new token's KV, then every rank attends over its own cache via
//!   the selected decode strategy — with the cache either gathered (A)
//!   or borrowed zero-copy (B);
//! * the first step of each mode is checked bit-identical across modes;
//! * bytes-touched-per-token is reported analytically: the view reads
//!   each cached K/V byte once, the gather path reads it, writes the
//!   copy, and re-reads the copy (3x traffic).
//!
//! On top of the gather/view A/B, every grid point also times the three
//! decode strategies on the zero-copy caches — batched ring pass-Q
//! (Algorithm 4), Helix (one fused AllGather + All2All), and TP-only
//! (KV AllGather, owner attends the full context) — and records which
//! one the cp-perf Appendix-D comm model ranks first. The full run
//! asserts the model's pick is the measured winner (within a near-tie
//! tolerance) in every regime, plus the original >=2x zero-copy claim
//! at T = 256K.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use cp_attention::{AttentionParams, GqaShape};
use cp_core::ring::{
    attn_block_for, helix_decode_kv, ring_pass_q_decode_kv, run_ring, tp_only_decode_kv, RankKv,
};
use cp_core::{DecodeSlot, SeqKv};
use cp_kvcache::{KvCacheConfig, PagedKvCache, SeqId};
use cp_perf::{choose_decode_strategy, DecodeStrategy, ModelSpec, TopologySpec};
use cp_tensor::{DetRng, Tensor};

/// The one sequence each bench cache holds.
const SEQ: SeqId = SeqId(0);
/// Tokens per cache page (the serving engine's geometry).
const PAGE_SIZE: usize = 16;
/// Tokens appended per build batch: bounds temp-tensor size while keeping
/// the build O(T).
const BUILD_CHUNK: usize = 4096;
/// Near-tie tolerance for the model-ranking assertion: the strategy the
/// model ranks first must measure within this fraction of the fastest.
const RANKING_TOLERANCE: f64 = 0.9;

/// Decode-shaped attention geometry: MQA-style single KV head with a wide
/// head dim keeps the kernel bandwidth-bound, which is where the
/// gather-vs-view distinction lives (and where long-context decode runs
/// on real accelerators).
fn bench_shape() -> GqaShape {
    GqaShape::new(1, 1, 128).expect("valid GQA shape")
}

/// The bench geometry as the cp-perf model sees it (f32 wire elements);
/// only the attention-head fields feed the decode-strategy comm terms.
fn bench_model_spec(shape: &GqaShape) -> ModelSpec {
    ModelSpec {
        name: "decode-steady-bench".to_string(),
        n_layers: 1,
        model_dim: shape.n_heads() * shape.head_dim(),
        ffn_dim: 4 * shape.n_heads() * shape.head_dim(),
        n_heads: shape.n_heads(),
        n_kv_heads: shape.n_kv_heads(),
        head_dim: shape.head_dim(),
        params: 0.0,
        act_bytes: 4.0,
        weight_bytes: 4.0,
    }
}

/// What one timed pass exercises: the gather-vs-view A/B both run ring
/// pass-Q; the strategy rows all run on zero-copy views.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    GatherPassQ,
    ViewPassQ,
    ViewHelix,
    ViewTpOnly,
}

/// One step's pre-generated new-token projections (identical across
/// modes, so the A/B outputs stay bit-comparable).
struct StepInput {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    pos: usize,
}

/// Builds one rank's cache holding `tokens` rows at the given global
/// positions, via chunked O(T) appends.
fn build_cache(shape: &GqaShape, first_pos: usize, tokens: usize, seed: u64) -> PagedKvCache {
    let mut cache = PagedKvCache::new(KvCacheConfig::new(
        PAGE_SIZE,
        shape.n_kv_heads(),
        shape.head_dim(),
    ));
    cache.create_sequence(SEQ).expect("fresh cache");
    let mut rng = DetRng::new(seed);
    let mut done = 0;
    while done < tokens {
        let t = BUILD_CHUNK.min(tokens - done);
        let k = rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]);
        let v = rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]);
        let pos: Vec<usize> = (first_pos + done..first_pos + done + t).collect();
        cache.append(SEQ, &k, &v, &pos).expect("append fits");
        done += t;
    }
    cache
}

/// Runs `steps` decode steps over the per-rank caches and returns the
/// wall time plus the owner outputs of the first step (for the cross-mode
/// bit-identity check).
fn run_steps(
    caches: &[Mutex<PagedKvCache>],
    params: &AttentionParams,
    inputs: &[StepInput],
    mode: Mode,
) -> (Duration, Vec<f32>) {
    let cp = caches.len();
    let attn_block = attn_block_for(PAGE_SIZE);
    let mut first_out = Vec::new();
    let start = Instant::now();
    for (step, input) in inputs.iter().enumerate() {
        let owner = step % cp;
        let body = |comm: &cp_comm::Communicator<cp_core::RingMsg>| {
            let r = comm.rank();
            let mut cache = caches[r].lock().expect("one thread per rank");
            let slot = if r == owner {
                cache.append(SEQ, &input.k, &input.v, &[input.pos])?;
                Some(DecodeSlot {
                    bid: 0,
                    q: input.q.clone(),
                    pos: input.pos,
                })
            } else {
                None
            };
            let kv = if mode == Mode::GatherPassQ {
                let (k, v, pos) = cache.gather(SEQ)?;
                [RankKv::tensors(SeqKv { k, v, pos })]
            } else {
                [RankKv::View(cache.view(SEQ)?)]
            };
            match mode {
                Mode::GatherPassQ | Mode::ViewPassQ => {
                    ring_pass_q_decode_kv(comm, params, &[slot], &kv)
                }
                Mode::ViewHelix => helix_decode_kv(comm, params, &[slot], &kv),
                Mode::ViewTpOnly => {
                    // The O(T) shard copy feeds the Kv AllGather; at
                    // W = 1 nothing is sent and the owner attends its
                    // local view directly, so skip it.
                    let wire = if cp > 1 {
                        let (k, v, pos) = cache.gather(SEQ)?;
                        vec![SeqKv { k, v, pos }]
                    } else {
                        Vec::new()
                    };
                    tp_only_decode_kv(comm, params, &[slot], &kv, &wire, attn_block)
                }
            }
        };
        let (outs, _) = run_ring(cp, body).expect("decode step");
        if step == 0 {
            let owner_out = outs
                .into_iter()
                .find_map(|mut v: Vec<_>| v.pop())
                .expect("owner produced one output");
            first_out = owner_out.out.as_slice().to_vec();
        }
    }
    (start.elapsed(), first_out)
}

/// Rewinds every rank cache to its pre-bench length so the next mode sees
/// the identical starting state.
fn rewind(caches: &[Mutex<PagedKvCache>], lens: &[usize]) {
    for (cache, &len) in caches.iter().zip(lens) {
        cache
            .lock()
            .expect("threads joined")
            .truncate(SEQ, len)
            .expect("rewind to build length");
    }
}

struct GridResult {
    t: usize,
    cp: usize,
    gather_wall: Duration,
    view_wall: Duration,
    helix_wall: Duration,
    tp_only_wall: Duration,
    steps: usize,
}

impl GridResult {
    fn tokens_per_s(&self, wall: Duration) -> f64 {
        self.steps as f64 / wall.as_secs_f64()
    }

    fn strategy_tokens_per_s(&self, strategy: DecodeStrategy) -> f64 {
        self.tokens_per_s(match strategy {
            DecodeStrategy::PassQ => self.view_wall,
            DecodeStrategy::Helix => self.helix_wall,
            DecodeStrategy::TpOnly => self.tp_only_wall,
        })
    }

    fn measured_winner(&self) -> DecodeStrategy {
        *DecodeStrategy::ALL
            .iter()
            .max_by(|a, b| {
                self.strategy_tokens_per_s(**a)
                    .total_cmp(&self.strategy_tokens_per_s(**b))
            })
            .expect("non-empty strategy set")
    }
}

fn bench_point(
    shape: &GqaShape,
    params: &AttentionParams,
    t: usize,
    cp: usize,
    steps: usize,
) -> GridResult {
    // Contiguous shards: rank r owns positions [r*per, r*per+per). The
    // position metadata keeps ring decode exact for any layout.
    let per = t / cp;
    let caches: Vec<Mutex<PagedKvCache>> = (0..cp)
        .map(|r| {
            Mutex::new(build_cache(
                shape,
                r * per,
                per + usize::from(r < t % cp),
                0x5eed + (t * 31 + cp * 7 + r) as u64,
            ))
        })
        .collect();
    let lens: Vec<usize> = caches
        .iter()
        .map(|c| c.lock().expect("built").seq_len(SEQ).expect("one seq"))
        .collect();
    let mut rng = DetRng::new(0xdec0de ^ t as u64);
    let inputs: Vec<StepInput> = (0..steps)
        .map(|s| StepInput {
            q: rng.tensor(&[1, shape.n_heads(), shape.head_dim()]),
            k: rng.tensor(&[1, shape.n_kv_heads(), shape.head_dim()]),
            v: rng.tensor(&[1, shape.n_kv_heads(), shape.head_dim()]),
            pos: t + s,
        })
        .collect();

    // Warm every mode once (page-faults the freshly built caches) and
    // check all four produce bit-identical first-step outputs, then time
    // each mode from the same rewound state; best of two rounds.
    const MODES: [Mode; 4] = [
        Mode::GatherPassQ,
        Mode::ViewPassQ,
        Mode::ViewHelix,
        Mode::ViewTpOnly,
    ];
    let mut warm: Vec<Vec<f32>> = Vec::new();
    for mode in MODES {
        let (_, out) = run_steps(&caches, params, &inputs[..1], mode);
        rewind(&caches, &lens);
        warm.push(out);
    }
    for (i, out) in warm.iter().enumerate().skip(1) {
        assert_eq!(
            &warm[0], out,
            "decode mode {i} must be bit-identical to gather pass-Q (T={t}, CP={cp})"
        );
    }

    let mut walls = [Duration::MAX; 4];
    for _ in 0..2 {
        for (wall, mode) in walls.iter_mut().zip(MODES) {
            let (w, _) = run_steps(&caches, params, &inputs, mode);
            *wall = (*wall).min(w);
            rewind(&caches, &lens);
        }
    }
    GridResult {
        t,
        cp,
        gather_wall: walls[0],
        view_wall: walls[1],
        helix_wall: walls[2],
        tp_only_wall: walls[3],
        steps,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_decode_steady.json".to_string());

    let shape = bench_shape();
    let params = AttentionParams::for_shape(shape);
    let model = bench_model_spec(&shape);
    let token_kv_bytes = 2 * shape.n_kv_heads() * shape.head_dim() * std::mem::size_of::<f32>();

    // Smoke shares the full grid's first context so its rows (and the
    // tokens/s headline) stay comparable with the committed full-run
    // baseline for the CI perf ratchet.
    let contexts: &[usize] = if smoke {
        &[8192]
    } else {
        &[8192, 65_536, 262_144]
    };
    let cps: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let steps = if smoke { 2 } else { 4 };

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &t in contexts {
        for &cp in cps {
            let r = bench_point(&shape, &params, t, cp, steps);
            let gather_tok_s = r.tokens_per_s(r.gather_wall);
            let view_tok_s = r.tokens_per_s(r.view_wall);
            let speedup = view_tok_s / gather_tok_s;
            // Per decoded token the ring visits every cached row once:
            // the view reads each K/V byte once; gather reads the pages,
            // writes the contiguous copy, and re-reads it in the kernel.
            let view_bytes = (t * token_kv_bytes) as u64;
            let gather_bytes = 3 * view_bytes;
            // An in-process fabric point for the Appendix-D strategy
            // ranking: channel sends cost microseconds of wakeup latency
            // and memcpy-class bandwidth.
            let topo = TopologySpec::uniform(cp, 8.0, 2.0);
            let model_pick = choose_decode_strategy(&model, &topo, t, 1);
            let winner = r.measured_winner();
            println!(
                "  T={:>6} CP={}: gather {:>8.2} ms/step, view {:>8.2} ms/step ({speedup:.2}x) | \
                 pass-q {:>7.1} helix {:>7.1} tp-only {:>7.1} tok/s, model picks {}, measured {}",
                r.t,
                r.cp,
                r.gather_wall.as_secs_f64() * 1e3 / r.steps as f64,
                r.view_wall.as_secs_f64() * 1e3 / r.steps as f64,
                r.strategy_tokens_per_s(DecodeStrategy::PassQ),
                r.strategy_tokens_per_s(DecodeStrategy::Helix),
                r.strategy_tokens_per_s(DecodeStrategy::TpOnly),
                model_pick.name(),
                winner.name(),
            );
            rows.push(serde_json::json!({
                "t": r.t,
                "cp": r.cp,
                "steps": r.steps,
                "gather_ms_per_step": r.gather_wall.as_secs_f64() * 1e3 / r.steps as f64,
                "view_ms_per_step": r.view_wall.as_secs_f64() * 1e3 / r.steps as f64,
                "gather_tokens_per_s": gather_tok_s,
                "view_tokens_per_s": view_tok_s,
                "speedup": speedup,
                "gather_bytes_per_token": gather_bytes,
                "view_bytes_per_token": view_bytes,
                "passq_tokens_per_s": r.strategy_tokens_per_s(DecodeStrategy::PassQ),
                "helix_tokens_per_s": r.strategy_tokens_per_s(DecodeStrategy::Helix),
                "tp_only_tokens_per_s": r.strategy_tokens_per_s(DecodeStrategy::TpOnly),
                "model_pick": model_pick.name(),
                "measured_winner": winner.name(),
            }));
            results.push((r, model_pick));
        }
    }

    let headline: Vec<&GridResult> = results
        .iter()
        .map(|(r, _)| r)
        .filter(|r| r.t == *contexts.last().expect("non-empty grid"))
        .collect();
    let headline_speedup = headline
        .iter()
        .map(|r| r.gather_wall.as_secs_f64() / r.view_wall.as_secs_f64())
        .fold(f64::INFINITY, f64::min);
    // The ratchet headline: best-strategy decode throughput at the grid
    // point shared by smoke and full runs (first context, CP = 2).
    let ratchet_cp = if cps.contains(&2) {
        2
    } else {
        *cps.last().expect("non-empty")
    };
    let headline_tok_s = results
        .iter()
        .map(|(r, _)| r)
        .find(|r| r.t == contexts[0] && r.cp == ratchet_cp)
        .map(|r| r.strategy_tokens_per_s(r.measured_winner()))
        .expect("ratchet grid point present");

    let json = serde_json::json!({
        "config": {
            "smoke": smoke,
            "steps": steps,
            "page_size": PAGE_SIZE,
            "n_heads": shape.n_heads(),
            "n_kv_heads": shape.n_kv_heads(),
            "head_dim": shape.head_dim(),
            "token_kv_bytes": token_kv_bytes,
        },
        "grid": rows,
        "headline": {
            "t": contexts.last(),
            "min_speedup_across_cp": headline_speedup,
            "tokens_per_s": headline_tok_s,
            "tokens_per_s_at": { "t": contexts[0], "cp": ratchet_cp },
        },
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&json).expect("serialize report") + "\n",
    )
    .expect("write report");
    println!("  wrote {out_path}");

    // The acceptance claims, skipped in --smoke where contexts are too
    // short for the copy cost to dominate timing noise.
    if !smoke {
        assert!(
            headline_speedup >= 2.0,
            "zero-copy decode must be >=2x gather at T=256K on every CP, got {headline_speedup:.2}x"
        );
        for (r, model_pick) in &results {
            let best = r.strategy_tokens_per_s(r.measured_winner());
            let picked = r.strategy_tokens_per_s(*model_pick);
            assert!(
                picked >= RANKING_TOLERANCE * best,
                "cp-perf model picked {} at T={} CP={}, but it measures {picked:.1} tok/s vs \
                 the winner's {best:.1} (> {:.0}% off)",
                model_pick.name(),
                r.t,
                r.cp,
                100.0 * (1.0 - RANKING_TOLERANCE),
            );
        }
    }
}
