//! `gemm` — A/B harness for the cache-blocked multi-threaded GEMM,
//! emitting `BENCH_gemm.json`.
//!
//! ```bash
//! cargo run --release -p cp-bench --bin gemm            # full run
//! cargo run --release -p cp-bench --bin gemm -- --smoke # CI smoke
//! ```
//!
//! Three measurements:
//!
//! 1. **Kernel A/B** over serving-class shapes: the naive triple loop vs
//!    the packed register-tiled kernel (`matmul_packed`) vs the same
//!    kernel row-banded across the compute pool (`matmul_packed_on`).
//!    Every variant is bit-identical by construction; the harness
//!    re-checks one shape's bits on every run.
//! 2. **Calibration**: the headline shape's serial vs pooled GFLOP/s give
//!    this host's measured parallel-scaling fraction, which is fed through
//!    [`HardwareSpec::with_measured_gemm_efficiency`] to recalibrate the
//!    cp-perf prefill roofline — the hook the paper-model uses to ingest
//!    measured GEMM efficiency instead of the back-solved constant.
//! 3. **End-to-end serving A/B**: a CP2 `TransformerEngine` prefill +
//!    decode trace with naive reference GEMMs on a pool of 1 thread (the
//!    seed engine) vs packed tiled GEMMs on the fabric-default pool
//!    width (this PR's hot path).

use std::time::{Duration, Instant};

use cp_attention::GqaShape;
use cp_model::{Transformer, TransformerConfig};
use cp_perf::prefill::cp_full_prefill_s;
use cp_perf::{HardwareSpec, ModelSpec};
use cp_pool::ComputePool;
use cp_serve::TransformerEngine;
use cp_tensor::{matmul, matmul_packed, matmul_packed_on, DetRng, PackedGemmB};

/// Best-of-`reps` wall time of `f`.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

fn gflops(m: usize, k: usize, n: usize, wall: Duration) -> f64 {
    2.0 * (m * k * n) as f64 / wall.as_secs_f64() / 1e9
}

struct ShapeResult {
    m: usize,
    k: usize,
    n: usize,
    naive: Duration,
    tiled: Duration,
    pooled: Duration,
}

fn bench_shape(
    pool: &ComputePool,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    naive_reps: usize,
) -> ShapeResult {
    let mut rng = DetRng::new((m * 31 + k * 7 + n) as u64);
    let a = rng.tensor(&[m, k]);
    let b = rng.tensor(&[k, n]);
    let packed = PackedGemmB::pack(&b).expect("rank-2 weight");
    let naive = best_of(naive_reps, || {
        std::hint::black_box(matmul(&a, &b).expect("naive matmul"));
    });
    let tiled = best_of(reps, || {
        std::hint::black_box(matmul_packed(&a, &packed).expect("tiled matmul"));
    });
    let pooled = best_of(reps, || {
        std::hint::black_box(matmul_packed_on(pool, &a, &packed).expect("pooled matmul"));
    });
    ShapeResult {
        m,
        k,
        n,
        naive,
        tiled,
        pooled,
    }
}

/// One engine lifetime: returns (prefill wall, decode wall for `decodes`
/// steps) at the given per-rank pool width. `reference` additionally
/// routes every projection through the naive audit GEMM — together with
/// one pool thread that reproduces the pre-tiling engine.
fn serve_trace(
    model: &Transformer,
    cp: usize,
    pool_threads: usize,
    reference: bool,
    prompt: &[u32],
    decodes: usize,
) -> (Duration, Duration) {
    let mut eng = TransformerEngine::new(model.clone(), cp)
        .expect("valid rank count")
        .with_pool_threads(pool_threads)
        .with_reference_gemm(reference);
    let start = Instant::now();
    eng.prefill(prompt).expect("prefill");
    let prefill = start.elapsed();
    let start = Instant::now();
    for i in 0..decodes {
        eng.decode(i as u32).expect("decode");
    }
    (prefill, start.elapsed())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_gemm.json".to_string());

    let pool = ComputePool::global();
    let threads = pool.parallelism();
    let reps = if smoke { 2 } else { 3 };

    // Bit-identity spot check (cheap; runs in smoke too): ragged in every
    // dimension so tile tails are exercised.
    {
        let mut rng = DetRng::new(9);
        let a = rng.tensor(&[37, 53]);
        let b = rng.tensor(&[53, 29]);
        let reference = matmul(&a, &b).expect("naive");
        let packed = PackedGemmB::pack(&b).expect("pack");
        assert_eq!(
            reference,
            matmul_packed(&a, &packed).expect("tiled"),
            "tiled kernel must be bit-identical to naive"
        );
        assert_eq!(
            reference,
            matmul_packed_on(pool, &a, &packed).expect("pooled"),
            "pooled kernel must be bit-identical to naive"
        );
    }

    // Serving-class shapes: (tokens, in_dim, out_dim). The headline
    // 256x4096x4096 is the ISSUE's acceptance shape; smoke shrinks k/n so
    // CI stays fast.
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(64, 256, 256), (128, 512, 512), (1, 1024, 1024)]
    } else {
        &[
            (256, 4096, 4096),
            (256, 1024, 1024),
            (1024, 512, 512),
            (16, 2048, 2048),
            (1, 4096, 4096),
        ]
    };
    // The naive kernel is O(10x) slower on the big shapes; one rep is
    // plenty for a best-of denominator.
    let naive_reps = if smoke { 2 } else { 1 };
    let results: Vec<ShapeResult> = shapes
        .iter()
        .map(|&(m, k, n)| bench_shape(pool, m, k, n, reps, naive_reps))
        .collect();
    let headline = &results[if smoke { 1 } else { 0 }];
    let headline_speedup = headline.naive.as_secs_f64() / headline.pooled.as_secs_f64();

    // Measured parallel-scaling fraction on the headline shape, fed
    // through the cp-perf calibration hook: how the modeled Llama3-405B
    // 128K-token prefill shifts if GEMMs only achieve this host's
    // measured fraction instead of the paper's back-solved 75%.
    let serial_gf = gflops(headline.m, headline.k, headline.n, headline.tiled);
    let pooled_gf = gflops(headline.m, headline.k, headline.n, headline.pooled);
    let scaling_fraction = (pooled_gf / (serial_gf * threads as f64)).clamp(0.0, 1.0);
    let gtt = HardwareSpec::gtt();
    let recal = gtt.clone().with_measured_gemm_efficiency(scaling_fraction);
    let spec = ModelSpec::llama3_405b();
    let t_model = 131_072;
    let prefill_paper_s = cp_full_prefill_s(&spec, &gtt, 2, t_model);
    let prefill_recal_s = cp_full_prefill_s(&spec, &recal, 2, t_model);

    // End-to-end CP2 serving A/B: naive reference GEMMs on a pool of 1
    // (the seed engine's behaviour) vs packed tiled GEMMs on the default
    // per-rank pool (this PR's hot path). Outputs are bit-identical; only
    // wall time may differ.
    let cfg = TransformerConfig {
        shape: GqaShape::new(8, 2, 64).expect("valid GQA shape"),
        n_layers: if smoke { 2 } else { 4 },
        ffn_dim: 2048,
        vocab: 512,
        rope_base: 10_000.0,
        norm_eps: 1e-5,
    };
    let model = Transformer::new(&cfg, 7);
    let prompt: Vec<u32> = (0..if smoke { 96 } else { 384 })
        .map(|i| i % cfg.vocab as u32)
        .collect();
    let decodes = if smoke { 2 } else { 8 };
    let mut serial = (Duration::MAX, Duration::MAX);
    let mut pooled = (Duration::MAX, Duration::MAX);
    for _ in 0..reps {
        let s = serve_trace(&model, 2, 1, true, &prompt, decodes);
        serial = (serial.0.min(s.0), serial.1.min(s.1));
        let p = serve_trace(&model, 2, 0, false, &prompt, decodes);
        pooled = (pooled.0.min(p.0), pooled.1.min(p.1));
    }
    let prefill_speedup = serial.0.as_secs_f64() / pooled.0.as_secs_f64();
    let decode_speedup = serial.1.as_secs_f64() / pooled.1.as_secs_f64();

    let kernel_rows: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::json!({
                "m": r.m, "k": r.k, "n": r.n,
                "naive_ms": r.naive.as_secs_f64() * 1e3,
                "tiled_ms": r.tiled.as_secs_f64() * 1e3,
                "tiled_pool_ms": r.pooled.as_secs_f64() * 1e3,
                "tiled_speedup": r.naive.as_secs_f64() / r.tiled.as_secs_f64(),
                "tiled_pool_speedup": r.naive.as_secs_f64() / r.pooled.as_secs_f64(),
                "tiled_pool_gflops": gflops(r.m, r.k, r.n, r.pooled),
            })
        })
        .collect();
    let json = serde_json::json!({
        "config": {
            "smoke": smoke,
            "reps": reps,
            "pool_threads": threads,
        },
        "kernels": kernel_rows,
        "headline": {
            "m": headline.m, "k": headline.k, "n": headline.n,
            "naive_ms": headline.naive.as_secs_f64() * 1e3,
            "tiled_pool_ms": headline.pooled.as_secs_f64() * 1e3,
            "speedup_vs_naive": headline_speedup,
        },
        "calibration": {
            "tiled_serial_gflops": serial_gf,
            "tiled_pool_gflops": pooled_gf,
            "measured_scaling_fraction": scaling_fraction,
            "gtt_gemm_tflops": gtt.gemm_tflops,
            "recalibrated_gemm_tflops": recal.gemm_tflops,
            "llama3_405b_128k_prefill_paper_s": prefill_paper_s,
            "llama3_405b_128k_prefill_recalibrated_s": prefill_recal_s,
        },
        "serve_ab": {
            "cp": 2,
            "prompt_tokens": prompt.len(),
            "decode_steps": decodes,
            "prefill_reference_ms": serial.0.as_secs_f64() * 1e3,
            "prefill_tiled_ms": pooled.0.as_secs_f64() * 1e3,
            "prefill_speedup": prefill_speedup,
            "decode_reference_ms": serial.1.as_secs_f64() * 1e3,
            "decode_tiled_ms": pooled.1.as_secs_f64() * 1e3,
            "decode_speedup": decode_speedup,
        },
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&json).expect("serialize report") + "\n",
    )
    .expect("write report");

    println!("gemm (pool threads = {threads}, reps = {reps}, smoke = {smoke})");
    for r in &results {
        println!(
            "  {}x{}x{}: naive {:.2} ms, tiled {:.2} ms, tiled+pool {:.2} ms ({:.1}x naive, {:.1} GF/s)",
            r.m,
            r.k,
            r.n,
            r.naive.as_secs_f64() * 1e3,
            r.tiled.as_secs_f64() * 1e3,
            r.pooled.as_secs_f64() * 1e3,
            r.naive.as_secs_f64() / r.pooled.as_secs_f64(),
            gflops(r.m, r.k, r.n, r.pooled),
        );
    }
    println!(
        "  calibration: scaling fraction {scaling_fraction:.2} -> modeled 128K prefill \
         {prefill_paper_s:.1} s (paper) vs {prefill_recal_s:.1} s (recalibrated)"
    );
    println!(
        "  serve CP2: prefill {:.1} ms -> {:.1} ms ({prefill_speedup:.2}x), decode {:.1} ms -> \
         {:.1} ms ({decode_speedup:.2}x)",
        serial.0.as_secs_f64() * 1e3,
        pooled.0.as_secs_f64() * 1e3,
        serial.1.as_secs_f64() * 1e3,
        pooled.1.as_secs_f64() * 1e3,
    );
    println!("  wrote {out_path}");

    // Fail loudly if the headline claims regress (skipped in --smoke runs,
    // where timings are too short to be stable on shared CI hosts).
    if !smoke {
        assert!(
            headline_speedup >= 3.0,
            "tiled+pool must be >=3x naive on {}x{}x{}, got {headline_speedup:.2}x",
            headline.m,
            headline.k,
            headline.n,
        );
        assert!(
            prefill_speedup > 1.05,
            "pooled serving prefill must beat the serial path, got {prefill_speedup:.2}x"
        );
    }
}
