//! `perf_ratchet` — CI guard comparing a fresh bench report against the
//! committed baseline.
//!
//! ```bash
//! cargo run --release -p cp-bench --bin perf_ratchet -- \
//!     --fresh BENCH_decode_steady.fresh.json \
//!     --baseline BENCH_decode_steady.json
//! ```
//!
//! Reads `headline.tokens_per_s` from both JSON reports and exits
//! non-zero when the fresh number regresses by more than
//! `--max-regression` (default 0.15, i.e. 15%). Improvements and
//! in-tolerance noise pass; a baseline without the headline field fails
//! loudly so schema drift can't silently disable the ratchet.

use std::process::ExitCode;

fn headline_tokens_per_s(path: &str) -> Result<f64, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let json: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("parse {path}: {e}"))?;
    json.get("headline")
        .and_then(|h| h.get("tokens_per_s"))
        .and_then(serde_json::Value::as_f64)
        .ok_or_else(|| format!("{path}: missing numeric headline.tokens_per_s"))
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fresh_path = arg_value(&args, "--fresh").ok_or("usage: --fresh <file> required")?;
    let baseline_path =
        arg_value(&args, "--baseline").ok_or("usage: --baseline <file> required")?;
    let max_regression: f64 = match arg_value(&args, "--max-regression") {
        Some(v) => v
            .parse()
            .map_err(|e| format!("--max-regression {v}: {e}"))?,
        None => 0.15,
    };
    if !(0.0..1.0).contains(&max_regression) {
        return Err(format!(
            "--max-regression must be in [0, 1), got {max_regression}"
        ));
    }

    let fresh = headline_tokens_per_s(&fresh_path)?;
    let baseline = headline_tokens_per_s(&baseline_path)?;
    if !(fresh.is_finite() && baseline.is_finite()) || baseline <= 0.0 {
        return Err(format!(
            "non-positive or non-finite headline: fresh {fresh}, baseline {baseline}"
        ));
    }

    let ratio = fresh / baseline;
    let floor = 1.0 - max_regression;
    println!(
        "perf ratchet: fresh {fresh:.1} tok/s vs baseline {baseline:.1} tok/s \
         ({:+.1}%, floor {:.0}%)",
        100.0 * (ratio - 1.0),
        100.0 * floor,
    );
    if ratio < floor {
        return Err(format!(
            "decode throughput regressed {:.1}% (> {:.0}% allowed): \
             fresh {fresh:.1} tok/s vs baseline {baseline:.1} tok/s",
            100.0 * (1.0 - ratio),
            100.0 * max_regression,
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("perf ratchet FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
