//! `quant_path` — A/B harness for the total paged-KV quantization path,
//! emitting `BENCH_quant_path.json`.
//!
//! ```bash
//! cargo run --release -p cp-bench --bin quant_path            # full run
//! cargo run --release -p cp-bench --bin quant_path -- --smoke # CI smoke
//! ```
//!
//! Partial-prefill grid: total context `T` × CP degree × KV precision.
//! Each rank holds `T/CP` cached context tokens and projects a small
//! suffix of new queries; the pass-KV ring circulates the full shards,
//! so the per-hop wire payload is the measurement subject:
//!
//! * **f32** — the exact baseline: `2·l·n_kv·d·4` bytes per block.
//! * **int8_wire** — APB-style compressed hops: INT8 codes + one `f32`
//!   scale per `(token, head)`, `2·l·n_kv·(d+4)` bytes — `4d/(d+4)`×
//!   fewer (3.76× at this harness's `d = 64`). Storage stays f32.
//! * **int8_total** — same wire format, but the KV *pages* are INT8 too
//!   (the engine's `KvPrecision::Int8Total`), so the per-token storage
//!   footprint drops by the same ratio. Quantization is idempotent
//!   (max|code| = 127), so wire timing is shared with `int8_wire`; only
//!   the storage column differs.
//!
//! Correctness gates timing: each quantized cell's ring outputs are
//! compared against the f32 run and the max abs error must sit under the
//! documented tolerance **before** any wall clock is trusted. Timed runs
//! ride a bandwidth-calibrated link model (an f32 block costs ~2.5
//! compute phases on the wire) so the CP4 long-context cells are
//! genuinely comm-bound — where compressed hops must buy wall time.

use std::time::{Duration, Instant};

use cp_attention::{AttentionParams, GqaShape};
use cp_comm::{Fabric, LinkModel, TrafficReport, Wire};
use cp_core::ring::{ring_pass_kv_prefill_on, ring_pass_kv_prefill_quant_on};
use cp_core::schedule::RingLayout;
use cp_core::RingMsg;
use cp_core::{LocalSeq, QuantSeqKv, SeqKv};
use cp_tensor::{DetRng, Tensor};

/// Max abs error budget for INT8 symmetric per-(token, head) KV
/// quantization under this harness's inputs — the same bound the engine
/// and serving A/B tests pin.
const TOLERANCE: f32 = 0.05;

/// New query tokens per rank (the partial-prefill suffix).
const T_Q: usize = 64;

fn params() -> AttentionParams {
    AttentionParams::for_shape(GqaShape::new(4, 2, 64).expect("valid GQA shape"))
}

/// One causal sequence: `t_kv` context tokens per rank, with the last
/// `t_q` positions of each rank's shard as its new queries — a ragged
/// partial prefill over the full circulating context.
fn build_locals(world: usize, t_kv: usize, t_q: usize, seed: u64) -> Vec<Vec<LocalSeq>> {
    let p = params();
    let shape = p.shape;
    let mut rng = DetRng::new(seed);
    (0..world)
        .map(|r| {
            let kv_pos: Vec<usize> = (r * t_kv..(r + 1) * t_kv).collect();
            let q_pos: Vec<usize> = ((r + 1) * t_kv - t_q..(r + 1) * t_kv).collect();
            vec![LocalSeq {
                q: rng.tensor(&[t_q, shape.n_heads(), shape.head_dim()]),
                q_pos,
                k: rng.tensor(&[t_kv, shape.n_kv_heads(), shape.head_dim()]),
                v: rng.tensor(&[t_kv, shape.n_kv_heads(), shape.head_dim()]),
                kv_pos,
            }]
        })
        .collect()
}

fn pool_threads_per_rank(cp: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    (cores / cp).max(1)
}

/// Runs one pass-KV partial prefill (f32 or compressed hops), returning
/// the per-rank output tensors, wall time, and traffic report.
fn run_ring(
    cp: usize,
    locals: &[Vec<LocalSeq>],
    link: Option<LinkModel>,
    quant: bool,
) -> (Vec<Tensor>, Duration, TrafficReport) {
    let p = params();
    let mut fabric = Fabric::new(cp).compute_pool(pool_threads_per_rank(cp));
    if let Some(link) = link {
        fabric = fabric.link(link);
    }
    let start = Instant::now();
    let (outs, report) = fabric
        .run::<RingMsg, _, _>(|comm| {
            let mine = &locals[comm.rank()];
            let run = if quant {
                ring_pass_kv_prefill_quant_on
            } else {
                ring_pass_kv_prefill_on
            };
            run(comm, &p, mine, RingLayout::Flat).map_err(|e| cp_comm::CommError::RankFailed {
                rank: comm.rank(),
                kind: "bench",
                detail: e.to_string(),
            })
        })
        .expect("ring prefill failed");
    let wall = start.elapsed();
    let outs = outs
        .into_iter()
        .map(|mut rank_outs| rank_outs.pop().expect("one sequence per rank").out)
        .collect();
    (outs, wall, report)
}

/// Best-of-`reps` wall time with the fastest run's traffic report.
fn best_of(
    reps: usize,
    cp: usize,
    locals: &[Vec<LocalSeq>],
    link: Option<LinkModel>,
    quant: bool,
) -> (Duration, TrafficReport) {
    let mut best: Option<(Duration, TrafficReport)> = None;
    for _ in 0..reps {
        let (_, wall, report) = run_ring(cp, locals, link, quant);
        if best.as_ref().is_none_or(|(b, _)| wall < *b) {
            best = Some((wall, report));
        }
    }
    best.expect("reps >= 1")
}

/// Total KV storage bytes of the context at each precision, measured off
/// the payload types themselves (not a formula): f32 tensors vs the
/// quantized blocks' codes + scales.
fn storage_bytes(locals: &[Vec<LocalSeq>]) -> (usize, usize) {
    let mut f32_bytes = 0usize;
    let mut quant_bytes = 0usize;
    for ls in locals {
        for l in ls {
            f32_bytes += (l.k.numel() + l.v.numel()) * 4;
            let q = QuantSeqKv::quantize(&SeqKv {
                k: l.k.clone(),
                v: l.v.clone(),
                pos: l.kv_pos.clone(),
            })
            .expect("quantize");
            quant_bytes += q.k.storage_bytes() + q.v.storage_bytes();
        }
    }
    (f32_bytes, quant_bytes)
}

fn max_err(a: &[Tensor], b: &[Tensor]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| x.max_abs_diff(y).expect("same shape"))
        .fold(0.0, f32::max)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_quant_path.json".to_string());

    let totals: &[usize] = if smoke {
        &[1024, 4096]
    } else {
        &[8192, 65536, 262144]
    };
    let cps: &[usize] = &[1, 2, 4];
    let t_q = if smoke { 32 } else { T_Q };
    let reps = if smoke { 1 } else { 2 };
    let d = params().shape.head_dim();
    let expected_ratio = (4 * d) as f64 / (d + 4) as f64;

    let mut cells = Vec::new();
    let mut lines = Vec::new();
    let mut min_wire_ratio = f64::INFINITY;
    let mut headline_speedup = 0.0f64;
    for &total in totals {
        for &cp in cps {
            let t_kv = total / cp;
            let locals = build_locals(cp, t_kv, t_q, 42 + total as u64 + cp as u64);
            let (f32_storage, quant_storage) = storage_bytes(&locals);

            // Correctness gate + compute-phase calibration, link-free.
            let calib = Instant::now();
            let (f32_outs, _, _) = run_ring(cp, &locals, None, false);
            let calib_wall = calib.elapsed();
            let (quant_outs, _, _) = run_ring(cp, &locals, None, true);
            let err = max_err(&f32_outs, &quant_outs);
            assert!(
                err < TOLERANCE,
                "T={total} cp={cp}: quantized ring error {err} exceeds {TOLERANCE}"
            );

            // Bandwidth-calibrated link: one f32 block spends ~2.5 compute
            // phases on the wire, so multi-rank cells are comm-bound and
            // compressed hops have wall time to win.
            let phase_s = (calib_wall.as_secs_f64() / cp as f64).max(1e-9);
            let f32_block = RingMsg::Kv {
                seqs: locals[0]
                    .iter()
                    .map(|l| SeqKv {
                        k: l.k.clone(),
                        v: l.v.clone(),
                        pos: l.kv_pos.clone(),
                    })
                    .collect(),
            }
            .wire_bytes();
            let link = (cp > 1).then(|| LinkModel {
                latency: Duration::from_micros(1),
                gib_per_s: f32_block as f64 / (2.5 * phase_s) / (1u64 << 30) as f64,
            });

            let (f32_wall, f32_report) = best_of(reps, cp, &locals, link, false);
            let (quant_wall, quant_report) = best_of(reps, cp, &locals, link, true);

            let new_tokens = (t_q * cp) as f64;
            let f32_tok_s = new_tokens / f32_wall.as_secs_f64();
            let quant_tok_s = new_tokens / quant_wall.as_secs_f64();
            let wire_ratio = if quant_report.send_recv_bytes > 0 {
                f32_report.send_recv_bytes as f64 / quant_report.send_recv_bytes as f64
            } else {
                0.0
            };
            if cp > 1 {
                min_wire_ratio = min_wire_ratio.min(wire_ratio);
            }
            if cp == cps[cps.len() - 1] && total == totals[totals.len() - 1] {
                headline_speedup = quant_tok_s / f32_tok_s;
            }

            let mb = |b: usize| b as f64 / (1 << 20) as f64;
            lines.push(format!(
                "  T={total} cp={cp}: f32 {:.1} tok/s, int8 {:.1} tok/s ({:.2}x), wire {:.2} -> \
                 {:.2} MB ({wire_ratio:.2}x), storage {:.1} -> {:.1} MB, err {err:.4}",
                f32_tok_s,
                quant_tok_s,
                quant_tok_s / f32_tok_s,
                mb(f32_report.send_recv_bytes),
                mb(quant_report.send_recv_bytes),
                mb(f32_storage),
                mb(quant_storage),
            ));
            // int8_wire and int8_total share codes, wire bytes, and math
            // (quantization is idempotent); they differ only in what the
            // cache *stores*, so the storage column is the only split.
            cells.push(serde_json::json!({
                "total_tokens": total,
                "cp": cp,
                "new_tokens": t_q * cp,
                "max_abs_err": err,
                "precisions": [
                    {
                        "precision": "f32",
                        "wall_ms": f32_wall.as_secs_f64() * 1e3,
                        "tok_s": f32_tok_s,
                        "wire_mb": mb(f32_report.send_recv_bytes),
                        "kv_storage_mb": mb(f32_storage),
                        "kv_bytes_per_token": f32_storage as f64 / total as f64,
                    },
                    {
                        "precision": "int8_wire",
                        "wall_ms": quant_wall.as_secs_f64() * 1e3,
                        "tok_s": quant_tok_s,
                        "wire_mb": mb(quant_report.send_recv_bytes),
                        "kv_storage_mb": mb(f32_storage),
                        "kv_bytes_per_token": f32_storage as f64 / total as f64,
                    },
                    {
                        "precision": "int8_total",
                        "wall_ms": quant_wall.as_secs_f64() * 1e3,
                        "tok_s": quant_tok_s,
                        "wire_mb": mb(quant_report.send_recv_bytes),
                        "kv_storage_mb": mb(quant_storage),
                        "kv_bytes_per_token": quant_storage as f64 / total as f64,
                    },
                ],
                "wire_reduction_x": wire_ratio,
                "tok_s_speedup": quant_tok_s / f32_tok_s,
            }));
        }
    }

    let json = serde_json::json!({
        "config": {
            "head_dim": d,
            "n_kv_heads": params().shape.n_kv_heads(),
            "new_tokens_per_rank": t_q,
            "reps": reps,
            "smoke": smoke,
            "tolerance": TOLERANCE,
            "expected_wire_reduction_x": expected_ratio,
        },
        "cells": cells,
        "min_wire_reduction_x": min_wire_ratio,
        "headline_comm_bound_speedup": headline_speedup,
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&json).expect("serialize report") + "\n",
    )
    .expect("write report");

    println!("quant_path (d={d}, t_q/rank={t_q}, reps={reps})");
    for line in &lines {
        println!("{line}");
    }
    println!(
        "  headline: min wire reduction {min_wire_ratio:.2}x (format predicts \
         {expected_ratio:.2}x), comm-bound cp4 long-context speedup {headline_speedup:.2}x"
    );
    println!("  wrote {out_path}");

    // Fail loudly if the headline claims regress (skipped in --smoke runs,
    // where timings are too short to be stable on shared CI hosts).
    if !smoke {
        assert!(
            min_wire_ratio >= 3.0,
            "compressed hops must cut per-hop wire bytes >=3x, got {min_wire_ratio:.2}x"
        );
        assert!(
            headline_speedup > 1.0,
            "compressed hops must win wall time in the comm-bound cp4 long-context cell, \
             got {headline_speedup:.2}x"
        );
    }
}
