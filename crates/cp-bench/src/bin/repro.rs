//! `repro` — regenerates every table and figure of the paper's evaluation
//! from this reproduction's models and exact engine.
//!
//! ```bash
//! cargo run --release -p cp-bench --bin repro            # everything
//! cargo run --release -p cp-bench --bin repro table4     # one experiment
//! cargo run --release -p cp-bench --bin repro all --json out/   # + JSON dumps
//! ```
//!
//! Experiments: table2 table3 table4 table5 table6 table7 table8 table9
//! fig6a fig6b fig7 fig8 fig9 fig10 mfu capacity disaggregation approx
//! exactness all

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cp_attention::GqaShape;
use cp_core::baseline::single_device_prefill;
use cp_core::heuristics::{
    fit_empirical, selection_accuracy, HeuristicKind, SystemContext, PAPER_EMPIRICAL,
};
use cp_core::{ContextParallelEngine, EngineConfig, PrefillRequest};
use cp_kvcache::SeqId;
use cp_perf::{cost, decode, mfu, prefill, tp, HardwareSpec, ModelSpec, RingVariant};
use cp_tensor::DetRng;
use cp_workload::{context_sweep, heuristic_fit_grid, table4_grid};

fn model() -> ModelSpec {
    ModelSpec::llama3_405b()
}

/// Collects rows for both the console and optional JSON output.
#[derive(Default)]
struct Report {
    text: String,
    json: BTreeMap<String, serde_json::Value>,
}

impl Report {
    fn section(&mut self, title: &str) {
        let _ = writeln!(self.text, "\n=== {title} ===");
    }
    fn line(&mut self, s: &str) {
        let _ = writeln!(self.text, "{s}");
    }
    fn record(&mut self, key: &str, value: serde_json::Value) {
        self.json.insert(key.to_string(), value);
    }
}

fn table2(r: &mut Report) {
    r.section("Table 2: per-block communication and memory, TP vs CP");
    let m = model();
    let t = 128_000;
    let tp_bytes = cost::tp_comm_per_block_bytes(&m, t);
    let cp_bytes = cost::cp_comm_per_block_bytes(&m, t);
    r.line(&format!("context T = {t}, model = {}", m.name));
    r.line(&format!(
        "  TP per block (2 AllReduce): {:>10.1} MB   parameter share: W/N_TP",
        tp_bytes / 1e6
    ));
    r.line(&format!(
        "  CP per block (SendRecv)  : {:>10.1} MB   parameter share: W (replicated per node)",
        cp_bytes / 1e6
    ));
    r.line(&format!(
        "  ratio TP/CP = {:.0}x (paper: 2*N_H/N_KV = 32x for Llama3 405B)",
        tp_bytes / cp_bytes
    ));
    r.record(
        "table2",
        serde_json::json!({"tp_bytes": tp_bytes, "cp_bytes": cp_bytes, "ratio": tp_bytes/cp_bytes}),
    );
}

fn table3(r: &mut Report) {
    r.section("Table 3: GQA attention complexity, full vs partial prefill");
    let m = model();
    let (t, p) = (10_000usize, 118_000usize);
    r.line("                         full prefill        partial prefill");
    r.line(&format!(
        "  FLOPS (per layer)    {:>14.3e}      {:>14.3e}",
        cost::attn_flops_layer(&m, t + p, 0),
        cost::attn_flops_layer(&m, t, p)
    ));
    r.line(&format!(
        "  Q bytes              {:>14.3e}      {:>14.3e}",
        cost::q_bytes(&m, t + p),
        cost::q_bytes(&m, t)
    ));
    r.line(&format!(
        "  KV bytes             {:>14.3e}      {:>14.3e}",
        cost::kv_bytes(&m, t + p, 0),
        cost::kv_bytes(&m, t, p)
    ));
    r.line("  (partial prefill: Q shrinks with T while KV still covers P+T — Equation 1's origin)");
    r.record(
        "table3",
        serde_json::json!({
            "full": {"flops": cost::attn_flops_layer(&m, t+p, 0), "q_bytes": cost::q_bytes(&m, t+p), "kv_bytes": cost::kv_bytes(&m, t+p, 0)},
            "partial": {"flops": cost::attn_flops_layer(&m, t, p), "q_bytes": cost::q_bytes(&m, t), "kv_bytes": cost::kv_bytes(&m, t, p)},
        }),
    );
}

fn fig6(r: &mut Report, gti: bool) {
    let hw = if gti {
        HardwareSpec::gti()
    } else {
        HardwareSpec::gtt()
    };
    let nodes: &[usize] = if gti { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let name = if gti {
        "Figure 6b (GTI / TCP)"
    } else {
        "Figure 6a (GTT / RDMA)"
    };
    r.section(&format!("{name}: pass-KV full prefill latency"));
    let mut header = format!("{:>10} |", "tokens");
    for n in nodes {
        let _ = write!(header, "   CP{n:<4}");
    }
    r.line(&header);
    let mut rows = Vec::new();
    for t in context_sweep(2_000, 128_000) {
        let mut line = format!("{t:>10} |");
        let mut row = serde_json::Map::new();
        row.insert("tokens".into(), t.into());
        for &n in nodes {
            let s = prefill::cp_full_prefill_s(&model(), &hw, n, t);
            let _ = write!(line, " {s:>7.2}s");
            row.insert(format!("cp{n}_s"), serde_json::json!(s));
        }
        r.line(&line);
        rows.push(serde_json::Value::Object(row));
    }
    if !gti {
        r.line("  paper anchors: CP8 @128K = 5.85s");
    } else {
        r.line("  paper: same near-linear scaling to 4 nodes despite ~3 GB/s links");
    }
    r.record(
        if gti { "fig6b" } else { "fig6a" },
        serde_json::Value::Array(rows),
    );
}

fn fig7(r: &mut Report) {
    r.section("Figure 7: scaling ratio, CP vs multi-node TP (128K prefill, GTT)");
    let hw = HardwareSpec::gtt();
    let m = model();
    let cp1 = prefill::cp_full_prefill_s(&m, &hw, 1, 128_000);
    let tp1 = tp::tp_prefill(&m, &hw, 1, 128_000).total_s;
    r.line(&format!("{:>7} | {:>8} {:>8}", "nodes", "CP", "TP"));
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let cp = cp1 / prefill::cp_full_prefill_s(&m, &hw, n, 128_000);
        let tpr = tp1 / tp::tp_prefill(&m, &hw, n, 128_000).total_s;
        r.line(&format!("{n:>7} | {cp:>7.2}x {tpr:>7.2}x"));
        rows.push(serde_json::json!({"nodes": n, "cp_ratio": cp, "tp_ratio": tpr}));
    }
    r.line("  paper: CP near-linear; TP flattens (2x latency gap at 8 nodes)");
    r.record("fig7", serde_json::Value::Array(rows));
}

fn fig8(r: &mut Report) {
    r.section("Figure 8: TTFT for 128K-1M context, CP8 and CP16 (GTT)");
    let hw = HardwareSpec::gtt();
    r.line(&format!("{:>10} | {:>9} {:>9}", "tokens", "CP8", "CP16"));
    let mut rows = Vec::new();
    for t in context_sweep(128_000, 1_024_000) {
        let c8 = prefill::cp_full_prefill_s(&model(), &hw, 8, t);
        let c16 = prefill::cp_full_prefill_s(&model(), &hw, 16, t);
        r.line(&format!("{t:>10} | {c8:>8.1}s {c16:>8.1}s"));
        rows.push(serde_json::json!({"tokens": t, "cp8_s": c8, "cp16_s": c16}));
    }
    let s1m = prefill::cp_full_prefill_s(&model(), &hw, 16, 1_000_000);
    r.line(&format!(
        "  1M on CP16: {s1m:.0}s (paper: 77s); >=512K doubling context more than doubles TTFT"
    ));
    r.record("fig8", serde_json::Value::Array(rows));
}

fn table4_and_fig9(r: &mut Report) {
    r.section("Table 4 + Figure 9: pass-KV vs pass-Q TTFT by miss rate (CP4, T+P=128000)");
    let hw = HardwareSpec::gtt();
    // Paper's measured TTFT (ms) for reference.
    let paper: &[(f64, f64, f64)] = &[
        (1.00, 1023.39, 898.71),
        (2.50, 1110.18, 1046.43),
        (3.25, 1298.92, 1280.1),
        (5.00, 1305.56, 1302.01),
        (10.00, 2080.67, 2205.27),
        (20.00, 3353.02, 3617.02),
        (30.00, 4629.23, 4922.52),
        (40.00, 5745.08, 6217.83),
        (50.00, 6845.21, 7367.99),
        (60.00, 7890.35, 8468.66),
        (70.00, 8697.27, 9666.62),
        (80.00, 10105.78, 10652.39),
        (90.00, 11136.4, 11571.62),
        (100.00, 11462.15, 12360.57),
    ];
    r.line(&format!(
        "{:>8} {:>8} {:>7} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7}",
        "P", "T", "miss%", "ours KV", "ours Q", "ratio", "paper KV", "paper Q", "ratio"
    ));
    let mut rows = Vec::new();
    for ((p, t), &(miss, pkv, pq)) in table4_grid(128_000).into_iter().zip(paper) {
        let kv = prefill::cp_prefill(&model(), &hw, 4, t, p, RingVariant::PassKv).ttft_ms();
        let q = prefill::cp_prefill(&model(), &hw, 4, t, p, RingVariant::PassQ).ttft_ms();
        r.line(&format!(
            "{p:>8} {t:>8} {miss:>7.2} | {kv:>8.0}ms {q:>8.0}ms {:>7.3} | {pkv:>8.0}ms {pq:>8.0}ms {:>7.3}",
            kv / q,
            pkv / pq
        ));
        rows.push(serde_json::json!({
            "p": p, "t": t, "miss_pct": miss,
            "ours_kv_ms": kv, "ours_q_ms": q,
            "paper_kv_ms": pkv, "paper_q_ms": pq,
        }));
    }
    r.line(
        "  shape: ratio > 1 (pass-Q wins) at low miss rates, crossover near 3-5%, pass-KV beyond",
    );
    r.record("table4_fig9", serde_json::Value::Array(rows));
}

fn table5(r: &mut Report) {
    r.section("Table 5: per-ring-iteration time breakdown (CP4, T+P=128000)");
    let hw = HardwareSpec::gtt();
    r.line(&format!(
        "{:>7} {:>9} | {:>9} {:>8} {:>8} | paper",
        "miss%", "variant", "SendRecv", "ATTN", "All2All"
    ));
    let paper = [
        (2.5, RingVariant::PassKv, "627 / 414 / -"),
        (2.5, RingVariant::PassQ, "166 / 414 / 424"),
        (10.0, RingVariant::PassKv, "631 / 1608 / -"),
        (10.0, RingVariant::PassQ, "544 / 1608 / 1023"),
    ];
    let mut rows = Vec::new();
    for (miss, variant, paper_str) in paper {
        let t = (128_000.0 * miss / 100.0) as usize;
        let p = 128_000 - t;
        let it = prefill::ring_iter_costs(&model(), &hw, 4, t, p, variant);
        r.line(&format!(
            "{miss:>7.1} {:>9} | {:>7.0}us {:>6.0}us {:>6.0}us | {paper_str}",
            variant.to_string(),
            it.sendrecv_us,
            it.attn_us,
            it.all2all_us
        ));
        rows.push(serde_json::json!({
            "miss_pct": miss, "variant": variant.to_string(),
            "sendrecv_us": it.sendrecv_us, "attn_us": it.attn_us, "all2all_us": it.all2all_us,
        }));
    }
    r.record("table5", serde_json::Value::Array(rows));
}

fn table6(r: &mut Report) {
    r.section("Table 6: TTFT / TTIT, TP8 vs CP2+TP8 (batch 1)");
    let hw = HardwareSpec::gtt();
    let m = model();
    let paper = [
        (8_000usize, 1740.0, 44.51, 999.0, 65.61),
        (32_000, 7658.0, 44.64, 4015.0, 65.66),
        (128_000, 42010.0, 46.26, 21042.0, 66.63),
    ];
    r.line(&format!(
        "{:>8} | {:>12} {:>10} | {:>12} {:>10} | paper (TP8 / CP2)",
        "context", "TP8 TTFT", "TTIT", "CP2 TTFT", "TTIT"
    ));
    let mut rows = Vec::new();
    for (ctx, p_tp_ttft, p_tp_ttit, p_cp_ttft, p_cp_ttit) in paper {
        let tp_ttft = tp::tp_prefill(&m, &hw, 1, ctx).ttft_ms();
        let tp_ttit = tp::tp_ttit_s(&m, &hw, 1, ctx, 1) * 1e3;
        let cp_ttft = prefill::cp_full_prefill_s(&m, &hw, 2, ctx) * 1e3;
        let cp_ttit = decode::cp_ttit_s(&m, &hw, 2, ctx, 1) * 1e3;
        r.line(&format!(
            "{ctx:>8} | {tp_ttft:>10.0}ms {tp_ttit:>8.1}ms | {cp_ttft:>10.0}ms {cp_ttit:>8.1}ms | {p_tp_ttft:.0}/{p_tp_ttit:.1} vs {p_cp_ttft:.0}/{p_cp_ttit:.1}"
        ));
        rows.push(serde_json::json!({
            "ctx": ctx,
            "tp8_ttft_ms": tp_ttft, "tp8_ttit_ms": tp_ttit,
            "cp2_ttft_ms": cp_ttft, "cp2_ttit_ms": cp_ttit,
        }));
    }
    r.record("table6", serde_json::Value::Array(rows));
}

fn table7(r: &mut Report) {
    r.section("Table 7: TTFT / TTIT across parallelizations (128K, batch 1)");
    let hw = HardwareSpec::gtt();
    let m = model();
    let mut rows = Vec::new();
    let configs: [(&str, bool, usize, f64, f64); 5] = [
        ("CP1+TP8", true, 1, 42010.0, 46.26),
        ("CP2+TP8", true, 2, 21042.0, 60.23),
        ("TP16", false, 2, 29917.0, 39.52),
        ("CP4+TP8", true, 4, 10950.0, 71.31),
        ("TP32", false, 4, 19841.0, 47.3),
    ];
    r.line(&format!(
        "{:>9} | {:>11} {:>9} | paper",
        "config", "TTFT", "TTIT"
    ));
    for (name, is_cp, n, p_ttft, p_ttit) in configs {
        let (ttft, ttit) = if is_cp {
            (
                prefill::cp_full_prefill_s(&m, &hw, n, 128_000) * 1e3,
                decode::cp_ttit_s(&m, &hw, n, 128_000, 1) * 1e3,
            )
        } else {
            (
                tp::tp_prefill(&m, &hw, n, 128_000).ttft_ms(),
                tp::tp_ttit_s(&m, &hw, n, 128_000, 1) * 1e3,
            )
        };
        r.line(&format!(
            "{name:>9} | {ttft:>9.0}ms {ttit:>7.1}ms | {p_ttft:.0} / {p_ttit}"
        ));
        rows.push(serde_json::json!({
            "config": name, "ttft_ms": ttft, "ttit_ms": ttit,
            "paper_ttft_ms": p_ttft, "paper_ttit_ms": p_ttit,
        }));
    }
    r.record("table7", serde_json::Value::Array(rows));
}

fn table8(r: &mut Report) {
    r.section("Table 8: decode attention scaling with CP hosts (in us)");
    let hw = HardwareSpec::gtt();
    let m = model();
    let mut rows = Vec::new();
    for (ctx, batch) in [(128_000usize, 1usize), (32_000, 4)] {
        r.line(&format!("  context {ctx}, batch {batch}:"));
        r.line(&format!(
            "{:>22} | {:>8} {:>8} {:>8}",
            "", "TP8", "CP2", "CP4"
        ));
        let b: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&n| decode::cp_decode_attn(&m, &hw, n, ctx, batch))
            .collect();
        let field = |f: fn(&decode::DecodeAttnBreakdown) -> f64| -> String {
            b.iter()
                .map(|x| format!("{:>8.1}", f(x)))
                .collect::<Vec<_>>()
                .join(" ")
        };
        r.line(&format!(
            "{:>22} | {}",
            "effective context",
            b.iter()
                .map(|x| format!("{:>8}", x.effective_ctx))
                .collect::<Vec<_>>()
                .join(" ")
        ));
        r.line(&format!(
            "{:>22} | {}",
            "individual attn op",
            field(|x| x.attn_op_us)
        ));
        r.line(&format!(
            "{:>22} | {}",
            "attn (whole ring loop)",
            field(|x| x.attn_loop_us)
        ));
        r.line(&format!(
            "{:>22} | {}",
            "SendRecv",
            field(|x| x.sendrecv_us)
        ));
        r.line(&format!("{:>22} | {}", "All2All", field(|x| x.all2all_us)));
        r.line(&format!(
            "{:>22} | {}",
            "whole pass-Q",
            field(|x| x.whole_us)
        ));
        for (n, x) in [1, 2, 4].iter().zip(&b) {
            rows.push(serde_json::json!({
                "ctx": ctx, "batch": batch, "nodes": n,
                "attn_op_us": x.attn_op_us, "attn_loop_us": x.attn_loop_us,
                "sendrecv_us": x.sendrecv_us, "all2all_us": x.all2all_us,
                "whole_us": x.whole_us,
            }));
        }
    }
    r.line("  paper anchors @128K/B1: TP8 38.9; CP2 attn 22.0 / SR 32.3 / A2A 81.1 / whole 157.7; CP4 whole 238.6");
    r.record("table8", serde_json::Value::Array(rows));
}

fn table9(r: &mut Report) {
    r.section("Table 9: Llama3 405B configuration");
    let m = model();
    r.line(&format!("  layers              {:>8}", m.n_layers));
    r.line(&format!("  model dim (D)       {:>8}", m.model_dim));
    r.line(&format!("  FFN dim             {:>8}", m.ffn_dim));
    r.line(&format!("  attention heads     {:>8}", m.n_heads));
    r.line(&format!("  KV heads            {:>8}", m.n_kv_heads));
    r.line(&format!("  parameters          {:>8.0e}", m.params));
    r.record("table9", serde_json::to_value(&m).unwrap());
}

fn fig10(r: &mut Report) {
    r.section("Figure 10 + Appendix D: empirical heuristic fit");
    let ctx = SystemContext::llama3_405b_gtt(4);
    let grid = heuristic_fit_grid(
        &(7..18).map(|l| 1usize << l).collect::<Vec<_>>(),
        &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128],
        1 << 20,
    );
    let (alpha, beta, gamma) = fit_empirical(&ctx, &grid);
    let fitted = HeuristicKind::Empirical { alpha, beta, gamma };
    r.line(&format!(
        "  refit on this system: h = {alpha:.3}*ln(T) + {beta:.3}*ln(miss) + {gamma:.3}"
    ));
    r.line("  paper's testbed fit:  h = -1.059*ln(T) + 1.145*ln(miss) + 12.112");
    for (name, kind) in [
        ("Algorithm 1", HeuristicKind::Threshold),
        ("Algorithm 5", HeuristicKind::All2AllAware),
        ("empirical (refit)", fitted),
        ("empirical (paper constants)", PAPER_EMPIRICAL),
    ] {
        r.line(&format!(
            "  accuracy vs oracle: {name:<28} {:>5.1}%",
            100.0 * selection_accuracy(kind, &ctx, &grid)
        ));
    }
    r.line("  (paper: misclassified points are those with <1% difference between strategies)");
    r.record(
        "fig10",
        serde_json::json!({"alpha": alpha, "beta": beta, "gamma": gamma, "grid_points": grid.len()}),
    );
}

fn mfu_report(r: &mut Report) {
    r.section("Appendix A: MFU for 1M-token prefill on 128 GPUs");
    let hw = HardwareSpec::gtt();
    let s = prefill::cp_full_prefill_s(&model(), &hw, 16, 1_000_000);
    let rep = mfu::mfu_report(&model(), &hw, 1_000_000, 128, s);
    r.line(&format!("  predicted TTFT: {s:.1}s (paper: 77s)"));
    r.line(&format!(
        "  GEMM {:.2e} + ATTN {:.2e} = {:.2e} FLOPs (paper: 8.1e17 + 4.1e18 = 4.9e18)",
        rep.gemm_flops, rep.attn_flops, rep.total_flops
    ));
    r.line(&format!(
        "  achieved {:.0} TF/s/GPU, {:.0}% parallel efficiency, {:.0}% MFU (paper: 502, 93%, ~63%)",
        rep.achieved_tflops_per_gpu,
        rep.parallelization_efficiency * 100.0,
        rep.mfu * 100.0
    ));
    r.record("mfu", serde_json::to_value(&rep).unwrap());
}

fn capacity(r: &mut Report) {
    r.section("KV-cache capacity scaling (the paper's distribution motivation)");
    let hw = HardwareSpec::gtt();
    let b = cp_perf::memory::memory_budget(&model(), &hw, 1);
    r.line(&format!(
        "  per GPU: {:.1} GB weights, {:.1} GB KV budget, {:.1} KB/token",
        b.weights_per_gpu / 1e9,
        b.kv_budget_per_gpu / 1e9,
        b.kv_per_token_per_gpu / 1e3
    ));
    r.line(&format!(
        "{:>7} | {:>14} {:>14}",
        "nodes", "max ctx B=1", "max ctx B=4"
    ));
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8, 16] {
        let c1 = cp_perf::memory::max_context(&model(), &hw, n, 1);
        let c4 = cp_perf::memory::max_context(&model(), &hw, n, 4);
        r.line(&format!("{n:>7} | {c1:>14} {c4:>14}"));
        rows.push(serde_json::json!({"nodes": n, "max_ctx_b1": c1, "max_ctx_b4": c4}));
    }
    r.line(&format!(
        "  1M context needs >= {} nodes by memory alone (8-16 used for latency)",
        cp_perf::memory::min_nodes_for(&model(), &hw, 1_000_000, 1)
    ));
    r.record("capacity", serde_json::Value::Array(rows));
}

fn disaggregation(r: &mut Report) {
    r.section("Co-located vs disaggregated serving (§4.3's conclusion, quantified)");
    use cp_perf::serve::{simulate, uniform_trace, Deployment};
    let hw = HardwareSpec::gtt();
    let trace = uniform_trace(8, 5.0, 64_000, 800);
    let colo = simulate(&model(), &hw, Deployment::Colocated { n_nodes: 4 }, &trace);
    let disagg = simulate(
        &model(),
        &hw,
        Deployment::Disaggregated {
            prefill_nodes: 4,
            decode_replicas: 4,
        },
        &trace,
    );
    r.line("  trace: 8 requests of 64K prompt + 800 decode tokens, 5 s apart");
    for (name, rep) in [
        ("co-located CP4", &colo),
        ("disaggregated CP4+4xTP8", &disagg),
    ] {
        r.line(&format!(
            "  {name:<26} mean TTFT {:>7.1}s | max TTFT {:>7.1}s | TTIT {:>5.1}ms | makespan {:>6.1}s",
            rep.mean_ttft_s,
            rep.max_ttft_s,
            rep.mean_ttit_s * 1e3,
            rep.makespan_s
        ));
    }
    r.record(
        "disaggregation",
        serde_json::json!({"colocated": colo, "disaggregated": disagg}),
    );
}

fn approx(r: &mut Report) {
    r.section("Beyond exact attention: window / sink approximations vs exact CP (conclusion)");
    use cp_attention::{approx_gqa_attention, naive_gqa_attention, ApproxPolicy, AttentionParams};
    let shape = GqaShape::new(8, 2, 16).expect("valid shape");
    let params = AttentionParams::for_shape(shape);
    let mut rng = DetRng::new(17);
    let t = 256;
    let q = rng.tensor(&[t, 8, 16]);
    let k = rng.tensor(&[t, 2, 16]);
    let v = rng.tensor(&[t, 2, 16]);
    let pos: Vec<usize> = (0..t).collect();
    let exact = naive_gqa_attention(&q, &k, &v, &params, &pos, &pos).expect("exact");
    r.line(&format!(
        "{:>26} | {:>10} {:>12}",
        "policy", "max |err|", "kv visited"
    ));
    let exact_pairs: usize = (0..t).map(|p| p + 1).sum();
    let mut rows = Vec::new();
    for (name, policy) in [
        ("window 128", ApproxPolicy::Window { window: 128 }),
        ("window 32", ApproxPolicy::Window { window: 32 }),
        ("window 8", ApproxPolicy::Window { window: 8 }),
        (
            "sink 4 + window 32",
            ApproxPolicy::SinkWindow {
                sinks: 4,
                window: 32,
            },
        ),
        (
            "sink 4 + window 8",
            ApproxPolicy::SinkWindow {
                sinks: 4,
                window: 8,
            },
        ),
    ] {
        let a = approx_gqa_attention(&q, &k, &v, &params, &pos, &pos, policy).expect("approx");
        let err = exact.out.max_abs_diff(&a.out).expect("same shape");
        let visited: usize = (0..t).map(|p| policy.visible_count(p)).sum();
        let frac = visited as f64 / exact_pairs as f64;
        r.line(&format!("{name:>26} | {err:>10.4} {:>11.1}%", frac * 100.0));
        rows.push(serde_json::json!({"policy": name, "max_err": err, "kv_visited_frac": frac}));
    }
    r.line("  (exact CP keeps err = 0 at 100% cost; approximations trade error for compute —");
    r.line("   the paper's conclusion: combine CP with approximate retrieval beyond 1M tokens)");
    r.record("approx", serde_json::Value::Array(rows));
}

fn sharding(r: &mut Report) {
    r.section("Sharding strategies: 2N-chunk vs striped vs naive (§3.5.1 ablation)");
    use cp_perf::event::{attn_matrix_from_profile, simulate_ring};
    use cp_sharding::{naive_contiguous_positions, ShardPlan, StripedPlan};
    let (t, n) = (128_000usize, 8usize);
    let iter =
        prefill::ring_iter_costs(&model(), &HardwareSpec::gtt(), n, t, 0, RingVariant::PassKv);
    let chunked = ShardPlan::new(t, n).expect("valid plan");
    let striped = StripedPlan::new(t, n, 1).expect("valid plan");
    let profiles: Vec<(&str, Vec<u128>, usize)> = vec![
        (
            "2N-chunk (paper)",
            (0..n).map(|r| chunked.causal_pairs_for(r)).collect(),
            2,
        ),
        (
            "striped (Brandon et al.)",
            (0..n).map(|r| striped.causal_pairs_for(r)).collect(),
            striped.fragments_for(0),
        ),
        (
            "naive contiguous",
            (0..n)
                .map(|r| {
                    naive_contiguous_positions(t, n, r)
                        .iter()
                        .map(|&p| (p + 1) as u128)
                        .sum()
                })
                .collect(),
            1,
        ),
    ];
    r.line(&format!(
        "{:>26} | {:>10} {:>12} {:>10}",
        "strategy", "imbalance", "ring slowdn", "fragments"
    ));
    let mut rows = Vec::new();
    let mut baseline = 0.0;
    for (i, (name, work, fragments)) in profiles.iter().enumerate() {
        let max = *work.iter().max().expect("nonempty") as f64;
        let mean = work.iter().map(|&w| w as f64).sum::<f64>() / n as f64;
        let m = attn_matrix_from_profile(work, iter.attn_us);
        let makespan = simulate_ring(&m, iter.sendrecv_us).makespan_us;
        if i == 0 {
            baseline = makespan;
        }
        r.line(&format!(
            "{name:>26} | {:>9.3}x {:>11.2}x {:>10}",
            max / mean,
            makespan / baseline,
            fragments
        ));
        rows.push(serde_json::json!({
            "strategy": name, "imbalance": max / mean,
            "ring_slowdown": makespan / baseline, "fragments": fragments,
        }));
    }
    r.line("  (2N-chunk: balanced AND 2 contiguous runs per rank; striped balances but");
    r.line("   fragments positions; naive contiguous pays ~1.9x ring slowdown at CP8)");
    r.record("sharding", serde_json::Value::Array(rows));
}

fn fullstack(r: &mut Report) {
    r.section("Full-model serving exactness (multi-layer, multi-turn, distributed KV)");
    use cp_model::{Transformer, TransformerConfig};
    use cp_serve::{ReferenceSession, TransformerEngine};
    let m = Transformer::new(&TransformerConfig::small(), 2025);
    let trace: Vec<Vec<u32>> = vec![
        (0..64).collect(), // document prefill
        vec![500],         // decode
        vec![501],         // decode
        vec![7, 8, 9],     // follow-up prefill
        vec![502],         // decode
    ];
    let mut worst = 0.0f32;
    for n in [1usize, 2, 4] {
        let mut reference = ReferenceSession::new(m.clone());
        let mut engine = TransformerEngine::new(m.clone(), n).expect("engine");
        for (i, chunk) in trace.iter().enumerate() {
            let out = if chunk.len() == 1 && i > 0 {
                engine.decode(chunk[0]).expect("decode")
            } else {
                engine.prefill(chunk).expect("prefill")
            };
            let expected = reference.process(chunk).expect("reference");
            worst = worst.max(out.activations.max_abs_diff(&expected).expect("same shape"));
        }
    }
    r.line(&format!(
        "  4-layer transformer, 5-step multi-turn trace, CP1/CP2/CP4: max |err| = {worst:.2e}"
    ));
    r.line("  (full layer stack + persistent per-layer distributed caches + rotating decode)");
    r.record("fullstack", serde_json::json!({"worst_abs_err": worst}));
}

fn trace(r: &mut Report) {
    r.section("Ring-pipeline traces (chrome://tracing JSON, Table 5 configs)");
    use cp_perf::trace::trace_ring;
    let hw = HardwareSpec::gtt();
    let n = 4;
    let mut rows = Vec::new();
    for (label, t) in [
        ("miss2.5pct_passkv", 3_200usize),
        ("miss10pct_passkv", 12_800),
    ] {
        let p = 128_000 - t;
        let it = prefill::ring_iter_costs(&model(), &hw, n, t, p, RingVariant::PassKv);
        let matrix = vec![vec![it.attn_us; n]; n];
        let tr = trace_ring(&matrix, it.sendrecv_us);
        let path = format!("ring_trace_{label}.json");
        std::fs::write(&path, tr.to_chrome_json()).expect("write trace");
        let exposed = tr.exposed_us(0);
        r.line(&format!(
            "  {label:<22} makespan {:>7.0}us | exposed comm {:>6.0}us/rank | wrote {path}",
            tr.makespan_us, exposed
        ));
        rows.push(serde_json::json!({
            "label": label, "makespan_us": tr.makespan_us, "exposed_us": exposed,
        }));
    }
    r.line("  (open in chrome://tracing or Perfetto: at 2.5% miss the SendRecv lane");
    r.line("   outruns the compute lane — the exposed gap Table 5 quantifies; at 10%");
    r.line("   it hides completely)");

    // Measured trace: the same exporter fed from the thread fabric's
    // recorded timeline (per-collective wall time + time_compute spans) of
    // a real CP4 pass-KV prefill, instead of the cost model.
    {
        use cp_attention::{AttentionParams, PAD};
        use cp_core::ring::{ring_pass_kv_prefill, run_ring};
        use cp_core::trace::measured_ring_trace;
        use cp_core::LocalSeq;
        use cp_sharding::ShardPlan;

        let t = 2048;
        let shape = GqaShape::new(8, 2, 16).expect("valid shape");
        let params = AttentionParams::for_shape(shape);
        let mut rng = DetRng::new(2025);
        let q = rng.tensor(&[t, 8, 16]);
        let k = rng.tensor(&[t, 2, 16]);
        let v = rng.tensor(&[t, 2, 16]);
        let plan = ShardPlan::new(t, n).expect("plan");
        let max_len = (0..n).map(|rank| plan.tokens_for(rank)).max().unwrap();
        let locals: Vec<Vec<LocalSeq>> = (0..n)
            .map(|rank| {
                let positions = plan.positions_for(rank);
                let mut kv_pos = positions.clone();
                kv_pos.resize(max_len, PAD);
                vec![LocalSeq {
                    q: q.gather_dim0(&positions).expect("gather"),
                    q_pos: positions.clone(),
                    k: k.gather_dim0(&positions)
                        .expect("gather")
                        .pad_dim0(max_len, 0.0)
                        .expect("pad"),
                    v: v.gather_dim0(&positions)
                        .expect("gather")
                        .pad_dim0(max_len, 0.0)
                        .expect("pad"),
                    kv_pos,
                }]
            })
            .collect();
        let (_, report) = run_ring(n, |comm| {
            ring_pass_kv_prefill(comm, &params, &locals[comm.rank()])
        })
        .expect("measured prefill");
        let tr = measured_ring_trace(&report);
        let path = "ring_trace_measured_passkv.json";
        std::fs::write(path, tr.to_chrome_json()).expect("write trace");
        r.line(&format!(
            "  measured_cp4_passkv    makespan {:>7.0}us | {} timeline events | wrote {path}",
            tr.makespan_us,
            tr.events.len()
        ));
        r.line("  (measured lanes: fabric collective wall time + attend/merge compute");
        r.line("   spans recorded by the communicator, same JSON schema as the model)");
        rows.push(serde_json::json!({
            "label": "measured_cp4_passkv",
            "makespan_us": tr.makespan_us,
            "events": tr.events.len(),
        }));
    }
    r.record("trace", serde_json::Value::Array(rows));
}

fn exactness(r: &mut Report) {
    r.section("Exactness: distributed engine vs single-device attention (losslessness)");
    let shape = GqaShape::new(8, 2, 16).expect("valid shape");
    let mut worst = 0.0f32;
    for n in [1usize, 2, 4] {
        let eng = ContextParallelEngine::new(EngineConfig::new(n, shape)).expect("engine");
        let mut rng = DetRng::new(7);
        let t = 192;
        let q = rng.tensor(&[t, 8, 16]);
        let k = rng.tensor(&[t, 2, 16]);
        let v = rng.tensor(&[t, 2, 16]);
        for variant in [RingVariant::PassKv, RingVariant::PassQ] {
            let mut e2 = ContextParallelEngine::new(EngineConfig::new(n, shape)).expect("engine");
            let out = e2
                .prefill_batch(
                    &[PrefillRequest {
                        seq: SeqId(0),
                        q: &q,
                        k: &k,
                        v: &v,
                    }],
                    Some(variant),
                )
                .expect("prefill")
                .remove(0);
            let pos: Vec<usize> = (0..t).collect();
            let reference =
                single_device_prefill(&q, &k, &v, eng.params(), &pos, &pos).expect("reference");
            let err = out
                .output
                .out
                .max_abs_diff(&reference.out)
                .expect("same shape");
            worst = worst.max(err);
            r.line(&format!("  CP{n} {variant}: max |err| = {err:.2e}"));
        }
        let _ = eng;
    }
    r.line(&format!(
        "  worst-case deviation: {worst:.2e} (f32 accumulation noise only)"
    ));
    r.record("exactness", serde_json::json!({"worst_abs_err": worst}));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_dir: Option<String> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_dir = it.next();
            if json_dir.is_none() {
                eprintln!("--json requires a directory argument");
                std::process::exit(2);
            }
        } else {
            experiments.push(a);
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = [
            "table2",
            "table3",
            "fig6a",
            "fig6b",
            "fig7",
            "fig8",
            "table4",
            "table5",
            "table6",
            "table7",
            "table8",
            "table9",
            "fig10",
            "mfu",
            "capacity",
            "disaggregation",
            "approx",
            "sharding",
            "fullstack",
            "trace",
            "exactness",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let mut r = Report::default();
    for e in &experiments {
        match e.as_str() {
            "table2" => table2(&mut r),
            "table3" => table3(&mut r),
            "fig6a" => fig6(&mut r, false),
            "fig6b" => fig6(&mut r, true),
            "fig7" => fig7(&mut r),
            "fig8" => fig8(&mut r),
            "table4" | "fig9" => table4_and_fig9(&mut r),
            "table5" => table5(&mut r),
            "table6" => table6(&mut r),
            "table7" => table7(&mut r),
            "table8" => table8(&mut r),
            "table9" => table9(&mut r),
            "fig10" => fig10(&mut r),
            "mfu" => mfu_report(&mut r),
            "capacity" => capacity(&mut r),
            "disaggregation" => disaggregation(&mut r),
            "approx" => approx(&mut r),
            "sharding" => sharding(&mut r),
            "fullstack" => fullstack(&mut r),
            "trace" => trace(&mut r),
            "exactness" => exactness(&mut r),
            other => {
                eprintln!("unknown experiment `{other}`; see --help in the source header");
                std::process::exit(2);
            }
        }
    }
    print!("{}", r.text);

    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json dir");
        for (key, value) in &r.json {
            let path = format!("{dir}/{key}.json");
            std::fs::write(&path, serde_json::to_string_pretty(value).unwrap())
                .expect("write json");
        }
        eprintln!("wrote {} JSON files to {dir}", r.json.len());
    }
}
