//! `ring_overlap` — A/B harness for communication/compute overlap on the
//! thread fabric, emitting `BENCH_ring_overlap.json`.
//!
//! ```bash
//! cargo run --release -p cp-bench --bin ring_overlap            # full run
//! cargo run --release -p cp-bench --bin ring_overlap -- --smoke # CI smoke
//! ```
//!
//! Three measurements:
//!
//! 1. **Blocking vs overlapped CP4 ring prefill** under a modeled link
//!    whose per-hop latency is calibrated to ~1.2× the measured *wall*
//!    time of one compute phase (all ranks attending concurrently), so
//!    comm is ≥ ~30% of a blocking hop on any host, including ones where
//!    the four rank threads contend for few cores. The blocking loop pays
//!    `C + d` per hop, the double-buffered loop `max(C, d)` — the paper's
//!    §3.3 overlap condition made measurable.
//! 2. **Overlap accounting**: the overlapped run must report a nonzero
//!    `overlapped_ns` on every intermediate hop, and the overlap ratio
//!    (hidden wire time / total SendRecv time) is recorded.
//! 3. **Persistent pool vs per-call scoped spawn**: the same fan-out
//!    executed on the per-rank [`ComputePool`] against a fresh
//!    `std::thread::scope` per call, the seed's behaviour.

use std::time::{Duration, Instant};

use cp_attention::{AttentionParams, GqaShape};
use cp_comm::{Fabric, LinkModel, TrafficReport};
use cp_core::ring::{ring_pass_kv_prefill, ring_pass_kv_prefill_blocking};
use cp_core::{LocalSeq, RingMsg};
use cp_pool::ComputePool;
use cp_tensor::DetRng;

const CP: usize = 4;

fn params() -> AttentionParams {
    AttentionParams::for_shape(GqaShape::new(8, 2, 16).expect("valid GQA shape"))
}

/// One causal sequence split across `CP` ranks, `t` tokens per rank.
fn build_locals(t: usize, seed: u64) -> Vec<Vec<LocalSeq>> {
    let p = params();
    let shape = p.shape;
    let mut rng = DetRng::new(seed);
    (0..CP)
        .map(|r| {
            let pos: Vec<usize> = (r * t..(r + 1) * t).collect();
            vec![LocalSeq {
                q: rng.tensor(&[t, shape.n_heads(), shape.head_dim()]),
                q_pos: pos.clone(),
                k: rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
                v: rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
                kv_pos: pos,
            }]
        })
        .collect()
}

fn pool_threads_per_rank() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    (cores / CP).max(1)
}

/// Runs one CP4 pass-KV prefill and returns (wall time, traffic report).
fn run_once(
    locals: &[Vec<LocalSeq>],
    link: Option<LinkModel>,
    overlapped: bool,
) -> (Duration, TrafficReport) {
    let p = params();
    let mut fabric = Fabric::new(CP).compute_pool(pool_threads_per_rank());
    if let Some(link) = link {
        fabric = fabric.link(link);
    }
    let start = Instant::now();
    let (_, report) = fabric
        .run::<RingMsg, _, _>(|comm| {
            let run = if overlapped {
                ring_pass_kv_prefill
            } else {
                ring_pass_kv_prefill_blocking
            };
            run(comm, &p, &locals[comm.rank()]).map_err(|e| cp_comm::CommError::RankFailed {
                rank: comm.rank(),
                kind: "bench",
                detail: e.to_string(),
            })
        })
        .expect("ring prefill failed");
    (start.elapsed(), report)
}

/// Best-of-`reps` wall time plus the report of the fastest run.
fn best_of(
    reps: usize,
    locals: &[Vec<LocalSeq>],
    link: Option<LinkModel>,
    overlapped: bool,
) -> (Duration, TrafficReport) {
    let mut best: Option<(Duration, TrafficReport)> = None;
    for _ in 0..reps {
        let sample = run_once(locals, link, overlapped);
        if best.as_ref().is_none_or(|(b, _)| sample.0 < *b) {
            best = Some(sample);
        }
    }
    best.expect("reps >= 1")
}

/// Fan-out micro-benchmark: `fanout` jobs of fixed spin work, `iters`
/// batches, on either the persistent pool or a fresh scope per batch.
fn fanout_bench(iters: usize, fanout: usize, use_pool: bool) -> Duration {
    let pool = ComputePool::global();
    let spin = || {
        let mut acc = 0.0f32;
        for i in 0..2_000 {
            acc += (i as f32).sqrt();
        }
        std::hint::black_box(acc);
    };
    let start = Instant::now();
    for _ in 0..iters {
        if use_pool {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..fanout)
                .map(|_| Box::new(spin) as Box<dyn FnOnce() + Send + '_>)
                .collect();
            pool.run(jobs);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..fanout {
                    scope.spawn(spin);
                }
            });
        }
    }
    start.elapsed()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_ring_overlap.json".to_string());

    let t_per_rank = if smoke { 256 } else { 1024 };
    let reps = if smoke { 2 } else { 5 };
    let locals = build_locals(t_per_rank, 42);

    // Calibrate against the *wall* time of one compute phase: the full
    // link-free ring divided by its CP compute phases. On a host with
    // fewer cores than ranks the rank threads contend, so wall per phase
    // is what a wire delay must hide under — per-rank kernel time would
    // undershoot and the sleep would look free.
    let (calib_wall, _) = best_of(reps, &locals, None, false);
    let hop_compute_ns = (calib_wall.as_nanos() as u64 / CP as u64).max(1);
    // Latency at 1.2x the compute phase: comm is ~55% of a blocking hop
    // (above the >=30% operating point), and the double-buffered loop can
    // hide all but ~0.2x of it.
    let link = LinkModel::latency_only(Duration::from_nanos(hop_compute_ns * 12 / 10));

    let (blocking_wall, blocking_report) = best_of(reps, &locals, Some(link), false);
    let (overlapped_wall, overlapped_report) = best_of(reps, &locals, Some(link), true);

    let reduction_pct = 100.0 * (1.0 - overlapped_wall.as_secs_f64() / blocking_wall.as_secs_f64());
    let sendrecv_events: Vec<_> = overlapped_report
        .timeline
        .iter()
        .filter(|e| e.label == "send_recv")
        .collect();
    let hops_total = sendrecv_events.len();
    let hops_overlapped = sendrecv_events
        .iter()
        .filter(|e| e.overlapped_ns > 0)
        .count();
    let sendrecv_ns: u64 = sendrecv_events.iter().map(|e| e.dur_ns).sum();
    let overlap_ratio = if sendrecv_ns == 0 {
        0.0
    } else {
        overlapped_report.send_recv.overlapped_ns as f64 / sendrecv_ns as f64
    };

    // cp-perf reconciliation: the prefill model charges each intermediate
    // hop max(SendRecv, ATTN); with d < C that is C, so the modeled
    // overlapped/blocking ratio is n*C vs n*C + (n-1)*d.
    let d = link.latency.as_nanos() as f64;
    let c = hop_compute_ns as f64;
    let hops = (CP - 1) as f64;
    let model_blocking_ns = (CP as f64) * c + hops * d;
    let model_overlapped_ns = (CP as f64) * c + hops * (d - c).max(0.0);
    let model_reduction_pct = 100.0 * (1.0 - model_overlapped_ns / model_blocking_ns);

    let fanout = ComputePool::global().parallelism().max(2);
    let iters = if smoke { 100 } else { 1_000 };
    let pool_fanout = fanout_bench(iters, fanout, true);
    let scoped_fanout = fanout_bench(iters, fanout, false);
    let spawn_reduction_pct =
        100.0 * (1.0 - pool_fanout.as_secs_f64() / scoped_fanout.as_secs_f64());

    let json = serde_json::json!({
        "config": {
            "cp": CP,
            "tokens_per_rank": t_per_rank,
            "reps": reps,
            "smoke": smoke,
            "pool_threads_per_rank": pool_threads_per_rank(),
            "hop_compute_ns": hop_compute_ns,
            "link_latency_ns": link.latency.as_nanos() as u64,
        },
        "ring_prefill": {
            "blocking_ms": blocking_wall.as_secs_f64() * 1e3,
            "overlapped_ms": overlapped_wall.as_secs_f64() * 1e3,
            "reduction_pct": reduction_pct,
            "intermediate_hops": hops_total,
            "hops_with_nonzero_overlap": hops_overlapped,
            "overlap_ratio": overlap_ratio,
            "blocking_sendrecv_bytes": blocking_report.send_recv_bytes,
            "overlapped_sendrecv_bytes": overlapped_report.send_recv_bytes,
        },
        "perf_model": {
            "model_blocking_ns": model_blocking_ns,
            "model_overlapped_ns": model_overlapped_ns,
            "model_reduction_pct": model_reduction_pct,
        },
        "fanout": {
            "jobs_per_batch": fanout,
            "batches": iters,
            "pool_ms": pool_fanout.as_secs_f64() * 1e3,
            "scoped_spawn_ms": scoped_fanout.as_secs_f64() * 1e3,
            "spawn_overhead_reduction_pct": spawn_reduction_pct,
        },
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&json).expect("serialize report") + "\n",
    )
    .expect("write report");

    println!("ring_overlap (cp={CP}, t/rank={t_per_rank}, reps={reps})");
    println!(
        "  calibration: hop compute {:.2} ms, modeled link latency {:.2} ms",
        c / 1e6,
        d / 1e6
    );
    println!(
        "  ring prefill: blocking {:.2} ms, overlapped {:.2} ms ({reduction_pct:.1}% faster; \
         model predicts {model_reduction_pct:.1}%)",
        blocking_wall.as_secs_f64() * 1e3,
        overlapped_wall.as_secs_f64() * 1e3,
    );
    println!(
        "  overlap: {hops_overlapped}/{hops_total} hops with nonzero overlapped_ns, \
         ratio {overlap_ratio:.2}"
    );
    println!(
        "  fan-out x{iters}: pool {:.2} ms vs scoped spawn {:.2} ms ({spawn_reduction_pct:.1}% \
         less overhead)",
        pool_fanout.as_secs_f64() * 1e3,
        scoped_fanout.as_secs_f64() * 1e3,
    );
    println!("  wrote {out_path}");

    // Fail loudly if the headline claims regress (skipped in --smoke runs,
    // where timings are too short to be stable on shared CI hosts).
    if !smoke {
        assert_eq!(
            hops_overlapped, hops_total,
            "every intermediate hop must record overlap"
        );
        assert!(
            reduction_pct >= 25.0,
            "overlapped ring must be >=25% faster at this operating point, got {reduction_pct:.1}%"
        );
    }
}
