//! `ring_overlap` — A/B harness for communication/compute overlap on the
//! thread fabric, emitting `BENCH_ring_overlap.json`.
//!
//! ```bash
//! cargo run --release -p cp-bench --bin ring_overlap            # full run
//! cargo run --release -p cp-bench --bin ring_overlap -- --smoke # CI smoke
//! ```
//!
//! Three measurements:
//!
//! 1. **Blocking vs overlapped CP4 ring prefill** under a modeled link
//!    whose per-hop latency is calibrated to ~1.2× the measured *wall*
//!    time of one compute phase (all ranks attending concurrently), so
//!    comm is ≥ ~30% of a blocking hop on any host, including ones where
//!    the four rank threads contend for few cores. The blocking loop pays
//!    `C + d` per hop, the double-buffered loop `max(C, d)` — the paper's
//!    §3.3 overlap condition made measurable.
//! 2. **Overlap accounting**: the overlapped run must report a nonzero
//!    `overlapped_ns` on every intermediate hop, and the overlap ratio
//!    (hidden wire time / total SendRecv time) is recorded.
//! 3. **Persistent pool vs per-call scoped spawn**: the same fan-out
//!    executed on the per-rank [`ComputePool`] against a fresh
//!    `std::thread::scope` per call, the seed's behaviour.
//! 4. **Schedule-family matrix**: `{uni, bidi} × {flat, hier}` pass-KV
//!    prefill (plus the depth-2 chunked pipeline) at CP6 under three link
//!    regimes — latency-only, bandwidth-bound, and asymmetric two-node —
//!    cross-checked against the `cp-perf` analytic comm model's family
//!    ranking. The bidirectional ring halves per-link bytes per step, so
//!    in the bandwidth-bound regime its wall time must drop ≥25% below
//!    the overlapped unidirectional ring, and the model must predict the
//!    same ordering.

use std::time::{Duration, Instant};

use cp_attention::{AttentionParams, GqaShape};
use cp_comm::{Fabric, LinkModel, Topology, TrafficReport, Wire};
use cp_core::ring::{
    ring_pass_kv_prefill, ring_pass_kv_prefill_bidi, ring_pass_kv_prefill_blocking,
    ring_pass_kv_prefill_on,
};
use cp_core::schedule::RingLayout;
use cp_core::{LocalSeq, RingMsg, SeqKv};
use cp_perf::schedule::{ranked_families, ScheduleFamily, TopologySpec};
use cp_perf::{RingDirection, RingTopologyKind};
use cp_pool::ComputePool;
use cp_tensor::DetRng;

const CP: usize = 4;

/// CP degree of the schedule-family matrix: 2 nodes × 3 ranks, the
/// smallest world where the hierarchical bidirectional paths are
/// genuinely link-disjoint (2×2 degenerates to shared pairs).
const MATRIX_CP: usize = 6;
const MATRIX_NODES: usize = 2;

fn params() -> AttentionParams {
    AttentionParams::for_shape(GqaShape::new(8, 2, 16).expect("valid GQA shape"))
}

/// One causal sequence split across `world` ranks, `t` tokens per rank.
fn build_locals(world: usize, t: usize, seed: u64) -> Vec<Vec<LocalSeq>> {
    let p = params();
    let shape = p.shape;
    let mut rng = DetRng::new(seed);
    (0..world)
        .map(|r| {
            let pos: Vec<usize> = (r * t..(r + 1) * t).collect();
            vec![LocalSeq {
                q: rng.tensor(&[t, shape.n_heads(), shape.head_dim()]),
                q_pos: pos.clone(),
                k: rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
                v: rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
                kv_pos: pos,
            }]
        })
        .collect()
}

fn pool_threads_per_rank() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    (cores / CP).max(1)
}

/// Wire bytes of rank 0's full circulating KV block — the per-hop payload
/// the link models and the cp-perf comm model both price.
fn kv_block_bytes(locals: &[Vec<LocalSeq>]) -> usize {
    RingMsg::Kv {
        seqs: locals[0]
            .iter()
            .map(|l| SeqKv {
                k: l.k.clone(),
                v: l.v.clone(),
                pos: l.kv_pos.clone(),
            })
            .collect(),
    }
    .wire_bytes()
}

/// Runs one CP4 pass-KV prefill and returns (wall time, traffic report).
fn run_once(
    locals: &[Vec<LocalSeq>],
    link: Option<LinkModel>,
    overlapped: bool,
) -> (Duration, TrafficReport) {
    let p = params();
    let mut fabric = Fabric::new(CP).compute_pool(pool_threads_per_rank());
    if let Some(link) = link {
        fabric = fabric.link(link);
    }
    let start = Instant::now();
    let (_, report) = fabric
        .run::<RingMsg, _, _>(|comm| {
            let run = if overlapped {
                ring_pass_kv_prefill
            } else {
                ring_pass_kv_prefill_blocking
            };
            run(comm, &p, &locals[comm.rank()]).map_err(|e| cp_comm::CommError::RankFailed {
                rank: comm.rank(),
                kind: "bench",
                detail: e.to_string(),
            })
        })
        .expect("ring prefill failed");
    (start.elapsed(), report)
}

/// Best-of-`reps` wall time plus the report of the fastest run.
fn best_of(
    reps: usize,
    locals: &[Vec<LocalSeq>],
    link: Option<LinkModel>,
    overlapped: bool,
) -> (Duration, TrafficReport) {
    let mut best: Option<(Duration, TrafficReport)> = None;
    for _ in 0..reps {
        let sample = run_once(locals, link, overlapped);
        if best.as_ref().is_none_or(|(b, _)| sample.0 < *b) {
            best = Some(sample);
        }
    }
    best.expect("reps >= 1")
}

/// Fan-out micro-benchmark: `fanout` jobs of fixed spin work, `iters`
/// batches, on either the persistent pool or a fresh scope per batch.
fn fanout_bench(iters: usize, fanout: usize, use_pool: bool) -> Duration {
    let pool = ComputePool::global();
    let spin = || {
        let mut acc = 0.0f32;
        for i in 0..2_000 {
            acc += (i as f32).sqrt();
        }
        std::hint::black_box(acc);
    };
    let start = Instant::now();
    for _ in 0..iters {
        if use_pool {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..fanout)
                .map(|_| Box::new(spin) as Box<dyn FnOnce() + Send + '_>)
                .collect();
            pool.run(jobs);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..fanout {
                    scope.spawn(spin);
                }
            });
        }
    }
    start.elapsed()
}

/// One schedule family under benchmark: the four `{uni, bidi} ×
/// {flat, hier}` rings plus the depth-2 chunked pipeline A/B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MatrixFamily {
    UniFlat,
    BidiFlat,
    UniHier,
    BidiHier,
    Chunked,
}

impl MatrixFamily {
    const ALL: [MatrixFamily; 5] = [
        MatrixFamily::UniFlat,
        MatrixFamily::BidiFlat,
        MatrixFamily::UniHier,
        MatrixFamily::BidiHier,
        MatrixFamily::Chunked,
    ];

    fn name(self) -> &'static str {
        match self {
            MatrixFamily::UniFlat => "uni-flat",
            MatrixFamily::BidiFlat => "bidi-flat",
            MatrixFamily::UniHier => "uni-hier",
            MatrixFamily::BidiHier => "bidi-hier",
            MatrixFamily::Chunked => "uni-flat-depth2",
        }
    }

    /// The cp-perf model family this run instantiates (the chunked
    /// pipeline is a latency optimization of the uni-flat family).
    fn model_family(self) -> ScheduleFamily {
        let (direction, topology) = match self {
            MatrixFamily::UniFlat | MatrixFamily::Chunked => {
                (RingDirection::Uni, RingTopologyKind::Flat)
            }
            MatrixFamily::BidiFlat => (RingDirection::Bidi, RingTopologyKind::Flat),
            MatrixFamily::UniHier => (RingDirection::Uni, RingTopologyKind::Hierarchical),
            MatrixFamily::BidiHier => (RingDirection::Bidi, RingTopologyKind::Hierarchical),
        };
        ScheduleFamily {
            direction,
            topology,
        }
    }
}

/// Link regime applied to the whole fabric for one matrix column.
#[derive(Debug, Clone, Copy)]
enum MatrixLinks {
    Uniform(LinkModel),
    Asymmetric {
        topo: Topology,
        intra: LinkModel,
        cross: LinkModel,
    },
}

/// Runs one pass-KV prefill of `family` at `MATRIX_CP` under `links`,
/// returning the wall time of the fastest of `reps` runs.
fn run_matrix_family(
    reps: usize,
    locals: &[Vec<LocalSeq>],
    links: MatrixLinks,
    family: MatrixFamily,
) -> Duration {
    let p = params();
    let topo = Topology::new(MATRIX_NODES, MATRIX_CP / MATRIX_NODES);
    let mut best: Option<Duration> = None;
    for _ in 0..reps {
        let mut fabric = Fabric::new(MATRIX_CP).compute_pool(pool_threads_per_rank());
        fabric = match links {
            MatrixLinks::Uniform(link) => fabric.link(link),
            MatrixLinks::Asymmetric { topo, intra, cross } => fabric.topology(topo, intra, cross),
        };
        if family == MatrixFamily::Chunked {
            fabric = fabric.pipeline_depth(2);
        }
        let start = Instant::now();
        fabric
            .run::<RingMsg, _, _>(|comm| {
                let mine = &locals[comm.rank()];
                let layout = match family {
                    MatrixFamily::UniHier | MatrixFamily::BidiHier => RingLayout::Hier(topo),
                    _ => RingLayout::Flat,
                };
                match family {
                    MatrixFamily::UniFlat | MatrixFamily::UniHier => {
                        ring_pass_kv_prefill_on(comm, &p, mine, layout)
                    }
                    MatrixFamily::BidiFlat | MatrixFamily::BidiHier => {
                        ring_pass_kv_prefill_bidi(comm, &p, mine, layout)
                    }
                    // Depth-2 selected by the fabric's pipeline flag.
                    MatrixFamily::Chunked => ring_pass_kv_prefill(comm, &p, mine),
                }
                .map_err(|e| cp_comm::CommError::RankFailed {
                    rank: comm.rank(),
                    kind: "bench",
                    detail: e.to_string(),
                })
            })
            .expect("matrix prefill failed");
        let wall = start.elapsed();
        if best.is_none_or(|b| wall < b) {
            best = Some(wall);
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_ring_overlap.json".to_string());

    let t_per_rank = if smoke { 256 } else { 1024 };
    let reps = if smoke { 2 } else { 5 };
    let locals = build_locals(CP, t_per_rank, 42);

    // Calibrate against the *wall* time of one compute phase: the full
    // link-free ring divided by its CP compute phases. On a host with
    // fewer cores than ranks the rank threads contend, so wall per phase
    // is what a wire delay must hide under — per-rank kernel time would
    // undershoot and the sleep would look free.
    let (calib_wall, _) = best_of(reps, &locals, None, false);
    let hop_compute_ns = (calib_wall.as_nanos() as u64 / CP as u64).max(1);
    // Latency at 1.2x the compute phase: comm is ~55% of a blocking hop
    // (above the >=30% operating point), and the double-buffered loop can
    // hide all but ~0.2x of it.
    let link = LinkModel::latency_only(Duration::from_nanos(hop_compute_ns * 12 / 10));

    let (blocking_wall, blocking_report) = best_of(reps, &locals, Some(link), false);
    let (overlapped_wall, overlapped_report) = best_of(reps, &locals, Some(link), true);

    let reduction_pct = 100.0 * (1.0 - overlapped_wall.as_secs_f64() / blocking_wall.as_secs_f64());
    let sendrecv_events: Vec<_> = overlapped_report
        .timeline
        .iter()
        .filter(|e| e.label == "send_recv")
        .collect();
    let hops_total = sendrecv_events.len();
    let hops_overlapped = sendrecv_events
        .iter()
        .filter(|e| e.overlapped_ns > 0)
        .count();
    let sendrecv_ns: u64 = sendrecv_events.iter().map(|e| e.dur_ns).sum();
    let overlap_ratio = if sendrecv_ns == 0 {
        0.0
    } else {
        overlapped_report.send_recv.overlapped_ns as f64 / sendrecv_ns as f64
    };

    // cp-perf reconciliation: the prefill model charges each intermediate
    // hop max(SendRecv, ATTN); with d < C that is C, so the modeled
    // overlapped/blocking ratio is n*C vs n*C + (n-1)*d.
    let d = link.latency.as_nanos() as f64;
    let c = hop_compute_ns as f64;
    let hops = (CP - 1) as f64;
    let model_blocking_ns = (CP as f64) * c + hops * d;
    let model_overlapped_ns = (CP as f64) * c + hops * (d - c).max(0.0);
    let model_reduction_pct = 100.0 * (1.0 - model_overlapped_ns / model_blocking_ns);

    let fanout = ComputePool::global().parallelism().max(2);
    let iters = if smoke { 100 } else { 1_000 };
    let pool_fanout = fanout_bench(iters, fanout, true);
    let scoped_fanout = fanout_bench(iters, fanout, false);
    let spawn_reduction_pct =
        100.0 * (1.0 - pool_fanout.as_secs_f64() / scoped_fanout.as_secs_f64());

    // ---- Schedule-family matrix (measurement 4) ----
    // Smoke runs keep the full {uni, bidi} × {flat, hier} coverage (so CI
    // exercises at least one bidirectional and one hierarchical loop) at a
    // reduced token count and single rep.
    let m_t = if smoke { 96 } else { 384 };
    let m_reps = if smoke { 1 } else { 3 };
    let m_locals = build_locals(MATRIX_CP, m_t, 43);
    let payload_bytes = kv_block_bytes(&m_locals);
    let m_topo = Topology::new(MATRIX_NODES, MATRIX_CP / MATRIX_NODES);

    // Calibrate the matrix compute phase on delay-free links.
    let free = MatrixLinks::Uniform(LinkModel::latency_only(Duration::ZERO));
    let m_calib = run_matrix_family(m_reps, &m_locals, free, MatrixFamily::UniFlat);
    let m_phase_ns = (m_calib.as_nanos() as u64 / MATRIX_CP as u64).max(1);
    let phase_s = m_phase_ns as f64 * 1e-9;

    // Three link regimes. Wire times are calibrated against the measured
    // compute phase so every regime is genuinely link-bound on any host:
    // * latency-only — per-message launch cost dominates; halving bytes
    //   buys nothing, the flat unidirectional ring should hold its own;
    // * bandwidth-bound — a full KV block takes ~3 compute phases on the
    //   wire, so the bidirectional halves (link-disjoint at CP6) should
    //   cut comm wall time roughly in half;
    // * asymmetric — two nodes, cross-node links ~16x slower than
    //   intra-node: the hierarchical path takes 1 of its 5 hops
    //   cross-node while the flat ring crosses on every hop.
    let slow_bytes_per_s = payload_bytes as f64 / (3.0 * phase_s);
    let slow_gib = slow_bytes_per_s / (1u64 << 30) as f64;
    let fast_gib = slow_gib * 16.0;
    let lat_small = Duration::from_nanos(m_phase_ns / 20);
    let bandwidth_link = LinkModel {
        latency: lat_small,
        gib_per_s: slow_gib,
    };
    let intra_link = LinkModel {
        latency: Duration::from_nanos(m_phase_ns / 50),
        gib_per_s: fast_gib,
    };
    let to_gbs = |gib: f64| gib * (1u64 << 30) as f64 / 1e9;
    let lat_us = |d: Duration| d.as_secs_f64() * 1e6;
    let latency_link = LinkModel::latency_only(Duration::from_nanos(m_phase_ns * 12 / 10));
    let scenarios = [
        (
            "latency-only",
            MatrixLinks::Uniform(latency_link),
            TopologySpec::uniform(MATRIX_CP, 1e6, lat_us(latency_link.latency)),
        ),
        (
            "bandwidth-bound",
            MatrixLinks::Uniform(bandwidth_link),
            TopologySpec::uniform(MATRIX_CP, to_gbs(slow_gib), lat_us(lat_small)),
        ),
        (
            "asymmetric",
            MatrixLinks::Asymmetric {
                topo: m_topo,
                intra: intra_link,
                cross: bandwidth_link,
            },
            TopologySpec::new(
                MATRIX_NODES,
                MATRIX_CP / MATRIX_NODES,
                to_gbs(fast_gib),
                to_gbs(slow_gib),
                lat_us(lat_small),
            ),
        ),
    ];

    let mut matrix_json = Vec::new();
    let mut matrix_lines = Vec::new();
    let mut bandwidth_bidi_reduction = 0.0f64;
    let mut bandwidth_model_agrees = false;
    let mut asym_hier_reduction = 0.0f64;
    let mut asym_model_agrees = false;
    for (scenario, links, spec) in scenarios {
        let mut walls = Vec::new();
        for family in MatrixFamily::ALL {
            let wall = run_matrix_family(m_reps, &m_locals, links, family);
            walls.push((family, wall));
        }
        let wall_of = |f: MatrixFamily| {
            walls
                .iter()
                .find(|(g, _)| *g == f)
                .expect("family measured")
                .1
                .as_secs_f64()
        };
        let uni_flat_s = wall_of(MatrixFamily::UniFlat);
        let model = ranked_families(&spec, payload_bytes as f64);
        let model_names: Vec<&str> = model.iter().map(|(f, _)| f.name()).collect();
        let measured_best = walls
            .iter()
            .filter(|(f, _)| *f != MatrixFamily::Chunked)
            .min_by_key(|(_, w)| *w)
            .expect("nonempty")
            .0;
        match scenario {
            "bandwidth-bound" => {
                bandwidth_bidi_reduction =
                    100.0 * (1.0 - wall_of(MatrixFamily::BidiFlat) / uni_flat_s);
                // The model must put some bidirectional family ahead of
                // the unidirectional flat ring.
                let pos = |name: &str| model_names.iter().position(|n| *n == name);
                bandwidth_model_agrees = pos("bidi-flat") < pos("uni-flat");
            }
            "asymmetric" => {
                let best_hier = wall_of(MatrixFamily::UniHier).min(wall_of(MatrixFamily::BidiHier));
                asym_hier_reduction = 100.0 * (1.0 - best_hier / uni_flat_s);
                asym_model_agrees = model
                    .first()
                    .is_some_and(|(f, _)| f.topology == RingTopologyKind::Hierarchical);
            }
            _ => {}
        }
        matrix_lines.push(format!(
            "  matrix[{scenario}]: {} (model best {})",
            walls
                .iter()
                .map(|(f, w)| format!("{} {:.1} ms", f.name(), w.as_secs_f64() * 1e3))
                .collect::<Vec<_>>()
                .join(", "),
            model_names.first().copied().unwrap_or("-"),
        ));
        matrix_json.push(serde_json::json!({
            "scenario": scenario,
            "families": walls
                .iter()
                .map(|(f, w)| {
                    serde_json::json!({
                        "family": f.name(),
                        "model_family": f.model_family().name(),
                        "wall_ms": w.as_secs_f64() * 1e3,
                        "reduction_vs_uni_flat_pct":
                            100.0 * (1.0 - w.as_secs_f64() / uni_flat_s),
                    })
                })
                .collect::<Vec<_>>(),
            "measured_best": measured_best.name(),
            "model_ranking": model
                .iter()
                .map(|(f, s)| serde_json::json!({"family": f.name(), "comm_s": s}))
                .collect::<Vec<_>>(),
        }));
    }

    let json = serde_json::json!({
        "config": {
            "cp": CP,
            "tokens_per_rank": t_per_rank,
            "reps": reps,
            "smoke": smoke,
            "pool_threads_per_rank": pool_threads_per_rank(),
            "hop_compute_ns": hop_compute_ns,
            "link_latency_ns": link.latency.as_nanos() as u64,
        },
        "ring_prefill": {
            "blocking_ms": blocking_wall.as_secs_f64() * 1e3,
            "overlapped_ms": overlapped_wall.as_secs_f64() * 1e3,
            "reduction_pct": reduction_pct,
            "intermediate_hops": hops_total,
            "hops_with_nonzero_overlap": hops_overlapped,
            "overlap_ratio": overlap_ratio,
            "blocking_sendrecv_bytes": blocking_report.send_recv_bytes,
            "overlapped_sendrecv_bytes": overlapped_report.send_recv_bytes,
        },
        "perf_model": {
            "model_blocking_ns": model_blocking_ns,
            "model_overlapped_ns": model_overlapped_ns,
            "model_reduction_pct": model_reduction_pct,
        },
        "fanout": {
            "jobs_per_batch": fanout,
            "batches": iters,
            "pool_ms": pool_fanout.as_secs_f64() * 1e3,
            "scoped_spawn_ms": scoped_fanout.as_secs_f64() * 1e3,
            "spawn_overhead_reduction_pct": spawn_reduction_pct,
        },
        "schedule_matrix": {
            "config": {
                "cp": MATRIX_CP,
                "nodes": MATRIX_NODES,
                "tokens_per_rank": m_t,
                "reps": m_reps,
                "payload_bytes": payload_bytes,
                "phase_compute_ns": m_phase_ns,
            },
            "scenarios": matrix_json,
            "bandwidth_bidi_reduction_pct": bandwidth_bidi_reduction,
            "bandwidth_model_agrees": bandwidth_model_agrees,
            "asymmetric_hier_reduction_pct": asym_hier_reduction,
            "asymmetric_model_agrees": asym_model_agrees,
        },
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&json).expect("serialize report") + "\n",
    )
    .expect("write report");

    println!("ring_overlap (cp={CP}, t/rank={t_per_rank}, reps={reps})");
    println!(
        "  calibration: hop compute {:.2} ms, modeled link latency {:.2} ms",
        c / 1e6,
        d / 1e6
    );
    println!(
        "  ring prefill: blocking {:.2} ms, overlapped {:.2} ms ({reduction_pct:.1}% faster; \
         model predicts {model_reduction_pct:.1}%)",
        blocking_wall.as_secs_f64() * 1e3,
        overlapped_wall.as_secs_f64() * 1e3,
    );
    println!(
        "  overlap: {hops_overlapped}/{hops_total} hops with nonzero overlapped_ns, \
         ratio {overlap_ratio:.2}"
    );
    println!(
        "  fan-out x{iters}: pool {:.2} ms vs scoped spawn {:.2} ms ({spawn_reduction_pct:.1}% \
         less overhead)",
        pool_fanout.as_secs_f64() * 1e3,
        scoped_fanout.as_secs_f64() * 1e3,
    );
    for line in &matrix_lines {
        println!("{line}");
    }
    println!(
        "  matrix headline: bandwidth-bound bidi-flat {bandwidth_bidi_reduction:.1}% faster \
         (model agrees: {bandwidth_model_agrees}); asymmetric hier {asym_hier_reduction:.1}% \
         faster (model agrees: {asym_model_agrees})"
    );
    println!("  wrote {out_path}");

    // Fail loudly if the headline claims regress (skipped in --smoke runs,
    // where timings are too short to be stable on shared CI hosts).
    if !smoke {
        assert_eq!(
            hops_overlapped, hops_total,
            "every intermediate hop must record overlap"
        );
        assert!(
            reduction_pct >= 25.0,
            "overlapped ring must be >=25% faster at this operating point, got {reduction_pct:.1}%"
        );
        assert!(
            bandwidth_bidi_reduction >= 25.0,
            "bidirectional ring must cut comm wall time >=25% in the bandwidth-bound regime, \
             got {bandwidth_bidi_reduction:.1}%"
        );
        assert!(
            bandwidth_model_agrees,
            "cp-perf model must rank bidi-flat ahead of uni-flat in the bandwidth-bound regime"
        );
        assert!(
            asym_hier_reduction > 0.0,
            "hierarchical ring must beat the flat ring on asymmetric links, \
             got {asym_hier_reduction:.1}%"
        );
        assert!(
            asym_model_agrees,
            "cp-perf model must rank a hierarchical family first on asymmetric links"
        );
    }
}
