//! `serve_sched` — continuous-batching scheduler latency/throughput
//! bench, emitting `BENCH_serve_sched.json`.
//!
//! ```bash
//! cargo run --release -p cp-bench --bin serve_sched            # full run
//! cargo run --release -p cp-bench --bin serve_sched -- --smoke # CI smoke
//! ```
//!
//! Replays a Poisson-arrival multi-turn conversation trace
//! ([`cp_workload::timed_trace`]) through the serving scheduler at CP in
//! {1, 2, 4}: admission against arrival times, one fixed-size prefill
//! chunk per tick, one fused batched pass-Q decode per tick across every
//! live session. Reported per CP degree:
//!
//! * TTFT p50/p99 — ticks (deterministic, scheduling-policy domain) and
//!   wall-clock seconds;
//! * TBT p50/p99 — same two domains. Continuous batching with chunked
//!   prefill decodes every tick, so tick-domain TBT stays at 1 regardless
//!   of how long any prompt's prefill runs — the SLO story the full run
//!   asserts;
//! * generated tokens/s and per-rank tokens/s.
//!
//! Before timing, each CP degree's scheduler outputs are checked
//! **bitwise** against solo single-session replays of the same
//! conversations on a fresh engine — the batching/chunking machinery must
//! not perturb a single activation.

use std::time::Instant;

use cp_kvcache::SeqId;
use cp_model::{Transformer, TransformerConfig};
use cp_serve::{sched::quantile, SchedConfig, Scheduler, TransformerEngine};
use cp_tensor::Tensor;
use cp_workload::{timed_trace, trace_token, Conversation, ConversationPlan};

/// Model seed shared by every engine in the bench (same weights at every
/// CP degree and in the solo-replay checks).
const MODEL_SEED: u64 = 17;
/// Trace seed.
const TRACE_SEED: u64 = 42;

fn model() -> Transformer {
    Transformer::new(&TransformerConfig::tiny(), MODEL_SEED)
}

fn sched_config() -> SchedConfig {
    SchedConfig {
        prefill_chunk_tokens: 8,
        max_live_sessions: 8,
        time_units_per_tick: 1.0,
        vocab: 128,
    }
}

/// Serves one conversation alone on a fresh engine, returning its decode
/// activations — the bit-exactness oracle for the batched scheduler.
fn solo_replay(cp: usize, request: u64, c: &Conversation, vocab: u32) -> Vec<Tensor> {
    let mut engine = TransformerEngine::new(model(), cp).expect("engine");
    let seq = SeqId(7);
    engine.create_session(seq).expect("fresh session");
    let mut consumed = 0usize;
    let mut outputs = Vec::new();
    for turn in &c.turns {
        let prompt: Vec<u32> = (0..turn.prompt_tokens)
            .map(|j| trace_token(request, consumed + j, vocab))
            .collect();
        consumed += prompt.len();
        engine.prefill_session(seq, &prompt).expect("prefill");
        for _ in 0..turn.response_tokens {
            let tok = trace_token(request, consumed, vocab);
            consumed += 1;
            let mut out = engine.decode_batch(&[(seq, tok)]).expect("decode");
            outputs.push(out.activations.remove(0));
        }
    }
    outputs
}

/// Scheduler outputs at this CP degree must equal solo replays bitwise.
fn check_bit_identity(cp: usize) {
    let trace = timed_trace(TRACE_SEED + 1, 2, &ConversationPlan::short_chat(), 1.0);
    let config = sched_config();
    let vocab = config.vocab;
    let mut sched = Scheduler::new(TransformerEngine::new(model(), cp).expect("engine"), config);
    sched.submit_trace(&trace);
    sched.run_to_completion(10_000).expect("drain");
    assert_eq!(sched.outputs().len(), trace.len(), "lost a conversation");
    for (request, got) in sched.outputs() {
        let c = &trace[*request as usize].conversation;
        let want = solo_replay(cp, *request, c, vocab);
        assert_eq!(got.len(), want.len(), "request {request} token count");
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.as_slice(),
                w.as_slice(),
                "CP {cp} request {request} token {i}: batched != solo"
            );
        }
    }
}

struct CpResult {
    cp: usize,
    wall_s: f64,
    ticks: usize,
    row: serde_json::Value,
    ttft_p99_ticks: f64,
    tbt_p99_ticks: f64,
    tokens_per_s: f64,
}

fn bench_cp(cp: usize, requests: usize) -> CpResult {
    let config = sched_config();
    let trace = timed_trace(TRACE_SEED, requests, &ConversationPlan::short_chat(), 4.0);
    let mut sched = Scheduler::new(TransformerEngine::new(model(), cp).expect("engine"), config);
    sched.submit_trace(&trace);
    let t0 = Instant::now();
    let reports = sched.run_to_completion(1_000_000).expect("drain");
    let wall = t0.elapsed().as_secs_f64();

    let m = sched.metrics();
    assert_eq!(m.completed, requests, "CP {cp} dropped conversations");
    let total_tokens = m.decoded_tokens + m.prefilled_tokens;
    let q = |samples: &[f64], p: f64| quantile(samples, p).unwrap_or(0.0);
    let ticks_f: fn(&[u64]) -> Vec<f64> = |v| v.iter().map(|&t| t as f64).collect();
    let ttft_ticks = ticks_f(&m.ttft_ticks);
    let tbt_ticks = ticks_f(&m.tbt_ticks);
    let ttft_p99_ticks = q(&ttft_ticks, 0.99);
    let tbt_p99_ticks = q(&tbt_ticks, 0.99);
    let tokens_per_s = total_tokens as f64 / wall;

    let row = serde_json::json!({
        "cp": cp,
        "requests": requests,
        "ticks": reports.len(),
        "wall_s": wall,
        "decoded_tokens": m.decoded_tokens,
        "prefilled_tokens": m.prefilled_tokens,
        "evictions": m.evictions,
        "ttft_p50_ticks": q(&ttft_ticks, 0.50),
        "ttft_p99_ticks": ttft_p99_ticks,
        "tbt_p50_ticks": q(&tbt_ticks, 0.50),
        "tbt_p99_ticks": tbt_p99_ticks,
        "ttft_p50_s": q(&m.ttft_seconds, 0.50),
        "ttft_p99_s": q(&m.ttft_seconds, 0.99),
        "tbt_p50_s": q(&m.tbt_seconds, 0.50),
        "tbt_p99_s": q(&m.tbt_seconds, 0.99),
        "decode_tokens_per_s": m.decoded_tokens as f64 / wall,
        "tokens_per_s": tokens_per_s,
        "tokens_per_s_per_rank": tokens_per_s / cp as f64,
    });
    CpResult {
        cp,
        wall_s: wall,
        ticks: reports.len(),
        row,
        ttft_p99_ticks,
        tbt_p99_ticks,
        tokens_per_s,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve_sched.json".to_string());

    let cps: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let requests = if smoke { 3 } else { 12 };

    println!("serve_sched: checking batched-vs-solo bit identity ...");
    for &cp in cps {
        check_bit_identity(cp);
    }

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &cp in cps {
        let r = bench_cp(cp, requests);
        println!(
            "  CP={}: {} requests in {} ticks / {:.2}s, TTFT p99 {:.0} ticks, TBT p99 {:.0} \
             ticks, {:.0} tok/s ({:.0}/rank)",
            r.cp,
            requests,
            r.ticks,
            r.wall_s,
            r.ttft_p99_ticks,
            r.tbt_p99_ticks,
            r.tokens_per_s,
            r.tokens_per_s / r.cp as f64,
        );
        rows.push(r.row.clone());
        results.push(r);
    }

    let worst_tbt_p99 = results
        .iter()
        .map(|r| r.tbt_p99_ticks)
        .fold(0.0f64, f64::max);
    let config = sched_config();
    let json = serde_json::json!({
        "config": {
            "smoke": smoke,
            "requests": requests,
            "model": "tiny",
            "model_seed": MODEL_SEED,
            "trace_seed": TRACE_SEED,
            "plan": "short_chat",
            "mean_interarrival_ticks": 4.0,
            "prefill_chunk_tokens": config.prefill_chunk_tokens,
            "max_live_sessions": config.max_live_sessions,
            "vocab": config.vocab,
        },
        "grid": rows,
        "headline": {
            "bit_identical_to_solo": true,
            "worst_tbt_p99_ticks": worst_tbt_p99,
        },
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&json).expect("serialize report") + "\n",
    )
    .expect("write report");
    println!("serve_sched: wrote {out_path}");

    // The SLO acceptance claim: continuous batching with chunked prefill
    // keeps tick-domain p99 TBT at the batch cadence (1 tick) — a long
    // prompt's prefill never starves running decodes.
    assert!(
        worst_tbt_p99 <= 2.0,
        "p99 TBT {worst_tbt_p99} ticks: decode stalled behind prefill"
    );
}
