//! Benchmarks and the paper-reproduction harness (`repro` binary and Criterion benches).
