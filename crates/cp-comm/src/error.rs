//! Error type for the communication fabric.

use std::error::Error;
use std::fmt;

/// Error returned by fabric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommError {
    /// A destination or source rank index is outside the group.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Number of ranks in the group.
        world_size: usize,
    },
    /// Sending failed because the peer rank has exited (channel closed).
    SendFailed {
        /// Destination rank.
        dst: usize,
    },
    /// Receiving failed: the peer exited or the receive timed out.
    RecvFailed {
        /// Source rank.
        src: usize,
        /// Whether the failure was a timeout (vs a closed channel).
        timed_out: bool,
    },
    /// A rank thread panicked; its output is unavailable.
    RankPanicked {
        /// The rank whose closure panicked.
        rank: usize,
    },
    /// A rank's closure failed with a non-communication error (attention,
    /// tensor, protocol, …). The original error's kind and message are
    /// preserved so the failure is attributable through the fabric
    /// boundary instead of flattening to an opaque panic.
    RankFailed {
        /// The rank whose closure returned the error.
        rank: usize,
        /// Stable kind tag of the original error (e.g. `"protocol-violation"`).
        kind: &'static str,
        /// The original error's display message.
        detail: String,
    },
    /// Live traffic diverged from the rank's declared [`crate::CommPlan`]
    /// (checked-fabric mode): wrong op kind, peer, message variant or byte
    /// count, or a schedule that was not drained before the rank exited.
    PlanViolation {
        /// The rank whose live traffic diverged from its plan.
        rank: usize,
        /// Index of the declared op the divergence occurred at.
        step: usize,
        /// Human-readable description of the divergence.
        detail: String,
    },
    /// An internal fabric invariant was broken — a bug in the fabric
    /// itself, surfaced as a typed error instead of a panic.
    Internal {
        /// Description of the broken invariant.
        detail: String,
    },
    /// A group was requested with zero ranks.
    EmptyGroup,
    /// A collective was called with a payload list whose length does not
    /// equal the world size.
    WrongPayloadCount {
        /// Payloads supplied.
        got: usize,
        /// World size expected.
        expected: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankOutOfRange { rank, world_size } => {
                write!(f, "rank {rank} out of range for world size {world_size}")
            }
            CommError::SendFailed { dst } => write!(f, "send to rank {dst} failed: peer exited"),
            CommError::RecvFailed { src, timed_out } => {
                if *timed_out {
                    write!(f, "receive from rank {src} timed out")
                } else {
                    write!(f, "receive from rank {src} failed: peer exited")
                }
            }
            CommError::RankPanicked { rank } => write!(f, "rank {rank} panicked"),
            CommError::RankFailed { rank, kind, detail } => {
                write!(f, "rank {rank} failed ({kind}): {detail}")
            }
            CommError::PlanViolation { rank, step, detail } => {
                write!(f, "plan violation at rank {rank} step {step}: {detail}")
            }
            CommError::Internal { detail } => write!(f, "internal fabric error: {detail}"),
            CommError::EmptyGroup => write!(f, "communicator group must have at least one rank"),
            CommError::WrongPayloadCount { got, expected } => {
                write!(f, "collective needs {expected} payloads, got {got}")
            }
        }
    }
}

impl Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(CommError::SendFailed { dst: 3 }.to_string().contains('3'));
        assert!(CommError::RecvFailed {
            src: 1,
            timed_out: true
        }
        .to_string()
        .contains("timed out"));
        assert!(!CommError::EmptyGroup.to_string().is_empty());
        let failed = CommError::RankFailed {
            rank: 2,
            kind: "bad-request",
            detail: "decode slot references unknown batch id 5".to_string(),
        };
        let text = failed.to_string();
        assert!(text.contains("rank 2"));
        assert!(text.contains("bad-request"));
        assert!(text.contains("batch id 5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CommError>();
    }
}
