//! Rank spawning and the per-rank [`Communicator`] handle.

use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use cp_pool::ComputePool;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::plan::{ExpectedRecv, PlanChecker};
use crate::stats::{Collective, TimedEvent, TimelineLane};
use crate::{CommError, CommPlan, TrafficReport, TrafficStats, Wire};

/// Default for how long a blocked receive waits before failing. Generous
/// enough for any legitimate collective in the test suite, short enough
/// that a genuinely wedged ring fails the run instead of hanging it.
/// Override per run with [`Fabric::recv_timeout`].
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// A modeled interconnect: per-message latency plus bandwidth-proportional
/// transfer time. Threads exchange pointers in nanoseconds, which would make
/// comm/compute overlap unmeasurable; installing a `LinkModel` via
/// [`Fabric::link`] stamps each message with a delivery instant so a receive
/// completes no earlier than a real wire transfer would. The delay runs
/// concurrently with whatever the receiving rank does in the meantime —
/// exactly the property double-buffered ring hops exploit.
///
/// `None` (the default) keeps today's zero-delay behavior bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Fixed per-message latency.
    pub latency: Duration,
    /// Link bandwidth in GiB/s; non-finite or non-positive means
    /// latency-only (no size-proportional term).
    pub gib_per_s: f64,
}

impl LinkModel {
    /// A latency-only link (infinite bandwidth).
    pub fn latency_only(latency: Duration) -> Self {
        LinkModel {
            latency,
            gib_per_s: f64::INFINITY,
        }
    }

    /// Modeled wire time for a message of `bytes`.
    pub fn delay(&self, bytes: usize) -> Duration {
        let transfer = if self.gib_per_s.is_finite() && self.gib_per_s > 0.0 {
            Duration::from_secs_f64(bytes as f64 / (self.gib_per_s * (1u64 << 30) as f64))
        } else {
            Duration::ZERO
        };
        self.latency.saturating_add(transfer)
    }
}

/// Physical shape of the rank group: `nodes` hosts with `ranks_per_node`
/// ranks each, rank `r` living on node `r / ranks_per_node`. Drives both
/// the heterogeneous link model ([`LinkPolicy::Topo`]) and the
/// hierarchical ring schedules in `cp_core::schedule`, which keep bulk
/// traffic on intra-node links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of hosts.
    pub nodes: usize,
    /// Ranks per host.
    pub ranks_per_node: usize,
}

impl Topology {
    /// A topology of `nodes` hosts × `ranks_per_node` ranks.
    pub fn new(nodes: usize, ranks_per_node: usize) -> Self {
        Topology {
            nodes,
            ranks_per_node,
        }
    }

    /// Total ranks in the group.
    pub fn world(&self) -> usize {
        self.nodes * self.ranks_per_node
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node.max(1)
    }

    /// Whether two ranks share a host (and therefore the fast link).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

/// Which [`LinkModel`] (if any) governs each (src, dst) channel.
///
/// The uniform policy is the historical single-`LinkModel` fabric; the
/// topology policy models a heterogeneous interconnect — fast intra-node
/// links, slow cross-node links — so schedules that keep bulk traffic
/// inside a node measurably win.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkPolicy {
    /// One model for every channel; `None` = instant delivery.
    Uniform(Option<LinkModel>),
    /// Per-link models keyed by whether the endpoints share a node.
    Topo {
        /// The node layout assigning ranks to hosts.
        topo: Topology,
        /// Model for channels whose endpoints share a node.
        intra: LinkModel,
        /// Model for channels crossing nodes.
        cross: LinkModel,
    },
}

impl Default for LinkPolicy {
    fn default() -> Self {
        LinkPolicy::Uniform(None)
    }
}

impl LinkPolicy {
    /// The model governing the `src → dst` channel, if any.
    pub fn model_for(&self, src: usize, dst: usize) -> Option<LinkModel> {
        match self {
            LinkPolicy::Uniform(m) => *m,
            LinkPolicy::Topo { topo, intra, cross } => Some(if topo.same_node(src, dst) {
                *intra
            } else {
                *cross
            }),
        }
    }
}

/// A message in flight: the payload plus the instant the modeled wire
/// finishes delivering it (`None` without a [`LinkModel`]).
#[derive(Debug)]
struct Envelope<M> {
    msg: M,
    deliver_at: Option<Instant>,
}

impl<M> Envelope<M> {
    /// Whether the modeled wire has finished delivering this message.
    fn delivered(&self) -> bool {
        self.deliver_at.is_none_or(|at| Instant::now() >= at)
    }

    /// Blocks out the remaining modeled wire time, then yields the payload.
    fn settle(self) -> M {
        if let Some(at) = self.deliver_at {
            let now = Instant::now();
            if at > now {
                std::thread::sleep(at - now);
            }
        }
        self.msg
    }
}

/// A rank's handle to the fabric: point-to-point sends/receives plus the
/// collectives the paper's algorithms use (`SendRecv` ring steps,
/// `All2All`, `AllGather`, `AllReduce`, barrier).
///
/// One `Communicator` is handed to each rank closure by [`run_ranks`]. All
/// channels are unbounded, so `send` never blocks — which is exactly the
/// property that makes the symmetric ring schedule (every rank sends, then
/// receives) deadlock-free, mirroring NCCL's buffered `SendRecv`. That
/// property is no longer only asserted here: the schedules are declared as
/// [`CommPlan`] data, model-checked offline by `cp-verify`, and enforced
/// against live traffic when the fabric runs in [`CheckedFabric`] mode.
#[derive(Debug)]
pub struct Communicator<M: Wire> {
    rank: usize,
    world: usize,
    /// `senders[dst]` delivers to rank `dst`'s `receivers[self.rank]`.
    senders: Vec<Sender<Envelope<M>>>,
    /// `receivers[src]` yields messages sent by rank `src`.
    receivers: Vec<Receiver<Envelope<M>>>,
    ctrl_senders: Vec<Sender<()>>,
    ctrl_receivers: Vec<Receiver<()>>,
    recv_timeout: Duration,
    /// Modeled wire delay per channel; [`LinkPolicy::Uniform`]`(None)` =
    /// instant.
    links: LinkPolicy,
    /// When a channel is modeled, the instant `senders[dst]` frees up:
    /// each (src, dst) channel carries one message at a time, so two
    /// payloads pushed down the *same* link serialize while payloads on
    /// different links (e.g. the two directions of a bidirectional ring)
    /// genuinely overlap. Indexed by `dst`; only this rank sends on these
    /// channels, so a local lock suffices.
    link_busy: Mutex<Vec<Option<Instant>>>,
    /// Ring pipelining depth requested by [`Fabric::pipeline_depth`];
    /// ring loops split hop payloads into this many chunks and keep that
    /// many hops in flight. 1 = classic double-buffered ring.
    pipeline_depth: usize,
    /// Plan cursor when running under a [`CheckedFabric`]; `None` in
    /// unchecked mode.
    checker: Option<Mutex<PlanChecker>>,
    stats: Arc<TrafficStats>,
    /// This rank's persistent compute workers, created on first use so
    /// comm-only runs never pay the spawn.
    pool: OnceLock<ComputePool>,
    /// Total threads for [`Communicator::pool`]; 0 = machine parallelism.
    pool_threads: usize,
}

impl<M: Wire> Communicator<M> {
    /// This rank's index in `0..world_size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// The next rank around the ring (`rank + 1 mod N`).
    pub fn ring_next(&self) -> usize {
        (self.rank + 1) % self.world
    }

    /// The previous rank around the ring (`rank - 1 mod N`).
    pub fn ring_prev(&self) -> usize {
        (self.rank + self.world - 1) % self.world
    }

    /// Ring pipelining depth configured on the fabric (≥ 1). Ring loops
    /// consult this to decide whether to split hop payloads into chunks
    /// and keep multiple hops in flight (cut-through forwarding).
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth.max(1)
    }

    /// The link model governing this rank's channel to `dst`, if any.
    pub fn link_to(&self, dst: usize) -> Option<LinkModel> {
        self.links.model_for(self.rank, dst)
    }

    /// Runs `f` on the plan checker if one is installed; `Ok(None)` in
    /// unchecked mode.
    fn with_checker<R>(
        &self,
        f: impl FnOnce(&mut PlanChecker) -> Result<R, CommError>,
    ) -> Result<Option<R>, CommError> {
        match &self.checker {
            None => Ok(None),
            Some(m) => {
                let mut guard = m.lock().unwrap_or_else(PoisonError::into_inner);
                f(&mut guard).map(Some)
            }
        }
    }

    /// Validates a received message against the plan's expectation, if
    /// running checked.
    fn check_received(
        &self,
        expected: Option<&ExpectedRecv>,
        src: usize,
        msg: &M,
    ) -> Result<(), CommError> {
        if let Some(exp) = expected {
            self.with_checker(|c| {
                c.check_received(exp, src, msg.wire_variant(), msg.wire_bytes())
            })?;
        }
        Ok(())
    }

    /// Asserts this rank consumed its whole declared plan. No-op in
    /// unchecked mode; called by the fabric when the rank closure returns.
    fn finish_plan(&self) -> Result<(), CommError> {
        self.with_checker(|c| c.finish()).map(|_| ())
    }

    /// Delivers `msg` to rank `dst`, attributing its wire bytes to
    /// `collective`. Bytes are recorded only after the send succeeded, so a
    /// failed delivery never inflates the traffic accounting.
    fn deliver(&self, dst: usize, msg: M, collective: Collective) -> Result<(), CommError> {
        let sender = self.senders.get(dst).ok_or(CommError::RankOutOfRange {
            rank: dst,
            world_size: self.world,
        })?;
        let bytes = msg.wire_bytes();
        // A modeled channel carries one message at a time: a payload posted
        // while the previous one is still on the wire queues behind it.
        // This keeps same-link chunking honest (halves serialize) while
        // distinct links — the two ring directions, or different peers —
        // genuinely run in parallel.
        let deliver_at = self.links.model_for(self.rank, dst).map(|l| {
            let mut busy = self
                .link_busy
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let now = Instant::now();
            let start = match busy.get(dst).copied().flatten() {
                Some(free_at) if free_at > now => free_at,
                _ => now,
            };
            let at = start + l.delay(bytes);
            if let Some(slot) = busy.get_mut(dst) {
                *slot = Some(at);
            }
            at
        });
        sender
            .send(Envelope { msg, deliver_at })
            .map_err(|_| CommError::SendFailed { dst })?;
        self.stats.record_bytes(collective, bytes);
        Ok(())
    }

    /// Blocking receive with the fabric timeout; no accounting (bytes are
    /// metered on the sending side).
    fn receive(&self, src: usize) -> Result<M, CommError> {
        self.receive_by(src, Instant::now() + self.recv_timeout)
    }

    /// Blocking receive that gives up at `deadline` — the shared primitive
    /// for fresh receives (deadline = now + fabric timeout) and for waiting
    /// on an already-posted [`PendingRecv`] (deadline fixed at post time).
    fn receive_by(&self, src: usize, deadline: Instant) -> Result<M, CommError> {
        let receiver = self.receivers.get(src).ok_or(CommError::RankOutOfRange {
            rank: src,
            world_size: self.world,
        })?;
        let remaining = deadline.saturating_duration_since(Instant::now());
        receiver
            .recv_timeout(remaining)
            .map(Envelope::settle)
            .map_err(|e| CommError::RecvFailed {
                src,
                timed_out: matches!(e, RecvTimeoutError::Timeout),
            })
    }

    /// Times `f` as one call of `collective` on this rank, recording wall
    /// time and a timeline event whether it succeeds or fails.
    fn timed<R>(
        &self,
        collective: Collective,
        f: impl FnOnce() -> Result<R, CommError>,
    ) -> Result<R, CommError> {
        let start = self.stats.now_ns();
        let out = f();
        let dur = self.stats.now_ns().saturating_sub(start);
        self.stats.record_call(collective, dur);
        self.stats.record_event(TimedEvent {
            rank: self.rank,
            lane: TimelineLane::Comm,
            label: collective.name().to_string(),
            start_ns: start,
            dur_ns: dur,
            overlapped_ns: 0,
        });
        out
    }

    /// Runs `f` and records it as a named compute interval on this rank's
    /// measured timeline, so traces show compute and communication side by
    /// side (the paper's overlap diagnosis, on measured wall time).
    pub fn time_compute<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        let start = self.stats.now_ns();
        let out = f();
        let dur = self.stats.now_ns().saturating_sub(start);
        self.stats.record_event(TimedEvent {
            rank: self.rank,
            lane: TimelineLane::Compute,
            label: label.to_string(),
            start_ns: start,
            dur_ns: dur,
            overlapped_ns: 0,
        });
        out
    }

    /// Sends a message to rank `dst`. Never blocks (channels are unbounded).
    ///
    /// # Errors
    ///
    /// [`CommError::RankOutOfRange`] for a bad destination,
    /// [`CommError::SendFailed`] if the peer has already exited, or
    /// [`CommError::PlanViolation`] in checked mode if the plan declares a
    /// different op here.
    pub fn send(&self, dst: usize, msg: M) -> Result<(), CommError> {
        self.timed(Collective::SendRecv, || {
            self.with_checker(|c| c.expect_send(dst, msg.wire_variant(), msg.wire_bytes()))?;
            self.deliver(dst, msg, Collective::SendRecv)
        })
    }

    /// Receives the next message from rank `src`, blocking up to the
    /// fabric's receive timeout.
    ///
    /// # Errors
    ///
    /// [`CommError::RankOutOfRange`] for a bad source,
    /// [`CommError::RecvFailed`] on timeout / peer exit, or
    /// [`CommError::PlanViolation`] in checked mode.
    pub fn recv(&self, src: usize) -> Result<M, CommError> {
        let expected = self.with_checker(|c| c.expect_recv(src))?;
        let msg = self.receive(src)?;
        self.check_received(expected.as_ref(), src, &msg)?;
        Ok(msg)
    }

    /// One ring step: send `msg` to `dst`, then receive from `src`.
    ///
    /// This is the NCCL `SendRecv` the paper's ring loop issues every
    /// iteration. The send is buffered, so all ranks can post sends before
    /// any posts its receive. Counted as a single `send_recv` call whose
    /// wall time spans both halves.
    ///
    /// # Errors
    ///
    /// Propagates [`Communicator::send`] / [`Communicator::recv`] errors;
    /// [`CommError::PlanViolation`] in checked mode if peers, variants or
    /// byte counts diverge from the declared plan.
    pub fn send_recv(&self, dst: usize, msg: M, src: usize) -> Result<M, CommError> {
        self.timed(Collective::SendRecv, || {
            let expected = self.with_checker(|c| {
                c.expect_send_recv(dst, src, msg.wire_variant(), msg.wire_bytes())
            })?;
            self.deliver(dst, msg, Collective::SendRecv)?;
            let got = self.receive(src)?;
            self.check_received(expected.as_ref(), src, &got)?;
            Ok(got)
        })
    }

    /// Nonblocking send: validates against the plan, buffers the message,
    /// and returns a [`PendingSend`] handle. Channels are unbounded, so the
    /// send half of a hop completes at post time — the handle exists so call
    /// sites read symmetrically with [`Communicator::irecv`] and stay
    /// correct if a bounded transport ever replaces the channels.
    ///
    /// Accounting is identical to [`Communicator::send`] (one `send_recv`
    /// call recorded at post).
    ///
    /// # Errors
    ///
    /// As [`Communicator::send`].
    pub fn isend(&self, dst: usize, msg: M) -> Result<PendingSend, CommError> {
        self.send(dst, msg)?;
        Ok(PendingSend { _posted: () })
    }

    /// Nonblocking receive: validates the op against the plan *now* (post
    /// time) and returns a [`PendingRecv`] handle. The message is claimed by
    /// `wait()` / `try_complete()`; until then the calling rank is free to
    /// compute. The handle's deadline is `now + recv_timeout`, so a wedged
    /// peer surfaces as a timeout naming `src` no matter how late `wait()`
    /// is called.
    ///
    /// Like [`Communicator::recv`], a plain `irecv` records no collective
    /// call; pair it with [`Communicator::isend_irecv`] for accounted ring
    /// hops.
    ///
    /// # Errors
    ///
    /// [`CommError::RankOutOfRange`] for a bad source, or
    /// [`CommError::PlanViolation`] in checked mode.
    pub fn irecv(&self, src: usize) -> Result<PendingRecv<'_, M>, CommError> {
        if src >= self.world {
            return Err(CommError::RankOutOfRange {
                rank: src,
                world_size: self.world,
            });
        }
        let expected = self.with_checker(|c| c.expect_recv(src))?;
        Ok(self.pending(src, expected, None))
    }

    /// Nonblocking ring hop: posts the send *and* the receive of one
    /// `SendRecv` step, validating both halves against the plan at post
    /// time, and returns the receive handle. The caller overlaps compute
    /// with the in-flight hop and claims the incoming shard with `wait()`
    /// at the loop bottom — the double-buffered form of
    /// [`Communicator::send_recv`].
    ///
    /// Accounting: consumes exactly one declared `SendRecv` op and records
    /// exactly one `send_recv` call when the handle completes, so plans and
    /// `predicted_traffic` are unchanged versus the blocking hop. The
    /// recorded event's `overlapped_ns` is the span between this post and
    /// the moment the caller started blocking in `wait()` — the comm time
    /// hidden under compute.
    ///
    /// # Errors
    ///
    /// As [`Communicator::send_recv`] for the post half; receive-side
    /// errors surface from the handle.
    pub fn isend_irecv(
        &self,
        dst: usize,
        msg: M,
        src: usize,
    ) -> Result<PendingRecv<'_, M>, CommError> {
        if src >= self.world {
            return Err(CommError::RankOutOfRange {
                rank: src,
                world_size: self.world,
            });
        }
        let start_ns = self.stats.now_ns();
        let expected = self
            .with_checker(|c| c.expect_send_recv(dst, src, msg.wire_variant(), msg.wire_bytes()))?;
        self.deliver(dst, msg, Collective::SendRecv)?;
        let mut pending = self.pending(src, expected, Some(Collective::SendRecv));
        pending.start_ns = start_ns;
        Ok(pending)
    }

    /// Builds a receive handle whose deadline starts counting now.
    fn pending(
        &self,
        src: usize,
        expected: Option<ExpectedRecv>,
        record: Option<Collective>,
    ) -> PendingRecv<'_, M> {
        PendingRecv {
            comm: self,
            src,
            expected,
            record,
            deadline: Instant::now() + self.recv_timeout,
            start_ns: self.stats.now_ns(),
            buffered: None,
        }
    }

    /// This rank's persistent compute pool, created on first use. Ring
    /// loops and attention kernels run their parallel sections here instead
    /// of spawning scoped threads per call.
    pub fn pool(&self) -> &ComputePool {
        self.pool.get_or_init(|| {
            if self.pool_threads == 0 {
                ComputePool::default()
            } else {
                ComputePool::new(self.pool_threads)
            }
        })
    }

    /// All-to-all exchange: `payloads[j]` is delivered to rank `j`; the
    /// returned vector holds, at index `i`, the payload rank `i` addressed
    /// to this rank (this rank's own payload is moved through directly).
    ///
    /// # Errors
    ///
    /// [`CommError::WrongPayloadCount`] if `payloads.len() != world_size`,
    /// plus any send/receive failure or plan violation in checked mode.
    pub fn all_to_all(&self, payloads: Vec<M>) -> Result<Vec<M>, CommError> {
        if payloads.len() != self.world {
            return Err(CommError::WrongPayloadCount {
                got: payloads.len(),
                expected: self.world,
            });
        }
        self.timed(Collective::AllToAll, || {
            let sent: Vec<(&'static str, usize)> = payloads
                .iter()
                .map(|m| (m.wire_variant(), m.wire_bytes()))
                .collect();
            let expected = self.with_checker(|c| c.expect_all_to_all(&sent))?;
            let mut own: Option<M> = None;
            for (dst, msg) in payloads.into_iter().enumerate() {
                if dst == self.rank {
                    own = Some(msg);
                } else {
                    self.deliver(dst, msg, Collective::AllToAll)?;
                }
            }
            let mut out = Vec::with_capacity(self.world);
            for src in 0..self.world {
                let msg = if src == self.rank {
                    own.take().ok_or_else(|| CommError::Internal {
                        detail: "all_to_all self payload missing".to_string(),
                    })?
                } else {
                    let msg = self.receive(src)?;
                    self.check_received(expected.as_ref().and_then(|e| e.get(src)), src, &msg)?;
                    msg
                };
                out.push(msg);
            }
            Ok(out)
        })
    }

    /// Gathers every rank's payload; index `i` of the result is rank `i`'s
    /// contribution on every rank.
    ///
    /// # Errors
    ///
    /// Propagates send/receive failures and plan violations.
    pub fn all_gather(&self, payload: M) -> Result<Vec<M>, CommError>
    where
        M: Clone,
    {
        self.timed(Collective::AllGather, || {
            let expected = self.with_checker(|c| {
                c.expect_gather("all_gather", payload.wire_variant(), payload.wire_bytes())
            })?;
            self.gather_as(payload, Collective::AllGather, expected)
        })
    }

    /// The gather exchange, attributing traffic to `collective` so that
    /// `all_reduce` (built on the same pattern) is accounted separately.
    fn gather_as(
        &self,
        payload: M,
        collective: Collective,
        expected: Option<Vec<ExpectedRecv>>,
    ) -> Result<Vec<M>, CommError>
    where
        M: Clone,
    {
        for dst in 0..self.world {
            if dst == self.rank {
                continue;
            }
            self.deliver(dst, payload.clone(), collective)?;
        }
        let mut out = Vec::with_capacity(self.world);
        for src in 0..self.world {
            if src == self.rank {
                out.push(payload.clone());
            } else {
                let msg = self.receive(src)?;
                self.check_received(expected.as_ref().and_then(|e| e.get(src)), src, &msg)?;
                out.push(msg);
            }
        }
        Ok(out)
    }

    /// All-reduce: gathers all payloads and folds them in rank order with
    /// `combine`, so every rank computes an identical, deterministic result.
    ///
    /// Accounted as its own `all_reduce` collective (calls, bytes, wall
    /// time), distinct from `all_gather`, even though the exchange pattern
    /// is the same.
    ///
    /// # Errors
    ///
    /// Propagates the underlying gather's failures and plan violations.
    pub fn all_reduce<F>(&self, payload: M, combine: F) -> Result<M, CommError>
    where
        M: Clone,
        F: FnMut(M, &M) -> M,
    {
        self.timed(Collective::AllReduce, || {
            let expected = self.with_checker(|c| {
                c.expect_gather("all_reduce", payload.wire_variant(), payload.wire_bytes())
            })?;
            let gathered = self.gather_as(payload, Collective::AllReduce, expected)?;
            let mut iter = gathered.into_iter();
            let first = iter.next().ok_or(CommError::EmptyGroup)?;
            let mut combine = combine;
            Ok(iter.fold(first, |acc, m| combine(acc, &m)))
        })
    }

    /// Blocks until every rank has reached the barrier.
    ///
    /// # Errors
    ///
    /// Propagates control-channel failures (peer exit / timeout) and plan
    /// violations.
    pub fn barrier(&self) -> Result<(), CommError> {
        self.with_checker(|c| c.expect_barrier())?;
        for (dst, sender) in self.ctrl_senders.iter().enumerate() {
            if dst == self.rank {
                continue;
            }
            sender.send(()).map_err(|_| CommError::SendFailed { dst })?;
        }
        for (src, receiver) in self.ctrl_receivers.iter().enumerate() {
            if src == self.rank {
                continue;
            }
            receiver
                .recv_timeout(self.recv_timeout)
                .map_err(|e| CommError::RecvFailed {
                    src,
                    timed_out: matches!(e, RecvTimeoutError::Timeout),
                })?;
        }
        Ok(())
    }
}

/// Handle for a posted nonblocking send. Sends are buffered, so the
/// operation already completed at post time; `wait()` exists for symmetry
/// with [`PendingRecv`] and for forward compatibility with a bounded
/// transport.
#[must_use = "call wait() so hop completion stays explicit at the loop bottom"]
#[derive(Debug)]
pub struct PendingSend {
    _posted: (),
}

impl PendingSend {
    /// Completes the send. Never blocks and never fails on the buffered
    /// channel transport.
    #[allow(clippy::unnecessary_wraps)]
    pub fn wait(self) -> Result<(), CommError> {
        Ok(())
    }
}

/// Outcome of a [`PendingRecv::try_complete`] poll: either the message, or
/// the still-pending handle to poll again.
#[derive(Debug)]
pub enum Progress<T, P> {
    /// The operation finished and produced its value.
    Complete(T),
    /// Not ready yet; the handle is returned for another poll or `wait()`.
    Pending(P),
}

/// Handle for a posted nonblocking receive (see [`Communicator::irecv`] /
/// [`Communicator::isend_irecv`]).
///
/// The plan op was consumed at post time; the handle's job is completion:
/// claiming the message, enforcing the fabric receive timeout measured
/// *from the post* (a wedged peer fails `wait()` with
/// [`CommError::RecvFailed`]` { src, timed_out: true }` naming the awaited
/// rank — it never hangs), validating the payload against the plan's
/// expectation, and recording the hop's wall time and `overlapped_ns`.
///
/// Dropping the handle without waiting abandons the message in the channel
/// and records nothing; in checked mode the plan cursor has already
/// advanced, so an abandoned receive shows up as a downstream violation
/// rather than silently passing.
#[must_use = "an unwaited irecv abandons the message and records no completion"]
#[derive(Debug)]
pub struct PendingRecv<'a, M: Wire> {
    comm: &'a Communicator<M>,
    src: usize,
    expected: Option<ExpectedRecv>,
    /// Collective to account at completion; `None` for a bare `irecv`
    /// (mirroring `recv`, which records no collective call).
    record: Option<Collective>,
    /// Post-time receive deadline (post instant + fabric `recv_timeout`).
    deadline: Instant,
    /// Post time on the stats clock; start of the recorded hop event.
    start_ns: u64,
    /// An envelope already popped by `try_complete` whose modeled wire
    /// delivery is still in the future. Kept here so polling early never
    /// loses the message.
    buffered: Option<Envelope<M>>,
}

impl<M: Wire> PendingRecv<'_, M> {
    /// Rank this handle is receiving from.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Blocks until the message arrives, the post-time deadline passes, or
    /// the peer disconnects.
    ///
    /// # Errors
    ///
    /// [`CommError::RecvFailed`] naming `src` (with `timed_out: true` when
    /// the fabric timeout expired), or [`CommError::PlanViolation`] if the
    /// payload diverges from the plan's expectation.
    pub fn wait(mut self) -> Result<M, CommError> {
        let blocked_from = self.comm.stats.now_ns();
        let result = match self.buffered.take() {
            Some(env) => Ok(env.settle()),
            None => self.comm.receive_by(self.src, self.deadline),
        };
        self.finish(blocked_from, result)
    }

    /// Polls for completion without blocking.
    ///
    /// # Errors
    ///
    /// As [`PendingRecv::wait`]; in particular, a poll after the post-time
    /// deadline with no message fails with `timed_out: true` rather than
    /// staying pending forever.
    pub fn try_complete(mut self) -> Result<Progress<M, Self>, CommError> {
        if let Some(env) = self.buffered.take() {
            if env.delivered() {
                let blocked_from = self.comm.stats.now_ns();
                return self
                    .finish(blocked_from, Ok(env.settle()))
                    .map(Progress::Complete);
            }
            self.buffered = Some(env);
            return Ok(Progress::Pending(self));
        }
        let receiver = match self.comm.receivers.get(self.src) {
            Some(r) => r,
            None => {
                let blocked_from = self.comm.stats.now_ns();
                let err = Err(CommError::RankOutOfRange {
                    rank: self.src,
                    world_size: self.comm.world,
                });
                return self.finish(blocked_from, err).map(Progress::Complete);
            }
        };
        match receiver.try_recv() {
            Ok(env) if env.delivered() => {
                let blocked_from = self.comm.stats.now_ns();
                self.finish(blocked_from, Ok(env.settle()))
                    .map(Progress::Complete)
            }
            Ok(env) => {
                self.buffered = Some(env);
                Ok(Progress::Pending(self))
            }
            Err(TryRecvError::Empty) => {
                if Instant::now() < self.deadline {
                    return Ok(Progress::Pending(self));
                }
                let blocked_from = self.comm.stats.now_ns();
                let err = Err(CommError::RecvFailed {
                    src: self.src,
                    timed_out: true,
                });
                self.finish(blocked_from, err).map(Progress::Complete)
            }
            Err(TryRecvError::Disconnected) => {
                let blocked_from = self.comm.stats.now_ns();
                let err = Err(CommError::RecvFailed {
                    src: self.src,
                    timed_out: false,
                });
                self.finish(blocked_from, err).map(Progress::Complete)
            }
        }
    }

    /// Completion bookkeeping: records the hop (call count, wall time,
    /// timeline event with `overlapped_ns`) whether it succeeded or failed
    /// — mirroring `timed()` — then validates the payload.
    fn finish(self, blocked_from: u64, result: Result<M, CommError>) -> Result<M, CommError> {
        let stats = &self.comm.stats;
        let end = stats.now_ns();
        let dur = end.saturating_sub(self.start_ns);
        let overlapped = blocked_from.saturating_sub(self.start_ns).min(dur);
        if let Some(collective) = self.record {
            stats.record_call(collective, dur);
            stats.record_overlap(collective, overlapped);
            stats.record_event(TimedEvent {
                rank: self.comm.rank,
                lane: TimelineLane::Comm,
                label: collective.name().to_string(),
                start_ns: self.start_ns,
                dur_ns: dur,
                overlapped_ns: overlapped,
            });
        }
        let msg = result?;
        self.comm
            .check_received(self.expected.as_ref(), self.src, &msg)?;
        Ok(msg)
    }
}

/// Turns a row-major matrix into its column-major transpose without
/// indexing; ragged rows are tolerated (shorter rows simply contribute to
/// fewer columns).
fn transpose<T>(rows: Vec<Vec<T>>) -> Vec<Vec<T>> {
    let mut cols: Vec<Vec<T>> = Vec::new();
    for row in rows {
        if cols.len() < row.len() {
            cols.resize_with(row.len(), Vec::new);
        }
        for (col, item) in cols.iter_mut().zip(row) {
            col.push(item);
        }
    }
    cols
}

/// Builds the full channel mesh for `world` ranks.
fn build_communicators<M: Wire>(
    world: usize,
    recv_timeout: Duration,
    links: LinkPolicy,
    pipeline_depth: usize,
    pool_threads: usize,
    plan: Option<&CommPlan>,
    stats: &Arc<TrafficStats>,
) -> Result<Vec<Communicator<M>>, CommError> {
    // Row-major construction: row `src` holds, per `dst`, the sender and
    // the receiver of the (src → dst) channel. Each rank then takes its own
    // sender row and the transposed receiver column, so rank `r` ends up
    // with `senders[dst]` = (r → dst) and `receivers[src]` = (src → r).
    let mut data_tx: Vec<Vec<Sender<Envelope<M>>>> = Vec::with_capacity(world);
    let mut data_rx: Vec<Vec<Receiver<Envelope<M>>>> = Vec::with_capacity(world);
    let mut ctrl_tx: Vec<Vec<Sender<()>>> = Vec::with_capacity(world);
    let mut ctrl_rx: Vec<Vec<Receiver<()>>> = Vec::with_capacity(world);
    for _src in 0..world {
        let mut tx_row = Vec::with_capacity(world);
        let mut rx_row = Vec::with_capacity(world);
        let mut ctx_row = Vec::with_capacity(world);
        let mut crx_row = Vec::with_capacity(world);
        for _dst in 0..world {
            let (tx, rx) = unbounded::<Envelope<M>>();
            tx_row.push(tx);
            rx_row.push(rx);
            let (ctx, crx) = unbounded::<()>();
            ctx_row.push(ctx);
            crx_row.push(crx);
        }
        data_tx.push(tx_row);
        data_rx.push(rx_row);
        ctrl_tx.push(ctx_row);
        ctrl_rx.push(crx_row);
    }
    let data_rx_cols = transpose(data_rx);
    let ctrl_rx_cols = transpose(ctrl_rx);

    let mut checkers: Vec<Option<Mutex<PlanChecker>>> = match plan {
        None => (0..world).map(|_| None).collect(),
        Some(p) => {
            if p.ranks.len() != p.world || p.world != world {
                return Err(CommError::Internal {
                    detail: format!(
                        "plan declares {} rank schedules for world {}, fabric runs {} ranks",
                        p.ranks.len(),
                        p.world,
                        world
                    ),
                });
            }
            p.ranks
                .iter()
                .map(|r| Some(Mutex::new(PlanChecker::new(r.clone()))))
                .collect()
        }
    };

    let mut comms = Vec::with_capacity(world);
    let rows = data_tx
        .into_iter()
        .zip(data_rx_cols)
        .zip(ctrl_tx.into_iter().zip(ctrl_rx_cols));
    for (rank, ((senders, receivers), (ctrl_senders, ctrl_receivers))) in rows.enumerate() {
        comms.push(Communicator {
            rank,
            world,
            senders,
            receivers,
            ctrl_senders,
            ctrl_receivers,
            recv_timeout,
            links,
            link_busy: Mutex::new(vec![None; world]),
            pipeline_depth,
            checker: checkers.get_mut(rank).and_then(Option::take),
            stats: Arc::clone(stats),
            pool: OnceLock::new(),
            pool_threads,
        });
    }
    Ok(comms)
}

/// Builder for a fabric run: world size plus run-scoped options like the
/// receive timeout. [`run_ranks`] is shorthand for the defaults.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use cp_comm::Fabric;
///
/// # fn main() -> Result<(), cp_comm::CommError> {
/// let (res, _) = Fabric::new(2)
///     .recv_timeout(Duration::from_millis(200))
///     .run::<Vec<f32>, _, _>(|comm| {
///         comm.send_recv(comm.ring_next(), vec![1.0], comm.ring_prev())
///     })?;
/// assert_eq!(res.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    world: usize,
    recv_timeout: Duration,
    links: LinkPolicy,
    pipeline_depth: usize,
    pool_threads: usize,
}

impl Fabric {
    /// A fabric for `world` ranks with the default receive timeout, no
    /// modeled link delay, and machine-sized compute pools.
    pub fn new(world: usize) -> Self {
        Fabric {
            world,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            links: LinkPolicy::default(),
            pipeline_depth: 1,
            pool_threads: 0,
        }
    }

    /// Sets how long a blocked receive waits before failing with
    /// [`CommError::RecvFailed`]. Deadlock-regression tests use a few
    /// milliseconds here so a wedged schedule fails fast instead of
    /// waiting out the default.
    pub fn recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Installs a uniform modeled interconnect: every delivery completes
    /// no earlier than [`LinkModel::delay`] after the send, concurrently
    /// with the receiver's compute. Off by default (instant delivery).
    pub fn link(mut self, link: LinkModel) -> Self {
        self.links = LinkPolicy::Uniform(Some(link));
        self
    }

    /// Installs a heterogeneous interconnect: channels between ranks on
    /// the same node of `topo` use `intra`, channels crossing nodes use
    /// `cross`. This is what makes hierarchical (topology-aware) ring
    /// schedules measurably cheaper than flat ones.
    pub fn topology(mut self, topo: Topology, intra: LinkModel, cross: LinkModel) -> Self {
        self.links = LinkPolicy::Topo { topo, intra, cross };
        self
    }

    /// Requests depth-`n` ring pipelining: ring loops split each hop
    /// payload into `n` chunks and keep `n` sends in flight per hop, so a
    /// chunk is forwarded before its siblings have arrived (cut-through).
    /// Depth 1 (the default) is the classic double-buffered ring.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Sets the total thread count of each rank's persistent
    /// [`Communicator::pool`] (0 = machine parallelism, the default).
    pub fn compute_pool(mut self, threads: usize) -> Self {
        self.pool_threads = threads;
        self
    }

    /// Runs `f` on every rank (unchecked mode). See [`run_ranks`].
    ///
    /// # Errors
    ///
    /// [`CommError::EmptyGroup`] for a zero-rank group; otherwise the first
    /// rank error in rank order, or [`CommError::RankPanicked`].
    pub fn run<M, T, F>(&self, f: F) -> Result<(Vec<T>, TrafficReport), CommError>
    where
        M: Wire,
        T: Send,
        F: Fn(&Communicator<M>) -> Result<T, CommError> + Sync,
    {
        self.launch(None, f)
    }

    fn launch<M, T, F>(
        &self,
        plan: Option<&CommPlan>,
        f: F,
    ) -> Result<(Vec<T>, TrafficReport), CommError>
    where
        M: Wire,
        T: Send,
        F: Fn(&Communicator<M>) -> Result<T, CommError> + Sync,
    {
        if self.world == 0 {
            return Err(CommError::EmptyGroup);
        }
        let stats = TrafficStats::new();
        let comms = build_communicators::<M>(
            self.world,
            self.recv_timeout,
            self.links,
            self.pipeline_depth,
            self.pool_threads,
            plan,
            &stats,
        )?;

        let results: Vec<Result<Result<T, CommError>, usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let f = &f;
                    scope.spawn(move || {
                        let out = f(&comm)?;
                        // In checked mode a rank must drain its whole
                        // declared schedule before exiting.
                        comm.finish_plan()?;
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| h.join().map_err(|_| rank))
                .collect()
        });

        let mut out = Vec::with_capacity(self.world);
        let mut first_err: Option<CommError> = None;
        for r in results {
            let err = match r {
                Ok(Ok(v)) => {
                    out.push(v);
                    continue;
                }
                Ok(Err(e)) => e,
                Err(rank) => CommError::RankPanicked { rank },
            };
            // A plan violation is the root cause; peers that then fail with
            // secondary send/recv errors (the violator exited) must not mask
            // it. Otherwise the first error in rank order wins.
            match (&first_err, &err) {
                (None, _) => first_err = Some(err),
                (Some(CommError::PlanViolation { .. }), _) => {}
                (Some(_), CommError::PlanViolation { .. }) => first_err = Some(err),
                _ => {}
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok((out, stats.report())),
        }
    }
}

/// A fabric that validates every rank's live traffic against a declared
/// [`CommPlan`] — the runtime half of the `cp-verify` story (the offline
/// half model-checks the same plan). Any divergence (op kind, peer,
/// message variant, byte count, or an undrained schedule) fails the run
/// with [`CommError::PlanViolation`] naming the offending rank and step.
///
/// # Example
///
/// ```
/// use cp_comm::{CheckedFabric, CommOp, CommPlan, RankPlan};
///
/// # fn main() -> Result<(), cp_comm::CommError> {
/// let plan = CommPlan::from_ranks(
///     (0..2)
///         .map(|r| RankPlan {
///             rank: r,
///             ops: vec![CommOp::SendRecv {
///                 dst: (r + 1) % 2,
///                 src: (r + 1) % 2,
///                 send_variant: "payload",
///                 recv_variant: "payload",
///                 send_bytes: 4,
///                 recv_bytes: 4,
///             }],
///         })
///         .collect(),
/// );
/// let (res, _) = CheckedFabric::new(plan).run::<Vec<f32>, _, _>(|comm| {
///     let got = comm.send_recv(comm.ring_next(), vec![1.0], comm.ring_prev())?;
///     Ok(got.len())
/// })?;
/// assert_eq!(res, vec![1, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CheckedFabric {
    fabric: Fabric,
    plan: CommPlan,
}

impl CheckedFabric {
    /// A checked fabric for the plan's world size.
    pub fn new(plan: CommPlan) -> Self {
        CheckedFabric {
            fabric: Fabric::new(plan.world),
            plan,
        }
    }

    /// Sets the blocked-receive timeout, as [`Fabric::recv_timeout`].
    pub fn recv_timeout(mut self, timeout: Duration) -> Self {
        self.fabric = self.fabric.recv_timeout(timeout);
        self
    }

    /// Installs a modeled interconnect, as [`Fabric::link`].
    pub fn link(mut self, link: LinkModel) -> Self {
        self.fabric = self.fabric.link(link);
        self
    }

    /// Installs a heterogeneous interconnect, as [`Fabric::topology`].
    pub fn topology(mut self, topo: Topology, intra: LinkModel, cross: LinkModel) -> Self {
        self.fabric = self.fabric.topology(topo, intra, cross);
        self
    }

    /// Requests depth-`n` ring pipelining, as [`Fabric::pipeline_depth`].
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.fabric = self.fabric.pipeline_depth(depth);
        self
    }

    /// Sets per-rank pool threads, as [`Fabric::compute_pool`].
    pub fn compute_pool(mut self, threads: usize) -> Self {
        self.fabric = self.fabric.compute_pool(threads);
        self
    }

    /// The declared plan this fabric enforces.
    pub fn plan(&self) -> &CommPlan {
        &self.plan
    }

    /// Runs `f` on every rank with live plan validation.
    ///
    /// # Errors
    ///
    /// As [`Fabric::run`], plus [`CommError::PlanViolation`] when a rank's
    /// traffic diverges from its declared schedule.
    pub fn run<M, T, F>(&self, f: F) -> Result<(Vec<T>, TrafficReport), CommError>
    where
        M: Wire,
        T: Send,
        F: Fn(&Communicator<M>) -> Result<T, CommError> + Sync,
    {
        self.fabric.launch(Some(&self.plan), f)
    }
}

/// Spawns `world` rank threads, runs `f` on each with its [`Communicator`],
/// and returns the per-rank results (index = rank) plus a traffic report.
///
/// Mirrors launching one process per host in the paper's deployment. The
/// call joins all threads before returning; a rank returning an error or
/// panicking fails the whole run (the first error in rank order is
/// returned). Equivalent to [`Fabric::new`]`(world).run(f)`; use the
/// builder to override the receive timeout, or [`CheckedFabric`] to
/// validate traffic against a declared plan.
///
/// # Errors
///
/// [`CommError::EmptyGroup`] for `world == 0`; otherwise the first rank
/// error, or [`CommError::RankPanicked`] if a rank closure panicked.
///
/// # Example
///
/// ```
/// use cp_comm::run_ranks;
///
/// # fn main() -> Result<(), cp_comm::CommError> {
/// let (sums, _) = run_ranks::<Vec<f32>, _, _>(3, |comm| {
///     let total = comm.all_reduce(vec![comm.rank() as f32], |mut acc, m| {
///         for (a, b) in acc.iter_mut().zip(m) { *a += b; }
///         acc
///     })?;
///     Ok(total[0])
/// })?;
/// assert_eq!(sums, vec![3.0, 3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
pub fn run_ranks<M, T, F>(world: usize, f: F) -> Result<(Vec<T>, TrafficReport), CommError>
where
    M: Wire,
    T: Send,
    F: Fn(&Communicator<M>) -> Result<T, CommError> + Sync,
{
    Fabric::new(world).run(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommOp, RankPlan};

    #[test]
    fn single_rank_group_works() {
        let (res, report) = run_ranks::<Vec<f32>, _, _>(1, |comm| {
            assert_eq!(comm.ring_next(), 0);
            assert_eq!(comm.ring_prev(), 0);
            // Self-send around a 1-ring.
            let got = comm.send_recv(0, vec![42.0], 0)?;
            Ok(got[0])
        })
        .unwrap();
        assert_eq!(res, vec![42.0]);
        assert_eq!(report.send_recv_bytes, 4);
    }

    #[test]
    fn empty_group_is_rejected() {
        let err = run_ranks::<Vec<f32>, _, _>(0, |_| Ok(())).unwrap_err();
        assert_eq!(err, CommError::EmptyGroup);
    }

    #[test]
    fn ring_rotation_n_minus_1_times_visits_all() {
        // Classic ring-attention schedule: after N-1 rotations each rank has
        // seen every other rank's payload exactly once.
        let n = 5;
        let (res, _) = run_ranks::<Vec<f32>, _, _>(n, |comm| {
            let mut seen = vec![comm.rank() as f32];
            let mut current = vec![comm.rank() as f32];
            for _ in 0..n - 1 {
                current = comm.send_recv(comm.ring_next(), current, comm.ring_prev())?;
                seen.push(current[0]);
            }
            seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
            Ok(seen)
        })
        .unwrap();
        for ranks_seen in res {
            assert_eq!(ranks_seen, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        }
    }

    #[test]
    fn all_to_all_transposes() {
        let n = 4;
        let (res, report) = run_ranks::<Vec<f32>, _, _>(n, |comm| {
            // payload to rank j encodes (my_rank, j)
            let payloads: Vec<Vec<f32>> = (0..n)
                .map(|j| vec![comm.rank() as f32 * 10.0 + j as f32])
                .collect();
            comm.all_to_all(payloads)
        })
        .unwrap();
        for (k, got) in res.iter().enumerate() {
            for (i, msg) in got.iter().enumerate() {
                assert_eq!(msg[0], i as f32 * 10.0 + k as f32);
            }
        }
        // Each rank sends n-1 remote messages of 4 bytes.
        assert_eq!(report.all_to_all_bytes, n * (n - 1) * 4);
    }

    #[test]
    fn all_to_all_wrong_count_errors() {
        let err = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            comm.all_to_all(vec![vec![0.0]])?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(
            err,
            CommError::WrongPayloadCount {
                got: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn all_gather_collects_in_rank_order() {
        let (res, _) =
            run_ranks::<Vec<f32>, _, _>(3, |comm| comm.all_gather(vec![comm.rank() as f32; 2]))
                .unwrap();
        for got in res {
            assert_eq!(got.len(), 3);
            for (i, v) in got.iter().enumerate() {
                assert_eq!(v, &vec![i as f32; 2]);
            }
        }
    }

    #[test]
    fn all_reduce_sum_is_deterministic_and_equal_everywhere() {
        let (res, _) = run_ranks::<Vec<f32>, _, _>(4, |comm| {
            comm.all_reduce(vec![comm.rank() as f32, 1.0], |mut acc, m| {
                for (a, b) in acc.iter_mut().zip(m) {
                    *a += b;
                }
                acc
            })
        })
        .unwrap();
        for got in res {
            assert_eq!(got, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn barrier_synchronizes_without_data() {
        let (res, report) = run_ranks::<Vec<f32>, _, _>(4, |comm| {
            for _ in 0..10 {
                comm.barrier()?;
            }
            Ok(comm.rank())
        })
        .unwrap();
        assert_eq!(res, vec![0, 1, 2, 3]);
        // Barriers use control channels, not metered data channels.
        assert_eq!(report.total_bytes(), 0);
    }

    #[test]
    fn out_of_range_ranks_error() {
        let err = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            comm.send(5, vec![1.0])?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, CommError::RankOutOfRange { rank: 5, .. }));
    }

    #[test]
    fn panicked_rank_is_reported() {
        let err = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
            // Rank 0 does not block on rank 1, so it exits cleanly.
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err, CommError::RankPanicked { rank: 1 });
    }

    #[test]
    fn recv_from_exited_peer_fails_cleanly() {
        let err = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            if comm.rank() == 0 {
                // Peer exits immediately; this receive must fail, not hang.
                comm.recv(1).map(|_| ())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert!(matches!(err, CommError::RecvFailed { src: 1, .. }));
    }

    #[test]
    fn messages_are_fifo_per_pair() {
        let (res, _) = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100 {
                    comm.send(1, vec![i as f32])?;
                }
                Ok(Vec::new())
            } else {
                let mut got = Vec::new();
                for _ in 0..100 {
                    got.push(comm.recv(0)?[0]);
                }
                Ok(got)
            }
        })
        .unwrap();
        let expected: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert_eq!(res[1], expected);
    }

    #[test]
    fn per_collective_report_separates_all_reduce_from_all_gather() {
        let n = 3;
        let (_, report) = run_ranks::<Vec<f32>, _, _>(n, |comm| {
            comm.all_gather(vec![comm.rank() as f32])?;
            comm.all_reduce(vec![1.0f32, 2.0], |mut acc, m| {
                for (a, b) in acc.iter_mut().zip(m) {
                    *a += b;
                }
                acc
            })?;
            Ok(())
        })
        .unwrap();
        // One call per rank for each collective.
        assert_eq!(report.all_gather.calls, n as u64);
        assert_eq!(report.all_reduce.calls, n as u64);
        assert_eq!(report.send_recv.calls, 0);
        assert_eq!(report.all_to_all.calls, 0);
        // AllReduce bytes are its own category, not folded into all_gather:
        // each rank sends n-1 copies of its payload.
        assert_eq!(report.all_gather.bytes, n * (n - 1) * 4);
        assert_eq!(report.all_reduce.bytes, n * (n - 1) * 2 * 4);
        assert_eq!(report.all_gather_bytes, report.all_gather.bytes);
        assert_eq!(
            report.total_bytes(),
            report.all_gather.bytes + report.all_reduce.bytes
        );
        // Wall time was measured for the collectives that ran.
        assert!(report.all_reduce.wall_ns > 0);
        assert!(report.all_gather.wall_ns > 0);
    }

    #[test]
    fn failed_send_records_no_bytes() {
        // Regression: wire bytes must be recorded only on successful
        // delivery, for point-to-point sends and for the sends inside
        // all_to_all / all_gather alike.
        let (_, report) = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            if comm.rank() == 0 {
                // Wait until rank 1 has exited (its receiver is dropped)...
                assert!(matches!(comm.recv(1), Err(CommError::RecvFailed { .. })));
                // ...then every send path must fail before recording bytes.
                assert!(matches!(
                    comm.send(1, vec![1.0; 64]),
                    Err(CommError::SendFailed { dst: 1 })
                ));
                assert!(matches!(
                    comm.all_to_all(vec![vec![2.0; 64], vec![3.0; 64]]),
                    Err(CommError::SendFailed { dst: 1 })
                ));
                assert!(matches!(
                    comm.all_gather(vec![4.0; 64]),
                    Err(CommError::SendFailed { dst: 1 })
                ));
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(report.messages, 0);
        assert_eq!(report.total_bytes(), 0);
        // The failed attempts still count as calls (with wall time).
        assert_eq!(report.send_recv.calls, 1);
        assert_eq!(report.all_to_all.calls, 1);
        assert_eq!(report.all_gather.calls, 1);
    }

    #[test]
    fn timeline_records_comm_and_compute_lanes() {
        let n = 2;
        let (sums, report) = run_ranks::<Vec<f32>, _, _>(n, |comm| {
            let local = comm.time_compute("square", || (comm.rank() as f32) * (comm.rank() as f32));
            let got = comm.send_recv(comm.ring_next(), vec![local], comm.ring_prev())?;
            Ok(got[0])
        })
        .unwrap();
        assert_eq!(sums, vec![1.0, 0.0]);
        let compute: Vec<_> = report
            .timeline
            .iter()
            .filter(|e| e.lane == crate::TimelineLane::Compute)
            .collect();
        let comm_events: Vec<_> = report
            .timeline
            .iter()
            .filter(|e| e.lane == crate::TimelineLane::Comm)
            .collect();
        assert_eq!(compute.len(), n);
        assert!(compute.iter().all(|e| e.label == "square"));
        assert_eq!(comm_events.len(), n);
        assert!(comm_events.iter().all(|e| e.label == "send_recv"));
        // Sorted by start time.
        assert!(report
            .timeline
            .windows(2)
            .all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn results_are_indexed_by_rank() {
        let (res, _) = run_ranks::<Vec<f32>, _, _>(6, |comm| Ok(comm.rank() * 2)).unwrap();
        assert_eq!(res, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn short_recv_timeout_fails_wedged_ring_in_milliseconds() {
        // Deadlock regression: two ranks that only post receives would wait
        // out the 60 s default; the builder's timeout makes the failure
        // immediate. The error must name the starved receive.
        let start = std::time::Instant::now();
        let err = Fabric::new(2)
            .recv_timeout(Duration::from_millis(20))
            .run::<Vec<f32>, _, _>(|comm| comm.recv(comm.ring_prev()).map(|_| ()))
            .unwrap_err();
        // Whichever rank times out first exits and closes its channels, so
        // the other may observe a disconnect rather than its own timeout —
        // either way the wedged run fails in milliseconds.
        assert!(matches!(err, CommError::RecvFailed { .. }), "{err:?}");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "timeout was not shortened"
        );
    }

    #[test]
    fn recv_timeout_is_reported_as_timeout() {
        // Deterministic variant: a 1-ring rank receiving from itself without
        // having sent keeps its own channel open, so the failure must be a
        // genuine timeout.
        let err = Fabric::new(1)
            .recv_timeout(Duration::from_millis(20))
            .run::<Vec<f32>, _, _>(|comm| comm.recv(0).map(|_| ()))
            .unwrap_err();
        assert!(matches!(
            err,
            CommError::RecvFailed {
                src: 0,
                timed_out: true
            }
        ));
    }

    fn ring_plan(n: usize, hops: usize, bytes: usize) -> CommPlan {
        CommPlan::from_ranks(
            (0..n)
                .map(|r| RankPlan {
                    rank: r,
                    ops: (0..hops)
                        .map(|_| CommOp::SendRecv {
                            dst: (r + 1) % n,
                            src: (r + n - 1) % n,
                            send_variant: "payload",
                            recv_variant: "payload",
                            send_bytes: bytes,
                            recv_bytes: bytes,
                        })
                        .collect(),
                })
                .collect(),
        )
    }

    #[test]
    fn checked_fabric_accepts_conforming_ring_and_predicts_traffic() {
        let n = 3;
        let plan = ring_plan(n, n - 1, 8);
        let predicted = plan.predicted_traffic();
        let (_, report) = CheckedFabric::new(plan)
            .run::<Vec<f32>, _, _>(|comm| {
                let mut cur = vec![comm.rank() as f32; 2];
                for _ in 0..n - 1 {
                    cur = comm.send_recv(comm.ring_next(), cur, comm.ring_prev())?;
                }
                Ok(())
            })
            .unwrap();
        predicted.check_report(&report).unwrap();
    }

    #[test]
    fn checked_fabric_rejects_wrong_bytes_naming_rank_and_step() {
        let n = 2;
        let plan = ring_plan(n, 1, 8);
        let err = CheckedFabric::new(plan)
            .run::<Vec<f32>, _, _>(|comm| {
                // Rank 1 sends 3 floats where the plan declares 2.
                let payload = if comm.rank() == 1 {
                    vec![0.0; 3]
                } else {
                    vec![0.0; 2]
                };
                comm.send_recv(comm.ring_next(), payload, comm.ring_prev())?;
                Ok(())
            })
            .unwrap_err();
        match err {
            CommError::PlanViolation { rank, step, detail } => {
                assert_eq!(rank, 1);
                assert_eq!(step, 0);
                assert!(detail.contains("wire bytes"), "{detail}");
            }
            other => panic!("expected PlanViolation, got {other:?}"),
        }
    }

    #[test]
    fn checked_fabric_rejects_undrained_schedule() {
        let n = 2;
        let plan = ring_plan(n, 2, 8);
        let err = CheckedFabric::new(plan)
            .recv_timeout(Duration::from_millis(200))
            .run::<Vec<f32>, _, _>(|comm| {
                // Both ranks do one hop instead of the declared two.
                comm.send_recv(comm.ring_next(), vec![0.0; 2], comm.ring_prev())?;
                Ok(())
            })
            .unwrap_err();
        match err {
            CommError::PlanViolation {
                rank: 0,
                step,
                detail,
            } => {
                assert_eq!(step, 1);
                assert!(detail.contains("1 of 2"), "{detail}");
            }
            other => panic!("expected PlanViolation at rank 0, got {other:?}"),
        }
    }

    #[test]
    fn checked_fabric_rejects_unplanned_op_kind() {
        let plan = ring_plan(2, 1, 8);
        let err = CheckedFabric::new(plan)
            .recv_timeout(Duration::from_millis(200))
            .run::<Vec<f32>, _, _>(|comm| {
                comm.barrier()?;
                Ok(())
            })
            .unwrap_err();
        assert!(
            matches!(err, CommError::PlanViolation { .. }),
            "expected PlanViolation, got {err:?}"
        );
    }

    #[test]
    fn checked_fabric_world_mismatch_is_internal_error() {
        let plan = ring_plan(3, 1, 8);
        let bad = CommPlan {
            world: 2,
            ranks: plan.ranks.clone(),
        };
        let err = CheckedFabric::new(bad)
            .run::<Vec<f32>, _, _>(|_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, CommError::Internal { .. }), "{err:?}");
    }

    #[test]
    fn isend_irecv_ring_matches_blocking_and_records_overlap() {
        let n = 4;
        let (res, report) = run_ranks::<Vec<f32>, _, _>(n, |comm| {
            let mut seen = vec![comm.rank() as f32];
            let mut current = vec![comm.rank() as f32];
            for _ in 0..n - 1 {
                let pending =
                    comm.isend_irecv(comm.ring_next(), current.clone(), comm.ring_prev())?;
                // "Compute" between post and wait; this span must show up
                // as overlapped_ns on the collective.
                std::thread::sleep(Duration::from_millis(2));
                current = pending.wait()?;
                seen.push(current[0]);
            }
            seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
            Ok(seen)
        })
        .unwrap();
        for ranks_seen in res {
            assert_eq!(ranks_seen, vec![0.0, 1.0, 2.0, 3.0]);
        }
        // Same wire accounting as the blocking ring...
        assert_eq!(report.send_recv.calls, (n * (n - 1)) as u64);
        assert_eq!(report.send_recv_bytes, n * (n - 1) * 4);
        // ...plus a nonzero overlapped span on every intermediate hop.
        assert!(report.send_recv.overlapped_ns > 0);
        let overlapped_events = report
            .timeline
            .iter()
            .filter(|e| e.label == "send_recv" && e.overlapped_ns > 0)
            .count();
        assert_eq!(overlapped_events, n * (n - 1));
    }

    #[test]
    fn isend_and_irecv_halves_compose_like_send_and_recv() {
        // Split-handle form: rank 0 isends to 1, rank 1 irecvs from 0.
        let (res, report) = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            if comm.rank() == 0 {
                comm.isend(1, vec![7.0, 8.0])?.wait()?;
                Ok(0.0)
            } else {
                let pending = comm.irecv(0)?;
                let got = pending.wait()?;
                Ok(got[1])
            }
        })
        .unwrap();
        assert_eq!(res, vec![0.0, 8.0]);
        // isend meters exactly like send; irecv records no collective call.
        assert_eq!(report.send_recv.calls, 1);
        assert_eq!(report.send_recv_bytes, 8);
    }

    #[test]
    fn try_complete_progresses_to_completion_without_blocking() {
        let (res, _) = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(Duration::from_millis(5));
                comm.isend(1, vec![3.0])?.wait()?;
                return Ok(3.0);
            }
            let mut pending = comm.irecv(0)?;
            let mut polls = 0u32;
            loop {
                match pending.try_complete()? {
                    Progress::Complete(msg) => {
                        assert!(polls > 0, "first poll should find nothing yet");
                        return Ok(msg[0]);
                    }
                    Progress::Pending(p) => {
                        polls += 1;
                        pending = p;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        })
        .unwrap();
        assert_eq!(res, vec![3.0, 3.0]);
    }

    #[test]
    fn in_flight_irecv_honors_fabric_timeout_naming_peer() {
        // Satellite of the deadlock regression: a posted-but-never-matched
        // irecv must honor the fabric timeout from its *post* time and name
        // the awaited peer, not hang in wait(). 1-rank form keeps the
        // channel open so the failure is a genuine timeout.
        let start = std::time::Instant::now();
        let err = Fabric::new(1)
            .recv_timeout(Duration::from_millis(20))
            .run::<Vec<f32>, _, _>(|comm| {
                let pending = comm.irecv(0)?;
                // Long compute after posting must not extend the deadline.
                std::thread::sleep(Duration::from_millis(30));
                pending.wait().map(|_| ())
            })
            .unwrap_err();
        assert!(matches!(
            err,
            CommError::RecvFailed {
                src: 0,
                timed_out: true
            }
        ));
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "pending receive did not honor the fabric timeout"
        );
    }

    #[test]
    fn wedged_double_buffered_ring_fails_in_milliseconds() {
        // Two ranks post irecvs and never send: both pending receives must
        // time out on the short fabric deadline instead of deadlocking.
        let start = std::time::Instant::now();
        let err = Fabric::new(2)
            .recv_timeout(Duration::from_millis(20))
            .run::<Vec<f32>, _, _>(|comm| {
                let pending = comm.irecv(comm.ring_prev())?;
                pending.wait().map(|_| ())
            })
            .unwrap_err();
        assert!(matches!(err, CommError::RecvFailed { .. }), "{err:?}");
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn try_complete_reports_timeout_past_deadline() {
        let err = Fabric::new(1)
            .recv_timeout(Duration::from_millis(10))
            .run::<Vec<f32>, _, _>(|comm| {
                let mut pending = comm.irecv(0)?;
                loop {
                    match pending.try_complete()? {
                        Progress::Complete(_) => return Ok(()),
                        Progress::Pending(p) => {
                            pending = p;
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                }
            })
            .unwrap_err();
        assert!(matches!(
            err,
            CommError::RecvFailed {
                src: 0,
                timed_out: true
            }
        ));
    }

    #[test]
    fn irecv_rejects_out_of_range_peer() {
        let err =
            run_ranks::<Vec<f32>, _, _>(2, |comm| comm.irecv(5)?.wait().map(|_| ())).unwrap_err();
        assert!(matches!(err, CommError::RankOutOfRange { rank: 5, .. }));
    }

    #[test]
    fn link_model_delays_blocking_hops_but_hides_under_compute() {
        // With a modeled 15 ms wire, a blocking self-hop pays the latency
        // in full; an overlapped hop whose compute exceeds the latency
        // hides it (paper §3.3 overlap condition).
        let link = LinkModel::latency_only(Duration::from_millis(15));
        let start = std::time::Instant::now();
        run_ranks::<Vec<f32>, _, _>(1, |_| Ok(())).unwrap();
        let (_, report) = Fabric::new(1)
            .link(link)
            .run::<Vec<f32>, _, _>(|comm| {
                comm.send_recv(0, vec![1.0], 0)?;
                Ok(())
            })
            .unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(15),
            "blocking hop must pay the modeled wire latency"
        );
        assert_eq!(report.send_recv.overlapped_ns, 0);

        let (_, report) = Fabric::new(1)
            .link(link)
            .run::<Vec<f32>, _, _>(|comm| {
                let pending = comm.isend_irecv(0, vec![1.0], 0)?;
                std::thread::sleep(Duration::from_millis(20));
                pending.wait()?;
                Ok(())
            })
            .unwrap();
        // The 20 ms compute span hides at least the 15 ms wire time.
        assert!(report.send_recv.overlapped_ns >= 15_000_000);
    }

    #[test]
    fn link_model_charges_bandwidth_per_byte() {
        let link = LinkModel {
            latency: Duration::ZERO,
            gib_per_s: 1.0,
        };
        // 1 GiB/s over 4 MiB ≈ 3.9 ms; delay() must scale with bytes.
        let small = link.delay(1024);
        let big = link.delay(4 * 1024 * 1024);
        assert!(big > small);
        assert!(big >= Duration::from_millis(3));
        // Latency-only links ignore size.
        let flat = LinkModel::latency_only(Duration::from_micros(5));
        assert_eq!(flat.delay(1), flat.delay(1 << 30));
    }

    #[test]
    fn checked_fabric_validates_nonblocking_ops_at_post_time() {
        let n = 3;
        let plan = ring_plan(n, n - 1, 8);
        let predicted = plan.predicted_traffic();
        let (_, report) = CheckedFabric::new(plan)
            .run::<Vec<f32>, _, _>(|comm| {
                let mut cur = vec![comm.rank() as f32; 2];
                for _ in 0..n - 1 {
                    let pending =
                        comm.isend_irecv(comm.ring_next(), cur.clone(), comm.ring_prev())?;
                    cur = pending.wait()?;
                }
                Ok(())
            })
            .unwrap();
        predicted.check_report(&report).unwrap();

        // A wrong-sized payload is rejected when the op is *posted*, so the
        // error carries the posting step even though wait() never ran.
        let plan = ring_plan(2, 1, 8);
        let err = CheckedFabric::new(plan)
            .run::<Vec<f32>, _, _>(|comm| {
                let payload = if comm.rank() == 1 {
                    vec![0.0; 3]
                } else {
                    vec![0.0; 2]
                };
                let pending = comm.isend_irecv(comm.ring_next(), payload, comm.ring_prev())?;
                pending.wait()?;
                Ok(())
            })
            .unwrap_err();
        match err {
            CommError::PlanViolation { rank, step, detail } => {
                assert_eq!(rank, 1);
                assert_eq!(step, 0);
                assert!(detail.contains("wire bytes"), "{detail}");
            }
            other => panic!("expected PlanViolation, got {other:?}"),
        }
    }

    #[test]
    fn communicator_pool_is_lazy_shared_and_sized() {
        let (res, _) = Fabric::new(2)
            .compute_pool(3)
            .run::<Vec<f32>, _, _>(|comm| {
                let pool = comm.pool();
                assert!(std::ptr::eq(pool, comm.pool()), "pool must be cached");
                Ok(pool.parallelism())
            })
            .unwrap();
        assert_eq!(res, vec![3, 3]);
    }
}
