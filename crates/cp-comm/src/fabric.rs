//! Rank spawning and the per-rank [`Communicator`] handle.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::stats::{Collective, TimedEvent, TimelineLane};
use crate::{CommError, TrafficReport, TrafficStats, Wire};

/// How long a blocked receive waits before failing. Generous enough for any
/// legitimate collective in the test suite, short enough that a genuinely
/// wedged ring fails the test run instead of hanging it.
const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// A rank's handle to the fabric: point-to-point sends/receives plus the
/// collectives the paper's algorithms use (`SendRecv` ring steps,
/// `All2All`, `AllGather`, `AllReduce`, barrier).
///
/// One `Communicator` is handed to each rank closure by [`run_ranks`]. All
/// channels are unbounded, so `send` never blocks — which is exactly the
/// property that makes the symmetric ring schedule (every rank sends, then
/// receives) deadlock-free, mirroring NCCL's buffered `SendRecv`.
#[derive(Debug)]
pub struct Communicator<M: Wire> {
    rank: usize,
    world: usize,
    /// `senders[dst]` delivers to rank `dst`'s `receivers[self.rank]`.
    senders: Vec<Sender<M>>,
    /// `receivers[src]` yields messages sent by rank `src`.
    receivers: Vec<Receiver<M>>,
    ctrl_senders: Vec<Sender<()>>,
    ctrl_receivers: Vec<Receiver<()>>,
    stats: Arc<TrafficStats>,
}

impl<M: Wire> Communicator<M> {
    /// This rank's index in `0..world_size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// The next rank around the ring (`rank + 1 mod N`).
    pub fn ring_next(&self) -> usize {
        (self.rank + 1) % self.world
    }

    /// The previous rank around the ring (`rank - 1 mod N`).
    pub fn ring_prev(&self) -> usize {
        (self.rank + self.world - 1) % self.world
    }

    fn check_rank(&self, r: usize) -> Result<(), CommError> {
        if r >= self.world {
            return Err(CommError::RankOutOfRange {
                rank: r,
                world_size: self.world,
            });
        }
        Ok(())
    }

    /// Delivers `msg` to rank `dst`, attributing its wire bytes to
    /// `collective`. Bytes are recorded only after the send succeeded, so a
    /// failed delivery never inflates the traffic accounting.
    fn deliver(&self, dst: usize, msg: M, collective: Collective) -> Result<(), CommError> {
        self.check_rank(dst)?;
        let bytes = msg.wire_bytes();
        self.senders[dst]
            .send(msg)
            .map_err(|_| CommError::SendFailed { dst })?;
        self.stats.record_bytes(collective, bytes);
        Ok(())
    }

    /// Blocking receive with the fabric timeout; no accounting (bytes are
    /// metered on the sending side).
    fn receive(&self, src: usize) -> Result<M, CommError> {
        self.check_rank(src)?;
        self.receivers[src]
            .recv_timeout(RECV_TIMEOUT)
            .map_err(|e| CommError::RecvFailed {
                src,
                timed_out: matches!(e, RecvTimeoutError::Timeout),
            })
    }

    /// Times `f` as one call of `collective` on this rank, recording wall
    /// time and a timeline event whether it succeeds or fails.
    fn timed<R>(
        &self,
        collective: Collective,
        f: impl FnOnce() -> Result<R, CommError>,
    ) -> Result<R, CommError> {
        let start = self.stats.now_ns();
        let out = f();
        let dur = self.stats.now_ns().saturating_sub(start);
        self.stats.record_call(collective, dur);
        self.stats.record_event(TimedEvent {
            rank: self.rank,
            lane: TimelineLane::Comm,
            label: collective.name().to_string(),
            start_ns: start,
            dur_ns: dur,
        });
        out
    }

    /// Runs `f` and records it as a named compute interval on this rank's
    /// measured timeline, so traces show compute and communication side by
    /// side (the paper's overlap diagnosis, on measured wall time).
    pub fn time_compute<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        let start = self.stats.now_ns();
        let out = f();
        let dur = self.stats.now_ns().saturating_sub(start);
        self.stats.record_event(TimedEvent {
            rank: self.rank,
            lane: TimelineLane::Compute,
            label: label.to_string(),
            start_ns: start,
            dur_ns: dur,
        });
        out
    }

    /// Sends a message to rank `dst`. Never blocks (channels are unbounded).
    ///
    /// # Errors
    ///
    /// [`CommError::RankOutOfRange`] for a bad destination, or
    /// [`CommError::SendFailed`] if the peer has already exited.
    pub fn send(&self, dst: usize, msg: M) -> Result<(), CommError> {
        self.timed(Collective::SendRecv, || {
            self.deliver(dst, msg, Collective::SendRecv)
        })
    }

    /// Receives the next message from rank `src`, blocking up to an internal
    /// timeout.
    ///
    /// # Errors
    ///
    /// [`CommError::RankOutOfRange`] for a bad source, or
    /// [`CommError::RecvFailed`] on timeout / peer exit.
    pub fn recv(&self, src: usize) -> Result<M, CommError> {
        self.receive(src)
    }

    /// One ring step: send `msg` to `dst`, then receive from `src`.
    ///
    /// This is the NCCL `SendRecv` the paper's ring loop issues every
    /// iteration. The send is buffered, so all ranks can post sends before
    /// any posts its receive. Counted as a single `send_recv` call whose
    /// wall time spans both halves.
    ///
    /// # Errors
    ///
    /// Propagates [`Communicator::send`] / [`Communicator::recv`] errors.
    pub fn send_recv(&self, dst: usize, msg: M, src: usize) -> Result<M, CommError> {
        self.timed(Collective::SendRecv, || {
            self.deliver(dst, msg, Collective::SendRecv)?;
            self.receive(src)
        })
    }

    /// All-to-all exchange: `payloads[j]` is delivered to rank `j`; the
    /// returned vector holds, at index `i`, the payload rank `i` addressed
    /// to this rank (this rank's own payload is moved through directly).
    ///
    /// # Errors
    ///
    /// [`CommError::WrongPayloadCount`] if `payloads.len() != world_size`,
    /// plus any send/receive failure.
    pub fn all_to_all(&self, payloads: Vec<M>) -> Result<Vec<M>, CommError> {
        if payloads.len() != self.world {
            return Err(CommError::WrongPayloadCount {
                got: payloads.len(),
                expected: self.world,
            });
        }
        self.timed(Collective::AllToAll, || {
            let mut own: Option<M> = None;
            for (dst, msg) in payloads.into_iter().enumerate() {
                if dst == self.rank {
                    own = Some(msg);
                } else {
                    self.deliver(dst, msg, Collective::AllToAll)?;
                }
            }
            let mut out = Vec::with_capacity(self.world);
            for src in 0..self.world {
                if src == self.rank {
                    out.push(own.take().expect("own payload set above"));
                } else {
                    out.push(self.receive(src)?);
                }
            }
            Ok(out)
        })
    }

    /// Gathers every rank's payload; index `i` of the result is rank `i`'s
    /// contribution on every rank.
    ///
    /// # Errors
    ///
    /// Propagates send/receive failures.
    pub fn all_gather(&self, payload: M) -> Result<Vec<M>, CommError>
    where
        M: Clone,
    {
        self.timed(Collective::AllGather, || {
            self.gather_as(payload, Collective::AllGather)
        })
    }

    /// The gather exchange, attributing traffic to `collective` so that
    /// `all_reduce` (built on the same pattern) is accounted separately.
    fn gather_as(&self, payload: M, collective: Collective) -> Result<Vec<M>, CommError>
    where
        M: Clone,
    {
        for dst in 0..self.world {
            if dst == self.rank {
                continue;
            }
            self.deliver(dst, payload.clone(), collective)?;
        }
        let mut out = Vec::with_capacity(self.world);
        for src in 0..self.world {
            if src == self.rank {
                out.push(payload.clone());
            } else {
                out.push(self.receive(src)?);
            }
        }
        Ok(out)
    }

    /// All-reduce: gathers all payloads and folds them in rank order with
    /// `combine`, so every rank computes an identical, deterministic result.
    ///
    /// Accounted as its own `all_reduce` collective (calls, bytes, wall
    /// time), distinct from `all_gather`, even though the exchange pattern
    /// is the same.
    ///
    /// # Errors
    ///
    /// Propagates the underlying gather's failures.
    pub fn all_reduce<F>(&self, payload: M, combine: F) -> Result<M, CommError>
    where
        M: Clone,
        F: FnMut(M, &M) -> M,
    {
        self.timed(Collective::AllReduce, || {
            let gathered = self.gather_as(payload, Collective::AllReduce)?;
            let mut iter = gathered.iter();
            let first = iter.next().expect("world_size >= 1").clone();
            Ok(iter.fold(first, combine))
        })
    }

    /// Blocks until every rank has reached the barrier.
    ///
    /// # Errors
    ///
    /// Propagates control-channel failures (peer exit / timeout).
    pub fn barrier(&self) -> Result<(), CommError> {
        for dst in 0..self.world {
            if dst == self.rank {
                continue;
            }
            self.ctrl_senders[dst]
                .send(())
                .map_err(|_| CommError::SendFailed { dst })?;
        }
        for src in 0..self.world {
            if src == self.rank {
                continue;
            }
            self.ctrl_receivers[src]
                .recv_timeout(RECV_TIMEOUT)
                .map_err(|e| CommError::RecvFailed {
                    src,
                    timed_out: matches!(e, RecvTimeoutError::Timeout),
                })?;
        }
        Ok(())
    }
}

/// Builds the full channel mesh for `world` ranks.
fn build_communicators<M: Wire>(world: usize, stats: &Arc<TrafficStats>) -> Vec<Communicator<M>> {
    // data_tx[src][dst] sends from src to dst; data_rx[dst][src] receives.
    let mut data_tx: Vec<Vec<Option<Sender<M>>>> = (0..world)
        .map(|_| (0..world).map(|_| None).collect())
        .collect();
    let mut data_rx: Vec<Vec<Option<Receiver<M>>>> = (0..world)
        .map(|_| (0..world).map(|_| None).collect())
        .collect();
    let mut ctrl_tx: Vec<Vec<Option<Sender<()>>>> = (0..world)
        .map(|_| (0..world).map(|_| None).collect())
        .collect();
    let mut ctrl_rx: Vec<Vec<Option<Receiver<()>>>> = (0..world)
        .map(|_| (0..world).map(|_| None).collect())
        .collect();
    for src in 0..world {
        for dst in 0..world {
            let (tx, rx) = unbounded::<M>();
            data_tx[src][dst] = Some(tx);
            data_rx[dst][src] = Some(rx);
            let (ctx, crx) = unbounded::<()>();
            ctrl_tx[src][dst] = Some(ctx);
            ctrl_rx[dst][src] = Some(crx);
        }
    }
    let mut comms = Vec::with_capacity(world);
    for rank in 0..world {
        comms.push(Communicator {
            rank,
            world,
            senders: data_tx[rank]
                .iter_mut()
                .map(|s| s.take().unwrap())
                .collect(),
            receivers: data_rx[rank]
                .iter_mut()
                .map(|r| r.take().unwrap())
                .collect(),
            ctrl_senders: ctrl_tx[rank]
                .iter_mut()
                .map(|s| s.take().unwrap())
                .collect(),
            ctrl_receivers: ctrl_rx[rank]
                .iter_mut()
                .map(|r| r.take().unwrap())
                .collect(),
            stats: Arc::clone(stats),
        });
    }
    comms
}

/// Spawns `world` rank threads, runs `f` on each with its [`Communicator`],
/// and returns the per-rank results (index = rank) plus a traffic report.
///
/// Mirrors launching one process per host in the paper's deployment. The
/// call joins all threads before returning; a rank returning an error or
/// panicking fails the whole run (the first error in rank order is
/// returned).
///
/// # Errors
///
/// [`CommError::EmptyGroup`] for `world == 0`; otherwise the first rank
/// error, or [`CommError::RankPanicked`] if a rank closure panicked.
///
/// # Example
///
/// ```
/// use cp_comm::run_ranks;
///
/// # fn main() -> Result<(), cp_comm::CommError> {
/// let (sums, _) = run_ranks::<Vec<f32>, _, _>(3, |comm| {
///     let total = comm.all_reduce(vec![comm.rank() as f32], |mut acc, m| {
///         for (a, b) in acc.iter_mut().zip(m) { *a += b; }
///         acc
///     })?;
///     Ok(total[0])
/// })?;
/// assert_eq!(sums, vec![3.0, 3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
pub fn run_ranks<M, T, F>(world: usize, f: F) -> Result<(Vec<T>, TrafficReport), CommError>
where
    M: Wire,
    T: Send,
    F: Fn(&Communicator<M>) -> Result<T, CommError> + Sync,
{
    if world == 0 {
        return Err(CommError::EmptyGroup);
    }
    let stats = TrafficStats::new();
    let comms = build_communicators::<M>(world, &stats);

    let results: Vec<Result<Result<T, CommError>, usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                scope.spawn(move || f(&comm))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| h.join().map_err(|_| rank))
            .collect()
    });

    let mut out = Vec::with_capacity(world);
    for r in results {
        match r {
            Ok(Ok(v)) => out.push(v),
            Ok(Err(e)) => return Err(e),
            Err(rank) => return Err(CommError::RankPanicked { rank }),
        }
    }
    Ok((out, stats.report()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_group_works() {
        let (res, report) = run_ranks::<Vec<f32>, _, _>(1, |comm| {
            assert_eq!(comm.ring_next(), 0);
            assert_eq!(comm.ring_prev(), 0);
            // Self-send around a 1-ring.
            let got = comm.send_recv(0, vec![42.0], 0)?;
            Ok(got[0])
        })
        .unwrap();
        assert_eq!(res, vec![42.0]);
        assert_eq!(report.send_recv_bytes, 4);
    }

    #[test]
    fn empty_group_is_rejected() {
        let err = run_ranks::<Vec<f32>, _, _>(0, |_| Ok(())).unwrap_err();
        assert_eq!(err, CommError::EmptyGroup);
    }

    #[test]
    fn ring_rotation_n_minus_1_times_visits_all() {
        // Classic ring-attention schedule: after N-1 rotations each rank has
        // seen every other rank's payload exactly once.
        let n = 5;
        let (res, _) = run_ranks::<Vec<f32>, _, _>(n, |comm| {
            let mut seen = vec![comm.rank() as f32];
            let mut current = vec![comm.rank() as f32];
            for _ in 0..n - 1 {
                current = comm.send_recv(comm.ring_next(), current, comm.ring_prev())?;
                seen.push(current[0]);
            }
            seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
            Ok(seen)
        })
        .unwrap();
        for ranks_seen in res {
            assert_eq!(ranks_seen, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        }
    }

    #[test]
    fn all_to_all_transposes() {
        let n = 4;
        let (res, report) = run_ranks::<Vec<f32>, _, _>(n, |comm| {
            // payload to rank j encodes (my_rank, j)
            let payloads: Vec<Vec<f32>> = (0..n)
                .map(|j| vec![comm.rank() as f32 * 10.0 + j as f32])
                .collect();
            comm.all_to_all(payloads)
        })
        .unwrap();
        for (k, got) in res.iter().enumerate() {
            for (i, msg) in got.iter().enumerate() {
                assert_eq!(msg[0], i as f32 * 10.0 + k as f32);
            }
        }
        // Each rank sends n-1 remote messages of 4 bytes.
        assert_eq!(report.all_to_all_bytes, n * (n - 1) * 4);
    }

    #[test]
    fn all_to_all_wrong_count_errors() {
        let err = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            comm.all_to_all(vec![vec![0.0]])?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(
            err,
            CommError::WrongPayloadCount {
                got: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn all_gather_collects_in_rank_order() {
        let (res, _) =
            run_ranks::<Vec<f32>, _, _>(3, |comm| comm.all_gather(vec![comm.rank() as f32; 2]))
                .unwrap();
        for got in res {
            assert_eq!(got.len(), 3);
            for (i, v) in got.iter().enumerate() {
                assert_eq!(v, &vec![i as f32; 2]);
            }
        }
    }

    #[test]
    fn all_reduce_sum_is_deterministic_and_equal_everywhere() {
        let (res, _) = run_ranks::<Vec<f32>, _, _>(4, |comm| {
            comm.all_reduce(vec![comm.rank() as f32, 1.0], |mut acc, m| {
                for (a, b) in acc.iter_mut().zip(m) {
                    *a += b;
                }
                acc
            })
        })
        .unwrap();
        for got in res {
            assert_eq!(got, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn barrier_synchronizes_without_data() {
        let (res, report) = run_ranks::<Vec<f32>, _, _>(4, |comm| {
            for _ in 0..10 {
                comm.barrier()?;
            }
            Ok(comm.rank())
        })
        .unwrap();
        assert_eq!(res, vec![0, 1, 2, 3]);
        // Barriers use control channels, not metered data channels.
        assert_eq!(report.total_bytes(), 0);
    }

    #[test]
    fn out_of_range_ranks_error() {
        let err = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            comm.send(5, vec![1.0])?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, CommError::RankOutOfRange { rank: 5, .. }));
    }

    #[test]
    fn panicked_rank_is_reported() {
        let err = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
            // Rank 0 does not block on rank 1, so it exits cleanly.
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err, CommError::RankPanicked { rank: 1 });
    }

    #[test]
    fn recv_from_exited_peer_fails_cleanly() {
        let err = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            if comm.rank() == 0 {
                // Peer exits immediately; this receive must fail, not hang.
                comm.recv(1).map(|_| ())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert!(matches!(err, CommError::RecvFailed { src: 1, .. }));
    }

    #[test]
    fn messages_are_fifo_per_pair() {
        let (res, _) = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100 {
                    comm.send(1, vec![i as f32])?;
                }
                Ok(Vec::new())
            } else {
                let mut got = Vec::new();
                for _ in 0..100 {
                    got.push(comm.recv(0)?[0]);
                }
                Ok(got)
            }
        })
        .unwrap();
        let expected: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert_eq!(res[1], expected);
    }

    #[test]
    fn per_collective_report_separates_all_reduce_from_all_gather() {
        let n = 3;
        let (_, report) = run_ranks::<Vec<f32>, _, _>(n, |comm| {
            comm.all_gather(vec![comm.rank() as f32])?;
            comm.all_reduce(vec![1.0f32, 2.0], |mut acc, m| {
                for (a, b) in acc.iter_mut().zip(m) {
                    *a += b;
                }
                acc
            })?;
            Ok(())
        })
        .unwrap();
        // One call per rank for each collective.
        assert_eq!(report.all_gather.calls, n as u64);
        assert_eq!(report.all_reduce.calls, n as u64);
        assert_eq!(report.send_recv.calls, 0);
        assert_eq!(report.all_to_all.calls, 0);
        // AllReduce bytes are its own category, not folded into all_gather:
        // each rank sends n-1 copies of its payload.
        assert_eq!(report.all_gather.bytes, n * (n - 1) * 4);
        assert_eq!(report.all_reduce.bytes, n * (n - 1) * 2 * 4);
        assert_eq!(report.all_gather_bytes, report.all_gather.bytes);
        assert_eq!(
            report.total_bytes(),
            report.all_gather.bytes + report.all_reduce.bytes
        );
        // Wall time was measured for the collectives that ran.
        assert!(report.all_reduce.wall_ns > 0);
        assert!(report.all_gather.wall_ns > 0);
    }

    #[test]
    fn failed_send_records_no_bytes() {
        // Regression: wire bytes must be recorded only on successful
        // delivery, for point-to-point sends and for the sends inside
        // all_to_all / all_gather alike.
        let (_, report) = run_ranks::<Vec<f32>, _, _>(2, |comm| {
            if comm.rank() == 0 {
                // Wait until rank 1 has exited (its receiver is dropped)...
                assert!(matches!(comm.recv(1), Err(CommError::RecvFailed { .. })));
                // ...then every send path must fail before recording bytes.
                assert!(matches!(
                    comm.send(1, vec![1.0; 64]),
                    Err(CommError::SendFailed { dst: 1 })
                ));
                assert!(matches!(
                    comm.all_to_all(vec![vec![2.0; 64], vec![3.0; 64]]),
                    Err(CommError::SendFailed { dst: 1 })
                ));
                assert!(matches!(
                    comm.all_gather(vec![4.0; 64]),
                    Err(CommError::SendFailed { dst: 1 })
                ));
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(report.messages, 0);
        assert_eq!(report.total_bytes(), 0);
        // The failed attempts still count as calls (with wall time).
        assert_eq!(report.send_recv.calls, 1);
        assert_eq!(report.all_to_all.calls, 1);
        assert_eq!(report.all_gather.calls, 1);
    }

    #[test]
    fn timeline_records_comm_and_compute_lanes() {
        let n = 2;
        let (sums, report) = run_ranks::<Vec<f32>, _, _>(n, |comm| {
            let local = comm.time_compute("square", || (comm.rank() as f32) * (comm.rank() as f32));
            let got = comm.send_recv(comm.ring_next(), vec![local], comm.ring_prev())?;
            Ok(got[0])
        })
        .unwrap();
        assert_eq!(sums, vec![1.0, 0.0]);
        let compute: Vec<_> = report
            .timeline
            .iter()
            .filter(|e| e.lane == crate::TimelineLane::Compute)
            .collect();
        let comm_events: Vec<_> = report
            .timeline
            .iter()
            .filter(|e| e.lane == crate::TimelineLane::Comm)
            .collect();
        assert_eq!(compute.len(), n);
        assert!(compute.iter().all(|e| e.label == "square"));
        assert_eq!(comm_events.len(), n);
        assert!(comm_events.iter().all(|e| e.label == "send_recv"));
        // Sorted by start time.
        assert!(report
            .timeline
            .windows(2)
            .all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn results_are_indexed_by_rank() {
        let (res, _) = run_ranks::<Vec<f32>, _, _>(6, |comm| Ok(comm.rank() * 2)).unwrap();
        assert_eq!(res, vec![0, 2, 4, 6, 8, 10]);
    }
}
