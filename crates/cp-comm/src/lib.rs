//! A thread-based message-passing fabric standing in for NCCL in the
//! context-parallel inference reproduction.
//!
//! The paper runs each CP rank on one host and connects ranks with NCCL
//! `SendRecv` rings, `All2All` and `AllReduce` over RDMA or TCP. Here every
//! rank is a real OS thread and the collectives are implemented over
//! crossbeam channels — the ring algorithms' *correctness* depends only on
//! message-passing semantics, so running them on threads exercises the same
//! concurrency structure (including deadlock-freedom of the ring schedule)
//! without GPUs.
//!
//! Every payload type implements [`Wire`] so the fabric can meter traffic;
//! [`TrafficReport`] exposes per-collective call counts, byte counts
//! (successful deliveries only) and wall time — with `AllReduce` accounted
//! separately from the `AllGather` it is built on — which the test suite
//! checks against the paper's communication-cost formulas (Table 2). The
//! report also carries a measured per-rank timeline of comm and
//! [`Communicator::time_compute`] intervals for trace export.
//!
//! # Example
//!
//! ```
//! use cp_comm::run_ranks;
//!
//! # fn main() -> Result<(), cp_comm::CommError> {
//! // Rotate a value once around a 4-rank ring.
//! let (results, report) = run_ranks::<Vec<f32>, _, _>(4, |comm| {
//!     let msg = vec![comm.rank() as f32];
//!     let got = comm.send_recv(comm.ring_next(), msg, comm.ring_prev())?;
//!     Ok(got[0])
//! })?;
//! assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
//! assert_eq!(report.send_recv_bytes, 4 * 4); // four f32 messages
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fabric;
mod plan;
mod stats;
mod wire;

pub use error::CommError;
pub use fabric::{
    run_ranks, CheckedFabric, Communicator, Fabric, LinkModel, LinkPolicy, PendingRecv,
    PendingSend, Progress, Topology, DEFAULT_RECV_TIMEOUT,
};
pub use plan::{CommOp, CommPlan, PredictedCollective, PredictedTraffic, RankPlan};
pub use stats::{CollectiveReport, TimedEvent, TimelineLane, TrafficReport, TrafficStats};
pub use wire::Wire;
