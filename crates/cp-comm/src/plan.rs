//! Declared communication schedules (`CommOp` plans) and the runtime
//! sanitizer that validates live fabric traffic against them.
//!
//! The paper's ring algorithms are deadlock-free only because every rank's
//! send/recv schedule matches its peers' — a property that used to live in
//! comments. A [`CommPlan`] makes the schedule *data*: one [`RankPlan`] per
//! rank, each a sequence of [`CommOp`]s carrying peer ranks, the expected
//! message variant (from [`crate::Wire::wire_variant`]) and wire byte
//! counts (from [`crate::Wire::wire_bytes`]). Two consumers check it:
//!
//! * the `cp-verify` model checker proves plan-level properties offline
//!   (send/recv matching over all interleavings, deadlock-freedom,
//!   variant agreement, wire-byte conservation), and
//! * [`crate::CheckedFabric`] replays the plan against live traffic at
//!   runtime (TSan-style): every collective a rank issues must be the next
//!   op in its plan with matching peers, variants and bytes, and every rank
//!   must have drained its plan when it exits.

use crate::CommError;

/// One declared communication operation in a rank's schedule.
///
/// Peer indices are absolute ranks. `Vec` fields of collective ops are
/// indexed by peer rank and must have exactly `world` entries; the entry at
/// the owning rank describes the self-payload (kept locally, never metered).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommOp {
    /// A buffered ring step: send to `dst`, then receive from `src`
    /// (NCCL `SendRecv`).
    SendRecv {
        /// Destination rank of the send half.
        dst: usize,
        /// Source rank of the receive half.
        src: usize,
        /// Expected variant of the sent message.
        send_variant: &'static str,
        /// Expected variant of the received message.
        recv_variant: &'static str,
        /// Wire bytes of the sent message.
        send_bytes: usize,
        /// Wire bytes of the received message.
        recv_bytes: usize,
    },
    /// A lone buffered send to `dst` (no paired receive).
    Send {
        /// Destination rank.
        dst: usize,
        /// Expected variant of the sent message.
        variant: &'static str,
        /// Wire bytes of the sent message.
        bytes: usize,
    },
    /// A lone blocking receive from `src`.
    Recv {
        /// Source rank.
        src: usize,
        /// Expected variant of the received message.
        variant: &'static str,
        /// Wire bytes of the received message.
        bytes: usize,
    },
    /// An `All2All`: payload `j` goes to rank `j`, one payload arrives from
    /// every rank.
    AllToAll {
        /// Variant shared by all payloads of the exchange.
        variant: &'static str,
        /// Wire bytes of the payload sent to each rank.
        send_bytes: Vec<usize>,
        /// Wire bytes of the payload received from each rank.
        recv_bytes: Vec<usize>,
    },
    /// An `AllGather`: one payload broadcast to every peer, one collected
    /// from each.
    AllGather {
        /// Variant of every payload in the exchange.
        variant: &'static str,
        /// Wire bytes of this rank's broadcast payload.
        send_bytes: usize,
        /// Wire bytes of the payload received from each rank.
        recv_bytes: Vec<usize>,
    },
    /// An `AllReduce` (gather + deterministic fold); accounted separately
    /// from `AllGather` by the fabric.
    AllReduce {
        /// Variant of every payload in the exchange.
        variant: &'static str,
        /// Wire bytes of this rank's contribution.
        send_bytes: usize,
        /// Wire bytes of the payload received from each rank.
        recv_bytes: Vec<usize>,
    },
    /// A control-channel barrier (no metered data traffic).
    Barrier,
}

impl CommOp {
    /// Short kind tag used in violation messages and structural checks.
    pub fn kind(&self) -> &'static str {
        match self {
            CommOp::SendRecv { .. } => "send_recv",
            CommOp::Send { .. } => "send",
            CommOp::Recv { .. } => "recv",
            CommOp::AllToAll { .. } => "all_to_all",
            CommOp::AllGather { .. } => "all_gather",
            CommOp::AllReduce { .. } => "all_reduce",
            CommOp::Barrier => "barrier",
        }
    }
}

/// The declared schedule of one rank: the exact sequence of fabric
/// operations it will issue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPlan {
    /// The rank this schedule belongs to.
    pub rank: usize,
    /// Operations in program order.
    pub ops: Vec<CommOp>,
}

/// A full communication plan: one [`RankPlan`] per rank of a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommPlan {
    /// Number of ranks in the group.
    pub world: usize,
    /// Per-rank schedules, indexed by rank.
    pub ranks: Vec<RankPlan>,
}

impl CommPlan {
    /// Assembles a plan from per-rank schedules, with `world` equal to the
    /// number of schedules. Rank fields are rewritten to match positions.
    pub fn from_ranks(mut ranks: Vec<RankPlan>) -> Self {
        for (i, r) in ranks.iter_mut().enumerate() {
            r.rank = i;
        }
        CommPlan {
            world: ranks.len(),
            ranks,
        }
    }

    /// The traffic a clean execution of this plan would produce, metered
    /// exactly the way [`crate::TrafficStats`] meters live traffic: calls
    /// counted per issuing rank, bytes on successful sender-side delivery
    /// only, self-payloads of `all_to_all`/`all_gather`/`all_reduce` moved
    /// locally and never metered. A point-to-point `SendRecv` self-send
    /// (world of 1) *is* metered, matching the fabric.
    pub fn predicted_traffic(&self) -> PredictedTraffic {
        let mut p = PredictedTraffic::default();
        for plan in &self.ranks {
            for op in &plan.ops {
                match op {
                    CommOp::SendRecv { send_bytes, .. } => {
                        p.send_recv.calls += 1;
                        p.send_recv.bytes += send_bytes;
                        p.messages += 1;
                    }
                    CommOp::Send { bytes, .. } => {
                        p.send_recv.calls += 1;
                        p.send_recv.bytes += bytes;
                        p.messages += 1;
                    }
                    // A bare receive is not a collective call of its own:
                    // the fabric meters bytes on the sending side.
                    CommOp::Recv { .. } => {}
                    CommOp::AllToAll { send_bytes, .. } => {
                        p.all_to_all.calls += 1;
                        for (dst, b) in send_bytes.iter().enumerate() {
                            if dst != plan.rank {
                                p.all_to_all.bytes += b;
                                p.messages += 1;
                            }
                        }
                    }
                    CommOp::AllGather { send_bytes, .. } => {
                        p.all_gather.calls += 1;
                        let peers = self.world.saturating_sub(1);
                        p.all_gather.bytes += send_bytes * peers;
                        p.messages += peers as u64;
                    }
                    CommOp::AllReduce { send_bytes, .. } => {
                        p.all_reduce.calls += 1;
                        let peers = self.world.saturating_sub(1);
                        p.all_reduce.bytes += send_bytes * peers;
                        p.messages += peers as u64;
                    }
                    CommOp::Barrier => {}
                }
            }
        }
        p
    }
}

/// Predicted calls and bytes for one collective category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictedCollective {
    /// Calls across all ranks.
    pub calls: u64,
    /// Sender-side metered wire bytes across all ranks.
    pub bytes: usize,
}

/// The [`crate::TrafficReport`] a clean execution of a plan would produce
/// (counts and bytes; wall time is inherently measured, not predicted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredictedTraffic {
    /// Total point-to-point messages delivered.
    pub messages: u64,
    /// Predicted `send`/`send_recv` calls and bytes.
    pub send_recv: PredictedCollective,
    /// Predicted `all_to_all` calls and bytes.
    pub all_to_all: PredictedCollective,
    /// Predicted `all_gather` calls and bytes.
    pub all_gather: PredictedCollective,
    /// Predicted `all_reduce` calls and bytes.
    pub all_reduce: PredictedCollective,
}

impl PredictedTraffic {
    /// Checks the prediction against a measured [`crate::TrafficReport`],
    /// returning a description of the first discrepancy.
    pub fn check_report(&self, report: &crate::TrafficReport) -> Result<(), String> {
        let pairs = [
            ("send_recv", self.send_recv, report.send_recv),
            ("all_to_all", self.all_to_all, report.all_to_all),
            ("all_gather", self.all_gather, report.all_gather),
            ("all_reduce", self.all_reduce, report.all_reduce),
        ];
        for (name, want, got) in pairs {
            if want.calls != got.calls {
                return Err(format!(
                    "{name}: plan predicts {} calls, fabric recorded {}",
                    want.calls, got.calls
                ));
            }
            if want.bytes != got.bytes {
                return Err(format!(
                    "{name}: plan predicts {} bytes, fabric recorded {}",
                    want.bytes, got.bytes
                ));
            }
        }
        if self.messages != report.messages {
            return Err(format!(
                "plan predicts {} delivered messages, fabric recorded {}",
                self.messages, report.messages
            ));
        }
        Ok(())
    }
}

/// Expected receive half of an op, handed back to the fabric so it can
/// validate the message that actually arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ExpectedRecv {
    pub(crate) variant: &'static str,
    pub(crate) bytes: usize,
    pub(crate) step: usize,
}

/// Per-rank runtime cursor over a [`RankPlan`]: every fabric call must be
/// the next declared op with matching peers, variant and bytes.
#[derive(Debug)]
pub(crate) struct PlanChecker {
    rank: usize,
    ops: Vec<CommOp>,
    cursor: usize,
}

impl PlanChecker {
    pub(crate) fn new(plan: RankPlan) -> Self {
        PlanChecker {
            rank: plan.rank,
            ops: plan.ops,
            cursor: 0,
        }
    }

    fn violation(&self, step: usize, detail: String) -> CommError {
        CommError::PlanViolation {
            rank: self.rank,
            step,
            detail,
        }
    }

    /// Takes the op at the cursor, failing if the plan is exhausted.
    fn next_op(&mut self, live: &str) -> Result<(usize, CommOp), CommError> {
        let step = self.cursor;
        match self.ops.get(step) {
            Some(op) => {
                self.cursor += 1;
                Ok((step, op.clone()))
            }
            None => Err(self.violation(
                step,
                format!(
                    "rank {} issued {live} after its declared schedule of {} ops was exhausted",
                    self.rank,
                    self.ops.len()
                ),
            )),
        }
    }

    fn check_payload(
        &self,
        step: usize,
        half: &str,
        want_variant: &'static str,
        want_bytes: usize,
        got_variant: &'static str,
        got_bytes: usize,
    ) -> Result<(), CommError> {
        if want_variant != got_variant {
            return Err(CommError::PlanViolation {
                rank: self.rank,
                step,
                detail: format!(
                    "rank {} step {step} {half}: plan declares variant {want_variant}, live \
                     message is {got_variant}",
                    self.rank
                ),
            });
        }
        if want_bytes != got_bytes {
            return Err(CommError::PlanViolation {
                rank: self.rank,
                step,
                detail: format!(
                    "rank {} step {step} {half}: plan declares {want_bytes} wire bytes, live \
                     message carries {got_bytes}",
                    self.rank
                ),
            });
        }
        Ok(())
    }

    /// Validates the send half of a live `send_recv` and returns the
    /// expectation for its receive half.
    pub(crate) fn expect_send_recv(
        &mut self,
        dst: usize,
        src: usize,
        sent_variant: &'static str,
        sent_bytes: usize,
    ) -> Result<ExpectedRecv, CommError> {
        let (step, op) = self.next_op("send_recv")?;
        match op {
            CommOp::SendRecv {
                dst: pdst,
                src: psrc,
                send_variant,
                recv_variant,
                send_bytes,
                recv_bytes,
            } => {
                if pdst != dst || psrc != src {
                    return Err(self.violation(
                        step,
                        format!(
                        "rank {} step {step}: plan declares send_recv(dst {pdst}, src {psrc}), \
                         live call uses (dst {dst}, src {src})",
                        self.rank
                    ),
                    ));
                }
                self.check_payload(
                    step,
                    "send",
                    send_variant,
                    send_bytes,
                    sent_variant,
                    sent_bytes,
                )?;
                Ok(ExpectedRecv {
                    variant: recv_variant,
                    bytes: recv_bytes,
                    step,
                })
            }
            other => Err(self.violation(
                step,
                format!(
                    "rank {} step {step}: plan declares {}, live call is send_recv",
                    self.rank,
                    other.kind()
                ),
            )),
        }
    }

    /// Validates a live lone `send`.
    pub(crate) fn expect_send(
        &mut self,
        dst: usize,
        sent_variant: &'static str,
        sent_bytes: usize,
    ) -> Result<(), CommError> {
        let (step, op) = self.next_op("send")?;
        match op {
            CommOp::Send {
                dst: pdst,
                variant,
                bytes,
            } => {
                if pdst != dst {
                    return Err(self.violation(
                        step,
                        format!(
                            "rank {} step {step}: plan declares send(dst {pdst}), live call sends \
                         to {dst}",
                            self.rank
                        ),
                    ));
                }
                self.check_payload(step, "send", variant, bytes, sent_variant, sent_bytes)
            }
            other => Err(self.violation(
                step,
                format!(
                    "rank {} step {step}: plan declares {}, live call is send",
                    self.rank,
                    other.kind()
                ),
            )),
        }
    }

    /// Validates a live lone `recv` and returns the expected payload.
    pub(crate) fn expect_recv(&mut self, src: usize) -> Result<ExpectedRecv, CommError> {
        let (step, op) = self.next_op("recv")?;
        match op {
            CommOp::Recv {
                src: psrc,
                variant,
                bytes,
            } => {
                if psrc != src {
                    return Err(self.violation(
                        step,
                        format!(
                        "rank {} step {step}: plan declares recv(src {psrc}), live call receives \
                         from {src}",
                        self.rank
                    ),
                    ));
                }
                Ok(ExpectedRecv {
                    variant,
                    bytes,
                    step,
                })
            }
            other => Err(self.violation(
                step,
                format!(
                    "rank {} step {step}: plan declares {}, live call is recv",
                    self.rank,
                    other.kind()
                ),
            )),
        }
    }

    /// Validates the send side of a live `all_to_all` (`sent[j]` is the
    /// variant/bytes of the payload addressed to rank `j`) and returns the
    /// expected receives, indexed by source rank.
    pub(crate) fn expect_all_to_all(
        &mut self,
        sent: &[(&'static str, usize)],
    ) -> Result<Vec<ExpectedRecv>, CommError> {
        let (step, op) = self.next_op("all_to_all")?;
        match op {
            CommOp::AllToAll {
                variant,
                send_bytes,
                recv_bytes,
            } => {
                if send_bytes.len() != sent.len() {
                    return Err(self.violation(
                        step,
                        format!(
                        "rank {} step {step}: plan declares all_to_all over {} ranks, live call \
                         supplies {} payloads",
                        self.rank,
                        send_bytes.len(),
                        sent.len()
                    ),
                    ));
                }
                for (dst, ((got_variant, got_bytes), want_bytes)) in
                    sent.iter().zip(&send_bytes).enumerate()
                {
                    if dst == self.rank {
                        continue; // self-payload is moved locally, not sent
                    }
                    self.check_payload(
                        step,
                        &format!("all_to_all payload to rank {dst}"),
                        variant,
                        *want_bytes,
                        got_variant,
                        *got_bytes,
                    )?;
                }
                Ok(recv_bytes
                    .into_iter()
                    .map(|bytes| ExpectedRecv {
                        variant,
                        bytes,
                        step,
                    })
                    .collect())
            }
            other => Err(self.violation(
                step,
                format!(
                    "rank {} step {step}: plan declares {}, live call is all_to_all",
                    self.rank,
                    other.kind()
                ),
            )),
        }
    }

    /// Validates the send side of a live gather-shaped collective
    /// (`all_gather` or `all_reduce`, distinguished by `kind`) and returns
    /// the expected receives, indexed by source rank.
    pub(crate) fn expect_gather(
        &mut self,
        kind: &'static str,
        sent_variant: &'static str,
        sent_bytes: usize,
    ) -> Result<Vec<ExpectedRecv>, CommError> {
        let (step, op) = self.next_op(kind)?;
        let (variant, send_bytes, recv_bytes) = match op {
            CommOp::AllGather {
                variant,
                send_bytes,
                recv_bytes,
            } if kind == "all_gather" => (variant, send_bytes, recv_bytes),
            CommOp::AllReduce {
                variant,
                send_bytes,
                recv_bytes,
            } if kind == "all_reduce" => (variant, send_bytes, recv_bytes),
            other => {
                return Err(self.violation(
                    step,
                    format!(
                        "rank {} step {step}: plan declares {}, live call is {kind}",
                        self.rank,
                        other.kind()
                    ),
                ))
            }
        };
        self.check_payload(step, "send", variant, send_bytes, sent_variant, sent_bytes)?;
        Ok(recv_bytes
            .into_iter()
            .map(|bytes| ExpectedRecv {
                variant,
                bytes,
                step,
            })
            .collect())
    }

    /// Validates a live `barrier`.
    pub(crate) fn expect_barrier(&mut self) -> Result<(), CommError> {
        let (step, op) = self.next_op("barrier")?;
        match op {
            CommOp::Barrier => Ok(()),
            other => Err(self.violation(
                step,
                format!(
                    "rank {} step {step}: plan declares {}, live call is barrier",
                    self.rank,
                    other.kind()
                ),
            )),
        }
    }

    /// Validates a received message against an [`ExpectedRecv`].
    pub(crate) fn check_received(
        &self,
        expected: &ExpectedRecv,
        src: usize,
        got_variant: &'static str,
        got_bytes: usize,
    ) -> Result<(), CommError> {
        self.check_payload(
            expected.step,
            &format!("recv from rank {src}"),
            expected.variant,
            expected.bytes,
            got_variant,
            got_bytes,
        )
    }

    /// Asserts the rank drained its whole schedule before exiting.
    pub(crate) fn finish(&self) -> Result<(), CommError> {
        if self.cursor != self.ops.len() {
            return Err(CommError::PlanViolation {
                rank: self.rank,
                step: self.cursor,
                detail: format!(
                    "rank {} exited after {} of {} declared ops",
                    self.rank,
                    self.cursor,
                    self.ops.len()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring2_plan() -> CommPlan {
        CommPlan::from_ranks(
            (0..2)
                .map(|r| RankPlan {
                    rank: r,
                    ops: vec![CommOp::SendRecv {
                        dst: (r + 1) % 2,
                        src: (r + 1) % 2,
                        send_variant: "payload",
                        recv_variant: "payload",
                        send_bytes: 8,
                        recv_bytes: 8,
                    }],
                })
                .collect(),
        )
    }

    #[test]
    fn from_ranks_sets_world_and_rank_indices() {
        let plan = CommPlan::from_ranks(vec![
            RankPlan {
                rank: 9,
                ops: vec![],
            },
            RankPlan {
                rank: 9,
                ops: vec![],
            },
        ]);
        assert_eq!(plan.world, 2);
        assert_eq!(plan.ranks[0].rank, 0);
        assert_eq!(plan.ranks[1].rank, 1);
    }

    #[test]
    fn predicted_traffic_meters_sender_side_only() {
        let plan = CommPlan::from_ranks(
            (0..3)
                .map(|r| RankPlan {
                    rank: r,
                    ops: vec![
                        CommOp::AllToAll {
                            variant: "payload",
                            send_bytes: vec![4, 4, 4],
                            recv_bytes: vec![4, 4, 4],
                        },
                        CommOp::AllGather {
                            variant: "payload",
                            send_bytes: 4,
                            recv_bytes: vec![4, 4, 4],
                        },
                        CommOp::Barrier,
                    ],
                })
                .collect(),
        );
        let p = plan.predicted_traffic();
        // Each rank sends 2 remote payloads per collective.
        assert_eq!(p.all_to_all.bytes, 3 * 2 * 4);
        assert_eq!(p.all_gather.bytes, 3 * 2 * 4);
        assert_eq!(p.all_to_all.calls, 3);
        assert_eq!(p.all_gather.calls, 3);
        assert_eq!(p.messages, 12);
        assert_eq!(p.send_recv, PredictedCollective::default());
    }

    #[test]
    fn checker_accepts_matching_send_recv_and_finishes() {
        let plan = ring2_plan();
        let mut c = PlanChecker::new(plan.ranks[0].clone());
        let exp = c.expect_send_recv(1, 1, "payload", 8).unwrap();
        c.check_received(&exp, 1, "payload", 8).unwrap();
        c.finish().unwrap();
    }

    #[test]
    fn checker_rejects_wrong_peer_variant_bytes_kind_and_overrun() {
        let plan = ring2_plan();
        // Wrong destination.
        let mut c = PlanChecker::new(plan.ranks[0].clone());
        let err = c.expect_send_recv(0, 1, "payload", 8).unwrap_err();
        assert!(
            matches!(
                err,
                CommError::PlanViolation {
                    rank: 0,
                    step: 0,
                    ..
                }
            ),
            "{err}"
        );
        // Wrong variant.
        let mut c = PlanChecker::new(plan.ranks[0].clone());
        let err = c.expect_send_recv(1, 1, "other", 8).unwrap_err();
        assert!(err.to_string().contains("variant"), "{err}");
        // Wrong bytes.
        let mut c = PlanChecker::new(plan.ranks[0].clone());
        let err = c.expect_send_recv(1, 1, "payload", 4).unwrap_err();
        assert!(err.to_string().contains("wire bytes"), "{err}");
        // Wrong op kind.
        let mut c = PlanChecker::new(plan.ranks[0].clone());
        let err = c.expect_barrier().unwrap_err();
        assert!(err.to_string().contains("barrier"), "{err}");
        // Unfinished plan.
        let c = PlanChecker::new(plan.ranks[0].clone());
        let err = c.finish().unwrap_err();
        assert!(err.to_string().contains("0 of 1"), "{err}");
        // Overrun past the end.
        let mut c = PlanChecker::new(plan.ranks[0].clone());
        let exp = c.expect_send_recv(1, 1, "payload", 8).unwrap();
        c.check_received(&exp, 1, "payload", 8).unwrap();
        let err = c.expect_send_recv(1, 1, "payload", 8).unwrap_err();
        assert!(err.to_string().contains("exhausted"), "{err}");
    }

    #[test]
    fn checker_validates_received_payloads() {
        let plan = ring2_plan();
        let mut c = PlanChecker::new(plan.ranks[1].clone());
        let exp = c.expect_send_recv(0, 0, "payload", 8).unwrap();
        let err = c.check_received(&exp, 0, "payload", 12).unwrap_err();
        assert!(
            matches!(err, CommError::PlanViolation { rank: 1, .. }),
            "{err}"
        );
    }
}
