//! Traffic and timing accounting shared across ranks.
//!
//! Every fabric operation records three things per collective category:
//! how many times it was called, how many wire bytes it moved (successful
//! deliveries only), and how much wall-clock time the calling rank spent
//! inside it. Each call also appends a [`TimedEvent`] to a measured
//! timeline, which [`crate::Communicator::time_compute`] extends with
//! compute intervals — together they reconstruct the per-rank
//! compute/communication trace the paper reads off the GPU profiler.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Which collective a transfer belongs to, for per-collective accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Collective {
    SendRecv,
    AllToAll,
    AllGather,
    AllReduce,
}

impl Collective {
    pub(crate) fn name(self) -> &'static str {
        match self {
            Collective::SendRecv => "send_recv",
            Collective::AllToAll => "all_to_all",
            Collective::AllGather => "all_gather",
            Collective::AllReduce => "all_reduce",
        }
    }
}

#[derive(Debug, Default)]
struct CollectiveCounters {
    calls: AtomicU64,
    bytes: AtomicU64,
    wall_ns: AtomicU64,
    overlapped_ns: AtomicU64,
}

impl CollectiveCounters {
    fn snapshot(&self) -> CollectiveReport {
        CollectiveReport {
            calls: self.calls.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed) as usize,
            wall_ns: self.wall_ns.load(Ordering::Relaxed),
            overlapped_ns: self.overlapped_ns.load(Ordering::Relaxed),
        }
    }
}

/// Which lane of a rank's measured timeline an event occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineLane {
    /// Time spent inside a fabric collective.
    Comm,
    /// Time spent in a [`crate::Communicator::time_compute`] section.
    Compute,
}

impl TimelineLane {
    /// Lane name as used by trace exporters (`"comm"` / `"compute"`).
    pub fn as_str(self) -> &'static str {
        match self {
            TimelineLane::Comm => "comm",
            TimelineLane::Compute => "compute",
        }
    }
}

/// One measured interval on a rank's timeline, relative to the fabric
/// run's start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    /// Rank the interval was measured on.
    pub rank: usize,
    /// Communication or compute lane.
    pub lane: TimelineLane,
    /// Collective name, or the label passed to `time_compute`.
    pub label: String,
    /// Start, nanoseconds since the fabric run began.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Portion of the duration hidden under compute (nonblocking ops only:
    /// the span between posting the op and starting to block in `wait()`).
    /// Blocking collectives and compute sections record 0.
    pub overlapped_ns: u64,
}

/// Shared, thread-safe traffic counters and timeline updated by every rank
/// of a fabric run. Snapshot with [`TrafficStats::report`].
#[derive(Debug)]
pub struct TrafficStats {
    epoch: Instant,
    messages: AtomicU64,
    send_recv: CollectiveCounters,
    all_to_all: CollectiveCounters,
    all_gather: CollectiveCounters,
    all_reduce: CollectiveCounters,
    timeline: Mutex<Vec<TimedEvent>>,
}

impl TrafficStats {
    /// Creates a fresh zeroed counter set behind an `Arc`; the timeline
    /// epoch is the moment of creation.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<Self> {
        Arc::new(TrafficStats {
            epoch: Instant::now(),
            messages: AtomicU64::new(0),
            send_recv: CollectiveCounters::default(),
            all_to_all: CollectiveCounters::default(),
            all_gather: CollectiveCounters::default(),
            all_reduce: CollectiveCounters::default(),
            timeline: Mutex::new(Vec::new()),
        })
    }

    fn counters(&self, collective: Collective) -> &CollectiveCounters {
        match collective {
            Collective::SendRecv => &self.send_recv,
            Collective::AllToAll => &self.all_to_all,
            Collective::AllGather => &self.all_gather,
            Collective::AllReduce => &self.all_reduce,
        }
    }

    /// Records one successfully delivered message of `bytes` wire bytes.
    /// Callers must only invoke this *after* the send succeeded, so failed
    /// deliveries never inflate the byte accounting.
    pub(crate) fn record_bytes(&self, collective: Collective, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.counters(collective)
            .bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one completed collective call and its wall time.
    pub(crate) fn record_call(&self, collective: Collective, wall_ns: u64) {
        let c = self.counters(collective);
        c.calls.fetch_add(1, Ordering::Relaxed);
        c.wall_ns.fetch_add(wall_ns, Ordering::Relaxed);
    }

    /// Records comm wall time hidden under compute by a nonblocking op:
    /// the span between posting and the first blocking `wait()`.
    pub(crate) fn record_overlap(&self, collective: Collective, overlapped_ns: u64) {
        self.counters(collective)
            .overlapped_ns
            .fetch_add(overlapped_ns, Ordering::Relaxed);
    }

    /// Nanoseconds since this stats object was created.
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Appends a measured interval to the shared timeline.
    ///
    /// A poisoned lock (a rank panicked mid-push) is recovered rather than
    /// propagated: the timeline is append-only, so the protected data is
    /// still well-formed and losing a panicking rank's last event is fine.
    pub(crate) fn record_event(&self, event: TimedEvent) {
        self.timeline
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    /// Takes an immutable snapshot of the counters and timeline. Timeline
    /// events are sorted by start time (then rank) for determinism.
    pub fn report(&self) -> TrafficReport {
        let mut timeline = self
            .timeline
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        timeline.sort_by_key(|e| (e.start_ns, e.rank, e.dur_ns));
        let send_recv = self.send_recv.snapshot();
        let all_to_all = self.all_to_all.snapshot();
        let all_gather = self.all_gather.snapshot();
        let all_reduce = self.all_reduce.snapshot();
        TrafficReport {
            messages: self.messages.load(Ordering::Relaxed),
            send_recv_bytes: send_recv.bytes,
            all_to_all_bytes: all_to_all.bytes,
            all_gather_bytes: all_gather.bytes,
            send_recv,
            all_to_all,
            all_gather,
            all_reduce,
            timeline,
        }
    }
}

/// Per-collective call count, wire bytes, and wall time summed over ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectiveReport {
    /// Completed calls of this collective across all ranks.
    pub calls: u64,
    /// Wire bytes moved (successful deliveries only).
    pub bytes: usize,
    /// Wall-clock time spent inside the collective, summed over ranks, ns.
    pub wall_ns: u64,
    /// Of `wall_ns`, time hidden under compute by nonblocking posts
    /// (span from post to first blocking `wait()`), summed over ranks, ns.
    pub overlapped_ns: u64,
}

impl CollectiveReport {
    /// Wall time in microseconds.
    pub fn wall_us(&self) -> f64 {
        self.wall_ns as f64 / 1_000.0
    }
}

/// A snapshot of fabric traffic and timing, summed over all ranks.
///
/// Byte counts use each payload's [`crate::Wire::wire_bytes`], i.e. the
/// bytes an equivalent transfer would move on a real interconnect. The
/// `*_bytes` fields are legacy mirrors of the per-collective entries
/// (note `all_gather_bytes` no longer includes AllReduce traffic, which
/// has its own [`TrafficReport::all_reduce`] entry).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Total point-to-point messages delivered (collectives count each
    /// constituent message).
    pub messages: u64,
    /// Bytes moved by explicit `send`/`send_recv` (ring traffic).
    pub send_recv_bytes: usize,
    /// Bytes moved by `all_to_all`.
    pub all_to_all_bytes: usize,
    /// Bytes moved by `all_gather`.
    pub all_gather_bytes: usize,
    /// Calls/bytes/wall-time of `send`, `send_recv`.
    pub send_recv: CollectiveReport,
    /// Calls/bytes/wall-time of `all_to_all`.
    pub all_to_all: CollectiveReport,
    /// Calls/bytes/wall-time of `all_gather`.
    pub all_gather: CollectiveReport,
    /// Calls/bytes/wall-time of `all_reduce` (distinct from `all_gather`
    /// even though it is built on the same exchange).
    pub all_reduce: CollectiveReport,
    /// Measured per-rank comm/compute intervals, sorted by start time.
    pub timeline: Vec<TimedEvent>,
}

impl TrafficReport {
    /// Total bytes across all collectives, including AllReduce.
    pub fn total_bytes(&self) -> usize {
        self.send_recv.bytes + self.all_to_all.bytes + self.all_gather.bytes + self.all_reduce.bytes
    }

    /// The per-collective entries with their names, in a fixed order.
    pub fn collectives(&self) -> [(&'static str, CollectiveReport); 4] {
        [
            (Collective::SendRecv.name(), self.send_recv),
            (Collective::AllToAll.name(), self.all_to_all),
            (Collective::AllGather.name(), self.all_gather),
            (Collective::AllReduce.name(), self.all_reduce),
        ]
    }
}

impl std::fmt::Display for TrafficReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} messages", self.messages)?;
        for (name, c) in self.collectives() {
            write!(
                f,
                ", {name}: {} calls / {} B / {:.1} us",
                c.calls,
                c.bytes,
                c.wall_us()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_collective() {
        let stats = TrafficStats::new();
        stats.record_bytes(Collective::SendRecv, 10);
        stats.record_bytes(Collective::SendRecv, 5);
        stats.record_bytes(Collective::AllToAll, 7);
        stats.record_bytes(Collective::AllGather, 3);
        stats.record_bytes(Collective::AllReduce, 2);
        let r = stats.report();
        assert_eq!(r.messages, 5);
        assert_eq!(r.send_recv_bytes, 15);
        assert_eq!(r.all_to_all_bytes, 7);
        assert_eq!(r.all_gather_bytes, 3);
        assert_eq!(r.all_reduce.bytes, 2);
        assert_eq!(r.total_bytes(), 27);
    }

    #[test]
    fn calls_and_wall_time_accumulate() {
        let stats = TrafficStats::new();
        stats.record_call(Collective::AllReduce, 1_000);
        stats.record_call(Collective::AllReduce, 500);
        stats.record_call(Collective::SendRecv, 10);
        let r = stats.report();
        assert_eq!(r.all_reduce.calls, 2);
        assert_eq!(r.all_reduce.wall_ns, 1_500);
        assert_eq!(r.send_recv.calls, 1);
        assert_eq!(r.all_gather.calls, 0);
        assert!((r.all_reduce.wall_us() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let stats = TrafficStats::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let st = Arc::clone(&stats);
                s.spawn(move || {
                    for _ in 0..1000 {
                        st.record_bytes(Collective::SendRecv, 1);
                    }
                });
            }
        });
        let r = stats.report();
        assert_eq!(r.messages, 8000);
        assert_eq!(r.send_recv_bytes, 8000);
        assert_eq!(r.send_recv.bytes, 8000);
    }

    #[test]
    fn timeline_snapshot_is_sorted() {
        let stats = TrafficStats::new();
        for (rank, start) in [(1usize, 30u64), (0, 10), (0, 20)] {
            stats.record_event(TimedEvent {
                rank,
                lane: TimelineLane::Comm,
                label: "send_recv".to_string(),
                start_ns: start,
                dur_ns: 5,
                overlapped_ns: 0,
            });
        }
        let r = stats.report();
        let starts: Vec<u64> = r.timeline.iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![10, 20, 30]);
        assert_eq!(TimelineLane::Compute.as_str(), "compute");
    }

    #[test]
    fn display_is_nonempty() {
        let text = TrafficReport::default().to_string();
        assert!(text.contains("all_reduce"));
        assert!(text.contains("send_recv"));
    }
}
