//! Traffic accounting shared across ranks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which collective a transfer belongs to, for per-collective accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Collective {
    SendRecv,
    AllToAll,
    AllGather,
}

/// Shared, thread-safe traffic counters updated by every rank of a fabric
/// run. Snapshot with [`TrafficStats::report`].
#[derive(Debug, Default)]
pub struct TrafficStats {
    messages: AtomicU64,
    send_recv_bytes: AtomicU64,
    all_to_all_bytes: AtomicU64,
    all_gather_bytes: AtomicU64,
}

impl TrafficStats {
    /// Creates a fresh zeroed counter set behind an `Arc`.
    pub fn new() -> Arc<Self> {
        Arc::new(TrafficStats::default())
    }

    pub(crate) fn record(&self, collective: Collective, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        let counter = match collective {
            Collective::SendRecv => &self.send_recv_bytes,
            Collective::AllToAll => &self.all_to_all_bytes,
            Collective::AllGather => &self.all_gather_bytes,
        };
        counter.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Takes an immutable snapshot of the counters.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            messages: self.messages.load(Ordering::Relaxed),
            send_recv_bytes: self.send_recv_bytes.load(Ordering::Relaxed) as usize,
            all_to_all_bytes: self.all_to_all_bytes.load(Ordering::Relaxed) as usize,
            all_gather_bytes: self.all_gather_bytes.load(Ordering::Relaxed) as usize,
        }
    }
}

/// A snapshot of fabric traffic, summed over all ranks.
///
/// Byte counts use each payload's [`crate::Wire::wire_bytes`], i.e. the
/// bytes an equivalent transfer would move on a real interconnect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Total point-to-point messages delivered (collectives count each
    /// constituent message).
    pub messages: u64,
    /// Bytes moved by explicit `send`/`recv`/`send_recv` (ring traffic).
    pub send_recv_bytes: usize,
    /// Bytes moved by `all_to_all`.
    pub all_to_all_bytes: usize,
    /// Bytes moved by `all_gather` (and collectives built on it).
    pub all_gather_bytes: usize,
}

impl TrafficReport {
    /// Total bytes across all collectives.
    pub fn total_bytes(&self) -> usize {
        self.send_recv_bytes + self.all_to_all_bytes + self.all_gather_bytes
    }
}

impl std::fmt::Display for TrafficReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} messages, {} B send_recv, {} B all_to_all, {} B all_gather",
            self.messages, self.send_recv_bytes, self.all_to_all_bytes, self.all_gather_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_collective() {
        let stats = TrafficStats::new();
        stats.record(Collective::SendRecv, 10);
        stats.record(Collective::SendRecv, 5);
        stats.record(Collective::AllToAll, 7);
        stats.record(Collective::AllGather, 3);
        let r = stats.report();
        assert_eq!(r.messages, 4);
        assert_eq!(r.send_recv_bytes, 15);
        assert_eq!(r.all_to_all_bytes, 7);
        assert_eq!(r.all_gather_bytes, 3);
        assert_eq!(r.total_bytes(), 25);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let stats = TrafficStats::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let st = Arc::clone(&stats);
                s.spawn(move || {
                    for _ in 0..1000 {
                        st.record(Collective::SendRecv, 1);
                    }
                });
            }
        });
        let r = stats.report();
        assert_eq!(r.messages, 8000);
        assert_eq!(r.send_recv_bytes, 8000);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!TrafficReport::default().to_string().is_empty());
    }
}
