//! The [`Wire`] trait: payloads the fabric can transport and meter.

/// A payload that can be sent between ranks, with a byte-size measure used
/// for traffic accounting.
///
/// `wire_bytes` should report the size the payload would occupy on a real
/// interconnect (e.g. element count × element size for tensors), **not**
/// Rust in-memory size. The exactness tests use these counts to verify the
/// paper's communication-cost formulas (Table 2), so implementations should
/// count only semantic payload bytes and ignore container overhead like `Vec`
/// capacity or enum discriminants.
pub trait Wire: Send + 'static {
    /// Semantic payload size in bytes.
    fn wire_bytes(&self) -> usize;

    /// Short variant tag of this payload, used by declared communication
    /// plans ([`crate::CommPlan`]) to check message-variant agreement.
    /// Multi-variant message enums should return the variant name; the
    /// default suits single-variant payload types.
    fn wire_variant(&self) -> &'static str {
        "payload"
    }
}

impl Wire for f32 {
    fn wire_bytes(&self) -> usize {
        4
    }
}

impl Wire for u32 {
    fn wire_bytes(&self) -> usize {
        4
    }
}

impl Wire for u64 {
    fn wire_bytes(&self) -> usize {
        8
    }
}

impl Wire for usize {
    fn wire_bytes(&self) -> usize {
        8
    }
}

impl Wire for () {
    fn wire_bytes(&self) -> usize {
        0
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn wire_bytes(&self) -> usize {
        self.iter().map(Wire::wire_bytes).sum()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn wire_bytes(&self) -> usize {
        self.as_ref().map_or(0, Wire::wire_bytes)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(1.0f32.wire_bytes(), 4);
        assert_eq!(7u32.wire_bytes(), 4);
        assert_eq!(7u64.wire_bytes(), 8);
        assert_eq!(7usize.wire_bytes(), 8);
        assert_eq!(().wire_bytes(), 0);
    }

    #[test]
    fn vec_sums_elements() {
        assert_eq!(vec![1.0f32; 10].wire_bytes(), 40);
        assert_eq!(Vec::<f32>::new().wire_bytes(), 0);
        assert_eq!(vec![vec![1.0f32; 2]; 3].wire_bytes(), 24);
    }

    #[test]
    fn option_and_tuples() {
        assert_eq!(Some(1.0f32).wire_bytes(), 4);
        assert_eq!(None::<f32>.wire_bytes(), 0);
        assert_eq!((1.0f32, 2u64).wire_bytes(), 12);
        assert_eq!((1.0f32, 2u64, vec![0u32; 2]).wire_bytes(), 20);
    }
}
