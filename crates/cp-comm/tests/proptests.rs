//! Property-based stress tests for the rank fabric: arbitrary collective
//! sequences must deliver correctly, deadlock-free, with exact byte
//! accounting.

use cp_comm::run_ranks;
use proptest::prelude::*;

/// A randomized program of collectives every rank executes in lockstep.
#[derive(Debug, Clone)]
enum Op {
    RingRotate(usize), // payload length
    AllToAll(usize),
    AllGather(usize),
    AllReduce(usize),
    Barrier,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..20).prop_map(Op::RingRotate),
        (1usize..20).prop_map(Op::AllToAll),
        (1usize..20).prop_map(Op::AllGather),
        (1usize..20).prop_map(Op::AllReduce),
        Just(Op::Barrier),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any program of collectives completes (no deadlock) and every
    /// payload arrives with the right provenance.
    #[test]
    fn random_collective_programs_complete(
        n in 1usize..6,
        program in prop::collection::vec(op_strategy(), 1..12),
    ) {
        let program = &program;
        let (results, _) = run_ranks::<Vec<f32>, _, _>(n, move |comm| {
            let me = comm.rank() as f32;
            let mut checks = 0usize;
            for op in program {
                match *op {
                    Op::RingRotate(len) => {
                        let got = comm.send_recv(
                            comm.ring_next(),
                            vec![me; len],
                            comm.ring_prev(),
                        )?;
                        let prev = ((comm.rank() + comm.world_size() - 1)
                            % comm.world_size()) as f32;
                        assert_eq!(got, vec![prev; len]);
                        checks += 1;
                    }
                    Op::AllToAll(len) => {
                        let payloads: Vec<Vec<f32>> = (0..comm.world_size())
                            .map(|d| vec![me * 100.0 + d as f32; len])
                            .collect();
                        let got = comm.all_to_all(payloads)?;
                        for (src, msg) in got.iter().enumerate() {
                            assert_eq!(
                                msg,
                                &vec![src as f32 * 100.0 + me; len],
                                "src {src}"
                            );
                        }
                        checks += 1;
                    }
                    Op::AllGather(len) => {
                        let got = comm.all_gather(vec![me; len])?;
                        for (src, msg) in got.iter().enumerate() {
                            assert_eq!(msg, &vec![src as f32; len]);
                        }
                        checks += 1;
                    }
                    Op::AllReduce(len) => {
                        let got = comm.all_reduce(vec![me; len], |mut acc, m| {
                            for (a, b) in acc.iter_mut().zip(m) {
                                *a += b;
                            }
                            acc
                        })?;
                        let expected =
                            (0..comm.world_size()).map(|r| r as f32).sum::<f32>();
                        assert_eq!(got, vec![expected; len]);
                        checks += 1;
                    }
                    Op::Barrier => {
                        comm.barrier()?;
                        checks += 1;
                    }
                }
            }
            Ok(checks)
        })
        .unwrap();
        prop_assert!(results.iter().all(|&c| c == program.len()));
    }

    /// Byte accounting is exact for a known traffic pattern.
    #[test]
    fn byte_accounting_is_exact(
        n in 2usize..6,
        rotations in 1usize..5,
        payload in 1usize..50,
    ) {
        let (_, report) = run_ranks::<Vec<f32>, _, _>(n, |comm| {
            let mut msg = vec![0.0f32; payload];
            for _ in 0..rotations {
                msg = comm.send_recv(comm.ring_next(), msg, comm.ring_prev())?;
            }
            Ok(())
        })
        .unwrap();
        prop_assert_eq!(report.send_recv_bytes, n * rotations * payload * 4);
        prop_assert_eq!(report.messages as usize, n * rotations);
    }

    /// Interleaved point-to-point traffic between random pairs stays FIFO
    /// per channel and never cross-delivers.
    #[test]
    fn pairwise_streams_are_isolated(
        n in 2usize..5,
        count in 1usize..30,
    ) {
        let (_, _) = run_ranks::<Vec<f32>, _, _>(n, |comm| {
            // Everybody sends `count` tagged messages to everybody.
            for dst in 0..comm.world_size() {
                if dst == comm.rank() { continue; }
                for i in 0..count {
                    comm.send(dst, vec![comm.rank() as f32, i as f32])?;
                }
            }
            for src in 0..comm.world_size() {
                if src == comm.rank() { continue; }
                for i in 0..count {
                    let got = comm.recv(src)?;
                    assert_eq!(got, vec![src as f32, i as f32]);
                }
            }
            Ok(())
        })
        .unwrap();
    }
}
