//! Baselines the paper compares against: single-device attention and the
//! all-gather pass-KV of Llama3 *training* (§3.5.2's discussion).

use cp_attention::{blocked_gqa_attention, naive_gqa_attention, AttentionOutput, AttentionParams};
use cp_comm::Communicator;
use cp_tensor::Tensor;

use crate::messages::{LocalSeq, RingMsg, SeqKv};
use crate::CoreError;

/// Single-device causal attention over a whole sequence — the ground truth
/// all distributed variants are checked against.
///
/// # Errors
///
/// Propagates kernel shape errors.
pub fn single_device_prefill(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    params: &AttentionParams,
    q_pos: &[usize],
    kv_pos: &[usize],
) -> Result<AttentionOutput, CoreError> {
    Ok(naive_gqa_attention(q, k, v, params, q_pos, kv_pos)?)
}

/// All-gather pass-KV prefill (one rank's body): every rank first gathers
/// **all** KV shards, then computes its local queries against the full KV
/// in one shot.
///
/// This is how Llama3 *training* implements pass-KV. It is exact, but the
/// all-gather sits un-overlapped on the critical path and moves
/// `(N-1)` full KV shards *before any compute starts* — the latency
/// drawback that motivates the ring formulation for inference (§3.5.2).
/// Byte-for-byte it moves the same volume as the ring; the difference is
/// purely in overlap, which the `cp-perf` event simulator quantifies.
///
/// # Errors
///
/// Communication failures or kernel shape errors.
pub fn all_gather_pass_kv_prefill(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let own = RingMsg::Kv {
        seqs: locals
            .iter()
            .map(|l| SeqKv {
                k: l.k.clone(),
                v: l.v.clone(),
                pos: l.kv_pos.clone(),
            })
            .collect(),
    };
    let gathered = comm.all_gather(own)?;
    let mut shards: Vec<Vec<SeqKv>> = Vec::with_capacity(gathered.len());
    for (src_rank, msg) in gathered.into_iter().enumerate() {
        match msg {
            RingMsg::Kv { seqs } => shards.push(seqs),
            other => {
                return Err(CoreError::ProtocolViolation {
                    from_rank: src_rank,
                    expected: "Kv",
                    got: other.variant_name(),
                })
            }
        }
    }

    locals
        .iter()
        .enumerate()
        .map(|(i, local)| {
            // Concatenate every rank's shard of sequence i, rejecting
            // shards that carry fewer sequences than this rank holds.
            let mut ks: Vec<&Tensor> = Vec::with_capacity(shards.len());
            let mut vs: Vec<&Tensor> = Vec::with_capacity(shards.len());
            let mut pos: Vec<usize> = Vec::new();
            for (src_rank, s) in shards.iter().enumerate() {
                let seq = s.get(i).ok_or_else(|| CoreError::BadRequest {
                    reason: format!(
                        "rank {src_rank} gathered {} KV sequences but rank {} holds {}",
                        s.len(),
                        comm.rank(),
                        locals.len()
                    ),
                })?;
                ks.push(&seq.k);
                vs.push(&seq.v);
                pos.extend_from_slice(&seq.pos);
            }
            let k = Tensor::concat_dim0(ks)?;
            let v = Tensor::concat_dim0(vs)?;
            Ok(blocked_gqa_attention(
                &local.q,
                &k,
                &v,
                params,
                &local.q_pos,
                &pos,
                128,
            )?)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{ring_pass_kv_prefill, run_ring};
    use cp_attention::{GqaShape, PAD};
    use cp_sharding::ShardPlan;
    use cp_tensor::DetRng;

    #[test]
    fn all_gather_matches_ring_and_reference() {
        let params = AttentionParams::for_shape(GqaShape::new(4, 2, 8).unwrap());
        let (n, t) = (3, 29);
        let mut rng = DetRng::new(21);
        let q = rng.tensor(&[t, 4, 8]);
        let k = rng.tensor(&[t, 2, 8]);
        let v = rng.tensor(&[t, 2, 8]);
        let pos: Vec<usize> = (0..t).collect();
        let reference = single_device_prefill(&q, &k, &v, &params, &pos, &pos).unwrap();

        let plan = ShardPlan::new(t, n).unwrap();
        let max_len = (0..n).map(|r| plan.tokens_for(r)).max().unwrap();
        let locals: Vec<Vec<LocalSeq>> = (0..n)
            .map(|r| {
                let positions = plan.positions_for(r);
                let mut kv_pos = positions.clone();
                kv_pos.resize(max_len, PAD);
                vec![LocalSeq {
                    q: q.gather_dim0(&positions).unwrap(),
                    q_pos: positions.clone(),
                    k: k.gather_dim0(&positions)
                        .unwrap()
                        .pad_dim0(max_len, 0.0)
                        .unwrap(),
                    v: v.gather_dim0(&positions)
                        .unwrap()
                        .pad_dim0(max_len, 0.0)
                        .unwrap(),
                    kv_pos,
                }]
            })
            .collect();

        let (ag, ag_report) = run_ring(n, |comm| {
            all_gather_pass_kv_prefill(comm, &params, &locals[comm.rank()])
        })
        .unwrap();
        let (ring, ring_report) = run_ring(n, |comm| {
            ring_pass_kv_prefill(comm, &params, &locals[comm.rank()])
        })
        .unwrap();

        for r in 0..n {
            let positions = plan.positions_for(r);
            for (row, &p) in positions.iter().enumerate() {
                let want = reference.slice_tokens(p, p + 1).unwrap();
                let got = ag[r][0].slice_tokens(row, row + 1).unwrap();
                assert!(got.out.approx_eq(&want.out, 2e-3).unwrap());
            }
            assert!(ag[r][0].out.approx_eq(&ring[r][0].out, 1e-3).unwrap());
        }
        // Same total byte volume, different collective.
        assert_eq!(
            ag_report.all_gather_bytes, ring_report.send_recv_bytes,
            "all-gather should move exactly the ring's volume"
        );
        assert_eq!(ag_report.send_recv_bytes, 0);
    }

    #[test]
    fn single_rank_all_gather_is_local() {
        let params = AttentionParams::for_shape(GqaShape::new(2, 1, 4).unwrap());
        let mut rng = DetRng::new(2);
        let t = 8;
        let q = rng.tensor(&[t, 2, 4]);
        let k = rng.tensor(&[t, 1, 4]);
        let v = rng.tensor(&[t, 1, 4]);
        let pos: Vec<usize> = (0..t).collect();
        let locals = vec![LocalSeq {
            q: q.clone(),
            q_pos: pos.clone(),
            k: k.clone(),
            v: v.clone(),
            kv_pos: pos.clone(),
        }];
        let (out, report) =
            run_ring(1, |comm| all_gather_pass_kv_prefill(comm, &params, &locals)).unwrap();
        let reference = single_device_prefill(&q, &k, &v, &params, &pos, &pos).unwrap();
        assert!(out[0][0].out.approx_eq(&reference.out, 1e-4).unwrap());
        assert_eq!(report.total_bytes(), 0);
    }
}
