//! The multi-turn context-parallel inference engine.

use std::collections::HashMap;

use cp_attention::{AttentionOutput, AttentionParams, GqaShape, PAD};
use cp_comm::{Topology, TrafficReport};
use cp_kvcache::{KvCacheConfig, PagedKvCache, QuantKvCache, SeqId};
use cp_perf::schedule::{
    choose_decode_strategy, choose_family, hop_bytes_per_layer, quant_kv_hop_bytes_per_layer,
};
use cp_perf::{DecodeStrategy, RingDirection, RingTopologyKind, RingVariant, TopologySpec};
use cp_sharding::{decode_round_robin, shard_varseq_with, SequenceSpec, ShardStrategy};
use cp_tensor::Tensor;

use crate::heuristics::{choose_variant, HeuristicKind, SystemContext};
use crate::messages::{DecodeSlot, LocalSeq, SeqKv, SeqQ};
use crate::ring::{
    attn_block_for, helix_decode_kv, ring_pass_kv_prefill_bidi, ring_pass_kv_prefill_on,
    ring_pass_kv_prefill_quant_bidi, ring_pass_kv_prefill_quant_on, ring_pass_q_decode_bidi_kv,
    ring_pass_q_decode_kv, ring_pass_q_prefill_bidi_kv, ring_pass_q_prefill_kv_on, run_ring,
    tp_only_decode_kv, RankKv,
};
use crate::schedule::RingLayout;
use crate::CoreError;

/// How the engine picks the ring *schedule family* (payload direction ×
/// link layout) for its prefill and decode rings. Orthogonal to the
/// pass-KV/pass-Q variant choice: every family is bit-exact for both
/// variants, so the variant decides what circulates and the family only
/// decides how it is routed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulePolicy {
    /// Always use this direction and layout. The default —
    /// unidirectional over the flat ring — is the paper's schedule and
    /// preserves the classic behaviour exactly.
    Fixed {
        /// Payload routing direction.
        direction: RingDirection,
        /// Ring layout (flat, or hierarchical over a node topology).
        layout: RingLayout,
    },
    /// Fold family selection into the prefill heuristic: per ring round,
    /// the analytic link model prices all four families for the chosen
    /// variant's payload on this topology and takes the cheapest.
    Auto {
        /// Link topology of the CP ranks (`world` must equal `n_ranks`).
        topo: TopologySpec,
    },
}

impl Default for SchedulePolicy {
    fn default() -> Self {
        SchedulePolicy::Fixed {
            direction: RingDirection::Uni,
            layout: RingLayout::Flat,
        }
    }
}

/// Precision of the KV-cache hot path and the pass-KV wire format.
///
/// `F32` is the paper's exact configuration. The two INT8 levels trade a
/// bounded per-head quantization error (`max|x| / 254` per dequantized
/// element) for bytes: `Int8Wire` compresses only the circulating
/// pass-KV ring payloads, `Int8Total` additionally stores KV as INT8
/// pages and attends them in place through per-head dequantizing
/// kernels. Both compressed levels fold ring partials in canonical
/// ascending-origin order, so results are bitwise identical across every
/// schedule family (direction × layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KvPrecision {
    /// Exact f32 storage and wire.
    #[default]
    F32,
    /// f32 storage; INT8 pass-KV ring hops. Each circulating
    /// `(token, head)` vector travels as `d` one-byte codes plus one f32
    /// scale — `4d/(d+4)` (~3.9× at `d = 128`) fewer bytes per hop.
    Int8Wire,
    /// INT8 wire *and* INT8 paged storage: pass-Q prefill and decode
    /// attend the quantized pages zero-copy through the dequantize-in-
    /// kernel path. The engine keeps the f32 pages as the exactness
    /// master for rollback and pass-KV gathers; an accelerator
    /// deployment would drop them for the 4× capacity win.
    Int8Total,
}

/// Configuration of a [`ContextParallelEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of CP ranks (each backed by one thread).
    pub n_ranks: usize,
    /// GQA head configuration of the attention layer the engine evaluates.
    pub shape: GqaShape,
    /// KV-cache page size in tokens.
    pub page_size: usize,
    /// Per-rank page-pool limit (`None` = unbounded).
    pub max_pages_per_rank: Option<usize>,
    /// Heuristic selecting pass-KV vs pass-Q per prefill.
    pub heuristic: HeuristicKind,
    /// System context the heuristic evaluates against.
    pub system: SystemContext,
    /// Simulate INT8 KV-cache quantization (§2.2): K/V go through a
    /// quantize→dequantize round trip before caching, modelling the
    /// accuracy cost of the 4x memory saving without changing storage.
    pub simulate_kv_quant: bool,
    /// How new tokens are partitioned over ranks (ablations; the default
    /// is the paper's 2N-chunk load-balanced plan).
    pub shard_strategy: ShardStrategy,
    /// Gather per-sequence KV into fresh contiguous tensors on the pass-Q
    /// prefill and decode hot paths instead of attending the paged caches
    /// in place through zero-copy views (A/B comparison knob; both paths
    /// use the same KV block size and are bit-identical).
    pub gather_hot_kv: bool,
    /// Ring schedule family selection (direction × layout).
    pub schedule: SchedulePolicy,
    /// KV storage / wire precision (see [`KvPrecision`]).
    pub kv_precision: KvPrecision,
    /// Pinned decode strategy, or `None` to derive one: the paper's
    /// batched pass-Q under a `Fixed` schedule, the cheapest priced
    /// strategy per step under `Auto`. All three strategies are
    /// bit-identical; they differ only in collective structure.
    pub decode_strategy: Option<DecodeStrategy>,
}

impl EngineConfig {
    /// Defaults: 16-token pages, unbounded capacity, Algorithm 1 heuristic
    /// evaluated against the Llama3-405B-on-GTT context.
    pub fn new(n_ranks: usize, shape: GqaShape) -> Self {
        EngineConfig {
            n_ranks,
            shape,
            page_size: 16,
            max_pages_per_rank: None,
            heuristic: HeuristicKind::Threshold,
            system: SystemContext::llama3_405b_gtt(n_ranks.max(1)),
            simulate_kv_quant: false,
            shard_strategy: ShardStrategy::LoadBalanced,
            gather_hot_kv: false,
            schedule: SchedulePolicy::default(),
            kv_precision: KvPrecision::default(),
            decode_strategy: None,
        }
    }

    /// Sets the KV-cache page size.
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Bounds each rank's KV-cache page pool.
    pub fn with_max_pages(mut self, max_pages: usize) -> Self {
        self.max_pages_per_rank = Some(max_pages);
        self
    }

    /// Sets the variant-selection heuristic.
    pub fn with_heuristic(mut self, heuristic: HeuristicKind) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Sets the system context used by the heuristic.
    pub fn with_system(mut self, system: SystemContext) -> Self {
        self.system = system;
        self
    }

    /// Enables simulated INT8 KV-cache quantization.
    pub fn with_simulated_kv_quant(mut self) -> Self {
        self.simulate_kv_quant = true;
        self
    }

    /// Sets the sharding strategy (ablations; exactness holds for all).
    pub fn with_shard_strategy(mut self, strategy: ShardStrategy) -> Self {
        self.shard_strategy = strategy;
        self
    }

    /// Switches the pass-Q prefill and decode hot paths back to per-step
    /// `gather()` copies (A/B comparison against the default zero-copy
    /// views; bit-identical results).
    pub fn with_gathered_hot_kv(mut self, enabled: bool) -> Self {
        self.gather_hot_kv = enabled;
        self
    }

    /// Pins the ring schedule family: payload `direction` over `layout`.
    /// All four combinations are bit-exact; they differ only in link
    /// utilisation.
    pub fn with_schedule(mut self, direction: RingDirection, layout: RingLayout) -> Self {
        self.schedule = SchedulePolicy::Fixed { direction, layout };
        self
    }

    /// Folds schedule-family selection into the prefill heuristic over the
    /// given link topology (`topo.world()` must equal `n_ranks`).
    pub fn with_auto_schedule(mut self, topo: TopologySpec) -> Self {
        self.schedule = SchedulePolicy::Auto { topo };
        self
    }

    /// Sets the KV precision level (A/B knob; `F32` is exact, the INT8
    /// levels stay within the documented quantization tolerance).
    pub fn with_kv_precision(mut self, precision: KvPrecision) -> Self {
        self.kv_precision = precision;
        self
    }

    /// Pins the decode strategy (pass-Q ring, Helix AllGather, or
    /// TP-only KV gather). Without a pin, `Fixed` schedules run the
    /// paper's batched pass-Q and `Auto` prices all three per step.
    pub fn with_decode_strategy(mut self, strategy: DecodeStrategy) -> Self {
        self.decode_strategy = Some(strategy);
        self
    }
}

/// Typed-error lookup into a per-rank (or per-slot) engine table.
fn rank_input<T>(per_rank: &[T], rank: usize) -> Result<&T, CoreError> {
    per_rank.get(rank).ok_or_else(|| CoreError::Internal {
        detail: format!(
            "engine table index {rank} out of bounds ({} entries)",
            per_rank.len()
        ),
    })
}

/// Mutable counterpart of [`rank_input`].
fn rank_input_mut<T>(per_rank: &mut [T], rank: usize) -> Result<&mut T, CoreError> {
    let n = per_rank.len();
    per_rank.get_mut(rank).ok_or_else(|| CoreError::Internal {
        detail: format!("engine table index {rank} out of bounds ({n} entries)"),
    })
}

/// Result of one prefill round for one sequence.
#[derive(Debug, Clone)]
pub struct PrefillOutcome {
    /// Attention output of the new tokens, `[t, n_heads, head_dim]`, rows
    /// in the original (pre-sharding) token order.
    pub output: AttentionOutput,
    /// The ring variant the heuristic chose (or the forced override).
    pub variant: RingVariant,
    /// Fabric traffic of the whole batch's round (shared across the
    /// batch's outcomes).
    pub traffic: TrafficReport,
    /// New tokens prefilled this round (`T`).
    pub new_tokens: usize,
    /// Tokens already cached before this round (`P`).
    pub cached_tokens: usize,
}

/// Result of one decode step.
#[derive(Debug, Clone)]
pub struct DecodeOutcome {
    /// Per-batch-element attention outputs, `[1, n_heads, head_dim]`.
    pub outputs: Vec<AttentionOutput>,
    /// Fabric traffic of the step.
    pub traffic: TrafficReport,
    /// The decode iteration index used for round-robin rotation.
    pub step: usize,
}

/// One sequence's inputs for a batched prefill round.
#[derive(Debug)]
pub struct PrefillRequest<'a> {
    /// The (existing or new) sequence.
    pub seq: SeqId,
    /// New-token queries, `[t, n_heads, head_dim]`.
    pub q: &'a Tensor,
    /// New-token keys, `[t, n_kv_heads, head_dim]`.
    pub k: &'a Tensor,
    /// New-token values, `[t, n_kv_heads, head_dim]`.
    pub v: &'a Tensor,
}

/// A multi-turn context-parallel inference engine.
///
/// The engine owns one distributed KV cache per rank and orchestrates the
/// three ring algorithms over a thread-per-rank fabric:
///
/// * [`ContextParallelEngine::full_prefill`] — first turn of a sequence,
/// * [`ContextParallelEngine::partial_prefill`] — follow-up turns against
///   the persistent cache (the heuristic picks pass-KV or pass-Q),
/// * [`ContextParallelEngine::decode_step`] — batched ring pass-Q decode
///   with rotating round-robin sharding.
///
/// Numerically, the engine evaluates one attention layer exactly; layer
/// count enters only the latency estimates (`cp-perf`), since context
/// parallelism treats every layer identically.
#[derive(Debug)]
pub struct ContextParallelEngine {
    config: EngineConfig,
    params: AttentionParams,
    caches: Vec<PagedKvCache>,
    /// INT8 page pools, populated (and kept in lockstep with `caches`)
    /// only at [`KvPrecision::Int8Total`]: the pass-Q/decode hot paths
    /// attend these in place through per-head dequantizing kernels.
    qcaches: Vec<QuantKvCache>,
    lens: HashMap<u64, usize>,
    decode_step: usize,
}

impl ContextParallelEngine {
    /// Creates an engine with `config.n_ranks` rank-local caches.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if `n_ranks == 0`.
    pub fn new(config: EngineConfig) -> Result<Self, CoreError> {
        if config.n_ranks == 0 {
            return Err(CoreError::BadRequest {
                reason: "engine needs at least one rank".to_string(),
            });
        }
        match config.schedule {
            SchedulePolicy::Fixed {
                layout: RingLayout::Hier(topo),
                ..
            } if topo.world() != config.n_ranks => {
                return Err(CoreError::BadRequest {
                    reason: format!(
                        "hierarchical layout covers {} ranks ({} nodes x {}) but the engine has {}",
                        topo.world(),
                        topo.nodes,
                        topo.ranks_per_node,
                        config.n_ranks
                    ),
                });
            }
            SchedulePolicy::Auto { ref topo } if topo.world() != config.n_ranks => {
                return Err(CoreError::BadRequest {
                    reason: format!(
                        "auto-schedule topology covers {} ranks but the engine has {}",
                        topo.world(),
                        config.n_ranks
                    ),
                });
            }
            _ => {}
        }
        let mut cache_cfg = KvCacheConfig::new(
            config.page_size,
            config.shape.n_kv_heads(),
            config.shape.head_dim(),
        );
        if let Some(max) = config.max_pages_per_rank {
            cache_cfg = cache_cfg.with_max_pages(max);
        }
        let caches = (0..config.n_ranks)
            .map(|_| PagedKvCache::new(cache_cfg))
            .collect();
        let qcaches = if config.kv_precision == KvPrecision::Int8Total {
            (0..config.n_ranks)
                .map(|_| QuantKvCache::new(cache_cfg))
                .collect()
        } else {
            Vec::new()
        };
        Ok(ContextParallelEngine {
            params: AttentionParams::for_shape(config.shape),
            config,
            caches,
            qcaches,
            lens: HashMap::new(),
            decode_step: 0,
        })
    }

    /// Whether the pass-Q/decode hot paths attend INT8 pages.
    fn total_quant(&self) -> bool {
        self.config.kv_precision == KvPrecision::Int8Total
    }

    /// Number of CP ranks.
    pub fn n_ranks(&self) -> usize {
        self.config.n_ranks
    }

    /// The attention parameters in use.
    pub fn params(&self) -> &AttentionParams {
        &self.params
    }

    /// The system context the engine's heuristic evaluates against.
    pub fn system_context(&self) -> &SystemContext {
        &self.config.system
    }

    /// Resolves the schedule policy to a concrete `(direction, layout)`
    /// for this round. `Fixed` is returned as-is; `Auto` prices all four
    /// families for `variant`'s per-hop payload at `(t, p)` on the
    /// configured link topology and takes the cheapest (ties prefer the
    /// simpler family).
    fn resolve_schedule(
        &self,
        variant: RingVariant,
        t: usize,
        p: usize,
    ) -> (RingDirection, RingLayout) {
        match &self.config.schedule {
            SchedulePolicy::Fixed { direction, layout } => (*direction, *layout),
            SchedulePolicy::Auto { topo } => {
                // Compressed pass-KV hops carry the INT8 wire format, so
                // Auto prices the smaller payload when pricing families.
                let bytes = match (variant, self.config.kv_precision) {
                    (RingVariant::PassKv, KvPrecision::Int8Wire | KvPrecision::Int8Total) => {
                        quant_kv_hop_bytes_per_layer(&self.config.system.model, topo.world(), t, p)
                    }
                    _ => {
                        hop_bytes_per_layer(&self.config.system.model, variant, topo.world(), t, p)
                    }
                };
                let family = choose_family(topo, bytes);
                let layout = match family.topology {
                    RingTopologyKind::Flat => RingLayout::Flat,
                    RingTopologyKind::Hierarchical => {
                        RingLayout::Hier(Topology::new(topo.nodes, topo.ranks_per_node))
                    }
                };
                (family.direction, layout)
            }
        }
    }

    /// Resolves the decode strategy for a step over `ctx_total` cached
    /// context tokens (summed across the batch) and `batch` sequences: a
    /// pinned strategy wins, `Auto` prices all three on the configured
    /// topology, and a fixed schedule defaults to the paper's pass-Q.
    fn resolve_decode_strategy(&self, ctx_total: usize, batch: usize) -> DecodeStrategy {
        if let Some(strategy) = self.config.decode_strategy {
            return strategy;
        }
        match &self.config.schedule {
            SchedulePolicy::Fixed { .. } => DecodeStrategy::PassQ,
            SchedulePolicy::Auto { topo } => {
                choose_decode_strategy(&self.config.system.model, topo, ctx_total, batch)
            }
        }
    }

    /// Applies the simulated INT8 quantization round trip when enabled.
    fn maybe_quantize(&self, kv: Tensor) -> Result<Tensor, CoreError> {
        if self.config.simulate_kv_quant {
            Ok(cp_kvcache::QuantizedKv::quantize(&kv)?.dequantize())
        } else {
            Ok(kv)
        }
    }

    /// Total context length (cached tokens) of a sequence.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] for an unknown sequence.
    pub fn context_len(&self, seq: SeqId) -> Result<usize, CoreError> {
        self.lens
            .get(&seq.0)
            .copied()
            .ok_or_else(|| CoreError::BadRequest {
                reason: format!("unknown sequence {seq}"),
            })
    }

    /// Per-rank cached-token counts for a sequence — the KV balance the
    /// load-balanced sharding and decode rotation maintain.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] for an unknown sequence.
    pub fn rank_kv_lens(&self, seq: SeqId) -> Result<Vec<usize>, CoreError> {
        if !self.lens.contains_key(&seq.0) {
            return Err(CoreError::BadRequest {
                reason: format!("unknown sequence {seq}"),
            });
        }
        Ok(self
            .caches
            .iter()
            .map(|c| c.seq_len(seq).unwrap_or(0))
            .collect())
    }

    /// Per-rank cache occupancy statistics.
    pub fn cache_stats(&self) -> Vec<cp_kvcache::CacheStats> {
        self.caches.iter().map(|c| c.stats()).collect()
    }

    /// Releases a sequence on every rank.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] for an unknown sequence.
    pub fn free_sequence(&mut self, seq: SeqId) -> Result<(), CoreError> {
        if self.lens.remove(&seq.0).is_none() {
            return Err(CoreError::BadRequest {
                reason: format!("unknown sequence {seq}"),
            });
        }
        for c in &mut self.caches {
            c.free_sequence(seq)?;
        }
        for c in &mut self.qcaches {
            c.free_sequence(seq)?;
        }
        Ok(())
    }

    /// Rolls a sequence back by `n_tokens` (speculative-decoding
    /// rejection): the most recent tokens are dropped from every rank's
    /// cache, wherever the rotation placed them.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] for an unknown sequence or a
    /// rollback longer than the cached context.
    pub fn rollback(&mut self, seq: SeqId, n_tokens: usize) -> Result<(), CoreError> {
        let len = self.context_len(seq)?;
        if n_tokens > len {
            return Err(CoreError::BadRequest {
                reason: format!("cannot roll back {n_tokens} tokens of a {len}-token context"),
            });
        }
        let new_len = len - n_tokens;
        // `qcaches` is empty (F32 / Int8Wire) or rank-aligned with `caches`.
        let mut qcaches = self.qcaches.iter_mut();
        for cache in &mut self.caches {
            // Per-rank positions ascend (turns and decode steps append in
            // position order), so everything >= new_len is a suffix.
            let pos = cache.positions(seq)?;
            let keep = pos.iter().take_while(|&&p| p < new_len).count();
            debug_assert!(pos.iter().skip(keep).all(|&p| p >= new_len));
            cache.truncate(seq, keep)?;
            if let Some(qc) = qcaches.next() {
                qc.truncate(seq, keep)?;
            }
        }
        self.lens.insert(seq.0, new_len);
        Ok(())
    }

    fn check_prefill_shapes(&self, r: &PrefillRequest<'_>) -> Result<usize, CoreError> {
        let shape = &self.config.shape;
        let t = shape.check_q(r.q)?;
        let tk = shape.check_kv(r.k, "k")?;
        let tv = shape.check_kv(r.v, "v")?;
        if tk != t || tv != t {
            return Err(CoreError::BadRequest {
                reason: format!(
                    "q/k/v token counts disagree for {}: {t} vs {tk} vs {tv}",
                    r.seq
                ),
            });
        }
        Ok(t)
    }

    /// First prefill of a new sequence (full causal attention, `P = 0`).
    ///
    /// # Errors
    ///
    /// Fails if the sequence already exists, shapes are inconsistent, a
    /// rank runs out of cache pages, or communication fails.
    pub fn full_prefill(
        &mut self,
        seq: SeqId,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
    ) -> Result<PrefillOutcome, CoreError> {
        if self.lens.contains_key(&seq.0) {
            return Err(CoreError::BadRequest {
                reason: format!("sequence {seq} already exists; use partial_prefill"),
            });
        }
        let mut outcomes = self.prefill_batch(&[PrefillRequest { seq, q, k, v }], None)?;
        Ok(outcomes.remove(0))
    }

    /// Follow-up prefill of an existing sequence against its persistent KV
    /// cache; the configured heuristic picks the ring variant.
    ///
    /// # Errors
    ///
    /// Fails for unknown sequences, bad shapes, cache exhaustion or
    /// communication failures.
    pub fn partial_prefill(
        &mut self,
        seq: SeqId,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
    ) -> Result<PrefillOutcome, CoreError> {
        if !self.lens.contains_key(&seq.0) {
            return Err(CoreError::BadRequest {
                reason: format!("unknown sequence {seq}; use full_prefill first"),
            });
        }
        let mut outcomes = self.prefill_batch(&[PrefillRequest { seq, q, k, v }], None)?;
        Ok(outcomes.remove(0))
    }

    /// Fused variable-length batched prefill (Algorithms 2/3 with the
    /// Figure 1/2 sharding). New sequences get full prefill, existing ones
    /// partial prefill, in one ring round.
    ///
    /// `forced_variant` overrides the heuristic (used by benchmarks and
    /// ablations); `None` applies the configured heuristic to the batch's
    /// aggregate `(T, P)`.
    ///
    /// # Errors
    ///
    /// Fails on inconsistent shapes, duplicate sequences within the batch,
    /// cache exhaustion, or communication failure.
    pub fn prefill_batch(
        &mut self,
        requests: &[PrefillRequest<'_>],
        forced_variant: Option<RingVariant>,
    ) -> Result<Vec<PrefillOutcome>, CoreError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }

        // Validate and collect (T, P) per sequence.
        let mut specs = Vec::with_capacity(requests.len());
        let mut seen = std::collections::HashSet::new();
        for r in requests {
            if !seen.insert(r.seq.0) {
                return Err(CoreError::BadRequest {
                    reason: format!("sequence {} appears twice in one batch", r.seq),
                });
            }
            let t = self.check_prefill_shapes(r)?;
            let p = self.lens.get(&r.seq.0).copied().unwrap_or(0);
            specs.push(SequenceSpec::partial(t, p));
        }

        // Snapshot per-rank cache lengths so a mid-batch failure (e.g. one
        // rank running out of pages) can be rolled back instead of leaving
        // half-registered sequences behind.
        let snapshots: Vec<Option<Vec<usize>>> = requests
            .iter()
            .map(|r| {
                if self.lens.contains_key(&r.seq.0) {
                    Some(
                        self.caches
                            .iter()
                            .map(|c| c.seq_len(r.seq).unwrap_or(0))
                            .collect(),
                    )
                } else {
                    None
                }
            })
            .collect();
        let result = self.prefill_batch_inner(requests, &specs, forced_variant);
        if result.is_err() {
            for (req, snapshot) in requests.iter().zip(&snapshots) {
                match snapshot {
                    // Newly created this call: remove entirely.
                    None => {
                        for c in &mut self.caches {
                            let _ = c.free_sequence(req.seq);
                        }
                        for c in &mut self.qcaches {
                            let _ = c.free_sequence(req.seq);
                        }
                    }
                    // Pre-existing: drop whatever this call appended (the
                    // appended positions are a per-rank suffix).
                    Some(lens) => {
                        for (c, &len) in self.caches.iter_mut().zip(lens) {
                            let _ = c.truncate(req.seq, len);
                        }
                        for (c, &len) in self.qcaches.iter_mut().zip(lens) {
                            let _ = c.truncate(req.seq, len);
                        }
                    }
                }
            }
        }
        result
    }

    fn prefill_batch_inner(
        &mut self,
        requests: &[PrefillRequest<'_>],
        specs: &[SequenceSpec],
        forced_variant: Option<RingVariant>,
    ) -> Result<Vec<PrefillOutcome>, CoreError> {
        let n = self.config.n_ranks;
        // Register new sequences on every rank.
        for (r, spec) in requests.iter().zip(specs) {
            if spec.cached_tokens == 0 && !self.lens.contains_key(&r.seq.0) {
                for c in &mut self.caches {
                    c.create_sequence(r.seq)?;
                }
                for c in &mut self.qcaches {
                    c.create_sequence(r.seq)?;
                }
            }
        }

        // Shard new tokens (Figure 1/2) and append each rank's share to
        // its cache.
        let shards = shard_varseq_with(specs, n, self.config.shard_strategy)?;
        for (rank, shard) in shards.iter().enumerate() {
            for (entry, (req, spec)) in shard.entries.iter().zip(requests.iter().zip(specs)) {
                let rows: Vec<usize> = entry
                    .positions
                    .iter()
                    .map(|&pos| pos - spec.cached_tokens)
                    .collect();
                if self.config.simulate_kv_quant {
                    // The quantize->dequantize simulation needs a staged
                    // round trip through a contiguous tensor.
                    let k_rows = self.maybe_quantize(req.k.gather_dim0(&rows)?)?;
                    let v_rows = self.maybe_quantize(req.v.gather_dim0(&rows)?)?;
                    rank_input_mut(&mut self.caches, rank)?.append(
                        req.seq,
                        &k_rows,
                        &v_rows,
                        &entry.positions,
                    )?;
                } else {
                    // In-place paged append: each selected row lands
                    // straight in its page slot, no staging tensor.
                    rank_input_mut(&mut self.caches, rank)?.append_rows(
                        req.seq,
                        req.k,
                        req.v,
                        &rows,
                        &entry.positions,
                    )?;
                }
                if self.config.kv_precision == KvPrecision::Int8Total {
                    // Quantize-on-append into the INT8 pool (token-local
                    // scales computed in the page slot).
                    rank_input_mut(&mut self.qcaches, rank)?.append_rows(
                        req.seq,
                        req.k,
                        req.v,
                        &rows,
                        &entry.positions,
                    )?;
                }
            }
        }

        // Pick the variant from the batch's aggregate (T, P) *before*
        // materializing ring inputs: pass-KV needs gathered + padded owned
        // KV (the shard circulates on the wire), while pass-Q keeps KV
        // stationary and attends the paged caches in place through
        // zero-copy views — no O(P) gather per turn.
        let t_total: usize = specs.iter().map(|s| s.new_tokens).sum();
        let p_total: usize = specs.iter().map(|s| s.cached_tokens).sum();
        let variant = forced_variant.unwrap_or_else(|| {
            choose_variant(self.config.heuristic, &self.config.system, t_total, p_total)
        });
        let (direction, layout) = self.resolve_schedule(variant, t_total, p_total);

        let params = self.params;
        let (rank_outputs, traffic) = match variant {
            RingVariant::PassKv => {
                // Per-rank LocalSeq inputs: local queries plus the padded
                // local KV shard (§3.5.2's equal-message-size invariant).
                let ring_lens: Vec<usize> = requests
                    .iter()
                    .map(|req| {
                        Ok(self
                            .caches
                            .iter()
                            .map(|c| c.seq_len(req.seq))
                            .collect::<Result<Vec<_>, _>>()?
                            .into_iter()
                            .max()
                            .unwrap_or(0))
                    })
                    .collect::<Result<Vec<_>, CoreError>>()?;

                let mut locals: Vec<Vec<LocalSeq>> = Vec::with_capacity(n);
                for (cache, shard) in self.caches.iter().zip(shards.iter()) {
                    let mut rank_locals = Vec::with_capacity(requests.len());
                    for (i, (entry, (req, spec))) in shard
                        .entries
                        .iter()
                        .zip(requests.iter().zip(specs))
                        .enumerate()
                    {
                        let rows: Vec<usize> = entry
                            .positions
                            .iter()
                            .map(|&pos| pos - spec.cached_tokens)
                            .collect();
                        let q = req.q.gather_dim0(&rows)?;
                        let ring_len = ring_lens.get(i).copied().unwrap_or(0);
                        let (k, v, mut kv_pos) = cache.gather(req.seq)?;
                        let k = k.pad_dim0(ring_len, 0.0)?;
                        let v = v.pad_dim0(ring_len, 0.0)?;
                        kv_pos.resize(ring_len, PAD);
                        rank_locals.push(LocalSeq {
                            q,
                            q_pos: entry.positions.clone(),
                            k,
                            v,
                            kv_pos,
                        });
                    }
                    locals.push(rank_locals);
                }
                // Both INT8 levels compress the circulating KV blocks:
                // origins quantize once, hops relay codes verbatim.
                let compressed = self.config.kv_precision != KvPrecision::F32;
                run_ring(n, |comm| {
                    let mine = rank_input(&locals, comm.rank())?;
                    match (direction, compressed) {
                        (RingDirection::Uni, false) => {
                            ring_pass_kv_prefill_on(comm, &params, mine, layout)
                        }
                        (RingDirection::Bidi, false) => {
                            ring_pass_kv_prefill_bidi(comm, &params, mine, layout)
                        }
                        (RingDirection::Uni, true) => {
                            ring_pass_kv_prefill_quant_on(comm, &params, mine, layout)
                        }
                        (RingDirection::Bidi, true) => {
                            ring_pass_kv_prefill_quant_bidi(comm, &params, mine, layout)
                        }
                    }
                })?
            }
            RingVariant::PassQ => {
                let attn_block = attn_block_for(self.config.page_size);
                let total_quant = self.total_quant();
                let mut queries: Vec<Vec<SeqQ>> = Vec::with_capacity(n);
                let mut kvs: Vec<Vec<RankKv<'_>>> = Vec::with_capacity(n);
                for (rank, (cache, shard)) in self.caches.iter().zip(shards.iter()).enumerate() {
                    let mut rank_q = Vec::with_capacity(requests.len());
                    let mut rank_kv = Vec::with_capacity(requests.len());
                    for (entry, (req, spec)) in shard.entries.iter().zip(requests.iter().zip(specs))
                    {
                        let rows: Vec<usize> = entry
                            .positions
                            .iter()
                            .map(|&pos| pos - spec.cached_tokens)
                            .collect();
                        rank_q.push(SeqQ {
                            q: req.q.gather_dim0(&rows)?,
                            pos: entry.positions.clone(),
                        });
                        rank_kv.push(if total_quant {
                            // Attend the INT8 pages in place; the kernel
                            // dequantizes per head into reused scratch.
                            RankKv::QuantView(rank_input(&self.qcaches, rank)?.view(req.seq)?)
                        } else if self.config.gather_hot_kv {
                            let (k, v, pos) = cache.gather(req.seq)?;
                            RankKv::tensors_blocked(SeqKv { k, v, pos }, attn_block)
                        } else {
                            RankKv::View(cache.view(req.seq)?)
                        });
                    }
                    queries.push(rank_q);
                    kvs.push(rank_kv);
                }
                run_ring(n, |comm| {
                    let my_q = rank_input(&queries, comm.rank())?;
                    let my_kv = rank_input(&kvs, comm.rank())?;
                    match direction {
                        RingDirection::Uni => {
                            ring_pass_q_prefill_kv_on(comm, &params, my_q, my_kv, layout)
                        }
                        RingDirection::Bidi => {
                            ring_pass_q_prefill_bidi_kv(comm, &params, my_q, my_kv, layout)
                        }
                    }
                })?
            }
        };

        // Un-shard: scatter each rank's rows back into original token order.
        let (nh, dh) = (self.config.shape.n_heads(), self.config.shape.head_dim());
        let mut outcomes = Vec::with_capacity(requests.len());
        for ((i, spec), req) in specs.iter().enumerate().zip(requests) {
            let t = spec.new_tokens;
            let mut out = Tensor::zeros(&[t, nh, dh]);
            let mut lse = Tensor::full(&[t, nh], f32::NEG_INFINITY);
            for (shard, outs) in shards.iter().zip(&rank_outputs) {
                let (rank_out, entry) =
                    outs.get(i)
                        .zip(shard.entries.get(i))
                        .ok_or_else(|| CoreError::Internal {
                            detail: format!("prefill produced no shard output for sequence {i}"),
                        })?;
                for (row, &pos) in entry.positions.iter().enumerate() {
                    let dst = pos - spec.cached_tokens;
                    out.row_mut(dst).copy_from_slice(rank_out.out.row(row));
                    lse.row_mut(dst).copy_from_slice(rank_out.lse.row(row));
                }
            }
            self.lens.insert(req.seq.0, spec.total_len());
            outcomes.push(PrefillOutcome {
                output: AttentionOutput::new(out, lse)?,
                variant,
                traffic: traffic.clone(),
                new_tokens: t,
                cached_tokens: spec.cached_tokens,
            });
        }
        Ok(outcomes)
    }

    /// One batched decode step: each `(seq, q, k, v)` contributes exactly
    /// one new token. The new KV is appended to the rank chosen by the
    /// rotating round-robin assignment (§3.6) before attention, so the
    /// token attends to itself; outputs come back in batch order.
    ///
    /// # Errors
    ///
    /// Fails for unknown sequences, non-single-token inputs, duplicate
    /// sequences in the batch, cache exhaustion, or communication failure.
    pub fn decode_step(
        &mut self,
        batch: &[(SeqId, Tensor, Tensor, Tensor)],
    ) -> Result<DecodeOutcome, CoreError> {
        if batch.is_empty() {
            return Err(CoreError::BadRequest {
                reason: "decode batch is empty".to_string(),
            });
        }
        let n = self.config.n_ranks;
        let mut seen = std::collections::HashSet::new();
        for (seq, q, k, v) in batch {
            if !seen.insert(seq.0) {
                return Err(CoreError::BadRequest {
                    reason: format!("sequence {seq} appears twice in one decode batch"),
                });
            }
            if !self.lens.contains_key(&seq.0) {
                return Err(CoreError::BadRequest {
                    reason: format!("unknown sequence {seq}"),
                });
            }
            let t = self.config.shape.check_q(q)?;
            let tk = self.config.shape.check_kv(k, "k")?;
            let tv = self.config.shape.check_kv(v, "v")?;
            if t != 1 || tk != 1 || tv != 1 {
                return Err(CoreError::BadRequest {
                    reason: format!("decode takes exactly one token per sequence, got {t}"),
                });
            }
        }

        let assignment = decode_round_robin(batch.len(), n, self.decode_step)?;

        // Append each new token's KV to its assigned rank, then build the
        // per-rank slot lists.
        let slots_per_rank = assignment.slots_per_rank();
        let mut slots: Vec<Vec<Option<DecodeSlot>>> = vec![Vec::new(); n];
        let mut ctx_total = 0usize;
        for (b, (seq, q, k, v)) in batch.iter().enumerate() {
            let rank = assignment.rank_of(b);
            let pos = self.context_len(*seq)?;
            ctx_total += pos + 1;
            let kq = self.maybe_quantize(k.clone())?;
            let vq = self.maybe_quantize(v.clone())?;
            rank_input_mut(&mut self.caches, rank)?.append(*seq, &kq, &vq, &[pos])?;
            if self.config.kv_precision == KvPrecision::Int8Total {
                rank_input_mut(&mut self.qcaches, rank)?.append(*seq, &kq, &vq, &[pos])?;
            }
            rank_input_mut(&mut slots, rank)?.push(Some(DecodeSlot {
                bid: b,
                q: q.clone(),
                pos,
            }));
        }
        for rank_slots in &mut slots {
            rank_slots.resize(slots_per_rank, None);
        }

        // Borrow every rank's local shard of every batched sequence as a
        // zero-copy view (the decode hot path: no per-step per-layer O(P)
        // gather), or gather owned tensors in A/B mode — both attended
        // with the same KV block size, so they are bit-identical.
        let attn_block = attn_block_for(self.config.page_size);
        let total_quant = self.total_quant();
        let mut batch_kv: Vec<Vec<RankKv<'_>>> = Vec::with_capacity(n);
        for (rank, cache) in self.caches.iter().enumerate() {
            let mut kvs = Vec::with_capacity(batch.len());
            for (seq, ..) in batch {
                kvs.push(if total_quant {
                    RankKv::QuantView(rank_input(&self.qcaches, rank)?.view(*seq)?)
                } else if self.config.gather_hot_kv {
                    let (k, v, pos) = cache.gather(*seq)?;
                    RankKv::tensors_blocked(SeqKv { k, v, pos }, attn_block)
                } else {
                    RankKv::View(cache.view(*seq)?)
                });
            }
            batch_kv.push(kvs);
        }

        // Resolve the decode strategy; TP-only additionally needs each
        // rank's owned per-sequence shard for the KV AllGather wire (the
        // dequantized INT8 pages under `Int8Total`, so owned re-attention
        // matches the quant-view path bit-for-bit).
        let strategy = self.resolve_decode_strategy(ctx_total, batch.len());
        let wire_kv: Option<Vec<Vec<SeqKv>>> = if strategy == DecodeStrategy::TpOnly && n > 1 {
            let mut per_rank = Vec::with_capacity(n);
            for rank in 0..n {
                let mut seqs = Vec::with_capacity(batch.len());
                for (seq, ..) in batch {
                    seqs.push(if total_quant {
                        let (k, v, pos) =
                            rank_input(&self.qcaches, rank)?.gather_quantized(*seq)?;
                        SeqKv {
                            k: k.dequantize(),
                            v: v.dequantize(),
                            pos,
                        }
                    } else {
                        let (k, v, pos) = rank_input(&self.caches, rank)?.gather(*seq)?;
                        SeqKv { k, v, pos }
                    });
                }
                per_rank.push(seqs);
            }
            Some(per_rank)
        } else {
            None
        };

        // The decode ring circulates tiny per-slot queries; only the
        // direction matters (the batched All2All return is layout-free,
        // so the decode loops are flat-only).
        let (direction, _) = self.resolve_schedule(RingVariant::PassQ, batch.len(), 0);
        let params = self.params;
        let (rank_outputs, traffic) = run_ring(n, |comm| {
            let my_slots = rank_input(&slots, comm.rank())?;
            let my_kv = rank_input(&batch_kv, comm.rank())?;
            match strategy {
                DecodeStrategy::PassQ => match direction {
                    RingDirection::Uni => ring_pass_q_decode_kv(comm, &params, my_slots, my_kv),
                    RingDirection::Bidi => {
                        ring_pass_q_decode_bidi_kv(comm, &params, my_slots, my_kv)
                    }
                },
                DecodeStrategy::Helix => helix_decode_kv(comm, &params, my_slots, my_kv),
                DecodeStrategy::TpOnly => {
                    let wire = match &wire_kv {
                        Some(w) => rank_input(w, comm.rank())?.as_slice(),
                        None => &[],
                    };
                    tp_only_decode_kv(comm, &params, my_slots, my_kv, wire, attn_block)
                }
            }
        })?;

        // Map per-rank slot outputs back to batch order.
        let mut outputs: Vec<Option<AttentionOutput>> = vec![None; batch.len()];
        for (outs, rank_slots) in rank_outputs.into_iter().zip(&slots) {
            for (slot, out) in rank_slots.iter().flatten().zip(outs) {
                *rank_input_mut(&mut outputs, slot.bid)? = Some(out);
            }
        }
        let outputs: Vec<AttentionOutput> = outputs
            .into_iter()
            .enumerate()
            .map(|(b, o)| {
                o.ok_or_else(|| CoreError::Internal {
                    detail: format!("decode produced no output for batch element {b}"),
                })
            })
            .collect::<Result<_, _>>()?;

        for (seq, ..) in batch {
            // Presence was validated at batch entry; a vanished entry here
            // would already have failed the context_len lookup above.
            if let Some(len) = self.lens.get_mut(&seq.0) {
                *len += 1;
            }
        }
        let step = self.decode_step;
        self.decode_step += 1;
        Ok(DecodeOutcome {
            outputs,
            traffic,
            step,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::single_device_prefill;
    use cp_tensor::DetRng;

    fn shape() -> GqaShape {
        GqaShape::new(4, 2, 8).unwrap()
    }

    fn engine(n: usize) -> ContextParallelEngine {
        ContextParallelEngine::new(EngineConfig::new(n, shape()).with_page_size(4)).unwrap()
    }

    fn qkv(rng: &mut DetRng, t: usize) -> (Tensor, Tensor, Tensor) {
        (
            rng.tensor(&[t, 4, 8]),
            rng.tensor(&[t, 2, 8]),
            rng.tensor(&[t, 2, 8]),
        )
    }

    #[test]
    fn full_prefill_matches_single_device() {
        for n in [1, 2, 3, 4] {
            let mut eng = engine(n);
            let mut rng = DetRng::new(1);
            let t = 50;
            let (q, k, v) = qkv(&mut rng, t);
            let outcome = eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
            let pos: Vec<usize> = (0..t).collect();
            let reference = single_device_prefill(&q, &k, &v, eng.params(), &pos, &pos).unwrap();
            assert!(
                outcome.output.out.approx_eq(&reference.out, 2e-3).unwrap(),
                "n={n}: {}",
                outcome.output.out.max_abs_diff(&reference.out).unwrap()
            );
            assert!(outcome.output.lse.approx_eq(&reference.lse, 2e-3).unwrap());
            assert_eq!(outcome.new_tokens, t);
            assert_eq!(outcome.cached_tokens, 0);
            assert_eq!(eng.context_len(SeqId(0)).unwrap(), t);
        }
    }

    #[test]
    fn multi_turn_partial_prefill_matches_single_device() {
        let n = 3;
        let mut eng = engine(n);
        let mut rng = DetRng::new(2);
        let turns = [17usize, 9, 23];
        let mut all_k: Vec<Tensor> = Vec::new();
        let mut all_v: Vec<Tensor> = Vec::new();
        let mut start = 0usize;
        for (turn, &t) in turns.iter().enumerate() {
            let (q, k, v) = qkv(&mut rng, t);
            let outcome = if turn == 0 {
                eng.full_prefill(SeqId(9), &q, &k, &v).unwrap()
            } else {
                eng.partial_prefill(SeqId(9), &q, &k, &v).unwrap()
            };
            all_k.push(k);
            all_v.push(v);
            let full_k = Tensor::concat_dim0(all_k.iter()).unwrap();
            let full_v = Tensor::concat_dim0(all_v.iter()).unwrap();
            let kv_pos: Vec<usize> = (0..start + t).collect();
            let q_pos: Vec<usize> = (start..start + t).collect();
            let reference =
                single_device_prefill(&q, &full_k, &full_v, eng.params(), &q_pos, &kv_pos).unwrap();
            assert!(
                outcome.output.out.approx_eq(&reference.out, 2e-3).unwrap(),
                "turn {turn}"
            );
            assert_eq!(outcome.cached_tokens, start);
            start += t;
            assert_eq!(eng.context_len(SeqId(9)).unwrap(), start);
        }
    }

    #[test]
    fn decode_steps_match_single_device() {
        let n = 2;
        let mut eng = engine(n);
        let mut rng = DetRng::new(3);
        let t0 = 21;
        let (q, k, v) = qkv(&mut rng, t0);
        eng.full_prefill(SeqId(1), &q, &k, &v).unwrap();
        let mut all_k = vec![k];
        let mut all_v = vec![v];
        for step in 0..6 {
            let (q1, k1, v1) = qkv(&mut rng, 1);
            let out = eng
                .decode_step(&[(SeqId(1), q1.clone(), k1.clone(), v1.clone())])
                .unwrap();
            all_k.push(k1);
            all_v.push(v1);
            let full_k = Tensor::concat_dim0(all_k.iter()).unwrap();
            let full_v = Tensor::concat_dim0(all_v.iter()).unwrap();
            let ctx = t0 + step;
            let kv_pos: Vec<usize> = (0..=ctx).collect();
            let reference =
                single_device_prefill(&q1, &full_k, &full_v, eng.params(), &[ctx], &kv_pos)
                    .unwrap();
            assert!(
                out.outputs[0].out.approx_eq(&reference.out, 2e-3).unwrap(),
                "step {step}"
            );
            assert_eq!(out.step, step);
        }
        assert_eq!(eng.context_len(SeqId(1)).unwrap(), t0 + 6);
    }

    #[test]
    fn batched_decode_multiple_sequences() {
        let n = 3;
        let mut eng = engine(n);
        let mut rng = DetRng::new(4);
        let mut histories: Vec<(Vec<Tensor>, Vec<Tensor>)> = Vec::new();
        for s in 0..4u64 {
            let t = 10 + s as usize * 3;
            let (q, k, v) = qkv(&mut rng, t);
            eng.full_prefill(SeqId(s), &q, &k, &v).unwrap();
            histories.push((vec![k], vec![v]));
        }
        for _step in 0..4 {
            let mut batch = Vec::new();
            let mut queries = Vec::new();
            for s in 0..4u64 {
                let (q1, k1, v1) = qkv(&mut rng, 1);
                queries.push(q1.clone());
                batch.push((SeqId(s), q1, k1.clone(), v1.clone()));
                histories[s as usize].0.push(k1);
                histories[s as usize].1.push(v1);
            }
            let out = eng.decode_step(&batch).unwrap();
            assert_eq!(out.outputs.len(), 4);
            for s in 0..4usize {
                let full_k = Tensor::concat_dim0(histories[s].0.iter()).unwrap();
                let full_v = Tensor::concat_dim0(histories[s].1.iter()).unwrap();
                let ctx = full_k.dim0() - 1;
                let kv_pos: Vec<usize> = (0..=ctx).collect();
                let reference = single_device_prefill(
                    &queries[s],
                    &full_k,
                    &full_v,
                    eng.params(),
                    &[ctx],
                    &kv_pos,
                )
                .unwrap();
                assert!(out.outputs[s].out.approx_eq(&reference.out, 2e-3).unwrap());
            }
        }
    }

    #[test]
    fn decode_rotation_balances_kv_growth() {
        let n = 4;
        let mut eng = engine(n);
        let mut rng = DetRng::new(5);
        let (q, k, v) = qkv(&mut rng, 8);
        eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
        let before = eng.rank_kv_lens(SeqId(0)).unwrap();
        for _ in 0..40 {
            let (q1, k1, v1) = qkv(&mut rng, 1);
            eng.decode_step(&[(SeqId(0), q1, k1, v1)]).unwrap();
        }
        let after = eng.rank_kv_lens(SeqId(0)).unwrap();
        let grown: Vec<usize> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
        // 40 decode tokens over 4 ranks with rotation: exactly 10 each.
        assert_eq!(grown, vec![10; 4]);
    }

    #[test]
    fn fused_varseq_batch_prefill_exact() {
        let n = 2;
        let mut eng = engine(n);
        let mut rng = DetRng::new(6);
        let (qa, ka, va) = qkv(&mut rng, 19);
        let (qb, kb, vb) = qkv(&mut rng, 7);
        let outcomes = eng
            .prefill_batch(
                &[
                    PrefillRequest {
                        seq: SeqId(0),
                        q: &qa,
                        k: &ka,
                        v: &va,
                    },
                    PrefillRequest {
                        seq: SeqId(1),
                        q: &qb,
                        k: &kb,
                        v: &vb,
                    },
                ],
                None,
            )
            .unwrap();
        assert_eq!(outcomes.len(), 2);
        for (outcome, (q, k, v)) in outcomes.iter().zip([(&qa, &ka, &va), (&qb, &kb, &vb)]) {
            let t = q.dim0();
            let pos: Vec<usize> = (0..t).collect();
            let reference = single_device_prefill(q, k, v, eng.params(), &pos, &pos).unwrap();
            assert!(outcome.output.out.approx_eq(&reference.out, 2e-3).unwrap());
        }
    }

    #[test]
    fn forced_variants_agree() {
        let n = 3;
        let mut rng = DetRng::new(7);
        let (q, k, v) = qkv(&mut rng, 31);
        let run = |variant| {
            let mut eng = engine(n);
            eng.prefill_batch(
                &[PrefillRequest {
                    seq: SeqId(0),
                    q: &q,
                    k: &k,
                    v: &v,
                }],
                Some(variant),
            )
            .unwrap()
            .remove(0)
        };
        let kv = run(RingVariant::PassKv);
        let pq = run(RingVariant::PassQ);
        assert_eq!(kv.variant, RingVariant::PassKv);
        assert_eq!(pq.variant, RingVariant::PassQ);
        assert!(kv.output.out.approx_eq(&pq.output.out, 1e-3).unwrap());
        // Neither variant pays an exposed All2All: pass-Q's return hop is
        // double-buffered into eager per-hop sends (send_recv category),
        // so pass-Q moves more point-to-point messages than pass-KV's
        // N*(N-1) hops.
        assert_eq!(kv.traffic.all_to_all_bytes, 0);
        assert_eq!(pq.traffic.all_to_all_bytes, 0);
        assert!(pq.traffic.send_recv.calls > kv.traffic.send_recv.calls);
    }

    #[test]
    fn heuristic_picks_pass_kv_for_full_prefill() {
        // Full prefill of a GQA model with N_H > 2*N_KV must choose
        // pass-KV under Algorithm 1 (§3.4).
        let mut eng = ContextParallelEngine::new(
            EngineConfig::new(2, GqaShape::new(8, 2, 4).unwrap()).with_page_size(4),
        )
        .unwrap();
        let mut rng = DetRng::new(8);
        let q = rng.tensor(&[64, 8, 4]);
        let t = q.dim0();
        let k = rng.tensor(&[t, 2, 4]);
        let v = rng.tensor(&[t, 2, 4]);
        let outcome = eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
        assert_eq!(outcome.variant, RingVariant::PassKv);
    }

    #[test]
    fn kv_balance_across_ranks_after_prefill() {
        let n = 4;
        let mut eng = engine(n);
        let mut rng = DetRng::new(9);
        let (q, k, v) = qkv(&mut rng, 160);
        eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
        let lens = eng.rank_kv_lens(SeqId(0)).unwrap();
        assert_eq!(lens.iter().sum::<usize>(), 160);
        let max = lens.iter().max().unwrap();
        let min = lens.iter().min().unwrap();
        assert!(max - min <= 160usize.div_ceil(2 * n) * 2, "{lens:?}");
    }

    #[test]
    fn bad_requests_are_rejected() {
        let mut eng = engine(2);
        let mut rng = DetRng::new(10);
        let (q, k, v) = qkv(&mut rng, 4);
        // Unknown sequence for partial prefill / decode / queries.
        assert!(eng.partial_prefill(SeqId(5), &q, &k, &v).is_err());
        assert!(eng.context_len(SeqId(5)).is_err());
        assert!(eng.rank_kv_lens(SeqId(5)).is_err());
        assert!(eng.free_sequence(SeqId(5)).is_err());
        // Mismatched shapes.
        let bad_k = rng.tensor(&[3, 2, 8]);
        assert!(eng.full_prefill(SeqId(0), &q, &bad_k, &v).is_err());
        // Duplicate full prefill.
        eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
        assert!(eng.full_prefill(SeqId(0), &q, &k, &v).is_err());
        // Duplicate within one batch.
        assert!(eng
            .prefill_batch(
                &[
                    PrefillRequest {
                        seq: SeqId(7),
                        q: &q,
                        k: &k,
                        v: &v
                    },
                    PrefillRequest {
                        seq: SeqId(7),
                        q: &q,
                        k: &k,
                        v: &v
                    },
                ],
                None,
            )
            .is_err());
        // Decode with more than one token.
        let (q2, k2, v2) = qkv(&mut rng, 2);
        assert!(eng.decode_step(&[(SeqId(0), q2, k2, v2)]).is_err());
        // Empty decode batch.
        assert!(eng.decode_step(&[]).is_err());
        // Zero ranks.
        assert!(ContextParallelEngine::new(EngineConfig::new(0, shape())).is_err());
    }

    #[test]
    fn failed_prefill_rolls_back_completely() {
        let mut eng = ContextParallelEngine::new(
            EngineConfig::new(2, shape())
                .with_page_size(2)
                .with_max_pages(4), // 8 tokens per rank
        )
        .unwrap();
        let mut rng = DetRng::new(41);
        // A sequence that fits.
        let (q, k, v) = qkv(&mut rng, 12);
        eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
        let before = eng.rank_kv_lens(SeqId(0)).unwrap();
        // A follow-up that cannot fit: partial prefill must fail AND leave
        // the original sequence exactly as it was.
        let (q2, k2, v2) = qkv(&mut rng, 64);
        assert!(eng.partial_prefill(SeqId(0), &q2, &k2, &v2).is_err());
        assert_eq!(eng.context_len(SeqId(0)).unwrap(), 12);
        assert_eq!(eng.rank_kv_lens(SeqId(0)).unwrap(), before);
        // A new sequence that cannot fit: must not remain registered.
        assert!(eng.full_prefill(SeqId(1), &q2, &k2, &v2).is_err());
        assert!(eng.context_len(SeqId(1)).is_err());
        assert!(eng.rank_kv_lens(SeqId(1)).is_err());
        // And the engine still works afterwards.
        let (q3, k3, v3) = qkv(&mut rng, 1);
        eng.decode_step(&[(SeqId(0), q3, k3, v3)]).unwrap();
    }

    #[test]
    fn cache_capacity_exhaustion_surfaces() {
        let mut eng = ContextParallelEngine::new(
            EngineConfig::new(2, shape())
                .with_page_size(2)
                .with_max_pages(2), // 4 tokens per rank
        )
        .unwrap();
        let mut rng = DetRng::new(11);
        let (q, k, v) = qkv(&mut rng, 64); // 32 per rank >> 4
        let err = eng.full_prefill(SeqId(0), &q, &k, &v).unwrap_err();
        assert!(matches!(err, CoreError::Cache(_)), "{err}");
    }

    #[test]
    fn free_sequence_releases_pages() {
        let mut eng = engine(2);
        let mut rng = DetRng::new(12);
        let (q, k, v) = qkv(&mut rng, 16);
        eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
        assert!(eng.cache_stats().iter().any(|s| s.allocated_pages > 0));
        eng.free_sequence(SeqId(0)).unwrap();
        assert!(eng.cache_stats().iter().all(|s| s.allocated_pages == 0));
        assert!(eng.context_len(SeqId(0)).is_err());
    }

    #[test]
    fn rollback_restores_exactness() {
        // Prefill, decode 5 tokens, roll back 3, decode again: the result
        // must equal a trace that never decoded the rejected tokens.
        let n = 3;
        let run = |speculate: bool| {
            let mut eng = engine(n);
            let mut rng = DetRng::new(21);
            let (q, k, v) = qkv(&mut rng, 13);
            eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
            let (q1, k1, v1) = qkv(&mut rng, 1);
            let (q2, k2, v2) = qkv(&mut rng, 1);
            eng.decode_step(&[(SeqId(0), q1, k1, v1)]).unwrap();
            eng.decode_step(&[(SeqId(0), q2, k2, v2)]).unwrap();
            if speculate {
                // Three speculative tokens, all rejected.
                let mut spec_rng = DetRng::new(999);
                for _ in 0..3 {
                    let sq = spec_rng.tensor(&[1, 4, 8]);
                    let sk = spec_rng.tensor(&[1, 2, 8]);
                    let sv = spec_rng.tensor(&[1, 2, 8]);
                    eng.decode_step(&[(SeqId(0), sq, sk, sv)]).unwrap();
                }
                eng.rollback(SeqId(0), 3).unwrap();
            }
            let (q3, k3, v3) = qkv(&mut rng, 1);
            let out = eng.decode_step(&[(SeqId(0), q3, k3, v3)]).unwrap();
            (eng.context_len(SeqId(0)).unwrap(), out.outputs[0].clone())
        };
        let (len_a, out_a) = run(false);
        let (len_b, out_b) = run(true);
        assert_eq!(len_a, len_b);
        assert!(out_a.out.approx_eq(&out_b.out, 1e-5).unwrap());
    }

    #[test]
    fn rollback_validates_bounds() {
        let mut eng = engine(2);
        let mut rng = DetRng::new(22);
        let (q, k, v) = qkv(&mut rng, 4);
        assert!(eng.rollback(SeqId(0), 1).is_err()); // unknown sequence
        eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
        assert!(eng.rollback(SeqId(0), 5).is_err()); // longer than context
        eng.rollback(SeqId(0), 4).unwrap(); // to empty is fine
        assert_eq!(eng.context_len(SeqId(0)).unwrap(), 0);
        assert_eq!(eng.rank_kv_lens(SeqId(0)).unwrap(), vec![0, 0]);
    }

    #[test]
    fn simulated_kv_quant_stays_close_to_exact() {
        let n = 2;
        let mut rng = DetRng::new(23);
        let (q, k, v) = qkv(&mut rng, 32);
        let exact = {
            let mut eng = engine(n);
            eng.full_prefill(SeqId(0), &q, &k, &v).unwrap().output
        };
        let quant = {
            let mut eng = ContextParallelEngine::new(
                EngineConfig::new(n, shape())
                    .with_page_size(4)
                    .with_simulated_kv_quant(),
            )
            .unwrap();
            eng.full_prefill(SeqId(0), &q, &k, &v).unwrap().output
        };
        let err = exact.out.max_abs_diff(&quant.out).unwrap();
        assert!(err > 0.0, "quantization should perturb something");
        assert!(err < 0.02, "quantization error too large: {err}");
    }

    #[test]
    fn int8_wire_pass_kv_compresses_traffic_and_stays_close() {
        let n = 4;
        let t = 64; // divisible by 2N: ring_len = t/n per rank
        let mut rng = DetRng::new(51);
        let (q, k, v) = qkv(&mut rng, t);
        let run = |precision| {
            let mut eng = ContextParallelEngine::new(
                EngineConfig::new(n, shape())
                    .with_page_size(4)
                    .with_kv_precision(precision),
            )
            .unwrap();
            eng.prefill_batch(
                &[PrefillRequest {
                    seq: SeqId(0),
                    q: &q,
                    k: &k,
                    v: &v,
                }],
                Some(RingVariant::PassKv),
            )
            .unwrap()
            .remove(0)
        };
        let exact = run(KvPrecision::F32);
        let wire = run(KvPrecision::Int8Wire);
        let err = exact.output.out.max_abs_diff(&wire.output.out).unwrap();
        assert!(err > 0.0, "compressed hops should perturb something");
        assert!(err < 0.05, "quantization error too large: {err}");
        // Each hop's (token, head) vector shrinks from 4d to d + 4 bytes:
        // per token 2 (K+V) * NKV=2 * (8 + 4) = 48 vs 128 f32 bytes.
        let ring_len = t / n;
        assert_eq!(wire.traffic.send_recv_bytes, n * (n - 1) * ring_len * 48);
        assert_eq!(exact.traffic.send_recv_bytes, n * (n - 1) * ring_len * 128);
    }

    #[test]
    fn int8_total_workload_stays_close_and_survives_rollback() {
        // Full multi-turn workload (full + partial prefill, decode,
        // rollback, decode) at Int8Total vs exact f32: every output
        // within quantization tolerance, and the INT8 pool tracks the
        // f32 master through truncations.
        let n = 3;
        let run = |precision| {
            let mut eng = ContextParallelEngine::new(
                EngineConfig::new(n, shape())
                    .with_page_size(4)
                    .with_kv_precision(precision),
            )
            .unwrap();
            let mut rng = DetRng::new(52);
            let mut outs = Vec::new();
            let (q, k, v) = qkv(&mut rng, 21);
            outs.push(eng.full_prefill(SeqId(0), &q, &k, &v).unwrap().output);
            let (q, k, v) = qkv(&mut rng, 9);
            outs.push(eng.partial_prefill(SeqId(0), &q, &k, &v).unwrap().output);
            for _ in 0..3 {
                let (q1, k1, v1) = qkv(&mut rng, 1);
                outs.extend(eng.decode_step(&[(SeqId(0), q1, k1, v1)]).unwrap().outputs);
            }
            eng.rollback(SeqId(0), 2).unwrap();
            let (q1, k1, v1) = qkv(&mut rng, 1);
            outs.extend(eng.decode_step(&[(SeqId(0), q1, k1, v1)]).unwrap().outputs);
            (outs, eng.rank_kv_lens(SeqId(0)).unwrap())
        };
        let (exact, exact_lens) = run(KvPrecision::F32);
        let (quant, quant_lens) = run(KvPrecision::Int8Total);
        assert_eq!(exact_lens, quant_lens);
        for (i, (a, b)) in exact.iter().zip(&quant).enumerate() {
            let err = a.out.max_abs_diff(&b.out).unwrap();
            assert!(err < 0.05, "output {i}: quantization error {err}");
        }
        // The decode outputs go through the quantized pages, so they
        // must actually differ from exact f32.
        let last_err = exact
            .last()
            .unwrap()
            .out
            .max_abs_diff(&quant.last().unwrap().out)
            .unwrap();
        assert!(last_err > 0.0, "Int8Total should attend quantized pages");
    }

    #[test]
    fn int8_wire_bidi_and_hier_schedules_are_bitwise_stable() {
        // The compressed family folds partials in canonical origin order,
        // so unlike f32 every (direction, layout) is bitwise identical.
        let mk = |direction, layout| {
            ContextParallelEngine::new(
                EngineConfig::new(4, shape())
                    .with_page_size(4)
                    .with_kv_precision(KvPrecision::Int8Wire)
                    .with_schedule(direction, layout),
            )
            .unwrap()
        };
        let run = |mut eng: ContextParallelEngine| {
            let mut rng = DetRng::new(53);
            let (q, k, v) = qkv(&mut rng, 37);
            eng.prefill_batch(
                &[PrefillRequest {
                    seq: SeqId(0),
                    q: &q,
                    k: &k,
                    v: &v,
                }],
                Some(RingVariant::PassKv),
            )
            .unwrap()
            .remove(0)
            .output
        };
        let base = run(mk(RingDirection::Uni, RingLayout::Flat));
        for (direction, layout) in [
            (RingDirection::Bidi, RingLayout::Flat),
            (RingDirection::Uni, RingLayout::Hier(Topology::new(2, 2))),
            (RingDirection::Bidi, RingLayout::Hier(Topology::new(2, 2))),
        ] {
            let other = run(mk(direction, layout));
            assert_eq!(base.out.as_slice(), other.out.as_slice());
            assert_eq!(base.lse.as_slice(), other.lse.as_slice());
        }
    }

    #[test]
    fn all_shard_strategies_are_exact() {
        // The ablation point: striped and contiguous sharding are also
        // exact (position-masked kernels), they just balance worse.
        use cp_sharding::ShardStrategy;
        let n = 3;
        let mut rng = DetRng::new(31);
        let (q, k, v) = qkv(&mut rng, 41);
        let pos: Vec<usize> = (0..41).collect();
        let reference = {
            let eng = engine(n);
            crate::baseline::single_device_prefill(&q, &k, &v, eng.params(), &pos, &pos).unwrap()
        };
        for strategy in [
            ShardStrategy::LoadBalanced,
            ShardStrategy::Striped { stripe: 2 },
            ShardStrategy::Contiguous,
        ] {
            let mut eng = ContextParallelEngine::new(
                EngineConfig::new(n, shape())
                    .with_page_size(4)
                    .with_shard_strategy(strategy),
            )
            .unwrap();
            let outcome = eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
            assert!(
                outcome.output.out.approx_eq(&reference.out, 2e-3).unwrap(),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn view_and_gather_hot_paths_are_bit_identical() {
        // Multi-turn pass-Q prefill + decode across ragged page boundaries:
        // the zero-copy view path must match the gather path bit for bit
        // (same KV block size, same arithmetic, different storage walk).
        let run = |gather: bool| {
            let mut cfg = EngineConfig::new(3, shape()).with_page_size(4);
            if gather {
                cfg = cfg.with_gathered_hot_kv(true);
            }
            let mut eng = ContextParallelEngine::new(cfg).unwrap();
            let mut rng = DetRng::new(77);
            let (q, k, v) = qkv(&mut rng, 21); // 21 % 4 != 0: ragged last pages
            eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
            let (q2, k2, v2) = qkv(&mut rng, 9);
            let turn = eng
                .prefill_batch(
                    &[PrefillRequest {
                        seq: SeqId(0),
                        q: &q2,
                        k: &k2,
                        v: &v2,
                    }],
                    Some(RingVariant::PassQ),
                )
                .unwrap()
                .remove(0);
            let mut outs = vec![turn.output];
            for _ in 0..3 {
                let (q1, k1, v1) = qkv(&mut rng, 1);
                let mut step = eng.decode_step(&[(SeqId(0), q1, k1, v1)]).unwrap();
                outs.push(step.outputs.remove(0));
            }
            outs
        };
        let view = run(false);
        let gather = run(true);
        for (a, b) in view.iter().zip(&gather) {
            assert_eq!(a.out.as_slice(), b.out.as_slice());
            assert_eq!(a.lse.as_slice(), b.lse.as_slice());
        }
    }

    #[test]
    fn pass_kv_traffic_matches_formula() {
        // (N-1) hops per rank, each of ring_len tokens * 2 (K+V) * NKV *
        // Dh * 4 bytes: the Table 2 accounting at e = 4.
        let n = 4;
        let t = 64; // divisible by 2N: ring_len = t/n per rank
        let mut eng = engine(n);
        let mut rng = DetRng::new(13);
        let (q, k, v) = qkv(&mut rng, t);
        let outcome = eng
            .prefill_batch(
                &[PrefillRequest {
                    seq: SeqId(0),
                    q: &q,
                    k: &k,
                    v: &v,
                }],
                Some(RingVariant::PassKv),
            )
            .unwrap()
            .remove(0);
        let ring_len = t / n;
        let per_msg = 2 * ring_len * 2 * 8 * 4; // K+V, NKV=2, Dh=8, f32
        assert_eq!(
            outcome.traffic.send_recv_bytes,
            n * (n - 1) * per_msg,
            "{:?}",
            outcome.traffic
        );
    }

    /// Runs one multi-turn workload (full prefill, chunked partial
    /// prefill, two decode steps) through an engine and returns the
    /// flattened outputs in order.
    fn schedule_workload(mut eng: ContextParallelEngine) -> Vec<AttentionOutput> {
        let mut rng = DetRng::new(77);
        let mut outs = Vec::new();
        let (q, k, v) = qkv(&mut rng, 23);
        outs.push(eng.full_prefill(SeqId(5), &q, &k, &v).unwrap().output);
        let (q, k, v) = qkv(&mut rng, 9);
        outs.push(eng.partial_prefill(SeqId(5), &q, &k, &v).unwrap().output);
        for _ in 0..2 {
            let (q1, k1, v1) = qkv(&mut rng, 1);
            outs.extend(eng.decode_step(&[(SeqId(5), q1, k1, v1)]).unwrap().outputs);
        }
        outs
    }

    fn assert_outputs_bitwise(a: &[AttentionOutput], b: &[AttentionOutput], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.out.as_slice(), y.out.as_slice(), "{what}: output {i}");
            assert_eq!(x.lse.as_slice(), y.lse.as_slice(), "{what}: lse {i}");
        }
    }

    #[test]
    fn fixed_bidi_flat_schedule_is_bit_identical() {
        for n in [2, 3, 4] {
            let base = schedule_workload(engine(n));
            let bidi = schedule_workload(
                ContextParallelEngine::new(
                    EngineConfig::new(n, shape())
                        .with_page_size(4)
                        .with_schedule(RingDirection::Bidi, RingLayout::Flat),
                )
                .unwrap(),
            );
            assert_outputs_bitwise(&base, &bidi, &format!("bidi-flat n={n}"));
        }
    }

    #[test]
    fn fixed_hier_schedules_match_flat() {
        // Pass-KV over the hierarchical path folds origins in a different
        // order than flat (exact but not bitwise); pass-Q and decode stay
        // bitwise. The engine heuristic mixes variants across the
        // workload, so compare numerically; then pin that hier-bidi is
        // bitwise against hier-uni (same fold order).
        let topo = Topology::new(2, 2);
        let base = schedule_workload(engine(4));
        let mk = |direction| {
            ContextParallelEngine::new(
                EngineConfig::new(4, shape())
                    .with_page_size(4)
                    .with_schedule(direction, RingLayout::Hier(topo)),
            )
            .unwrap()
        };
        let hier_uni = schedule_workload(mk(RingDirection::Uni));
        let hier_bidi = schedule_workload(mk(RingDirection::Bidi));
        for (i, (a, b)) in base.iter().zip(&hier_uni).enumerate() {
            assert!(
                a.out.approx_eq(&b.out, 2e-3).unwrap(),
                "hier-uni output {i} diverged from flat"
            );
        }
        assert_outputs_bitwise(&hier_uni, &hier_bidi, "hier-bidi vs hier-uni");
    }

    #[test]
    fn auto_schedule_matches_fixed_choice() {
        // Asymmetric 2x2 links: hier wins for every payload, and the 2x2
        // hier ring is bidi-degenerate, so Auto must resolve to uni-hier
        // everywhere — outputs bitwise-match the pinned uni-hier engine.
        let topo = TopologySpec::new(2, 2, 200.0, 10.0, 5.0);
        let auto = schedule_workload(
            ContextParallelEngine::new(
                EngineConfig::new(4, shape())
                    .with_page_size(4)
                    .with_auto_schedule(topo),
            )
            .unwrap(),
        );
        let fixed = schedule_workload(
            ContextParallelEngine::new(
                EngineConfig::new(4, shape())
                    .with_page_size(4)
                    .with_schedule(RingDirection::Uni, RingLayout::Hier(Topology::new(2, 2))),
            )
            .unwrap(),
        );
        assert_outputs_bitwise(&auto, &fixed, "auto vs pinned uni-hier");
    }

    /// Multi-turn two-sequence workload (uneven prefills, then batched
    /// decode steps) under a pinned decode strategy and precision.
    fn decode_strategy_workload(
        n: usize,
        strategy: Option<DecodeStrategy>,
        precision: KvPrecision,
    ) -> Vec<AttentionOutput> {
        let mut cfg = EngineConfig::new(n, shape())
            .with_page_size(4)
            .with_kv_precision(precision);
        if let Some(s) = strategy {
            cfg = cfg.with_decode_strategy(s);
        }
        let mut eng = ContextParallelEngine::new(cfg).unwrap();
        let mut rng = DetRng::new(41);
        let (q, k, v) = qkv(&mut rng, 19);
        eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
        let (q, k, v) = qkv(&mut rng, 7);
        eng.full_prefill(SeqId(1), &q, &k, &v).unwrap();
        let mut outs = Vec::new();
        for _ in 0..3 {
            let (q0, k0, v0) = qkv(&mut rng, 1);
            let (q1, k1, v1) = qkv(&mut rng, 1);
            outs.extend(
                eng.decode_step(&[(SeqId(0), q0, k0, v0), (SeqId(1), q1, k1, v1)])
                    .unwrap()
                    .outputs,
            );
        }
        outs
    }

    #[test]
    fn helix_decode_is_bit_identical_to_pass_q() {
        for n in [1, 2, 3, 4] {
            for precision in [KvPrecision::F32, KvPrecision::Int8Total] {
                let passq = decode_strategy_workload(n, Some(DecodeStrategy::PassQ), precision);
                let helix = decode_strategy_workload(n, Some(DecodeStrategy::Helix), precision);
                assert_outputs_bitwise(&passq, &helix, &format!("helix n={n} {precision:?}"));
            }
        }
    }

    #[test]
    fn tp_only_decode_is_bit_identical_to_pass_q() {
        for n in [1, 2, 3, 4] {
            for precision in [KvPrecision::F32, KvPrecision::Int8Total] {
                let passq = decode_strategy_workload(n, Some(DecodeStrategy::PassQ), precision);
                let tp = decode_strategy_workload(n, Some(DecodeStrategy::TpOnly), precision);
                assert_outputs_bitwise(&passq, &tp, &format!("tp-only n={n} {precision:?}"));
            }
        }
    }

    #[test]
    fn auto_schedule_decode_strategy_is_exact() {
        // Auto on a uniform single-node topology resolves Helix at CP>1;
        // whatever it picks must stay bitwise with the paper's pass-Q.
        let auto = |n: usize| {
            let mut cfg = EngineConfig::new(n, shape())
                .with_page_size(4)
                .with_auto_schedule(TopologySpec::uniform(n, 100.0, 5.0));
            cfg.decode_strategy = None;
            let mut eng = ContextParallelEngine::new(cfg).unwrap();
            let mut rng = DetRng::new(41);
            let (q, k, v) = qkv(&mut rng, 13);
            eng.full_prefill(SeqId(9), &q, &k, &v).unwrap();
            let (q1, k1, v1) = qkv(&mut rng, 1);
            eng.decode_step(&[(SeqId(9), q1, k1, v1)]).unwrap().outputs
        };
        for n in [1, 2, 4] {
            let fixed = {
                let mut eng =
                    ContextParallelEngine::new(EngineConfig::new(n, shape()).with_page_size(4))
                        .unwrap();
                let mut rng = DetRng::new(41);
                let (q, k, v) = qkv(&mut rng, 13);
                eng.full_prefill(SeqId(9), &q, &k, &v).unwrap();
                let (q1, k1, v1) = qkv(&mut rng, 1);
                eng.decode_step(&[(SeqId(9), q1, k1, v1)]).unwrap().outputs
            };
            assert_outputs_bitwise(&auto(n), &fixed, &format!("auto decode n={n}"));
        }
    }

    #[test]
    fn schedule_topology_must_cover_the_ranks() {
        let err = ContextParallelEngine::new(
            EngineConfig::new(3, shape())
                .with_schedule(RingDirection::Uni, RingLayout::Hier(Topology::new(2, 2))),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadRequest { .. }), "{err:?}");
        let err = ContextParallelEngine::new(
            EngineConfig::new(3, shape()).with_auto_schedule(TopologySpec::uniform(4, 100.0, 5.0)),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadRequest { .. }), "{err:?}");
    }
}
