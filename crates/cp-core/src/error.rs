//! Error type unifying the substrate errors under the engine's API.

use std::error::Error;
use std::fmt;

use cp_attention::AttentionError;
use cp_comm::CommError;
use cp_kvcache::CacheError;
use cp_sharding::ShardingError;
use cp_tensor::TensorError;

/// Error returned by context-parallel algorithms and the engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A tensor operation failed.
    Tensor(TensorError),
    /// An attention kernel or merge failed.
    Attention(AttentionError),
    /// Communication between ranks failed.
    Comm(CommError),
    /// Sharding failed.
    Sharding(ShardingError),
    /// A KV-cache operation failed.
    Cache(CacheError),
    /// A rank received a ring message of the wrong variant — a protocol
    /// bug, e.g. a KV payload arriving during a pass-Q loop.
    ProtocolViolation {
        /// The peer rank whose message violated the protocol.
        from_rank: usize,
        /// What the rank expected.
        expected: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
    /// A circulating ring block arrived out of schedule order: its origin
    /// tag contradicts the ring rotation invariant
    /// ([`crate::schedule::ring_origin`]).
    RingOrderViolation {
        /// The peer that forwarded the mis-ordered block.
        from_rank: usize,
        /// Ring step (0-based) at which the block arrived.
        step: usize,
        /// Origin the rotation invariant requires at this step.
        expected_origin: usize,
        /// Origin tag the block actually carried.
        got_origin: usize,
    },
    /// Request inputs are inconsistent (shapes, batch sizes, unknown ids).
    BadRequest {
        /// Human-readable description.
        reason: String,
    },
    /// An internal algorithm invariant was broken — a bug in this crate,
    /// surfaced as a typed error instead of a panic.
    Internal {
        /// Description of the broken invariant.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Attention(e) => write!(f, "attention error: {e}"),
            CoreError::Comm(e) => write!(f, "communication error: {e}"),
            CoreError::Sharding(e) => write!(f, "sharding error: {e}"),
            CoreError::Cache(e) => write!(f, "kv-cache error: {e}"),
            CoreError::ProtocolViolation {
                from_rank,
                expected,
                got,
            } => {
                write!(
                    f,
                    "ring protocol violation: rank {from_rank} sent {got}, expected {expected}"
                )
            }
            CoreError::RingOrderViolation {
                from_rank,
                step,
                expected_origin,
                got_origin,
            } => write!(
                f,
                "ring order violation: rank {from_rank} forwarded the block of origin \
                 {got_origin} at step {step}, rotation requires origin {expected_origin}"
            ),
            CoreError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            CoreError::Internal { detail } => write!(f, "internal invariant broken: {detail}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            CoreError::Attention(e) => Some(e),
            CoreError::Comm(e) => Some(e),
            CoreError::Sharding(e) => Some(e),
            CoreError::Cache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}
impl From<AttentionError> for CoreError {
    fn from(e: AttentionError) -> Self {
        CoreError::Attention(e)
    }
}
impl From<CommError> for CoreError {
    fn from(e: CommError) -> Self {
        CoreError::Comm(e)
    }
}
impl From<ShardingError> for CoreError {
    fn from(e: ShardingError) -> Self {
        CoreError::Sharding(e)
    }
}
impl From<CacheError> for CoreError {
    fn from(e: CacheError) -> Self {
        CoreError::Cache(e)
    }
}

impl CoreError {
    /// Stable, machine-readable tag of the error's kind, used when the
    /// error crosses the fabric boundary as [`CommError::RankFailed`].
    pub fn kind(&self) -> &'static str {
        match self {
            CoreError::Tensor(_) => "tensor",
            CoreError::Attention(_) => "attention",
            CoreError::Comm(_) => "comm",
            CoreError::Sharding(_) => "sharding",
            CoreError::Cache(_) => "kv-cache",
            CoreError::ProtocolViolation { .. } => "protocol-violation",
            CoreError::RingOrderViolation { .. } => "ring-order-violation",
            CoreError::BadRequest { .. } => "bad-request",
            CoreError::Internal { .. } => "internal",
        }
    }
}

/// Converts a `CoreError` into a `CommError` so rank closures (which must
/// return `Result<_, CommError>` for the fabric) can propagate attention
/// failures. Non-comm errors become [`CommError::RankFailed`] carrying the
/// failing `rank`, the original error's [`CoreError::kind`] and its display
/// message, so the failure stays attributable through the fabric boundary.
pub(crate) fn to_comm_error(rank: usize, e: CoreError) -> CommError {
    match e {
        CoreError::Comm(c) => c,
        other => CommError::RankFailed {
            rank,
            kind: other.kind(),
            detail: other.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::from(TensorError::EmptyInput);
        assert!(e.to_string().contains("tensor"));
        assert!(Error::source(&e).is_some());
        let p = CoreError::ProtocolViolation {
            from_rank: 3,
            expected: "kv",
            got: "q",
        };
        assert!(p.to_string().contains("kv"));
        assert!(p.to_string().contains("rank 3"));
        assert!(Error::source(&p).is_none());
    }

    #[test]
    fn comm_error_roundtrips() {
        let c = CommError::EmptyGroup;
        let e = CoreError::from(c.clone());
        assert_eq!(to_comm_error(0, e), c);
    }

    #[test]
    fn non_comm_error_preserves_rank_and_kind() {
        let e = CoreError::BadRequest {
            reason: "decode slot references unknown batch id 5".to_string(),
        };
        match to_comm_error(2, e) {
            CommError::RankFailed { rank, kind, detail } => {
                assert_eq!(rank, 2);
                assert_eq!(kind, "bad-request");
                assert!(detail.contains("batch id 5"));
            }
            other => panic!("expected RankFailed, got {other:?}"),
        }
        let p = CoreError::ProtocolViolation {
            from_rank: 1,
            expected: "Kv",
            got: "Q",
        };
        match to_comm_error(0, p) {
            CommError::RankFailed { rank, kind, detail } => {
                assert_eq!(rank, 0);
                assert_eq!(kind, "protocol-violation");
                assert!(detail.contains("rank 1"));
            }
            other => panic!("expected RankFailed, got {other:?}"),
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
