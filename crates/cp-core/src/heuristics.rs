//! Runtime selection between pass-KV and pass-Q (Algorithms 1 and 5,
//! Appendix D).
//!
//! All three heuristics answer the same question per partial prefill: given
//! `T` new tokens, `P` cached tokens, the model's head ratio and the
//! system's compute/bandwidth roofline, which ring variant has lower TTFT?
//!
//! * [`HeuristicKind::Threshold`] — Algorithm 1: pass-KV iff the new-token
//!   count exceeds the overlap threshold of Equation 2 **or** the miss rate
//!   exceeds `2 * N_KV / N_H` (Equation 1).
//! * [`HeuristicKind::All2AllAware`] — Algorithm 5: same first condition,
//!   with the miss-rate threshold lowered by the pass-Q `All2All` cost
//!   (Equation 5).
//! * [`HeuristicKind::Empirical`] — Appendix D: a fitted linear model
//!   `h(T, P) = α·ln T + β·ln(T/(T+P)) + γ`, preferring pass-KV when
//!   positive. [`fit_empirical`] refits `α, β, γ` against oracle labels
//!   from the performance model, reproducing Figure 10.

use cp_perf::schedule::{choose_family, hop_bytes_per_layer};
use cp_perf::{prefill, HardwareSpec, ModelSpec, RingVariant, ScheduleFamily, TopologySpec};

/// The model/hardware context a heuristic evaluates against.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemContext {
    /// Model architecture constants.
    pub model: ModelSpec,
    /// Cluster constants (achieved compute `C` and bandwidth `BW`).
    pub hw: HardwareSpec,
    /// CP ring size `N` (nodes).
    pub n_nodes: usize,
}

impl SystemContext {
    /// A context for Llama3 405B on GTT over `n_nodes` nodes — the paper's
    /// main configuration.
    pub fn llama3_405b_gtt(n_nodes: usize) -> Self {
        SystemContext {
            model: ModelSpec::llama3_405b(),
            hw: HardwareSpec::gtt(),
            n_nodes,
        }
    }

    /// Per-GPU achieved compute `C` in FLOP/s (the paper starts from peak
    /// and fine-tunes; we use the calibrated attention throughput).
    pub fn c_flops(&self) -> f64 {
        self.hw.attn_tflops * 1e12
    }

    /// Achieved per-GPU inter-node bandwidth `BW` in B/s.
    pub fn bw_bytes(&self) -> f64 {
        self.hw.inter_bw_gbs * 1e9
    }

    /// Equation 2's static threshold on `T`: ring pass-KV communication
    /// hides under attention iff `T >= N * C * N_KV * e / (2 * N_H * BW)`.
    pub fn pass_kv_overlap_threshold(&self) -> f64 {
        self.n_nodes as f64 * self.c_flops() * self.model.n_kv_heads as f64 * self.model.act_bytes
            / (2.0 * self.model.n_heads as f64 * self.bw_bytes())
    }

    /// Equation 3's static threshold on `T + P`: ring pass-Q communication
    /// hides under attention iff `T + P >= N * e * C / (4 * BW)`.
    pub fn pass_q_overlap_threshold(&self) -> f64 {
        self.n_nodes as f64 * self.model.act_bytes * self.c_flops() / (4.0 * self.bw_bytes())
    }
}

/// Which heuristic selects the ring variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeuristicKind {
    /// Algorithm 1 (Equations 1–2).
    Threshold,
    /// Algorithm 5 (Equation 5, All2All-aware).
    All2AllAware,
    /// Appendix D's fitted `h(T, P)` with the given coefficients.
    Empirical {
        /// Coefficient on `ln T`.
        alpha: f64,
        /// Coefficient on `ln(T / (T + P))`.
        beta: f64,
        /// Intercept.
        gamma: f64,
    },
    /// Evaluate both variants with the performance model and pick the
    /// faster one (the label generator for Figure 10; not a runtime
    /// policy).
    Oracle,
}

/// The paper's published Appendix D fit.
pub const PAPER_EMPIRICAL: HeuristicKind = HeuristicKind::Empirical {
    alpha: -1.059,
    beta: 1.145,
    gamma: 12.112,
};

/// Appendix D's decision value `h(T, P) = α ln T + β ln(T/(T+P)) + γ`;
/// pass-KV is preferred when positive.
pub fn empirical_h(alpha: f64, beta: f64, gamma: f64, t: usize, p: usize) -> f64 {
    if t == 0 {
        return f64::NEG_INFINITY; // nothing to prefill: degenerate, favour pass-Q
    }
    let miss = t as f64 / (t + p) as f64;
    alpha * (t as f64).ln() + beta * miss.ln() + gamma
}

/// Selects the ring variant for a partial prefill of `t` new tokens
/// against `p` cached tokens.
pub fn choose_variant(kind: HeuristicKind, ctx: &SystemContext, t: usize, p: usize) -> RingVariant {
    match kind {
        HeuristicKind::Threshold => {
            let miss = if t + p == 0 {
                0.0
            } else {
                t as f64 / (t + p) as f64
            };
            if t as f64 >= ctx.pass_kv_overlap_threshold()
                || miss >= ctx.model.pass_q_miss_threshold()
            {
                RingVariant::PassKv
            } else {
                RingVariant::PassQ
            }
        }
        HeuristicKind::All2AllAware => {
            let miss = if t + p == 0 {
                0.0
            } else {
                t as f64 / (t + p) as f64
            };
            // Equation 5: the miss-rate threshold shrinks by
            // 4*T*BW / (N*C*e).
            let adjust = 4.0 * t as f64 * ctx.bw_bytes()
                / (ctx.n_nodes as f64 * ctx.c_flops() * ctx.model.act_bytes);
            if t as f64 >= ctx.pass_kv_overlap_threshold()
                || miss >= ctx.model.pass_q_miss_threshold() - adjust
            {
                RingVariant::PassKv
            } else {
                RingVariant::PassQ
            }
        }
        HeuristicKind::Empirical { alpha, beta, gamma } => {
            if empirical_h(alpha, beta, gamma, t, p) > 0.0 {
                RingVariant::PassKv
            } else {
                RingVariant::PassQ
            }
        }
        HeuristicKind::Oracle => {
            let kv =
                prefill::cp_prefill(&ctx.model, &ctx.hw, ctx.n_nodes, t, p, RingVariant::PassKv);
            let q = prefill::cp_prefill(&ctx.model, &ctx.hw, ctx.n_nodes, t, p, RingVariant::PassQ);
            if kv.total_s <= q.total_s {
                RingVariant::PassKv
            } else {
                RingVariant::PassQ
            }
        }
    }
}

/// The extended heuristic: Algorithm 1/5 (or the empirical fit) picks the
/// ring *variant* from `(T, P)` as before, then the analytic link model
/// picks the cheapest *schedule family* — {uni, bidi} × {flat,
/// hierarchical} — for that variant's per-hop payload on the given link
/// topology. The two choices are separable because every family is
/// bit-exact for both variants: the variant decides *what* circulates
/// (Table 2 byte volumes), the family only decides *how* it is routed.
pub fn choose_schedule(
    kind: HeuristicKind,
    ctx: &SystemContext,
    topo: &TopologySpec,
    t: usize,
    p: usize,
) -> (RingVariant, ScheduleFamily) {
    let variant = choose_variant(kind, ctx, t, p);
    let bytes = hop_bytes_per_layer(&ctx.model, variant, topo.world(), t, p);
    (variant, choose_family(topo, bytes))
}

/// Fits Appendix D's `h(T, P)` coefficients against oracle labels on a
/// grid of `(t, p)` points: least-squares regression of the features
/// `[ln T, ln miss, 1]` onto labels `+1` (pass-KV faster) / `-1`.
///
/// Returns `(alpha, beta, gamma)`. Reproduces Figure 10 when evaluated on
/// the same grid.
///
/// # Panics
///
/// Panics if the grid is empty or contains `t == 0` points.
pub fn fit_empirical(ctx: &SystemContext, grid: &[(usize, usize)]) -> (f64, f64, f64) {
    assert!(!grid.is_empty(), "empirical fit needs a non-empty grid");
    // Normal equations for 3-feature least squares: X^T X w = X^T y.
    let mut xtx = [[0.0f64; 3]; 3];
    let mut xty = [0.0f64; 3];
    for &(t, p) in grid {
        assert!(t > 0, "grid points need t > 0");
        let miss = t as f64 / (t + p) as f64;
        let x = [(t as f64).ln(), miss.ln(), 1.0];
        let label = match choose_variant(HeuristicKind::Oracle, ctx, t, p) {
            RingVariant::PassKv => 1.0,
            RingVariant::PassQ => -1.0,
        };
        for (row, &xi) in xtx.iter_mut().zip(&x) {
            for (cell, &xj) in row.iter_mut().zip(&x) {
                *cell += xi * xj;
            }
        }
        for (acc, &xi) in xty.iter_mut().zip(&x) {
            *acc += xi * label;
        }
    }
    solve3(xtx, xty)
}

/// Solves a 3x3 linear system `A x = b` (rows of `a`) by Cramer's rule:
/// direct determinant ratios over destructured columns, no pivoting, no
/// element indexing. The normal-equation matrices fed in are symmetric
/// positive definite for any non-degenerate feature grid, so the
/// determinant is bounded away from zero.
fn solve3(a: [[f64; 3]; 3], b: [f64; 3]) -> (f64, f64, f64) {
    // Determinant of the matrix with columns `c0, c1, c2`.
    let det3 = |c0: [f64; 3], c1: [f64; 3], c2: [f64; 3]| {
        let [a11, a21, a31] = c0;
        let [a12, a22, a32] = c1;
        let [a13, a23, a33] = c2;
        a11 * (a22 * a33 - a23 * a32) - a12 * (a21 * a33 - a23 * a31)
            + a13 * (a21 * a32 - a22 * a31)
    };
    let [[a11, a12, a13], [a21, a22, a23], [a31, a32, a33]] = a;
    let c0 = [a11, a21, a31];
    let c1 = [a12, a22, a32];
    let c2 = [a13, a23, a33];
    let det = det3(c0, c1, c2);
    (
        det3(b, c1, c2) / det,
        det3(c0, b, c2) / det,
        det3(c0, c1, b) / det,
    )
}

/// Fraction of grid points where `kind` agrees with the oracle.
pub fn selection_accuracy(
    kind: HeuristicKind,
    ctx: &SystemContext,
    grid: &[(usize, usize)],
) -> f64 {
    if grid.is_empty() {
        return 1.0;
    }
    let agree = grid
        .iter()
        .filter(|&&(t, p)| {
            choose_variant(kind, ctx, t, p) == choose_variant(HeuristicKind::Oracle, ctx, t, p)
        })
        .count();
    agree as f64 / grid.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx4() -> SystemContext {
        SystemContext::llama3_405b_gtt(4)
    }

    #[test]
    fn equation2_threshold_magnitude() {
        // N=4, C=500 TF/s, N_KV=8, e=2, N_H=128, BW=26 GB/s:
        // threshold = 4*5e14*8*2/(2*128*26e9) ~ 4800 tokens.
        let th = ctx4().pass_kv_overlap_threshold();
        assert!((th - 4808.0).abs() < 100.0, "{th}");
    }

    #[test]
    fn algorithm1_reproduces_table4_selections() {
        // §4.2.4's validation: pass-KV for miss >= 12.5% or large T;
        // pass-Q below ~3.25% on the 128K / CP4 grid.
        let ctx = ctx4();
        let total = 128_000;
        let choose = |t: usize| choose_variant(HeuristicKind::Threshold, &ctx, t, total - t);
        assert_eq!(choose(1_280), RingVariant::PassQ); // 1%
        assert_eq!(choose(3_200), RingVariant::PassQ); // 2.5%
        assert_eq!(choose(4_160), RingVariant::PassQ); // 3.25%
        assert_eq!(choose(6_400), RingVariant::PassKv); // 5% (T above Eq.2 threshold)
        assert_eq!(choose(12_800), RingVariant::PassKv); // 10%
        assert_eq!(choose(128_000), RingVariant::PassKv); // full prefill
    }

    #[test]
    fn full_prefill_always_pass_kv_decode_always_pass_q() {
        // §3.4: full prefill (P=0) picks pass-KV for GQA models with
        // N_H > 2*N_KV; decode (T=1) picks pass-Q.
        let ctx = ctx4();
        assert_eq!(
            choose_variant(HeuristicKind::Threshold, &ctx, 50_000, 0),
            RingVariant::PassKv
        );
        assert_eq!(
            choose_variant(HeuristicKind::Threshold, &ctx, 1, 100_000),
            RingVariant::PassQ
        );
    }

    #[test]
    fn all2all_aware_lowers_the_miss_threshold() {
        // Equation 5's statement: considering All2All *decreases* the
        // miss-rate threshold for selecting pass-Q, i.e. some points that
        // Algorithm 1 sends to pass-Q flip to pass-KV under Algorithm 5.
        let ctx = ctx4();
        let total = 128_000;
        let mut flipped = 0;
        for t in (500..5_000).step_by(100) {
            let a1 = choose_variant(HeuristicKind::Threshold, &ctx, t, total - t);
            let a5 = choose_variant(HeuristicKind::All2AllAware, &ctx, t, total - t);
            if a1 == RingVariant::PassQ && a5 == RingVariant::PassKv {
                flipped += 1;
            }
            // Algorithm 5 never flips toward pass-Q relative to Algorithm 1.
            assert!(!(a1 == RingVariant::PassKv && a5 == RingVariant::PassQ));
        }
        assert!(flipped > 0);
    }

    #[test]
    fn oracle_crossover_near_5_percent() {
        let ctx = ctx4();
        let total = 128_000;
        assert_eq!(
            choose_variant(HeuristicKind::Oracle, &ctx, 1_280, total - 1_280),
            RingVariant::PassQ
        );
        assert_eq!(
            choose_variant(HeuristicKind::Oracle, &ctx, 12_800, total - 12_800),
            RingVariant::PassKv
        );
    }

    #[test]
    fn fitted_empirical_model_agrees_with_oracle() {
        // Figure 10 reproduction: fit h(T, P) on a log grid, check the
        // fitted model's sign structure (alpha < 0: larger T lowers the
        // pass-Q region; beta > 0: higher miss rate favours pass-KV) and
        // selection accuracy.
        let ctx = ctx4();
        let mut grid = Vec::new();
        for log_t in 7..17 {
            let t = 1usize << log_t; // 128 .. 65536
            for denom in [1usize, 2, 4, 8, 16, 32, 64] {
                let total = t * denom.max(1);
                if total > 1_000_000 {
                    continue;
                }
                grid.push((t, total - t));
            }
        }
        let (alpha, beta, gamma) = fit_empirical(&ctx, &grid);
        // beta > 0: a higher miss rate favours pass-KV, the paper's core
        // trend. (alpha's sign depends on the calibrated system's Eq. 2
        // threshold, unlike the paper's testbed fit, so we don't pin it.)
        assert!(beta > 0.0, "beta {beta} (alpha {alpha})");
        let fitted = HeuristicKind::Empirical { alpha, beta, gamma };
        let acc = selection_accuracy(fitted, &ctx, &grid);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn threshold_heuristic_accuracy_on_table4_grid() {
        let ctx = ctx4();
        let total = 128_000;
        let grid: Vec<(usize, usize)> = [
            1_280, 3_200, 4_160, 6_400, 12_800, 25_600, 38_400, 51_200, 64_000, 76_800, 89_600,
            102_400, 115_200, 128_000,
        ]
        .iter()
        .map(|&t| (t, total - t))
        .collect();
        let acc = selection_accuracy(HeuristicKind::Threshold, &ctx, &grid);
        // The paper reports the analytical model matching the measured
        // winner everywhere except near the indifferent ~5% point.
        assert!(acc >= 12.0 / 14.0, "accuracy {acc}");
    }

    #[test]
    fn empirical_h_monotonicity() {
        // For fixed T, higher P (lower miss) pushes h toward pass-Q.
        let h_low_p = empirical_h(-1.059, 1.145, 12.112, 1000, 1000);
        let h_high_p = empirical_h(-1.059, 1.145, 12.112, 1000, 100_000);
        assert!(h_high_p < h_low_p);
        assert_eq!(empirical_h(-1.0, 1.0, 0.0, 0, 10), f64::NEG_INFINITY);
    }

    #[test]
    fn gti_threshold_is_higher_than_gtt() {
        // Lower bandwidth -> larger Equation 2 threshold -> pass-Q viable
        // over a wider range.
        let gtt = SystemContext::llama3_405b_gtt(4);
        let gti = SystemContext {
            hw: HardwareSpec::gti(),
            ..gtt.clone()
        };
        assert!(gti.pass_kv_overlap_threshold() > gtt.pass_kv_overlap_threshold());
        assert!(gti.pass_q_overlap_threshold() > gtt.pass_q_overlap_threshold());
    }

    #[test]
    fn schedule_choice_folds_topology_into_algorithm1() {
        let ctx = ctx4();
        // Four CP ranks per node across two nodes, NVLink-fast inside,
        // RDMA-slow across: a bandwidth-bound full prefill should route
        // pass-KV over the bidirectional hierarchical ring.
        let topo = TopologySpec::new(2, 4, 200.0, 25.0, 10.0);
        let (variant, family) = choose_schedule(HeuristicKind::Threshold, &ctx, &topo, 128_000, 0);
        assert_eq!(variant, RingVariant::PassKv);
        assert_eq!(family.name(), "bidi-hier");
        // Low-miss partial prefill flips the variant to pass-Q without
        // changing the topology-driven family choice.
        let (variant, family) =
            choose_schedule(HeuristicKind::Threshold, &ctx, &topo, 1_280, 126_720);
        assert_eq!(variant, RingVariant::PassQ);
        assert_eq!(family.name(), "bidi-hier");
    }

    #[test]
    fn schedule_choice_degrades_to_the_paper_default() {
        let ctx = ctx4();
        // Two ranks on uniform links: no direction to split, no slow link
        // to dodge — the extended heuristic must return the classic
        // unidirectional flat ring.
        let topo = TopologySpec::uniform(2, 50.0, 5.0);
        let (_, family) = choose_schedule(HeuristicKind::Threshold, &ctx, &topo, 128_000, 0);
        assert_eq!(family, ScheduleFamily::UNI_FLAT);
    }

    #[test]
    fn single_node_ring_prefers_bidi_flat() {
        let ctx = ctx4();
        let topo = TopologySpec::uniform(8, 100.0, 5.0);
        let (_, family) = choose_schedule(HeuristicKind::Threshold, &ctx, &topo, 128_000, 0);
        assert_eq!(family.name(), "bidi-flat");
    }

    #[test]
    fn solve3_known_system() {
        // x + y + z = 6; 2y + 5z = -4; 2x + 5y - z = 27 -> (5, 3, -2).
        let a = [[1.0, 1.0, 1.0], [0.0, 2.0, 5.0], [2.0, 5.0, -1.0]];
        let b = [6.0, -4.0, 27.0];
        let (x, y, z) = solve3(a, b);
        assert!((x - 5.0).abs() < 1e-9);
        assert!((y - 3.0).abs() < 1e-9);
        assert!((z + 2.0).abs() < 1e-9);
    }
}
