//! Context parallelism for scalable million-token LLM inference — the
//! paper's primary contribution, reproduced exactly.
//!
//! This crate implements the three ring-attention inference algorithms of
//! *"Context Parallelism for Scalable Million-Token Inference"* (MLSys
//! 2025) as **lossless, exact** distributed attention running on real
//! threads (one per CP rank, connected by the `cp-comm` fabric):
//!
//! * [`ring::ring_pass_kv_prefill`] — Algorithm 2, fused variable-length
//!   ring pass-KV partial prefill (KV circulates, padded to equal message
//!   sizes; SendRecv overlaps attention),
//! * [`ring::ring_pass_q_prefill`] — Algorithm 3, ring pass-Q partial
//!   prefill (Q circulates; partial outputs return via All2All),
//! * [`ring::ring_pass_q_decode`] — Algorithm 4, batched ring pass-Q decode
//!   with round-robin offset sharding,
//!
//! plus the machinery around them:
//!
//! * [`heuristics`] — Algorithm 1, the All2All-aware Algorithm 5, and the
//!   Appendix D empirical model for choosing pass-KV vs pass-Q at runtime,
//! * [`baseline`] — the single-device reference and the all-gather pass-KV
//!   baseline (Llama3-training style) the paper compares against,
//! * [`ContextParallelEngine`] — a multi-turn inference engine with
//!   distributed, persistent, load-balanced KV caches,
//! * [`ChatSession`] / [`ToyProjector`] — a deterministic toy model layer
//!   so examples can drive the engine with token ids end to end.
//!
//! Every algorithm is property-tested against single-device attention:
//! the outputs agree to floating-point tolerance for any rank count,
//! sequence lengths, cache-hit mix, and decode schedule.
//!
//! # Example
//!
//! ```
//! use cp_attention::GqaShape;
//! use cp_core::{ContextParallelEngine, EngineConfig};
//! use cp_kvcache::SeqId;
//! use cp_tensor::DetRng;
//!
//! # fn main() -> Result<(), cp_core::CoreError> {
//! let shape = GqaShape::new(4, 2, 16)?;
//! let mut engine = ContextParallelEngine::new(EngineConfig::new(4, shape))?;
//! let seq = SeqId(0);
//! let mut rng = DetRng::new(7);
//! let t = 64;
//! let q = rng.tensor(&[t, 4, 16]);
//! let k = rng.tensor(&[t, 2, 16]);
//! let v = rng.tensor(&[t, 2, 16]);
//! let result = engine.full_prefill(seq, &q, &k, &v)?;
//! assert_eq!(result.output.out.shape(), &[t, 4, 16]);
//! assert_eq!(engine.context_len(seq)?, t);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod engine;
mod error;
pub mod heuristics;
mod messages;
mod projector;
pub mod ring;
pub mod schedule;
mod session;
pub mod trace;

pub use engine::{
    ContextParallelEngine, DecodeOutcome, EngineConfig, KvPrecision, PrefillOutcome,
    PrefillRequest, SchedulePolicy,
};
pub use error::CoreError;
pub use heuristics::{HeuristicKind, SystemContext};
pub use messages::{
    split_slot_vec, DecodeSlot, LocalSeq, QuantSeqKv, RingMsg, SeqKv, SeqOut, SeqQ, ELEM_BYTES,
};
pub use projector::ToyProjector;
pub use session::{ChatSession, TurnStats};
