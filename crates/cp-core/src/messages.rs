//! Wire message types for the ring algorithms.

use cp_attention::PAD;
use cp_comm::Wire;
use cp_tensor::Tensor;

/// Bytes per element on our simulated wire (`f32`): the `e` of the paper's
/// cost formulas as this reproduction realises it.
pub const ELEM_BYTES: usize = 4;

/// One sequence's local inputs on one rank for a ring prefill.
///
/// `q`/`q_pos` are the new tokens this rank owns under load-balanced
/// sharding; `k`/`v`/`kv_pos` are the rank's full local KV shard (persistent
/// cache plus the new tokens), padded to the sequence's common ring length
/// with [`PAD`] positions so all ranks exchange equal-sized messages
/// (the §3.5.2 invariant).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSeq {
    /// Local queries, shape `[t_local, n_heads, head_dim]`.
    pub q: Tensor,
    /// Global positions of the local queries.
    pub q_pos: Vec<usize>,
    /// Local key shard (padded), shape `[l, n_kv_heads, head_dim]`.
    pub k: Tensor,
    /// Local value shard (padded), same shape as `k`.
    pub v: Tensor,
    /// Global positions of the KV entries; `PAD` marks padding slots.
    pub kv_pos: Vec<usize>,
}

impl LocalSeq {
    /// Number of real (non-padding) KV entries.
    pub fn real_kv(&self) -> usize {
        self.kv_pos.iter().filter(|&&p| p != PAD).count()
    }
}

/// One sequence's circulating KV block.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqKv {
    /// Keys, `[l, n_kv_heads, head_dim]`.
    pub k: Tensor,
    /// Values, same shape.
    pub v: Tensor,
    /// Positions (`PAD` for padding).
    pub pos: Vec<usize>,
}

/// One sequence's circulating Q block.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqQ {
    /// Queries, `[t, n_heads, head_dim]`.
    pub q: Tensor,
    /// Global positions of the queries.
    pub pos: Vec<usize>,
}

/// One sequence's partial attention output travelling through the pass-Q
/// `All2All`.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqOut {
    /// Partial outputs, `[t, n_heads, head_dim]`.
    pub out: Tensor,
    /// Per-(token, head) log-sum-exp, `[t, n_heads]`.
    pub lse: Tensor,
}

/// A decode slot: one query token of one batched sequence, or `None` for a
/// padding slot (batch padded to a multiple of the rank count).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeSlot {
    /// Batch index of the sequence this token belongs to (`bid`).
    pub bid: usize,
    /// The query, `[1, n_heads, head_dim]`.
    pub q: Tensor,
    /// The query's global position.
    pub pos: usize,
}

/// The single message type circulating in any ring loop. A run uses one
/// variant family; receiving an unexpected variant is a protocol error.
#[derive(Debug, Clone, PartialEq)]
pub enum RingMsg {
    /// Pass-KV payload: per-sequence KV blocks (Algorithm 2).
    Kv {
        /// One block per fused sequence, in batch order.
        seqs: Vec<SeqKv>,
    },
    /// Pass-Q payload: per-sequence Q blocks plus their origin rank
    /// (Algorithm 3).
    Q {
        /// Rank the queries were originally sharded to (`s`).
        origin: usize,
        /// One block per fused sequence, in batch order.
        seqs: Vec<SeqQ>,
    },
    /// All2All payload: partial outputs heading back to their source rank.
    Out {
        /// One partial output per fused sequence, in batch order.
        seqs: Vec<SeqOut>,
    },
    /// Decode pass-Q payload: query slots plus their origin rank
    /// (Algorithm 4).
    DecodeQ {
        /// Rank the slots were assigned to this step.
        origin: usize,
        /// `slots_per_rank` entries; `None` is batch padding.
        slots: Vec<Option<DecodeSlot>>,
    },
    /// All2All payload for decode partial outputs.
    DecodeOut {
        /// One partial output per slot (padding slots carry `None`).
        slots: Vec<Option<SeqOut>>,
    },
}

fn tensor_bytes(t: &Tensor) -> usize {
    t.numel() * ELEM_BYTES
}

impl RingMsg {
    /// The variant's name, used in protocol errors and as the message tag
    /// in declared communication plans ([`cp_comm::CommPlan`]).
    pub fn variant_name(&self) -> &'static str {
        match self {
            RingMsg::Kv { .. } => "Kv",
            RingMsg::Q { .. } => "Q",
            RingMsg::Out { .. } => "Out",
            RingMsg::DecodeQ { .. } => "DecodeQ",
            RingMsg::DecodeOut { .. } => "DecodeOut",
        }
    }
}

impl Wire for RingMsg {
    /// Semantic bytes: tensor payloads only. Position/bid metadata is not
    /// counted, matching the paper's cost model which accounts embedding
    /// bytes (Q/K/V/O and the LSE) and not framing.
    fn wire_bytes(&self) -> usize {
        match self {
            RingMsg::Kv { seqs } => seqs
                .iter()
                .map(|s| tensor_bytes(&s.k) + tensor_bytes(&s.v))
                .sum(),
            RingMsg::Q { seqs, .. } => seqs.iter().map(|s| tensor_bytes(&s.q)).sum(),
            RingMsg::Out { seqs } => seqs
                .iter()
                .map(|s| tensor_bytes(&s.out) + tensor_bytes(&s.lse))
                .sum(),
            RingMsg::DecodeQ { slots, .. } => {
                slots.iter().flatten().map(|s| tensor_bytes(&s.q)).sum()
            }
            RingMsg::DecodeOut { slots } => slots
                .iter()
                .flatten()
                .map(|s| tensor_bytes(&s.out) + tensor_bytes(&s.lse))
                .sum(),
        }
    }

    fn wire_variant(&self) -> &'static str {
        self.variant_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_message_bytes_count_k_and_v() {
        let msg = RingMsg::Kv {
            seqs: vec![SeqKv {
                k: Tensor::zeros(&[3, 2, 4]),
                v: Tensor::zeros(&[3, 2, 4]),
                pos: vec![0, 1, 2],
            }],
        };
        assert_eq!(msg.wire_bytes(), 2 * 3 * 2 * 4 * ELEM_BYTES);
    }

    #[test]
    fn q_message_bytes() {
        let msg = RingMsg::Q {
            origin: 1,
            seqs: vec![SeqQ {
                q: Tensor::zeros(&[5, 4, 2]),
                pos: vec![0; 5],
            }],
        };
        assert_eq!(msg.wire_bytes(), 5 * 4 * 2 * ELEM_BYTES);
    }

    #[test]
    fn out_message_includes_lse() {
        let msg = RingMsg::Out {
            seqs: vec![SeqOut {
                out: Tensor::zeros(&[2, 4, 8]),
                lse: Tensor::zeros(&[2, 4]),
            }],
        };
        assert_eq!(msg.wire_bytes(), (2 * 4 * 8 + 2 * 4) * ELEM_BYTES);
    }

    #[test]
    fn decode_padding_slots_are_free() {
        let slot = DecodeSlot {
            bid: 0,
            q: Tensor::zeros(&[1, 2, 4]),
            pos: 9,
        };
        let msg = RingMsg::DecodeQ {
            origin: 0,
            slots: vec![Some(slot), None],
        };
        assert_eq!(msg.wire_bytes(), 2 * 4 * ELEM_BYTES);
        let empty = RingMsg::DecodeOut {
            slots: vec![None, None],
        };
        assert_eq!(empty.wire_bytes(), 0);
    }

    #[test]
    fn local_seq_counts_real_kv() {
        let ls = LocalSeq {
            q: Tensor::zeros(&[1, 2, 2]),
            q_pos: vec![3],
            k: Tensor::zeros(&[4, 1, 2]),
            v: Tensor::zeros(&[4, 1, 2]),
            kv_pos: vec![0, 1, PAD, PAD],
        };
        assert_eq!(ls.real_kv(), 2);
    }
}
