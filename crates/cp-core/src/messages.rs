//! Wire message types for the ring algorithms.

use cp_attention::PAD;
use cp_comm::Wire;
use cp_kvcache::{CacheError, QuantizedKv};
use cp_tensor::{Tensor, TensorError};

/// Bytes per element on our simulated wire (`f32`): the `e` of the paper's
/// cost formulas as this reproduction realises it.
pub const ELEM_BYTES: usize = 4;

/// One sequence's local inputs on one rank for a ring prefill.
///
/// `q`/`q_pos` are the new tokens this rank owns under load-balanced
/// sharding; `k`/`v`/`kv_pos` are the rank's full local KV shard (persistent
/// cache plus the new tokens), padded to the sequence's common ring length
/// with [`PAD`] positions so all ranks exchange equal-sized messages
/// (the §3.5.2 invariant).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSeq {
    /// Local queries, shape `[t_local, n_heads, head_dim]`.
    pub q: Tensor,
    /// Global positions of the local queries.
    pub q_pos: Vec<usize>,
    /// Local key shard (padded), shape `[l, n_kv_heads, head_dim]`.
    pub k: Tensor,
    /// Local value shard (padded), same shape as `k`.
    pub v: Tensor,
    /// Global positions of the KV entries; `PAD` marks padding slots.
    pub kv_pos: Vec<usize>,
}

impl LocalSeq {
    /// Number of real (non-padding) KV entries.
    pub fn real_kv(&self) -> usize {
        self.kv_pos.iter().filter(|&&p| p != PAD).count()
    }
}

/// One sequence's circulating KV block.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqKv {
    /// Keys, `[l, n_kv_heads, head_dim]`.
    pub k: Tensor,
    /// Values, same shape.
    pub v: Tensor,
    /// Positions (`PAD` for padding).
    pub pos: Vec<usize>,
}

/// Row count of the first half when a block of `l` dim-0 rows splits in
/// two — for the bidirectional rings (forward half vs. reverse half) and
/// for depth-2 pipelined hops (chunk 1 vs. chunk 2). The first half takes
/// the extra row of an odd split; `l == 1` leaves the second half empty,
/// which every consumer handles (an empty tensor slice carries 0 wire
/// bytes and attends over nothing).
pub fn split_point(l: usize) -> usize {
    l.div_ceil(2)
}

impl SeqKv {
    /// Splits this block at the token midpoint into two O(1) views: rows
    /// `[0, ceil(l/2))` and `[ceil(l/2), l)`. Both halves keep viewing the
    /// original buffer, so [`Tensor::concat_dim0`] on the receiving side
    /// rejoins them zero-copy into a tensor bitwise identical to the
    /// original — the foundation of the bidirectional ring's bit-identity
    /// to the unidirectional one.
    ///
    /// # Errors
    ///
    /// Propagates [`TensorError`] from slicing (only on malformed shapes).
    pub fn split_halves(&self) -> Result<(SeqKv, SeqKv), TensorError> {
        let l = self.pos.len().min(self.k.dim0());
        let mid = split_point(l);
        Ok((
            SeqKv {
                k: self.k.slice_dim0(0..mid)?,
                v: self.v.slice_dim0(0..mid)?,
                pos: self.pos.get(..mid).unwrap_or(&self.pos).to_vec(),
            },
            SeqKv {
                k: self.k.slice_dim0(mid..l)?,
                v: self.v.slice_dim0(mid..l)?,
                pos: self.pos.get(mid..l).unwrap_or_default().to_vec(),
            },
        ))
    }

    /// Rejoins two halves produced by [`SeqKv::split_halves`] (possibly
    /// after a wire round-trip, which preserves buffer identity in this
    /// in-process fabric, so the rejoin is zero-copy).
    ///
    /// # Errors
    ///
    /// Propagates [`TensorError`] on shape mismatch between the halves.
    pub fn join_halves(a: &SeqKv, b: &SeqKv) -> Result<SeqKv, TensorError> {
        let mut pos = a.pos.clone();
        pos.extend_from_slice(&b.pos);
        Ok(SeqKv {
            k: Tensor::concat_dim0([&a.k, &b.k])?,
            v: Tensor::concat_dim0([&a.v, &b.v])?,
            pos,
        })
    }
}

/// One sequence's circulating KV block in the compressed (INT8) wire
/// format — the APB-style "compressed context block" the paper's §2.2
/// survey points at, applied to the ring's hop payloads.
///
/// Codes are 1 byte per element plus one `f32` scale per `(token, head)`,
/// so a hop carries `2·l·n_kv·(d + 4)` bytes instead of the f32 block's
/// `2·l·n_kv·d·4` — ~3.8× fewer at `d = 64`. Quantization happens **once**
/// at the origin rank; every subsequent hop relays the same codes
/// verbatim, so the reconstruction each rank attends is identical no
/// matter how many hops the block travelled.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantSeqKv {
    /// Quantized keys.
    pub k: QuantizedKv,
    /// Quantized values.
    pub v: QuantizedKv,
    /// Positions (`PAD` for padding).
    pub pos: Vec<usize>,
}

impl QuantSeqKv {
    /// Quantizes an f32 block into the wire format. `PAD` rows of a
    /// zero-padded block quantize to zero codes with scale 1.0, which
    /// dequantize back to exact zeros — padding survives the round trip
    /// bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheError`] on malformed tensor shapes.
    pub fn quantize(block: &SeqKv) -> Result<QuantSeqKv, CacheError> {
        Ok(QuantSeqKv {
            k: QuantizedKv::quantize(&block.k)?,
            v: QuantizedKv::quantize(&block.v)?,
            pos: block.pos.clone(),
        })
    }

    /// Reconstructs the (lossy) f32 block.
    pub fn dequantize(&self) -> SeqKv {
        SeqKv {
            k: self.k.dequantize(),
            v: self.v.dequantize(),
            pos: self.pos.clone(),
        }
    }

    /// Number of tokens in the block.
    pub fn tokens(&self) -> usize {
        self.k.tokens()
    }

    /// Splits at the token midpoint ([`split_point`]) for the
    /// bidirectional ring's half-payload hops. Codes and scales are copied
    /// verbatim ([`QuantizedKv::split_at`]), so [`QuantSeqKv::join_halves`]
    /// round-trips **exactly** — the halves carry the same bits the
    /// unidirectional ring would have sent in one piece.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheError`] (unreachable for a well-formed block).
    pub fn split_halves(&self) -> Result<(QuantSeqKv, QuantSeqKv), CacheError> {
        let l = self.pos.len().min(self.tokens());
        let mid = split_point(l);
        let (ka, kb) = self.k.split_at(mid)?;
        let (va, vb) = self.v.split_at(mid)?;
        Ok((
            QuantSeqKv {
                k: ka,
                v: va,
                pos: self.pos.get(..mid).unwrap_or(&self.pos).to_vec(),
            },
            QuantSeqKv {
                k: kb,
                v: vb,
                pos: self.pos.get(mid..).unwrap_or_default().to_vec(),
            },
        ))
    }

    /// Rejoins two halves produced by [`QuantSeqKv::split_halves`],
    /// bitwise equal to the original block.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheError`] on head-geometry mismatch.
    pub fn join_halves(a: &QuantSeqKv, b: &QuantSeqKv) -> Result<QuantSeqKv, CacheError> {
        let mut k = a.k.clone();
        k.extend(&b.k)?;
        let mut v = a.v.clone();
        v.extend(&b.v)?;
        let mut pos = a.pos.clone();
        pos.extend_from_slice(&b.pos);
        Ok(QuantSeqKv { k, v, pos })
    }
}

/// One sequence's circulating Q block.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqQ {
    /// Queries, `[t, n_heads, head_dim]`.
    pub q: Tensor,
    /// Global positions of the queries.
    pub pos: Vec<usize>,
}

impl SeqQ {
    /// Splits this block at the query-row midpoint into two O(1) views,
    /// as [`SeqKv::split_halves`]. Query rows are independent under the
    /// blocked kernel (each keeps its own online-softmax state), so
    /// attending the halves separately and concatenating the outputs is
    /// bitwise identical to attending the full block.
    ///
    /// # Errors
    ///
    /// Propagates [`TensorError`] from slicing (only on malformed shapes).
    pub fn split_halves(&self) -> Result<(SeqQ, SeqQ), TensorError> {
        let t = self.pos.len().min(self.q.dim0());
        let mid = split_point(t);
        Ok((
            SeqQ {
                q: self.q.slice_dim0(0..mid)?,
                pos: self.pos.get(..mid).unwrap_or(&self.pos).to_vec(),
            },
            SeqQ {
                q: self.q.slice_dim0(mid..t)?,
                pos: self.pos.get(mid..t).unwrap_or_default().to_vec(),
            },
        ))
    }
}

/// Splits a decode slot vector at the slot midpoint for the bidirectional
/// decode ring: the first `ceil(n/2)` slots travel forward, the rest
/// travel in reverse. Slots are independent queries, so computing the
/// halves separately and re-concatenating the per-slot outputs is bitwise
/// identical to the unidirectional pass.
pub fn split_slot_vec(
    slots: &[Option<DecodeSlot>],
) -> (Vec<Option<DecodeSlot>>, Vec<Option<DecodeSlot>>) {
    let mid = split_point(slots.len());
    let (a, b) = slots.split_at(mid.min(slots.len()));
    (a.to_vec(), b.to_vec())
}

/// One sequence's partial attention output travelling through the pass-Q
/// `All2All`.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqOut {
    /// Partial outputs, `[t, n_heads, head_dim]`.
    pub out: Tensor,
    /// Per-(token, head) log-sum-exp, `[t, n_heads]`.
    pub lse: Tensor,
}

/// A decode slot: one query token of one batched sequence, or `None` for a
/// padding slot (batch padded to a multiple of the rank count).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeSlot {
    /// Batch index of the sequence this token belongs to (`bid`).
    pub bid: usize,
    /// The query, `[1, n_heads, head_dim]`.
    pub q: Tensor,
    /// The query's global position.
    pub pos: usize,
}

/// The single message type circulating in any ring loop. A run uses one
/// variant family; receiving an unexpected variant is a protocol error.
#[derive(Debug, Clone, PartialEq)]
pub enum RingMsg {
    /// Pass-KV payload: per-sequence KV blocks (Algorithm 2).
    Kv {
        /// One block per fused sequence, in batch order.
        seqs: Vec<SeqKv>,
    },
    /// Compressed pass-KV payload: per-sequence INT8 KV blocks (the
    /// APB-style wire format). Same ring schedule as [`RingMsg::Kv`],
    /// ~4× fewer bytes per hop.
    KvQuant {
        /// One quantized block per fused sequence, in batch order.
        seqs: Vec<QuantSeqKv>,
    },
    /// Pass-Q payload: per-sequence Q blocks plus their origin rank
    /// (Algorithm 3).
    Q {
        /// Rank the queries were originally sharded to (`s`).
        origin: usize,
        /// One block per fused sequence, in batch order.
        seqs: Vec<SeqQ>,
    },
    /// All2All payload: partial outputs heading back to their source rank.
    Out {
        /// One partial output per fused sequence, in batch order.
        seqs: Vec<SeqOut>,
    },
    /// Decode pass-Q payload: query slots plus their origin rank
    /// (Algorithm 4).
    DecodeQ {
        /// Rank the slots were assigned to this step.
        origin: usize,
        /// `slots_per_rank` entries; `None` is batch padding.
        slots: Vec<Option<DecodeSlot>>,
    },
    /// All2All payload for decode partial outputs.
    DecodeOut {
        /// One partial output per slot (padding slots carry `None`).
        slots: Vec<Option<SeqOut>>,
    },
    /// Activation rows travelling through the Helix decode reshard
    /// collectives: the AllGather that replicates merged attention rows
    /// and the AllReduces that sum row-parallel projection partials.
    Act {
        /// Row-major activation block, `[rows, model_dim]`.
        x: Tensor,
    },
}

fn tensor_bytes(t: &Tensor) -> usize {
    t.numel() * ELEM_BYTES
}

impl RingMsg {
    /// The variant's name, used in protocol errors and as the message tag
    /// in declared communication plans ([`cp_comm::CommPlan`]).
    pub fn variant_name(&self) -> &'static str {
        match self {
            RingMsg::Kv { .. } => "Kv",
            RingMsg::KvQuant { .. } => "KvQuant",
            RingMsg::Q { .. } => "Q",
            RingMsg::Out { .. } => "Out",
            RingMsg::DecodeQ { .. } => "DecodeQ",
            RingMsg::DecodeOut { .. } => "DecodeOut",
            RingMsg::Act { .. } => "Act",
        }
    }
}

impl Wire for RingMsg {
    /// Semantic bytes: tensor payloads only. Position/bid metadata is not
    /// counted, matching the paper's cost model which accounts embedding
    /// bytes (Q/K/V/O and the LSE) and not framing.
    fn wire_bytes(&self) -> usize {
        match self {
            RingMsg::Kv { seqs } => seqs
                .iter()
                .map(|s| tensor_bytes(&s.k) + tensor_bytes(&s.v))
                .sum(),
            RingMsg::KvQuant { seqs } => seqs
                .iter()
                .map(|s| s.k.storage_bytes() + s.v.storage_bytes())
                .sum(),
            RingMsg::Q { seqs, .. } => seqs.iter().map(|s| tensor_bytes(&s.q)).sum(),
            RingMsg::Out { seqs } => seqs
                .iter()
                .map(|s| tensor_bytes(&s.out) + tensor_bytes(&s.lse))
                .sum(),
            RingMsg::DecodeQ { slots, .. } => {
                slots.iter().flatten().map(|s| tensor_bytes(&s.q)).sum()
            }
            RingMsg::DecodeOut { slots } => slots
                .iter()
                .flatten()
                .map(|s| tensor_bytes(&s.out) + tensor_bytes(&s.lse))
                .sum(),
            RingMsg::Act { x } => tensor_bytes(x),
        }
    }

    fn wire_variant(&self) -> &'static str {
        self.variant_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_message_bytes_count_k_and_v() {
        let msg = RingMsg::Kv {
            seqs: vec![SeqKv {
                k: Tensor::zeros(&[3, 2, 4]),
                v: Tensor::zeros(&[3, 2, 4]),
                pos: vec![0, 1, 2],
            }],
        };
        assert_eq!(msg.wire_bytes(), 2 * 3 * 2 * 4 * ELEM_BYTES);
    }

    #[test]
    fn q_message_bytes() {
        let msg = RingMsg::Q {
            origin: 1,
            seqs: vec![SeqQ {
                q: Tensor::zeros(&[5, 4, 2]),
                pos: vec![0; 5],
            }],
        };
        assert_eq!(msg.wire_bytes(), 5 * 4 * 2 * ELEM_BYTES);
    }

    #[test]
    fn out_message_includes_lse() {
        let msg = RingMsg::Out {
            seqs: vec![SeqOut {
                out: Tensor::zeros(&[2, 4, 8]),
                lse: Tensor::zeros(&[2, 4]),
            }],
        };
        assert_eq!(msg.wire_bytes(), (2 * 4 * 8 + 2 * 4) * ELEM_BYTES);
    }

    #[test]
    fn decode_padding_slots_are_free() {
        let slot = DecodeSlot {
            bid: 0,
            q: Tensor::zeros(&[1, 2, 4]),
            pos: 9,
        };
        let msg = RingMsg::DecodeQ {
            origin: 0,
            slots: vec![Some(slot), None],
        };
        assert_eq!(msg.wire_bytes(), 2 * 4 * ELEM_BYTES);
        let empty = RingMsg::DecodeOut {
            slots: vec![None, None],
        };
        assert_eq!(empty.wire_bytes(), 0);
    }

    #[test]
    fn quant_kv_message_bytes_are_codes_plus_scales() {
        // l=3 tokens, n_kv=2 heads, d=4: per block 3·2·4 code bytes +
        // 3·2 scales·4 B = 24 + 24; K and V both. The symbolic form the
        // plan builders use: 2·l·n_kv·(d + 4).
        let block = SeqKv {
            k: Tensor::zeros(&[3, 2, 4]),
            v: Tensor::zeros(&[3, 2, 4]),
            pos: vec![0, 1, 2],
        };
        let q = QuantSeqKv::quantize(&block).unwrap();
        let msg = RingMsg::KvQuant { seqs: vec![q] };
        assert_eq!(msg.wire_bytes(), 2 * 3 * 2 * (4 + 4));
        assert_eq!(msg.wire_variant(), "KvQuant");
        // vs f32: 2·l·n_kv·d·4 bytes.
        let f32_bytes = 2 * 3 * 2 * 4 * ELEM_BYTES;
        assert!(msg.wire_bytes() < f32_bytes);
    }

    #[test]
    fn quant_kv_split_halves_round_trips_exactly_and_halves_bytes() {
        let mut rng = cp_tensor::DetRng::new(5);
        let block = SeqKv {
            k: rng.tensor(&[5, 2, 4]),
            v: rng.tensor(&[5, 2, 4]),
            pos: vec![0, 1, 2, 3, PAD],
        };
        let q = QuantSeqKv::quantize(&block).unwrap();
        let (a, b) = q.split_halves().unwrap();
        assert_eq!(a.tokens(), 3);
        assert_eq!(b.tokens(), 2);
        // The halves carry exactly the block's bytes between them, and
        // rejoin bitwise.
        let whole = RingMsg::KvQuant {
            seqs: vec![q.clone()],
        }
        .wire_bytes();
        let half_a = RingMsg::KvQuant {
            seqs: vec![a.clone()],
        }
        .wire_bytes();
        let half_b = RingMsg::KvQuant {
            seqs: vec![b.clone()],
        }
        .wire_bytes();
        assert_eq!(half_a + half_b, whole);
        assert_eq!(QuantSeqKv::join_halves(&a, &b).unwrap(), q);
    }

    #[test]
    fn quant_pad_rows_dequantize_to_exact_zeros() {
        // A zero-padded f32 block quantizes to a block whose PAD rows
        // dequantize back to exact zeros — the ring's equal-size-payload
        // invariant survives compression bit for bit.
        let mut rng = cp_tensor::DetRng::new(6);
        let real = rng.tensor(&[2, 1, 4]);
        let mut k = Tensor::zeros(&[4, 1, 4]);
        for i in 0..2 {
            for d in 0..4 {
                k.set(&[i, 0, d], real.at(&[i, 0, d]).unwrap()).unwrap();
            }
        }
        let block = SeqKv {
            k: k.clone(),
            v: k,
            pos: vec![0, 1, PAD, PAD],
        };
        let deq = QuantSeqKv::quantize(&block).unwrap().dequantize();
        assert!(deq.k.as_slice()[2 * 4..].iter().all(|&z| z == 0.0));
        assert_eq!(deq.pos, block.pos);
    }

    #[test]
    fn local_seq_counts_real_kv() {
        let ls = LocalSeq {
            q: Tensor::zeros(&[1, 2, 2]),
            q_pos: vec![3],
            k: Tensor::zeros(&[4, 1, 2]),
            v: Tensor::zeros(&[4, 1, 2]),
            kv_pos: vec![0, 1, PAD, PAD],
        };
        assert_eq!(ls.real_kv(), 2);
    }
}
