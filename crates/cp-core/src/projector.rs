//! A deterministic toy QKV projector so examples and the chat session can
//! drive the engine with token ids.

use cp_attention::GqaShape;
use cp_tensor::{DetRng, Tensor, TensorError};

/// Deterministically maps token ids (plus positions) to Q/K/V tensors of a
/// given [`GqaShape`].
///
/// The real system computes Q/K/V with trained projection weights; context
/// parallelism is agnostic to what produced them, needing only that every
/// rank would derive identical values. `ToyProjector` hashes
/// `(seed, token, position, role)` into pseudo-random embeddings, giving
/// the examples and tests a reproducible stand-in for the model's
/// projection layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToyProjector {
    shape: GqaShape,
    seed: u64,
}

impl ToyProjector {
    /// Creates a projector for the given head configuration.
    pub fn new(shape: GqaShape, seed: u64) -> Self {
        ToyProjector { shape, seed }
    }

    /// The head configuration this projector emits.
    pub fn shape(&self) -> GqaShape {
        self.shape
    }

    fn fill(&self, token: u32, position: usize, role: u64, numel: usize) -> Vec<f32> {
        let mix = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((token as u64) << 32)
            .wrapping_add(position as u64)
            .wrapping_add(role.wrapping_mul(0xA24B_AED4_963E_E407));
        let mut rng = DetRng::new(mix | 1);
        (0..numel).map(|_| rng.next_signed()).collect()
    }

    /// Projects a span of tokens starting at `start_pos` into
    /// `(q, k, v)` tensors of shapes `[t, n_heads, head_dim]` /
    /// `[t, n_kv_heads, head_dim]`.
    ///
    /// # Errors
    ///
    /// [`TensorError`] if the generated buffers do not match the declared
    /// shapes (unreachable for a well-formed [`GqaShape`]).
    pub fn project(
        &self,
        tokens: &[u32],
        start_pos: usize,
    ) -> Result<(Tensor, Tensor, Tensor), TensorError> {
        let (nh, nkv, dh) = (
            self.shape.n_heads(),
            self.shape.n_kv_heads(),
            self.shape.head_dim(),
        );
        let t = tokens.len();
        let mut q = Vec::with_capacity(t * nh * dh);
        let mut k = Vec::with_capacity(t * nkv * dh);
        let mut v = Vec::with_capacity(t * nkv * dh);
        for (i, &tok) in tokens.iter().enumerate() {
            let pos = start_pos + i;
            q.extend(self.fill(tok, pos, 0, nh * dh));
            k.extend(self.fill(tok, pos, 1, nkv * dh));
            v.extend(self.fill(tok, pos, 2, nkv * dh));
        }
        Ok((
            Tensor::from_vec(q, &[t, nh, dh])?,
            Tensor::from_vec(k, &[t, nkv, dh])?,
            Tensor::from_vec(v, &[t, nkv, dh])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proj() -> ToyProjector {
        ToyProjector::new(GqaShape::new(4, 2, 8).unwrap(), 99)
    }

    #[test]
    fn deterministic_across_calls() {
        let p = proj();
        let a = p.project(&[1, 2, 3], 10).unwrap();
        let b = p.project(&[1, 2, 3], 10).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn position_sensitivity() {
        let p = proj();
        let (q0, ..) = p.project(&[5], 0).unwrap();
        let (q1, ..) = p.project(&[5], 1).unwrap();
        assert_ne!(q0, q1, "same token at different positions must differ");
    }

    #[test]
    fn token_sensitivity_and_role_separation() {
        let p = proj();
        let (qa, ka, va) = p.project(&[7], 3).unwrap();
        let (qb, ..) = p.project(&[8], 3).unwrap();
        assert_ne!(qa, qb);
        // q, k, v for the same (token, pos) must be distinct streams.
        assert_ne!(qa.as_slice()[..8], ka.as_slice()[..8]);
        assert_ne!(ka.as_slice()[..8], va.as_slice()[..8]);
    }

    #[test]
    fn span_equals_tokenwise_projection() {
        // Projecting [a, b] at pos 4 equals projecting a at 4 and b at 5.
        let p = proj();
        let (q, k, v) = p.project(&[10, 11], 4).unwrap();
        let (qa, ka, va) = p.project(&[10], 4).unwrap();
        let (qb, kb, vb) = p.project(&[11], 5).unwrap();
        assert_eq!(q.slice_dim0(0..1).unwrap(), qa);
        assert_eq!(q.slice_dim0(1..2).unwrap(), qb);
        assert_eq!(k.slice_dim0(0..1).unwrap(), ka);
        assert_eq!(k.slice_dim0(1..2).unwrap(), kb);
        assert_eq!(v.slice_dim0(0..1).unwrap(), va);
        assert_eq!(v.slice_dim0(1..2).unwrap(), vb);
    }

    #[test]
    fn shapes_match_config() {
        let p = proj();
        let (q, k, v) = p.project(&[0; 5], 0).unwrap();
        assert_eq!(q.shape(), &[5, 4, 8]);
        assert_eq!(k.shape(), &[5, 2, 8]);
        assert_eq!(v.shape(), &[5, 2, 8]);
        let (qe, ..) = p.project(&[], 0).unwrap();
        assert_eq!(qe.shape(), &[0, 4, 8]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ToyProjector::new(GqaShape::new(2, 1, 4).unwrap(), 1);
        let b = ToyProjector::new(GqaShape::new(2, 1, 4).unwrap(), 2);
        assert_ne!(a.project(&[3], 0).unwrap().0, b.project(&[3], 0).unwrap().0);
    }
}
