//! The paper's ring attention algorithms, exactly as run on each CP rank.
//!
//! Each function here is the body one rank executes inside a
//! [`cp_comm::run_ranks`] group. Inputs are the rank's local shards;
//! outputs are that rank's attention results, exact to floating point
//! against a single-device computation (the integration and property test
//! suites pin this for every algorithm).
//!
//! Attention within the ring uses the flash-style blocked kernel from
//! `cp-attention`; the per-sequence structure of fused variable-length
//! batches is handled by computing each sequence's partial attention
//! separately (the role a varlen attention kernel plays on GPU).

use cp_attention::{
    blocked_gqa_attention_on, blocked_gqa_attention_source, AttentionOutput, AttentionParams,
    KvSource,
};
use cp_comm::Communicator;
use cp_kvcache::{KvView, QuantKvView};
use cp_pool::ComputePool;
use cp_tensor::Tensor;

use crate::error::to_comm_error;
use crate::messages::{
    split_slot_vec, DecodeSlot, LocalSeq, QuantSeqKv, RingMsg, SeqKv, SeqOut, SeqQ,
};
use crate::schedule::{defer_return, hop_channels, ring_origin, RingLayout, RingPath};
use crate::CoreError;

/// KV block size for the flash-style kernel inside ring loops.
const ATTN_BLOCK: usize = 128;

/// The KV block size ring attention uses over paged storage with pages of
/// `page_size` tokens: [`ATTN_BLOCK`] rounded up to a whole number of pages,
/// so every online-softmax block walks complete pages. The blocked kernel's
/// arithmetic depends only on block boundaries (never on storage layout), so
/// a gather-mode twin using this same value is bit-identical to the view
/// path.
pub fn attn_block_for(page_size: usize) -> usize {
    if page_size == 0 {
        ATTN_BLOCK
    } else {
        ATTN_BLOCK.div_ceil(page_size) * page_size
    }
}

/// One rank's stationary KV for a ring algorithm: either owned (gathered or
/// wire-received) tensors, or a zero-copy [`KvView`] borrowed straight from
/// the rank's paged cache. Views are what keep `gather()` off the decode
/// hot path; owned tensors remain for circulating wire payloads and for
/// gather-mode A/B comparison.
#[derive(Debug, Clone)]
pub enum RankKv<'a> {
    /// Contiguous owned K/V tensors, attended with an explicit KV block.
    Owned {
        /// K/V tensors plus their global positions.
        kv: SeqKv,
        /// Online-softmax KV block size for the blocked kernel.
        block: usize,
    },
    /// A borrowed paged-cache view, attended with [`attn_block_for`] of its
    /// page size.
    View(KvView<'a>),
    /// A borrowed INT8-quantized paged-cache view: each head vector is
    /// dequantized inside the kernel into a reused scratch — no f32 copy
    /// of the cache is ever materialized.
    QuantView(QuantKvView<'a>),
}

impl RankKv<'static> {
    /// Owned tensors attended with the default [`ATTN_BLOCK`].
    pub fn tensors(kv: SeqKv) -> Self {
        RankKv::Owned {
            kv,
            block: ATTN_BLOCK,
        }
    }

    /// Owned tensors attended with an explicit KV block size. Pass
    /// [`attn_block_for`] of the paged twin's page size to keep a gather
    /// path bit-identical to the corresponding view path.
    pub fn tensors_blocked(kv: SeqKv, block: usize) -> Self {
        RankKv::Owned { kv, block }
    }
}

impl<'a> From<KvView<'a>> for RankKv<'a> {
    fn from(view: KvView<'a>) -> Self {
        RankKv::View(view)
    }
}

impl<'a> From<QuantKvView<'a>> for RankKv<'a> {
    fn from(view: QuantKvView<'a>) -> Self {
        RankKv::QuantView(view)
    }
}

fn attend_rank_kv(
    pool: &ComputePool,
    q: &Tensor,
    q_pos: &[usize],
    kv: &RankKv<'_>,
    params: &AttentionParams,
) -> Result<AttentionOutput, CoreError> {
    match kv {
        RankKv::Owned { kv, block } => Ok(blocked_gqa_attention_on(
            pool, q, &kv.k, &kv.v, params, q_pos, &kv.pos, *block,
        )?),
        RankKv::View(view) => Ok(blocked_gqa_attention_source(
            pool,
            q,
            &view.source(),
            params,
            q_pos,
            view.positions(),
            attn_block_for(view.page_size()),
        )?),
        RankKv::QuantView(view) => Ok(blocked_gqa_attention_source(
            pool,
            q,
            &view.source(),
            params,
            q_pos,
            view.positions(),
            attn_block_for(view.page_size()),
        )?),
    }
}

fn attend(
    pool: &ComputePool,
    q: &Tensor,
    q_pos: &[usize],
    kv: &SeqKv,
    params: &AttentionParams,
) -> Result<AttentionOutput, CoreError> {
    Ok(blocked_gqa_attention_on(
        pool, q, &kv.k, &kv.v, params, q_pos, &kv.pos, ATTN_BLOCK,
    )?)
}

/// Folds one more partial into a running accumulator with the exact
/// pairwise LSE-weighted merge — the O(1)-live-outputs replacement for
/// collecting every hop's partial and batch-merging at the end.
fn fold_partial(acc: &mut Option<AttentionOutput>, out: AttentionOutput) -> Result<(), CoreError> {
    match acc {
        None => *acc = Some(out),
        Some(a) => a.merge_in_place(&out)?,
    }
    Ok(())
}

/// Unwraps the running accumulators once every hop/source has been folded.
fn take_merged(
    acc: Vec<Option<AttentionOutput>>,
    what: &'static str,
) -> Result<Vec<AttentionOutput>, CoreError> {
    acc.into_iter()
        .enumerate()
        .map(|(i, a)| {
            a.ok_or_else(|| CoreError::Internal {
                detail: format!("{what} sequence {i} accumulated no partial output"),
            })
        })
        .collect()
}

/// Folds one source rank's returned pass-Q partial outputs into the running
/// per-sequence accumulators. Callers fold sources in ascending rank order —
/// the order every transport of the return permutation shares, which keeps
/// the overlapped and blocking variants bit-identical.
fn fold_source_outs(
    rank: usize,
    acc: &mut [Option<AttentionOutput>],
    src_rank: usize,
    outs: &[SeqOut],
) -> Result<(), CoreError> {
    let expected = acc.len();
    acc.iter_mut().enumerate().try_for_each(|(i, slot)| {
        let part = outs.get(i).ok_or_else(|| CoreError::BadRequest {
            reason: format!(
                "rank {src_rank} returned {} partial outputs, rank {rank} expected {expected}",
                outs.len(),
            ),
        })?;
        // O(1) view clones of the received partial.
        let part = AttentionOutput::new(part.out.clone(), part.lse.clone())?;
        fold_partial(slot, part)
    })
}

fn expect_kv(msg: RingMsg, from_rank: usize) -> Result<Vec<SeqKv>, CoreError> {
    match msg {
        RingMsg::Kv { seqs } => Ok(seqs),
        other => Err(CoreError::ProtocolViolation {
            from_rank,
            expected: "Kv",
            got: other.variant_name(),
        }),
    }
}

fn expect_kv_quant(msg: RingMsg, from_rank: usize) -> Result<Vec<QuantSeqKv>, CoreError> {
    match msg {
        RingMsg::KvQuant { seqs } => Ok(seqs),
        other => Err(CoreError::ProtocolViolation {
            from_rank,
            expected: "KvQuant",
            got: other.variant_name(),
        }),
    }
}

fn expect_q(msg: RingMsg, from_rank: usize) -> Result<(usize, Vec<SeqQ>), CoreError> {
    match msg {
        RingMsg::Q { origin, seqs } => Ok((origin, seqs)),
        other => Err(CoreError::ProtocolViolation {
            from_rank,
            expected: "Q",
            got: other.variant_name(),
        }),
    }
}

fn expect_out(msg: RingMsg, from_rank: usize) -> Result<Vec<SeqOut>, CoreError> {
    match msg {
        RingMsg::Out { seqs } => Ok(seqs),
        other => Err(CoreError::ProtocolViolation {
            from_rank,
            expected: "Out",
            got: other.variant_name(),
        }),
    }
}

fn expect_decode_q(
    msg: RingMsg,
    from_rank: usize,
) -> Result<(usize, Vec<Option<DecodeSlot>>), CoreError> {
    match msg {
        RingMsg::DecodeQ { origin, slots } => Ok((origin, slots)),
        other => Err(CoreError::ProtocolViolation {
            from_rank,
            expected: "DecodeQ",
            got: other.variant_name(),
        }),
    }
}

fn expect_decode_out(msg: RingMsg, from_rank: usize) -> Result<Vec<Option<SeqOut>>, CoreError> {
    match msg {
        RingMsg::DecodeOut { slots } => Ok(slots),
        other => Err(CoreError::ProtocolViolation {
            from_rank,
            expected: "DecodeOut",
            got: other.variant_name(),
        }),
    }
}

/// Validates the origin tag of a circulating block received at ring step
/// `step` against the rotation invariant ([`ring_origin`]), attributing a
/// mismatch to the forwarding peer.
fn check_ring_order(
    rank: usize,
    world: usize,
    from_rank: usize,
    step: usize,
    got_origin: usize,
) -> Result<(), CoreError> {
    let expected_origin = ring_origin(rank, world, step);
    if got_origin != expected_origin {
        return Err(CoreError::RingOrderViolation {
            from_rank,
            step,
            expected_origin,
            got_origin,
        });
    }
    Ok(())
}

/// [`check_ring_order`] generalized to any [`RingPath`]: validates a
/// received origin tag against the path's rotation invariant.
fn check_path_order(
    rank: usize,
    path: RingPath,
    from_rank: usize,
    step: usize,
    got_origin: usize,
) -> Result<(), CoreError> {
    let expected_origin = path.origin_at(rank, step);
    if got_origin != expected_origin {
        return Err(CoreError::RingOrderViolation {
            from_rank,
            step,
            expected_origin,
            got_origin,
        });
    }
    Ok(())
}

/// Applies `f` to every item, fanning work out over the rank's persistent
/// compute pool when there is more than one item — the role the GPU's
/// batched varlen kernel plays for fused sequences in the paper. Results
/// are returned in item order and the first error (in item order) wins, so
/// the output is identical to the serial loop. Using the pool instead of
/// per-call scoped threads means a multi-layer forward reuses the same
/// workers for every layer and hop.
fn map_seqs<T, R, F>(pool: &ComputePool, items: &[T], f: F) -> Result<Vec<R>, CoreError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, CoreError> + Sync,
{
    if items.len() <= 1 || pool.parallelism() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut results: Vec<Option<Result<R, CoreError>>> = (0..items.len()).map(|_| None).collect();
    let f = &f;
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = results
        .iter_mut()
        .zip(items)
        .enumerate()
        .map(|(i, (slot, item))| {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || *slot = Some(f(i, item)));
            job
        })
        .collect();
    pool.run(jobs);
    results
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|| {
                Err(CoreError::Internal {
                    detail: "map_seqs worker left a result slot unfilled".to_string(),
                })
            })
        })
        .collect()
}

/// Algorithm 2 — fused variable-length ring pass-KV partial prefill, as
/// executed by one rank.
///
/// `locals` holds this rank's per-sequence queries and (padded) KV shards.
/// KV blocks circulate `N-1` hops; each iteration computes partial
/// attention between the stationary local queries and the visiting KV,
/// and the partials are merged at the end (Eq. 4).
///
/// The loop is **double-buffered**: the exchange for hop `j+1` is posted
/// (`isend_irecv`) *before* partial attention runs on hop `j`'s data, and
/// the handle is waited at the loop bottom, so wire time hides under
/// compute — the paper's `latency(SendRecv) <= latency(ATTN)` overlap
/// condition (§3.3). [`ring_pass_kv_prefill_blocking`] keeps the
/// compute-then-exchange ordering for A/B comparison; both produce
/// bit-identical outputs because the merge order is unchanged.
///
/// Returns one [`AttentionOutput`] per sequence, rows in `q_pos` order.
///
/// # Errors
///
/// Communication failures, shape mismatches, or a protocol violation if a
/// non-KV message arrives.
pub fn ring_pass_kv_prefill(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
) -> Result<Vec<AttentionOutput>, CoreError> {
    // The fabric's pipeline-depth flag selects the depth-2 chunked loop
    // transparently: callers keep one entry point, checked runs must pass
    // the matching plan (`pass_kv_chunked_plan`).
    if comm.pipeline_depth() >= 2 {
        return ring_pass_kv_prefill_chunked(comm, params, locals);
    }
    ring_pass_kv_prefill_on(comm, params, locals, RingLayout::Flat)
}

/// [`ring_pass_kv_prefill`] over an arbitrary [`RingLayout`]: the flat
/// layout reproduces the classic single ring hop for hop; the
/// hierarchical layout walks all ranks of a node between cross-node
/// exchanges, so only `N-1` of the `W-1` hops touch slow links. Every
/// layout visits every origin exactly once and folds partials in its
/// path's visit order, so results are exact for any layout; because the
/// hierarchical path visits origins in a different order than the flat
/// ring, its outputs are mathematically equal but not bitwise identical
/// to the flat ones (the bidirectional loop on the *same* layout is
/// bitwise identical — see [`ring_pass_kv_prefill_bidi`]).
///
/// # Errors
///
/// As [`ring_pass_kv_prefill`], plus [`CoreError::BadRequest`] when a
/// hierarchical topology does not cover the world size.
pub fn ring_pass_kv_prefill_on(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
    layout: RingLayout,
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let path = layout.fwd(n)?;
    // Tensor clones are O(1) Arc handle copies: the circulating block views
    // the rank's local shard, no payload bytes are duplicated.
    let mut visiting: Vec<SeqKv> = locals
        .iter()
        .map(|l| SeqKv {
            k: l.k.clone(),
            v: l.v.clone(),
            pos: l.kv_pos.clone(),
        })
        .collect();
    // Running per-sequence accumulators: each hop's partial is folded in
    // with the exact pairwise merge, so live outputs stay O(1) per sequence
    // instead of O(hops).
    let mut acc: Vec<Option<AttentionOutput>> = (0..locals.len()).map(|_| None).collect();

    let rank = comm.rank();
    let pool = comm.pool();
    for j in 0..n {
        // Post hop j+1's exchange before attending to hop j's block; the
        // outgoing shard is captured by O(1) handle clones.
        let pending = if j + 1 < n {
            Some(comm.isend_irecv(
                path.send_peer(rank, j),
                RingMsg::Kv {
                    seqs: visiting.clone(),
                },
                path.recv_peer(rank, j),
            )?)
        } else {
            None
        };
        let forwarder = if j == 0 {
            rank
        } else {
            path.recv_peer(rank, j - 1)
        };
        let step = comm.time_compute("attend pass-kv", || {
            map_seqs(pool, locals, |i, local| {
                let kv = visiting.get(i).ok_or_else(|| CoreError::BadRequest {
                    reason: format!(
                        "KV block forwarded by rank {forwarder} carries {} sequences but rank \
                         {rank} holds {} local sequences",
                        visiting.len(),
                        locals.len()
                    ),
                })?;
                attend(pool, &local.q, &local.q_pos, kv, params)
            })
        })?;
        comm.time_compute("merge pass-kv", || {
            acc.iter_mut()
                .zip(step)
                .try_for_each(|(a, out)| fold_partial(a, out))
        })?;
        if let Some(pending) = pending {
            let received = pending.wait()?;
            visiting = expect_kv(received, path.recv_peer(rank, j))?;
        }
    }

    take_merged(acc, "pass-kv")
}

/// Blocking reference variant of [`ring_pass_kv_prefill`]: identical math
/// and wire schedule, but each hop computes first and only then performs
/// the exchange (`send_recv`), exposing the full wire time. Kept for A/B
/// benchmarking of communication/compute overlap.
///
/// # Errors
///
/// Same failure modes as [`ring_pass_kv_prefill`].
pub fn ring_pass_kv_prefill_blocking(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let mut visiting: Vec<SeqKv> = locals
        .iter()
        .map(|l| SeqKv {
            k: l.k.clone(),
            v: l.v.clone(),
            pos: l.kv_pos.clone(),
        })
        .collect();
    // Same running per-sequence accumulators (and fold order) as the
    // overlapped variant, so the two stay bit-identical.
    let mut acc: Vec<Option<AttentionOutput>> = (0..locals.len()).map(|_| None).collect();

    let (rank, prev) = (comm.rank(), comm.ring_prev());
    let pool = comm.pool();
    for j in 0..n {
        let step = comm.time_compute("attend pass-kv", || {
            map_seqs(pool, locals, |i, local| {
                let kv = visiting.get(i).ok_or_else(|| CoreError::BadRequest {
                    reason: format!(
                        "KV block forwarded by rank {prev} carries {} sequences but rank {rank} \
                         holds {} local sequences",
                        visiting.len(),
                        locals.len()
                    ),
                })?;
                attend(pool, &local.q, &local.q_pos, kv, params)
            })
        })?;
        comm.time_compute("merge pass-kv", || {
            acc.iter_mut()
                .zip(step)
                .try_for_each(|(a, out)| fold_partial(a, out))
        })?;
        if j + 1 < n {
            let received = comm.send_recv(
                comm.ring_next(),
                RingMsg::Kv { seqs: visiting },
                comm.ring_prev(),
            )?;
            visiting = expect_kv(received, comm.ring_prev())?;
        }
    }

    take_merged(acc, "pass-kv")
}

/// Splits each local KV shard at the per-sequence token midpoint into the
/// forward (A) and reverse (B) circulating halves — O(1) view slices.
fn split_kv_halves(locals: &[LocalSeq]) -> Result<(Vec<SeqKv>, Vec<SeqKv>), CoreError> {
    let mut a = Vec::with_capacity(locals.len());
    let mut b = Vec::with_capacity(locals.len());
    for l in locals {
        let kv = SeqKv {
            k: l.k.clone(),
            v: l.v.clone(),
            pos: l.kv_pos.clone(),
        };
        let (ha, hb) = kv.split_halves()?;
        a.push(ha);
        b.push(hb);
    }
    Ok((a, b))
}

/// Rejoins per-sequence KV halves received from the two ring directions
/// (or the two pipeline chunks) into full blocks. The blocked kernel's
/// online softmax walks KV rows in order, so attending the rejoined block
/// is bitwise identical to attending the never-split original.
fn join_kv_halves(rank: usize, a: &[SeqKv], b: &[SeqKv]) -> Result<Vec<SeqKv>, CoreError> {
    if a.len() != b.len() {
        return Err(CoreError::BadRequest {
            reason: format!(
                "rank {rank} received mismatched KV half batches: {} vs {} sequences",
                a.len(),
                b.len()
            ),
        });
    }
    a.iter()
        .zip(b)
        .map(|(ha, hb)| SeqKv::join_halves(ha, hb).map_err(CoreError::from))
        .collect()
}

/// Mutable access into a per-origin buffer table, with an out-of-range
/// index (an internal bug: indices come from [`RingPath::origin_at`])
/// surfaced as a typed error instead of a panic.
fn origin_slot<'a, T>(
    table: &'a mut [Option<T>],
    origin: usize,
    what: &'static str,
) -> Result<&'a mut Option<T>, CoreError> {
    let len = table.len();
    table.get_mut(origin).ok_or_else(|| CoreError::Internal {
        detail: format!("{what}: origin {origin} out of range for world {len}"),
    })
}

/// If both halves of `origin`'s KV block are on board and it has not been
/// attended yet, rejoin them, attend, and park the per-sequence partials
/// in `computed`. Both directions' origins are tried every round; an
/// origin becomes ready exactly at the later of its two arrival rounds,
/// and its halves have always been forwarded onward by then (each
/// direction forwards a half at or before the round the origin completes,
/// and sends are posted before computes within a round), so consuming
/// them here is safe.
fn bidi_kv_attend_if_ready(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
    origin: usize,
    halves_a: &mut [Option<Vec<SeqKv>>],
    halves_b: &mut [Option<Vec<SeqKv>>],
    computed: &mut [Option<Vec<AttentionOutput>>],
) -> Result<(), CoreError> {
    if origin_slot(computed, origin, "bidi pass-kv partials")?.is_some() {
        return Ok(());
    }
    let ready = matches!(
        (halves_a.get(origin), halves_b.get(origin)),
        (Some(Some(_)), Some(Some(_)))
    );
    if !ready {
        return Ok(());
    }
    let a = origin_slot(halves_a, origin, "bidi pass-kv A halves")?
        .take()
        .unwrap_or_default();
    let b = origin_slot(halves_b, origin, "bidi pass-kv B halves")?
        .take()
        .unwrap_or_default();
    let rank = comm.rank();
    let full = join_kv_halves(rank, &a, &b)?;
    let pool = comm.pool();
    let step = comm.time_compute("attend pass-kv", || {
        map_seqs(pool, locals, |i, local| {
            let kv = full.get(i).ok_or_else(|| CoreError::BadRequest {
                reason: format!(
                    "KV block of origin {origin} carries {} sequences but rank {rank} holds {} \
                     local sequences",
                    full.len(),
                    locals.len()
                ),
            })?;
            attend(pool, &local.q, &local.q_pos, kv, params)
        })
    })?;
    *origin_slot(computed, origin, "bidi pass-kv partials")? = Some(step);
    Ok(())
}

/// Bidirectional pass-KV prefill (TokenRing-style, arXiv:2412.20501):
/// each rank's KV block splits at the token midpoint, the A half
/// circulating along the forward path and the B half along the reverse
/// path simultaneously, so each hop moves half the bytes per link and the
/// two directions' payloads travel disjoint links (on rings longer than
/// two ranks per cycle).
///
/// An origin is attended the round *both* of its halves are on board
/// (`max` of its forward and reverse arrival steps); the halves rejoin as
/// O(1) views of the origin's buffer, so the attended block is bitwise
/// the one the unidirectional ring attends. Partials buffer per origin —
/// O(W) merge state instead of the unidirectional loop's O(1) — and the
/// end fold walks origins in forward-path order, replaying the
/// unidirectional merge sequence exactly: outputs are proptested
/// bit-identical to [`ring_pass_kv_prefill`].
///
/// # Errors
///
/// As [`ring_pass_kv_prefill`], plus [`CoreError::BadRequest`] when a
/// hierarchical topology does not cover the world size.
pub fn ring_pass_kv_prefill_bidi(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
    layout: RingLayout,
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let rank = comm.rank();
    let fwd = layout.fwd(n)?;
    let rev = layout.rev(n)?;

    let mut halves_a: Vec<Option<Vec<SeqKv>>> = vec![None; n];
    let mut halves_b: Vec<Option<Vec<SeqKv>>> = vec![None; n];
    let (own_a, own_b) = split_kv_halves(locals)?;
    *origin_slot(&mut halves_a, rank, "bidi pass-kv A halves")? = Some(own_a);
    *origin_slot(&mut halves_b, rank, "bidi pass-kv B halves")? = Some(own_b);
    let mut computed: Vec<Option<Vec<AttentionOutput>>> = vec![None; n];

    for j in 0..n {
        // Post both directions' hops (forward first — the order receivers
        // wait them in, which disambiguates the two payloads when both
        // directions share a channel on two-rank cycles).
        let pends = if j + 1 < n {
            let send_a = origin_slot(
                &mut halves_a,
                fwd.origin_at(rank, j),
                "bidi pass-kv A halves",
            )?
            .clone()
            .ok_or_else(|| CoreError::Internal {
                detail: format!(
                    "rank {rank} has no A half of origin {} to forward at round {j}",
                    fwd.origin_at(rank, j)
                ),
            })?;
            let pf = comm.isend_irecv(
                fwd.send_peer(rank, j),
                RingMsg::Kv { seqs: send_a },
                fwd.recv_peer(rank, j),
            )?;
            let send_b = origin_slot(
                &mut halves_b,
                rev.origin_at(rank, j),
                "bidi pass-kv B halves",
            )?
            .clone()
            .ok_or_else(|| CoreError::Internal {
                detail: format!(
                    "rank {rank} has no B half of origin {} to forward at round {j}",
                    rev.origin_at(rank, j)
                ),
            })?;
            let pr = comm.isend_irecv(
                rev.send_peer(rank, j),
                RingMsg::Kv { seqs: send_b },
                rev.recv_peer(rank, j),
            )?;
            Some((pf, pr))
        } else {
            None
        };
        bidi_kv_attend_if_ready(
            comm,
            params,
            locals,
            fwd.origin_at(rank, j),
            &mut halves_a,
            &mut halves_b,
            &mut computed,
        )?;
        bidi_kv_attend_if_ready(
            comm,
            params,
            locals,
            rev.origin_at(rank, j),
            &mut halves_a,
            &mut halves_b,
            &mut computed,
        )?;
        if let Some((pf, pr)) = pends {
            let seqs = expect_kv(pf.wait()?, fwd.recv_peer(rank, j))?;
            *origin_slot(
                &mut halves_a,
                fwd.origin_at(rank, j + 1),
                "bidi pass-kv A halves",
            )? = Some(seqs);
            let seqs = expect_kv(pr.wait()?, rev.recv_peer(rank, j))?;
            *origin_slot(
                &mut halves_b,
                rev.origin_at(rank, j + 1),
                "bidi pass-kv B halves",
            )? = Some(seqs);
        }
    }

    // End fold in forward-path origin order == the unidirectional loop's
    // incremental per-hop fold: the identical sequence of pairwise merges.
    let mut acc: Vec<Option<AttentionOutput>> = (0..locals.len()).map(|_| None).collect();
    comm.time_compute("merge pass-kv", || {
        for tau in 0..n {
            let origin = fwd.origin_at(rank, tau);
            let step = origin_slot(&mut computed, origin, "bidi pass-kv partials")?
                .take()
                .ok_or_else(|| CoreError::Internal {
                    detail: format!("origin {origin} was never attended in the bidi pass-kv loop"),
                })?;
            acc.iter_mut()
                .zip(step)
                .try_for_each(|(a, out)| fold_partial(a, out))?;
        }
        Ok::<(), CoreError>(())
    })?;
    take_merged(acc, "pass-kv")
}

/// Attends one visiting quantized block **in place**: the block's codes
/// and scales feed the kernel directly as a single-page
/// [`KvSource::quant_paged`], each head vector dequantized into a reused
/// scratch inside the kernel — no materialized f32 copy of the payload.
fn attend_quant(
    pool: &ComputePool,
    q: &Tensor,
    q_pos: &[usize],
    kv: &QuantSeqKv,
    params: &AttentionParams,
) -> Result<AttentionOutput, CoreError> {
    let tokens = kv.tokens();
    // A zero-token block has zero pages (not one empty page).
    let k_codes: Vec<&[i8]> = if tokens == 0 {
        vec![]
    } else {
        vec![kv.k.codes()]
    };
    let k_scales: Vec<&[f32]> = if tokens == 0 {
        vec![]
    } else {
        vec![kv.k.scales()]
    };
    let v_codes: Vec<&[i8]> = if tokens == 0 {
        vec![]
    } else {
        vec![kv.v.codes()]
    };
    let v_scales: Vec<&[f32]> = if tokens == 0 {
        vec![]
    } else {
        vec![kv.v.scales()]
    };
    let src = KvSource::quant_paged(
        &k_codes,
        &k_scales,
        &v_codes,
        &v_scales,
        tokens.max(1),
        kv.k.n_heads(),
        kv.k.head_dim(),
        tokens,
    )?;
    Ok(blocked_gqa_attention_source(
        pool, q, &src, params, q_pos, &kv.pos, ATTN_BLOCK,
    )?)
}

/// Folds per-origin stashed partials in **canonical order** — ascending
/// origin `0..W`, independent of the path's visit order. Every schedule
/// family that stashes per-origin partials and folds through here produces
/// bitwise identical outputs for the same inputs, whatever ring layout or
/// direction moved the blocks.
fn canonical_fold(
    comm: &Communicator<RingMsg>,
    computed: Vec<Option<Vec<AttentionOutput>>>,
    n_seqs: usize,
    what: &'static str,
) -> Result<Vec<AttentionOutput>, CoreError> {
    let mut acc: Vec<Option<AttentionOutput>> = (0..n_seqs).map(|_| None).collect();
    comm.time_compute("merge pass-kv", || {
        for (origin, step) in computed.into_iter().enumerate() {
            let step = step.ok_or_else(|| CoreError::Internal {
                detail: format!("origin {origin} was never attended in the {what} loop"),
            })?;
            acc.iter_mut()
                .zip(step)
                .try_for_each(|(a, out)| fold_partial(a, out))?;
        }
        Ok::<(), CoreError>(())
    })?;
    take_merged(acc, what)
}

/// Quantizes each local KV shard once into the compressed wire format.
fn quantize_locals(locals: &[LocalSeq]) -> Result<Vec<QuantSeqKv>, CoreError> {
    locals
        .iter()
        .map(|l| {
            QuantSeqKv::quantize(&SeqKv {
                k: l.k.clone(),
                v: l.v.clone(),
                pos: l.kv_pos.clone(),
            })
            .map_err(CoreError::from)
        })
        .collect()
}

/// Compressed ring pass-KV prefill (APB-style, arXiv:2504.12266 §2.2
/// lineage): identical wire schedule to [`ring_pass_kv_prefill_on`] —
/// same peers, same steps, same number of hops — but each hop carries the
/// INT8 [`RingMsg::KvQuant`] payload, ~4× fewer bytes per link.
///
/// Each rank quantizes its shard **once**; hops relay codes verbatim, and
/// every rank attends a visiting block in place through the quantized
/// kernel ([`KvSource::quant_paged`] — per-head dequantize into a reused
/// scratch, no materialized f32 copy). The rank's own shard is attended
/// through the same quantized representation, so every rank folds the
/// same per-origin values and results are identical across ranks.
///
/// Partials stash per origin and fold in **canonical ascending-origin
/// order** ([`canonical_fold`]): flat, hierarchical, unidirectional and
/// bidirectional compressed schedules are all bitwise identical to each
/// other (the f32 families fold in path visit order instead, and so agree
/// only mathematically across layouts). Accuracy vs the f32 families is
/// bounded by the quantization error (see `QuantizedKv::error_bound`).
///
/// # Errors
///
/// As [`ring_pass_kv_prefill_on`], plus quantization shape errors.
pub fn ring_pass_kv_prefill_quant_on(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
    layout: RingLayout,
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let rank = comm.rank();
    let path = layout.fwd(n)?;
    let mut visiting = quantize_locals(locals)?;
    let mut computed: Vec<Option<Vec<AttentionOutput>>> = vec![None; n];

    let pool = comm.pool();
    for j in 0..n {
        let pending = if j + 1 < n {
            Some(comm.isend_irecv(
                path.send_peer(rank, j),
                RingMsg::KvQuant {
                    seqs: visiting.clone(),
                },
                path.recv_peer(rank, j),
            )?)
        } else {
            None
        };
        let origin = path.origin_at(rank, j);
        let step = comm.time_compute("attend pass-kv", || {
            map_seqs(pool, locals, |i, local| {
                let kv = visiting.get(i).ok_or_else(|| CoreError::BadRequest {
                    reason: format!(
                        "quantized KV block of origin {origin} carries {} sequences but rank \
                         {rank} holds {} local sequences",
                        visiting.len(),
                        locals.len()
                    ),
                })?;
                attend_quant(pool, &local.q, &local.q_pos, kv, params)
            })
        })?;
        *origin_slot(&mut computed, origin, "quant pass-kv partials")? = Some(step);
        if let Some(pending) = pending {
            visiting = expect_kv_quant(pending.wait()?, path.recv_peer(rank, j))?;
        }
    }

    canonical_fold(comm, computed, locals.len(), "quant pass-kv")
}

/// Splits each quantized local shard at the token midpoint into forward
/// and reverse circulating halves (codes copied verbatim, so the rejoin
/// is exact).
fn split_quant_halves(
    own: Vec<QuantSeqKv>,
) -> Result<(Vec<QuantSeqKv>, Vec<QuantSeqKv>), CoreError> {
    let mut a = Vec::with_capacity(own.len());
    let mut b = Vec::with_capacity(own.len());
    for q in own {
        let (ha, hb) = q.split_halves()?;
        a.push(ha);
        b.push(hb);
    }
    Ok((a, b))
}

/// Rejoins per-sequence quantized KV halves from the two ring directions.
/// [`QuantSeqKv::join_halves`] is an exact round-trip of
/// [`QuantSeqKv::split_halves`], so the attended block carries bit-for-bit
/// the codes the unidirectional compressed ring would have sent whole.
fn join_quant_halves(
    rank: usize,
    a: &[QuantSeqKv],
    b: &[QuantSeqKv],
) -> Result<Vec<QuantSeqKv>, CoreError> {
    if a.len() != b.len() {
        return Err(CoreError::BadRequest {
            reason: format!(
                "rank {rank} received mismatched quantized KV half batches: {} vs {} sequences",
                a.len(),
                b.len()
            ),
        });
    }
    a.iter()
        .zip(b)
        .map(|(ha, hb)| QuantSeqKv::join_halves(ha, hb).map_err(CoreError::from))
        .collect()
}

/// If both halves of `origin`'s quantized block are on board and it has
/// not been attended yet, rejoin (exact), attend through the quantized
/// kernel, and park the per-sequence partials. Readiness logic is
/// identical to [`bidi_kv_attend_if_ready`].
#[allow(clippy::too_many_arguments)]
fn bidi_quant_attend_if_ready(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
    origin: usize,
    halves_a: &mut [Option<Vec<QuantSeqKv>>],
    halves_b: &mut [Option<Vec<QuantSeqKv>>],
    computed: &mut [Option<Vec<AttentionOutput>>],
) -> Result<(), CoreError> {
    if origin_slot(computed, origin, "bidi quant pass-kv partials")?.is_some() {
        return Ok(());
    }
    let ready = matches!(
        (halves_a.get(origin), halves_b.get(origin)),
        (Some(Some(_)), Some(Some(_)))
    );
    if !ready {
        return Ok(());
    }
    let a = origin_slot(halves_a, origin, "bidi quant pass-kv A halves")?
        .take()
        .unwrap_or_default();
    let b = origin_slot(halves_b, origin, "bidi quant pass-kv B halves")?
        .take()
        .unwrap_or_default();
    let rank = comm.rank();
    let full = join_quant_halves(rank, &a, &b)?;
    let pool = comm.pool();
    let step = comm.time_compute("attend pass-kv", || {
        map_seqs(pool, locals, |i, local| {
            let kv = full.get(i).ok_or_else(|| CoreError::BadRequest {
                reason: format!(
                    "quantized KV block of origin {origin} carries {} sequences but rank {rank} \
                     holds {} local sequences",
                    full.len(),
                    locals.len()
                ),
            })?;
            attend_quant(pool, &local.q, &local.q_pos, kv, params)
        })
    })?;
    *origin_slot(computed, origin, "bidi quant pass-kv partials")? = Some(step);
    Ok(())
}

/// Bidirectional compressed pass-KV prefill: the wire schedule of
/// [`ring_pass_kv_prefill_bidi`] (half payloads on disjoint links in the
/// two directions) carrying [`RingMsg::KvQuant`] halves — each hop moves
/// `l/2 · n_kv · (d + 4)` bytes per direction instead of the f32 half's
/// `l/2 · n_kv · d · 4`.
///
/// Halves split and rejoin **exactly** ([`QuantSeqKv::split_halves`]
/// round-trips codes verbatim), and partials fold in canonical
/// ascending-origin order, so outputs are bitwise identical to
/// [`ring_pass_kv_prefill_quant_on`] on any layout — the compressed
/// schedule family is one bitwise equivalence class.
///
/// # Errors
///
/// As [`ring_pass_kv_prefill_bidi`], plus quantization shape errors.
pub fn ring_pass_kv_prefill_quant_bidi(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
    layout: RingLayout,
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let rank = comm.rank();
    let fwd = layout.fwd(n)?;
    let rev = layout.rev(n)?;

    let mut halves_a: Vec<Option<Vec<QuantSeqKv>>> = vec![None; n];
    let mut halves_b: Vec<Option<Vec<QuantSeqKv>>> = vec![None; n];
    let (own_a, own_b) = split_quant_halves(quantize_locals(locals)?)?;
    *origin_slot(&mut halves_a, rank, "bidi quant pass-kv A halves")? = Some(own_a);
    *origin_slot(&mut halves_b, rank, "bidi quant pass-kv B halves")? = Some(own_b);
    let mut computed: Vec<Option<Vec<AttentionOutput>>> = vec![None; n];

    for j in 0..n {
        let pends = if j + 1 < n {
            let send_a = origin_slot(
                &mut halves_a,
                fwd.origin_at(rank, j),
                "bidi quant pass-kv A halves",
            )?
            .clone()
            .ok_or_else(|| CoreError::Internal {
                detail: format!(
                    "rank {rank} has no A half of origin {} to forward at round {j}",
                    fwd.origin_at(rank, j)
                ),
            })?;
            let pf = comm.isend_irecv(
                fwd.send_peer(rank, j),
                RingMsg::KvQuant { seqs: send_a },
                fwd.recv_peer(rank, j),
            )?;
            let send_b = origin_slot(
                &mut halves_b,
                rev.origin_at(rank, j),
                "bidi quant pass-kv B halves",
            )?
            .clone()
            .ok_or_else(|| CoreError::Internal {
                detail: format!(
                    "rank {rank} has no B half of origin {} to forward at round {j}",
                    rev.origin_at(rank, j)
                ),
            })?;
            let pr = comm.isend_irecv(
                rev.send_peer(rank, j),
                RingMsg::KvQuant { seqs: send_b },
                rev.recv_peer(rank, j),
            )?;
            Some((pf, pr))
        } else {
            None
        };
        bidi_quant_attend_if_ready(
            comm,
            params,
            locals,
            fwd.origin_at(rank, j),
            &mut halves_a,
            &mut halves_b,
            &mut computed,
        )?;
        bidi_quant_attend_if_ready(
            comm,
            params,
            locals,
            rev.origin_at(rank, j),
            &mut halves_a,
            &mut halves_b,
            &mut computed,
        )?;
        if let Some((pf, pr)) = pends {
            let seqs = expect_kv_quant(pf.wait()?, fwd.recv_peer(rank, j))?;
            *origin_slot(
                &mut halves_a,
                fwd.origin_at(rank, j + 1),
                "bidi quant pass-kv A halves",
            )? = Some(seqs);
            let seqs = expect_kv_quant(pr.wait()?, rev.recv_peer(rank, j))?;
            *origin_slot(
                &mut halves_b,
                rev.origin_at(rank, j + 1),
                "bidi quant pass-kv B halves",
            )? = Some(seqs);
        }
    }

    canonical_fold(comm, computed, locals.len(), "bidi quant pass-kv")
}

/// Canonical-merge f32 pass-KV prefill: the wire schedule of
/// [`ring_pass_kv_prefill_on`] with partials stashed per origin and folded
/// in canonical ascending-origin order ([`canonical_fold`]) instead of the
/// path's visit order. Outputs are bitwise **layout-stable**: flat and any
/// hierarchical topology produce identical bits for the same inputs —
/// the fold-order guarantee the visit-order family cannot give — at the
/// cost of O(W) buffered partials instead of O(1).
///
/// # Errors
///
/// Same failure modes as [`ring_pass_kv_prefill_on`].
pub fn ring_pass_kv_prefill_canonical_on(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
    layout: RingLayout,
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let rank = comm.rank();
    let path = layout.fwd(n)?;
    let mut visiting: Vec<SeqKv> = locals
        .iter()
        .map(|l| SeqKv {
            k: l.k.clone(),
            v: l.v.clone(),
            pos: l.kv_pos.clone(),
        })
        .collect();
    let mut computed: Vec<Option<Vec<AttentionOutput>>> = vec![None; n];

    let pool = comm.pool();
    for j in 0..n {
        let pending = if j + 1 < n {
            Some(comm.isend_irecv(
                path.send_peer(rank, j),
                RingMsg::Kv {
                    seqs: visiting.clone(),
                },
                path.recv_peer(rank, j),
            )?)
        } else {
            None
        };
        let origin = path.origin_at(rank, j);
        let step = comm.time_compute("attend pass-kv", || {
            map_seqs(pool, locals, |i, local| {
                let kv = visiting.get(i).ok_or_else(|| CoreError::BadRequest {
                    reason: format!(
                        "KV block of origin {origin} carries {} sequences but rank {rank} holds \
                         {} local sequences",
                        visiting.len(),
                        locals.len()
                    ),
                })?;
                attend(pool, &local.q, &local.q_pos, kv, params)
            })
        })?;
        *origin_slot(&mut computed, origin, "canonical pass-kv partials")? = Some(step);
        if let Some(pending) = pending {
            visiting = expect_kv(pending.wait()?, path.recv_peer(rank, j))?;
        }
    }

    canonical_fold(comm, computed, locals.len(), "canonical pass-kv")
}

/// Depth-2 pipelined pass-KV prefill: each hop's payload splits into two
/// chunks that travel the forward ring as separate messages, and each
/// chunk is forwarded the moment it arrives — before its sibling lands
/// (cut-through). Under a bandwidth-modelled serialized link this takes
/// roughly `n/2` chunk transmission slots off the critical path versus
/// the store-and-forward full-block hop in comm-bound regimes. Selected
/// via [`cp_comm::Fabric::pipeline_depth`]`(2)` through the
/// [`ring_pass_kv_prefill`] dispatcher.
///
/// Every visiting block is fully reassembled (O(1) view rejoin) before
/// attending and the fold order matches the unidirectional loop, so
/// outputs are bit-identical to [`ring_pass_kv_prefill`].
///
/// # Errors
///
/// Same failure modes as [`ring_pass_kv_prefill`].
pub fn ring_pass_kv_prefill_chunked(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let rank = comm.rank();
    let (next, prev) = (comm.ring_next(), comm.ring_prev());
    let (own_1, own_2) = split_kv_halves(locals)?;
    let mut acc: Vec<Option<AttentionOutput>> = (0..locals.len()).map(|_| None).collect();

    let pool = comm.pool();
    let attend_and_fold =
        |visiting: &[SeqKv], acc: &mut Vec<Option<AttentionOutput>>| -> Result<(), CoreError> {
            let step = comm.time_compute("attend pass-kv", || {
                map_seqs(pool, locals, |i, local| {
                    let kv = visiting.get(i).ok_or_else(|| CoreError::BadRequest {
                        reason: format!(
                        "visiting KV block carries {} sequences but rank {rank} holds {} local \
                         sequences",
                        visiting.len(),
                        locals.len()
                    ),
                    })?;
                    attend(pool, &local.q, &local.q_pos, kv, params)
                })
            })?;
            comm.time_compute("merge pass-kv", || {
                acc.iter_mut()
                    .zip(step)
                    .try_for_each(|(a, out)| fold_partial(a, out))
            })
        };

    // Round 0: both chunks of the local shard go on the wire back to back,
    // then the rank attends its own (never-split) block.
    let mut pending = if n > 1 {
        let p1 = comm.isend_irecv(next, RingMsg::Kv { seqs: own_1 }, prev)?;
        let p2 = comm.isend_irecv(next, RingMsg::Kv { seqs: own_2 }, prev)?;
        Some((p1, p2))
    } else {
        None
    };
    let own: Vec<SeqKv> = locals
        .iter()
        .map(|l| SeqKv {
            k: l.k.clone(),
            v: l.v.clone(),
            pos: l.kv_pos.clone(),
        })
        .collect();
    attend_and_fold(&own, &mut acc)?;

    for j in 1..n {
        let (p1, p2) = pending.take().ok_or_else(|| CoreError::Internal {
            detail: format!("chunked pass-kv round {j} has no pending chunk exchange"),
        })?;
        // Cut-through: wait and re-post chunk 1 before chunk 2 has even
        // been claimed, so on a serialized link the chunks pipeline
        // through the ring instead of store-and-forwarding whole blocks.
        let h1 = expect_kv(p1.wait()?, prev)?;
        let n1 = if j + 1 < n {
            Some(comm.isend_irecv(next, RingMsg::Kv { seqs: h1.clone() }, prev)?)
        } else {
            None
        };
        let h2 = expect_kv(p2.wait()?, prev)?;
        let n2 = if j + 1 < n {
            Some(comm.isend_irecv(next, RingMsg::Kv { seqs: h2.clone() }, prev)?)
        } else {
            None
        };
        if let (Some(n1), Some(n2)) = (n1, n2) {
            pending = Some((n1, n2));
        }
        let full = join_kv_halves(rank, &h1, &h2)?;
        attend_and_fold(&full, &mut acc)?;
    }

    take_merged(acc, "pass-kv")
}

/// Algorithm 3 — fused variable-length ring pass-Q partial prefill, as
/// executed by one rank.
///
/// Q blocks circulate while KV stays put; after the loop each rank holds
/// partial outputs for *other ranks'* queries, which are returned to their
/// source rank and merged there.
///
/// The hop loop is **double-buffered** like [`ring_pass_kv_prefill`]:
/// the next hop's `isend_irecv` is posted before attending to the visiting
/// queries, and the origin-rotation invariant is still checked when the
/// handle is waited at the loop bottom. The **return hop is
/// double-buffered too**: each visiting origin's partial outputs are
/// isent back the moment their hop computes — before the next hop is
/// waited on — so the return permutation hides under remaining ring
/// compute instead of sitting exposed at the loop end (the Appendix C
/// All2All cost). [`ring_pass_q_prefill_blocking`] keeps the
/// compute-then-exchange ordering and the single trailing `All2All` for
/// A/B comparison; both variants merge per source rank and are
/// proptested bit-identical.
///
/// Returns one [`AttentionOutput`] per sequence for **this rank's own**
/// queries, rows in `q_pos` order.
///
/// # Errors
///
/// Communication failures, shape mismatches, or protocol violations.
pub fn ring_pass_q_prefill(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let (queries, kv) = locals_to_q_and_kv(locals);
    ring_pass_q_prefill_kv(comm, params, &queries, &kv)
}

/// Splits per-sequence `LocalSeq` shards into circulating queries and
/// stationary owned KV (O(1) tensor handle clones), for the legacy
/// tensor-based entry points.
fn locals_to_q_and_kv(locals: &[LocalSeq]) -> (Vec<SeqQ>, Vec<RankKv<'static>>) {
    let queries = locals
        .iter()
        .map(|l| SeqQ {
            q: l.q.clone(),
            pos: l.q_pos.clone(),
        })
        .collect();
    let kv = locals
        .iter()
        .map(|l| {
            RankKv::tensors(SeqKv {
                k: l.k.clone(),
                v: l.v.clone(),
                pos: l.kv_pos.clone(),
            })
        })
        .collect();
    (queries, kv)
}

/// [`ring_pass_q_prefill`] over [`RankKv`] stationary KV — the entry point
/// engines use so the rank's paged caches are attended **in place** (via
/// [`KvView`]) instead of gathered into contiguous tensors first. Only the
/// circulating queries touch the wire, so nothing here needs owned KV.
///
/// `queries[i]` circulates; `local_kv[i]` is the stationary KV shard of the
/// same fused-batch sequence.
///
/// # Errors
///
/// Same failure modes as [`ring_pass_q_prefill`].
pub fn ring_pass_q_prefill_kv(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    queries: &[SeqQ],
    local_kv: &[RankKv<'_>],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let k = comm.rank();

    let mut visiting_origin = k;
    let mut visiting: Vec<SeqQ> = queries.to_vec();

    // This rank's own partial (origin == k, computed at step 0) stays
    // local; every other origin's partial is returned EAGERLY — an isend
    // posted the moment the hop's compute finishes, before the next hop is
    // merged in — so the return traffic rides under the remaining hops'
    // compute instead of forming one exposed All2All at the loop end
    // (Appendix C's exposed-return-hop cost, double-buffered away).
    let mut own: Option<Vec<SeqOut>> = None;
    let pool = comm.pool();
    for j in 0..n {
        let origin = visiting_origin;
        let pending = if j + 1 < n {
            Some(comm.isend_irecv(
                comm.ring_next(),
                RingMsg::Q {
                    origin: visiting_origin,
                    seqs: visiting.clone(),
                },
                comm.ring_prev(),
            )?)
        } else {
            None
        };
        let outs: Vec<SeqOut> = comm.time_compute("attend pass-q", || {
            map_seqs(pool, &visiting, |i, sq| {
                let kv = local_kv.get(i).ok_or_else(|| CoreError::BadRequest {
                    reason: format!(
                        "rank {origin} sent {} query sequences but rank {k} holds {} local KV \
                         sequences",
                        visiting.len(),
                        local_kv.len()
                    ),
                })?;
                attend_rank_kv(pool, &sq.q, &sq.pos, kv, params).map(|o| SeqOut {
                    out: o.out,
                    lse: o.lse,
                })
            })
        })?;
        if origin == k {
            own = Some(outs);
        } else {
            // Buffered post; completion is implicit (channels are
            // unbounded), so the handle can be dropped immediately.
            let _posted = comm.isend(origin, RingMsg::Out { seqs: outs })?;
        }
        if let Some(pending) = pending {
            let received = pending.wait()?;
            let (origin, seqs) = expect_q(received, comm.ring_prev())?;
            check_ring_order(k, n, comm.ring_prev(), j + 1, origin)?;
            visiting_origin = origin;
            visiting = seqs;
        }
    }

    // Fold the partials for our own queries straight into running
    // accumulators as each source arrives — one from each peer (its
    // attention of our queries against its KV shard), ours from step 0 —
    // in ascending source-rank order, without ever materializing the
    // per-source partial table.
    let mut acc: Vec<Option<AttentionOutput>> = (0..queries.len()).map(|_| None).collect();
    for src_rank in 0..n {
        let outs = if src_rank == k {
            own.take().ok_or_else(|| CoreError::Internal {
                detail: format!("rank {k} never visited its own queries in the pass-Q ring loop"),
            })?
        } else {
            expect_out(comm.recv(src_rank)?, src_rank)?
        };
        comm.time_compute("merge pass-q", || {
            fold_source_outs(k, &mut acc, src_rank, &outs)
        })?;
    }
    take_merged(acc, "pass-q")
}

/// Blocking reference variant of [`ring_pass_q_prefill`]: identical math
/// and wire schedule, but each hop computes first and only then performs
/// the exchange (`send_recv`), exposing the full wire time. Kept for A/B
/// benchmarking of communication/compute overlap.
///
/// # Errors
///
/// Same failure modes as [`ring_pass_q_prefill`].
pub fn ring_pass_q_prefill_blocking(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let (queries, kv) = locals_to_q_and_kv(locals);
    ring_pass_q_prefill_blocking_kv(comm, params, &queries, &kv)
}

/// [`ring_pass_q_prefill_blocking`] over [`RankKv`] stationary KV — the
/// blocking A/B twin of [`ring_pass_q_prefill_kv`].
///
/// # Errors
///
/// Same failure modes as [`ring_pass_q_prefill`].
pub fn ring_pass_q_prefill_blocking_kv(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    queries: &[SeqQ],
    local_kv: &[RankKv<'_>],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let k = comm.rank();

    let mut visiting_origin = k;
    let mut visiting: Vec<SeqQ> = queries.to_vec();

    let mut computed: Vec<Option<Vec<SeqOut>>> = vec![None; n];
    let pool = comm.pool();
    for j in 0..n {
        let origin = visiting_origin;
        let outs: Vec<SeqOut> = comm.time_compute("attend pass-q", || {
            map_seqs(pool, &visiting, |i, sq| {
                let kv = local_kv.get(i).ok_or_else(|| CoreError::BadRequest {
                    reason: format!(
                        "rank {origin} sent {} query sequences but rank {k} holds {} local KV \
                         sequences",
                        visiting.len(),
                        local_kv.len()
                    ),
                })?;
                attend_rank_kv(pool, &sq.q, &sq.pos, kv, params).map(|o| SeqOut {
                    out: o.out,
                    lse: o.lse,
                })
            })
        })?;
        let slot = computed
            .get_mut(visiting_origin)
            .ok_or_else(|| CoreError::Internal {
                detail: format!("visiting origin {visiting_origin} out of range for world {n}"),
            })?;
        *slot = Some(outs);
        if j + 1 < n {
            let received = comm.send_recv(
                comm.ring_next(),
                RingMsg::Q {
                    origin: visiting_origin,
                    seqs: visiting,
                },
                comm.ring_prev(),
            )?;
            let (origin, seqs) = expect_q(received, comm.ring_prev())?;
            check_ring_order(k, n, comm.ring_prev(), j + 1, origin)?;
            visiting_origin = origin;
            visiting = seqs;
        }
    }

    return_and_merge_pass_q(comm, queries.len(), computed)
}

/// Tail of the blocking pass-Q prefill variant: return every origin's
/// partial outputs via one `All2All`, then fold them into running
/// accumulators in ascending source-rank order. The overlapped variant
/// instead returns partials eagerly per hop (lone isends) and collects
/// them with per-peer receives — a different transport for the *same*
/// permutation, folded in the same order, so both variants stay
/// bit-identical.
fn return_and_merge_pass_q(
    comm: &Communicator<RingMsg>,
    n_seqs: usize,
    computed: Vec<Option<Vec<SeqOut>>>,
) -> Result<Vec<AttentionOutput>, CoreError> {
    // All2All: computed[s] goes back to rank s (this includes keeping our
    // own partial locally).
    let payloads: Vec<RingMsg> = computed
        .into_iter()
        .enumerate()
        .map(|(s, outs)| {
            outs.map(|seqs| RingMsg::Out { seqs })
                .ok_or_else(|| CoreError::Internal {
                    detail: format!("origin {s} never visited in the pass-Q ring loop"),
                })
        })
        .collect::<Result<_, _>>()?;
    let received = comm.all_to_all(payloads)?;

    // received[s] = partial attention of our queries against rank s's KV.
    let mut acc: Vec<Option<AttentionOutput>> = (0..n_seqs).map(|_| None).collect();
    for (src_rank, msg) in received.into_iter().enumerate() {
        let outs = expect_out(msg, src_rank)?;
        comm.time_compute("merge pass-q", || {
            fold_source_outs(comm.rank(), &mut acc, src_rank, &outs)
        })?;
    }
    take_merged(acc, "pass-q")
}

/// Attends one batch of visiting query blocks (a full block or a
/// bidirectional half) against the stationary local KV. An empty block —
/// the reverse half of a one-token sequence — produces a zero-row output
/// without touching the kernel; it concatenates back losslessly on the
/// origin rank.
fn attend_visiting_q(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    local_kv: &[RankKv<'_>],
    visiting: &[SeqQ],
    origin: usize,
) -> Result<Vec<SeqOut>, CoreError> {
    let pool = comm.pool();
    let k = comm.rank();
    comm.time_compute("attend pass-q", || {
        map_seqs(pool, visiting, |i, sq| {
            let kv = local_kv.get(i).ok_or_else(|| CoreError::BadRequest {
                reason: format!(
                    "rank {origin} sent {} query sequences but rank {k} holds {} local KV \
                     sequences",
                    visiting.len(),
                    local_kv.len()
                ),
            })?;
            if sq.pos.is_empty() {
                let shape = params.shape;
                return Ok(SeqOut {
                    out: Tensor::zeros(&[0, shape.n_heads(), shape.head_dim()]),
                    lse: Tensor::zeros(&[0, shape.n_heads()]),
                });
            }
            attend_rank_kv(pool, &sq.q, &sq.pos, kv, params).map(|o| SeqOut {
                out: o.out,
                lse: o.lse,
            })
        })
    })
}

/// Posts a pass-Q partial-output return, or stashes it when the target
/// channel still has ring hops in flight (see
/// [`crate::schedule::hop_channels`] for why eager posts there would
/// interleave ahead of hop payloads in the per-pair FIFO).
fn post_or_defer_return(
    comm: &Communicator<RingMsg>,
    is_hop_dst: &[bool],
    deferred: &mut Vec<(usize, RingMsg)>,
    origin: usize,
    round: usize,
    outs: Vec<SeqOut>,
) -> Result<(), CoreError> {
    let msg = RingMsg::Out { seqs: outs };
    if defer_return(is_hop_dst, origin, round, comm.world_size()) {
        deferred.push((origin, msg));
    } else {
        let _posted = comm.isend(origin, msg)?;
    }
    Ok(())
}

/// [`ring_pass_q_prefill`] over an arbitrary [`RingLayout`] — flat keeps
/// the classic ring's exact wire schedule; hierarchical layouts rotate
/// the Q blocks through each node before every cross-node exchange, with
/// returns to still-active hop channels deferred to the final round so
/// per-channel FIFO order stays unambiguous.
///
/// # Errors
///
/// As [`ring_pass_q_prefill`], plus [`CoreError::BadRequest`] when a
/// hierarchical topology does not cover the world size.
pub fn ring_pass_q_prefill_on(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
    layout: RingLayout,
) -> Result<Vec<AttentionOutput>, CoreError> {
    let (queries, kv) = locals_to_q_and_kv(locals);
    ring_pass_q_prefill_kv_on(comm, params, &queries, &kv, layout)
}

/// [`ring_pass_q_prefill_on`] over [`RankKv`] stationary KV.
///
/// # Errors
///
/// As [`ring_pass_q_prefill_on`].
pub fn ring_pass_q_prefill_kv_on(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    queries: &[SeqQ],
    local_kv: &[RankKv<'_>],
    layout: RingLayout,
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let k = comm.rank();
    let fwd = layout.fwd(n)?;
    let is_hop_dst = hop_channels(k, &[fwd]);

    let mut visiting: Vec<SeqQ> = queries.to_vec();
    let mut own: Option<Vec<SeqOut>> = None;
    let mut deferred: Vec<(usize, RingMsg)> = Vec::new();
    for j in 0..n {
        if j + 1 == n {
            for (dst, msg) in deferred.drain(..) {
                let _posted = comm.isend(dst, msg)?;
            }
        }
        let origin = fwd.origin_at(k, j);
        let pending = if j + 1 < n {
            Some(comm.isend_irecv(
                fwd.send_peer(k, j),
                RingMsg::Q {
                    origin,
                    seqs: visiting.clone(),
                },
                fwd.recv_peer(k, j),
            )?)
        } else {
            None
        };
        let outs = attend_visiting_q(comm, params, local_kv, &visiting, origin)?;
        if origin == k {
            own = Some(outs);
        } else {
            post_or_defer_return(comm, &is_hop_dst, &mut deferred, origin, j, outs)?;
        }
        if let Some(pending) = pending {
            let received = pending.wait()?;
            let (got_origin, seqs) = expect_q(received, fwd.recv_peer(k, j))?;
            check_path_order(k, fwd, fwd.recv_peer(k, j), j + 1, got_origin)?;
            visiting = seqs;
        }
    }

    let mut acc: Vec<Option<AttentionOutput>> = (0..queries.len()).map(|_| None).collect();
    for src_rank in 0..n {
        let outs = if src_rank == k {
            own.take().ok_or_else(|| CoreError::Internal {
                detail: format!("rank {k} never visited its own queries in the pass-Q ring loop"),
            })?
        } else {
            expect_out(comm.recv(src_rank)?, src_rank)?
        };
        comm.time_compute("merge pass-q", || {
            fold_source_outs(k, &mut acc, src_rank, &outs)
        })?;
    }
    take_merged(acc, "pass-q")
}

/// Rejoins the two half-outputs a source rank computed for this rank's
/// queries. Query rows are independent under the blocked kernel, so the
/// concatenation is bitwise the full-block partial the unidirectional
/// loop receives.
fn join_out_halves(
    rank: usize,
    src: usize,
    a: &[SeqOut],
    b: &[SeqOut],
) -> Result<Vec<SeqOut>, CoreError> {
    if a.len() != b.len() {
        return Err(CoreError::BadRequest {
            reason: format!(
                "rank {src} returned mismatched Out half batches to rank {rank}: {} vs {} \
                 sequences",
                a.len(),
                b.len()
            ),
        });
    }
    a.iter()
        .zip(b)
        .map(|(ha, hb)| {
            Ok(SeqOut {
                out: Tensor::concat_dim0([&ha.out, &hb.out])?,
                lse: Tensor::concat_dim0([&ha.lse, &hb.lse])?,
            })
        })
        .collect()
}

/// Bidirectional pass-Q prefill: each rank's query rows split at the
/// midpoint, the A half circulating along the forward path and the B
/// half along the reverse path, halving per-link Q bytes per hop. Each
/// round attends both visiting halves (rows are independent, so the
/// halves' outputs concatenate to the full-block partial bitwise) and
/// returns each one eagerly to its origin — deferred to the final round
/// when the origin is a still-active hop channel. The trailing gather
/// receives **two** `Out` messages per peer; which half arrives first on
/// each FIFO channel is fixed by which half the peer hosted first (A on
/// a tie, matching the loop's post order within a round).
///
/// # Errors
///
/// As [`ring_pass_q_prefill_on`].
pub fn ring_pass_q_prefill_bidi(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    locals: &[LocalSeq],
    layout: RingLayout,
) -> Result<Vec<AttentionOutput>, CoreError> {
    let (queries, kv) = locals_to_q_and_kv(locals);
    ring_pass_q_prefill_bidi_kv(comm, params, &queries, &kv, layout)
}

/// [`ring_pass_q_prefill_bidi`] over [`RankKv`] stationary KV.
///
/// # Errors
///
/// As [`ring_pass_q_prefill_on`].
pub fn ring_pass_q_prefill_bidi_kv(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    queries: &[SeqQ],
    local_kv: &[RankKv<'_>],
    layout: RingLayout,
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let k = comm.rank();
    let fwd = layout.fwd(n)?;
    let rev = layout.rev(n)?;
    let is_hop_dst = hop_channels(k, &[fwd, rev]);

    let mut vis_a = Vec::with_capacity(queries.len());
    let mut vis_b = Vec::with_capacity(queries.len());
    for sq in queries {
        let (a, b) = sq.split_halves()?;
        vis_a.push(a);
        vis_b.push(b);
    }

    let mut own_a: Option<Vec<SeqOut>> = None;
    let mut own_b: Option<Vec<SeqOut>> = None;
    let mut deferred: Vec<(usize, RingMsg)> = Vec::new();
    for j in 0..n {
        if j + 1 == n {
            // Flush point: all hop posts are behind us, so the stashed
            // returns land on clean channels, in compute (= expected
            // receive) order.
            for (dst, msg) in deferred.drain(..) {
                let _posted = comm.isend(dst, msg)?;
            }
        }
        let origin_a = fwd.origin_at(k, j);
        let origin_b = rev.origin_at(k, j);
        let pends = if j + 1 < n {
            let pf = comm.isend_irecv(
                fwd.send_peer(k, j),
                RingMsg::Q {
                    origin: origin_a,
                    seqs: vis_a.clone(),
                },
                fwd.recv_peer(k, j),
            )?;
            let pr = comm.isend_irecv(
                rev.send_peer(k, j),
                RingMsg::Q {
                    origin: origin_b,
                    seqs: vis_b.clone(),
                },
                rev.recv_peer(k, j),
            )?;
            Some((pf, pr))
        } else {
            None
        };
        let outs_a = attend_visiting_q(comm, params, local_kv, &vis_a, origin_a)?;
        if origin_a == k {
            own_a = Some(outs_a);
        } else {
            post_or_defer_return(comm, &is_hop_dst, &mut deferred, origin_a, j, outs_a)?;
        }
        let outs_b = attend_visiting_q(comm, params, local_kv, &vis_b, origin_b)?;
        if origin_b == k {
            own_b = Some(outs_b);
        } else {
            post_or_defer_return(comm, &is_hop_dst, &mut deferred, origin_b, j, outs_b)?;
        }
        if let Some((pf, pr)) = pends {
            let (got, seqs) = expect_q(pf.wait()?, fwd.recv_peer(k, j))?;
            check_path_order(k, fwd, fwd.recv_peer(k, j), j + 1, got)?;
            vis_a = seqs;
            let (got, seqs) = expect_q(pr.wait()?, rev.recv_peer(k, j))?;
            check_path_order(k, rev, rev.recv_peer(k, j), j + 1, got)?;
            vis_b = seqs;
        }
    }

    let step_err = |host: usize, origin: usize| CoreError::Internal {
        detail: format!("ring path never routes rank {origin}'s block through rank {host}"),
    };
    let mut acc: Vec<Option<AttentionOutput>> = (0..queries.len()).map(|_| None).collect();
    for src in 0..n {
        let (outs_a, outs_b) = if src == k {
            let a = own_a.take().ok_or_else(|| CoreError::Internal {
                detail: format!("rank {k} never visited its own A-half queries"),
            })?;
            let b = own_b.take().ok_or_else(|| CoreError::Internal {
                detail: format!("rank {k} never visited its own B-half queries"),
            })?;
            (a, b)
        } else {
            // src computed our A half at its forward-hosting round and our
            // B half at its reverse-hosting round; its channel to us is
            // FIFO, so the earlier round's return arrives first (ties are
            // A-first: the loop posts the A return before the B return
            // within a round).
            let tau_a = fwd.step_of(src, k).ok_or_else(|| step_err(src, k))?;
            let tau_b = rev.step_of(src, k).ok_or_else(|| step_err(src, k))?;
            let first = expect_out(comm.recv(src)?, src)?;
            let second = expect_out(comm.recv(src)?, src)?;
            if tau_a <= tau_b {
                (first, second)
            } else {
                (second, first)
            }
        };
        let joined = join_out_halves(k, src, &outs_a, &outs_b)?;
        comm.time_compute("merge pass-q", || {
            fold_source_outs(k, &mut acc, src, &joined)
        })?;
    }
    take_merged(acc, "pass-q")
}

/// Algorithm 4 — batched ring pass-Q decode, as executed by one rank.
///
/// `slots` are this rank's decode assignments for the step (padded with
/// `None` to the common `slots_per_rank`); `batch_kv[b]` is this rank's
/// local KV shard of batch sequence `b`. Query slots circulate with their
/// batch ids; each rank attends visiting queries against its local shard
/// of the matching sequence; partial outputs return via `All2All` and are
/// merged by the slot's owner.
///
/// The hop loop is **double-buffered** like [`ring_pass_kv_prefill`]: the
/// next hop's `isend_irecv` is posted before attending to the visiting
/// slots, with the origin rotation still checked at the loop bottom.
/// [`ring_pass_q_decode_blocking`] keeps the compute-then-exchange
/// ordering for A/B comparison.
///
/// Returns one merged [`AttentionOutput`] per real (non-padding) local
/// slot, in slot order.
///
/// # Errors
///
/// Communication failures, shape mismatches, or protocol violations.
pub fn ring_pass_q_decode(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    slots: &[Option<DecodeSlot>],
    batch_kv: &[SeqKv],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let kv: Vec<RankKv<'static>> = batch_kv.iter().cloned().map(RankKv::tensors).collect();
    ring_pass_q_decode_kv(comm, params, slots, &kv)
}

/// [`ring_pass_q_decode`] over [`RankKv`] local shards — the decode hot
/// path engines use so each step attends the rank's paged caches **in
/// place** (via [`KvView`]) instead of gathering every sequence's shard
/// into fresh contiguous tensors per step per layer.
///
/// # Errors
///
/// Same failure modes as [`ring_pass_q_decode`].
pub fn ring_pass_q_decode_kv(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    slots: &[Option<DecodeSlot>],
    batch_kv: &[RankKv<'_>],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let k = comm.rank();

    let mut visiting_origin = k;
    let mut visiting: Vec<Option<DecodeSlot>> = slots.to_vec();
    let mut computed: Vec<Option<Vec<Option<SeqOut>>>> = vec![None; n];

    let pool = comm.pool();
    for j in 0..n {
        let origin = visiting_origin;
        let pending = if j + 1 < n {
            Some(comm.isend_irecv(
                comm.ring_next(),
                RingMsg::DecodeQ {
                    origin: visiting_origin,
                    slots: visiting.clone(),
                },
                comm.ring_prev(),
            )?)
        } else {
            None
        };
        let outs: Vec<Option<SeqOut>> = comm.time_compute("attend decode", || {
            map_seqs(pool, &visiting, |_, slot| {
                slot.as_ref()
                    .map(|s| {
                        let kv = batch_kv.get(s.bid).ok_or_else(|| CoreError::BadRequest {
                            reason: format!(
                                "decode slot from rank {origin} references unknown batch id {}",
                                s.bid
                            ),
                        })?;
                        attend_rank_kv(pool, &s.q, &[s.pos], kv, params).map(|o| SeqOut {
                            out: o.out,
                            lse: o.lse,
                        })
                    })
                    .transpose()
            })
        })?;
        let slot = computed
            .get_mut(visiting_origin)
            .ok_or_else(|| CoreError::Internal {
                detail: format!("visiting origin {visiting_origin} out of range for world {n}"),
            })?;
        *slot = Some(outs);
        if let Some(pending) = pending {
            let received = pending.wait()?;
            let (origin, s) = expect_decode_q(received, comm.ring_prev())?;
            check_ring_order(k, n, comm.ring_prev(), j + 1, origin)?;
            visiting_origin = origin;
            visiting = s;
        }
    }

    return_and_merge_decode(comm, slots, computed)
}

/// Blocking reference variant of [`ring_pass_q_decode`]: identical math
/// and wire schedule, but each hop computes first and only then performs
/// the exchange (`send_recv`), exposing the full wire time. Kept for A/B
/// benchmarking of communication/compute overlap.
///
/// # Errors
///
/// Same failure modes as [`ring_pass_q_decode`].
pub fn ring_pass_q_decode_blocking(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    slots: &[Option<DecodeSlot>],
    batch_kv: &[SeqKv],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let kv: Vec<RankKv<'static>> = batch_kv.iter().cloned().map(RankKv::tensors).collect();
    ring_pass_q_decode_blocking_kv(comm, params, slots, &kv)
}

/// [`ring_pass_q_decode_blocking`] over [`RankKv`] local shards — the
/// blocking A/B twin of [`ring_pass_q_decode_kv`].
///
/// # Errors
///
/// Same failure modes as [`ring_pass_q_decode`].
pub fn ring_pass_q_decode_blocking_kv(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    slots: &[Option<DecodeSlot>],
    batch_kv: &[RankKv<'_>],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let k = comm.rank();

    let mut visiting_origin = k;
    let mut visiting: Vec<Option<DecodeSlot>> = slots.to_vec();
    let mut computed: Vec<Option<Vec<Option<SeqOut>>>> = vec![None; n];

    let pool = comm.pool();
    for j in 0..n {
        let origin = visiting_origin;
        let outs: Vec<Option<SeqOut>> = comm.time_compute("attend decode", || {
            map_seqs(pool, &visiting, |_, slot| {
                slot.as_ref()
                    .map(|s| {
                        let kv = batch_kv.get(s.bid).ok_or_else(|| CoreError::BadRequest {
                            reason: format!(
                                "decode slot from rank {origin} references unknown batch id {}",
                                s.bid
                            ),
                        })?;
                        attend_rank_kv(pool, &s.q, &[s.pos], kv, params).map(|o| SeqOut {
                            out: o.out,
                            lse: o.lse,
                        })
                    })
                    .transpose()
            })
        })?;
        let slot = computed
            .get_mut(visiting_origin)
            .ok_or_else(|| CoreError::Internal {
                detail: format!("visiting origin {visiting_origin} out of range for world {n}"),
            })?;
        *slot = Some(outs);
        if j + 1 < n {
            let received = comm.send_recv(
                comm.ring_next(),
                RingMsg::DecodeQ {
                    origin: visiting_origin,
                    slots: visiting,
                },
                comm.ring_prev(),
            )?;
            let (origin, s) = expect_decode_q(received, comm.ring_prev())?;
            check_ring_order(k, n, comm.ring_prev(), j + 1, origin)?;
            visiting_origin = origin;
            visiting = s;
        }
    }

    return_and_merge_decode(comm, slots, computed)
}

/// Shared tail of both decode variants: return partial outputs to their
/// owning rank via `All2All`, then fold each source's partials into a
/// running accumulator per real local slot, in source-rank order
/// (bit-identical between overlapped and blocking loops). Live outputs per
/// slot stay O(1) instead of O(world).
fn return_and_merge_decode(
    comm: &Communicator<RingMsg>,
    slots: &[Option<DecodeSlot>],
    computed: Vec<Option<Vec<Option<SeqOut>>>>,
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let payloads: Vec<RingMsg> = computed
        .into_iter()
        .enumerate()
        .map(|(s, outs)| {
            outs.map(|slots| RingMsg::DecodeOut { slots })
                .ok_or_else(|| CoreError::Internal {
                    detail: format!("origin {s} never visited in the decode ring loop"),
                })
        })
        .collect::<Result<_, _>>()?;
    let received = comm.all_to_all(payloads)?;
    let mut per_source: Vec<Vec<Option<SeqOut>>> = Vec::with_capacity(n);
    for (src_rank, msg) in received.into_iter().enumerate() {
        per_source.push(expect_decode_out(msg, src_rank)?);
    }

    comm.time_compute("merge decode", || {
        let mut acc: Vec<Option<AttentionOutput>> = (0..slots.len()).map(|_| None).collect();
        for (s, src) in per_source.iter().enumerate() {
            for (idx, (slot, a)) in slots.iter().zip(acc.iter_mut()).enumerate() {
                if slot.is_none() {
                    continue;
                }
                let entry = src.get(idx).ok_or_else(|| CoreError::BadRequest {
                    reason: format!(
                        "rank {s} returned {} decode partial slots, rank {} expected {}",
                        src.len(),
                        comm.rank(),
                        slots.len()
                    ),
                })?;
                if let Some(o) = entry {
                    // O(1) view clones of the received partial.
                    fold_partial(a, AttentionOutput::new(o.out.clone(), o.lse.clone())?)?;
                }
            }
        }
        slots
            .iter()
            .zip(acc)
            .filter(|(slot, _)| slot.is_some())
            .map(|(_, a)| {
                a.ok_or_else(|| CoreError::Internal {
                    detail: "decode slot received no partial output from any rank".to_string(),
                })
            })
            .collect()
    })
}

/// Attends one batch of visiting decode slots (a full slot vector or a
/// bidirectional half) against the rank's local per-sequence KV shards.
fn attend_decode_slots(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    batch_kv: &[RankKv<'_>],
    visiting: &[Option<DecodeSlot>],
    origin: usize,
) -> Result<Vec<Option<SeqOut>>, CoreError> {
    let pool = comm.pool();
    comm.time_compute("attend decode", || {
        map_seqs(pool, visiting, |_, slot| {
            slot.as_ref()
                .map(|s| {
                    let kv = batch_kv.get(s.bid).ok_or_else(|| CoreError::BadRequest {
                        reason: format!(
                            "decode slot from rank {origin} references unknown batch id {}",
                            s.bid
                        ),
                    })?;
                    attend_rank_kv(pool, &s.q, &[s.pos], kv, params).map(|o| SeqOut {
                        out: o.out,
                        lse: o.lse,
                    })
                })
                .transpose()
        })
    })
}

/// Bidirectional batched pass-Q decode: the slot vector splits at the
/// midpoint, the first half circulating forward and the second in
/// reverse on the flat ring, halving per-link decode-Q bytes per hop.
/// Slots are independent single-token queries, so per-origin halves
/// simply re-concatenate before the same `All2All` return and merge as
/// [`ring_pass_q_decode`] — proptested bit-identical to it, with
/// identical `All2All` bytes.
///
/// # Errors
///
/// Same failure modes as [`ring_pass_q_decode`].
pub fn ring_pass_q_decode_bidi(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    slots: &[Option<DecodeSlot>],
    batch_kv: &[SeqKv],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let kv: Vec<RankKv<'static>> = batch_kv.iter().cloned().map(RankKv::tensors).collect();
    ring_pass_q_decode_bidi_kv(comm, params, slots, &kv)
}

/// [`ring_pass_q_decode_bidi`] over [`RankKv`] local shards.
///
/// # Errors
///
/// Same failure modes as [`ring_pass_q_decode`].
pub fn ring_pass_q_decode_bidi_kv(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    slots: &[Option<DecodeSlot>],
    batch_kv: &[RankKv<'_>],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let k = comm.rank();
    let fwd = RingPath::FlatFwd { world: n };
    let rev = RingPath::FlatRev { world: n };

    let (mut vis_a, mut vis_b) = split_slot_vec(slots);
    let mut computed_a: Vec<Option<Vec<Option<SeqOut>>>> = vec![None; n];
    let mut computed_b: Vec<Option<Vec<Option<SeqOut>>>> = vec![None; n];

    for j in 0..n {
        let origin_a = fwd.origin_at(k, j);
        let origin_b = rev.origin_at(k, j);
        let pends = if j + 1 < n {
            let pf = comm.isend_irecv(
                fwd.send_peer(k, j),
                RingMsg::DecodeQ {
                    origin: origin_a,
                    slots: vis_a.clone(),
                },
                fwd.recv_peer(k, j),
            )?;
            let pr = comm.isend_irecv(
                rev.send_peer(k, j),
                RingMsg::DecodeQ {
                    origin: origin_b,
                    slots: vis_b.clone(),
                },
                rev.recv_peer(k, j),
            )?;
            Some((pf, pr))
        } else {
            None
        };
        let outs_a = attend_decode_slots(comm, params, batch_kv, &vis_a, origin_a)?;
        *origin_slot(&mut computed_a, origin_a, "bidi decode A partials")? = Some(outs_a);
        let outs_b = attend_decode_slots(comm, params, batch_kv, &vis_b, origin_b)?;
        *origin_slot(&mut computed_b, origin_b, "bidi decode B partials")? = Some(outs_b);
        if let Some((pf, pr)) = pends {
            let (got, s) = expect_decode_q(pf.wait()?, fwd.recv_peer(k, j))?;
            check_path_order(k, fwd, fwd.recv_peer(k, j), j + 1, got)?;
            vis_a = s;
            let (got, s) = expect_decode_q(pr.wait()?, rev.recv_peer(k, j))?;
            check_path_order(k, rev, rev.recv_peer(k, j), j + 1, got)?;
            vis_b = s;
        }
    }

    // Re-concatenate each origin's halves into original slot order, then
    // run the exact unidirectional All2All return and merge.
    let mut computed: Vec<Option<Vec<Option<SeqOut>>>> = Vec::with_capacity(n);
    for o in 0..n {
        let mut a = origin_slot(&mut computed_a, o, "bidi decode A partials")?
            .take()
            .ok_or_else(|| CoreError::Internal {
                detail: format!("origin {o}'s A slots were never attended in the bidi decode loop"),
            })?;
        let b = origin_slot(&mut computed_b, o, "bidi decode B partials")?
            .take()
            .ok_or_else(|| CoreError::Internal {
                detail: format!("origin {o}'s B slots were never attended in the bidi decode loop"),
            })?;
        a.extend(b);
        computed.push(Some(a));
    }
    return_and_merge_decode(comm, slots, computed)
}

/// Helix-style batched decode: one `AllGather` replicates every rank's
/// query slots, each rank attends the **whole batch** against its local
/// KV shards in a single sweep, and partials return through the same
/// `All2All` + ascending-source merge as [`ring_pass_q_decode_kv`].
///
/// Every rank computes exactly the partial it would have computed under
/// the ring rotation (same queries, same local shard, same kernel block),
/// and the shared [`return_and_merge_decode`] tail folds sources in the
/// same ascending order — so Helix decode is **bit-identical** to batched
/// pass-Q decode while replacing the `W - 1` serialized `SendRecv`
/// launches with one collective.
///
/// # Errors
///
/// Same failure modes as [`ring_pass_q_decode`].
pub fn helix_decode_kv(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    slots: &[Option<DecodeSlot>],
    batch_kv: &[RankKv<'_>],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let k = comm.rank();
    let gathered = comm.all_gather(RingMsg::DecodeQ {
        origin: k,
        slots: slots.to_vec(),
    })?;
    let mut computed: Vec<Option<Vec<Option<SeqOut>>>> = vec![None; n];
    for (src, msg) in gathered.into_iter().enumerate() {
        let (origin, visiting) = expect_decode_q(msg, src)?;
        if origin != src {
            return Err(CoreError::BadRequest {
                reason: format!("helix decode AllGather slot {src} carries origin tag {origin}"),
            });
        }
        let outs = attend_decode_slots(comm, params, batch_kv, &visiting, origin)?;
        *origin_slot(&mut computed, origin, "helix decode partials")? = Some(outs);
    }
    return_and_merge_decode(comm, slots, computed)
}

/// [`helix_decode_kv`] over gathered owned shards — convenience twin of
/// [`ring_pass_q_decode`].
///
/// # Errors
///
/// Same failure modes as [`ring_pass_q_decode`].
pub fn helix_decode(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    slots: &[Option<DecodeSlot>],
    batch_kv: &[SeqKv],
) -> Result<Vec<AttentionOutput>, CoreError> {
    let kv: Vec<RankKv<'static>> = batch_kv.iter().cloned().map(RankKv::tensors).collect();
    helix_decode_kv(comm, params, slots, &kv)
}

/// TP-only batched decode: every rank `AllGather`s the batch's per-rank
/// KV shards, then each slot's **owner** attends the full context locally
/// — one partial per source shard, folded in ascending rank order, which
/// is the exact per-shard computation and merge order of
/// [`ring_pass_q_decode_kv`], so outputs stay bit-identical to pass-Q.
///
/// `wire_kv[b]` is this rank's owned shard of batch sequence `b` (the
/// gathered twin of `batch_kv[b]`), and `attn_block` the kernel block the
/// paged path would use ([`attn_block_for`] of the cache's page size) so
/// owned re-attention of a peer's shard matches that peer's view path
/// bit-for-bit. At `world == 1` no collective is issued at all — decode
/// degenerates to pure local attention over `batch_kv`, which is why the
/// strategy wins single-rank regimes where pass-Q and Helix still launch
/// their merge collectives.
///
/// The `O(T)` KV movement per step is the strategy's cost; the cp-perf
/// `DecodeStrategy` model prices it against pass-Q/Helix.
///
/// # Errors
///
/// Same failure modes as [`ring_pass_q_decode`], plus
/// [`CoreError::BadRequest`] if a peer's gathered shard set is missing a
/// batch sequence.
pub fn tp_only_decode_kv(
    comm: &Communicator<RingMsg>,
    params: &AttentionParams,
    slots: &[Option<DecodeSlot>],
    batch_kv: &[RankKv<'_>],
    wire_kv: &[SeqKv],
    attn_block: usize,
) -> Result<Vec<AttentionOutput>, CoreError> {
    let n = comm.world_size();
    let k = comm.rank();
    let pool = comm.pool();
    let attend_own = |s: &DecodeSlot| -> Result<AttentionOutput, CoreError> {
        let kv = batch_kv.get(s.bid).ok_or_else(|| CoreError::BadRequest {
            reason: format!("decode slot references unknown batch id {}", s.bid),
        })?;
        attend_rank_kv(pool, &s.q, &[s.pos], kv, params)
    };
    if n == 1 {
        return comm.time_compute("attend decode", || {
            map_seqs(pool, slots, |_, slot| {
                slot.as_ref().map(attend_own).transpose()
            })
            .map(|outs| outs.into_iter().flatten().collect())
        });
    }
    let gathered = comm.all_gather(RingMsg::Kv {
        seqs: wire_kv.to_vec(),
    })?;
    let mut per_rank: Vec<Vec<SeqKv>> = Vec::with_capacity(n);
    for (src, msg) in gathered.into_iter().enumerate() {
        per_rank.push(expect_kv(msg, src)?);
    }
    comm.time_compute("attend decode", || {
        let outs = map_seqs(pool, slots, |_, slot| {
            slot.as_ref()
                .map(|s| {
                    // Fold one partial per source shard, ascending rank
                    // order — the pass-Q merge order. The own-rank shard
                    // attends zero-copy via the paged view.
                    let mut acc: Option<AttentionOutput> = None;
                    for (r, shards) in per_rank.iter().enumerate() {
                        let part = if r == k {
                            attend_own(s)?
                        } else {
                            let kv = shards.get(s.bid).ok_or_else(|| CoreError::BadRequest {
                                reason: format!(
                                    "rank {r}'s gathered KV is missing batch id {}",
                                    s.bid
                                ),
                            })?;
                            let owned = RankKv::Owned {
                                kv: kv.clone(),
                                block: attn_block,
                            };
                            attend_rank_kv(pool, &s.q, &[s.pos], &owned, params)?
                        };
                        fold_partial(&mut acc, part)?;
                    }
                    acc.ok_or_else(|| CoreError::Internal {
                        detail: "tp-only decode slot accumulated no partial".to_string(),
                    })
                })
                .transpose()
        })?;
        Ok(outs.into_iter().flatten().collect())
    })
}

/// Adapter: runs a per-rank ring body inside [`cp_comm::run_ranks`],
/// mapping `CoreError` in and out of the fabric's `CommError`.
pub fn run_ring<T, F>(
    n_ranks: usize,
    body: F,
) -> Result<(Vec<T>, cp_comm::TrafficReport), CoreError>
where
    T: Send,
    F: Fn(&Communicator<RingMsg>) -> Result<T, CoreError> + Sync,
{
    run_ring_on(n_ranks, 0, None, body)
}

/// [`run_ring`] under a [`cp_comm::CheckedFabric`]: every collective the
/// body issues is validated live against `plan` (peer, variant, byte count,
/// op order), turning schedule drift into a hard error instead of silent
/// mismeasurement. Debug/test harness for the serving engines.
///
/// # Errors
///
/// As [`run_ring`], plus [`CoreError::Comm`] wrapping
/// [`cp_comm::CommError::PlanViolation`] when traffic diverges from the
/// declared schedule.
pub fn run_ring_checked<T, F>(
    plan: &cp_comm::CommPlan,
    body: F,
) -> Result<(Vec<T>, cp_comm::TrafficReport), CoreError>
where
    T: Send,
    F: Fn(&Communicator<RingMsg>) -> Result<T, CoreError> + Sync,
{
    run_ring_on(plan.world, 0, Some(plan), body)
}

/// Groups one batched decode tick's slots by owner rank. `owners[b]` is
/// the rank whose cache receives batch element `b`'s new KV this step
/// (each sequence rotates independently under §3.6). Returns the per-rank
/// batch-index lists, in slot order, plus the common padded slot count:
/// the slot lists circulate on the ring, so every rank's `slots` argument
/// to [`ring_pass_q_decode_kv`] must be resized (with `None`) to the same
/// length.
///
/// # Errors
///
/// [`CoreError::BadRequest`] if an owner is outside `0..n_ranks` or
/// `n_ranks == 0`.
pub fn decode_slot_layout(
    owners: &[usize],
    n_ranks: usize,
) -> Result<(Vec<Vec<usize>>, usize), CoreError> {
    if n_ranks == 0 {
        return Err(CoreError::BadRequest {
            reason: "decode needs at least one rank".to_string(),
        });
    }
    let mut per_rank: Vec<Vec<usize>> = vec![Vec::new(); n_ranks];
    for (b, &owner) in owners.iter().enumerate() {
        per_rank
            .get_mut(owner)
            .ok_or_else(|| CoreError::BadRequest {
                reason: format!(
                    "batch element {b} is owned by rank {owner}, world has {n_ranks} ranks"
                ),
            })?
            .push(b);
    }
    let slots_per_rank = per_rank.iter().map(Vec::len).max().unwrap_or(0);
    Ok((per_rank, slots_per_rank))
}

/// The fully-general ring runner: `pool_threads` sets each rank's
/// persistent [`cp_pool::ComputePool`] width (`0` = the fabric default),
/// and a `Some(plan)` runs under a [`cp_comm::CheckedFabric`] with live
/// schedule validation. [`run_ring`] and [`run_ring_checked`] are thin
/// wrappers over this.
///
/// # Errors
///
/// As [`run_ring`]/[`run_ring_checked`] respectively.
pub fn run_ring_on<T, F>(
    n_ranks: usize,
    pool_threads: usize,
    plan: Option<&cp_comm::CommPlan>,
    body: F,
) -> Result<(Vec<T>, cp_comm::TrafficReport), CoreError>
where
    T: Send,
    F: Fn(&Communicator<RingMsg>) -> Result<T, CoreError> + Sync,
{
    let wrapped =
        |comm: &Communicator<RingMsg>| body(comm).map_err(|e| to_comm_error(comm.rank(), e));
    let result = match plan {
        Some(plan) => cp_comm::CheckedFabric::new(plan.clone())
            .compute_pool(pool_threads)
            .run::<RingMsg, T, _>(wrapped),
        None => cp_comm::Fabric::new(n_ranks)
            .compute_pool(pool_threads)
            .run::<RingMsg, T, _>(wrapped),
    };
    result.map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_attention::{naive_gqa_attention, GqaShape, PAD};
    use cp_sharding::ShardPlan;
    use cp_tensor::DetRng;

    fn params(nh: usize, nkv: usize, dh: usize) -> AttentionParams {
        AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap())
    }

    /// Builds per-rank LocalSeq inputs for a single full-prefill sequence
    /// under load-balanced sharding, plus the single-device reference.
    fn build_full_prefill(
        n: usize,
        t: usize,
        p: &AttentionParams,
        seed: u64,
    ) -> (Vec<Vec<LocalSeq>>, AttentionOutput, Vec<Vec<usize>>) {
        let shape = p.shape;
        let mut rng = DetRng::new(seed);
        let q = rng.tensor(&[t, shape.n_heads(), shape.head_dim()]);
        let k = rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]);
        let v = rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]);
        let pos: Vec<usize> = (0..t).collect();
        let reference = naive_gqa_attention(&q, &k, &v, p, &pos, &pos).unwrap();

        let plan = ShardPlan::new(t, n).unwrap();
        let max_len = (0..n).map(|r| plan.tokens_for(r)).max().unwrap();
        let mut locals = Vec::with_capacity(n);
        let mut rank_positions = Vec::with_capacity(n);
        for r in 0..n {
            let positions = plan.positions_for(r);
            let qs = q.gather_dim0(&positions).unwrap();
            let ks = k
                .gather_dim0(&positions)
                .unwrap()
                .pad_dim0(max_len, 0.0)
                .unwrap();
            let vs = v
                .gather_dim0(&positions)
                .unwrap()
                .pad_dim0(max_len, 0.0)
                .unwrap();
            let mut kv_pos = positions.clone();
            kv_pos.resize(max_len, PAD);
            locals.push(vec![LocalSeq {
                q: qs,
                q_pos: positions.clone(),
                k: ks,
                v: vs,
                kv_pos,
            }]);
            rank_positions.push(positions);
        }
        (locals, reference, rank_positions)
    }

    fn check_against_reference(
        outputs: &[Vec<AttentionOutput>],
        reference: &AttentionOutput,
        rank_positions: &[Vec<usize>],
    ) {
        for (r, outs) in outputs.iter().enumerate() {
            let out = &outs[0];
            for (row, &pos) in rank_positions[r].iter().enumerate() {
                let got = out.slice_tokens(row, row + 1).unwrap();
                let want = reference.slice_tokens(pos, pos + 1).unwrap();
                assert!(
                    got.out.approx_eq(&want.out, 2e-3).unwrap(),
                    "rank {r} row {row} pos {pos}: {}",
                    got.out.max_abs_diff(&want.out).unwrap()
                );
                assert!(got.lse.approx_eq(&want.lse, 2e-3).unwrap());
            }
        }
    }

    #[test]
    fn pass_kv_full_prefill_exact_cp2() {
        let p = params(4, 2, 8);
        let (locals, reference, rank_pos) = build_full_prefill(2, 32, &p, 11);
        let (outputs, report) = run_ring(2, |comm| {
            ring_pass_kv_prefill(comm, &p, &locals[comm.rank()])
        })
        .unwrap();
        check_against_reference(&outputs, &reference, &rank_pos);
        // N-1 = 1 hop per rank: each rank forwards its KV block once, so the
        // expected traffic is the sum of each rank's wire size as reported by
        // the payload type itself, not a hand-computed constant.
        let expected: usize = (0..2)
            .map(|r| {
                use cp_comm::Wire;
                RingMsg::Kv {
                    seqs: locals[r]
                        .iter()
                        .map(|l| SeqKv {
                            k: l.k.clone(),
                            v: l.v.clone(),
                            pos: l.kv_pos.clone(),
                        })
                        .collect(),
                }
                .wire_bytes()
            })
            .sum();
        assert_eq!(report.send_recv_bytes, expected);
        assert_eq!(report.send_recv.bytes, expected);
        assert_eq!(report.send_recv.calls, 2);
    }

    #[test]
    fn pass_kv_full_prefill_exact_various_ranks() {
        let p = params(2, 1, 4);
        for n in [1, 3, 4, 5] {
            let (locals, reference, rank_pos) = build_full_prefill(n, 41, &p, n as u64);
            let (outputs, _) = run_ring(n, |comm| {
                ring_pass_kv_prefill(comm, &p, &locals[comm.rank()])
            })
            .unwrap();
            check_against_reference(&outputs, &reference, &rank_pos);
        }
    }

    #[test]
    fn pass_q_full_prefill_exact_various_ranks() {
        let p = params(4, 2, 8);
        for n in [1, 2, 3, 4] {
            let (locals, reference, rank_pos) = build_full_prefill(n, 37, &p, 100 + n as u64);
            let (outputs, _) = run_ring(n, |comm| {
                ring_pass_q_prefill(comm, &p, &locals[comm.rank()])
            })
            .unwrap();
            check_against_reference(&outputs, &reference, &rank_pos);
        }
    }

    #[test]
    fn pass_q_and_pass_kv_agree() {
        let p = params(4, 4, 4);
        let (locals, _, _) = build_full_prefill(3, 26, &p, 9);
        let (kv_out, _) = run_ring(3, |comm| {
            ring_pass_kv_prefill(comm, &p, &locals[comm.rank()])
        })
        .unwrap();
        let (q_out, _) = run_ring(3, |comm| {
            ring_pass_q_prefill(comm, &p, &locals[comm.rank()])
        })
        .unwrap();
        for r in 0..3 {
            assert!(kv_out[r][0].out.approx_eq(&q_out[r][0].out, 1e-4).unwrap());
            assert!(kv_out[r][0].lse.approx_eq(&q_out[r][0].lse, 1e-4).unwrap());
        }
    }

    #[test]
    fn pass_kv_messages_have_equal_sizes_across_ranks() {
        // The §3.5.2 invariant: padding makes every rank's circulating KV
        // block the same size even when token counts differ.
        let p = params(2, 1, 4);
        let t = 13; // not divisible by 2N: ranks own unequal token counts
        let n = 3;
        let (locals, ..) = build_full_prefill(n, t, &p, 5);
        let sizes: Vec<usize> = (0..n)
            .map(|r| {
                use cp_comm::Wire;
                RingMsg::Kv {
                    seqs: locals[r]
                        .iter()
                        .map(|l| SeqKv {
                            k: l.k.clone(),
                            v: l.v.clone(),
                            pos: l.kv_pos.clone(),
                        })
                        .collect(),
                }
                .wire_bytes()
            })
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
    }

    #[test]
    fn decode_single_step_exact() {
        // One sequence with cached history distributed over ranks; one
        // decode token on rank 0.
        let p = params(2, 1, 4);
        let n = 3;
        let hist = 20;
        let mut rng = DetRng::new(3);
        let k = rng.tensor(&[hist, 1, 4]);
        let v = rng.tensor(&[hist, 1, 4]);
        let q = rng.tensor(&[1, 2, 4]);
        let all_pos: Vec<usize> = (0..hist).collect();
        let reference = naive_gqa_attention(&q, &k, &v, &p, &[hist], &all_pos).unwrap();

        // Distribute history round-robin over ranks.
        let plan: Vec<Vec<usize>> = (0..n)
            .map(|r| (0..hist).filter(|i| i % n == r).collect())
            .collect();
        let batch_kv: Vec<Vec<SeqKv>> = (0..n)
            .map(|r| {
                vec![SeqKv {
                    k: k.gather_dim0(&plan[r]).unwrap(),
                    v: v.gather_dim0(&plan[r]).unwrap(),
                    pos: plan[r].clone(),
                }]
            })
            .collect();
        let slots: Vec<Vec<Option<DecodeSlot>>> = (0..n)
            .map(|r| {
                if r == 0 {
                    vec![Some(DecodeSlot {
                        bid: 0,
                        q: q.clone(),
                        pos: hist,
                    })]
                } else {
                    vec![None]
                }
            })
            .collect();

        let (outputs, _) = run_ring(n, |comm| {
            ring_pass_q_decode(comm, &p, &slots[comm.rank()], &batch_kv[comm.rank()])
        })
        .unwrap();
        assert_eq!(outputs[0].len(), 1);
        assert!(outputs[1].is_empty() && outputs[2].is_empty());
        assert!(outputs[0][0].out.approx_eq(&reference.out, 1e-3).unwrap());
    }

    #[test]
    fn decode_with_empty_history_is_masked_safe() {
        // Decode a token whose sequence has no visible KV on some ranks.
        let p = params(1, 1, 2);
        let n = 2;
        let mut rng = DetRng::new(4);
        let k = rng.tensor(&[1, 1, 2]);
        let v = rng.tensor(&[1, 1, 2]);
        let q = rng.tensor(&[1, 1, 2]);
        let reference = naive_gqa_attention(&q, &k, &v, &p, &[1], &[0]).unwrap();
        // Rank 0 has the single history token; rank 1 has nothing.
        let batch_kv = [
            vec![SeqKv {
                k: k.clone(),
                v: v.clone(),
                pos: vec![0],
            }],
            vec![SeqKv {
                k: Tensor::zeros(&[0, 1, 2]),
                v: Tensor::zeros(&[0, 1, 2]),
                pos: vec![],
            }],
        ];
        let slots = [
            vec![Some(DecodeSlot {
                bid: 0,
                q: q.clone(),
                pos: 1,
            })],
            vec![None],
        ];
        let (outputs, _) = run_ring(n, |comm| {
            ring_pass_q_decode(comm, &p, &slots[comm.rank()], &batch_kv[comm.rank()])
        })
        .unwrap();
        assert!(outputs[0][0].out.approx_eq(&reference.out, 1e-4).unwrap());
    }

    #[test]
    fn decode_unknown_bid_errors() {
        let p = params(1, 1, 2);
        let slots = vec![Some(DecodeSlot {
            bid: 5,
            q: Tensor::zeros(&[1, 1, 2]),
            pos: 0,
        })];
        let err = run_ring(1, |comm| ring_pass_q_decode(comm, &p, &slots, &[])).unwrap_err();
        // Surfaced through the fabric as a failed rank, preserving the
        // failing rank and the original error's kind and message.
        match err {
            CoreError::Comm(cp_comm::CommError::RankFailed { rank, kind, detail }) => {
                assert_eq!(rank, 0);
                assert_eq!(kind, "bad-request");
                assert!(detail.contains("batch id 5"), "{detail}");
            }
            other => panic!("expected RankFailed, got {other:?}"),
        }
    }

    #[test]
    fn pass_q_mismatched_sequence_count_errors_cleanly() {
        // Rank 1 legitimately sends two query sequences but rank 0 only
        // holds one local KV sequence — a malformed fused batch. The ring
        // must surface a typed error naming the offending origin rank, not
        // panic on an out-of-bounds index.
        let p = params(2, 1, 4);
        let mut rng = DetRng::new(21);
        let mk_seq = |rng: &mut DetRng, t: usize, base: usize| LocalSeq {
            q: rng.tensor(&[t, 2, 4]),
            q_pos: (base..base + t).collect(),
            k: rng.tensor(&[t, 1, 4]),
            v: rng.tensor(&[t, 1, 4]),
            kv_pos: (base..base + t).collect(),
        };
        let locals: Vec<Vec<LocalSeq>> = vec![
            vec![mk_seq(&mut rng, 4, 0)],
            vec![mk_seq(&mut rng, 4, 4), mk_seq(&mut rng, 4, 8)],
        ];
        let err = run_ring(2, |comm| {
            ring_pass_q_prefill(comm, &p, &locals[comm.rank()])
        })
        .unwrap_err();
        match err {
            CoreError::Comm(cp_comm::CommError::RankFailed { kind, detail, .. }) => {
                assert_eq!(kind, "bad-request");
                assert!(detail.contains("rank 1 sent 2 query sequences"), "{detail}");
            }
            other => panic!("expected RankFailed, got {other:?}"),
        }
    }

    #[test]
    fn wrong_variant_from_peer_is_protocol_violation_naming_rank() {
        // Rank 1 violates the pass-KV protocol by forwarding a Q payload.
        // Rank 0 must reject it with a typed error naming rank 1.
        let p = params(1, 1, 2);
        let mut rng = DetRng::new(22);
        let local = LocalSeq {
            q: rng.tensor(&[2, 1, 2]),
            q_pos: vec![0, 1],
            k: rng.tensor(&[2, 1, 2]),
            v: rng.tensor(&[2, 1, 2]),
            kv_pos: vec![0, 1],
        };
        let err = run_ring(2, |comm| {
            if comm.rank() == 0 {
                ring_pass_kv_prefill(comm, &p, std::slice::from_ref(&local)).map(|_| ())
            } else {
                // Misbehaving peer: sends a Q message during the KV pass.
                let bad = RingMsg::Q {
                    origin: 1,
                    seqs: vec![SeqQ {
                        q: local.q.clone(),
                        pos: local.q_pos.clone(),
                    }],
                };
                comm.send_recv(comm.ring_next(), bad, comm.ring_prev())?;
                Ok(())
            }
        })
        .unwrap_err();
        match err {
            CoreError::Comm(cp_comm::CommError::RankFailed { rank, kind, detail }) => {
                assert_eq!(rank, 0);
                assert_eq!(kind, "protocol-violation");
                assert!(detail.contains("rank 1 sent Q, expected Kv"), "{detail}");
            }
            other => panic!("expected RankFailed, got {other:?}"),
        }
    }

    #[test]
    fn misordered_origin_from_peer_is_ring_order_violation() {
        // Rank 1 follows the pass-Q message grammar but lies about the
        // origin of the block it forwards (claims its own block is rank 0's
        // — a dropped or duplicated ring step). Rank 0 must reject it via
        // the rotation invariant, naming the forwarding peer.
        let p = params(1, 1, 2);
        let mut rng = DetRng::new(31);
        let local = LocalSeq {
            q: rng.tensor(&[2, 1, 2]),
            q_pos: vec![0, 1],
            k: rng.tensor(&[2, 1, 2]),
            v: rng.tensor(&[2, 1, 2]),
            kv_pos: vec![0, 1],
        };
        let err = run_ring(2, |comm| {
            if comm.rank() == 0 {
                ring_pass_q_prefill(comm, &p, std::slice::from_ref(&local)).map(|_| ())
            } else {
                let bad = RingMsg::Q {
                    origin: 0, // should be 1: rank 1 holds its own block at step 0
                    seqs: vec![SeqQ {
                        q: local.q.clone(),
                        pos: local.q_pos.clone(),
                    }],
                };
                comm.send_recv(comm.ring_next(), bad, comm.ring_prev())?;
                Ok(())
            }
        })
        .unwrap_err();
        match err {
            CoreError::Comm(cp_comm::CommError::RankFailed { rank, kind, detail }) => {
                assert_eq!(rank, 0);
                assert_eq!(kind, "ring-order-violation");
                assert!(detail.contains("rank 1"), "{detail}");
                assert!(detail.contains("origin 0"), "{detail}");
            }
            other => panic!("expected RankFailed, got {other:?}"),
        }
    }

    #[test]
    fn short_decode_out_from_peer_errors_instead_of_panicking() {
        // Rank 1 returns fewer decode partial slots than rank 0's slot
        // count; the merge must fail with a typed error naming rank 1
        // instead of indexing out of bounds.
        let p = params(1, 1, 2);
        let mut rng = DetRng::new(23);
        let k = rng.tensor(&[2, 1, 2]);
        let v = rng.tensor(&[2, 1, 2]);
        let q = rng.tensor(&[1, 1, 2]);
        let batch_kv = vec![SeqKv {
            k,
            v,
            pos: vec![0, 1],
        }];
        let slots = vec![
            None,
            Some(DecodeSlot {
                bid: 0,
                q: q.clone(),
                pos: 2,
            }),
        ];
        let err = run_ring(2, |comm| {
            if comm.rank() == 0 {
                ring_pass_q_decode(comm, &p, &slots, &batch_kv).map(|_| ())
            } else {
                // Misbehaving peer: follows the ring schedule but returns a
                // truncated All2All payload to rank 0.
                let received = comm.send_recv(
                    comm.ring_next(),
                    RingMsg::DecodeQ {
                        origin: 1,
                        slots: vec![None, None],
                    },
                    comm.ring_prev(),
                )?;
                let _ = received;
                comm.all_to_all(vec![
                    RingMsg::DecodeOut { slots: vec![None] },
                    RingMsg::DecodeOut {
                        slots: vec![None, None],
                    },
                ])?;
                Ok(())
            }
        })
        .unwrap_err();
        match err {
            CoreError::Comm(cp_comm::CommError::RankFailed { rank, kind, detail }) => {
                assert_eq!(rank, 0);
                assert_eq!(kind, "bad-request");
                assert!(
                    detail.contains("rank 1 returned 1 decode partial slots"),
                    "{detail}"
                );
            }
            other => panic!("expected RankFailed, got {other:?}"),
        }
    }

    #[test]
    fn decode_slot_layout_groups_by_owner_and_pads() {
        let (per_rank, width) = decode_slot_layout(&[1, 0, 1, 2], 3).unwrap();
        assert_eq!(per_rank, vec![vec![1], vec![0, 2], vec![3]]);
        assert_eq!(width, 2);

        // A rank with no owned slots still appears (it pads with None).
        let (per_rank, width) = decode_slot_layout(&[0, 0], 2).unwrap();
        assert_eq!(per_rank, vec![vec![0, 1], Vec::new()]);
        assert_eq!(width, 2);

        let (per_rank, width) = decode_slot_layout(&[], 2).unwrap();
        assert_eq!(per_rank, vec![Vec::new(), Vec::new()]);
        assert_eq!(width, 0);

        assert!(decode_slot_layout(&[2], 2).is_err());
        assert!(decode_slot_layout(&[], 0).is_err());
    }
}
