//! Declared communication schedules for the ring algorithms.
//!
//! Each of the paper's ring algorithms (Alg. 2–4) follows a fixed,
//! data-independent communication schedule: which peer every rank talks to
//! at every step, which message variant it carries, and how many wire
//! bytes move. This module *declares* those schedules as [`CommPlan`]
//! data, derived from the same inputs the algorithms run on (byte counts
//! come from [`Wire::wire_bytes`] on skeleton messages, so plan and live
//! traffic agree by construction).
//!
//! The plans feed two static-analysis layers:
//!
//! * the `cp-verify` model checker proves deadlock-freedom, variant
//!   agreement, ring-step ordering, and wire-byte conservation offline;
//! * [`cp_comm::CheckedFabric`] enforces the same plan against live
//!   traffic at runtime ([`run_ring_checked`]), sanitizer-style.
//!
//! To add a schedule for a new collective, declare a builder here that
//! emits one [`cp_comm::RankPlan`] per rank and derives every byte count
//! from the payload type's `Wire` impl — never hand-compute sizes.

use cp_attention::AttentionParams;
use cp_comm::{CheckedFabric, CommOp, CommPlan, Communicator, RankPlan, TrafficReport, Wire};

use crate::error::to_comm_error;
use crate::messages::{DecodeSlot, LocalSeq, RingMsg, SeqKv, SeqQ, ELEM_BYTES};
use crate::CoreError;

/// Which rank's block rank `rank` holds at ring step `step` (0-based), for
/// a `world`-rank ring rotating towards `rank + 1`.
///
/// Step 0 is before any exchange (every rank holds its own block); after
/// each hop the block that originated at `origin` moves one rank forward,
/// so `origin = (rank + world - step) mod world`. The ring algorithms and
/// the plan builders both use this single definition, and pass-Q / decode
/// validate the `origin` tag of every received message against it.
pub fn ring_origin(rank: usize, world: usize, step: usize) -> usize {
    (rank + world - (step % world)) % world
}

/// Indexes into a per-rank table, converting an out-of-range index (an
/// internal bug, since callers derive indices from `ring_origin`) into a
/// typed error instead of a panic.
fn at(v: &[usize], i: usize) -> Result<usize, CoreError> {
    v.get(i).copied().ok_or_else(|| CoreError::Internal {
        detail: format!("rank table of length {} has no entry {i}", v.len()),
    })
}

/// The `N-1` ring `SendRecv` hops every rank performs, with per-hop byte
/// counts looked up by circulating-block origin.
fn ring_hops(
    rank: usize,
    world: usize,
    variant: &'static str,
    bytes_by_origin: &[usize],
) -> Result<Vec<CommOp>, CoreError> {
    let mut ops = Vec::with_capacity(world.saturating_sub(1));
    for j in 0..world.saturating_sub(1) {
        ops.push(CommOp::SendRecv {
            dst: (rank + 1) % world,
            src: (rank + world - 1) % world,
            send_variant: variant,
            recv_variant: variant,
            send_bytes: at(bytes_by_origin, ring_origin(rank, world, j))?,
            recv_bytes: at(bytes_by_origin, ring_origin(rank, world, j + 1))?,
        });
    }
    Ok(ops)
}

fn kv_skeleton(locals: &[LocalSeq]) -> RingMsg {
    // Tensor clones are O(1) Arc handle copies; the skeleton exists only to
    // ask the payload type for its own wire size.
    RingMsg::Kv {
        seqs: locals
            .iter()
            .map(|l| SeqKv {
                k: l.k.clone(),
                v: l.v.clone(),
                pos: l.kv_pos.clone(),
            })
            .collect(),
    }
}

fn q_skeleton(origin: usize, locals: &[LocalSeq]) -> RingMsg {
    RingMsg::Q {
        origin,
        seqs: locals
            .iter()
            .map(|l| SeqQ {
                q: l.q.clone(),
                pos: l.q_pos.clone(),
            })
            .collect(),
    }
}

/// Wire bytes of the `Out` message carrying partial attention results for
/// one origin rank's queries: per sequence, the partial output has the
/// query's shape (`t × n_heads × head_dim`) and the LSE is `t × n_heads`.
fn out_bytes(params: &AttentionParams, locals: &[LocalSeq]) -> usize {
    let h = params.shape.n_heads();
    locals
        .iter()
        .map(|l| (l.q.numel() + l.q_pos.len() * h) * ELEM_BYTES)
        .sum()
}

/// Wire bytes of the `DecodeOut` message for one origin rank's slots:
/// padding (`None`) slots are free, each real slot carries a one-token
/// partial output plus its LSE row.
fn decode_out_bytes(params: &AttentionParams, slots: &[Option<DecodeSlot>]) -> usize {
    let h = params.shape.n_heads();
    slots
        .iter()
        .flatten()
        .map(|s| (s.q.numel() + h) * ELEM_BYTES)
        .sum()
}

/// Declares the pass-KV prefill schedule (Algorithm 2) for all ranks.
///
/// `locals[r]` is rank `r`'s fused-batch input, exactly as passed to
/// [`crate::ring::ring_pass_kv_prefill`]. The schedule is `N-1` ring
/// `SendRecv` hops per rank, each carrying the currently visiting KV block
/// (byte counts follow the block's origin around the ring).
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn pass_kv_plan(locals: &[Vec<LocalSeq>]) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(locals.len())?;
    let kv_bytes: Vec<usize> = locals
        .iter()
        .map(|ls| kv_skeleton(ls).wire_bytes())
        .collect();
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: ring_hops(r, n, "Kv", &kv_bytes)?,
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares the pass-Q prefill schedule (Algorithm 3, with the return hop
/// double-buffered) for all ranks: `N-1` ring `SendRecv` hops carrying the
/// visiting Q block, an eager lone `Send` of each visiting origin's
/// partial outputs the moment its hop computes (posted *before* the next
/// hop is waited on, so return traffic hides under remaining compute), and
/// `N-1` trailing `Recv`s collecting this rank's own partials from every
/// peer in ascending source order. Replaces the single exposed `All2All`
/// of the blocking variant — same permutation, overlapped transport.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn pass_q_plan(
    params: &AttentionParams,
    locals: &[Vec<LocalSeq>],
) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(locals.len())?;
    let q_bytes: Vec<usize> = locals
        .iter()
        .enumerate()
        .map(|(r, ls)| q_skeleton(r, ls).wire_bytes())
        .collect();
    // Partial outputs for origin s's queries have the same size no matter
    // which rank computed them, so every peer returns out_bytes(locals[r])
    // to rank r.
    let outs: Vec<usize> = locals.iter().map(|ls| out_bytes(params, ls)).collect();
    let ranks = (0..n)
        .map(|r| {
            let mut hops = ring_hops(r, n, "Q", &q_bytes)?.into_iter();
            let mut ops = Vec::with_capacity(3 * n.saturating_sub(1));
            for j in 0..n {
                // Loop iteration j first posts hop j+1's isend_irecv...
                if let Some(hop) = hops.next() {
                    ops.push(hop);
                }
                // ...then computes origin_j's partials and returns them
                // eagerly (origin_0 == r: the own partial stays local).
                let origin = ring_origin(r, n, j);
                if origin != r {
                    ops.push(CommOp::Send {
                        dst: origin,
                        variant: "Out",
                        bytes: at(&outs, origin)?,
                    });
                }
            }
            for src in (0..n).filter(|&s| s != r) {
                ops.push(CommOp::Recv {
                    src,
                    variant: "Out",
                    bytes: at(&outs, r)?,
                });
            }
            Ok(RankPlan { rank: r, ops })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares the batched pass-Q decode schedule (Algorithm 4) for all
/// ranks: `N-1` ring `SendRecv` hops carrying the visiting decode slots,
/// then one `All2All` returning per-slot partial outputs.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn decode_plan(
    params: &AttentionParams,
    slots: &[Vec<Option<DecodeSlot>>],
) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(slots.len())?;
    let dq_bytes: Vec<usize> = slots
        .iter()
        .enumerate()
        .map(|(r, s)| {
            RingMsg::DecodeQ {
                origin: r,
                slots: s.clone(),
            }
            .wire_bytes()
        })
        .collect();
    let douts: Vec<usize> = slots.iter().map(|s| decode_out_bytes(params, s)).collect();
    let ranks = (0..n)
        .map(|r| {
            let mut ops = ring_hops(r, n, "DecodeQ", &dq_bytes)?;
            ops.push(CommOp::AllToAll {
                variant: "DecodeOut",
                send_bytes: douts.clone(),
                recv_bytes: vec![at(&douts, r)?; n],
            });
            Ok(RankPlan { rank: r, ops })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares the all-gather pass-KV baseline schedule
/// ([`crate::baseline::all_gather_pass_kv_prefill`], Llama3-training style,
/// §3.5.2) for all ranks: a single `AllGather` per rank broadcasting the
/// rank's own KV shard and collecting every peer's. Byte-for-byte it moves
/// the ring schedule's total volume, but all of it sits un-overlapped
/// before any compute starts.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn all_gather_pass_kv_plan(locals: &[Vec<LocalSeq>]) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(locals.len())?;
    let kv_bytes: Vec<usize> = locals
        .iter()
        .map(|ls| kv_skeleton(ls).wire_bytes())
        .collect();
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: vec![CommOp::AllGather {
                    variant: "Kv",
                    send_bytes: at(&kv_bytes, r)?,
                    recv_bytes: kv_bytes.clone(),
                }],
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares a single-collective `AllReduce` schedule: every rank
/// contributes `bytes[r]` wire bytes of `variant` payload and collects
/// every peer's contribution for the deterministic fold. This is the plan
/// behind cp-model's tensor-parallel column→row pairs (Table 2's AllReduce
/// of `[t, D]` activations); callers derive `bytes` from the payload's
/// `Wire` impl on a skeleton value.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn all_reduce_plan(variant: &'static str, bytes: &[usize]) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(bytes.len())?;
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: vec![CommOp::AllReduce {
                    variant,
                    send_bytes: at(bytes, r)?,
                    recv_bytes: bytes.to_vec(),
                }],
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares a single-collective `AllGather` schedule: every rank
/// broadcasts `bytes[r]` wire bytes of `variant` payload and collects one
/// payload from each peer. Used by cp-model's TP attention to reassemble
/// per-head outputs (§4.2.2).
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn all_gather_plan(variant: &'static str, bytes: &[usize]) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(bytes.len())?;
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: vec![CommOp::AllGather {
                    variant,
                    send_bytes: at(bytes, r)?,
                    recv_bytes: bytes.to_vec(),
                }],
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Repeats one layer's per-rank schedule `layers` times: a multi-layer
/// forward issues exactly one ring schedule per transformer layer inside a
/// single fabric session, so the session plan is the layer plan stacked.
/// Shared by cp-serve's engine and cp-model's full-stack forward plan.
pub fn stacked_plan(layer_plan: CommPlan, layers: usize) -> CommPlan {
    let ranks = layer_plan
        .ranks
        .into_iter()
        .map(|rp| {
            let mut ops = Vec::with_capacity(rp.ops.len() * layers);
            for _ in 0..layers {
                ops.extend(rp.ops.iter().cloned());
            }
            RankPlan { rank: rp.rank, ops }
        })
        .collect();
    CommPlan::from_ranks(ranks)
}

fn nonzero_world(n: usize) -> Result<usize, CoreError> {
    if n == 0 {
        return Err(CoreError::BadRequest {
            reason: "communication plan needs at least one rank".to_string(),
        });
    }
    Ok(n)
}

/// Adapter: runs a per-rank ring body under a [`CheckedFabric`], so every
/// collective the body issues is validated against the fabric's declared
/// plan, mapping `CoreError` in and out of the fabric's `CommError` like
/// [`crate::ring::run_ring`].
///
/// # Errors
///
/// The body's first error in rank order, or
/// [`cp_comm::CommError::PlanViolation`] (wrapped in
/// [`CoreError::Comm`]) when live traffic diverges from the plan.
pub fn run_ring_checked<T, F>(
    fabric: &CheckedFabric,
    body: F,
) -> Result<(Vec<T>, TrafficReport), CoreError>
where
    T: Send,
    F: Fn(&Communicator<RingMsg>) -> Result<T, CoreError> + Sync,
{
    let result =
        fabric.run::<RingMsg, T, _>(|comm| body(comm).map_err(|e| to_comm_error(comm.rank(), e)));
    result.map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{ring_pass_kv_prefill, ring_pass_q_decode, ring_pass_q_prefill};
    use cp_attention::GqaShape;
    use cp_tensor::DetRng;

    fn params(nh: usize, nkv: usize, dh: usize) -> AttentionParams {
        AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap())
    }

    /// One equal-sized sequence per rank; rank r owns tokens
    /// `[r*t, (r+1)*t)` of a causal context.
    fn uniform_locals(n: usize, t: usize, p: &AttentionParams, seed: u64) -> Vec<Vec<LocalSeq>> {
        let shape = p.shape;
        let mut rng = DetRng::new(seed);
        (0..n)
            .map(|r| {
                let pos: Vec<usize> = (r * t..(r + 1) * t).collect();
                vec![LocalSeq {
                    q: rng.tensor(&[t, shape.n_heads(), shape.head_dim()]),
                    q_pos: pos.clone(),
                    k: rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
                    v: rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
                    kv_pos: pos,
                }]
            })
            .collect()
    }

    fn uniform_slots(n: usize, p: &AttentionParams, seed: u64) -> Vec<Vec<Option<DecodeSlot>>> {
        let shape = p.shape;
        let mut rng = DetRng::new(seed);
        (0..n)
            .map(|r| {
                vec![if r % 2 == 0 {
                    Some(DecodeSlot {
                        bid: 0,
                        q: rng.tensor(&[1, shape.n_heads(), shape.head_dim()]),
                        pos: 4 * n,
                    })
                } else {
                    None
                }]
            })
            .collect()
    }

    fn decode_kv(n: usize, p: &AttentionParams, seed: u64) -> Vec<Vec<SeqKv>> {
        let shape = p.shape;
        let mut rng = DetRng::new(seed);
        (0..n)
            .map(|r| {
                let pos: Vec<usize> = (r * 4..(r + 1) * 4).collect();
                vec![SeqKv {
                    k: rng.tensor(&[4, shape.n_kv_heads(), shape.head_dim()]),
                    v: rng.tensor(&[4, shape.n_kv_heads(), shape.head_dim()]),
                    pos,
                }]
            })
            .collect()
    }

    #[test]
    fn ring_origin_rotates_each_block_through_every_rank() {
        for n in [1, 2, 4, 8] {
            for r in 0..n {
                assert_eq!(ring_origin(r, n, 0), r, "step 0 holds own block");
                let visited: std::collections::BTreeSet<usize> =
                    (0..n).map(|j| ring_origin(r, n, j)).collect();
                assert_eq!(visited.len(), n, "rank {r} of {n} must visit all origins");
            }
            // At any step, the n ranks hold n distinct blocks.
            for j in 0..n {
                let held: std::collections::BTreeSet<usize> =
                    (0..n).map(|r| ring_origin(r, n, j)).collect();
                assert_eq!(held.len(), n);
            }
        }
    }

    #[test]
    fn pass_kv_plan_has_n_minus_1_uniform_hops() {
        let p = params(2, 1, 4);
        let locals = uniform_locals(4, 3, &p, 7);
        let plan = pass_kv_plan(&locals).unwrap();
        assert_eq!(plan.world, 4);
        for (r, rp) in plan.ranks.iter().enumerate() {
            assert_eq!(rp.ops.len(), 3);
            for op in &rp.ops {
                match op {
                    CommOp::SendRecv {
                        dst,
                        src,
                        send_variant,
                        recv_variant,
                        send_bytes,
                        recv_bytes,
                    } => {
                        assert_eq!(*dst, (r + 1) % 4);
                        assert_eq!(*src, (r + 3) % 4);
                        assert_eq!(*send_variant, "Kv");
                        assert_eq!(*recv_variant, "Kv");
                        // Uniform shards: every block has the same size
                        // (§3.5.2 padding invariant).
                        assert_eq!(send_bytes, recv_bytes);
                    }
                    other => panic!("expected SendRecv, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn single_rank_plans_are_local_only() {
        let p = params(2, 1, 4);
        let locals = uniform_locals(1, 3, &p, 9);
        let kv = pass_kv_plan(&locals).unwrap();
        assert!(kv.ranks[0].ops.is_empty());
        let q = pass_q_plan(&p, &locals).unwrap();
        // A single rank keeps its own partial locally: no hops, no return
        // sends, no receives.
        assert!(q.ranks[0].ops.is_empty());
        assert_eq!(q.predicted_traffic().messages, 0);
    }

    #[test]
    fn empty_rank_list_is_rejected() {
        let p = params(2, 1, 4);
        assert!(matches!(
            pass_kv_plan(&[]),
            Err(CoreError::BadRequest { .. })
        ));
        assert!(matches!(
            pass_q_plan(&p, &[]),
            Err(CoreError::BadRequest { .. })
        ));
        assert!(matches!(
            decode_plan(&p, &[]),
            Err(CoreError::BadRequest { .. })
        ));
    }

    #[test]
    fn checked_pass_kv_matches_plan_and_predicted_traffic() {
        let p = params(2, 1, 4);
        for n in [2, 3, 4] {
            let locals = uniform_locals(n, 3, &p, n as u64);
            let plan = pass_kv_plan(&locals).unwrap();
            let predicted = plan.predicted_traffic();
            let fabric = CheckedFabric::new(plan);
            let (outs, report) = run_ring_checked(&fabric, |comm| {
                ring_pass_kv_prefill(comm, &p, &locals[comm.rank()])
            })
            .unwrap();
            assert_eq!(outs.len(), n);
            predicted.check_report(&report).unwrap();
        }
    }

    #[test]
    fn checked_pass_q_matches_plan_and_predicted_traffic() {
        let p = params(4, 2, 8);
        for n in [2, 3, 4] {
            let locals = uniform_locals(n, 2, &p, 20 + n as u64);
            let plan = pass_q_plan(&p, &locals).unwrap();
            let predicted = plan.predicted_traffic();
            let fabric = CheckedFabric::new(plan);
            let (_, report) = run_ring_checked(&fabric, |comm| {
                ring_pass_q_prefill(comm, &p, &locals[comm.rank()])
            })
            .unwrap();
            predicted.check_report(&report).unwrap();
        }
    }

    #[test]
    fn checked_decode_matches_plan_and_predicted_traffic() {
        let p = params(2, 1, 4);
        for n in [2, 4] {
            let slots = uniform_slots(n, &p, 40 + n as u64);
            let kv = decode_kv(n, &p, 50 + n as u64);
            let plan = decode_plan(&p, &slots).unwrap();
            let predicted = plan.predicted_traffic();
            let fabric = CheckedFabric::new(plan);
            let (_, report) = run_ring_checked(&fabric, |comm| {
                ring_pass_q_decode(comm, &p, &slots[comm.rank()], &kv[comm.rank()])
            })
            .unwrap();
            predicted.check_report(&report).unwrap();
        }
    }

    #[test]
    fn checked_all_gather_baseline_matches_plan_and_predicted_traffic() {
        let p = params(2, 1, 4);
        for n in [2, 3, 4] {
            let locals = uniform_locals(n, 3, &p, 80 + n as u64);
            let plan = all_gather_pass_kv_plan(&locals).unwrap();
            let predicted = plan.predicted_traffic();
            let fabric = CheckedFabric::new(plan);
            let (outs, report) = run_ring_checked(&fabric, |comm| {
                crate::baseline::all_gather_pass_kv_prefill(comm, &p, &locals[comm.rank()])
            })
            .unwrap();
            assert_eq!(outs.len(), n);
            predicted.check_report(&report).unwrap();
            // Same volume as the ring schedule, in one un-overlapped shot.
            let ring_predicted = pass_kv_plan(&locals).unwrap().predicted_traffic();
            assert_eq!(predicted.all_gather.bytes, ring_predicted.send_recv.bytes);
        }
    }

    #[test]
    fn plan_catches_input_skew_between_declared_and_live() {
        // Declare the plan for one input set but run a rank with a larger
        // shard: the checked fabric must flag the byte mismatch.
        let p = params(2, 1, 4);
        let locals = uniform_locals(2, 3, &p, 60);
        let mut skewed = locals.clone();
        let mut rng = DetRng::new(61);
        skewed[1][0].k = rng.tensor(&[5, 1, 4]);
        skewed[1][0].v = rng.tensor(&[5, 1, 4]);
        skewed[1][0].kv_pos = (0..5).collect();
        let plan = pass_kv_plan(&locals).unwrap();
        let fabric = CheckedFabric::new(plan);
        let err = run_ring_checked(&fabric, |comm| {
            ring_pass_kv_prefill(comm, &p, &skewed[comm.rank()])
        })
        .unwrap_err();
        match err {
            CoreError::Comm(cp_comm::CommError::PlanViolation { rank, detail, .. }) => {
                assert_eq!(rank, 1);
                assert!(detail.contains("wire bytes"), "{detail}");
            }
            other => panic!("expected PlanViolation at rank 1, got {other:?}"),
        }
    }

    #[test]
    fn collective_plans_declare_symmetric_gathers() {
        let bytes = [16usize, 16, 16];
        for (plan, kind) in [
            (all_reduce_plan("payload", &bytes).unwrap(), "all_reduce"),
            (all_gather_plan("payload", &bytes).unwrap(), "all_gather"),
        ] {
            assert_eq!(plan.world, 3);
            for rp in &plan.ranks {
                assert_eq!(rp.ops.len(), 1);
                assert_eq!(rp.ops[0].kind(), kind);
            }
            // Sender-side metering: every rank broadcasts to n-1 peers.
            assert_eq!(
                plan.predicted_traffic().all_reduce.bytes
                    + plan.predicted_traffic().all_gather.bytes,
                16 * 3 * 2
            );
        }
        assert!(matches!(
            all_reduce_plan("payload", &[]),
            Err(CoreError::BadRequest { .. })
        ));
        assert!(matches!(
            all_gather_plan("payload", &[]),
            Err(CoreError::BadRequest { .. })
        ));
    }

    #[test]
    fn checked_all_reduce_matches_live_fabric_traffic() {
        use cp_comm::Wire;
        let payload = vec![0.0f32; 6];
        let bytes = vec![payload.wire_bytes(); 3];
        let plan = all_reduce_plan("payload", &bytes).unwrap();
        let predicted = plan.predicted_traffic();
        let fabric = CheckedFabric::new(plan);
        let (_, report) = fabric
            .run::<Vec<f32>, _, _>(|comm| {
                comm.all_reduce(vec![comm.rank() as f32; 6], |mut acc, m| {
                    for (a, b) in acc.iter_mut().zip(m) {
                        *a += b;
                    }
                    acc
                })
            })
            .unwrap();
        predicted.check_report(&report).unwrap();
    }

    #[test]
    fn stacked_plan_repeats_each_rank_schedule() {
        let p = params(2, 1, 4);
        let locals = uniform_locals(3, 2, &p, 90);
        let layer = pass_kv_plan(&locals).unwrap();
        let stacked = stacked_plan(layer.clone(), 4);
        assert_eq!(stacked.world, layer.world);
        for (sp, lp) in stacked.ranks.iter().zip(&layer.ranks) {
            assert_eq!(sp.ops.len(), 4 * lp.ops.len());
            assert_eq!(&sp.ops[..lp.ops.len()], &lp.ops[..]);
            assert_eq!(&sp.ops[3 * lp.ops.len()..], &lp.ops[..]);
        }
        assert_eq!(
            stacked.predicted_traffic().send_recv.bytes,
            4 * layer.predicted_traffic().send_recv.bytes
        );
    }

    #[test]
    fn skeleton_tensors_are_not_deep_copied() {
        let p = params(2, 1, 4);
        let locals = uniform_locals(2, 3, &p, 70);
        let msg = kv_skeleton(&locals[0]);
        match msg {
            RingMsg::Kv { seqs } => {
                assert!(seqs[0].k.shares_buffer(&locals[0][0].k));
            }
            other => panic!("expected Kv skeleton, got {other:?}"),
        }
    }
}
