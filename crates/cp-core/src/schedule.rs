//! Declared communication schedules for the ring algorithms.
//!
//! Each of the paper's ring algorithms (Alg. 2–4) follows a fixed,
//! data-independent communication schedule: which peer every rank talks to
//! at every step, which message variant it carries, and how many wire
//! bytes move. This module *declares* those schedules as [`CommPlan`]
//! data, derived from the same inputs the algorithms run on (byte counts
//! come from [`Wire::wire_bytes`] on skeleton messages, so plan and live
//! traffic agree by construction).
//!
//! The plans feed two static-analysis layers:
//!
//! * the `cp-verify` model checker proves deadlock-freedom, variant
//!   agreement, ring-step ordering, and wire-byte conservation offline;
//! * [`cp_comm::CheckedFabric`] enforces the same plan against live
//!   traffic at runtime ([`run_ring_checked`]), sanitizer-style.
//!
//! To add a schedule for a new collective, declare a builder here that
//! emits one [`cp_comm::RankPlan`] per rank and derives every byte count
//! from the payload type's `Wire` impl — never hand-compute sizes.

use cp_attention::AttentionParams;
pub use cp_comm::Topology;
use cp_comm::{CheckedFabric, CommOp, CommPlan, Communicator, RankPlan, TrafficReport, Wire};

use crate::error::to_comm_error;
use crate::messages::{
    split_slot_vec, DecodeSlot, LocalSeq, QuantSeqKv, RingMsg, SeqKv, SeqQ, ELEM_BYTES,
};
use crate::CoreError;
use cp_kvcache::QuantizedKv;

/// Which rank's block rank `rank` holds at ring step `step` (0-based), for
/// a `world`-rank ring rotating towards `rank + 1`.
///
/// Step 0 is before any exchange (every rank holds its own block); after
/// each hop the block that originated at `origin` moves one rank forward,
/// so `origin = (rank + world - step) mod world`. The ring algorithms and
/// the plan builders both use this single definition, and pass-Q / decode
/// validate the `origin` tag of every received message against it.
pub fn ring_origin(rank: usize, world: usize, step: usize) -> usize {
    (rank + world - (step % world)) % world
}

/// Reverse-direction twin of [`ring_origin`]: which rank's block rank
/// `rank` holds at step `step` on the ring rotating towards `rank - 1`.
/// The bidirectional schedules circulate the second half of every payload
/// along this path while the first half follows [`ring_origin`].
pub fn ring_origin_rev(rank: usize, world: usize, step: usize) -> usize {
    (rank + (step % world)) % world
}

/// Forward hierarchical origin: which rank's block `rank` holds at `step`
/// on the topology-aware ring. Writing `rank = (node, lane)` and `step =
/// m·g + k` (with `g = ranks_per_node`), the visiting block's origin is
/// `((node - m) mod N, (lane - (m·(g-1) + k)) mod g)`: the schedule walks
/// all `g` lanes of a node between consecutive cross-node exchanges, so
/// only every `g`-th hop crosses nodes ([`hier_hop_is_cross`]).
fn hier_origin(topo: Topology, rank: usize, step: usize) -> usize {
    let (nn, g) = (topo.nodes.max(1), topo.ranks_per_node.max(1));
    let w = nn * g;
    let step = step % w;
    let (m, k) = (step / g, step % g);
    let (node, lane) = (rank / g, rank % g);
    let o_node = (node + nn - m) % nn;
    let o_lane = (lane + g - (m * (g - 1) + k) % g) % g;
    o_node * g + o_lane
}

/// Reverse hierarchical origin — the mirror image of [`hier_origin`]:
/// `((node + m) mod N, (lane + m·(g-1) + k) mod g)`.
fn hier_origin_rev(topo: Topology, rank: usize, step: usize) -> usize {
    let (nn, g) = (topo.nodes.max(1), topo.ranks_per_node.max(1));
    let w = nn * g;
    let step = step % w;
    let (m, k) = (step / g, step % g);
    let (node, lane) = (rank / g, rank % g);
    let o_node = (node + m) % nn;
    let o_lane = (lane + (m * (g - 1) + k) % g) % g;
    o_node * g + o_lane
}

/// Whether hop `hop` of the hierarchical schedule crosses nodes. Hop `j`
/// delivers step `j+1`'s block, so the cross-node exchange lands on every
/// `g`-th hop (`(j+1) % g == 0`); all other hops stay on intra-node
/// links. With `g = 1` every hop crosses (the flat ring over nodes);
/// with one node no hop ever satisfies the predicate within `W-1` hops.
fn hier_hop_is_cross(topo: Topology, hop: usize) -> bool {
    (hop + 1).is_multiple_of(topo.ranks_per_node.max(1))
}

/// Forward-direction send peer at hop `hop` of the hierarchical ring:
/// next lane on the same node for intra hops, the same lane of the next
/// node for cross hops.
fn hier_fwd_send_peer(topo: Topology, rank: usize, hop: usize) -> usize {
    let (nn, g) = (topo.nodes.max(1), topo.ranks_per_node.max(1));
    let (node, lane) = (rank / g, rank % g);
    if hier_hop_is_cross(topo, hop) {
        ((node + 1) % nn) * g + lane
    } else {
        node * g + (lane + 1) % g
    }
}

/// Forward-direction receive peer at hop `hop` (mirror of
/// [`hier_fwd_send_peer`]).
fn hier_fwd_recv_peer(topo: Topology, rank: usize, hop: usize) -> usize {
    let (nn, g) = (topo.nodes.max(1), topo.ranks_per_node.max(1));
    let (node, lane) = (rank / g, rank % g);
    if hier_hop_is_cross(topo, hop) {
        ((node + nn - 1) % nn) * g + lane
    } else {
        node * g + (lane + g - 1) % g
    }
}

/// One direction of a ring route: who each rank sends to and receives
/// from at every hop, and which origin's block it holds at every step.
///
/// The flat paths are the paper's single ring over all `W` ranks; the
/// hierarchical paths (TASP-style, arXiv:2509.26541) rotate through all
/// ranks of a node before each cross-node exchange, so of the `W-1` hops
/// only `N-1` touch slow cross-node links (vs. all `W-1` for the flat
/// ring laid out across nodes). Every path is a Hamiltonian cycle with
/// the same lockstep-FIFO property as the flat ring — `origin_at(r, j+1)
/// == origin_at(recv_peer(r, j), j)` — so one generic double-buffered
/// loop drives all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingPath {
    /// Flat ring rotating towards `rank + 1` ([`ring_origin`]).
    FlatFwd {
        /// Number of ranks.
        world: usize,
    },
    /// Flat ring rotating towards `rank - 1` ([`ring_origin_rev`]).
    FlatRev {
        /// Number of ranks.
        world: usize,
    },
    /// Hierarchical ring: intra-node rotation with one cross-node
    /// exchange every `ranks_per_node` hops.
    HierFwd {
        /// Node layout; `topo.world()` ranks.
        topo: Topology,
    },
    /// Mirror image of [`RingPath::HierFwd`]: send/recv peers swapped,
    /// origins rotating the other way.
    HierRev {
        /// Node layout; `topo.world()` ranks.
        topo: Topology,
    },
}

impl RingPath {
    /// Number of ranks on the path.
    pub fn world(&self) -> usize {
        match self {
            RingPath::FlatFwd { world } | RingPath::FlatRev { world } => *world,
            RingPath::HierFwd { topo } | RingPath::HierRev { topo } => topo.world(),
        }
    }

    /// Which rank's block `rank` holds at `step` along this path.
    pub fn origin_at(&self, rank: usize, step: usize) -> usize {
        match self {
            RingPath::FlatFwd { world } => ring_origin(rank, *world, step),
            RingPath::FlatRev { world } => ring_origin_rev(rank, *world, step),
            RingPath::HierFwd { topo } => hier_origin(*topo, rank, step),
            RingPath::HierRev { topo } => hier_origin_rev(*topo, rank, step),
        }
    }

    /// The peer `rank` sends to at hop `hop` (hop `j` delivers step
    /// `j+1`'s block).
    pub fn send_peer(&self, rank: usize, hop: usize) -> usize {
        match self {
            RingPath::FlatFwd { world } => (rank + 1) % world,
            RingPath::FlatRev { world } => (rank + world - 1) % world,
            RingPath::HierFwd { topo } => hier_fwd_send_peer(*topo, rank, hop),
            // The reverse path retraces the forward cycle backwards, so
            // its send peer is the forward receive peer (and vice versa).
            RingPath::HierRev { topo } => hier_fwd_recv_peer(*topo, rank, hop),
        }
    }

    /// The peer `rank` receives from at hop `hop`.
    pub fn recv_peer(&self, rank: usize, hop: usize) -> usize {
        match self {
            RingPath::FlatFwd { world } => (rank + world - 1) % world,
            RingPath::FlatRev { world } => (rank + 1) % world,
            RingPath::HierFwd { topo } => hier_fwd_recv_peer(*topo, rank, hop),
            RingPath::HierRev { topo } => hier_fwd_send_peer(*topo, rank, hop),
        }
    }

    /// The step at which `host` holds `origin`'s block — the inverse of
    /// [`RingPath::origin_at`] in its step argument. Used to order the
    /// bidirectional pass-Q return messages deterministically.
    pub fn step_of(&self, host: usize, origin: usize) -> Option<usize> {
        (0..self.world()).find(|&s| self.origin_at(host, s) == origin)
    }
}

/// Physical arrangement of the ring, selecting between the flat schedules
/// and the topology-aware hierarchical ones. The default (`Flat`) is the
/// paper's single ring and preserves all existing behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingLayout {
    /// One flat ring over all ranks.
    #[default]
    Flat,
    /// Hierarchical ring over the given node layout.
    Hier(Topology),
}

impl RingLayout {
    /// The forward path over `world` ranks.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadRequest`] when a hierarchical topology's rank count
    /// disagrees with `world`.
    pub fn fwd(&self, world: usize) -> Result<RingPath, CoreError> {
        match self {
            RingLayout::Flat => Ok(RingPath::FlatFwd { world }),
            RingLayout::Hier(topo) => {
                check_topology(*topo, world)?;
                Ok(RingPath::HierFwd { topo: *topo })
            }
        }
    }

    /// The reverse path over `world` ranks.
    ///
    /// # Errors
    ///
    /// As [`RingLayout::fwd`].
    pub fn rev(&self, world: usize) -> Result<RingPath, CoreError> {
        match self {
            RingLayout::Flat => Ok(RingPath::FlatRev { world }),
            RingLayout::Hier(topo) => {
                check_topology(*topo, world)?;
                Ok(RingPath::HierRev { topo: *topo })
            }
        }
    }
}

fn check_topology(topo: Topology, world: usize) -> Result<(), CoreError> {
    if topo.nodes == 0 || topo.ranks_per_node == 0 || topo.world() != world {
        return Err(CoreError::BadRequest {
            reason: format!(
                "topology {}x{} does not cover a {world}-rank ring",
                topo.nodes, topo.ranks_per_node
            ),
        });
    }
    Ok(())
}

/// Indexes into a per-rank table, converting an out-of-range index (an
/// internal bug, since callers derive indices from `ring_origin`) into a
/// typed error instead of a panic.
fn at(v: &[usize], i: usize) -> Result<usize, CoreError> {
    v.get(i).copied().ok_or_else(|| CoreError::Internal {
        detail: format!("rank table of length {} has no entry {i}", v.len()),
    })
}

/// The `W-1` ring `SendRecv` hops rank `rank` performs along `path`, with
/// per-hop byte counts looked up by circulating-block origin. Generalizes
/// the flat forward ring to any [`RingPath`]; [`ring_hops`] is the flat
/// forward instantiation.
fn path_hops(
    rank: usize,
    path: RingPath,
    variant: &'static str,
    bytes_by_origin: &[usize],
) -> Result<Vec<CommOp>, CoreError> {
    let world = path.world();
    let mut ops = Vec::with_capacity(world.saturating_sub(1));
    for j in 0..world.saturating_sub(1) {
        ops.push(CommOp::SendRecv {
            dst: path.send_peer(rank, j),
            src: path.recv_peer(rank, j),
            send_variant: variant,
            recv_variant: variant,
            send_bytes: at(bytes_by_origin, path.origin_at(rank, j))?,
            recv_bytes: at(bytes_by_origin, path.origin_at(rank, j + 1))?,
        });
    }
    Ok(ops)
}

/// The `N-1` ring `SendRecv` hops every rank performs, with per-hop byte
/// counts looked up by circulating-block origin.
fn ring_hops(
    rank: usize,
    world: usize,
    variant: &'static str,
    bytes_by_origin: &[usize],
) -> Result<Vec<CommOp>, CoreError> {
    path_hops(rank, RingPath::FlatFwd { world }, variant, bytes_by_origin)
}

/// Marks every destination rank that receives ring-hop posts from `rank`
/// along any of `paths`. The fabric's channels are FIFO per directed rank
/// pair, so an eager pass-Q `Out` return posted to such a destination
/// before the final round could land *ahead of* a later hop payload on
/// the same channel and be claimed by the receiver's hop `irecv`. The
/// loops therefore stash returns to these destinations and flush them at
/// the top of the final round — after the last hop post, before the final
/// round's computes — and the plan builders mirror that op order exactly.
/// (On the flat forward ring the only hop destination receives its return
/// in the final round anyway, so this rule leaves the classic pass-Q
/// schedule untouched.)
pub(crate) fn hop_channels(rank: usize, paths: &[RingPath]) -> Vec<bool> {
    let world = paths.first().map_or(0, RingPath::world);
    let mut is_hop = vec![false; world];
    for path in paths {
        for j in 0..world.saturating_sub(1) {
            if let Some(slot) = is_hop.get_mut(path.send_peer(rank, j)) {
                *slot = true;
            }
        }
    }
    is_hop
}

/// Whether a pass-Q return computed at round `j` of `world` must be
/// deferred to the final-round flush point (see [`hop_channels`]).
pub(crate) fn defer_return(is_hop_dst: &[bool], dst: usize, j: usize, world: usize) -> bool {
    j + 1 < world && is_hop_dst.get(dst).copied().unwrap_or(false)
}

/// Interleaves the two directions' hop lists `[f0, r0, f1, r1, ...]` —
/// the exact order the bidirectional loops post their `isend_irecv`
/// pairs (forward first within each round).
fn interleave_hops(fwd: Vec<CommOp>, rev: Vec<CommOp>) -> Vec<CommOp> {
    let mut ops = Vec::with_capacity(fwd.len() + rev.len());
    let mut r = rev.into_iter();
    for f in fwd {
        ops.push(f);
        if let Some(op) = r.next() {
            ops.push(op);
        }
    }
    ops.extend(r);
    ops
}

fn kv_skeleton(locals: &[LocalSeq]) -> RingMsg {
    // Tensor clones are O(1) Arc handle copies; the skeleton exists only to
    // ask the payload type for its own wire size.
    RingMsg::Kv {
        seqs: locals
            .iter()
            .map(|l| SeqKv {
                k: l.k.clone(),
                v: l.v.clone(),
                pos: l.kv_pos.clone(),
            })
            .collect(),
    }
}

fn q_skeleton(origin: usize, locals: &[LocalSeq]) -> RingMsg {
    RingMsg::Q {
        origin,
        seqs: locals
            .iter()
            .map(|l| SeqQ {
                q: l.q.clone(),
                pos: l.q_pos.clone(),
            })
            .collect(),
    }
}

/// Wire bytes of the `Out` message carrying partial attention results for
/// one origin rank's queries: per sequence, the partial output has the
/// query's shape (`t × n_heads × head_dim`) and the LSE is `t × n_heads`.
fn out_bytes(params: &AttentionParams, locals: &[LocalSeq]) -> usize {
    let h = params.shape.n_heads();
    locals
        .iter()
        .map(|l| (l.q.numel() + l.q_pos.len() * h) * ELEM_BYTES)
        .sum()
}

/// Wire bytes of the `DecodeOut` message for one origin rank's slots:
/// padding (`None`) slots are free, each real slot carries a one-token
/// partial output plus its LSE row.
fn decode_out_bytes(params: &AttentionParams, slots: &[Option<DecodeSlot>]) -> usize {
    let h = params.shape.n_heads();
    slots
        .iter()
        .flatten()
        .map(|s| (s.q.numel() + h) * ELEM_BYTES)
        .sum()
}

/// Declares the pass-KV prefill schedule (Algorithm 2) for all ranks.
///
/// `locals[r]` is rank `r`'s fused-batch input, exactly as passed to
/// [`crate::ring::ring_pass_kv_prefill`]. The schedule is `N-1` ring
/// `SendRecv` hops per rank, each carrying the currently visiting KV block
/// (byte counts follow the block's origin around the ring).
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn pass_kv_plan(locals: &[Vec<LocalSeq>]) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(locals.len())?;
    let kv_bytes: Vec<usize> = locals
        .iter()
        .map(|ls| kv_skeleton(ls).wire_bytes())
        .collect();
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: ring_hops(r, n, "Kv", &kv_bytes)?,
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares the pass-Q prefill schedule (Algorithm 3, with the return hop
/// double-buffered) for all ranks: `N-1` ring `SendRecv` hops carrying the
/// visiting Q block, an eager lone `Send` of each visiting origin's
/// partial outputs the moment its hop computes (posted *before* the next
/// hop is waited on, so return traffic hides under remaining compute), and
/// `N-1` trailing `Recv`s collecting this rank's own partials from every
/// peer in ascending source order. Replaces the single exposed `All2All`
/// of the blocking variant — same permutation, overlapped transport.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn pass_q_plan(
    params: &AttentionParams,
    locals: &[Vec<LocalSeq>],
) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(locals.len())?;
    let q_bytes: Vec<usize> = locals
        .iter()
        .enumerate()
        .map(|(r, ls)| q_skeleton(r, ls).wire_bytes())
        .collect();
    // Partial outputs for origin s's queries have the same size no matter
    // which rank computed them, so every peer returns out_bytes(locals[r])
    // to rank r.
    let outs: Vec<usize> = locals.iter().map(|ls| out_bytes(params, ls)).collect();
    let ranks = (0..n)
        .map(|r| {
            let mut hops = ring_hops(r, n, "Q", &q_bytes)?.into_iter();
            let mut ops = Vec::with_capacity(3 * n.saturating_sub(1));
            for j in 0..n {
                // Loop iteration j first posts hop j+1's isend_irecv...
                if let Some(hop) = hops.next() {
                    ops.push(hop);
                }
                // ...then computes origin_j's partials and returns them
                // eagerly (origin_0 == r: the own partial stays local).
                let origin = ring_origin(r, n, j);
                if origin != r {
                    ops.push(CommOp::Send {
                        dst: origin,
                        variant: "Out",
                        bytes: at(&outs, origin)?,
                    });
                }
            }
            for src in (0..n).filter(|&s| s != r) {
                ops.push(CommOp::Recv {
                    src,
                    variant: "Out",
                    bytes: at(&outs, r)?,
                });
            }
            Ok(RankPlan { rank: r, ops })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares the batched pass-Q decode schedule (Algorithm 4) for all
/// ranks: `N-1` ring `SendRecv` hops carrying the visiting decode slots,
/// then one `All2All` returning per-slot partial outputs.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn decode_plan(
    params: &AttentionParams,
    slots: &[Vec<Option<DecodeSlot>>],
) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(slots.len())?;
    let (dq_bytes, douts) = decode_byte_tables(params, slots);
    let ranks = (0..n)
        .map(|r| {
            let mut ops = ring_hops(r, n, "DecodeQ", &dq_bytes)?;
            ops.push(CommOp::AllToAll {
                variant: "DecodeOut",
                send_bytes: douts.clone(),
                recv_bytes: vec![at(&douts, r)?; n],
            });
            Ok(RankPlan { rank: r, ops })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Per-rank `DecodeQ` wire bytes and per-origin `DecodeOut` bytes for one
/// decode step — the byte tables both decode-collective plans share.
fn decode_byte_tables(
    params: &AttentionParams,
    slots: &[Vec<Option<DecodeSlot>>],
) -> (Vec<usize>, Vec<usize>) {
    let dq_bytes: Vec<usize> = slots
        .iter()
        .enumerate()
        .map(|(r, s)| {
            RingMsg::DecodeQ {
                origin: r,
                slots: s.clone(),
            }
            .wire_bytes()
        })
        .collect();
    let douts: Vec<usize> = slots.iter().map(|s| decode_out_bytes(params, s)).collect();
    (dq_bytes, douts)
}

/// Declares the Helix decode schedule
/// ([`crate::ring::helix_decode_kv`]) for all ranks: one `AllGather`
/// replicating every rank's decode slots, then the same `All2All` of
/// partial outputs as [`decode_plan`] — the `N-1` serialized ring hops
/// collapse into a single collective carrying identical total bytes.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn helix_decode_plan(
    params: &AttentionParams,
    slots: &[Vec<Option<DecodeSlot>>],
) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(slots.len())?;
    let (dq_bytes, douts) = decode_byte_tables(params, slots);
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: vec![
                    CommOp::AllGather {
                        variant: "DecodeQ",
                        send_bytes: at(&dq_bytes, r)?,
                        recv_bytes: dq_bytes.clone(),
                    },
                    CommOp::AllToAll {
                        variant: "DecodeOut",
                        send_bytes: douts.clone(),
                        recv_bytes: vec![at(&douts, r)?; n],
                    },
                ],
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares the TP-only decode schedule
/// ([`crate::ring::tp_only_decode_kv`]) for all ranks: one `AllGather`
/// moving every rank's per-sequence KV shards (`kv_bytes[r]` wire bytes
/// from rank `r`), after which each slot's owner attends the full context
/// locally — no output exchange. At `world == 1` the loop issues no
/// collective at all, so the single rank's plan is empty.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn tp_only_decode_plan(kv_bytes: &[usize]) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(kv_bytes.len())?;
    if n == 1 {
        return Ok(CommPlan::from_ranks(vec![RankPlan {
            rank: 0,
            ops: Vec::new(),
        }]));
    }
    all_gather_plan("Kv", kv_bytes)
}

/// Declares one transformer layer of cp-serve's Helix decode: the
/// attention collectives of [`helix_decode_plan`] followed by the TP
/// reshard — an `AllGather` replicating each owner's merged attention
/// rows (`Act` payloads of `real_slots × D` f32 rows) and the two
/// row-parallel `AllReduce`s (out projection, then the FFN down
/// projection) each summing a full `[batch, D]` partial per rank. Stack
/// with [`stacked_plan`] for a whole forward.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn helix_layer_plan(
    params: &AttentionParams,
    slots: &[Vec<Option<DecodeSlot>>],
    model_dim: usize,
) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(slots.len())?;
    let (dq_bytes, douts) = decode_byte_tables(params, slots);
    let act_bytes: Vec<usize> = slots
        .iter()
        .map(|s| s.iter().flatten().count() * model_dim * ELEM_BYTES)
        .collect();
    let batch_rows: usize = act_bytes.iter().sum();
    let reduce_bytes = vec![batch_rows; n];
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: vec![
                    CommOp::AllGather {
                        variant: "DecodeQ",
                        send_bytes: at(&dq_bytes, r)?,
                        recv_bytes: dq_bytes.clone(),
                    },
                    CommOp::AllToAll {
                        variant: "DecodeOut",
                        send_bytes: douts.clone(),
                        recv_bytes: vec![at(&douts, r)?; n],
                    },
                    CommOp::AllGather {
                        variant: "Act",
                        send_bytes: at(&act_bytes, r)?,
                        recv_bytes: act_bytes.clone(),
                    },
                    CommOp::AllReduce {
                        variant: "Act",
                        send_bytes: batch_rows,
                        recv_bytes: reduce_bytes.clone(),
                    },
                    CommOp::AllReduce {
                        variant: "Act",
                        send_bytes: batch_rows,
                        recv_bytes: reduce_bytes.clone(),
                    },
                ],
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Per-rank wire bytes of the two bidirectional KV halves: element `r` is
/// `(A, B)` for rank `r`'s block split at the per-sequence token midpoint.
fn kv_half_bytes(locals: &[Vec<LocalSeq>]) -> Result<(Vec<usize>, Vec<usize>), CoreError> {
    let mut a = Vec::with_capacity(locals.len());
    let mut b = Vec::with_capacity(locals.len());
    for ls in locals {
        let (mut ab, mut bb) = (0usize, 0usize);
        for l in ls {
            let kv = SeqKv {
                k: l.k.clone(),
                v: l.v.clone(),
                pos: l.kv_pos.clone(),
            };
            let (ha, hb) = kv.split_halves()?;
            ab += RingMsg::Kv { seqs: vec![ha] }.wire_bytes();
            bb += RingMsg::Kv { seqs: vec![hb] }.wire_bytes();
        }
        a.push(ab);
        b.push(bb);
    }
    Ok((a, b))
}

/// Per-rank wire bytes of the two bidirectional Q halves, split at the
/// per-sequence query-row midpoint.
fn q_half_bytes(locals: &[Vec<LocalSeq>]) -> Result<(Vec<usize>, Vec<usize>), CoreError> {
    let mut a = Vec::with_capacity(locals.len());
    let mut b = Vec::with_capacity(locals.len());
    for ls in locals {
        let (mut ab, mut bb) = (0usize, 0usize);
        for l in ls {
            let sq = SeqQ {
                q: l.q.clone(),
                pos: l.q_pos.clone(),
            };
            let (ha, hb) = sq.split_halves()?;
            ab += ha.q.numel() * ELEM_BYTES;
            bb += hb.q.numel() * ELEM_BYTES;
        }
        a.push(ab);
        b.push(bb);
    }
    Ok((a, b))
}

/// Per-rank wire bytes of the `Out` messages carrying partials for each
/// bidirectional Q half of rank `r`'s queries.
fn out_half_bytes(
    params: &AttentionParams,
    locals: &[Vec<LocalSeq>],
) -> Result<(Vec<usize>, Vec<usize>), CoreError> {
    let h = params.shape.n_heads();
    let mut a = Vec::with_capacity(locals.len());
    let mut b = Vec::with_capacity(locals.len());
    for ls in locals {
        let (mut ab, mut bb) = (0usize, 0usize);
        for l in ls {
            let sq = SeqQ {
                q: l.q.clone(),
                pos: l.q_pos.clone(),
            };
            let (ha, hb) = sq.split_halves()?;
            ab += (ha.q.numel() + ha.pos.len() * h) * ELEM_BYTES;
            bb += (hb.q.numel() + hb.pos.len() * h) * ELEM_BYTES;
        }
        a.push(ab);
        b.push(bb);
    }
    Ok((a, b))
}

/// Declares the unidirectional pass-KV prefill schedule over an arbitrary
/// [`RingLayout`] — [`pass_kv_plan`] is the flat instantiation, the
/// hierarchical one keeps `W-N` of the `W-1` hops on intra-node links.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list or a topology that
/// does not cover the rank count.
pub fn pass_kv_plan_on(
    locals: &[Vec<LocalSeq>],
    layout: RingLayout,
) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(locals.len())?;
    let fwd = layout.fwd(n)?;
    let kv_bytes: Vec<usize> = locals
        .iter()
        .map(|ls| kv_skeleton(ls).wire_bytes())
        .collect();
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: path_hops(r, fwd, "Kv", &kv_bytes)?,
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares the bidirectional pass-KV prefill schedule (TokenRing-style,
/// arXiv:2412.20501) over a [`RingLayout`]: each rank's KV block splits
/// at the token midpoint, the A half circulating forward and the B half
/// in reverse simultaneously, so per-link bytes per step halve. Each
/// round posts the forward hop then the reverse hop, exactly as
/// [`crate::ring::ring_pass_kv_prefill_bidi`] issues them.
///
/// # Errors
///
/// As [`pass_kv_plan_on`].
pub fn pass_kv_bidi_plan(
    locals: &[Vec<LocalSeq>],
    layout: RingLayout,
) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(locals.len())?;
    let fwd = layout.fwd(n)?;
    let rev = layout.rev(n)?;
    let (a_bytes, b_bytes) = kv_half_bytes(locals)?;
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: interleave_hops(
                    path_hops(r, fwd, "Kv", &a_bytes)?,
                    path_hops(r, rev, "Kv", &b_bytes)?,
                ),
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares the depth-2 pipelined pass-KV prefill schedule
/// ([`crate::ring::ring_pass_kv_prefill_chunked`]): each hop's payload
/// splits into two chunks that both travel forward as separate messages,
/// and each chunk is forwarded the moment it arrives — before its sibling
/// lands (cut-through). On a serialized link this roughly halves the
/// store-and-forward pipeline latency in bandwidth-bound regimes.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn pass_kv_chunked_plan(locals: &[Vec<LocalSeq>]) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(locals.len())?;
    let (h1_bytes, h2_bytes) = kv_half_bytes(locals)?;
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: interleave_hops(
                    ring_hops(r, n, "Kv", &h1_bytes)?,
                    ring_hops(r, n, "Kv", &h2_bytes)?,
                ),
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// A zero-code [`RingMsg::KvQuant`] skeleton with the byte geometry of
/// `locals`' KV shards: `l · n_kv · d` one-byte codes plus `l · n_kv`
/// f32 scales per tensor. Built from parts (no quantization arithmetic) —
/// it exists only to ask the payload type for its own wire size.
fn kv_quant_skeleton(locals: &[LocalSeq]) -> Result<RingMsg, CoreError> {
    let seqs = locals
        .iter()
        .map(|l| {
            let shape = l.k.shape();
            let (t, h, d) = (
                shape.first().copied().unwrap_or(0),
                shape.get(1).copied().unwrap_or(0),
                shape.get(2).copied().unwrap_or(0),
            );
            let mk = || {
                QuantizedKv::from_parts(vec![0i8; t * h * d], vec![1.0f32; t * h], t, h, d)
                    .map_err(CoreError::from)
            };
            Ok(QuantSeqKv {
                k: mk()?,
                v: mk()?,
                pos: l.kv_pos.clone(),
            })
        })
        .collect::<Result<Vec<_>, CoreError>>()?;
    Ok(RingMsg::KvQuant { seqs })
}

/// Per-rank wire bytes of the two bidirectional compressed KV halves —
/// the quantized analogue of [`kv_half_bytes`], derived from the same
/// `split_halves` the loop itself uses.
fn kv_quant_half_bytes(locals: &[Vec<LocalSeq>]) -> Result<(Vec<usize>, Vec<usize>), CoreError> {
    let mut a = Vec::with_capacity(locals.len());
    let mut b = Vec::with_capacity(locals.len());
    for ls in locals {
        let (mut ab, mut bb) = (0usize, 0usize);
        let skeleton = kv_quant_skeleton(ls)?;
        if let RingMsg::KvQuant { seqs } = skeleton {
            for q in seqs {
                let (ha, hb) = q.split_halves()?;
                ab += RingMsg::KvQuant { seqs: vec![ha] }.wire_bytes();
                bb += RingMsg::KvQuant { seqs: vec![hb] }.wire_bytes();
            }
        }
        a.push(ab);
        b.push(bb);
    }
    Ok((a, b))
}

/// Declares the compressed unidirectional pass-KV prefill schedule
/// ([`crate::ring::ring_pass_kv_prefill_quant_on`]) over a
/// [`RingLayout`]: hop-for-hop the schedule of [`pass_kv_plan_on`], each
/// hop carrying the INT8 `KvQuant` payload — `2·l·n_kv·(d + 4)` bytes per
/// block instead of the f32 `2·l·n_kv·d·4`.
///
/// # Errors
///
/// As [`pass_kv_plan_on`].
pub fn pass_kv_quant_plan_on(
    locals: &[Vec<LocalSeq>],
    layout: RingLayout,
) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(locals.len())?;
    let fwd = layout.fwd(n)?;
    let kv_bytes: Vec<usize> = locals
        .iter()
        .map(|ls| kv_quant_skeleton(ls).map(|m| m.wire_bytes()))
        .collect::<Result<_, CoreError>>()?;
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: path_hops(r, fwd, "KvQuant", &kv_bytes)?,
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares the compressed bidirectional pass-KV prefill schedule
/// ([`crate::ring::ring_pass_kv_prefill_quant_bidi`]) over a
/// [`RingLayout`]: the hop pattern of [`pass_kv_bidi_plan`] with INT8
/// half payloads in both directions.
///
/// # Errors
///
/// As [`pass_kv_plan_on`].
pub fn pass_kv_quant_bidi_plan(
    locals: &[Vec<LocalSeq>],
    layout: RingLayout,
) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(locals.len())?;
    let fwd = layout.fwd(n)?;
    let rev = layout.rev(n)?;
    let (a_bytes, b_bytes) = kv_quant_half_bytes(locals)?;
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: interleave_hops(
                    path_hops(r, fwd, "KvQuant", &a_bytes)?,
                    path_hops(r, rev, "KvQuant", &b_bytes)?,
                ),
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares the unidirectional pass-Q prefill schedule over an arbitrary
/// [`RingLayout`] — [`pass_q_plan`] is the flat instantiation. Eager
/// `Out` returns target the layout's visiting origin at each round.
///
/// # Errors
///
/// As [`pass_kv_plan_on`].
pub fn pass_q_plan_on(
    params: &AttentionParams,
    locals: &[Vec<LocalSeq>],
    layout: RingLayout,
) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(locals.len())?;
    let fwd = layout.fwd(n)?;
    let q_bytes: Vec<usize> = locals
        .iter()
        .enumerate()
        .map(|(r, ls)| q_skeleton(r, ls).wire_bytes())
        .collect();
    let outs: Vec<usize> = locals.iter().map(|ls| out_bytes(params, ls)).collect();
    let ranks = (0..n)
        .map(|r| {
            let is_hop_dst = hop_channels(r, &[fwd]);
            let mut hops = path_hops(r, fwd, "Q", &q_bytes)?.into_iter();
            let mut ops = Vec::with_capacity(3 * n.saturating_sub(1));
            let mut deferred: Vec<CommOp> = Vec::new();
            for j in 0..n {
                if j + 1 == n {
                    // Flush point: returns stashed to keep hop channels
                    // clean post here, after the last hop, in compute
                    // order (see `hop_channels`).
                    ops.append(&mut deferred);
                }
                if let Some(hop) = hops.next() {
                    ops.push(hop);
                }
                let origin = fwd.origin_at(r, j);
                if origin != r {
                    let send = CommOp::Send {
                        dst: origin,
                        variant: "Out",
                        bytes: at(&outs, origin)?,
                    };
                    if defer_return(&is_hop_dst, origin, j, n) {
                        deferred.push(send);
                    } else {
                        ops.push(send);
                    }
                }
            }
            for src in (0..n).filter(|&s| s != r) {
                ops.push(CommOp::Recv {
                    src,
                    variant: "Out",
                    bytes: at(&outs, r)?,
                });
            }
            Ok(RankPlan { rank: r, ops })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares the bidirectional pass-Q prefill schedule over a
/// [`RingLayout`]: each rank's query rows split at the midpoint, the A
/// half circulating forward and the B half in reverse. Every round posts
/// the forward hop, the reverse hop, then the two eager `Out` returns (A
/// first). The trailing collection receives **two** `Out` messages per
/// peer; their order on each FIFO channel is fixed by which half the
/// peer hosted first (A before B on a tie, matching the loop's
/// post order within a round) — exactly how
/// [`crate::ring::ring_pass_q_prefill_bidi_kv`] disambiguates them.
///
/// # Errors
///
/// As [`pass_kv_plan_on`].
pub fn pass_q_bidi_plan(
    params: &AttentionParams,
    locals: &[Vec<LocalSeq>],
    layout: RingLayout,
) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(locals.len())?;
    let fwd = layout.fwd(n)?;
    let rev = layout.rev(n)?;
    let (qa_bytes, qb_bytes) = q_half_bytes(locals)?;
    let (oa_bytes, ob_bytes) = out_half_bytes(params, locals)?;
    let step_err = |host: usize, origin: usize| CoreError::Internal {
        detail: format!("ring path never routes rank {origin}'s block through rank {host}"),
    };
    let ranks = (0..n)
        .map(|r| {
            let is_hop_dst = hop_channels(r, &[fwd, rev]);
            let mut f_hops = path_hops(r, fwd, "Q", &qa_bytes)?.into_iter();
            let mut r_hops = path_hops(r, rev, "Q", &qb_bytes)?.into_iter();
            let mut ops = Vec::with_capacity(6 * n.saturating_sub(1));
            let mut deferred: Vec<CommOp> = Vec::new();
            for j in 0..n {
                if j + 1 == n {
                    // Flush point for returns targeting still-active hop
                    // channels (see `hop_channels`): after the last hop
                    // post, in compute order, so every channel's FIFO
                    // order matches the trailing `Recv` declarations.
                    ops.append(&mut deferred);
                }
                if let Some(hop) = f_hops.next() {
                    ops.push(hop);
                }
                if let Some(hop) = r_hops.next() {
                    ops.push(hop);
                }
                let origin_a = fwd.origin_at(r, j);
                if origin_a != r {
                    let send = CommOp::Send {
                        dst: origin_a,
                        variant: "Out",
                        bytes: at(&oa_bytes, origin_a)?,
                    };
                    if defer_return(&is_hop_dst, origin_a, j, n) {
                        deferred.push(send);
                    } else {
                        ops.push(send);
                    }
                }
                let origin_b = rev.origin_at(r, j);
                if origin_b != r {
                    let send = CommOp::Send {
                        dst: origin_b,
                        variant: "Out",
                        bytes: at(&ob_bytes, origin_b)?,
                    };
                    if defer_return(&is_hop_dst, origin_b, j, n) {
                        deferred.push(send);
                    } else {
                        ops.push(send);
                    }
                }
            }
            for src in (0..n).filter(|&s| s != r) {
                // src posts our A-half partials at the round it hosts our
                // A half and our B-half partials at the round it hosts our
                // B half; its channel to us is FIFO, so the earlier host
                // round arrives first (A first on a tie: the loop posts
                // the forward return before the reverse one each round).
                let tau_a = fwd.step_of(src, r).ok_or_else(|| step_err(src, r))?;
                let tau_b = rev.step_of(src, r).ok_or_else(|| step_err(src, r))?;
                let (first, second) = if tau_a <= tau_b {
                    (at(&oa_bytes, r)?, at(&ob_bytes, r)?)
                } else {
                    (at(&ob_bytes, r)?, at(&oa_bytes, r)?)
                };
                ops.push(CommOp::Recv {
                    src,
                    variant: "Out",
                    bytes: first,
                });
                ops.push(CommOp::Recv {
                    src,
                    variant: "Out",
                    bytes: second,
                });
            }
            Ok(RankPlan { rank: r, ops })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares the bidirectional batched pass-Q decode schedule: the slot
/// vector splits at the midpoint, the two halves counter-rotate on the
/// flat ring, and the same single `All2All` as [`decode_plan`] returns
/// the re-joined per-origin partials.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn decode_bidi_plan(
    params: &AttentionParams,
    slots: &[Vec<Option<DecodeSlot>>],
) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(slots.len())?;
    let fwd = RingPath::FlatFwd { world: n };
    let rev = RingPath::FlatRev { world: n };
    let mut a_bytes = Vec::with_capacity(n);
    let mut b_bytes = Vec::with_capacity(n);
    for (r, s) in slots.iter().enumerate() {
        let (a, b) = split_slot_vec(s);
        a_bytes.push(
            RingMsg::DecodeQ {
                origin: r,
                slots: a,
            }
            .wire_bytes(),
        );
        b_bytes.push(
            RingMsg::DecodeQ {
                origin: r,
                slots: b,
            }
            .wire_bytes(),
        );
    }
    let douts: Vec<usize> = slots.iter().map(|s| decode_out_bytes(params, s)).collect();
    let ranks = (0..n)
        .map(|r| {
            let mut ops = interleave_hops(
                path_hops(r, fwd, "DecodeQ", &a_bytes)?,
                path_hops(r, rev, "DecodeQ", &b_bytes)?,
            );
            ops.push(CommOp::AllToAll {
                variant: "DecodeOut",
                send_bytes: douts.clone(),
                recv_bytes: vec![at(&douts, r)?; n],
            });
            Ok(RankPlan { rank: r, ops })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares the all-gather pass-KV baseline schedule
/// ([`crate::baseline::all_gather_pass_kv_prefill`], Llama3-training style,
/// §3.5.2) for all ranks: a single `AllGather` per rank broadcasting the
/// rank's own KV shard and collecting every peer's. Byte-for-byte it moves
/// the ring schedule's total volume, but all of it sits un-overlapped
/// before any compute starts.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn all_gather_pass_kv_plan(locals: &[Vec<LocalSeq>]) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(locals.len())?;
    let kv_bytes: Vec<usize> = locals
        .iter()
        .map(|ls| kv_skeleton(ls).wire_bytes())
        .collect();
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: vec![CommOp::AllGather {
                    variant: "Kv",
                    send_bytes: at(&kv_bytes, r)?,
                    recv_bytes: kv_bytes.clone(),
                }],
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares a single-collective `AllReduce` schedule: every rank
/// contributes `bytes[r]` wire bytes of `variant` payload and collects
/// every peer's contribution for the deterministic fold. This is the plan
/// behind cp-model's tensor-parallel column→row pairs (Table 2's AllReduce
/// of `[t, D]` activations); callers derive `bytes` from the payload's
/// `Wire` impl on a skeleton value.
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn all_reduce_plan(variant: &'static str, bytes: &[usize]) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(bytes.len())?;
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: vec![CommOp::AllReduce {
                    variant,
                    send_bytes: at(bytes, r)?,
                    recv_bytes: bytes.to_vec(),
                }],
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Declares a single-collective `AllGather` schedule: every rank
/// broadcasts `bytes[r]` wire bytes of `variant` payload and collects one
/// payload from each peer. Used by cp-model's TP attention to reassemble
/// per-head outputs (§4.2.2).
///
/// # Errors
///
/// [`CoreError::BadRequest`] for an empty rank list.
pub fn all_gather_plan(variant: &'static str, bytes: &[usize]) -> Result<CommPlan, CoreError> {
    let n = nonzero_world(bytes.len())?;
    let ranks = (0..n)
        .map(|r| {
            Ok(RankPlan {
                rank: r,
                ops: vec![CommOp::AllGather {
                    variant,
                    send_bytes: at(bytes, r)?,
                    recv_bytes: bytes.to_vec(),
                }],
            })
        })
        .collect::<Result<_, CoreError>>()?;
    Ok(CommPlan::from_ranks(ranks))
}

/// Repeats one layer's per-rank schedule `layers` times: a multi-layer
/// forward issues exactly one ring schedule per transformer layer inside a
/// single fabric session, so the session plan is the layer plan stacked.
/// Shared by cp-serve's engine and cp-model's full-stack forward plan.
pub fn stacked_plan(layer_plan: CommPlan, layers: usize) -> CommPlan {
    let ranks = layer_plan
        .ranks
        .into_iter()
        .map(|rp| {
            let mut ops = Vec::with_capacity(rp.ops.len() * layers);
            for _ in 0..layers {
                ops.extend(rp.ops.iter().cloned());
            }
            RankPlan { rank: rp.rank, ops }
        })
        .collect();
    CommPlan::from_ranks(ranks)
}

fn nonzero_world(n: usize) -> Result<usize, CoreError> {
    if n == 0 {
        return Err(CoreError::BadRequest {
            reason: "communication plan needs at least one rank".to_string(),
        });
    }
    Ok(n)
}

/// Adapter: runs a per-rank ring body under a [`CheckedFabric`], so every
/// collective the body issues is validated against the fabric's declared
/// plan, mapping `CoreError` in and out of the fabric's `CommError` like
/// [`crate::ring::run_ring`].
///
/// # Errors
///
/// The body's first error in rank order, or
/// [`cp_comm::CommError::PlanViolation`] (wrapped in
/// [`CoreError::Comm`]) when live traffic diverges from the plan.
pub fn run_ring_checked<T, F>(
    fabric: &CheckedFabric,
    body: F,
) -> Result<(Vec<T>, TrafficReport), CoreError>
where
    T: Send,
    F: Fn(&Communicator<RingMsg>) -> Result<T, CoreError> + Sync,
{
    let result =
        fabric.run::<RingMsg, T, _>(|comm| body(comm).map_err(|e| to_comm_error(comm.rank(), e)));
    result.map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{ring_pass_kv_prefill, ring_pass_q_decode, ring_pass_q_prefill};
    use cp_attention::GqaShape;
    use cp_tensor::DetRng;

    fn params(nh: usize, nkv: usize, dh: usize) -> AttentionParams {
        AttentionParams::for_shape(GqaShape::new(nh, nkv, dh).unwrap())
    }

    /// One equal-sized sequence per rank; rank r owns tokens
    /// `[r*t, (r+1)*t)` of a causal context.
    fn uniform_locals(n: usize, t: usize, p: &AttentionParams, seed: u64) -> Vec<Vec<LocalSeq>> {
        let shape = p.shape;
        let mut rng = DetRng::new(seed);
        (0..n)
            .map(|r| {
                let pos: Vec<usize> = (r * t..(r + 1) * t).collect();
                vec![LocalSeq {
                    q: rng.tensor(&[t, shape.n_heads(), shape.head_dim()]),
                    q_pos: pos.clone(),
                    k: rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
                    v: rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
                    kv_pos: pos,
                }]
            })
            .collect()
    }

    fn uniform_slots(n: usize, p: &AttentionParams, seed: u64) -> Vec<Vec<Option<DecodeSlot>>> {
        let shape = p.shape;
        let mut rng = DetRng::new(seed);
        (0..n)
            .map(|r| {
                vec![if r % 2 == 0 {
                    Some(DecodeSlot {
                        bid: 0,
                        q: rng.tensor(&[1, shape.n_heads(), shape.head_dim()]),
                        pos: 4 * n,
                    })
                } else {
                    None
                }]
            })
            .collect()
    }

    fn decode_kv(n: usize, p: &AttentionParams, seed: u64) -> Vec<Vec<SeqKv>> {
        let shape = p.shape;
        let mut rng = DetRng::new(seed);
        (0..n)
            .map(|r| {
                let pos: Vec<usize> = (r * 4..(r + 1) * 4).collect();
                vec![SeqKv {
                    k: rng.tensor(&[4, shape.n_kv_heads(), shape.head_dim()]),
                    v: rng.tensor(&[4, shape.n_kv_heads(), shape.head_dim()]),
                    pos,
                }]
            })
            .collect()
    }

    #[test]
    fn ring_origin_rotates_each_block_through_every_rank() {
        for n in [1, 2, 4, 8] {
            for r in 0..n {
                assert_eq!(ring_origin(r, n, 0), r, "step 0 holds own block");
                let visited: std::collections::BTreeSet<usize> =
                    (0..n).map(|j| ring_origin(r, n, j)).collect();
                assert_eq!(visited.len(), n, "rank {r} of {n} must visit all origins");
            }
            // At any step, the n ranks hold n distinct blocks.
            for j in 0..n {
                let held: std::collections::BTreeSet<usize> =
                    (0..n).map(|r| ring_origin(r, n, j)).collect();
                assert_eq!(held.len(), n);
            }
        }
    }

    #[test]
    fn pass_kv_plan_has_n_minus_1_uniform_hops() {
        let p = params(2, 1, 4);
        let locals = uniform_locals(4, 3, &p, 7);
        let plan = pass_kv_plan(&locals).unwrap();
        assert_eq!(plan.world, 4);
        for (r, rp) in plan.ranks.iter().enumerate() {
            assert_eq!(rp.ops.len(), 3);
            for op in &rp.ops {
                match op {
                    CommOp::SendRecv {
                        dst,
                        src,
                        send_variant,
                        recv_variant,
                        send_bytes,
                        recv_bytes,
                    } => {
                        assert_eq!(*dst, (r + 1) % 4);
                        assert_eq!(*src, (r + 3) % 4);
                        assert_eq!(*send_variant, "Kv");
                        assert_eq!(*recv_variant, "Kv");
                        // Uniform shards: every block has the same size
                        // (§3.5.2 padding invariant).
                        assert_eq!(send_bytes, recv_bytes);
                    }
                    other => panic!("expected SendRecv, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn single_rank_plans_are_local_only() {
        let p = params(2, 1, 4);
        let locals = uniform_locals(1, 3, &p, 9);
        let kv = pass_kv_plan(&locals).unwrap();
        assert!(kv.ranks[0].ops.is_empty());
        let q = pass_q_plan(&p, &locals).unwrap();
        // A single rank keeps its own partial locally: no hops, no return
        // sends, no receives.
        assert!(q.ranks[0].ops.is_empty());
        assert_eq!(q.predicted_traffic().messages, 0);
    }

    #[test]
    fn empty_rank_list_is_rejected() {
        let p = params(2, 1, 4);
        assert!(matches!(
            pass_kv_plan(&[]),
            Err(CoreError::BadRequest { .. })
        ));
        assert!(matches!(
            pass_q_plan(&p, &[]),
            Err(CoreError::BadRequest { .. })
        ));
        assert!(matches!(
            decode_plan(&p, &[]),
            Err(CoreError::BadRequest { .. })
        ));
    }

    #[test]
    fn checked_pass_kv_matches_plan_and_predicted_traffic() {
        let p = params(2, 1, 4);
        for n in [2, 3, 4] {
            let locals = uniform_locals(n, 3, &p, n as u64);
            let plan = pass_kv_plan(&locals).unwrap();
            let predicted = plan.predicted_traffic();
            let fabric = CheckedFabric::new(plan);
            let (outs, report) = run_ring_checked(&fabric, |comm| {
                ring_pass_kv_prefill(comm, &p, &locals[comm.rank()])
            })
            .unwrap();
            assert_eq!(outs.len(), n);
            predicted.check_report(&report).unwrap();
        }
    }

    #[test]
    fn checked_pass_q_matches_plan_and_predicted_traffic() {
        let p = params(4, 2, 8);
        for n in [2, 3, 4] {
            let locals = uniform_locals(n, 2, &p, 20 + n as u64);
            let plan = pass_q_plan(&p, &locals).unwrap();
            let predicted = plan.predicted_traffic();
            let fabric = CheckedFabric::new(plan);
            let (_, report) = run_ring_checked(&fabric, |comm| {
                ring_pass_q_prefill(comm, &p, &locals[comm.rank()])
            })
            .unwrap();
            predicted.check_report(&report).unwrap();
        }
    }

    #[test]
    fn checked_decode_matches_plan_and_predicted_traffic() {
        let p = params(2, 1, 4);
        for n in [2, 4] {
            let slots = uniform_slots(n, &p, 40 + n as u64);
            let kv = decode_kv(n, &p, 50 + n as u64);
            let plan = decode_plan(&p, &slots).unwrap();
            let predicted = plan.predicted_traffic();
            let fabric = CheckedFabric::new(plan);
            let (_, report) = run_ring_checked(&fabric, |comm| {
                ring_pass_q_decode(comm, &p, &slots[comm.rank()], &kv[comm.rank()])
            })
            .unwrap();
            predicted.check_report(&report).unwrap();
        }
    }

    #[test]
    fn checked_all_gather_baseline_matches_plan_and_predicted_traffic() {
        let p = params(2, 1, 4);
        for n in [2, 3, 4] {
            let locals = uniform_locals(n, 3, &p, 80 + n as u64);
            let plan = all_gather_pass_kv_plan(&locals).unwrap();
            let predicted = plan.predicted_traffic();
            let fabric = CheckedFabric::new(plan);
            let (outs, report) = run_ring_checked(&fabric, |comm| {
                crate::baseline::all_gather_pass_kv_prefill(comm, &p, &locals[comm.rank()])
            })
            .unwrap();
            assert_eq!(outs.len(), n);
            predicted.check_report(&report).unwrap();
            // Same volume as the ring schedule, in one un-overlapped shot.
            let ring_predicted = pass_kv_plan(&locals).unwrap().predicted_traffic();
            assert_eq!(predicted.all_gather.bytes, ring_predicted.send_recv.bytes);
        }
    }

    #[test]
    fn plan_catches_input_skew_between_declared_and_live() {
        // Declare the plan for one input set but run a rank with a larger
        // shard: the checked fabric must flag the byte mismatch.
        let p = params(2, 1, 4);
        let locals = uniform_locals(2, 3, &p, 60);
        let mut skewed = locals.clone();
        let mut rng = DetRng::new(61);
        skewed[1][0].k = rng.tensor(&[5, 1, 4]);
        skewed[1][0].v = rng.tensor(&[5, 1, 4]);
        skewed[1][0].kv_pos = (0..5).collect();
        let plan = pass_kv_plan(&locals).unwrap();
        let fabric = CheckedFabric::new(plan);
        let err = run_ring_checked(&fabric, |comm| {
            ring_pass_kv_prefill(comm, &p, &skewed[comm.rank()])
        })
        .unwrap_err();
        match err {
            CoreError::Comm(cp_comm::CommError::PlanViolation { rank, detail, .. }) => {
                assert_eq!(rank, 1);
                assert!(detail.contains("wire bytes"), "{detail}");
            }
            other => panic!("expected PlanViolation at rank 1, got {other:?}"),
        }
    }

    #[test]
    fn collective_plans_declare_symmetric_gathers() {
        let bytes = [16usize, 16, 16];
        for (plan, kind) in [
            (all_reduce_plan("payload", &bytes).unwrap(), "all_reduce"),
            (all_gather_plan("payload", &bytes).unwrap(), "all_gather"),
        ] {
            assert_eq!(plan.world, 3);
            for rp in &plan.ranks {
                assert_eq!(rp.ops.len(), 1);
                assert_eq!(rp.ops[0].kind(), kind);
            }
            // Sender-side metering: every rank broadcasts to n-1 peers.
            assert_eq!(
                plan.predicted_traffic().all_reduce.bytes
                    + plan.predicted_traffic().all_gather.bytes,
                16 * 3 * 2
            );
        }
        assert!(matches!(
            all_reduce_plan("payload", &[]),
            Err(CoreError::BadRequest { .. })
        ));
        assert!(matches!(
            all_gather_plan("payload", &[]),
            Err(CoreError::BadRequest { .. })
        ));
    }

    #[test]
    fn checked_all_reduce_matches_live_fabric_traffic() {
        use cp_comm::Wire;
        let payload = vec![0.0f32; 6];
        let bytes = vec![payload.wire_bytes(); 3];
        let plan = all_reduce_plan("payload", &bytes).unwrap();
        let predicted = plan.predicted_traffic();
        let fabric = CheckedFabric::new(plan);
        let (_, report) = fabric
            .run::<Vec<f32>, _, _>(|comm| {
                comm.all_reduce(vec![comm.rank() as f32; 6], |mut acc, m| {
                    for (a, b) in acc.iter_mut().zip(m) {
                        *a += b;
                    }
                    acc
                })
            })
            .unwrap();
        predicted.check_report(&report).unwrap();
    }

    #[test]
    fn stacked_plan_repeats_each_rank_schedule() {
        let p = params(2, 1, 4);
        let locals = uniform_locals(3, 2, &p, 90);
        let layer = pass_kv_plan(&locals).unwrap();
        let stacked = stacked_plan(layer.clone(), 4);
        assert_eq!(stacked.world, layer.world);
        for (sp, lp) in stacked.ranks.iter().zip(&layer.ranks) {
            assert_eq!(sp.ops.len(), 4 * lp.ops.len());
            assert_eq!(&sp.ops[..lp.ops.len()], &lp.ops[..]);
            assert_eq!(&sp.ops[3 * lp.ops.len()..], &lp.ops[..]);
        }
        assert_eq!(
            stacked.predicted_traffic().send_recv.bytes,
            4 * layer.predicted_traffic().send_recv.bytes
        );
    }

    #[test]
    fn skeleton_tensors_are_not_deep_copied() {
        let p = params(2, 1, 4);
        let locals = uniform_locals(2, 3, &p, 70);
        let msg = kv_skeleton(&locals[0]);
        match msg {
            RingMsg::Kv { seqs } => {
                assert!(seqs[0].k.shares_buffer(&locals[0][0].k));
            }
            other => panic!("expected Kv skeleton, got {other:?}"),
        }
    }
}
