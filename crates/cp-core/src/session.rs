//! A multi-turn chat session: the paper's full prefill → decode →
//! partial prefill → decode lifecycle (§3.3) over the engine.

use cp_kvcache::SeqId;
use cp_perf::{decode, prefill, RingVariant};

use crate::engine::ContextParallelEngine;
use crate::projector::ToyProjector;
use crate::CoreError;

/// Statistics of one user/assistant turn.
#[derive(Debug, Clone, PartialEq)]
pub struct TurnStats {
    /// New tokens prefilled (`T`).
    pub new_tokens: usize,
    /// Cached tokens before the turn (`P`).
    pub cached_tokens: usize,
    /// KV-cache miss rate `T / (T + P)`.
    pub miss_rate: f64,
    /// Ring variant the heuristic chose.
    pub variant: RingVariant,
    /// Estimated TTFT on the configured system (seconds), from the
    /// calibrated performance model.
    pub estimated_ttft_s: f64,
}

/// A persistent multi-turn conversation bound to one sequence of a
/// [`ContextParallelEngine`].
///
/// User turns run (full or partial) prefill; assistant turns run one
/// decode step per generated token. Token ids are projected to Q/K/V with
/// the deterministic [`ToyProjector`], so the whole loop is reproducible
/// and exactness-checkable while still exercising the real distributed
/// path.
#[derive(Debug)]
pub struct ChatSession<'e> {
    engine: &'e mut ContextParallelEngine,
    projector: ToyProjector,
    seq: SeqId,
    started: bool,
}

impl<'e> ChatSession<'e> {
    /// Binds a new session to `seq` (which must not exist yet in the
    /// engine).
    pub fn new(engine: &'e mut ContextParallelEngine, projector: ToyProjector, seq: SeqId) -> Self {
        ChatSession {
            engine,
            projector,
            seq,
            started: false,
        }
    }

    /// Total cached context length so far.
    pub fn context_len(&self) -> usize {
        if self.started {
            self.engine.context_len(self.seq).unwrap_or(0)
        } else {
            0
        }
    }

    /// Processes a user prompt: full prefill on the first turn, partial
    /// prefill (persistent KV) afterwards. Returns the turn's statistics
    /// and the attention output of the prompt tokens.
    ///
    /// # Errors
    ///
    /// Propagates engine failures (shapes, capacity, communication).
    pub fn user_turn(
        &mut self,
        prompt: &[u32],
    ) -> Result<(TurnStats, cp_attention::AttentionOutput), CoreError> {
        let p = self.context_len();
        let (q, k, v) = self.projector.project(prompt, p)?;
        let outcome = if self.started {
            self.engine.partial_prefill(self.seq, &q, &k, &v)?
        } else {
            let o = self.engine.full_prefill(self.seq, &q, &k, &v)?;
            self.started = true;
            o
        };
        let sys = &self.engine_system();
        let est = prefill::cp_prefill(
            &sys.model,
            &sys.hw,
            sys.n_nodes,
            outcome.new_tokens,
            outcome.cached_tokens,
            outcome.variant,
        );
        let stats = TurnStats {
            new_tokens: outcome.new_tokens,
            cached_tokens: outcome.cached_tokens,
            miss_rate: if outcome.new_tokens + outcome.cached_tokens == 0 {
                0.0
            } else {
                outcome.new_tokens as f64 / (outcome.new_tokens + outcome.cached_tokens) as f64
            },
            variant: outcome.variant,
            estimated_ttft_s: est.total_s,
        };
        Ok((stats, outcome.output))
    }

    /// Generates `n_tokens` assistant tokens by running decode steps; the
    /// "sampled" token id is a deterministic function of the attention
    /// output (this reproduction has no LM head). Returns the generated
    /// ids and the estimated per-token latency (TTIT) on the configured
    /// system.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if called before the first user
    /// turn; propagates engine failures.
    pub fn assistant_turn(&mut self, n_tokens: usize) -> Result<(Vec<u32>, f64), CoreError> {
        if !self.started {
            return Err(CoreError::BadRequest {
                reason: "assistant_turn before any user prompt".to_string(),
            });
        }
        let mut generated = Vec::with_capacity(n_tokens);
        let mut last_token: u32 = 0;
        for _ in 0..n_tokens {
            let pos = self.context_len();
            let (q, k, v) = self.projector.project(&[last_token], pos)?;
            let out = self.engine.decode_step(&[(self.seq, q, k, v)])?;
            // Deterministic pseudo-sampling from the attention output.
            let first = out.outputs.first().ok_or_else(|| CoreError::Internal {
                detail: "decode_step returned no output for the submitted slot".to_string(),
            })?;
            let s: f32 = first.out.as_slice().iter().sum();
            last_token = (s.abs() * 1e4) as u32 % 50_000;
            generated.push(last_token);
        }
        let sys = self.engine_system();
        let ttit = decode::cp_ttit_s(
            &sys.model,
            &sys.hw,
            sys.n_nodes,
            self.context_len().max(1),
            1,
        );
        Ok((generated, ttit))
    }

    fn engine_system(&self) -> crate::heuristics::SystemContext {
        // The engine's configured heuristic context drives the estimates.
        self.engine.system_context().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use cp_attention::GqaShape;

    fn setup() -> (ContextParallelEngine, ToyProjector) {
        let shape = GqaShape::new(4, 2, 8).unwrap();
        let engine =
            ContextParallelEngine::new(EngineConfig::new(2, shape).with_page_size(8)).unwrap();
        (engine, ToyProjector::new(shape, 42))
    }

    #[test]
    fn multi_turn_conversation_lifecycle() {
        let (mut engine, projector) = setup();
        let mut session = ChatSession::new(&mut engine, projector, SeqId(0));
        assert_eq!(session.context_len(), 0);

        let prompt1: Vec<u32> = (0..24).collect();
        let (stats1, out1) = session.user_turn(&prompt1).unwrap();
        assert_eq!(stats1.new_tokens, 24);
        assert_eq!(stats1.cached_tokens, 0);
        assert_eq!(stats1.miss_rate, 1.0);
        assert_eq!(out1.out.shape(), &[24, 4, 8]);
        assert!(stats1.estimated_ttft_s > 0.0);

        let (reply, ttit) = session.assistant_turn(5).unwrap();
        assert_eq!(reply.len(), 5);
        assert!(ttit > 0.0);
        assert_eq!(session.context_len(), 29);

        let prompt2: Vec<u32> = (100..110).collect();
        let (stats2, _) = session.user_turn(&prompt2).unwrap();
        assert_eq!(stats2.cached_tokens, 29);
        assert_eq!(stats2.new_tokens, 10);
        assert!(stats2.miss_rate < 0.30);
        assert_eq!(session.context_len(), 39);
    }

    #[test]
    fn sessions_are_deterministic() {
        let run = || {
            let (mut engine, projector) = setup();
            let mut session = ChatSession::new(&mut engine, projector, SeqId(0));
            session.user_turn(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
            session.assistant_turn(4).unwrap().0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn assistant_before_user_is_rejected() {
        let (mut engine, projector) = setup();
        let mut session = ChatSession::new(&mut engine, projector, SeqId(0));
        assert!(session.assistant_turn(1).is_err());
    }
}
