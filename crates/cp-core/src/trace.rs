//! Measured ring traces: adapts the fabric's recorded timeline into the
//! Chrome-trace structure `cp-perf` exports.
//!
//! `cp_perf::trace::trace_ring` builds a *modeled* trace from the
//! discrete-event simulator's cost formulas. This module builds the same
//! [`RingTrace`] from what actually happened on the thread fabric: every
//! collective wall-time interval and every [`Communicator::time_compute`]
//! span recorded in [`TrafficReport::timeline`]. The two traces share one
//! exporter, so measured and modeled pipelines can be compared side by
//! side in `chrome://tracing` / Perfetto.
//!
//! [`Communicator::time_compute`]: cp_comm::Communicator::time_compute

use cp_comm::TrafficReport;
use cp_perf::trace::{RingTrace, TraceEvent};

/// Converts a fabric [`TrafficReport`]'s measured timeline into a
/// [`RingTrace`].
///
/// Timestamps are relative to the fabric's launch instant and converted
/// from nanoseconds to the trace's microsecond unit; the makespan is the
/// latest interval end (0 for an empty timeline).
pub fn measured_ring_trace(report: &TrafficReport) -> RingTrace {
    let events: Vec<TraceEvent> = report
        .timeline
        .iter()
        .map(|ev| TraceEvent {
            rank: ev.rank,
            lane: ev.lane.as_str().to_string(),
            name: ev.label.clone(),
            start_us: ev.start_ns as f64 / 1_000.0,
            dur_us: ev.dur_ns as f64 / 1_000.0,
            overlap_us: ev.overlapped_ns as f64 / 1_000.0,
        })
        .collect();
    let makespan_us = events
        .iter()
        .map(|e| e.start_us + e.dur_us)
        .fold(0.0, f64::max);
    RingTrace {
        makespan_us,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{ring_pass_kv_prefill, run_ring};
    use crate::LocalSeq;
    use cp_attention::{AttentionParams, GqaShape, PAD};
    use cp_sharding::ShardPlan;
    use cp_tensor::DetRng;

    #[test]
    fn empty_report_gives_empty_trace() {
        let trace = measured_ring_trace(&TrafficReport::default());
        assert_eq!(trace.makespan_us, 0.0);
        assert!(trace.events.is_empty());
    }

    #[test]
    fn measured_prefill_trace_has_both_lanes_per_rank() {
        let n = 2;
        let t = 16;
        let params = AttentionParams::for_shape(GqaShape::new(2, 1, 4).unwrap());
        let mut rng = DetRng::new(31);
        let q = rng.tensor(&[t, 2, 4]);
        let k = rng.tensor(&[t, 1, 4]);
        let v = rng.tensor(&[t, 1, 4]);
        let plan = ShardPlan::new(t, n).unwrap();
        let max_len = (0..n).map(|r| plan.tokens_for(r)).max().unwrap();
        let locals: Vec<Vec<LocalSeq>> = (0..n)
            .map(|r| {
                let positions = plan.positions_for(r);
                let mut kv_pos = positions.clone();
                kv_pos.resize(max_len, PAD);
                vec![LocalSeq {
                    q: q.gather_dim0(&positions).unwrap(),
                    q_pos: positions.clone(),
                    k: k.gather_dim0(&positions)
                        .unwrap()
                        .pad_dim0(max_len, 0.0)
                        .unwrap(),
                    v: v.gather_dim0(&positions)
                        .unwrap()
                        .pad_dim0(max_len, 0.0)
                        .unwrap(),
                    kv_pos,
                }]
            })
            .collect();
        let (_, report) = run_ring(n, |comm| {
            ring_pass_kv_prefill(comm, &params, &locals[comm.rank()])
        })
        .unwrap();
        let trace = measured_ring_trace(&report);
        assert!(trace.makespan_us > 0.0);
        for rank in 0..n {
            assert!(
                trace
                    .events
                    .iter()
                    .any(|e| e.rank == rank && e.lane == "compute"),
                "rank {rank} has no compute events"
            );
            assert!(
                trace
                    .events
                    .iter()
                    .any(|e| e.rank == rank && e.lane == "comm"),
                "rank {rank} has no comm events"
            );
        }
        // Every attend/merge phase appears, and the exporter accepts it.
        for label in ["attend pass-kv", "merge pass-kv"] {
            assert!(trace.events.iter().any(|e| e.name == label), "{label}");
        }
        let json = trace.to_chrome_json();
        assert!(json.contains("traceEvents"));
        assert!(json.contains("overlap_us"));
        // Measured overlap is clamped to the collective's own duration and
        // never appears on compute-lane events.
        for e in &trace.events {
            match e.lane.as_str() {
                "comm" => assert!(e.overlap_us <= e.dur_us + 1e-9, "{e:?}"),
                _ => assert_eq!(e.overlap_us, 0.0, "{e:?}"),
            }
        }
        // Events stay within the makespan.
        for e in &trace.events {
            assert!(e.start_us + e.dur_us <= trace.makespan_us + 1e-9);
        }
    }
}
