//! Bit-identity of the bidirectional, chunked, and hierarchical ring
//! schedules against the classic unidirectional loops.
//!
//! Splitting each hop's payload across both ring directions (TokenRing
//! style), pipelining hops at depth 2, or rerouting the ring through a
//! hierarchical node topology (TASP style) must all be pure *scheduling*
//! changes: for any CP degree, sequence-length skew, cache-hit mix, and
//! decode occupancy the outputs must be **bit-identical** to the flat
//! unidirectional variants — same kernels, same merge order, only the
//! message routing moves. The declared bidi/chunked/hierarchical plans
//! must also match live traffic exactly under a `CheckedFabric`, and a
//! ring wedged in one direction must fail with a timeout naming the
//! silent peer instead of hanging.

use std::time::Duration;

use cp_attention::{AttentionOutput, AttentionParams, GqaShape};
use cp_comm::{CommError, Fabric, Topology};
use cp_core::ring::{
    ring_pass_kv_prefill, ring_pass_kv_prefill_bidi, ring_pass_kv_prefill_chunked,
    ring_pass_kv_prefill_on, ring_pass_q_decode, ring_pass_q_decode_bidi, ring_pass_q_prefill,
    ring_pass_q_prefill_bidi, ring_pass_q_prefill_on, run_ring, run_ring_checked,
};
use cp_core::schedule::{
    decode_bidi_plan, pass_kv_bidi_plan, pass_kv_chunked_plan, pass_kv_plan_on, pass_q_bidi_plan,
    pass_q_plan_on, RingLayout,
};
use cp_core::{CoreError, DecodeSlot, LocalSeq, RingMsg, SeqKv};
use cp_tensor::DetRng;
use proptest::prelude::*;

fn params() -> AttentionParams {
    AttentionParams::for_shape(GqaShape::new(2, 1, 4).unwrap())
}

/// One sequence per rank with independent query/KV lengths. `lens[r] =
/// (lq, extra)` gives rank `r` a KV segment of `lq + extra` tokens whose
/// **last** `lq` positions carry queries — `extra > 0` models partial
/// prefill over cached context.
fn build_locals(lens: &[(usize, usize)], p: &AttentionParams, seed: u64) -> Vec<Vec<LocalSeq>> {
    let shape = p.shape;
    let mut rng = DetRng::new(seed);
    let mut cur = 0usize;
    lens.iter()
        .map(|&(lq, extra)| {
            let lk = lq + extra;
            let kv_pos: Vec<usize> = (cur..cur + lk).collect();
            let q_pos: Vec<usize> = (cur + extra..cur + lk).collect();
            cur += lk;
            vec![LocalSeq {
                q: rng.tensor(&[lq, shape.n_heads(), shape.head_dim()]),
                q_pos,
                k: rng.tensor(&[lk, shape.n_kv_heads(), shape.head_dim()]),
                v: rng.tensor(&[lk, shape.n_kv_heads(), shape.head_dim()]),
                kv_pos,
            }]
        })
        .collect()
}

fn build_decode(
    occupancy: &[bool],
    p: &AttentionParams,
    seed: u64,
) -> (Vec<Vec<Option<DecodeSlot>>>, Vec<Vec<SeqKv>>) {
    let shape = p.shape;
    let mut rng = DetRng::new(seed);
    let n = occupancy.len();
    let slots: Vec<Vec<Option<DecodeSlot>>> = occupancy
        .iter()
        .map(|&occupied| {
            vec![occupied.then(|| DecodeSlot {
                bid: 0,
                q: rng.tensor(&[1, shape.n_heads(), shape.head_dim()]),
                pos: 4 * n,
            })]
        })
        .collect();
    let kv: Vec<Vec<SeqKv>> = (0..n)
        .map(|r| {
            vec![SeqKv {
                k: rng.tensor(&[3, shape.n_kv_heads(), shape.head_dim()]),
                v: rng.tensor(&[3, shape.n_kv_heads(), shape.head_dim()]),
                pos: (r * 3..(r + 1) * 3).collect(),
            }]
        })
        .collect();
    (slots, kv)
}

/// Bitwise equality, NaN-safe: a schedule change must reproduce the exact
/// same f32 bit patterns, not merely approximately equal values.
fn assert_bit_identical(a: &[Vec<AttentionOutput>], b: &[Vec<AttentionOutput>], what: &str) {
    assert_eq!(a.len(), b.len());
    for (rank, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "rank {rank} ({what})");
        for (i, (oa, ob)) in ra.iter().zip(rb).enumerate() {
            let out_same = oa
                .out
                .as_slice()
                .iter()
                .zip(ob.out.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            let lse_same = oa
                .lse
                .as_slice()
                .iter()
                .zip(ob.lse.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(
                oa.out.as_slice().len() == ob.out.as_slice().len() && out_same && lse_same,
                "rank {rank} sequence {i} diverged: {what}"
            );
        }
    }
}

/// Approximate equality for cross-family comparisons: schedules that fold
/// partials in a *different* origin order (hierarchical vs. flat pass-KV)
/// are mathematically exact but not bit-identical.
fn assert_close(a: &[Vec<AttentionOutput>], b: &[Vec<AttentionOutput>], what: &str) {
    assert_eq!(a.len(), b.len());
    for (rank, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "rank {rank} ({what})");
        for (i, (oa, ob)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(oa.out.as_slice().len(), ob.out.as_slice().len());
            let close = oa
                .out
                .as_slice()
                .iter()
                .zip(ob.out.as_slice())
                .all(|(x, y)| (x - y).abs() <= 2e-3);
            assert!(close, "rank {rank} sequence {i} not close: {what}");
        }
    }
}

/// The hierarchical layouts exercised against each world size: at `W = 4`
/// the 2×2 grid is the degenerate case where forward and reverse retrace
/// the same links; `W = 6` covers both genuinely link-disjoint shapes.
fn hier_layouts(world: usize) -> Vec<RingLayout> {
    match world {
        4 => vec![RingLayout::Hier(Topology::new(2, 2))],
        6 => vec![
            RingLayout::Hier(Topology::new(2, 3)),
            RingLayout::Hier(Topology::new(3, 2)),
        ],
        _ => Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Bidirectional pass-KV prefill is bit-identical to the flat
    /// unidirectional ring for any CP degree in {2..5}, ragged lengths,
    /// and partial-prefill history (including `lq == 1`, which leaves the
    /// reverse half of a hop payload empty).
    #[test]
    fn bidi_pass_kv_is_bit_identical(
        cp in 2usize..6,
        base in prop::collection::vec((1usize..5, 0usize..3), 5),
        seed in any::<u64>(),
    ) {
        let p = params();
        let locals = build_locals(&base[..cp], &p, seed);
        let (uni, _) = run_ring(cp, |comm| {
            ring_pass_kv_prefill(comm, &p, &locals[comm.rank()])
        }).unwrap();
        let (bidi, _) = run_ring(cp, |comm| {
            ring_pass_kv_prefill_bidi(comm, &p, &locals[comm.rank()], RingLayout::Flat)
        }).unwrap();
        assert_bit_identical(&uni, &bidi, "bidi pass-kv vs uni");
    }

    /// Bidirectional pass-Q prefill is bit-identical to the flat
    /// unidirectional ring (the query halves counter-rotate and the
    /// partial outputs return eagerly along both directions).
    #[test]
    fn bidi_pass_q_is_bit_identical(
        cp in 2usize..6,
        base in prop::collection::vec((1usize..5, 0usize..3), 5),
        seed in any::<u64>(),
    ) {
        let p = params();
        let locals = build_locals(&base[..cp], &p, seed);
        let (uni, _) = run_ring(cp, |comm| {
            ring_pass_q_prefill(comm, &p, &locals[comm.rank()])
        }).unwrap();
        let (bidi, _) = run_ring(cp, |comm| {
            ring_pass_q_prefill_bidi(comm, &p, &locals[comm.rank()], RingLayout::Flat)
        }).unwrap();
        assert_bit_identical(&uni, &bidi, "bidi pass-q vs uni");
    }

    /// Depth-2 chunked pass-KV prefill (both half-blocks in flight per
    /// hop) is bit-identical to the single-buffered ring, including over
    /// cached context (`extra > 0` = chunked prefill history).
    #[test]
    fn chunked_pass_kv_is_bit_identical(
        cp in 2usize..6,
        base in prop::collection::vec((1usize..5, 0usize..3), 5),
        seed in any::<u64>(),
    ) {
        let p = params();
        let locals = build_locals(&base[..cp], &p, seed);
        let (uni, _) = run_ring(cp, |comm| {
            ring_pass_kv_prefill(comm, &p, &locals[comm.rank()])
        }).unwrap();
        let (chunked, _) = run_ring(cp, |comm| {
            ring_pass_kv_prefill_chunked(comm, &p, &locals[comm.rank()])
        }).unwrap();
        assert_bit_identical(&uni, &chunked, "chunked pass-kv vs uni");
    }

    /// Bidirectional batched decode is bit-identical to the
    /// unidirectional pass for any slot occupancy (the slot-vector halves
    /// counter-rotate; the All2All return is unchanged).
    #[test]
    fn bidi_decode_is_bit_identical(
        cp in 2usize..6,
        occupancy in prop::collection::vec(any::<bool>(), 5),
        seed in any::<u64>(),
    ) {
        let p = params();
        let mut occ = occupancy[..cp].to_vec();
        occ[0] = true; // at least one live slot
        let (slots, kv) = build_decode(&occ, &p, seed);
        let (uni, _) = run_ring(cp, |comm| {
            ring_pass_q_decode(comm, &p, &slots[comm.rank()], &kv[comm.rank()])
        }).unwrap();
        let (bidi, _) = run_ring(cp, |comm| {
            ring_pass_q_decode_bidi(comm, &p, &slots[comm.rank()], &kv[comm.rank()])
        }).unwrap();
        assert_bit_identical(&uni, &bidi, "bidi decode vs uni");
    }

    /// Hierarchical (topology-aware) schedules are bit-identical to the
    /// flat ring for both pass variants, unidirectional and
    /// bidirectional, at `W = 4` (degenerate 2×2 grid) and `W = 6` (both
    /// link-disjoint grids).
    #[test]
    fn hier_layouts_are_bit_identical_to_flat(
        wide in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let world = if wide { 6usize } else { 4 };
        let p = params();
        let lens: Vec<(usize, usize)> =
            (0..world).map(|r| (1 + (seed as usize + r) % 4, r % 3)).collect();
        let locals = build_locals(&lens, &p, seed);
        let (kv_flat, _) = run_ring(world, |comm| {
            ring_pass_kv_prefill(comm, &p, &locals[comm.rank()])
        }).unwrap();
        let (q_flat, _) = run_ring(world, |comm| {
            ring_pass_q_prefill(comm, &p, &locals[comm.rank()])
        }).unwrap();
        for layout in hier_layouts(world) {
            // Pass-KV folds partials in ring-visit order, and the
            // hierarchical path visits origins in a different order than
            // the flat ring — exact but not bitwise across families. The
            // bidirectional hierarchical loop replays the unidirectional
            // hierarchical fold order, so that pair IS bitwise.
            let (kv_hier, _) = run_ring(world, |comm| {
                ring_pass_kv_prefill_on(comm, &p, &locals[comm.rank()], layout)
            }).unwrap();
            assert_close(&kv_flat, &kv_hier, "hier pass-kv vs flat");
            let (kv_bidi, _) = run_ring(world, |comm| {
                ring_pass_kv_prefill_bidi(comm, &p, &locals[comm.rank()], layout)
            }).unwrap();
            assert_bit_identical(&kv_hier, &kv_bidi, "bidi hier pass-kv vs uni hier");
            let (q_hier, _) = run_ring(world, |comm| {
                ring_pass_q_prefill_on(comm, &p, &locals[comm.rank()], layout)
            }).unwrap();
            assert_bit_identical(&q_flat, &q_hier, "hier pass-q vs flat");
            let (q_bidi, _) = run_ring(world, |comm| {
                ring_pass_q_prefill_bidi(comm, &p, &locals[comm.rank()], layout)
            }).unwrap();
            assert_bit_identical(&q_flat, &q_bidi, "bidi hier pass-q vs flat");
        }
    }

    /// The declared bidi/chunked plans match live traffic exactly when
    /// the new loops run under the CheckedFabric sanitizer, and the
    /// predicted byte/call totals match the metered report.
    #[test]
    fn bidi_loops_keep_predicted_traffic_exact(
        cp in 2usize..6,
        base in prop::collection::vec((1usize..4, 0usize..2), 5),
        seed in any::<u64>(),
    ) {
        let p = params();
        let locals = build_locals(&base[..cp], &p, seed);

        let plan = pass_kv_bidi_plan(&locals, RingLayout::Flat).unwrap();
        let predicted = plan.predicted_traffic();
        let (_, report) = run_ring_checked(&plan, |comm| {
            ring_pass_kv_prefill_bidi(comm, &p, &locals[comm.rank()], RingLayout::Flat)
        }).unwrap();
        predicted.check_report(&report).unwrap();

        let plan = pass_q_bidi_plan(&p, &locals, RingLayout::Flat).unwrap();
        let predicted = plan.predicted_traffic();
        let (_, report) = run_ring_checked(&plan, |comm| {
            ring_pass_q_prefill_bidi(comm, &p, &locals[comm.rank()], RingLayout::Flat)
        }).unwrap();
        predicted.check_report(&report).unwrap();

        let plan = pass_kv_chunked_plan(&locals).unwrap();
        let predicted = plan.predicted_traffic();
        let (_, report) = run_ring_checked(&plan, |comm| {
            ring_pass_kv_prefill_chunked(comm, &p, &locals[comm.rank()])
        }).unwrap();
        predicted.check_report(&report).unwrap();

        let occ = vec![true; cp];
        let (slots, kv) = build_decode(&occ, &p, seed ^ 0x9e37);
        let plan = decode_bidi_plan(&p, &slots).unwrap();
        let predicted = plan.predicted_traffic();
        let (_, report) = run_ring_checked(&plan, |comm| {
            ring_pass_q_decode_bidi(comm, &p, &slots[comm.rank()], &kv[comm.rank()])
        }).unwrap();
        predicted.check_report(&report).unwrap();
    }

    /// The hierarchical plans match live traffic exactly too, for both
    /// the unidirectional and bidirectional loops on every grid shape.
    #[test]
    fn hier_loops_keep_predicted_traffic_exact(
        wide in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let world = if wide { 6usize } else { 4 };
        let p = params();
        let lens: Vec<(usize, usize)> = (0..world).map(|r| (1 + r % 3, r % 2)).collect();
        let locals = build_locals(&lens, &p, seed);
        for layout in hier_layouts(world) {
            let plan = pass_kv_plan_on(&locals, layout).unwrap();
            let predicted = plan.predicted_traffic();
            let (_, report) = run_ring_checked(&plan, |comm| {
                ring_pass_kv_prefill_on(comm, &p, &locals[comm.rank()], layout)
            }).unwrap();
            predicted.check_report(&report).unwrap();

            let plan = pass_kv_bidi_plan(&locals, layout).unwrap();
            let predicted = plan.predicted_traffic();
            let (_, report) = run_ring_checked(&plan, |comm| {
                ring_pass_kv_prefill_bidi(comm, &p, &locals[comm.rank()], layout)
            }).unwrap();
            predicted.check_report(&report).unwrap();

            let plan = pass_q_plan_on(&p, &locals, layout).unwrap();
            let predicted = plan.predicted_traffic();
            let (_, report) = run_ring_checked(&plan, |comm| {
                ring_pass_q_prefill_on(comm, &p, &locals[comm.rank()], layout)
            }).unwrap();
            predicted.check_report(&report).unwrap();

            let plan = pass_q_bidi_plan(&p, &locals, layout).unwrap();
            let predicted = plan.predicted_traffic();
            let (_, report) = run_ring_checked(&plan, |comm| {
                ring_pass_q_prefill_bidi(comm, &p, &locals[comm.rank()], layout)
            }).unwrap();
            predicted.check_report(&report).unwrap();
        }
    }
}

/// The fabric's pipeline-depth flag routes `ring_pass_kv_prefill` through
/// the chunked loop transparently — same entry point, same bits.
#[test]
fn pipeline_depth_dispatch_is_bit_identical() {
    let p = params();
    let lens = [(3, 1), (1, 0), (4, 2)];
    let locals = build_locals(&lens, &p, 11);
    let cp = lens.len();
    let (uni, _) = run_ring(cp, |comm| {
        ring_pass_kv_prefill(comm, &p, &locals[comm.rank()])
    })
    .unwrap();
    let body = |comm: &cp_comm::Communicator<RingMsg>| {
        ring_pass_kv_prefill(comm, &p, &locals[comm.rank()]).map_err(core_to_comm)
    };
    let (piped, _) = Fabric::new(cp)
        .pipeline_depth(2)
        .run::<RingMsg, Vec<AttentionOutput>, _>(body)
        .unwrap();
    assert_bit_identical(&uni, &piped, "pipeline-depth dispatch vs uni");
}

fn core_to_comm(e: CoreError) -> CommError {
    match e {
        CoreError::Comm(c) => c,
        other => CommError::RankFailed {
            rank: usize::MAX,
            kind: "test",
            detail: other.to_string(),
        },
    }
}

/// A ring wedged in one direction must surface a receive timeout naming
/// the silent peer, not hang: rank 1 keeps the forward direction healthy
/// but never posts its reverse-direction hops, so rank 0 (whose reverse
/// receive peer is rank 1) times out on it.
#[test]
fn wedged_reverse_direction_times_out_naming_the_peer() {
    let p = params();
    let lens = [(2, 0), (3, 1), (2, 2)];
    let locals = build_locals(&lens, &p, 23);
    let cp = lens.len();
    let body = |comm: &cp_comm::Communicator<RingMsg>| -> Result<Vec<AttentionOutput>, CommError> {
        if comm.rank() == 1 {
            // Forward hops only: send the local block on, forward the one
            // message rank 0 manages to post before wedging, and stay
            // alive past the peers' receive deadlines so the reverse
            // direction wedges rather than disconnects. Only plain sends
            // and one guaranteed-delivered recv — rank 1 itself must
            // never hit a deadline, or dropping its channels would turn
            // rank 0's timeout into a disconnect.
            let me = &locals[1][0];
            let own = RingMsg::Kv {
                seqs: vec![SeqKv {
                    k: me.k.clone(),
                    v: me.v.clone(),
                    pos: me.kv_pos.clone(),
                }],
            };
            comm.isend(comm.ring_next(), own)?.wait()?;
            let forwarded = comm.recv(comm.ring_prev())?;
            comm.isend(comm.ring_next(), forwarded)?.wait()?;
            std::thread::sleep(Duration::from_millis(400));
            return Ok(Vec::new());
        }
        ring_pass_kv_prefill_bidi(comm, &p, &locals[comm.rank()], RingLayout::Flat)
            .map_err(core_to_comm)
    };
    let err = Fabric::new(cp)
        .recv_timeout(Duration::from_millis(100))
        .run::<RingMsg, Vec<AttentionOutput>, _>(body)
        .unwrap_err();
    match err {
        CommError::RecvFailed { src, timed_out } => {
            assert_eq!(src, 1, "the timeout must name the wedged peer");
            assert!(
                timed_out,
                "a wedged direction is a timeout, not a disconnect"
            );
        }
        other => panic!("expected RecvFailed naming rank 1, got {other:?}"),
    }
}
