//! Bit-identity of the double-buffered (overlapped) ring loops against
//! their blocking reference variants.
//!
//! Overlapping communication with compute must be a pure scheduling
//! change: for any batch shape, sequence-length skew, CP degree, and
//! full/partial prefill split, `ring_pass_kv_prefill`,
//! `ring_pass_q_prefill`, and `ring_pass_q_decode` must produce outputs
//! **bit-identical** to the `_blocking` variants (same kernels, same merge
//! order — only the wait point moves). The declared schedules must also
//! still match live traffic exactly when the overlapped loops run under a
//! `CheckedFabric`.

use cp_attention::{AttentionOutput, AttentionParams, GqaShape};
use cp_comm::CheckedFabric;
use cp_core::ring::{
    ring_pass_kv_prefill, ring_pass_kv_prefill_blocking, ring_pass_q_decode,
    ring_pass_q_decode_blocking, ring_pass_q_prefill, ring_pass_q_prefill_blocking, run_ring,
};
use cp_core::schedule::{decode_plan, pass_kv_plan, pass_q_plan, run_ring_checked};
use cp_core::{DecodeSlot, LocalSeq, SeqKv};
use cp_tensor::DetRng;
use proptest::prelude::*;

fn params() -> AttentionParams {
    AttentionParams::for_shape(GqaShape::new(2, 1, 4).unwrap())
}

/// Builds one sequence per rank with independent query/KV lengths per
/// rank. `lens[r] = (lq, extra)` gives rank `r` a KV segment of
/// `lq + extra` tokens whose **last** `lq` positions carry queries — so
/// `extra > 0` models partial prefill (history KV with no live queries).
fn build_locals(lens: &[(usize, usize)], p: &AttentionParams, seed: u64) -> Vec<Vec<LocalSeq>> {
    let shape = p.shape;
    let mut rng = DetRng::new(seed);
    let mut cur = 0usize;
    lens.iter()
        .map(|&(lq, extra)| {
            let lk = lq + extra;
            let kv_pos: Vec<usize> = (cur..cur + lk).collect();
            let q_pos: Vec<usize> = (cur + extra..cur + lk).collect();
            cur += lk;
            vec![LocalSeq {
                q: rng.tensor(&[lq, shape.n_heads(), shape.head_dim()]),
                q_pos,
                k: rng.tensor(&[lk, shape.n_kv_heads(), shape.head_dim()]),
                v: rng.tensor(&[lk, shape.n_kv_heads(), shape.head_dim()]),
                kv_pos,
            }]
        })
        .collect()
}

fn build_decode(
    occupancy: &[bool],
    p: &AttentionParams,
    seed: u64,
) -> (Vec<Vec<Option<DecodeSlot>>>, Vec<Vec<SeqKv>>) {
    let shape = p.shape;
    let mut rng = DetRng::new(seed);
    let n = occupancy.len();
    let slots: Vec<Vec<Option<DecodeSlot>>> = occupancy
        .iter()
        .map(|&occupied| {
            vec![occupied.then(|| DecodeSlot {
                bid: 0,
                q: rng.tensor(&[1, shape.n_heads(), shape.head_dim()]),
                pos: 4 * n,
            })]
        })
        .collect();
    let kv: Vec<Vec<SeqKv>> = (0..n)
        .map(|r| {
            vec![SeqKv {
                k: rng.tensor(&[3, shape.n_kv_heads(), shape.head_dim()]),
                v: rng.tensor(&[3, shape.n_kv_heads(), shape.head_dim()]),
                pos: (r * 3..(r + 1) * 3).collect(),
            }]
        })
        .collect();
    (slots, kv)
}

/// Bitwise equality, NaN-safe: identical scheduling must reproduce the
/// exact same f32 bit patterns, not merely approximately equal values.
fn assert_bit_identical(a: &[Vec<AttentionOutput>], b: &[Vec<AttentionOutput>]) {
    assert_eq!(a.len(), b.len());
    for (rank, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "rank {rank}");
        for (i, (oa, ob)) in ra.iter().zip(rb).enumerate() {
            let out_same = oa
                .out
                .as_slice()
                .iter()
                .zip(ob.out.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            let lse_same = oa
                .lse
                .as_slice()
                .iter()
                .zip(ob.lse.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(
                oa.out.as_slice().len() == ob.out.as_slice().len() && out_same && lse_same,
                "rank {rank} sequence {i} diverged between overlapped and blocking"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Overlapped pass-KV prefill is bit-identical to the blocking loop
    /// for any CP degree, ragged lengths, and partial-prefill history.
    #[test]
    fn overlapped_pass_kv_is_bit_identical(
        cp in 2usize..5,
        base in prop::collection::vec((1usize..5, 0usize..3), 4),
        seed in any::<u64>(),
    ) {
        let p = params();
        let lens = &base[..cp];
        let locals = build_locals(lens, &p, seed);
        let (overlapped, _) = run_ring(cp, |comm| {
            ring_pass_kv_prefill(comm, &p, &locals[comm.rank()])
        }).unwrap();
        let (blocking, _) = run_ring(cp, |comm| {
            ring_pass_kv_prefill_blocking(comm, &p, &locals[comm.rank()])
        }).unwrap();
        assert_bit_identical(&overlapped, &blocking);
    }

    /// Overlapped pass-Q prefill is bit-identical to the blocking loop.
    #[test]
    fn overlapped_pass_q_is_bit_identical(
        cp in 2usize..5,
        base in prop::collection::vec((1usize..5, 0usize..3), 4),
        seed in any::<u64>(),
    ) {
        let p = params();
        let lens = &base[..cp];
        let locals = build_locals(lens, &p, seed);
        let (overlapped, _) = run_ring(cp, |comm| {
            ring_pass_q_prefill(comm, &p, &locals[comm.rank()])
        }).unwrap();
        let (blocking, _) = run_ring(cp, |comm| {
            ring_pass_q_prefill_blocking(comm, &p, &locals[comm.rank()])
        }).unwrap();
        assert_bit_identical(&overlapped, &blocking);
    }

    /// Overlapped batched decode is bit-identical to the blocking loop
    /// for any slot occupancy pattern (ragged batches included).
    #[test]
    fn overlapped_decode_is_bit_identical(
        cp in 2usize..5,
        occupancy in prop::collection::vec(any::<bool>(), 4),
        seed in any::<u64>(),
    ) {
        let p = params();
        let mut occ = occupancy[..cp].to_vec();
        occ[0] = true; // at least one live slot
        let (slots, kv) = build_decode(&occ, &p, seed);
        let (overlapped, _) = run_ring(cp, |comm| {
            ring_pass_q_decode(comm, &p, &slots[comm.rank()], &kv[comm.rank()])
        }).unwrap();
        let (blocking, _) = run_ring(cp, |comm| {
            ring_pass_q_decode_blocking(comm, &p, &slots[comm.rank()], &kv[comm.rank()])
        }).unwrap();
        assert_bit_identical(&overlapped, &blocking);
    }

    /// The declared schedules still match live traffic exactly when the
    /// overlapped loops run under the CheckedFabric sanitizer: posting
    /// `isend_irecv` early must not change plan conformance or metering.
    #[test]
    fn overlapped_loops_keep_predicted_traffic_exact(
        cp in 2usize..5,
        base in prop::collection::vec((1usize..4, 0usize..2), 4),
        seed in any::<u64>(),
    ) {
        let p = params();
        let lens = &base[..cp];
        let locals = build_locals(lens, &p, seed);

        let plan = pass_kv_plan(&locals).unwrap();
        let predicted = plan.predicted_traffic();
        let (_, report) = run_ring_checked(&CheckedFabric::new(plan), |comm| {
            ring_pass_kv_prefill(comm, &p, &locals[comm.rank()])
        }).unwrap();
        predicted.check_report(&report).unwrap();

        let plan = pass_q_plan(&p, &locals).unwrap();
        let predicted = plan.predicted_traffic();
        let (_, report) = run_ring_checked(&CheckedFabric::new(plan), |comm| {
            ring_pass_q_prefill(comm, &p, &locals[comm.rank()])
        }).unwrap();
        predicted.check_report(&report).unwrap();

        let occ = vec![true; cp];
        let (slots, kv) = build_decode(&occ, &p, seed ^ 0x9e37);
        let plan = decode_plan(&p, &slots).unwrap();
        let predicted = plan.predicted_traffic();
        let (_, report) = run_ring_checked(&CheckedFabric::new(plan), |comm| {
            ring_pass_q_decode(comm, &p, &slots[comm.rank()], &kv[comm.rank()])
        }).unwrap();
        predicted.check_report(&report).unwrap();
    }
}
