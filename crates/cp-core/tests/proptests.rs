//! Property-based exactness tests for the context-parallel engine: for
//! *any* rank count, sequence lengths, turn structure and decode schedule,
//! the distributed engine must agree with single-device attention.

use cp_attention::GqaShape;
use cp_core::baseline::single_device_prefill;
use cp_core::{ContextParallelEngine, EngineConfig, KvPrecision, PrefillRequest};
use cp_kvcache::SeqId;
use cp_perf::{DecodeStrategy, RingVariant};
use cp_tensor::{DetRng, Tensor};
use proptest::prelude::*;

fn engine(n: usize, shape: GqaShape) -> ContextParallelEngine {
    ContextParallelEngine::new(EngineConfig::new(n, shape).with_page_size(4)).unwrap()
}

fn gqa() -> impl Strategy<Value = GqaShape> {
    (1usize..3, 1usize..3, 1usize..9).prop_map(|(g, kv, dh)| GqaShape::new(g * kv, kv, dh).unwrap())
}

fn qkv(rng: &mut DetRng, shape: GqaShape, t: usize) -> (Tensor, Tensor, Tensor) {
    (
        rng.tensor(&[t, shape.n_heads(), shape.head_dim()]),
        rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
        rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full prefill matches the single-device reference for any shape,
    /// length, rank count and forced variant.
    #[test]
    fn full_prefill_exact(
        shape in gqa(),
        n in 1usize..5,
        t in 1usize..60,
        force_q in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut eng = engine(n, shape);
        let mut rng = DetRng::new(seed);
        let (q, k, v) = qkv(&mut rng, shape, t);
        let variant = if force_q { RingVariant::PassQ } else { RingVariant::PassKv };
        let outcome = eng
            .prefill_batch(&[PrefillRequest { seq: SeqId(0), q: &q, k: &k, v: &v }], Some(variant))
            .unwrap()
            .remove(0);
        let pos: Vec<usize> = (0..t).collect();
        let reference = single_device_prefill(&q, &k, &v, eng.params(), &pos, &pos).unwrap();
        prop_assert!(outcome.output.out.approx_eq(&reference.out, 3e-3).unwrap());
        prop_assert!(outcome.output.lse.approx_eq(&reference.lse, 3e-3).unwrap());
    }

    /// An arbitrary multi-turn trace (prefills interleaved with decode
    /// bursts) stays exact against an incrementally built flat reference.
    #[test]
    fn multi_turn_trace_exact(
        shape in gqa(),
        n in 1usize..4,
        turns in prop::collection::vec((1usize..16, 0usize..4), 1..4),
        seed in any::<u64>(),
    ) {
        let mut eng = engine(n, shape);
        let mut rng = DetRng::new(seed);
        let seq = SeqId(3);
        let mut ks: Vec<Tensor> = Vec::new();
        let mut vs: Vec<Tensor> = Vec::new();
        let mut ctx = 0usize;
        for (turn_idx, &(t, decodes)) in turns.iter().enumerate() {
            let (q, k, v) = qkv(&mut rng, shape, t);
            let outcome = if turn_idx == 0 {
                eng.full_prefill(seq, &q, &k, &v).unwrap()
            } else {
                eng.partial_prefill(seq, &q, &k, &v).unwrap()
            };
            ks.push(k);
            vs.push(v);
            let full_k = Tensor::concat_dim0(ks.iter()).unwrap();
            let full_v = Tensor::concat_dim0(vs.iter()).unwrap();
            let q_pos: Vec<usize> = (ctx..ctx + t).collect();
            let kv_pos: Vec<usize> = (0..ctx + t).collect();
            let reference = single_device_prefill(
                &q, &full_k, &full_v, eng.params(), &q_pos, &kv_pos,
            ).unwrap();
            prop_assert!(outcome.output.out.approx_eq(&reference.out, 3e-3).unwrap(),
                "turn {turn_idx}");
            ctx += t;

            for _ in 0..decodes {
                let (q1, k1, v1) = qkv(&mut rng, shape, 1);
                let out = eng.decode_step(&[(seq, q1.clone(), k1.clone(), v1.clone())]).unwrap();
                ks.push(k1);
                vs.push(v1);
                let full_k = Tensor::concat_dim0(ks.iter()).unwrap();
                let full_v = Tensor::concat_dim0(vs.iter()).unwrap();
                let kv_pos: Vec<usize> = (0..=ctx).collect();
                let reference = single_device_prefill(
                    &q1, &full_k, &full_v, eng.params(), &[ctx], &kv_pos,
                ).unwrap();
                prop_assert!(out.outputs[0].out.approx_eq(&reference.out, 3e-3).unwrap());
                ctx += 1;
            }
            prop_assert_eq!(eng.context_len(seq).unwrap(), ctx);
        }
    }

    /// Fused varseq batches: every sequence of the batch is exact.
    #[test]
    fn varseq_batch_exact(
        shape in gqa(),
        n in 1usize..4,
        lens in prop::collection::vec(1usize..24, 1..4),
        seed in any::<u64>(),
    ) {
        let mut eng = engine(n, shape);
        let mut rng = DetRng::new(seed);
        let tensors: Vec<(Tensor, Tensor, Tensor)> =
            lens.iter().map(|&t| qkv(&mut rng, shape, t)).collect();
        let requests: Vec<PrefillRequest<'_>> = tensors
            .iter()
            .enumerate()
            .map(|(i, (q, k, v))| PrefillRequest { seq: SeqId(i as u64), q, k, v })
            .collect();
        let outcomes = eng.prefill_batch(&requests, None).unwrap();
        for (i, ((q, k, v), outcome)) in tensors.iter().zip(&outcomes).enumerate() {
            let t = q.dim0();
            let pos: Vec<usize> = (0..t).collect();
            let reference = single_device_prefill(q, k, v, eng.params(), &pos, &pos).unwrap();
            prop_assert!(outcome.output.out.approx_eq(&reference.out, 3e-3).unwrap(),
                "sequence {i}");
        }
    }

    /// The engine's result is invariant to the number of ranks.
    #[test]
    fn rank_count_invariance(
        shape in gqa(),
        t in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::new(seed);
        let (q, k, v) = qkv(&mut rng, shape, t);
        let mut outputs = Vec::new();
        for n in [1usize, 2, 4] {
            let mut eng = engine(n, shape);
            let outcome = eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
            outputs.push(outcome.output);
        }
        prop_assert!(outputs[0].out.approx_eq(&outputs[1].out, 3e-3).unwrap());
        prop_assert!(outputs[0].out.approx_eq(&outputs[2].out, 3e-3).unwrap());
    }

    /// KV memory balance: after any prefill, per-rank cached token counts
    /// differ by at most two chunks of each sequence.
    #[test]
    fn kv_balance_invariant(
        shape in gqa(),
        n in 1usize..5,
        lens in prop::collection::vec(1usize..40, 1..4),
        seed in any::<u64>(),
    ) {
        let mut eng = engine(n, shape);
        let mut rng = DetRng::new(seed);
        for (i, &t) in lens.iter().enumerate() {
            let (q, k, v) = qkv(&mut rng, shape, t);
            eng.full_prefill(SeqId(i as u64), &q, &k, &v).unwrap();
        }
        for (i, &t) in lens.iter().enumerate() {
            let rank_lens = eng.rank_kv_lens(SeqId(i as u64)).unwrap();
            prop_assert_eq!(rank_lens.iter().sum::<usize>(), t);
            let max = *rank_lens.iter().max().unwrap();
            let min = *rank_lens.iter().min().unwrap();
            prop_assert!(max - min <= 2 * t.div_ceil(2 * n), "{rank_lens:?}");
        }
    }

    /// Long decode runs keep per-rank KV growth within one token of even.
    #[test]
    fn decode_growth_fair(
        n in 1usize..5,
        steps in 1usize..30,
        seed in any::<u64>(),
    ) {
        let shape = GqaShape::new(2, 1, 4).unwrap();
        let mut eng = engine(n, shape);
        let mut rng = DetRng::new(seed);
        let (q, k, v) = qkv(&mut rng, shape, 2 * n); // even initial split
        eng.full_prefill(SeqId(0), &q, &k, &v).unwrap();
        let before = eng.rank_kv_lens(SeqId(0)).unwrap();
        for _ in 0..steps {
            let (q1, k1, v1) = qkv(&mut rng, shape, 1);
            eng.decode_step(&[(SeqId(0), q1, k1, v1)]).unwrap();
        }
        let after = eng.rank_kv_lens(SeqId(0)).unwrap();
        let grown: Vec<usize> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
        let max = *grown.iter().max().unwrap();
        let min = *grown.iter().min().unwrap();
        prop_assert!(max - min <= 1, "{grown:?}");
    }

    /// Helix and TP-only decode are **bitwise** identical to batched
    /// pass-Q — and (at f32) exact against the single-device reference —
    /// for any shape, CP ∈ {2,3,4}, paged and quant-paged caches, across
    /// multi-turn traces that decode over cached context.
    #[test]
    fn decode_strategies_bitwise_identical(
        shape in gqa(),
        n in 2usize..5,
        quant in any::<bool>(),
        turns in prop::collection::vec((1usize..12, 1usize..4), 1..3),
        seed in any::<u64>(),
    ) {
        let precision = if quant { KvPrecision::Int8Total } else { KvPrecision::F32 };
        let mk = |strategy| {
            ContextParallelEngine::new(
                EngineConfig::new(n, shape)
                    .with_page_size(4)
                    .with_kv_precision(precision)
                    .with_decode_strategy(strategy),
            )
            .unwrap()
        };
        let mut engines = [
            mk(DecodeStrategy::PassQ),
            mk(DecodeStrategy::Helix),
            mk(DecodeStrategy::TpOnly),
        ];
        let mut rng = DetRng::new(seed);
        let seq = SeqId(1);
        let mut ks: Vec<Tensor> = Vec::new();
        let mut vs: Vec<Tensor> = Vec::new();
        let mut ctx = 0usize;
        for (turn_idx, &(t, decodes)) in turns.iter().enumerate() {
            let (q, k, v) = qkv(&mut rng, shape, t);
            for eng in &mut engines {
                if turn_idx == 0 {
                    eng.full_prefill(seq, &q, &k, &v).unwrap();
                } else {
                    eng.partial_prefill(seq, &q, &k, &v).unwrap();
                }
            }
            ks.push(k);
            vs.push(v);
            ctx += t;
            for _ in 0..decodes {
                let (q1, k1, v1) = qkv(&mut rng, shape, 1);
                let outs: Vec<_> = engines
                    .iter_mut()
                    .map(|eng| {
                        eng.decode_step(&[(seq, q1.clone(), k1.clone(), v1.clone())])
                            .unwrap()
                    })
                    .collect();
                for (name, out) in [("helix", &outs[1]), ("tp-only", &outs[2])] {
                    prop_assert!(out.outputs[0].out == outs[0].outputs[0].out,
                        "{name} out, turn {turn_idx}");
                    prop_assert!(out.outputs[0].lse == outs[0].outputs[0].lse,
                        "{name} lse, turn {turn_idx}");
                }
                ks.push(k1);
                vs.push(v1);
                if !quant {
                    let full_k = Tensor::concat_dim0(ks.iter()).unwrap();
                    let full_v = Tensor::concat_dim0(vs.iter()).unwrap();
                    let kv_pos: Vec<usize> = (0..=ctx).collect();
                    let reference = single_device_prefill(
                        &q1, &full_k, &full_v, engines[1].params(), &[ctx], &kv_pos,
                    ).unwrap();
                    prop_assert!(
                        outs[1].outputs[0].out.approx_eq(&reference.out, 3e-3).unwrap(),
                        "helix vs solo, turn {}", turn_idx
                    );
                }
                ctx += 1;
            }
        }
    }

    /// The `N_KV < CP` edge: a single KV head sharded across more ranks
    /// than heads still decodes bitwise-identically under every strategy.
    #[test]
    fn decode_strategies_survive_fewer_kv_heads_than_ranks(
        n in 3usize..5,
        dh in 1usize..9,
        t in 1usize..20,
        decodes in 1usize..5,
        quant in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let shape = GqaShape::new(2, 1, dh).unwrap();
        let precision = if quant { KvPrecision::Int8Total } else { KvPrecision::F32 };
        let mk = |strategy| {
            ContextParallelEngine::new(
                EngineConfig::new(n, shape)
                    .with_page_size(4)
                    .with_kv_precision(precision)
                    .with_decode_strategy(strategy),
            )
            .unwrap()
        };
        let mut engines = [
            mk(DecodeStrategy::PassQ),
            mk(DecodeStrategy::Helix),
            mk(DecodeStrategy::TpOnly),
        ];
        let mut rng = DetRng::new(seed);
        let seq = SeqId(7);
        let (q, k, v) = qkv(&mut rng, shape, t);
        for eng in &mut engines {
            eng.full_prefill(seq, &q, &k, &v).unwrap();
        }
        for step in 0..decodes {
            let (q1, k1, v1) = qkv(&mut rng, shape, 1);
            let outs: Vec<_> = engines
                .iter_mut()
                .map(|eng| {
                    eng.decode_step(&[(seq, q1.clone(), k1.clone(), v1.clone())])
                        .unwrap()
                })
                .collect();
            for (name, out) in [("helix", &outs[1]), ("tp-only", &outs[2])] {
                prop_assert!(out.outputs[0].out == outs[0].outputs[0].out,
                    "{name} out, step {step}");
                prop_assert!(out.outputs[0].lse == outs[0].outputs[0].lse,
                    "{name} lse, step {step}");
            }
        }
    }
}
