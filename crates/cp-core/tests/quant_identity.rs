//! The compressed (INT8 pass-KV) schedule family: one bitwise
//! equivalence class across every layout and direction.
//!
//! The f32 families fold partials in ring-visit order, so flat and
//! hierarchical layouts agree only mathematically. The compressed loops
//! stash partials per origin and fold in canonical ascending-origin
//! order instead, so flat/hier × uni/bidi all produce the **same bits**
//! for the same inputs — and the canonical-merge f32 loop extends that
//! guarantee to the uncompressed path. Accuracy vs the f32 families is
//! bounded by the per-head INT8 quantization error. Declared compressed
//! plans must match live traffic exactly under a `CheckedFabric`, and a
//! compressed hop must carry ~4× fewer bytes than its f32 twin.

use cp_attention::{AttentionOutput, AttentionParams, GqaShape};
use cp_comm::Topology;
use cp_core::ring::{
    ring_pass_kv_prefill, ring_pass_kv_prefill_canonical_on, ring_pass_kv_prefill_quant_bidi,
    ring_pass_kv_prefill_quant_on, run_ring, run_ring_checked,
};
use cp_core::schedule::{
    pass_kv_plan_on, pass_kv_quant_bidi_plan, pass_kv_quant_plan_on, RingLayout,
};
use cp_core::LocalSeq;
use cp_tensor::DetRng;
use proptest::prelude::*;

fn params() -> AttentionParams {
    AttentionParams::for_shape(GqaShape::new(2, 1, 4).unwrap())
}

/// One sequence per rank with independent query/KV lengths, as in the
/// bidi identity suite: `extra > 0` models partial prefill over cached
/// context.
fn build_locals(lens: &[(usize, usize)], p: &AttentionParams, seed: u64) -> Vec<Vec<LocalSeq>> {
    let shape = p.shape;
    let mut rng = DetRng::new(seed);
    let mut cur = 0usize;
    lens.iter()
        .map(|&(lq, extra)| {
            let lk = lq + extra;
            let kv_pos: Vec<usize> = (cur..cur + lk).collect();
            let q_pos: Vec<usize> = (cur + extra..cur + lk).collect();
            cur += lk;
            vec![LocalSeq {
                q: rng.tensor(&[lq, shape.n_heads(), shape.head_dim()]),
                q_pos,
                k: rng.tensor(&[lk, shape.n_kv_heads(), shape.head_dim()]),
                v: rng.tensor(&[lk, shape.n_kv_heads(), shape.head_dim()]),
                kv_pos,
            }]
        })
        .collect()
}

fn assert_bit_identical(a: &[Vec<AttentionOutput>], b: &[Vec<AttentionOutput>], what: &str) {
    assert_eq!(a.len(), b.len());
    for (rank, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "rank {rank} ({what})");
        for (i, (oa, ob)) in ra.iter().zip(rb).enumerate() {
            let out_same = oa
                .out
                .as_slice()
                .iter()
                .zip(ob.out.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            let lse_same = oa
                .lse
                .as_slice()
                .iter()
                .zip(ob.lse.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(
                oa.out.as_slice().len() == ob.out.as_slice().len() && out_same && lse_same,
                "rank {rank} sequence {i} diverged: {what}"
            );
        }
    }
}

/// Max-abs closeness with an explicit tolerance: the compressed family
/// deviates from f32 by the quantization error, not rounding noise.
fn assert_close(a: &[Vec<AttentionOutput>], b: &[Vec<AttentionOutput>], tol: f32, what: &str) {
    assert_eq!(a.len(), b.len());
    for (rank, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "rank {rank} ({what})");
        for (i, (oa, ob)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(oa.out.as_slice().len(), ob.out.as_slice().len());
            let close = oa
                .out
                .as_slice()
                .iter()
                .zip(ob.out.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol);
            assert!(close, "rank {rank} sequence {i} not close: {what}");
        }
    }
}

fn hier_layouts(world: usize) -> Vec<RingLayout> {
    match world {
        4 => vec![RingLayout::Hier(Topology::new(2, 2))],
        6 => vec![
            RingLayout::Hier(Topology::new(2, 3)),
            RingLayout::Hier(Topology::new(3, 2)),
        ],
        _ => Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Compressed flat uni == compressed flat bidi bitwise, and both stay
    /// within quantization tolerance of the exact f32 ring, for any CP
    /// degree, ragged lengths, and partial-prefill history.
    #[test]
    fn quant_flat_schedules_are_one_bitwise_class(
        cp in 2usize..6,
        base in prop::collection::vec((1usize..5, 0usize..3), 5),
        seed in any::<u64>(),
    ) {
        let p = params();
        let locals = build_locals(&base[..cp], &p, seed);
        let (uni, _) = run_ring(cp, |comm| {
            ring_pass_kv_prefill_quant_on(comm, &p, &locals[comm.rank()], RingLayout::Flat)
        }).unwrap();
        let (bidi, _) = run_ring(cp, |comm| {
            ring_pass_kv_prefill_quant_bidi(comm, &p, &locals[comm.rank()], RingLayout::Flat)
        }).unwrap();
        assert_bit_identical(&uni, &bidi, "quant bidi vs quant uni");
        let (exact, _) = run_ring(cp, |comm| {
            ring_pass_kv_prefill(comm, &p, &locals[comm.rank()])
        }).unwrap();
        assert_close(&exact, &uni, 0.05, "quant vs exact f32");
    }

    /// Every compressed layout — flat, both hierarchical grids, uni and
    /// bidi — produces the same bits: the canonical ascending-origin fold
    /// makes layout a pure routing choice even across topologies, which
    /// the visit-order f32 family cannot promise.
    #[test]
    fn quant_hier_layouts_are_bitwise_stable(
        wide in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let world = if wide { 6usize } else { 4 };
        let p = params();
        let lens: Vec<(usize, usize)> =
            (0..world).map(|r| (1 + (seed as usize + r) % 4, r % 3)).collect();
        let locals = build_locals(&lens, &p, seed);
        let (flat, _) = run_ring(world, |comm| {
            ring_pass_kv_prefill_quant_on(comm, &p, &locals[comm.rank()], RingLayout::Flat)
        }).unwrap();
        for layout in hier_layouts(world) {
            let (hier, _) = run_ring(world, |comm| {
                ring_pass_kv_prefill_quant_on(comm, &p, &locals[comm.rank()], layout)
            }).unwrap();
            assert_bit_identical(&flat, &hier, "quant hier uni vs quant flat");
            let (hier_bidi, _) = run_ring(world, |comm| {
                ring_pass_kv_prefill_quant_bidi(comm, &p, &locals[comm.rank()], layout)
            }).unwrap();
            assert_bit_identical(&flat, &hier_bidi, "quant hier bidi vs quant flat");
        }
    }

    /// The canonical-merge f32 loop gives the uncompressed path the same
    /// layout-stability guarantee: flat and hierarchical canonical runs
    /// are bitwise identical, and stay mathematically exact against the
    /// visit-order fold (tiny reassociation noise only).
    #[test]
    fn canonical_f32_fold_is_layout_stable(
        wide in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let world = if wide { 6usize } else { 4 };
        let p = params();
        let lens: Vec<(usize, usize)> =
            (0..world).map(|r| (1 + (seed as usize + r) % 4, r % 3)).collect();
        let locals = build_locals(&lens, &p, seed);
        let (flat, _) = run_ring(world, |comm| {
            ring_pass_kv_prefill_canonical_on(comm, &p, &locals[comm.rank()], RingLayout::Flat)
        }).unwrap();
        for layout in hier_layouts(world) {
            let (hier, _) = run_ring(world, |comm| {
                ring_pass_kv_prefill_canonical_on(comm, &p, &locals[comm.rank()], layout)
            }).unwrap();
            assert_bit_identical(&flat, &hier, "canonical hier vs canonical flat");
        }
        let (visit, _) = run_ring(world, |comm| {
            ring_pass_kv_prefill(comm, &p, &locals[comm.rank()])
        }).unwrap();
        assert_close(&visit, &flat, 2e-3, "canonical vs visit-order fold");
    }

    /// Declared compressed plans match live traffic exactly under the
    /// CheckedFabric sanitizer, for flat and hierarchical layouts, uni
    /// and bidi — and the compressed schedule moves strictly fewer bytes
    /// than its f32 twin.
    #[test]
    fn quant_plans_keep_predicted_traffic_exact(
        wide in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let world = if wide { 6usize } else { 4 };
        let p = params();
        let lens: Vec<(usize, usize)> = (0..world).map(|r| (1 + r % 3, r % 2)).collect();
        let locals = build_locals(&lens, &p, seed);
        let mut layouts = vec![RingLayout::Flat];
        layouts.extend(hier_layouts(world));
        for layout in layouts {
            let plan = pass_kv_quant_plan_on(&locals, layout).unwrap();
            let predicted = plan.predicted_traffic();
            let (_, report) = run_ring_checked(&plan, |comm| {
                ring_pass_kv_prefill_quant_on(comm, &p, &locals[comm.rank()], layout)
            }).unwrap();
            predicted.check_report(&report).unwrap();
            let f32_plan = pass_kv_plan_on(&locals, layout).unwrap();
            prop_assert!(
                plan.predicted_traffic().send_recv.bytes
                    < f32_plan.predicted_traffic().send_recv.bytes
            );

            let plan = pass_kv_quant_bidi_plan(&locals, layout).unwrap();
            let predicted = plan.predicted_traffic();
            let (_, report) = run_ring_checked(&plan, |comm| {
                ring_pass_kv_prefill_quant_bidi(comm, &p, &locals[comm.rank()], layout)
            }).unwrap();
            predicted.check_report(&report).unwrap();
        }
    }
}

/// At a production-scale head dim (64) the compressed hop carries
/// `(d + 4) / (4 d)` of the f32 bytes — a ≥3.7× per-hop wire reduction,
/// pinned here against the plan builders' own byte accounting.
#[test]
fn compressed_hops_cut_wire_bytes_by_over_3x() {
    let p = AttentionParams::for_shape(GqaShape::new(4, 2, 64).unwrap());
    let lens = [(8, 2), (6, 0), (7, 5), (5, 1)];
    let locals = build_locals(&lens, &p, 42);
    let f32_bytes = pass_kv_plan_on(&locals, RingLayout::Flat)
        .unwrap()
        .predicted_traffic()
        .send_recv
        .bytes;
    let quant_bytes = pass_kv_quant_plan_on(&locals, RingLayout::Flat)
        .unwrap()
        .predicted_traffic()
        .send_recv
        .bytes;
    let ratio = f32_bytes as f64 / quant_bytes as f64;
    // Exactly 4·64/(64+4) = 3.7647…
    assert!(ratio > 3.7, "wire reduction {ratio:.2}x");
}
