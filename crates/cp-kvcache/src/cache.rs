//! Paged KV storage with per-sequence page tables.

use std::collections::HashMap;

use cp_tensor::Tensor;

use crate::CacheError;

/// Identifier of a cached sequence (stable across turns of a conversation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeqId(pub u64);

impl std::fmt::Display for SeqId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seq#{}", self.0)
    }
}

/// Configuration of a [`PagedKvCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvCacheConfig {
    /// Tokens per page.
    pub page_size: usize,
    /// Number of KV heads stored (`N_KV`, possibly divided by the TP group).
    pub n_kv_heads: usize,
    /// Per-head embedding dimension (`D_H`).
    pub head_dim: usize,
    /// Maximum pages the pool may allocate; `None` means unbounded.
    pub max_pages: Option<usize>,
}

impl KvCacheConfig {
    /// A config with unbounded capacity.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(page_size: usize, n_kv_heads: usize, head_dim: usize) -> Self {
        assert!(
            page_size > 0 && n_kv_heads > 0 && head_dim > 0,
            "cache dimensions must be positive"
        );
        KvCacheConfig {
            page_size,
            n_kv_heads,
            head_dim,
            max_pages: None,
        }
    }

    /// Returns the config with a page-pool capacity limit.
    pub fn with_max_pages(mut self, max_pages: usize) -> Self {
        self.max_pages = Some(max_pages);
        self
    }

    /// Elements stored per token row (`n_kv_heads * head_dim`) — the page
    /// geometry attention kernels need to walk cached K/V in place.
    pub fn token_numel(&self) -> usize {
        self.n_kv_heads * self.head_dim
    }
}

/// One fixed-size page: K, V and position metadata for up to `page_size`
/// tokens.
#[derive(Debug, Clone)]
pub(crate) struct Page {
    k: Vec<f32>,
    v: Vec<f32>,
    pos: Vec<usize>,
    used: usize,
}

impl Page {
    fn new(config: &KvCacheConfig) -> Self {
        Page {
            k: vec![0.0; config.page_size * config.token_numel()],
            v: vec![0.0; config.page_size * config.token_numel()],
            pos: vec![0; config.page_size],
            used: 0,
        }
    }

    /// The first `n` elements of the page's K storage.
    pub(crate) fn k_slice(&self, n: usize) -> &[f32] {
        &self.k[..n]
    }

    /// The first `n` elements of the page's V storage.
    pub(crate) fn v_slice(&self, n: usize) -> &[f32] {
        &self.v[..n]
    }

    /// The first `n` token positions stored in the page.
    pub(crate) fn pos_slice(&self, n: usize) -> &[usize] {
        &self.pos[..n]
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct SeqState {
    pub(crate) pages: Vec<usize>,
    pub(crate) len: usize,
}

/// Occupancy statistics of a [`PagedKvCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Pages currently allocated to sequences.
    pub allocated_pages: usize,
    /// Pages sitting in the free list (allocated from the pool but unused).
    pub free_pages: usize,
    /// Cached tokens across all sequences.
    pub tokens: usize,
    /// Live sequences.
    pub sequences: usize,
}

impl CacheStats {
    /// Fraction of allocated page slots holding real tokens (1.0 = no
    /// internal fragmentation).
    pub fn utilization(&self, page_size: usize) -> f64 {
        if self.allocated_pages == 0 {
            return 1.0;
        }
        self.tokens as f64 / (self.allocated_pages * page_size) as f64
    }
}

/// A paged KV cache for one attention layer on one rank.
///
/// Tokens are appended with explicit global positions (CP ranks hold
/// non-contiguous slices of each sequence) and gathered back as contiguous
/// tensors plus the position array — exactly the inputs the position-masked
/// attention kernels in `cp-attention` take.
#[derive(Debug)]
pub struct PagedKvCache {
    config: KvCacheConfig,
    pool: Vec<Page>,
    free: Vec<usize>,
    seqs: HashMap<u64, SeqState>,
}

impl PagedKvCache {
    /// Creates an empty cache.
    pub fn new(config: KvCacheConfig) -> Self {
        PagedKvCache {
            config,
            pool: Vec::new(),
            free: Vec::new(),
            seqs: HashMap::new(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &KvCacheConfig {
        &self.config
    }

    /// Registers a new, empty sequence.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::DuplicateSequence`] if the id is live.
    pub fn create_sequence(&mut self, seq: SeqId) -> Result<(), CacheError> {
        if self.seqs.contains_key(&seq.0) {
            return Err(CacheError::DuplicateSequence { seq: seq.0 });
        }
        self.seqs.insert(seq.0, SeqState::default());
        Ok(())
    }

    /// Returns `true` if the sequence exists.
    pub fn contains(&self, seq: SeqId) -> bool {
        self.seqs.contains_key(&seq.0)
    }

    /// Cached token count for a sequence.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownSequence`] if absent.
    pub fn seq_len(&self, seq: SeqId) -> Result<usize, CacheError> {
        self.seqs
            .get(&seq.0)
            .map(|s| s.len)
            .ok_or(CacheError::UnknownSequence { seq: seq.0 })
    }

    /// Pages currently held by a sequence — the per-session occupancy an
    /// eviction policy weighs.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownSequence`] if absent.
    pub fn seq_pages(&self, seq: SeqId) -> Result<usize, CacheError> {
        self.seqs
            .get(&seq.0)
            .map(|s| s.pages.len())
            .ok_or(CacheError::UnknownSequence { seq: seq.0 })
    }

    /// Ids of all live sequences, sorted.
    pub fn sequence_ids(&self) -> Vec<SeqId> {
        let mut ids: Vec<SeqId> = self.seqs.keys().map(|&k| SeqId(k)).collect();
        ids.sort();
        ids
    }

    pub(crate) fn seq_state(&self, seq: SeqId) -> Result<(&SeqState, &KvCacheConfig), CacheError> {
        let state = self
            .seqs
            .get(&seq.0)
            .ok_or(CacheError::UnknownSequence { seq: seq.0 })?;
        Ok((state, &self.config))
    }

    pub(crate) fn page(&self, idx: usize) -> Option<&Page> {
        self.pool.get(idx)
    }

    fn allocate_page(&mut self) -> Result<usize, CacheError> {
        if let Some(idx) = self.free.pop() {
            return Ok(idx);
        }
        if let Some(max) = self.config.max_pages {
            if self.pool.len() >= max {
                return Err(CacheError::OutOfPages {
                    needed: 1,
                    available: 0,
                });
            }
        }
        self.pool.push(Page::new(&self.config));
        Ok(self.pool.len() - 1)
    }

    fn check_kv_shape(&self, t: &Tensor, input: &'static str) -> Result<usize, CacheError> {
        let s = t.shape();
        if s.len() != 3 || s[1] != self.config.n_kv_heads || s[2] != self.config.head_dim {
            return Err(CacheError::BadShape {
                input,
                expected: vec![self.config.n_kv_heads, self.config.head_dim],
                actual: s.to_vec(),
            });
        }
        Ok(s[0])
    }

    /// Appends `t` tokens of K/V (shape `[t, n_kv_heads, head_dim]`) with
    /// their global positions to a sequence.
    ///
    /// Appending is transactional with respect to capacity: the needed pages
    /// are reserved up front, so an [`CacheError::OutOfPages`] failure
    /// leaves the sequence unchanged.
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownSequence`], [`CacheError::BadShape`],
    /// [`CacheError::PositionCountMismatch`] or [`CacheError::OutOfPages`].
    #[allow(clippy::needless_range_loop)] // i indexes k/v rows and positions in lockstep
    pub fn append(
        &mut self,
        seq: SeqId,
        k: &Tensor,
        v: &Tensor,
        positions: &[usize],
    ) -> Result<(), CacheError> {
        let t = self.check_kv_shape(k, "k")?;
        let tv = self.check_kv_shape(v, "v")?;
        if tv != t {
            return Err(CacheError::BadShape {
                input: "v",
                expected: vec![self.config.n_kv_heads, self.config.head_dim],
                actual: v.shape().to_vec(),
            });
        }
        if positions.len() != t {
            return Err(CacheError::PositionCountMismatch {
                tokens: t,
                positions: positions.len(),
            });
        }
        if !self.seqs.contains_key(&seq.0) {
            return Err(CacheError::UnknownSequence { seq: seq.0 });
        }
        self.reserve_pages(seq, t)?;
        let state = self.seqs.get_mut(&seq.0).expect("checked above");

        // Copy token rows into pages.
        let tok = self.config.token_numel();
        let ps = self.config.page_size;
        for i in 0..t {
            let global_idx = state.len + i;
            let page_idx = state.pages[global_idx / ps];
            let slot = global_idx % ps;
            let page = &mut self.pool[page_idx];
            page.k[slot * tok..(slot + 1) * tok].copy_from_slice(k.row(i));
            page.v[slot * tok..(slot + 1) * tok].copy_from_slice(v.row(i));
            page.pos[slot] = positions[i];
            page.used = page.used.max(slot + 1);
        }
        state.len += t;
        Ok(())
    }

    /// Appends selected rows of K/V (shape `[t, n_kv_heads, head_dim]`,
    /// `rows[i] < t`) with their global positions, copying each row
    /// straight into its page slot.
    ///
    /// This is the CP sharding hot path: a rank appends the non-contiguous
    /// subset of the projected K/V it owns without a `gather_dim0` staging
    /// tensor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PagedKvCache::append`]; additionally
    /// [`CacheError::BadShape`] if a row index is out of range.
    pub fn append_rows(
        &mut self,
        seq: SeqId,
        k: &Tensor,
        v: &Tensor,
        rows: &[usize],
        positions: &[usize],
    ) -> Result<(), CacheError> {
        let t_k = self.check_kv_shape(k, "k")?;
        let t_v = self.check_kv_shape(v, "v")?;
        if t_v != t_k {
            return Err(CacheError::BadShape {
                input: "v",
                expected: vec![self.config.n_kv_heads, self.config.head_dim],
                actual: v.shape().to_vec(),
            });
        }
        if let Some(&bad) = rows.iter().find(|&&r| r >= t_k) {
            return Err(CacheError::BadShape {
                input: "rows",
                expected: vec![t_k],
                actual: vec![bad],
            });
        }
        if positions.len() != rows.len() {
            return Err(CacheError::PositionCountMismatch {
                tokens: rows.len(),
                positions: positions.len(),
            });
        }
        if !self.seqs.contains_key(&seq.0) {
            return Err(CacheError::UnknownSequence { seq: seq.0 });
        }
        self.reserve_pages(seq, rows.len())?;
        let state = self.seqs.get_mut(&seq.0).expect("checked above");

        let tok = self.config.token_numel();
        let ps = self.config.page_size;
        for (i, (&row, &p)) in rows.iter().zip(positions).enumerate() {
            let global_idx = state.len + i;
            let page_idx = state.pages[global_idx / ps];
            let slot = global_idx % ps;
            let page = &mut self.pool[page_idx];
            page.k[slot * tok..(slot + 1) * tok].copy_from_slice(k.row(row));
            page.v[slot * tok..(slot + 1) * tok].copy_from_slice(v.row(row));
            page.pos[slot] = p;
            page.used = page.used.max(slot + 1);
        }
        state.len += rows.len();
        Ok(())
    }

    /// Reserves enough pages for `t` more tokens, transactionally: a
    /// capacity failure leaves the sequence unchanged.
    fn reserve_pages(&mut self, seq: SeqId, t: usize) -> Result<(), CacheError> {
        let (cur_len, cur_pages) = {
            let s = &self.seqs[&seq.0];
            (s.len, s.pages.len())
        };
        let needed_total_pages = (cur_len + t).div_ceil(self.config.page_size);
        let new_pages_needed = needed_total_pages.saturating_sub(cur_pages);
        if let Some(max) = self.config.max_pages {
            let in_use = self.pool.len() - self.free.len();
            let headroom = self.free.len() + max.saturating_sub(self.pool.len());
            if new_pages_needed > headroom {
                return Err(CacheError::OutOfPages {
                    needed: new_pages_needed,
                    available: headroom,
                });
            }
            debug_assert!(in_use <= max);
        }
        let mut reserved = Vec::with_capacity(new_pages_needed);
        for _ in 0..new_pages_needed {
            let idx = self.allocate_page().expect("capacity checked above");
            reserved.push(idx);
        }
        self.seqs
            .get_mut(&seq.0)
            .expect("checked by caller")
            .pages
            .extend(reserved);
        Ok(())
    }

    /// Gathers a sequence's cached K, V (shape `[len, n_kv_heads,
    /// head_dim]`) and positions in append order.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownSequence`] if absent.
    pub fn gather(&self, seq: SeqId) -> Result<(Tensor, Tensor, Vec<usize>), CacheError> {
        let state = self
            .seqs
            .get(&seq.0)
            .ok_or(CacheError::UnknownSequence { seq: seq.0 })?;
        let tok = self.config.token_numel();
        let ps = self.config.page_size;
        let mut kd = Vec::with_capacity(state.len * tok);
        let mut vd = Vec::with_capacity(state.len * tok);
        let mut pos = Vec::with_capacity(state.len);
        for i in 0..state.len {
            let page = &self.pool[state.pages[i / ps]];
            let slot = i % ps;
            kd.extend_from_slice(&page.k[slot * tok..(slot + 1) * tok]);
            vd.extend_from_slice(&page.v[slot * tok..(slot + 1) * tok]);
            pos.push(page.pos[slot]);
        }
        let shape = [state.len, self.config.n_kv_heads, self.config.head_dim];
        Ok((
            Tensor::from_vec(kd, &shape)?,
            Tensor::from_vec(vd, &shape)?,
            pos,
        ))
    }

    /// Positions of a sequence's cached tokens, in append order.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownSequence`] if absent.
    pub fn positions(&self, seq: SeqId) -> Result<Vec<usize>, CacheError> {
        let state = self
            .seqs
            .get(&seq.0)
            .ok_or(CacheError::UnknownSequence { seq: seq.0 })?;
        let ps = self.config.page_size;
        Ok((0..state.len)
            .map(|i| self.pool[state.pages[i / ps]].pos[i % ps])
            .collect())
    }

    /// Shrinks a sequence to `new_len` tokens (dropping the most recent
    /// ones), releasing now-empty pages. Supports speculative-decoding
    /// rollback.
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownSequence`] or [`CacheError::BadTruncate`] if
    /// `new_len` exceeds the current length.
    pub fn truncate(&mut self, seq: SeqId, new_len: usize) -> Result<(), CacheError> {
        let ps = self.config.page_size;
        let state = self
            .seqs
            .get_mut(&seq.0)
            .ok_or(CacheError::UnknownSequence { seq: seq.0 })?;
        if new_len > state.len {
            return Err(CacheError::BadTruncate {
                requested: new_len,
                current: state.len,
            });
        }
        let pages_needed = new_len.div_ceil(ps);
        let released: Vec<usize> = state.pages.split_off(pages_needed);
        state.len = new_len;
        let last_kept = state.pages.last().copied();
        // Roll a partial last page's used watermark back too, so it
        // keeps meaning "slots holding live data" across truncations
        // (same invariant as the quantized pool).
        let tail = new_len % ps;
        if tail > 0 {
            if let Some(last) = last_kept {
                self.pool[last].used = self.pool[last].used.min(tail);
            }
        }
        for idx in released {
            self.pool[idx].used = 0;
            self.free.push(idx);
        }
        Ok(())
    }

    /// Removes a sequence, returning its pages to the free list.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownSequence`] if absent.
    pub fn free_sequence(&mut self, seq: SeqId) -> Result<(), CacheError> {
        let state = self
            .seqs
            .remove(&seq.0)
            .ok_or(CacheError::UnknownSequence { seq: seq.0 })?;
        for idx in state.pages {
            self.pool[idx].used = 0;
            self.free.push(idx);
        }
        Ok(())
    }

    /// Current occupancy statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            allocated_pages: self.pool.len() - self.free.len(),
            free_pages: self.free.len(),
            tokens: self.seqs.values().map(|s| s.len).sum(),
            sequences: self.seqs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_tensor::DetRng;

    fn cfg() -> KvCacheConfig {
        KvCacheConfig::new(4, 2, 3)
    }

    fn kv(rng: &mut DetRng, t: usize) -> (Tensor, Tensor) {
        (rng.tensor(&[t, 2, 3]), rng.tensor(&[t, 2, 3]))
    }

    #[test]
    fn append_and_gather_roundtrip() {
        let mut cache = PagedKvCache::new(cfg());
        let seq = SeqId(1);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(1);
        let (k, v) = kv(&mut rng, 6);
        let pos = [0, 2, 4, 6, 8, 10];
        cache.append(seq, &k, &v, &pos).unwrap();
        let (gk, gv, gpos) = cache.gather(seq).unwrap();
        assert_eq!(gk, k);
        assert_eq!(gv, v);
        assert_eq!(gpos, pos.to_vec());
        assert_eq!(cache.seq_len(seq).unwrap(), 6);
    }

    #[test]
    fn append_rows_matches_gather_then_append() {
        // The sharding hot path: appending a non-contiguous row subset
        // directly must equal the old staging path (gather_dim0 into a
        // contiguous tensor, then append) bit for bit.
        let mut rng = DetRng::new(21);
        let (k, v) = kv(&mut rng, 9);
        let rows = [1usize, 4, 5, 8];
        let positions: Vec<usize> = rows.to_vec();

        let mut direct = PagedKvCache::new(cfg());
        direct.create_sequence(SeqId(0)).unwrap();
        direct
            .append_rows(SeqId(0), &k, &v, &rows, &positions)
            .unwrap();

        let mut staged = PagedKvCache::new(cfg());
        staged.create_sequence(SeqId(0)).unwrap();
        let sk = k.gather_dim0(&rows).unwrap();
        let sv = v.gather_dim0(&rows).unwrap();
        staged.append(SeqId(0), &sk, &sv, &positions).unwrap();

        assert_eq!(
            direct.gather(SeqId(0)).unwrap(),
            staged.gather(SeqId(0)).unwrap()
        );

        // Out-of-range row index is a typed error, not a panic, and the
        // failed call leaves the sequence unchanged.
        assert!(matches!(
            direct.append_rows(SeqId(0), &k, &v, &[9], &[10]),
            Err(CacheError::BadShape { input: "rows", .. })
        ));
        assert_eq!(direct.seq_len(SeqId(0)).unwrap(), 4);
    }

    #[test]
    fn multiple_appends_accumulate_across_page_boundaries() {
        let mut cache = PagedKvCache::new(cfg()); // page_size 4
        let seq = SeqId(2);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(2);
        let (k1, v1) = kv(&mut rng, 3);
        let (k2, v2) = kv(&mut rng, 3);
        cache.append(seq, &k1, &v1, &[0, 1, 2]).unwrap();
        cache.append(seq, &k2, &v2, &[3, 4, 5]).unwrap();
        let (gk, gv, pos) = cache.gather(seq).unwrap();
        assert_eq!(gk, Tensor::concat_dim0([&k1, &k2]).unwrap());
        assert_eq!(gv, Tensor::concat_dim0([&v1, &v2]).unwrap());
        assert_eq!(pos, vec![0, 1, 2, 3, 4, 5]);
        // 6 tokens over 4-token pages: 2 pages allocated.
        assert_eq!(cache.stats().allocated_pages, 2);
    }

    #[test]
    fn capacity_limit_enforced_transactionally() {
        let mut cache = PagedKvCache::new(cfg().with_max_pages(2)); // 8 tokens
        let seq = SeqId(3);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(3);
        let (k, v) = kv(&mut rng, 8);
        let pos: Vec<usize> = (0..8).collect();
        cache.append(seq, &k, &v, &pos).unwrap();
        let (k2, v2) = kv(&mut rng, 1);
        let err = cache.append(seq, &k2, &v2, &[8]).unwrap_err();
        assert!(matches!(err, CacheError::OutOfPages { .. }));
        // Sequence unchanged after the failed append.
        assert_eq!(cache.seq_len(seq).unwrap(), 8);
        let (gk, ..) = cache.gather(seq).unwrap();
        assert_eq!(gk, k);
    }

    #[test]
    fn freed_pages_are_reused() {
        let mut cache = PagedKvCache::new(cfg().with_max_pages(2));
        let mut rng = DetRng::new(4);
        let a = SeqId(1);
        cache.create_sequence(a).unwrap();
        let (k, v) = kv(&mut rng, 8);
        cache
            .append(a, &k, &v, &(0..8).collect::<Vec<_>>())
            .unwrap();
        cache.free_sequence(a).unwrap();
        assert_eq!(cache.stats().free_pages, 2);
        // A new sequence can use the released pages despite max_pages = 2.
        let b = SeqId(2);
        cache.create_sequence(b).unwrap();
        let (k2, v2) = kv(&mut rng, 8);
        cache
            .append(b, &k2, &v2, &(0..8).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(cache.stats().allocated_pages, 2);
        assert_eq!(cache.stats().free_pages, 0);
    }

    #[test]
    fn truncate_rolls_back_and_releases_pages() {
        let mut cache = PagedKvCache::new(cfg());
        let seq = SeqId(5);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(5);
        let (k, v) = kv(&mut rng, 10);
        let pos: Vec<usize> = (0..10).collect();
        cache.append(seq, &k, &v, &pos).unwrap();
        assert_eq!(cache.stats().allocated_pages, 3);
        cache.truncate(seq, 4).unwrap();
        assert_eq!(cache.seq_len(seq).unwrap(), 4);
        assert_eq!(cache.stats().allocated_pages, 1);
        let (gk, _, gpos) = cache.gather(seq).unwrap();
        assert_eq!(gk, k.slice_dim0(0..4).unwrap());
        assert_eq!(gpos, vec![0, 1, 2, 3]);
        // Appending after truncate continues from the new length.
        let (k2, v2) = kv(&mut rng, 2);
        cache.append(seq, &k2, &v2, &[4, 5]).unwrap();
        assert_eq!(cache.seq_len(seq).unwrap(), 6);
        assert!(matches!(
            cache.truncate(seq, 100),
            Err(CacheError::BadTruncate { .. })
        ));
    }

    #[test]
    fn unknown_and_duplicate_sequences_error() {
        let mut cache = PagedKvCache::new(cfg());
        let seq = SeqId(6);
        assert!(matches!(
            cache.seq_len(seq),
            Err(CacheError::UnknownSequence { seq: 6 })
        ));
        assert!(cache.gather(seq).is_err());
        assert!(cache.free_sequence(seq).is_err());
        cache.create_sequence(seq).unwrap();
        assert!(matches!(
            cache.create_sequence(seq),
            Err(CacheError::DuplicateSequence { seq: 6 })
        ));
    }

    #[test]
    fn shape_validation() {
        let mut cache = PagedKvCache::new(cfg());
        let seq = SeqId(7);
        cache.create_sequence(seq).unwrap();
        let bad = Tensor::zeros(&[2, 3, 3]); // wrong head count
        let good = Tensor::zeros(&[2, 2, 3]);
        assert!(matches!(
            cache.append(seq, &bad, &good, &[0, 1]),
            Err(CacheError::BadShape { input: "k", .. })
        ));
        assert!(matches!(
            cache.append(seq, &good, &bad, &[0, 1]),
            Err(CacheError::BadShape { input: "v", .. })
        ));
        // k/v token count mismatch
        let one = Tensor::zeros(&[1, 2, 3]);
        assert!(cache.append(seq, &good, &one, &[0, 1]).is_err());
        // wrong positions length
        assert!(matches!(
            cache.append(seq, &good, &good, &[0]),
            Err(CacheError::PositionCountMismatch {
                tokens: 2,
                positions: 1
            })
        ));
    }

    #[test]
    fn stats_and_utilization() {
        let mut cache = PagedKvCache::new(cfg());
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.stats().utilization(4), 1.0);
        let seq = SeqId(8);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(8);
        let (k, v) = kv(&mut rng, 5);
        cache.append(seq, &k, &v, &[0, 1, 2, 3, 4]).unwrap();
        let s = cache.stats();
        assert_eq!(s.tokens, 5);
        assert_eq!(s.allocated_pages, 2);
        assert_eq!(s.sequences, 1);
        // 5 tokens over 8 slots.
        assert!((s.utilization(4) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn sequence_ids_sorted() {
        let mut cache = PagedKvCache::new(cfg());
        for id in [5, 1, 3] {
            cache.create_sequence(SeqId(id)).unwrap();
        }
        assert_eq!(cache.sequence_ids(), vec![SeqId(1), SeqId(3), SeqId(5)]);
        assert!(cache.contains(SeqId(3)));
        assert!(!cache.contains(SeqId(2)));
    }

    #[test]
    fn empty_sequence_gathers_empty() {
        let mut cache = PagedKvCache::new(cfg());
        let seq = SeqId(9);
        cache.create_sequence(seq).unwrap();
        let (k, v, pos) = cache.gather(seq).unwrap();
        assert_eq!(k.shape(), &[0, 2, 3]);
        assert_eq!(v.shape(), &[0, 2, 3]);
        assert!(pos.is_empty());
    }

    #[test]
    #[should_panic(expected = "cache dimensions must be positive")]
    fn zero_page_size_panics() {
        KvCacheConfig::new(0, 2, 3);
    }
}
