//! Error type for KV-cache operations.

use std::error::Error;
use std::fmt;

use cp_tensor::TensorError;

/// Error returned by KV-cache operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CacheError {
    /// The sequence id is not present in the cache.
    UnknownSequence {
        /// The missing sequence id.
        seq: u64,
    },
    /// A sequence with this id already exists.
    DuplicateSequence {
        /// The duplicated sequence id.
        seq: u64,
    },
    /// The page pool is exhausted — the OOM condition capacity experiments
    /// probe.
    OutOfPages {
        /// Pages the operation would need.
        needed: usize,
        /// Pages still free.
        available: usize,
    },
    /// Appended tensors do not match the cache's KV head configuration.
    BadShape {
        /// Which input is malformed (`"k"` or `"v"`).
        input: &'static str,
        /// Expected trailing shape `[n_kv_heads, head_dim]`.
        expected: Vec<usize>,
        /// Supplied shape.
        actual: Vec<usize>,
    },
    /// The position array length disagrees with the appended token count.
    PositionCountMismatch {
        /// Tokens being appended.
        tokens: usize,
        /// Positions supplied.
        positions: usize,
    },
    /// A truncate target exceeds the sequence's current length.
    BadTruncate {
        /// Requested new length.
        requested: usize,
        /// Current length.
        current: usize,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::UnknownSequence { seq } => write!(f, "unknown sequence {seq}"),
            CacheError::DuplicateSequence { seq } => write!(f, "sequence {seq} already exists"),
            CacheError::OutOfPages { needed, available } => {
                write!(f, "out of KV-cache pages: need {needed}, have {available}")
            }
            CacheError::BadShape {
                input,
                expected,
                actual,
            } => write!(
                f,
                "`{input}` has shape {actual:?}, expected [*, {}, {}]",
                expected[0], expected[1]
            ),
            CacheError::PositionCountMismatch { tokens, positions } => {
                write!(f, "{positions} positions supplied for {tokens} tokens")
            }
            CacheError::BadTruncate { requested, current } => {
                write!(
                    f,
                    "cannot truncate to {requested}: sequence has {current} tokens"
                )
            }
            CacheError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
        }
    }
}

impl Error for CacheError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CacheError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CacheError {
    fn from(e: TensorError) -> Self {
        CacheError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CacheError::UnknownSequence { seq: 9 }
            .to_string()
            .contains('9'));
        assert!(CacheError::OutOfPages {
            needed: 4,
            available: 1
        }
        .to_string()
        .contains("out of"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CacheError>();
    }
}
