//! Paged, position-aware KV cache for context-parallel inference.
//!
//! Long-context inference stores the key/value projections of every token it
//! has seen (the *KV cache*); the cache grows linearly with context length
//! and is the memory bottleneck the paper distributes across CP ranks. This
//! crate provides the storage substrate:
//!
//! * [`PagedKvCache`] — fixed-size pages with per-sequence page tables, the
//!   PagedAttention-style management the paper assumes (Kwon et al. 2023),
//!   with allocation failure surfaced as [`CacheError::OutOfPages`] so
//!   capacity experiments can observe OOM boundaries.
//! * [`KvView`] — a zero-copy borrowed view of a sequence's pages that
//!   attention kernels consume directly (via `cp_attention::KvSource`),
//!   keeping [`PagedKvCache::gather`] off the decode hot path.
//! * Each cached token carries its **global position**, because a CP rank
//!   holds a *non-contiguous* slice of every sequence under load-balanced
//!   sharding — position metadata is what keeps ring attention exact.
//!
//! One `PagedKvCache` stores one attention layer's cache for one rank; the
//! engine in `cp-core` owns one per (rank, layer).
//!
//! # Example
//!
//! ```
//! use cp_kvcache::{KvCacheConfig, PagedKvCache, SeqId};
//! use cp_tensor::DetRng;
//!
//! # fn main() -> Result<(), cp_kvcache::CacheError> {
//! let config = KvCacheConfig::new(16, 2, 8); // 16-token pages, 2 KV heads, dim 8
//! let mut cache = PagedKvCache::new(config);
//! let seq = SeqId(7);
//! cache.create_sequence(seq)?;
//! let mut rng = DetRng::new(1);
//! let k = rng.tensor(&[3, 2, 8]);
//! let v = rng.tensor(&[3, 2, 8]);
//! cache.append(seq, &k, &v, &[0, 1, 2])?;
//! let (gk, _gv, pos) = cache.gather(seq)?;
//! assert_eq!(gk.shape(), &[3, 2, 8]);
//! assert_eq!(pos, vec![0, 1, 2]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod error;
pub mod quant;
mod view;

pub use cache::{CacheStats, KvCacheConfig, PagedKvCache, SeqId};
pub use error::CacheError;
pub use quant::{QuantKvCache, QuantKvView, QuantizedKv};
pub use view::KvView;
