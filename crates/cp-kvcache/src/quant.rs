//! INT8-quantized KV storage (§2.2's memory-bending techniques).
//!
//! The paper notes KV-cache quantization (2–4× memory reduction) as the
//! orthogonal lever to CP's KV *distribution*; both extend the servable
//! context. This module provides a per-token, per-head symmetric INT8
//! scheme: each `(token, head)` vector stores one `f32` scale plus
//! `head_dim` bytes — a 3.7–3.9× size reduction against f32 at typical
//! head dims — with the round-trip error bounded by `scale / 127 / 2`
//! per element.

use cp_tensor::Tensor;

use crate::CacheError;

/// One quantized KV entry set: INT8 codes plus per-(token, head) scales.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedKv {
    codes: Vec<i8>,
    scales: Vec<f32>,
    tokens: usize,
    n_heads: usize,
    head_dim: usize,
}

impl QuantizedKv {
    /// Quantizes a `[t, heads, head_dim]` tensor symmetrically per
    /// (token, head): `code = round(x / scale)`, `scale = max|x| / 127`.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::BadShape`] for non-rank-3 input.
    pub fn quantize(x: &Tensor) -> Result<Self, CacheError> {
        let s = x.shape();
        if s.len() != 3 {
            return Err(CacheError::BadShape {
                input: "kv",
                expected: vec![0, 0],
                actual: s.to_vec(),
            });
        }
        let (tokens, n_heads, head_dim) = (s[0], s[1], s[2]);
        let mut codes = Vec::with_capacity(tokens * n_heads * head_dim);
        let mut scales = Vec::with_capacity(tokens * n_heads);
        for t in 0..tokens {
            let row = x.row(t);
            for h in 0..n_heads {
                let head = &row[h * head_dim..(h + 1) * head_dim];
                let max = head.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
                let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
                scales.push(scale);
                for &v in head {
                    codes.push((v / scale).round().clamp(-127.0, 127.0) as i8);
                }
            }
        }
        Ok(QuantizedKv {
            codes,
            scales,
            tokens,
            n_heads,
            head_dim,
        })
    }

    /// Reconstructs the (lossy) `[t, heads, head_dim]` tensor.
    pub fn dequantize(&self) -> Tensor {
        let mut data = Vec::with_capacity(self.codes.len());
        for (i, &c) in self.codes.iter().enumerate() {
            let scale = self.scales[i / self.head_dim];
            data.push(c as f32 * scale);
        }
        Tensor::from_vec(data, &[self.tokens, self.n_heads, self.head_dim])
            .expect("sizes consistent by construction")
    }

    /// Number of quantized tokens.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Storage bytes of this entry set (codes + scales).
    pub fn storage_bytes(&self) -> usize {
        self.codes.len() + self.scales.len() * 4
    }

    /// Storage bytes the same data occupies unquantized (f32).
    pub fn f32_bytes(&self) -> usize {
        self.codes.len() * 4
    }

    /// Compression ratio vs f32 storage.
    pub fn compression_ratio(&self) -> f64 {
        if self.storage_bytes() == 0 {
            return 1.0;
        }
        self.f32_bytes() as f64 / self.storage_bytes() as f64
    }

    /// Worst-case absolute reconstruction error: `max(scale) / 2`
    /// (half a quantization step).
    pub fn error_bound(&self) -> f32 {
        self.scales.iter().fold(0.0f32, |a, &s| a.max(s)) / 2.0
    }

    /// Appends another quantized block of the same head geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::BadShape`] if head geometry differs.
    pub fn extend(&mut self, other: &QuantizedKv) -> Result<(), CacheError> {
        if other.n_heads != self.n_heads || other.head_dim != self.head_dim {
            return Err(CacheError::BadShape {
                input: "kv",
                expected: vec![self.n_heads, self.head_dim],
                actual: vec![other.n_heads, other.head_dim],
            });
        }
        self.codes.extend_from_slice(&other.codes);
        self.scales.extend_from_slice(&other.scales);
        self.tokens += other.tokens;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_tensor::DetRng;

    #[test]
    fn roundtrip_error_within_bound() {
        let x = DetRng::new(1).tensor(&[8, 2, 16]);
        let q = QuantizedKv::quantize(&x).unwrap();
        let back = q.dequantize();
        let err = x.max_abs_diff(&back).unwrap();
        assert!(
            err <= q.error_bound() + 1e-7,
            "{err} vs {}",
            q.error_bound()
        );
        // For inputs in [-1, 1): scale <= 1/127, so error < 0.004.
        assert!(err < 0.004, "{err}");
    }

    #[test]
    fn compression_ratio_near_4x() {
        let x = DetRng::new(2).tensor(&[10, 2, 64]);
        let q = QuantizedKv::quantize(&x).unwrap();
        // 64 bytes of codes + 4 bytes of scale per head vs 256 bytes f32.
        let ratio = q.compression_ratio();
        assert!((ratio - 256.0 / 68.0).abs() < 1e-9, "{ratio}");
        assert!(ratio > 3.7);
    }

    #[test]
    fn per_head_scaling_preserves_small_heads() {
        // A tiny-magnitude head next to a huge one keeps its precision:
        // per-head scales isolate them.
        let mut x = Tensor::zeros(&[1, 2, 4]);
        for d in 0..4 {
            x.set(&[0, 0, d], 1000.0 + d as f32).unwrap();
            x.set(&[0, 1, d], 0.001 * (d as f32 + 1.0)).unwrap();
        }
        let q = QuantizedKv::quantize(&x).unwrap();
        let back = q.dequantize();
        // The small head's relative error stays small.
        let small_err = (back.at(&[0, 1, 3]).unwrap() - 0.004).abs() / 0.004;
        assert!(small_err < 0.01, "{small_err}");
    }

    #[test]
    fn zero_input_quantizes_cleanly() {
        let x = Tensor::zeros(&[3, 1, 4]);
        let q = QuantizedKv::quantize(&x).unwrap();
        assert_eq!(q.dequantize(), x);
    }

    #[test]
    fn extend_concatenates() {
        let a = DetRng::new(3).tensor(&[2, 1, 4]);
        let b = DetRng::new(4).tensor(&[3, 1, 4]);
        let mut qa = QuantizedKv::quantize(&a).unwrap();
        let qb = QuantizedKv::quantize(&b).unwrap();
        qa.extend(&qb).unwrap();
        assert_eq!(qa.tokens(), 5);
        let joined = qa.dequantize();
        assert_eq!(joined.shape(), &[5, 1, 4]);
        // First two tokens still match a's quantization.
        let front = joined.slice_dim0(0..2).unwrap();
        assert!(front
            .approx_eq(&QuantizedKv::quantize(&a).unwrap().dequantize(), 1e-6)
            .unwrap());
        // Geometry mismatch rejected.
        let c = QuantizedKv::quantize(&DetRng::new(5).tensor(&[1, 2, 4])).unwrap();
        assert!(qa.extend(&c).is_err());
    }

    #[test]
    fn rejects_non_rank3() {
        assert!(QuantizedKv::quantize(&Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn attention_on_dequantized_kv_stays_close() {
        // The end-to-end claim: attention over quantized-then-dequantized
        // KV approximates exact attention (the paper's "lossless" CP can
        // be stacked with lossy quantization orthogonally).
        use cp_attention::{naive_gqa_attention, AttentionParams, GqaShape};
        let params = AttentionParams::for_shape(GqaShape::new(4, 2, 16).unwrap());
        let mut rng = DetRng::new(6);
        let t = 24;
        let q = rng.tensor(&[t, 4, 16]);
        let k = rng.tensor(&[t, 2, 16]);
        let v = rng.tensor(&[t, 2, 16]);
        let pos: Vec<usize> = (0..t).collect();
        let exact = naive_gqa_attention(&q, &k, &v, &params, &pos, &pos).unwrap();
        let kq = QuantizedKv::quantize(&k).unwrap().dequantize();
        let vq = QuantizedKv::quantize(&v).unwrap().dequantize();
        let approx = naive_gqa_attention(&q, &kq, &vq, &params, &pos, &pos).unwrap();
        let err = exact.out.max_abs_diff(&approx.out).unwrap();
        assert!(err < 0.02, "attention error {err}");
    }
}
