//! INT8-quantized KV storage (§2.2's memory-bending techniques).
//!
//! The paper notes KV-cache quantization (2–4× memory reduction) as the
//! orthogonal lever to CP's KV *distribution*; both extend the servable
//! context. This module provides a per-token, per-head symmetric INT8
//! scheme: each `(token, head)` vector stores one `f32` scale plus
//! `head_dim` bytes — a 3.7–3.9× size reduction against f32 at typical
//! head dims — with the round-trip error bounded by `scale / 127 / 2`
//! per element.

use std::collections::HashMap;

use cp_attention::KvSource;
use cp_tensor::Tensor;

use crate::{CacheError, CacheStats, KvCacheConfig, SeqId};

/// Quantizes one `(token, head)` vector symmetrically into `codes_out`,
/// returning the scale: `scale = max|x| / 127` (1.0 for an all-zero head),
/// `code = round(x / scale)` clamped to `±127`.
///
/// This is the **only** quantization arithmetic in the crate: both the
/// staging [`QuantizedKv::quantize`] path and the in-place
/// [`QuantKvCache::append`] page writes go through it, so the two are
/// bitwise interchangeable by construction.
#[inline]
pub(crate) fn quantize_head_into(head: &[f32], codes_out: &mut [i8]) -> f32 {
    let max = head.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
    let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
    for (c, &v) in codes_out.iter_mut().zip(head) {
        *c = (v / scale).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// One quantized KV entry set: INT8 codes plus per-(token, head) scales.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedKv {
    codes: Vec<i8>,
    scales: Vec<f32>,
    tokens: usize,
    n_heads: usize,
    head_dim: usize,
}

impl QuantizedKv {
    /// Quantizes a `[t, heads, head_dim]` tensor symmetrically per
    /// (token, head): `code = round(x / scale)`, `scale = max|x| / 127`.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::BadShape`] for non-rank-3 input.
    pub fn quantize(x: &Tensor) -> Result<Self, CacheError> {
        let s = x.shape();
        if s.len() != 3 {
            return Err(CacheError::BadShape {
                input: "kv",
                expected: vec![0, 0],
                actual: s.to_vec(),
            });
        }
        let (tokens, n_heads, head_dim) = (s[0], s[1], s[2]);
        let mut codes = vec![0i8; tokens * n_heads * head_dim];
        let mut scales = Vec::with_capacity(tokens * n_heads);
        for (head, codes_out) in x
            .as_slice()
            .chunks_exact(head_dim.max(1))
            .zip(codes.chunks_exact_mut(head_dim.max(1)))
        {
            scales.push(quantize_head_into(head, codes_out));
        }
        scales.resize(tokens * n_heads, 1.0); // zero-dim degenerate shapes
        Ok(QuantizedKv {
            codes,
            scales,
            tokens,
            n_heads,
            head_dim,
        })
    }

    /// Builds a block from raw parts (e.g. decoded off the wire).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::BadShape`] if `codes` / `scales` lengths
    /// disagree with `tokens * n_heads * head_dim` / `tokens * n_heads`.
    pub fn from_parts(
        codes: Vec<i8>,
        scales: Vec<f32>,
        tokens: usize,
        n_heads: usize,
        head_dim: usize,
    ) -> Result<Self, CacheError> {
        if codes.len() != tokens * n_heads * head_dim || scales.len() != tokens * n_heads {
            return Err(CacheError::BadShape {
                input: "kv",
                expected: vec![tokens, n_heads, head_dim],
                actual: vec![codes.len(), scales.len()],
            });
        }
        Ok(QuantizedKv {
            codes,
            scales,
            tokens,
            n_heads,
            head_dim,
        })
    }

    /// The INT8 codes, `[tokens * n_heads * head_dim]` in token-major order.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// The per-(token, head) scales, `[tokens * n_heads]`.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Number of heads per token.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Per-head embedding dimension.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Splits into the first `mid` tokens and the rest. Codes and scales
    /// are copied verbatim, so `join`ing the halves back with
    /// [`QuantizedKv::extend`] round-trips **exactly** — the invariant the
    /// bidirectional ring's half-payload hops rely on.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::BadTruncate`] if `mid` exceeds the token count.
    pub fn split_at(&self, mid: usize) -> Result<(QuantizedKv, QuantizedKv), CacheError> {
        if mid > self.tokens {
            return Err(CacheError::BadTruncate {
                requested: mid,
                current: self.tokens,
            });
        }
        let row = self.n_heads * self.head_dim;
        let mk = |codes: Vec<i8>, scales: Vec<f32>, tokens: usize| QuantizedKv {
            codes,
            scales,
            tokens,
            n_heads: self.n_heads,
            head_dim: self.head_dim,
        };
        Ok((
            mk(
                self.codes[..mid * row].to_vec(),
                self.scales[..mid * self.n_heads].to_vec(),
                mid,
            ),
            mk(
                self.codes[mid * row..].to_vec(),
                self.scales[mid * self.n_heads..].to_vec(),
                self.tokens - mid,
            ),
        ))
    }

    /// Grows to `new_tokens` tokens by appending zero codes with scale 1.0 —
    /// rows that dequantize to exact zeros, matching the f32 ring's
    /// zero-padded `PAD` slots bit for bit. No-op if already that long.
    pub fn pad_to(&mut self, new_tokens: usize) {
        if new_tokens <= self.tokens {
            return;
        }
        let extra = new_tokens - self.tokens;
        self.codes
            .resize(self.codes.len() + extra * self.n_heads * self.head_dim, 0);
        self.scales
            .resize(self.scales.len() + extra * self.n_heads, 1.0);
        self.tokens = new_tokens;
    }

    /// Reconstructs the (lossy) `[t, heads, head_dim]` tensor.
    pub fn dequantize(&self) -> Tensor {
        let mut data = Vec::with_capacity(self.codes.len());
        for (i, &c) in self.codes.iter().enumerate() {
            let scale = self.scales[i / self.head_dim];
            data.push(c as f32 * scale);
        }
        Tensor::from_vec(data, &[self.tokens, self.n_heads, self.head_dim])
            .expect("sizes consistent by construction")
    }

    /// Number of quantized tokens.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Storage bytes of this entry set (codes + scales).
    pub fn storage_bytes(&self) -> usize {
        self.codes.len() + self.scales.len() * 4
    }

    /// Storage bytes the same data occupies unquantized (f32).
    pub fn f32_bytes(&self) -> usize {
        self.codes.len() * 4
    }

    /// Compression ratio vs f32 storage.
    pub fn compression_ratio(&self) -> f64 {
        if self.storage_bytes() == 0 {
            return 1.0;
        }
        self.f32_bytes() as f64 / self.storage_bytes() as f64
    }

    /// Worst-case absolute reconstruction error: `max(scale) / 2`
    /// (half a quantization step).
    pub fn error_bound(&self) -> f32 {
        self.scales.iter().fold(0.0f32, |a, &s| a.max(s)) / 2.0
    }

    /// Appends another quantized block of the same head geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::BadShape`] if head geometry differs.
    pub fn extend(&mut self, other: &QuantizedKv) -> Result<(), CacheError> {
        if other.n_heads != self.n_heads || other.head_dim != self.head_dim {
            return Err(CacheError::BadShape {
                input: "kv",
                expected: vec![self.n_heads, self.head_dim],
                actual: vec![other.n_heads, other.head_dim],
            });
        }
        self.codes.extend_from_slice(&other.codes);
        self.scales.extend_from_slice(&other.scales);
        self.tokens += other.tokens;
        Ok(())
    }

    /// Shrinks to the first `new_tokens` tokens, dropping the most recent
    /// codes and scales — the inverse of [`QuantizedKv::extend`], used to
    /// roll back speculative appends.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::BadTruncate`] if `new_tokens` exceeds the
    /// current token count.
    pub fn truncate(&mut self, new_tokens: usize) -> Result<(), CacheError> {
        if new_tokens > self.tokens {
            return Err(CacheError::BadTruncate {
                requested: new_tokens,
                current: self.tokens,
            });
        }
        self.codes
            .truncate(new_tokens * self.n_heads * self.head_dim);
        self.scales.truncate(new_tokens * self.n_heads);
        self.tokens = new_tokens;
        Ok(())
    }
}

/// One fixed-size quantized page: INT8 codes, per-(token, head) scales and
/// position metadata for up to `page_size` tokens.
#[derive(Debug, Clone)]
struct QuantPage {
    k_codes: Vec<i8>,
    k_scales: Vec<f32>,
    v_codes: Vec<i8>,
    v_scales: Vec<f32>,
    pos: Vec<usize>,
    used: usize,
}

impl QuantPage {
    fn new(config: &KvCacheConfig) -> Self {
        QuantPage {
            k_codes: vec![0; config.page_size * config.token_numel()],
            k_scales: vec![0.0; config.page_size * config.n_kv_heads],
            v_codes: vec![0; config.page_size * config.token_numel()],
            v_scales: vec![0.0; config.page_size * config.n_kv_heads],
            pos: vec![0; config.page_size],
            used: 0,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct QuantSeqState {
    pages: Vec<usize>,
    len: usize,
}

/// A paged, multi-sequence INT8-quantized KV cache.
///
/// The quantized analogue of [`crate::PagedKvCache`]: per-sequence page
/// tables over a shared pool with a free list, transactional appends
/// (an [`CacheError::OutOfPages`] failure leaves the sequence unchanged)
/// and page reuse after [`QuantKvCache::free_sequence`] /
/// [`QuantKvCache::truncate`] — the eviction churn a continuous-batching
/// scheduler generates. Because the quantization scheme is strictly
/// per-(token, head), paged storage is **bitwise** equal to a contiguous
/// [`QuantizedKv`] grown with [`QuantizedKv::extend`]: a freed-then-reused
/// page can never bleed one sequence's scales into another's codes.
#[derive(Debug)]
pub struct QuantKvCache {
    config: KvCacheConfig,
    pool: Vec<QuantPage>,
    free: Vec<usize>,
    seqs: HashMap<u64, QuantSeqState>,
}

impl QuantKvCache {
    /// Creates an empty cache.
    pub fn new(config: KvCacheConfig) -> Self {
        QuantKvCache {
            config,
            pool: Vec::new(),
            free: Vec::new(),
            seqs: HashMap::new(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &KvCacheConfig {
        &self.config
    }

    /// Registers a new, empty sequence.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::DuplicateSequence`] if the id is live.
    pub fn create_sequence(&mut self, seq: SeqId) -> Result<(), CacheError> {
        if self.seqs.contains_key(&seq.0) {
            return Err(CacheError::DuplicateSequence { seq: seq.0 });
        }
        self.seqs.insert(seq.0, QuantSeqState::default());
        Ok(())
    }

    /// Returns `true` if the sequence exists.
    pub fn contains(&self, seq: SeqId) -> bool {
        self.seqs.contains_key(&seq.0)
    }

    /// Cached token count for a sequence.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownSequence`] if absent.
    pub fn seq_len(&self, seq: SeqId) -> Result<usize, CacheError> {
        self.seqs
            .get(&seq.0)
            .map(|s| s.len)
            .ok_or(CacheError::UnknownSequence { seq: seq.0 })
    }

    /// Pages currently held by a sequence — the per-session occupancy an
    /// eviction policy weighs.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownSequence`] if absent.
    pub fn seq_pages(&self, seq: SeqId) -> Result<usize, CacheError> {
        self.seqs
            .get(&seq.0)
            .map(|s| s.pages.len())
            .ok_or(CacheError::UnknownSequence { seq: seq.0 })
    }

    /// Ids of all live sequences, sorted.
    pub fn sequence_ids(&self) -> Vec<SeqId> {
        let mut ids: Vec<SeqId> = self.seqs.keys().map(|&k| SeqId(k)).collect();
        ids.sort();
        ids
    }

    fn allocate_page(&mut self) -> Result<usize, CacheError> {
        if let Some(idx) = self.free.pop() {
            return Ok(idx);
        }
        if let Some(max) = self.config.max_pages {
            if self.pool.len() >= max {
                return Err(CacheError::OutOfPages {
                    needed: 1,
                    available: 0,
                });
            }
        }
        self.pool.push(QuantPage::new(&self.config));
        Ok(self.pool.len() - 1)
    }

    fn check_geometry(&self, q: &QuantizedKv, input: &'static str) -> Result<(), CacheError> {
        if q.n_heads != self.config.n_kv_heads || q.head_dim != self.config.head_dim {
            return Err(CacheError::BadShape {
                input,
                expected: vec![self.config.n_kv_heads, self.config.head_dim],
                actual: vec![q.n_heads, q.head_dim],
            });
        }
        Ok(())
    }

    fn check_kv_shape(&self, t: &Tensor, input: &'static str) -> Result<usize, CacheError> {
        let s = t.shape();
        if s.len() != 3 || s[1] != self.config.n_kv_heads || s[2] != self.config.head_dim {
            return Err(CacheError::BadShape {
                input,
                expected: vec![self.config.n_kv_heads, self.config.head_dim],
                actual: s.to_vec(),
            });
        }
        Ok(s[0])
    }

    /// Quantizes and appends `t` tokens of K/V (shape
    /// `[t, n_kv_heads, head_dim]`) with their global positions.
    ///
    /// Each `(token, head)` vector is quantized **directly into its
    /// reserved page slot** ([`quantize_head_into`], the same arithmetic as
    /// [`QuantizedKv::quantize`]) — no contiguous [`QuantizedKv`] staging
    /// buffer is built and copied, which used to double-write every
    /// appended byte.
    ///
    /// Appending is transactional with respect to capacity: needed pages
    /// are reserved up front, so an [`CacheError::OutOfPages`] failure
    /// leaves the sequence unchanged.
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownSequence`], [`CacheError::BadShape`],
    /// [`CacheError::PositionCountMismatch`] or [`CacheError::OutOfPages`].
    pub fn append(
        &mut self,
        seq: SeqId,
        k: &Tensor,
        v: &Tensor,
        positions: &[usize],
    ) -> Result<(), CacheError> {
        let t = self.check_kv_shape(k, "k")?;
        let rows: Vec<usize> = (0..t).collect();
        self.append_rows(seq, k, v, &rows, positions)
    }

    /// Appends selected rows of K/V (shape `[t, n_kv_heads, head_dim]`,
    /// `rows[i] < t`) with their global positions, quantizing each row in
    /// place into its page slot.
    ///
    /// This is the CP sharding hot path: a rank appends the non-contiguous
    /// subset of the projected K/V it owns without a `gather_dim0` staging
    /// tensor or an intermediate [`QuantizedKv`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantKvCache::append`]; additionally
    /// [`CacheError::BadShape`] if a row index is out of range.
    pub fn append_rows(
        &mut self,
        seq: SeqId,
        k: &Tensor,
        v: &Tensor,
        rows: &[usize],
        positions: &[usize],
    ) -> Result<(), CacheError> {
        let t_k = self.check_kv_shape(k, "k")?;
        let t_v = self.check_kv_shape(v, "v")?;
        if t_v != t_k {
            return Err(CacheError::BadShape {
                input: "v",
                expected: vec![self.config.n_kv_heads, self.config.head_dim],
                actual: v.shape().to_vec(),
            });
        }
        if let Some(&bad) = rows.iter().find(|&&r| r >= t_k) {
            return Err(CacheError::BadShape {
                input: "rows",
                expected: vec![t_k],
                actual: vec![bad],
            });
        }
        let t = rows.len();
        if positions.len() != t {
            return Err(CacheError::PositionCountMismatch {
                tokens: t,
                positions: positions.len(),
            });
        }
        if !self.seqs.contains_key(&seq.0) {
            return Err(CacheError::UnknownSequence { seq: seq.0 });
        }
        self.reserve_pages(seq, t)?;
        let state = self.seqs.get_mut(&seq.0).expect("checked above");

        // Quantize each (token, head) vector straight into its page slot.
        // Every slot a token lands in is fully overwritten — codes, scales
        // AND position — so stale data from a previous tenant of a reused
        // page can never survive into a gather.
        let dh = self.config.head_dim;
        let tok = self.config.token_numel();
        let hs = self.config.n_kv_heads;
        let ps = self.config.page_size;
        for (i, (&row, &p)) in rows.iter().zip(positions).enumerate() {
            let global_idx = state.len + i;
            let page_idx = state.pages[global_idx / ps];
            let slot = global_idx % ps;
            let page = &mut self.pool[page_idx];
            let (krow, vrow) = (k.row(row), v.row(row));
            for h in 0..hs {
                page.k_scales[slot * hs + h] = quantize_head_into(
                    &krow[h * dh..(h + 1) * dh],
                    &mut page.k_codes[slot * tok + h * dh..slot * tok + (h + 1) * dh],
                );
                page.v_scales[slot * hs + h] = quantize_head_into(
                    &vrow[h * dh..(h + 1) * dh],
                    &mut page.v_codes[slot * tok + h * dh..slot * tok + (h + 1) * dh],
                );
            }
            page.pos[slot] = p;
            page.used = page.used.max(slot + 1);
        }
        state.len += t;
        Ok(())
    }

    /// Reserves enough pages for `t` more tokens, transactionally.
    fn reserve_pages(&mut self, seq: SeqId, t: usize) -> Result<(), CacheError> {
        let (cur_len, cur_pages) = {
            let s = &self.seqs[&seq.0];
            (s.len, s.pages.len())
        };
        let needed_total_pages = (cur_len + t).div_ceil(self.config.page_size);
        let new_pages_needed = needed_total_pages.saturating_sub(cur_pages);
        if let Some(max) = self.config.max_pages {
            let headroom = self.free.len() + max.saturating_sub(self.pool.len());
            if new_pages_needed > headroom {
                return Err(CacheError::OutOfPages {
                    needed: new_pages_needed,
                    available: headroom,
                });
            }
        }
        let mut reserved = Vec::with_capacity(new_pages_needed);
        for _ in 0..new_pages_needed {
            let idx = self.allocate_page().expect("capacity checked above");
            reserved.push(idx);
        }
        self.seqs
            .get_mut(&seq.0)
            .expect("checked by caller")
            .pages
            .extend(reserved);
        Ok(())
    }

    /// Appends already-quantized K/V blocks (e.g. relayed from another
    /// rank without a dequantize round-trip).
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantKvCache::append`].
    pub fn append_quantized(
        &mut self,
        seq: SeqId,
        qk: &QuantizedKv,
        qv: &QuantizedKv,
        positions: &[usize],
    ) -> Result<(), CacheError> {
        self.check_geometry(qk, "k")?;
        self.check_geometry(qv, "v")?;
        let t = qk.tokens;
        if qv.tokens != t {
            return Err(CacheError::BadShape {
                input: "v",
                expected: vec![t, self.config.n_kv_heads, self.config.head_dim],
                actual: vec![qv.tokens, qv.n_heads, qv.head_dim],
            });
        }
        if positions.len() != t {
            return Err(CacheError::PositionCountMismatch {
                tokens: t,
                positions: positions.len(),
            });
        }
        if !self.seqs.contains_key(&seq.0) {
            return Err(CacheError::UnknownSequence { seq: seq.0 });
        }
        self.reserve_pages(seq, t)?;
        let state = self.seqs.get_mut(&seq.0).expect("checked above");

        // Copy per-token code/scale rows into page slots. Every slot a
        // token lands in is fully overwritten — codes, scales AND
        // position — so stale data from a previous tenant of a reused
        // page can never survive into a gather.
        let tok = self.config.token_numel();
        let hs = self.config.n_kv_heads;
        let ps = self.config.page_size;
        for (i, &p) in positions.iter().enumerate() {
            let global_idx = state.len + i;
            let page_idx = state.pages[global_idx / ps];
            let slot = global_idx % ps;
            let page = &mut self.pool[page_idx];
            page.k_codes[slot * tok..(slot + 1) * tok]
                .copy_from_slice(&qk.codes[i * tok..(i + 1) * tok]);
            page.k_scales[slot * hs..(slot + 1) * hs]
                .copy_from_slice(&qk.scales[i * hs..(i + 1) * hs]);
            page.v_codes[slot * tok..(slot + 1) * tok]
                .copy_from_slice(&qv.codes[i * tok..(i + 1) * tok]);
            page.v_scales[slot * hs..(slot + 1) * hs]
                .copy_from_slice(&qv.scales[i * hs..(i + 1) * hs]);
            page.pos[slot] = p;
            page.used = page.used.max(slot + 1);
        }
        state.len += t;
        Ok(())
    }

    /// Gathers a sequence's quantized K, V and positions in append order,
    /// bitwise equal to a contiguous [`QuantizedKv`] grown by
    /// [`QuantizedKv::extend`] over the same appends.
    ///
    /// This copies codes and scales out of the pages. The attention hot
    /// path does **not** need it — kernels attend the pages in place via
    /// [`QuantKvCache::view`] — but the ring pass-KV wire path does: a
    /// rank's whole quantized shard is serialized onto the ring exactly
    /// once per forward, and that payload must be contiguous.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownSequence`] if absent.
    pub fn gather_quantized(
        &self,
        seq: SeqId,
    ) -> Result<(QuantizedKv, QuantizedKv, Vec<usize>), CacheError> {
        let state = self
            .seqs
            .get(&seq.0)
            .ok_or(CacheError::UnknownSequence { seq: seq.0 })?;
        let tok = self.config.token_numel();
        let hs = self.config.n_kv_heads;
        let ps = self.config.page_size;
        let mut k_codes = Vec::with_capacity(state.len * tok);
        let mut k_scales = Vec::with_capacity(state.len * hs);
        let mut v_codes = Vec::with_capacity(state.len * tok);
        let mut v_scales = Vec::with_capacity(state.len * hs);
        let mut pos = Vec::with_capacity(state.len);
        for i in 0..state.len {
            let page = &self.pool[state.pages[i / ps]];
            let slot = i % ps;
            k_codes.extend_from_slice(&page.k_codes[slot * tok..(slot + 1) * tok]);
            k_scales.extend_from_slice(&page.k_scales[slot * hs..(slot + 1) * hs]);
            v_codes.extend_from_slice(&page.v_codes[slot * tok..(slot + 1) * tok]);
            v_scales.extend_from_slice(&page.v_scales[slot * hs..(slot + 1) * hs]);
            pos.push(page.pos[slot]);
        }
        let mk = |codes: Vec<i8>, scales: Vec<f32>| QuantizedKv {
            codes,
            scales,
            tokens: state.len,
            n_heads: hs,
            head_dim: self.config.head_dim,
        };
        Ok((mk(k_codes, k_scales), mk(v_codes, v_scales), pos))
    }

    /// Dequantizes a sequence back to `[len, n_kv_heads, head_dim]` K/V
    /// tensors plus positions.
    ///
    /// **A/B reference only.** The kernels attend quantized pages in place
    /// through [`QuantKvCache::view`] with per-head dequantization into a
    /// reused scratch; this full `gather` + `dequantize` round-trip exists
    /// so tests can pin the in-place path bitwise against the materialized
    /// tensors it replaced. Production paths must not call it.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownSequence`] if absent.
    pub fn dequantize(&self, seq: SeqId) -> Result<(Tensor, Tensor, Vec<usize>), CacheError> {
        let (qk, qv, pos) = self.gather_quantized(seq)?;
        Ok((qk.dequantize(), qv.dequantize(), pos))
    }

    /// Borrows a sequence's quantized pages as a zero-copy
    /// [`QuantKvView`] — the quantized analogue of
    /// [`crate::PagedKvCache::view`].
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownSequence`] if absent.
    pub fn view(&self, seq: SeqId) -> Result<QuantKvView<'_>, CacheError> {
        let state = self
            .seqs
            .get(&seq.0)
            .ok_or(CacheError::UnknownSequence { seq: seq.0 })?;
        let tok = self.config.token_numel();
        let hs = self.config.n_kv_heads;
        let ps = self.config.page_size;
        let n_pages = state.len.div_ceil(ps);
        let mut view = QuantKvView {
            k_codes: Vec::with_capacity(n_pages),
            k_scales: Vec::with_capacity(n_pages),
            v_codes: Vec::with_capacity(n_pages),
            v_scales: Vec::with_capacity(n_pages),
            pos: Vec::with_capacity(state.len),
            page_size: ps,
            n_heads: hs,
            head_dim: self.config.head_dim,
            len: state.len,
        };
        for (p, page) in state
            .pages
            .iter()
            .take(n_pages)
            .filter_map(|&idx| self.pool.get(idx))
            .enumerate()
        {
            let rows = (state.len - p * ps).min(ps);
            view.k_codes.push(&page.k_codes[..rows * tok]);
            view.k_scales.push(&page.k_scales[..rows * hs]);
            view.v_codes.push(&page.v_codes[..rows * tok]);
            view.v_scales.push(&page.v_scales[..rows * hs]);
            view.pos.extend_from_slice(&page.pos[..rows]);
        }
        Ok(view)
    }

    /// Shrinks a sequence to `new_len` tokens (dropping the most recent
    /// ones), releasing now-empty pages back to the free list. The kept
    /// partial page's `used` watermark is rolled back too, so a later
    /// reappend sees an occupancy that matches the sequence length instead
    /// of the stale pre-truncate high-water mark.
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownSequence`] or [`CacheError::BadTruncate`] if
    /// `new_len` exceeds the current length.
    pub fn truncate(&mut self, seq: SeqId, new_len: usize) -> Result<(), CacheError> {
        let ps = self.config.page_size;
        let state = self
            .seqs
            .get_mut(&seq.0)
            .ok_or(CacheError::UnknownSequence { seq: seq.0 })?;
        if new_len > state.len {
            return Err(CacheError::BadTruncate {
                requested: new_len,
                current: state.len,
            });
        }
        let pages_needed = new_len.div_ceil(ps);
        let released: Vec<usize> = state.pages.split_off(pages_needed);
        state.len = new_len;
        if let Some(&last) = state.pages.last() {
            let tail = new_len - (pages_needed - 1) * ps;
            self.pool[last].used = self.pool[last].used.min(tail);
        }
        for idx in released {
            self.pool[idx].used = 0;
            self.free.push(idx);
        }
        Ok(())
    }

    /// Removes a sequence, returning its pages to the free list for reuse.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownSequence`] if absent.
    pub fn free_sequence(&mut self, seq: SeqId) -> Result<(), CacheError> {
        let state = self
            .seqs
            .remove(&seq.0)
            .ok_or(CacheError::UnknownSequence { seq: seq.0 })?;
        for idx in state.pages {
            self.pool[idx].used = 0;
            self.free.push(idx);
        }
        Ok(())
    }

    /// Current occupancy statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            allocated_pages: self.pool.len() - self.free.len(),
            free_pages: self.free.len(),
            tokens: self.seqs.values().map(|s| s.len).sum(),
            sequences: self.seqs.len(),
        }
    }

    /// Bytes of quantized payload (codes + scales) across all pool pages,
    /// allocated or free.
    pub fn storage_bytes(&self) -> usize {
        let per_page = 2 * self.config.page_size * self.config.token_numel()
            + 2 * self.config.page_size * self.config.n_kv_heads * 4;
        self.pool.len() * per_page
    }
}

/// A borrowed, zero-copy view of one sequence's quantized K/V pages:
/// per-page INT8 code slices and per-(token, head) scale slices (trimmed to
/// the tokens they actually hold) plus the positions, in append order.
///
/// [`QuantKvView::source`] exposes this directly to the attention kernels
/// as a `KvSource::quant_paged` — each head vector is dequantized inside
/// the kernel into a reused scratch, so no f32 copy of the cache is ever
/// materialized.
#[derive(Debug, Clone)]
pub struct QuantKvView<'a> {
    k_codes: Vec<&'a [i8]>,
    k_scales: Vec<&'a [f32]>,
    v_codes: Vec<&'a [i8]>,
    v_scales: Vec<&'a [f32]>,
    pos: Vec<usize>,
    page_size: usize,
    n_heads: usize,
    head_dim: usize,
    len: usize,
}

impl<'a> QuantKvView<'a> {
    /// Cached token count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the sequence holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tokens per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Global positions of the cached tokens, in append order.
    pub fn positions(&self) -> &[usize] {
        &self.pos
    }

    /// The attention-kernel [`KvSource`] over these quantized pages.
    pub fn source(&self) -> KvSource<'_> {
        KvSource::quant_paged(
            &self.k_codes,
            &self.k_scales,
            &self.v_codes,
            &self.v_scales,
            self.page_size,
            self.n_heads,
            self.head_dim,
            self.len,
        )
        .expect("view geometry is consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_tensor::DetRng;

    #[test]
    fn roundtrip_error_within_bound() {
        let x = DetRng::new(1).tensor(&[8, 2, 16]);
        let q = QuantizedKv::quantize(&x).unwrap();
        let back = q.dequantize();
        let err = x.max_abs_diff(&back).unwrap();
        assert!(
            err <= q.error_bound() + 1e-7,
            "{err} vs {}",
            q.error_bound()
        );
        // For inputs in [-1, 1): scale <= 1/127, so error < 0.004.
        assert!(err < 0.004, "{err}");
    }

    #[test]
    fn compression_ratio_near_4x() {
        let x = DetRng::new(2).tensor(&[10, 2, 64]);
        let q = QuantizedKv::quantize(&x).unwrap();
        // 64 bytes of codes + 4 bytes of scale per head vs 256 bytes f32.
        let ratio = q.compression_ratio();
        assert!((ratio - 256.0 / 68.0).abs() < 1e-9, "{ratio}");
        assert!(ratio > 3.7);
    }

    #[test]
    fn per_head_scaling_preserves_small_heads() {
        // A tiny-magnitude head next to a huge one keeps its precision:
        // per-head scales isolate them.
        let mut x = Tensor::zeros(&[1, 2, 4]);
        for d in 0..4 {
            x.set(&[0, 0, d], 1000.0 + d as f32).unwrap();
            x.set(&[0, 1, d], 0.001 * (d as f32 + 1.0)).unwrap();
        }
        let q = QuantizedKv::quantize(&x).unwrap();
        let back = q.dequantize();
        // The small head's relative error stays small.
        let small_err = (back.at(&[0, 1, 3]).unwrap() - 0.004).abs() / 0.004;
        assert!(small_err < 0.01, "{small_err}");
    }

    #[test]
    fn zero_input_quantizes_cleanly() {
        let x = Tensor::zeros(&[3, 1, 4]);
        let q = QuantizedKv::quantize(&x).unwrap();
        assert_eq!(q.dequantize(), x);
    }

    #[test]
    fn extend_concatenates() {
        let a = DetRng::new(3).tensor(&[2, 1, 4]);
        let b = DetRng::new(4).tensor(&[3, 1, 4]);
        let mut qa = QuantizedKv::quantize(&a).unwrap();
        let qb = QuantizedKv::quantize(&b).unwrap();
        qa.extend(&qb).unwrap();
        assert_eq!(qa.tokens(), 5);
        let joined = qa.dequantize();
        assert_eq!(joined.shape(), &[5, 1, 4]);
        // First two tokens still match a's quantization.
        let front = joined.slice_dim0(0..2).unwrap();
        assert!(front
            .approx_eq(&QuantizedKv::quantize(&a).unwrap().dequantize(), 1e-6)
            .unwrap());
        // Geometry mismatch rejected.
        let c = QuantizedKv::quantize(&DetRng::new(5).tensor(&[1, 2, 4])).unwrap();
        assert!(qa.extend(&c).is_err());
    }

    #[test]
    fn rejects_non_rank3() {
        assert!(QuantizedKv::quantize(&Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn attention_on_dequantized_kv_stays_close() {
        // The end-to-end claim: attention over quantized-then-dequantized
        // KV approximates exact attention (the paper's "lossless" CP can
        // be stacked with lossy quantization orthogonally).
        use cp_attention::{naive_gqa_attention, AttentionParams, GqaShape};
        let params = AttentionParams::for_shape(GqaShape::new(4, 2, 16).unwrap());
        let mut rng = DetRng::new(6);
        let t = 24;
        let q = rng.tensor(&[t, 4, 16]);
        let k = rng.tensor(&[t, 2, 16]);
        let v = rng.tensor(&[t, 2, 16]);
        let pos: Vec<usize> = (0..t).collect();
        let exact = naive_gqa_attention(&q, &k, &v, &params, &pos, &pos).unwrap();
        let kq = QuantizedKv::quantize(&k).unwrap().dequantize();
        let vq = QuantizedKv::quantize(&v).unwrap().dequantize();
        let approx = naive_gqa_attention(&q, &kq, &vq, &params, &pos, &pos).unwrap();
        let err = exact.out.max_abs_diff(&approx.out).unwrap();
        assert!(err < 0.02, "attention error {err}");
    }

    #[test]
    fn truncate_is_extend_inverse() {
        let a = DetRng::new(7).tensor(&[3, 2, 4]);
        let b = DetRng::new(8).tensor(&[2, 2, 4]);
        let mut q = QuantizedKv::quantize(&a).unwrap();
        let qa = q.clone();
        q.extend(&QuantizedKv::quantize(&b).unwrap()).unwrap();
        q.truncate(3).unwrap();
        assert_eq!(q, qa);
        assert!(matches!(
            q.truncate(4),
            Err(CacheError::BadTruncate {
                requested: 4,
                current: 3
            })
        ));
        q.truncate(0).unwrap();
        assert_eq!(q.tokens(), 0);
        assert_eq!(q.storage_bytes(), 0);
    }

    #[test]
    fn paged_quant_store_matches_contiguous_extend() {
        let mut cache = QuantKvCache::new(KvCacheConfig::new(3, 2, 4));
        let seq = SeqId(5);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(9);
        let mut shadow_k: Option<QuantizedKv> = None;
        let mut shadow_v: Option<QuantizedKv> = None;
        let mut next = 0usize;
        for t in [4usize, 1, 7, 2] {
            let k = rng.tensor(&[t, 2, 4]);
            let v = rng.tensor(&[t, 2, 4]);
            let pos: Vec<usize> = (next..next + t).collect();
            next += t;
            cache.append(seq, &k, &v, &pos).unwrap();
            let qk = QuantizedKv::quantize(&k).unwrap();
            let qv = QuantizedKv::quantize(&v).unwrap();
            match (&mut shadow_k, &mut shadow_v) {
                (Some(sk), Some(sv)) => {
                    sk.extend(&qk).unwrap();
                    sv.extend(&qv).unwrap();
                }
                _ => {
                    shadow_k = Some(qk);
                    shadow_v = Some(qv);
                }
            }
        }
        let (gk, gv, gpos) = cache.gather_quantized(seq).unwrap();
        assert_eq!(gk, shadow_k.unwrap());
        assert_eq!(gv, shadow_v.unwrap());
        assert_eq!(gpos, (0..next).collect::<Vec<_>>());
        let (dk, _, _) = cache.dequantize(seq).unwrap();
        assert_eq!(dk, gk.dequantize());
        assert_eq!(cache.seq_len(seq).unwrap(), 14);
        assert_eq!(cache.seq_pages(seq).unwrap(), 14usize.div_ceil(3));
    }

    #[test]
    fn freed_pages_are_reused_without_bleed() {
        let mut cache = QuantKvCache::new(KvCacheConfig::new(2, 1, 4).with_max_pages(3));
        let mut rng = DetRng::new(10);
        let a = SeqId(1);
        cache.create_sequence(a).unwrap();
        let ka = rng.tensor(&[5, 1, 4]);
        cache.append(a, &ka, &ka, &[0, 1, 2, 3, 4]).unwrap();
        assert_eq!(cache.stats().allocated_pages, 3);
        // Pool exhausted: a new sequence cannot grow, transactionally.
        let b = SeqId(2);
        cache.create_sequence(b).unwrap();
        let kb = rng.tensor(&[2, 1, 4]);
        assert!(matches!(
            cache.append(b, &kb, &kb, &[0, 1]),
            Err(CacheError::OutOfPages { .. })
        ));
        assert_eq!(cache.seq_len(b).unwrap(), 0);
        // Evicting A frees its pages; B then lands on the reused pages and
        // must gather exactly its own quantization — no stale A data.
        cache.free_sequence(a).unwrap();
        cache.append(b, &kb, &kb, &[0, 1]).unwrap();
        let (gk, _, gpos) = cache.gather_quantized(b).unwrap();
        assert_eq!(gk, QuantizedKv::quantize(&kb).unwrap());
        assert_eq!(gpos, vec![0, 1]);
        // The pool never grew past its cap through the churn.
        assert_eq!(cache.stats().free_pages + cache.stats().allocated_pages, 3);
    }

    #[test]
    fn quant_cache_truncate_releases_pages_and_keeps_prefix() {
        let mut cache = QuantKvCache::new(KvCacheConfig::new(2, 1, 3));
        let seq = SeqId(0);
        cache.create_sequence(seq).unwrap();
        let x = DetRng::new(11).tensor(&[6, 1, 3]);
        cache.append(seq, &x, &x, &[0, 1, 2, 3, 4, 5]).unwrap();
        cache.truncate(seq, 3).unwrap();
        assert_eq!(cache.stats().free_pages, 1);
        let (gk, _, gpos) = cache.gather_quantized(seq).unwrap();
        let mut shadow = QuantizedKv::quantize(&x).unwrap();
        shadow.truncate(3).unwrap();
        assert_eq!(gk, shadow);
        assert_eq!(gpos, vec![0, 1, 2]);
        // Regrowing after the rewind stays bitwise consistent.
        let y = DetRng::new(12).tensor(&[2, 1, 3]);
        cache.append(seq, &y, &y, &[3, 4]).unwrap();
        shadow.extend(&QuantizedKv::quantize(&y).unwrap()).unwrap();
        let (gk2, _, _) = cache.gather_quantized(seq).unwrap();
        assert_eq!(gk2, shadow);
    }

    #[test]
    fn split_at_then_extend_round_trips_exactly() {
        let x = DetRng::new(13).tensor(&[7, 2, 5]);
        let q = QuantizedKv::quantize(&x).unwrap();
        for mid in 0..=7 {
            let (mut lo, hi) = q.split_at(mid).unwrap();
            assert_eq!(lo.tokens(), mid);
            assert_eq!(hi.tokens(), 7 - mid);
            lo.extend(&hi).unwrap();
            assert_eq!(lo, q, "mid={mid}");
        }
        assert!(matches!(
            q.split_at(8),
            Err(CacheError::BadTruncate {
                requested: 8,
                current: 7
            })
        ));
    }

    #[test]
    fn pad_rows_dequantize_to_exact_zeros() {
        let x = DetRng::new(14).tensor(&[3, 1, 4]);
        let mut q = QuantizedKv::quantize(&x).unwrap();
        q.pad_to(2); // no-op: already longer
        assert_eq!(q.tokens(), 3);
        q.pad_to(5);
        assert_eq!(q.tokens(), 5);
        let back = q.dequantize();
        // The original rows are untouched, the pad rows are exact zeros —
        // matching the f32 ring's zero-padded PAD slots bit for bit.
        let orig = QuantizedKv::quantize(&x).unwrap().dequantize();
        assert_eq!(back.slice_dim0(0..3).unwrap(), orig);
        assert!(back.as_slice()[3 * 4..].iter().all(|&z| z == 0.0));
    }

    #[test]
    fn from_parts_validates_and_round_trips() {
        let x = DetRng::new(15).tensor(&[4, 2, 3]);
        let q = QuantizedKv::quantize(&x).unwrap();
        let rebuilt =
            QuantizedKv::from_parts(q.codes().to_vec(), q.scales().to_vec(), 4, 2, 3).unwrap();
        assert_eq!(rebuilt, q);
        assert!(QuantizedKv::from_parts(vec![0; 5], vec![1.0; 8], 4, 2, 3).is_err());
        assert!(QuantizedKv::from_parts(vec![0; 24], vec![1.0; 7], 4, 2, 3).is_err());
    }

    #[test]
    fn view_serves_same_rows_as_gather() {
        let mut cache = QuantKvCache::new(KvCacheConfig::new(3, 2, 4));
        let seq = SeqId(1);
        cache.create_sequence(seq).unwrap();
        let x = DetRng::new(16).tensor(&[7, 2, 4]); // ragged: 7 = 2*3 + 1
        cache.append(seq, &x, &x, &[0, 1, 2, 3, 4, 5, 6]).unwrap();
        let (gk, gv, gpos) = cache.gather_quantized(seq).unwrap();
        let view = cache.view(seq).unwrap();
        assert_eq!(view.len(), 7);
        assert!(!view.is_empty());
        assert_eq!(view.page_size(), 3);
        assert_eq!(view.positions(), &gpos[..]);
        // Every (token, head) vector served by the view's KvSource equals
        // the dequantized gather row for both K and V.
        let src = view.source();
        let dk = gk.dequantize();
        let dv = gv.dequantize();
        let mut scratch = vec![0.0f32; 4];
        for i in 0..7 {
            for h in 0..2 {
                let want_k: Vec<f32> = (0..4).map(|d| dk.at(&[i, h, d]).unwrap()).collect();
                assert_eq!(src.k_head(i, h, 4, &mut scratch).unwrap(), &want_k[..]);
                let want_v: Vec<f32> = (0..4).map(|d| dv.at(&[i, h, d]).unwrap()).collect();
                assert_eq!(src.v_head(i, h, 4, &mut scratch).unwrap(), &want_v[..]);
            }
        }
        // Empty sequence: a well-formed, zero-length view.
        let empty = SeqId(2);
        cache.create_sequence(empty).unwrap();
        let ev = cache.view(empty).unwrap();
        assert!(ev.is_empty());
        assert_eq!(ev.source().tokens(), 0);
    }

    #[test]
    fn append_rows_matches_gather_then_append() {
        // The sharding hot path: appending a non-contiguous row subset
        // directly must be bitwise identical to the old staging path
        // (gather_dim0 into a contiguous tensor, then append).
        let mut rng = DetRng::new(17);
        let k = rng.tensor(&[9, 2, 4]);
        let v = rng.tensor(&[9, 2, 4]);
        let rows = [0usize, 3, 4, 8];
        let positions: Vec<usize> = rows.to_vec();

        let mut direct = QuantKvCache::new(KvCacheConfig::new(3, 2, 4));
        direct.create_sequence(SeqId(0)).unwrap();
        direct
            .append_rows(SeqId(0), &k, &v, &rows, &positions)
            .unwrap();

        let mut staged = QuantKvCache::new(KvCacheConfig::new(3, 2, 4));
        staged.create_sequence(SeqId(0)).unwrap();
        let sk = k.gather_dim0(&rows).unwrap();
        let sv = v.gather_dim0(&rows).unwrap();
        staged.append(SeqId(0), &sk, &sv, &positions).unwrap();

        assert_eq!(
            direct.gather_quantized(SeqId(0)).unwrap(),
            staged.gather_quantized(SeqId(0)).unwrap()
        );

        // Out-of-range row index is a typed error, not a panic.
        assert!(matches!(
            direct.append_rows(SeqId(0), &k, &v, &[9], &[10]),
            Err(CacheError::BadShape { input: "rows", .. })
        ));
    }

    #[test]
    fn quant_cache_typed_errors() {
        let mut cache = QuantKvCache::new(KvCacheConfig::new(2, 2, 3));
        let seq = SeqId(3);
        assert!(matches!(
            cache.seq_len(seq),
            Err(CacheError::UnknownSequence { seq: 3 })
        ));
        cache.create_sequence(seq).unwrap();
        assert!(matches!(
            cache.create_sequence(seq),
            Err(CacheError::DuplicateSequence { seq: 3 })
        ));
        let wrong = Tensor::zeros(&[2, 1, 3]);
        let right = Tensor::zeros(&[2, 2, 3]);
        assert!(matches!(
            cache.append(seq, &wrong, &wrong, &[0, 1]),
            Err(CacheError::BadShape { .. })
        ));
        assert!(matches!(
            cache.append(seq, &right, &right, &[0]),
            Err(CacheError::PositionCountMismatch { .. })
        ));
        assert!(cache.append(seq, &right, &right, &[0, 1]).is_ok());
        assert!(matches!(
            cache.truncate(seq, 9),
            Err(CacheError::BadTruncate { .. })
        ));
        assert_eq!(cache.sequence_ids(), vec![seq]);
    }
}
