//! Zero-copy borrowed views of a sequence's cached K/V pages.

use cp_attention::KvSource;

use crate::PagedKvCache;
use crate::{CacheError, SeqId};

/// A borrowed, zero-copy view of one sequence's cached K/V: per-page
/// `&[f32]` slices (trimmed to the tokens they actually hold) plus the
/// positions, in append order.
///
/// This is the layout the attention kernels consume *directly* via
/// [`KvView::source`] — no [`PagedKvCache::gather`] materialization. Token
/// `i` lives in page `i / page_size` at slot `i % page_size`; every page is
/// full except possibly the last. Building a view is O(pages) for the slice
/// handles plus O(tokens) for the position array (8 bytes/token, negligible
/// next to the K/V payload a gather would copy).
#[derive(Debug, Clone)]
pub struct KvView<'a> {
    k_pages: Vec<&'a [f32]>,
    v_pages: Vec<&'a [f32]>,
    pos: Vec<usize>,
    page_size: usize,
    token_numel: usize,
    len: usize,
}

impl<'a> KvView<'a> {
    /// Cached token count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the sequence holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tokens per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Elements per token row (`n_kv_heads * head_dim`).
    pub fn token_numel(&self) -> usize {
        self.token_numel
    }

    /// Global positions of the cached tokens, in append order.
    pub fn positions(&self) -> &[usize] {
        &self.pos
    }

    /// Per-page K slices; page `p` holds rows `[p * page_size, ...)`.
    pub fn k_pages(&self) -> &[&'a [f32]] {
        &self.k_pages
    }

    /// Per-page V slices, aligned with [`KvView::k_pages`].
    pub fn v_pages(&self) -> &[&'a [f32]] {
        &self.v_pages
    }

    /// The attention-kernel [`KvSource`] over these pages.
    pub fn source(&self) -> KvSource<'_> {
        KvSource::paged(
            &self.k_pages,
            &self.v_pages,
            self.page_size,
            self.token_numel,
            self.len,
        )
        .expect("view geometry is consistent by construction")
    }
}

impl PagedKvCache {
    /// Borrows a sequence's cached K/V as a zero-copy [`KvView`].
    ///
    /// The view and [`PagedKvCache::gather`] expose the same rows in the
    /// same order, so attending through [`KvView::source`] is bit-identical
    /// to attending over gathered tensors — without the O(tokens) copy.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownSequence`] if absent.
    pub fn view(&self, seq: SeqId) -> Result<KvView<'_>, CacheError> {
        let (state, config) = self.seq_state(seq)?;
        let tok = config.token_numel();
        let ps = config.page_size;
        let n_pages = state.len.div_ceil(ps);
        let mut k_pages = Vec::with_capacity(n_pages);
        let mut v_pages = Vec::with_capacity(n_pages);
        let mut pos = Vec::with_capacity(state.len);
        for (p, page) in state
            .pages
            .iter()
            .take(n_pages)
            .filter_map(|&idx| self.page(idx))
            .enumerate()
        {
            let rows = (state.len - p * ps).min(ps);
            k_pages.push(page.k_slice(rows * tok));
            v_pages.push(page.v_slice(rows * tok));
            pos.extend_from_slice(page.pos_slice(rows));
        }
        Ok(KvView {
            k_pages,
            v_pages,
            pos,
            page_size: ps,
            token_numel: tok,
            len: state.len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvCacheConfig;
    use cp_tensor::DetRng;

    fn cache_with(page_size: usize, tokens: usize, seed: u64) -> (PagedKvCache, SeqId) {
        let mut cache = PagedKvCache::new(KvCacheConfig::new(page_size, 2, 3));
        let seq = SeqId(1);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(seed);
        let k = rng.tensor(&[tokens, 2, 3]);
        let v = rng.tensor(&[tokens, 2, 3]);
        let pos: Vec<usize> = (0..tokens).collect();
        cache.append(seq, &k, &v, &pos).unwrap();
        (cache, seq)
    }

    #[test]
    fn view_matches_gather_rows() {
        for (ps, t) in [(4, 6), (4, 8), (3, 10), (5, 1), (7, 7)] {
            let (cache, seq) = cache_with(ps, t, 11);
            let (gk, gv, gpos) = cache.gather(seq).unwrap();
            let view = cache.view(seq).unwrap();
            assert_eq!(view.len(), t);
            assert_eq!(view.page_size(), ps);
            assert_eq!(view.token_numel(), 6);
            assert_eq!(view.positions(), &gpos[..]);
            let src = view.source();
            for i in 0..t {
                assert_eq!(src.k_row(i).unwrap(), gk.row(i), "k row {i}");
                assert_eq!(src.v_row(i).unwrap(), gv.row(i), "v row {i}");
            }
            assert!(src.k_row(t).is_none());
        }
    }

    #[test]
    fn view_is_zero_copy() {
        let (cache, seq) = cache_with(4, 9, 12);
        let view = cache.view(seq).unwrap();
        // 9 tokens over pages of 4: three pages, last trimmed to 1 row.
        assert_eq!(view.k_pages().len(), 3);
        assert_eq!(view.k_pages()[0].len(), 4 * 6);
        assert_eq!(view.k_pages()[2].len(), 6);
        assert_eq!(view.source().page_size(), Some(4));
    }

    #[test]
    fn view_tracks_truncate_and_multi_turn_appends() {
        let (mut cache, seq) = cache_with(4, 10, 13);
        cache.truncate(seq, 5).unwrap();
        let (gk, _, gpos) = cache.gather(seq).unwrap();
        let view = cache.view(seq).unwrap();
        assert_eq!(view.len(), 5);
        assert_eq!(view.positions(), &gpos[..]);
        assert_eq!(view.source().k_row(4).unwrap(), gk.row(4));

        let mut rng = DetRng::new(14);
        let k2 = rng.tensor(&[3, 2, 3]);
        let v2 = rng.tensor(&[3, 2, 3]);
        cache.append(seq, &k2, &v2, &[5, 6, 7]).unwrap();
        let view = cache.view(seq).unwrap();
        assert_eq!(view.len(), 8);
        assert_eq!(view.source().k_row(7).unwrap(), k2.row(2));
    }

    #[test]
    fn empty_sequence_views_empty() {
        let mut cache = PagedKvCache::new(KvCacheConfig::new(4, 2, 3));
        let seq = SeqId(2);
        cache.create_sequence(seq).unwrap();
        let view = cache.view(seq).unwrap();
        assert!(view.is_empty());
        assert_eq!(view.source().tokens(), 0);
        assert!(cache.view(SeqId(9)).is_err());
    }

    #[test]
    fn view_survives_free_and_reuse_of_other_sequences() {
        let mut cache = PagedKvCache::new(KvCacheConfig::new(4, 2, 3));
        let mut rng = DetRng::new(15);
        let (a, b) = (SeqId(1), SeqId(2));
        cache.create_sequence(a).unwrap();
        let ka = rng.tensor(&[6, 2, 3]);
        let va = rng.tensor(&[6, 2, 3]);
        cache
            .append(a, &ka, &va, &(0..6).collect::<Vec<_>>())
            .unwrap();
        cache.free_sequence(a).unwrap();
        // b reuses a's freed pages; its view must show b's rows only.
        cache.create_sequence(b).unwrap();
        let kb = rng.tensor(&[5, 2, 3]);
        let vb = rng.tensor(&[5, 2, 3]);
        cache
            .append(b, &kb, &vb, &(0..5).collect::<Vec<_>>())
            .unwrap();
        let (gk, gv, _) = cache.gather(b).unwrap();
        assert_eq!(gk, kb);
        let view = cache.view(b).unwrap();
        let src = view.source();
        for i in 0..5 {
            assert_eq!(src.k_row(i).unwrap(), gk.row(i));
            assert_eq!(src.v_row(i).unwrap(), gv.row(i));
        }
    }

    #[test]
    fn view_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KvView<'static>>();
    }
}
