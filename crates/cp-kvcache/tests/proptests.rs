//! Property-based tests: the paged cache behaves like a simple
//! append-only log, regardless of page size or append batching.

use cp_kvcache::{KvCacheConfig, PagedKvCache, SeqId};
use cp_tensor::{DetRng, Tensor};
use proptest::prelude::*;

proptest! {
    /// Appending in arbitrary chunk sizes gathers back the same data as the
    /// flat reference log, for any page size.
    #[test]
    fn paged_cache_equals_flat_log(
        page_size in 1usize..9,
        chunks in prop::collection::vec(0usize..7, 1..8),
        seed in any::<u64>(),
    ) {
        let mut cache = PagedKvCache::new(KvCacheConfig::new(page_size, 2, 3));
        let seq = SeqId(1);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(seed);
        let mut ref_k: Vec<Tensor> = Vec::new();
        let mut ref_v: Vec<Tensor> = Vec::new();
        let mut ref_pos: Vec<usize> = Vec::new();
        let mut next_pos = 0;
        for t in chunks {
            let k = rng.tensor(&[t, 2, 3]);
            let v = rng.tensor(&[t, 2, 3]);
            let pos: Vec<usize> = (next_pos..next_pos + t).collect();
            next_pos += t;
            cache.append(seq, &k, &v, &pos).unwrap();
            ref_k.push(k);
            ref_v.push(v);
            ref_pos.extend(pos);
        }
        let (gk, gv, gpos) = cache.gather(seq).unwrap();
        if ref_pos.is_empty() {
            prop_assert_eq!(gk.dim0(), 0);
        } else {
            prop_assert_eq!(gk, Tensor::concat_dim0(ref_k.iter()).unwrap());
            prop_assert_eq!(gv, Tensor::concat_dim0(ref_v.iter()).unwrap());
        }
        prop_assert_eq!(gpos, ref_pos);
    }

    /// Interleaved appends to multiple sequences stay isolated.
    #[test]
    fn sequences_are_isolated(
        page_size in 1usize..6,
        ops in prop::collection::vec((0usize..3, 1usize..5), 1..12),
        seed in any::<u64>(),
    ) {
        let mut cache = PagedKvCache::new(KvCacheConfig::new(page_size, 1, 2));
        let mut rng = DetRng::new(seed);
        let mut logs: Vec<Vec<f32>> = vec![Vec::new(); 3];
        for s in 0..3u64 {
            cache.create_sequence(SeqId(s)).unwrap();
        }
        for (s, t) in ops {
            let k = rng.tensor(&[t, 1, 2]);
            let v = k.clone();
            let start = logs[s].len() / 2;
            let pos: Vec<usize> = (start..start + t).collect();
            cache.append(SeqId(s as u64), &k, &v, &pos).unwrap();
            logs[s].extend_from_slice(k.as_slice());
        }
        for (s, log) in logs.iter().enumerate() {
            let (gk, gv, _) = cache.gather(SeqId(s as u64)).unwrap();
            prop_assert_eq!(gk.as_slice(), log.as_slice());
            prop_assert_eq!(gv.as_slice(), log.as_slice());
        }
    }

    /// Truncate-then-gather equals the prefix of the reference log, and
    /// stats never report more pages than ceil(tokens / page_size) + frag.
    #[test]
    fn truncate_is_prefix(
        page_size in 1usize..6,
        total in 1usize..30,
        keep_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut cache = PagedKvCache::new(KvCacheConfig::new(page_size, 1, 2));
        let seq = SeqId(0);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(seed);
        let k = rng.tensor(&[total, 1, 2]);
        let v = rng.tensor(&[total, 1, 2]);
        let pos: Vec<usize> = (0..total).collect();
        cache.append(seq, &k, &v, &pos).unwrap();
        let keep = ((total as f64) * keep_frac) as usize;
        cache.truncate(seq, keep).unwrap();
        let (gk, _, gpos) = cache.gather(seq).unwrap();
        prop_assert_eq!(gk.as_slice(), &k.as_slice()[..keep * 2]);
        prop_assert_eq!(gpos, (0..keep).collect::<Vec<_>>());
        let stats = cache.stats();
        prop_assert_eq!(stats.tokens, keep);
        prop_assert_eq!(stats.allocated_pages, keep.div_ceil(page_size));
    }

    /// A bounded pool never exceeds its max and OOM appends never corrupt
    /// existing state.
    #[test]
    fn bounded_pool_respects_capacity(
        max_pages in 1usize..5,
        appends in prop::collection::vec(1usize..6, 1..10),
        seed in any::<u64>(),
    ) {
        let page_size = 2;
        let mut cache =
            PagedKvCache::new(KvCacheConfig::new(page_size, 1, 2).with_max_pages(max_pages));
        let seq = SeqId(0);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(seed);
        let mut committed = 0usize;
        for t in appends {
            let k = rng.tensor(&[t, 1, 2]);
            let v = rng.tensor(&[t, 1, 2]);
            let pos: Vec<usize> = (committed..committed + t).collect();
            match cache.append(seq, &k, &v, &pos) {
                Ok(()) => committed += t,
                Err(_) => {
                    // Rejected: length unchanged.
                    prop_assert_eq!(cache.seq_len(seq).unwrap(), committed);
                }
            }
            prop_assert!(cache.stats().allocated_pages <= max_pages);
            prop_assert!(committed <= max_pages * page_size);
        }
    }
}
